package parpar

import (
	"testing"

	"gangfm/internal/sim"
)

// countLoop returns a timer-driven program with a fixed sim-time lifetime
// (n ticks of 200k cycles), so tests can kill mid-run deterministically
// without depending on communication speed.
func countLoop(n int) func(rank int) Program {
	return func(rank int) Program {
		return ProgramFunc(func(p *Proc) {
			left := n
			var loop func()
			loop = func() {
				left--
				if left == 0 {
					p.Done(n)
					return
				}
				p.Schedule(sim.Time(200_000), loop)
			}
			loop()
		})
	}
}

// TestVoluntaryKillFreesSlotsAndAdmitsQueued is the regression contract of
// the voluntary termination path: killing a spanning job reclaims its
// matrix slots (so a previously rejected submission is admitted into
// them), releases its contexts on every node, and — unlike eviction —
// marks no node dead, so the survivor keeps rotating and finishes.
func TestVoluntaryKillFreesSlotsAndAdmitsQueued(t *testing.T) {
	cfg := testConfig(2)
	cfg.Slots = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hog := func(rank int) Program {
		return ProgramFunc(func(p *Proc) { /* never Done */ })
	}
	victim, err := c.Submit(JobSpec{Name: "victim", Size: 2, NewProgram: hog})
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := c.Submit(JobSpec{Name: "survivor", Size: 2, NewProgram: countLoop(200)})
	if err != nil {
		t.Fatal(err)
	}
	// Table full: a third spanning job is rejected.
	if _, err := c.Submit(JobSpec{Size: 2, NewProgram: pingPong(1)}); err == nil {
		t.Fatal("third job should exceed the 2-slot table")
	}
	c.RunUntil(5_000_000) // both jobs launched and rotating
	killedState := JobState(-1)
	victim.OnDone(func(j *Job) { killedState = j.State() })
	if err := c.Kill(victim); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if killedState != JobKilled {
		t.Fatalf("OnDone saw state %v, want killed", killedState)
	}
	if got := c.Master().Matrix().Jobs(); got != 1 {
		t.Fatalf("matrix holds %d jobs after kill, want 1", got)
	}
	// Double kill is rejected.
	if err := c.Kill(victim); err == nil {
		t.Fatal("second kill should fail")
	}
	// The freed slots admit a queued job immediately.
	queued, err := c.Submit(JobSpec{Name: "queued", Size: 2, NewProgram: countLoop(50)})
	if err != nil {
		t.Fatalf("queued job not admitted into freed slots: %v", err)
	}
	c.Run()
	if survivor.State() != JobDone || queued.State() != JobDone {
		t.Fatalf("states after run: survivor=%v queued=%v, want done",
			survivor.State(), queued.State())
	}
	for _, n := range c.Nodes() {
		if got := n.Mgr.Contexts(); got != 0 {
			t.Fatalf("node %d still holds %d contexts", n.ID, got)
		}
	}
}

// TestKillWhileLoadingLeaksNoContext kills a job before its load messages
// reach the nodes: the in-flight COMM_init_job must observe the kill and
// allocate nothing, leaving every node context-free.
func TestKillWhileLoadingLeaksNoContext(t *testing.T) {
	c, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(JobSpec{Name: "doomed", Size: 2, NewProgram: pingPong(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(job); err != nil {
		t.Fatalf("kill while loading: %v", err)
	}
	c.Run()
	if job.State() != JobKilled {
		t.Fatalf("state = %v, want killed", job.State())
	}
	for _, n := range c.Nodes() {
		if got := n.Mgr.Contexts(); got != 0 {
			t.Fatalf("node %d leaked %d contexts from a killed load", n.ID, got)
		}
	}
}

// TestResizeRestartsAtNewSize exercises the kill+resubmit resize path: the
// old incarnation dies, the new one runs at the new size and completes.
func TestResizeRestartsAtNewSize(t *testing.T) {
	c, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(JobSpec{Name: "r", Size: 2, NewProgram: pingPong(1000)})
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(5_000_000)
	bigger, err := c.Resize(job, JobSpec{Name: "r2", Size: 4, NewProgram: oneWay(5, 64)})
	if err != nil {
		t.Fatalf("resize: %v", err)
	}
	c.Run()
	if job.State() != JobKilled {
		t.Fatalf("old incarnation state = %v, want killed", job.State())
	}
	if bigger.State() != JobDone {
		t.Fatalf("new incarnation state = %v, want done", bigger.State())
	}
	if got := len(bigger.Placement.Cols); got != 4 {
		t.Fatalf("new incarnation spans %d nodes, want 4", got)
	}
}

// TestCompactMigratesAfterKill checks the explicit slot-unification entry
// point: with the first-fit policy (no UnifyOnExit), killing the sole job
// of row 0 strands the other jobs in later rows until Compact moves them
// down — after which the rotation still completes every survivor.
func TestCompactMigratesAfterKill(t *testing.T) {
	cfg := testConfig(2)
	cfg.Slots = 3
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hog := func(rank int) Program {
		return ProgramFunc(func(p *Proc) { /* never Done */ })
	}
	a, err := c.Submit(JobSpec{Name: "a", Size: 2, NewProgram: hog})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(JobSpec{Name: "b", Size: 2, NewProgram: countLoop(200)})
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(5_000_000)
	if err := c.Kill(a); err != nil {
		t.Fatal(err)
	}
	if rows := c.Master().Matrix().Rows(); rows != 2 {
		t.Fatalf("rows after kill = %d, want 2 (hole not yet compacted)", rows)
	}
	if moved := c.Compact(); moved != 1 {
		t.Fatalf("compact moved %d jobs, want 1", moved)
	}
	if rows := c.Master().Matrix().Rows(); rows != 1 {
		t.Fatalf("rows after compact = %d, want 1", rows)
	}
	if c.Compact() != 0 {
		t.Fatal("second compact should be a no-op")
	}
	c.Run()
	if b.State() != JobDone {
		t.Fatalf("survivor state = %v, want done", b.State())
	}
}
