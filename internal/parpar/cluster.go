package parpar

import (
	"fmt"

	"gangfm/internal/chaos"
	"gangfm/internal/core"
	"gangfm/internal/fm"
	"gangfm/internal/gang"
	"gangfm/internal/lanai"
	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the number of compute nodes (the paper's ParPar has 16,
	// plus a separate manager host not counted here).
	Nodes int
	// Slots is the gang matrix depth — the fixed maximum number of
	// contexts the buffers must accommodate in partitioned mode.
	Slots int
	// Policy selects Partitioned (original FM) or Switched buffers.
	Policy fm.Policy
	// Mode selects the buffer-switch algorithm (Switched policy).
	Mode core.CopyMode
	// Quantum is the gang-scheduling time slice.
	Quantum sim.Time
	// Packing selects the gang-matrix packing policy; nil means the
	// default DHC buddy scheme.
	Packing gang.Policy

	// CtrlBase and CtrlJitter shape control-network message latency:
	// base Ethernet+daemon cost plus uniform [0, jitter) per message.
	CtrlBase   sim.Time
	CtrlJitter sim.Time
	// CtrlSerialGap is the per-destination serialization of the
	// masterd's slot-switch unicasts on the control Ethernet; it sets
	// the notification skew that grows with machine size.
	CtrlSerialGap sim.Time
	// InitJobCost is the noded CPU time for COMM_init_job.
	InitJobCost sim.Time
	// ForkDelay is the time from COMM_init_job to the forked process
	// notifying readiness.
	ForkDelay sim.Time

	// NetConfig optionally overrides the data-network parameters (Nodes
	// is forced to match).
	NetConfig *myrinet.Config
	// FMTweak optionally adjusts each endpoint's fm.Config after the
	// allocation-derived defaults are set.
	FMTweak func(*fm.Config)
	// Seed drives control-network jitter.
	Seed uint64

	// Chaos, when non-nil, is the fault plan to inject: packet loss and
	// duplication on the data network, control-message loss and delay,
	// per-node CPU pauses and slowdowns, and backing-store corruption.
	// The plan's seed also becomes the auditor's replay seed.
	Chaos *chaos.Plan
	// FailFast stops the simulation at the first invariant violation.
	FailFast bool

	// Recovery, when non-nil, enables the self-healing switch path:
	// Halt/Ready retransmission with degraded flush completion in the
	// LANai firmware, reliable daemon control messages, the masterd
	// switch watchdog, and node eviction. Nil (the default) leaves the
	// cluster byte-identical to the base protocol.
	Recovery *Recovery

	// Shards, when > 1, partitions the cluster into that many contiguous
	// node ranges, each with its own event lane (masterd and control
	// network live on an extra global lane). With Workers > 1 the lanes
	// run concurrently under conservative lookahead windows derived from
	// the data network's minimum cross-node latency; results are
	// semantically identical to the unsharded simulator. With Workers <= 1
	// — or whenever a chaos plan is installed, since the fault injector is
	// a single sequential machine — the lanes execute in lockstep, which
	// is bit-identical to the unsharded simulator. Shards <= 1 leaves the
	// classic single-engine path untouched.
	Shards int
	// Workers caps the goroutines running shard windows (see Shards).
	Workers int
}

// DefaultConfig returns the paper's setup: 16-ish nodes, 4 slots, the
// switched policy with the improved copy, and a 1 second quantum (the
// quantum used for the overhead percentage in §4.2).
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		Slots:         4,
		Policy:        fm.Switched,
		Mode:          core.ValidOnly,
		Quantum:       sim.DefaultClock.FromDuration(1_000_000_000), // 1 s
		CtrlBase:      20_000,                                       // 100 us
		CtrlJitter:    400_000,                                      // up to 2 ms of daemon skew
		CtrlSerialGap: 100_000,                                      // 500 us per switch-notification unicast
		InitJobCost:   10_000,
		ForkDelay:     1_000_000, // 5 ms
		Seed:          1,
	}
}

// Node is one compute node: card, host CPU, glueFM manager, and the noded
// state for the processes it hosts.
type Node struct {
	ID  myrinet.NodeID
	NIC *lanai.NIC
	CPU *sim.Resource
	Mgr *core.Manager
	// Eng is the event lane this node's state lives on: the cluster
	// engine normally, the owning shard's engine under sharded execution.
	// Every event that touches the node's NIC, CPU, manager, or endpoint
	// state runs here.
	Eng *sim.Engine

	cluster *Cluster
	procs   map[myrinet.JobID]*Proc

	// Slot-switch idempotence (recovery only): the watchdog may re-send a
	// round's notification, so the noded remembers the round it is working
	// on and, once done, the stats it acked with — a duplicate re-acks
	// instead of re-switching (the manager rejects non-monotonic epochs).
	swEpoch uint64
	swBusy  bool
	swDone  bool
	swStats core.SwitchStats

	// Clean-path switch plumbing: the masterd issues one switch per node
	// per round, so the pending ack callback and completion stats ride in
	// these fields and the prebuilt swDoneFn/ack trampolines — a
	// steady-state switch allocates no closures on the node side.
	swAck    func(core.SwitchStats)
	swDoneFn func(core.SwitchStats)
	ackFn    func(core.SwitchStats)
	ackStats core.SwitchStats

	// evictSeen[j] is the highest eviction generation of node j this noded
	// has applied (a node's generation is its eviction count; the masterd
	// stamps every membership update with it). The latch makes membership
	// deliveries idempotent and order-free: a stale evict re-delivery after
	// node j rejoined — the resend chain raced the admission — is detected
	// as already-applied instead of pruning the live node, and a join that
	// overtakes its eviction applies the prune first. It deliberately
	// survives reboot: it is resend-dedup state about *peers'* lifecycles,
	// not this incarnation's.
	evictSeen []int

	// procScratch backs sortedProcs between audit ticks.
	procScratch []*Proc
}

// The shared node-side ack callbacks (the Node rides along as the event
// argument): ackHop runs on the control network's lane and samples the
// delivery latency there; ackFire is the masterd-side delivery.
var (
	nodeAckHopFn  = func(a any) { a.(*Node).ackHop() }
	nodeAckFireFn = func(a any) { a.(*Node).ackFire() }
)

// deliverAck routes one switch acknowledgement to the masterd with the
// same latency sampling and lane hops as ctrl.send, but closure-free.
func (n *Node) deliverAck(s core.SwitchStats, ack func(core.SwitchStats)) {
	n.ackStats, n.ackFn = s, ack
	c := n.cluster.ctrl
	if g := n.Eng.Group(); n.Eng == c.eng || g == nil || g.Serial() {
		n.ackHop()
		return
	}
	n.Eng.CrossArgAt(c.eng, n.Eng.Now(), nodeAckHopFn, n)
}

func (n *Node) ackHop() {
	c := n.cluster.ctrl
	c.deliverRoutedArg(-1, -1, c.delay(), nodeAckFireFn, n)
}

func (n *Node) ackFire() {
	ack, s := n.ackFn, n.ackStats
	n.ackFn = nil
	ack(s)
}

// Cluster is the assembled system.
type Cluster struct {
	// Eng is the cluster's control lane: the single engine of an
	// unsharded cluster, or the shard group's global lane (masterd,
	// control network, audit ticks). Use Run/RunUntil/RunFor to drive the
	// simulation — they dispatch to the shard group when one exists.
	Eng *sim.Engine
	Net *myrinet.Network
	Mem *memmodel.Model

	group *sim.Group

	cfg    Config
	rng    *sim.Rand
	ctrl   *ctrlNet
	nodes  []*Node
	master *Masterd

	auditor  *chaos.Auditor
	injector *chaos.Injector
	ledger   *chaos.CreditLedger

	prevProgress map[progressKey]uint64
	auditTicking bool

	// Audit-loop scratch, reused across ticks: the checks run every
	// quantum for the life of the run, so per-tick maps and slices would
	// dominate the steady-state allocation profile.
	audSrcCount map[int]int
	audSrcs     []int
	audJobIDs   []myrinet.JobID
}

// New assembles a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("parpar: need at least one node")
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("parpar: need at least one slot")
	}
	if cfg.Quantum == 0 {
		return nil, fmt.Errorf("parpar: zero quantum")
	}
	if cfg.Recovery != nil {
		if err := cfg.Recovery.validate(); err != nil {
			return nil, err
		}
	}
	ncfg := myrinet.DefaultConfig(cfg.Nodes)
	if cfg.NetConfig != nil {
		ncfg = *cfg.NetConfig
		ncfg.Nodes = cfg.Nodes
	}

	// Sharded execution: partition the nodes into contiguous ranges, one
	// event lane each, with the masterd and control network on the extra
	// global lane. The window size is the data network's minimum
	// cross-node latency; control messages must not undercut it, so
	// windowed mode requires CtrlBase to cover the lookahead (in practice
	// Ethernet+daemon latency dwarfs a switch traversal).
	shards := cfg.Shards
	if shards > cfg.Nodes {
		shards = cfg.Nodes
	}
	var group *sim.Group
	var eng *sim.Engine
	if shards > 1 {
		lookahead := ncfg.SwitchLatency + ncfg.PerPacketGap + 1
		mode := sim.Windowed
		if cfg.Workers <= 1 || (cfg.Chaos != nil && !cfg.Chaos.Empty()) {
			// Single-worker runs promise bit-identity; chaos runs replay a
			// sequential injector whose consultation order is part of the
			// trace contract. Both need the lockstep interleaving.
			mode = sim.Lockstep
		}
		if mode == sim.Windowed && cfg.CtrlBase < lookahead {
			return nil, fmt.Errorf(
				"parpar: CtrlBase %d is below the network lookahead %d; windowed sharding needs control latency >= the window size",
				cfg.CtrlBase, lookahead)
		}
		group = sim.NewGroup(sim.GroupConfig{
			Shards:    shards,
			Lookahead: lookahead,
			Workers:   cfg.Workers,
			Mode:      mode,
		})
		eng = group.Global()
	} else {
		eng = sim.NewEngine()
	}

	c := &Cluster{
		Eng:          eng,
		Net:          myrinet.New(eng, ncfg),
		Mem:          memmodel.Default(),
		group:        group,
		cfg:          cfg,
		rng:          sim.NewRand(cfg.Seed ^ 0xABCD),
		prevProgress: make(map[progressKey]uint64),
		audSrcCount:  make(map[int]int),
	}
	if group != nil {
		engs := make([]*sim.Engine, cfg.Nodes)
		for i := range engs {
			engs[i] = group.Shard(i * shards / cfg.Nodes)
		}
		c.Net.SetShardEngines(engs)
	}
	c.ctrl = newCtrlNet(eng, cfg.CtrlBase, cfg.CtrlJitter, c.rng)
	for i := 0; i < cfg.Nodes; i++ {
		nodeEng := eng
		if group != nil {
			nodeEng = group.Shard(i * shards / cfg.Nodes)
		}
		nic := lanai.New(nodeEng, c.Net, c.Mem, lanai.DefaultConfig(myrinet.NodeID(i)))
		if r := cfg.Recovery; r != nil {
			nic.SetRecovery(lanai.Recovery{Timeout: r.NICTimeout, Retries: r.NICRetries})
		}
		cpu := sim.NewResource(nodeEng, fmt.Sprintf("host%d", i))
		mgr, err := core.NewManager(nodeEng, nic, cpu, c.Mem, core.Config{
			Policy:      cfg.Policy,
			Mode:        cfg.Mode,
			MaxContexts: cfg.Slots,
			Processors:  cfg.Nodes,
		})
		if err != nil {
			return nil, err
		}
		if err := mgr.InitNode(); err != nil {
			return nil, err
		}
		n := &Node{
			ID: myrinet.NodeID(i), NIC: nic, CPU: cpu, Mgr: mgr, Eng: nodeEng,
			cluster: c, procs: make(map[myrinet.JobID]*Proc),
			evictSeen: make([]int, cfg.Nodes),
		}
		n.swDoneFn = func(s core.SwitchStats) {
			ack := n.swAck
			n.swAck = nil
			n.deliverAck(s, ack)
		}
		c.nodes = append(c.nodes, n)
	}
	if group != nil {
		c.ctrl.engOf = func(node int) *sim.Engine { return c.nodes[node].Eng }
	}
	c.master = newMasterd(c)
	c.armChaos()
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the compute nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Master returns the manager daemon.
func (c *Cluster) Master() *Masterd { return c.master }

// Submit places a job in the gang matrix and starts the Figure 2 launch
// protocol. The job runs when its time slot is scheduled.
func (c *Cluster) Submit(spec JobSpec) (*Job, error) {
	job, err := c.master.submit(spec)
	if err == nil {
		c.armAuditTick()
	}
	return job, err
}

// Kill terminates a live job voluntarily (operator kill or scheduler
// resize), as opposed to the recovery layer's eviction kills: the job's
// slots are reclaimed, its processes are stopped and their contexts
// released on every node, and its completion callbacks fire with state
// JobKilled — but no node is marked dead and the survivors keep rotating.
func (c *Cluster) Kill(job *Job) error {
	return c.master.killVoluntary(job)
}

// Resize restarts a job at a new size: kill the old incarnation (its
// processes hold size-dependent state, so gang jobs are rigid within one
// incarnation) and submit the replacement spec. Returns the new job.
func (c *Cluster) Resize(job *Job, spec JobSpec) (*Job, error) {
	if err := c.Kill(job); err != nil {
		return nil, err
	}
	return c.Submit(spec)
}

// Compact runs an explicit slot-unification pass on the gang matrix —
// the migration step an online scheduler wants after a kill or resize
// opens holes — and returns the number of jobs moved. Row moves are pure
// bookkeeping (columns, and therefore processes, never migrate), but a
// move can land a suspended job in the active row, so a real switch is
// forced when anything moved.
func (c *Cluster) Compact() int {
	return c.master.compact()
}

// Run processes events until the cluster goes quiescent (all jobs done and
// the rotation stopped).
func (c *Cluster) Run() {
	if c.group != nil {
		c.group.Run()
		return
	}
	c.Eng.Run()
}

// RunUntil processes events up to the given virtual time.
func (c *Cluster) RunUntil(t sim.Time) {
	if c.group != nil {
		c.group.RunUntil(t)
		return
	}
	c.Eng.RunUntil(t)
}

// RunFor processes events for d more cycles.
func (c *Cluster) RunFor(d sim.Time) { c.RunUntil(c.Eng.Now() + d) }

// Fired returns the total number of events executed across every lane.
func (c *Cluster) Fired() uint64 {
	if c.group != nil {
		return c.group.Fired()
	}
	return c.Eng.Fired()
}

// SwitchHistory returns every node's recorded switch statistics.
func (c *Cluster) SwitchHistory() [][]core.SwitchStats {
	out := make([][]core.SwitchStats, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.Mgr.History()
	}
	return out
}

// reliableSend routes one daemon control message: a plain send with
// recovery disabled, a re-sent-until-done send with it enabled. dst < 0
// addresses the masterd (or is otherwise unattributed); dst >= 0 names the
// node whose shard the handler runs on. src is the engine the caller is
// executing on.
func (c *Cluster) reliableSend(src *sim.Engine, dst int, done func() bool, fn func()) {
	r := c.cfg.Recovery
	if r == nil {
		// The base protocol presents every daemon message unattributed to
		// the fault layer; keeping that here (rather than exposing dst)
		// preserves the injector's decision sequence byte-for-byte with
		// recovery off. The handler still runs on dst's lane.
		c.ctrl.sendRouted(src, dst, fn)
		return
	}
	c.ctrl.sendReliable(src, dst, r.CtrlTimeout, r.CtrlRetries, done, fn)
}

// node-side daemon actions -------------------------------------------------

// loadJob is the noded's handling of the masterd's job-load message: run
// COMM_init_job (context allocated, environment prepared — the process can
// already receive), fork the process, and notify the masterd.
func (n *Node) loadJob(job *Job, rank int) {
	n.CPU.Use(n.cluster.cfg.InitJobCost, func() {
		if job.state == JobDone || job.state == JobKilled {
			// The job was killed (or, with recovery re-sends, finished)
			// while this load message was in flight: allocating a context
			// now would leak it, since the kill's cleanup already ran.
			return
		}
		if _, dup := n.procs[job.ID]; dup {
			// Re-sent load (recovery): the job is already initialized; the
			// readiness notification has its own reliable delivery.
			return
		}
		alloc := n.Mgr.Alloc()
		fmCfg := fm.DefaultConfig(alloc.C0)
		if n.cluster.cfg.FMTweak != nil {
			n.cluster.cfg.FMTweak(&fmCfg)
		}
		ep, err := fm.NewEndpoint(n.Eng, n.NIC, n.CPU, n.cluster.Mem,
			fmCfg, job.ID, rank, job.nodeOf)
		if err != nil {
			panic(fmt.Sprintf("parpar: endpoint for job %d rank %d: %v", job.ID, rank, err))
		}
		p := &Proc{
			cluster: n.cluster, node: n, job: job, rank: rank,
			EP:      ep,
			program: job.Spec.NewProgram(rank),
		}
		if err := n.Mgr.InitJob(job.ID, rank, ep); err != nil {
			panic(fmt.Sprintf("parpar: InitJob: %v", err))
		}
		n.procs[job.ID] = p
		job.procs[rank] = p
		// Fork; the child notifies readiness through the noded.
		n.Eng.Schedule(n.cluster.cfg.ForkDelay, func() {
			n.cluster.reliableSend(n.Eng, -1, func() bool { return job.readySeen[rank] },
				func() { n.cluster.master.rankReady(job, rank) })
		})
	})
}

// startJob is the noded's handling of the masterd's all-up broadcast: it
// writes the sync byte on the pipe; FM_initialize returns and the process
// enters its program. The process only actually runs (SIGCONT) when a slot
// switch binds and resumes it — the masterd forces one after the job
// synchronizes, so resumption is consistent across all of the job's nodes.
func (n *Node) startJob(job *Job, rank int) {
	p := job.procs[rank]
	if p == nil || p.started {
		return
	}
	p.started = true
	p.program.Start(p)
}

// switchSlot is the noded's handling of the masterd's slot-switch
// broadcast: the three-stage context switch to this node's cell of the
// new row (or an idle switch when the cell is empty or the job has
// already terminated).
func (n *Node) switchSlot(epoch uint64, job myrinet.JobID, ack func(core.SwitchStats)) {
	if n.cluster.cfg.Recovery != nil {
		switch {
		case epoch < n.swEpoch:
			return // straggler from a closed round
		case epoch == n.swEpoch && n.swDone:
			// Watchdog re-send after completion: the ack was lost, not the
			// switch. Re-ack with the recorded stats.
			s := n.swStats
			n.cluster.ctrl.send(n.Eng, func() { ack(s) })
			return
		case epoch == n.swEpoch && n.swBusy:
			return // re-send overtook the switch in progress; ack follows
		}
		n.swEpoch, n.swBusy, n.swDone = epoch, true, false
	}
	var done func(core.SwitchStats)
	if n.cluster.cfg.Recovery == nil && n.swAck == nil {
		// Clean path: one switch per node per round, so the ack rides in
		// the node's prebuilt completion chain — no closures per round.
		n.swAck = ack
		done = n.swDoneFn
	} else {
		done = func(s core.SwitchStats) {
			if n.cluster.cfg.Recovery != nil {
				n.swBusy, n.swDone, n.swStats = false, true, s
			}
			n.cluster.ctrl.send(n.Eng, func() { ack(s) })
		}
	}
	if job != myrinet.NoJob {
		if _, known := n.procs[job]; known {
			if err := n.Mgr.SwitchTo(epoch, job, done); err != nil {
				panic(fmt.Sprintf("parpar: node %d switch to job %d: %v", n.ID, job, err))
			}
			return
		}
	}
	if err := n.Mgr.SwitchIdle(epoch, done); err != nil {
		panic(fmt.Sprintf("parpar: node %d idle switch: %v", n.ID, err))
	}
}

// endJob is the noded's handling of job termination: release the
// communication context and forget the process.
func (n *Node) endJob(job myrinet.JobID) {
	if _, ok := n.procs[job]; !ok {
		return
	}
	if err := n.Mgr.EndJob(job); err != nil {
		panic(fmt.Sprintf("parpar: EndJob: %v", err))
	}
	delete(n.procs, job)
}

// killJob is the noded's handling of a job termination it did not ask
// for: a recovery-layer eviction or a scheduler-initiated kill. Unlike
// endJob the process has not exited on its own, so it is stopped first —
// the endpoint is killed (not merely suspended: a suspended endpoint
// finishes an in-flight send when its host cost completes, and that
// packet would hit the wire after this node's queues were cleared,
// corrupting a still-live peer's fragment stream) and the proc marked
// killed, making any still-scheduled program activity inert — before its
// communication resources are released.
func (n *Node) killJob(job myrinet.JobID) {
	p, ok := n.procs[job]
	if !ok {
		return
	}
	p.killed = true
	p.EP.Kill()
	n.endJob(job)
}

// evictPeer is the noded's handling of the masterd's membership update: a
// node was declared failed. The card stops expecting it in flush/release
// phases and COMM_remove_node drops it from the routing-table view. gen is
// the eviction's generation stamp; a delivery at or below the applied
// watermark is a stale retransmission and must not touch the membership —
// without the latch, a resend racing the node's rejoin would prune the
// freshly readmitted incarnation from this card's view for good.
func (n *Node) evictPeer(id myrinet.NodeID, gen int) {
	if gen <= n.evictSeen[id] {
		return
	}
	n.evictSeen[id] = gen
	n.NIC.EvictPeer(id)
	if n.Mgr.InTopology(id) {
		if err := n.Mgr.RemoveNode(id); err != nil {
			panic(fmt.Sprintf("parpar: RemoveNode: %v", err))
		}
	}
}

// joinPeer is the noded's handling of the masterd's membership grow: a
// repaired node is back. COMM_add_node restores it to the routing-table
// view and the card expects its flush/release reports again; the noded
// then confirms over the reliable path — the masterd admits the joiner
// only after every survivor has confirmed. gen is the generation of the
// eviction this admission heals: applying it first (a no-op when the evict
// broadcast got here before the join, the normal order) collapses the
// out-of-order case where the join overtakes a delayed eviction.
func (n *Node) joinPeer(id myrinet.NodeID, gen int) {
	n.evictPeer(id, gen)
	if !n.Mgr.InTopology(id) {
		if err := n.Mgr.AddNode(id); err != nil {
			panic(fmt.Sprintf("parpar: AddNode: %v", err))
		}
		n.NIC.JoinPeer(id)
	}
	m := n.cluster.master
	i, j := int(id), int(n.ID)
	n.cluster.reliableSend(n.Eng, -1, func() bool { return m.joinAckSeen(i, j) },
		func() { m.joinAcked(i, j) })
}

// heartbeatCost is the noded's host-CPU charge for answering a liveness
// probe: the reply is issued only after the host CPU schedules the
// daemon, so a fail-stopped node — whose CPU is blocked forever — never
// answers. That silence is exactly what the masterd's miss budget turns
// into an eviction; a merely paused or slowed node answers late and the
// budget absorbs it.
const heartbeatCost sim.Time = 2_000

// heartbeat is the noded's handling of the masterd's liveness probe.
func (n *Node) heartbeat(seq uint64) {
	m := n.cluster.master
	i := int(n.ID)
	n.CPU.Use(heartbeatCost, func() {
		n.cluster.reliableSend(n.Eng, -1, func() bool { return m.hbSeenAtLeast(i, seq) },
			func() { m.hbReply(i, seq) })
	})
}

// reboot builds the node's fresh incarnation after a repair: a new card
// (attaching it replaces the dead incarnation's network handler), a new
// manager whose full-topology view is pruned to the masterd's current
// membership snapshot, and empty daemon state. The chaos observers are
// re-wired exactly as construction did for the first incarnation; the
// injector's CPU faults stay armed on the (now unblocked) host CPU, so a
// later fault in the plan still hits the new incarnation.
func (n *Node) reboot(deadPeers []myrinet.NodeID) {
	c := n.cluster
	nic := lanai.New(n.Eng, c.Net, c.Mem, lanai.DefaultConfig(n.ID))
	if r := c.cfg.Recovery; r != nil {
		nic.SetRecovery(lanai.Recovery{Timeout: r.NICTimeout, Retries: r.NICRetries})
	}
	mgr, err := core.NewManager(n.Eng, nic, n.CPU, c.Mem, core.Config{
		Policy:      c.cfg.Policy,
		Mode:        c.cfg.Mode,
		MaxContexts: c.cfg.Slots,
		Processors:  c.cfg.Nodes,
	})
	if err != nil {
		panic(fmt.Sprintf("parpar: rebooting node %d: %v", n.ID, err))
	}
	if err := mgr.InitNode(); err != nil {
		panic(fmt.Sprintf("parpar: rebooting node %d: %v", n.ID, err))
	}
	n.NIC, n.Mgr = nic, mgr
	for _, id := range deadPeers {
		nic.EvictPeer(id)
		if err := mgr.RemoveNode(id); err != nil {
			panic(fmt.Sprintf("parpar: rebooting node %d: %v", n.ID, err))
		}
	}
	n.procs = make(map[myrinet.JobID]*Proc)
	n.swEpoch, n.swBusy, n.swDone = 0, false, false
	n.swAck = nil
	c.armNodeObservers(n)
}

// repairNode runs at a NodeRepair instant, right after the injector
// unblocked the host CPU in the same event cascade. The masterd learns the
// fresh incarnation exists immediately — from here on membership updates
// reach the new card — and the reboot plus the rejoin request follow on
// the node's own lane and the ctrl network.
func (c *Cluster) repairNode(i int) {
	m := c.master
	m.nodeRebooted(i)
	// Snapshot the dead set (minus the rebooting node itself) on the global
	// lane: the fresh incarnation's topology must match the survivors'
	// view, and any eviction after this instant is broadcast to rebooted
	// incarnations too.
	var deadPeers []myrinet.NodeID
	for j, d := range m.dead {
		if d && j != i {
			deadPeers = append(deadPeers, myrinet.NodeID(j))
		}
	}
	node := c.nodes[i]
	c.Eng.CrossAt(node.Eng, c.Eng.Now(), func() {
		node.reboot(deadPeers)
		c.reliableSend(node.Eng, -1, func() bool { return m.rejoinRequested(i) },
			func() { m.rejoinRequest(i) })
	})
}
