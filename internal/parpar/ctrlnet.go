// Package parpar assembles the full cluster of the paper: compute nodes
// (host CPU + LANai card + noded daemon), the masterd manager host, the
// Myrinet data network, and the Ethernet control network. It implements
// the job-launch protocol of Figure 2 and drives the gang-scheduling
// rotation that triggers the three-stage buffer switch.
package parpar

import (
	"gangfm/internal/sim"
)

// ctrlNet models the 10 Mb/s switched Ethernet control network plus the
// daemon wakeup costs at each end: a message arrives after a base latency
// plus a uniformly distributed jitter. The jitter is what desynchronizes
// the nodeds at a context switch and makes the halt stage grow with the
// node count (Figure 7).
type ctrlNet struct {
	// eng is the lane the control network itself lives on: the single
	// engine of an unsharded cluster, or a shard group's global lane. All
	// latency sampling happens here, so the jitter RNG — a sequential
	// machine whose draw order must be deterministic — is consulted only
	// in serialized context.
	eng    *sim.Engine
	base   sim.Time
	jitter sim.Time
	rng    *sim.Rand

	// engOf, when set, maps a node to the shard engine owning it;
	// deliveries addressed to a node are inserted there so the callback
	// runs in the node's shard. Nil means everything runs on eng.
	engOf func(node int) *sim.Engine

	// intercept, when set, is consulted once per message with the
	// destination node (-1 for masterd-bound or unaddressed messages); it
	// returns extra latency to add and whether to drop the message. The
	// chaos injector's CtrlDelay/CtrlLoss faults plug in here.
	intercept func(now sim.Time, dst int) (extra sim.Time, drop bool)
}

func newCtrlNet(eng *sim.Engine, base, jitter sim.Time, rng *sim.Rand) *ctrlNet {
	return &ctrlNet{eng: eng, base: base, jitter: jitter, rng: rng}
}

// delay samples one message latency. Call only from eng's context (hop
// gets a node-side caller there first).
func (c *ctrlNet) delay() sim.Time {
	d := c.base
	if c.jitter > 0 {
		d += sim.Time(c.rng.Uint64() % uint64(c.jitter))
	}
	return d
}

// hop runs fn in the control network's own context. When the caller is
// already serial with it — same engine, no shard group, or a lockstep
// group (one goroutine, shared clock) — fn runs inline, which keeps the
// RNG draw order bit-identical to the unsharded simulator. Only a shard
// running concurrent windows must detour: the call is posted to the global
// lane at the caller's current time (daemon-to-masterd requests carry no
// modeled latency of their own; the sampled delivery delay is the whole
// cost, exactly as in the inline case).
func (c *ctrlNet) hop(src *sim.Engine, fn func()) {
	g := src.Group()
	if src == c.eng || g == nil || g.Serial() {
		fn()
		return
	}
	src.CrossAt(c.eng, src.Now(), fn)
}

// engFor returns the engine a delivery for the given node runs on.
func (c *ctrlNet) engFor(node int) *sim.Engine {
	if node >= 0 && c.engOf != nil {
		return c.engOf(node)
	}
	return c.eng
}

// deliver schedules one message to dst after d, subject to the intercept.
// Call only from eng's context.
func (c *ctrlNet) deliver(dst int, d sim.Time, fn func()) {
	c.deliverRouted(dst, dst, d, fn)
}

// deliverRouted is deliver with the fault-layer presentation (seen)
// decoupled from the execution site (node): the base-protocol daemons send
// unaddressed messages (seen = -1), yet the actions those messages trigger
// belong to a specific node's shard.
func (c *ctrlNet) deliverRouted(seen, node int, d sim.Time, fn func()) {
	if c.intercept != nil {
		extra, drop := c.intercept(c.eng.Now(), seen)
		if drop {
			return
		}
		d += extra
	}
	c.eng.CrossAt(c.engFor(node), c.eng.Now()+d, fn)
}

// deliverRoutedArg is deliverRouted for closure-free callers: fn receives
// arg at delivery. The hot per-round scheduler traffic uses this with
// pooled argument records so a switch round allocates no closures.
func (c *ctrlNet) deliverRoutedArg(seen, node int, d sim.Time, fn func(any), arg any) {
	if c.intercept != nil {
		extra, drop := c.intercept(c.eng.Now(), seen)
		if drop {
			return
		}
		d += extra
	}
	c.eng.CrossArgAt(c.engFor(node), c.eng.Now()+d, fn, arg)
}

// send delivers fn after one control-message latency. src is the engine
// the caller is executing on.
func (c *ctrlNet) send(src *sim.Engine, fn func()) {
	c.hop(src, func() { c.deliverRouted(-1, -1, c.delay(), fn) })
}

// sendRouted is send for the base protocol's unaddressed daemon messages
// whose handler nevertheless acts on one node: the intercept still sees
// dst = -1 (identical fault presentation), but fn runs on node's shard.
func (c *ctrlNet) sendRouted(src *sim.Engine, node int, fn func()) {
	c.hop(src, func() { c.deliverRouted(-1, node, c.delay(), fn) })
}

// sendTo delivers fn to a specific node after one control-message latency,
// so node-targeted faults apply.
func (c *ctrlNet) sendTo(src *sim.Engine, dst int, fn func()) {
	c.hop(src, func() { c.deliverRouted(dst, dst, c.delay(), fn) })
}

// sendReliable delivers fn like send and then, while done keeps reporting
// false, re-delivers it with exponential backoff: re-send k fires
// timeout<<k after the previous one, for at most retries re-sends. The
// daemons' real protocol would carry sequence numbers and acks; in the
// simulation the done predicate reads the receiver's state directly, which
// is exactly the information an ack would carry. A message still
// undelivered after the last re-send is abandoned — the switch watchdog
// and the eviction path own what happens to a permanently unreachable
// node.
func (c *ctrlNet) sendReliable(src *sim.Engine, dst int, timeout sim.Time, retries int, done func() bool, fn func()) {
	c.hop(src, func() {
		c.deliverOnce(dst, fn)
		c.armResend(dst, timeout, retries, 0, done, fn)
	})
}

// deliverOnce and armResend run in eng's context (sendReliable hops
// there); the retransmission timers and the done-predicate checks stay on
// that lane, where reading receiver state is barrier-safe.
func (c *ctrlNet) deliverOnce(dst int, fn func()) {
	if dst < 0 {
		c.deliverRouted(-1, -1, c.delay(), fn)
	} else {
		c.deliverRouted(dst, dst, c.delay(), fn)
	}
}

func (c *ctrlNet) armResend(dst int, timeout sim.Time, retries, attempt int, done func() bool, fn func()) {
	if attempt >= retries {
		return
	}
	c.eng.Schedule(timeout<<attempt, func() {
		if done() {
			return
		}
		c.deliverOnce(dst, fn)
		c.armResend(dst, timeout, retries, attempt+1, done, fn)
	})
}

// broadcast delivers fn(i) to each of n destinations, each with its own
// independently sampled latency — the multicast preloading of [Kavas et
// al. 2001] reaches all nodes in one send, but per-node delivery and
// daemon scheduling still jitter.
func (c *ctrlNet) broadcast(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		i := i
		c.deliver(i, c.delay(), func() { fn(i) })
	}
}

// serialBroadcast delivers fn(i) to each destination with a cumulative
// per-destination gap on top of the sampled latency: the masterd's
// slot-switch notifications go out as consecutive unicasts on the 10 Mb/s
// control Ethernet, so the skew between the first and last noded grows
// with the machine size. This skew is what makes the halt stage and the
// receive-buffer occupancy grow with the node count (Figures 7 and 8):
// early-notified nodes stop and keep absorbing traffic from nodes that
// have not yet heard.
func (c *ctrlNet) serialBroadcast(n int, gap sim.Time, fn func(i int)) {
	for i := 0; i < n; i++ {
		i := i
		c.deliver(i, c.delay()+sim.Time(i+1)*gap, func() { fn(i) })
	}
}
