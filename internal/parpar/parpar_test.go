package parpar

import (
	"testing"

	"gangfm/internal/core"
	"gangfm/internal/fm"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// testConfig returns a small-quantum config so tests rotate quickly.
func testConfig(nodes int) Config {
	cfg := DefaultConfig(nodes)
	cfg.Quantum = 400_000 // 2 ms
	cfg.CtrlJitter = 50_000
	cfg.ForkDelay = 50_000
	return cfg
}

// pingPong returns a two-rank program: rank 0 sends, rank 1 echoes, for
// `rounds` exchanges; both call Done with the round count.
func pingPong(rounds int) func(rank int) Program {
	return func(rank int) Program {
		return ProgramFunc(func(p *Proc) {
			count := 0
			if rank == 0 {
				p.EP.SetHandler(func(_, _ int, _ []byte) {
					count++
					if count == rounds {
						p.Done(count)
						return
					}
					p.EP.Send(1, 64, nil)
				})
				p.EP.Send(1, 64, nil)
			} else {
				p.EP.SetHandler(func(_, _ int, _ []byte) {
					count++
					p.EP.Send(0, 64, nil)
					if count == rounds {
						p.Done(count)
					}
				})
			}
		})
	}
}

// oneWay returns a program mirroring the paper's bandwidth benchmark:
// rank 0 streams msgs messages of size to rank 1; rank 1 sends a finish
// message back after the last one; both then call Done.
func oneWay(msgs, size int) func(rank int) Program {
	return func(rank int) Program {
		return ProgramFunc(func(p *Proc) {
			switch rank {
			case 0:
				sent := 0
				p.EP.SetHandler(func(_, _ int, _ []byte) { p.Done(sent) }) // finish message
				var fill func()
				fill = func() {
					for sent < msgs && p.EP.Send(1, size, nil) {
						sent++
					}
					if sent == msgs {
						p.EP.SetOnCanSend(nil)
					}
				}
				p.EP.SetOnCanSend(fill)
				fill()
			case 1:
				got := 0
				p.EP.SetHandler(func(_, _ int, _ []byte) {
					got++
					if got == msgs {
						p.EP.Send(0, 16, nil)
						p.Done(got)
					}
				})
			default:
				p.Done(0) // bystander ranks in larger jobs
			}
		})
	}
}

func TestSingleJobLifecycle(t *testing.T) {
	c, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(JobSpec{Name: "pp", Size: 2, NewProgram: pingPong(20)})
	if err != nil {
		t.Fatal(err)
	}
	if job.State() != JobLoading {
		t.Fatalf("state after submit = %v", job.State())
	}
	doneFired := false
	job.OnDone(func(j *Job) { doneFired = true })
	c.Run()
	if job.State() != JobDone {
		t.Fatalf("state after run = %v", job.State())
	}
	if !doneFired {
		t.Fatal("OnDone not fired")
	}
	if job.Results[0] != 20 || job.Results[1] != 20 {
		t.Fatalf("results = %v", job.Results)
	}
	if !(job.SubmitTime < job.SyncTime && job.SyncTime < job.DoneTime) {
		t.Fatalf("timeline inverted: %d %d %d", job.SubmitTime, job.SyncTime, job.DoneTime)
	}
	if c.Master().Jobs() != 0 {
		t.Fatal("job not retired from masterd")
	}
}

func TestJobStateString(t *testing.T) {
	if JobLoading.String() != "loading" || JobRunning.String() != "running" || JobDone.String() != "done" {
		t.Fatal("state names")
	}
}

func TestSubmitValidation(t *testing.T) {
	c, _ := New(testConfig(2))
	if _, err := c.Submit(JobSpec{Size: 0, NewProgram: pingPong(1)}); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := c.Submit(JobSpec{Size: 2}); err == nil {
		t.Error("missing program should fail")
	}
	if _, err := c.Submit(JobSpec{Size: 5, NewProgram: pingPong(1)}); err == nil {
		t.Error("oversized job should fail")
	}
}

func TestSlotTableFull(t *testing.T) {
	cfg := testConfig(2)
	cfg.Slots = 2
	c, _ := New(cfg)
	longJob := func(rank int) Program {
		return ProgramFunc(func(p *Proc) { /* never Done */ })
	}
	if _, err := c.Submit(JobSpec{Size: 2, NewProgram: longJob}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(JobSpec{Size: 2, NewProgram: longJob}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(JobSpec{Size: 2, NewProgram: longJob}); err == nil {
		t.Fatal("third job should exceed the 2-slot table")
	}
}

func TestTwoJobsGangScheduled(t *testing.T) {
	c, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := c.Submit(JobSpec{Name: "a", Size: 2, NewProgram: oneWay(300, 1024)})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.Submit(JobSpec{Name: "b", Size: 2, NewProgram: oneWay(300, 1024)})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if j1.State() != JobDone || j2.State() != JobDone {
		t.Fatalf("states: %v %v", j1.State(), j2.State())
	}
	if j1.Results[1] != 300 || j2.Results[1] != 300 {
		t.Fatalf("message counts: %v %v", j1.Results[1], j2.Results[1])
	}
	// Rotation must actually have happened: both jobs are in different
	// rows and both finished, so multiple epochs elapsed.
	if c.Master().Epoch() < 3 {
		t.Fatalf("only %d epochs, expected several rotations", c.Master().Epoch())
	}
	// Every node recorded switch history.
	for i, hist := range c.SwitchHistory() {
		if len(hist) == 0 {
			t.Fatalf("node %d has no switch history", i)
		}
	}
}

func TestGangInvariantOneJobPerNode(t *testing.T) {
	// Sample the cluster during a run: on every node, at most one
	// process may be running (endpoint resumed) at any time.
	c, _ := New(testConfig(2))
	c.Submit(JobSpec{Name: "a", Size: 2, NewProgram: oneWay(400, 512)})
	c.Submit(JobSpec{Name: "b", Size: 2, NewProgram: oneWay(400, 512)})
	for probe := 0; probe < 40; probe++ {
		c.RunFor(150_000)
		for _, n := range c.Nodes() {
			running := 0
			for _, p := range n.procs {
				if p.EP.Running() {
					running++
				}
			}
			if running > 1 {
				t.Fatalf("node %d has %d processes running simultaneously", n.ID, running)
			}
		}
	}
	c.Run()
}

func TestJobsOnDisjointNodesShareSlot(t *testing.T) {
	// Two size-2 jobs on a 4-node cluster pack into one row and finish
	// without any rotation beyond the initial activation.
	c, _ := New(testConfig(4))
	j1, _ := c.Submit(JobSpec{Name: "a", Size: 2, NewProgram: oneWay(50, 256)})
	j2, _ := c.Submit(JobSpec{Name: "b", Size: 2, NewProgram: oneWay(50, 256)})
	c.Run()
	if j1.State() != JobDone || j2.State() != JobDone {
		t.Fatal("jobs did not finish")
	}
	if j1.Placement.Row != 0 || j2.Placement.Row != 0 {
		t.Fatalf("rows: %d %d, want both 0", j1.Placement.Row, j2.Placement.Row)
	}
	// Sharing one row means no steady-state rotation: only the initial
	// activation switches (one per job-ready at most) occur.
	if got := c.Master().Epoch(); got < 1 || got > 3 {
		t.Fatalf("epochs = %d, want 1-3 (activation only, no rotation)", got)
	}
}

func TestIdleNodesParticipateInFlush(t *testing.T) {
	// A 3-node cluster with a 2-node job: node 2 is idle but must still
	// take part in every flush (halts counted from all nodes) — two jobs
	// force rotations.
	c, _ := New(testConfig(3))
	c.Submit(JobSpec{Name: "a", Size: 2, NewProgram: oneWay(200, 512)})
	c.Submit(JobSpec{Name: "b", Size: 2, NewProgram: oneWay(200, 512)})
	c.Run()
	idleHist := c.Nodes()[2].Mgr.History()
	if len(idleHist) == 0 {
		t.Fatal("idle node performed no switches")
	}
	for _, s := range idleHist {
		if s.To != myrinet.NoJob {
			t.Fatalf("idle node switched to job %d", s.To)
		}
	}
	if c.Nodes()[2].NIC.Stats().HaltsSent == 0 {
		t.Fatal("idle node sent no halt messages")
	}
}

func TestPartitionedClusterRuns(t *testing.T) {
	cfg := testConfig(2)
	cfg.Policy = fm.Partitioned
	cfg.Slots = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := c.Submit(JobSpec{Name: "a", Size: 2, NewProgram: oneWay(100, 512)})
	j2, _ := c.Submit(JobSpec{Name: "b", Size: 2, NewProgram: oneWay(100, 512)})
	c.Run()
	if j1.State() != JobDone || j2.State() != JobDone {
		t.Fatalf("states: %v %v", j1.State(), j2.State())
	}
	// Partitioned switches never flush.
	for _, n := range c.Nodes() {
		if n.NIC.Stats().HaltsSent != 0 {
			t.Fatal("partitioned cluster should not flush the network")
		}
	}
}

func TestDataIntegrityAcrossManyRotations(t *testing.T) {
	// Payload-verified stream under aggressive rotation: the ultimate
	// "no packet loss" check of §3.2.
	cfg := testConfig(2)
	cfg.Quantum = 200_000 // 1 ms: very aggressive switching
	c, _ := New(cfg)

	mk := func(rank int) Program {
		return ProgramFunc(func(p *Proc) {
			const msgs = 150
			if rank == 0 {
				sent := 0
				p.EP.SetHandler(func(_, _ int, _ []byte) { p.Done(sent) })
				var fill func()
				fill = func() {
					for sent < msgs {
						buf := make([]byte, 100)
						for i := range buf {
							buf[i] = byte(sent + i)
						}
						if !p.EP.Send(1, len(buf), buf) {
							return
						}
						sent++
					}
				}
				p.EP.SetOnCanSend(fill)
				fill()
			} else {
				got := 0
				p.EP.SetHandler(func(_, size int, data []byte) {
					for i := range data {
						if data[i] != byte(got+i) {
							t.Errorf("corrupt byte in message %d", got)
							return
						}
					}
					got++
					if got == msgs {
						p.EP.Send(0, 16, nil)
						p.Done(got)
					}
				})
			}
		})
	}
	c.Submit(JobSpec{Name: "stream", Size: 2, NewProgram: mk})
	c.Submit(JobSpec{Name: "rival", Size: 2, NewProgram: oneWay(150, 700)})
	c.Run()
	// Zero data packets dropped anywhere.
	for _, n := range c.Nodes() {
		for reason, count := range n.NIC.Stats().Drops {
			if count > 0 {
				t.Fatalf("node %d dropped %d packets (%v)", n.ID, count, reason)
			}
		}
	}
}

func TestSwitchStatsPlausible(t *testing.T) {
	cfg := testConfig(4)
	cfg.Mode = core.ValidOnly
	c, _ := New(cfg)
	c.Submit(JobSpec{Name: "a", Size: 4, NewProgram: oneWay(500, 1024)})
	c.Submit(JobSpec{Name: "b", Size: 4, NewProgram: oneWay(500, 1024)})
	c.Run()
	checked := 0
	for _, hist := range c.SwitchHistory() {
		for _, s := range hist {
			if s.To == myrinet.NoJob && s.From == myrinet.NoJob {
				continue
			}
			checked++
			if s.Copy > 2_500_000 {
				t.Fatalf("improved copy took %d cycles, over the paper's 2.5M bound", s.Copy)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no real switches recorded")
	}
}

func TestRunFor(t *testing.T) {
	c, _ := New(testConfig(2))
	c.Submit(JobSpec{Name: "a", Size: 2, NewProgram: oneWay(1000, 1024)})
	c.RunFor(100_000)
	if c.Eng.Now() != 100_000 {
		t.Fatalf("Now = %d", c.Eng.Now())
	}
	before := c.Eng.Now()
	c.RunFor(50_000)
	if c.Eng.Now() != before+50_000 {
		t.Fatal("RunFor did not advance correctly")
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config should fail")
	}
	if _, err := New(Config{Nodes: 2, Slots: 0, Quantum: 1}); err == nil {
		t.Fatal("zero slots should fail")
	}
	if _, err := New(Config{Nodes: 2, Slots: 2}); err == nil {
		t.Fatal("zero quantum should fail")
	}
}

func TestEndpointStatsAfterRun(t *testing.T) {
	c, _ := New(testConfig(2))
	job, _ := c.Submit(JobSpec{Name: "a", Size: 2, NewProgram: oneWay(100, 2048)})
	c.Run()
	tx := job.procs[0].EP.Stats()
	rx := job.procs[1].EP.Stats()
	if tx.MessagesSent != 100 || rx.MessagesRecvd != 100 {
		t.Fatalf("sent %d recvd %d", tx.MessagesSent, rx.MessagesRecvd)
	}
	if tx.PayloadBytesSent != 100*2048 || rx.PayloadBytesRecv != 100*2048 {
		t.Fatalf("bytes sent %d recvd %d", tx.PayloadBytesSent, rx.PayloadBytesRecv)
	}
	wantPkts := uint64(100 * 2) // 2048 B = 2 fragments
	if tx.PacketsSent != wantPkts {
		t.Fatalf("packets sent %d, want %d", tx.PacketsSent, wantPkts)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		c, _ := New(testConfig(2))
		j, _ := c.Submit(JobSpec{Name: "a", Size: 2, NewProgram: oneWay(200, 777)})
		c.Submit(JobSpec{Name: "b", Size: 2, NewProgram: pingPong(50)})
		c.Run()
		return j.DoneTime, c.Eng.Fired()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", t1, e1, t2, e2)
	}
}

// TestFlushGuaranteesEmptyNetwork asserts the protocol invariant the whole
// paper rests on: when a node's flush completes and its buffer copy is
// about to run, the outgoing job has zero data packets anywhere on the
// wire — so the copy captures the complete communication state.
func TestFlushGuaranteesEmptyNetwork(t *testing.T) {
	cfg := testConfig(4)
	c, _ := New(cfg)
	violations := 0
	for _, n := range c.Nodes() {
		n := n
		n.Mgr.OnPreCopy = func(from, to myrinet.JobID) {
			if from != myrinet.NoJob && c.Net.InFlight(from) != 0 {
				violations++
				t.Errorf("node %d: job %d has %d packets in flight at copy time",
					n.ID, from, c.Net.InFlight(from))
			}
		}
	}
	c.Submit(JobSpec{Name: "a", Size: 4, NewProgram: oneWay(400, 1536)})
	c.Submit(JobSpec{Name: "b", Size: 4, NewProgram: oneWay(400, 1536)})
	c.Run()
	if violations > 0 {
		t.Fatalf("%d flush invariant violations", violations)
	}
	// The test must actually have exercised real switches.
	real := 0
	for _, hist := range c.SwitchHistory() {
		for _, s := range hist {
			if s.From != myrinet.NoJob {
				real++
			}
		}
	}
	if real == 0 {
		t.Fatal("no real switches sampled")
	}
}

func TestSerialBroadcastSkew(t *testing.T) {
	// The masterd's switch notifications are serialized unicasts: later
	// destinations hear strictly later (modulo jitter bounded by the
	// configured maximum).
	eng := sim.NewEngine()
	rng := sim.NewRand(3)
	ctrl := newCtrlNet(eng, 1000, 500, rng)
	arrival := make([]sim.Time, 8)
	ctrl.serialBroadcast(8, 10_000, func(i int) { arrival[i] = eng.Now() })
	eng.Run()
	for i := 1; i < len(arrival); i++ {
		// gap 10_000 >> jitter 500, so ordering is strict.
		if arrival[i] <= arrival[i-1] {
			t.Fatalf("serial broadcast not ordered: %v", arrival)
		}
	}
	span := arrival[len(arrival)-1] - arrival[0]
	if span < 7*10_000-500 { // 7 gaps, minus at most one jitter width
		t.Fatalf("skew span %d below the serialization floor", span)
	}
}

func TestCtrlNetJitterBounds(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRand(9)
	ctrl := newCtrlNet(eng, 2000, 1000, rng)
	for i := 0; i < 200; i++ {
		d := ctrl.delay()
		if d < 2000 || d >= 3000 {
			t.Fatalf("delay %d outside [base, base+jitter)", d)
		}
	}
}

func TestJobRepAccessors(t *testing.T) {
	c, _ := New(testConfig(2))
	job, _ := c.Submit(JobSpec{Name: "acc", Size: 2, NewProgram: pingPong(3)})
	c.Run()
	p := job.procs[0]
	if p.Rank() != 0 || p.Size() != 2 || p.Job() != job.ID {
		t.Fatal("proc accessors wrong")
	}
	if p.NodeID() != job.nodeOf[0] {
		t.Fatal("NodeID mismatch")
	}
}
