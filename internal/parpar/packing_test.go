package parpar

import (
	"testing"

	"gangfm/internal/gang"
)

// idleSpec is a job whose processes finish immediately (workload.Idle
// would import-cycle back into parpar).
func idleSpec(name string, ranks int) JobSpec {
	return JobSpec{
		Name: name,
		Size: ranks,
		NewProgram: func(rank int) Program {
			return ProgramFunc(func(p *Proc) { p.Done(nil) })
		},
	}
}

// TestConfigPacking checks that Config.Packing reaches the gang matrix and
// changes where jobs land: with four nodes, a size-1 job followed by a
// size-2 job goes to the free buddy block {2,3} under DHC but packs
// greedily to {1,2} under first-fit.
func TestConfigPacking(t *testing.T) {
	cases := []struct {
		policy   gang.Policy
		wantCols []int
	}{
		{nil, []int{2, 3}},             // default buddy
		{gang.Buddy{}, []int{2, 3}},    // explicit buddy
		{gang.FirstFit{}, []int{1, 2}}, // greedy packing
	}
	for _, tc := range cases {
		cfg := DefaultConfig(4)
		cfg.Packing = tc.policy
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(idleSpec("one", 1)); err != nil {
			t.Fatal(err)
		}
		j2, err := c.Submit(idleSpec("two", 2))
		if err != nil {
			t.Fatal(err)
		}
		p, ok := c.Master().Matrix().Placement(j2.ID)
		if !ok {
			t.Fatal("job 2 not placed")
		}
		name := "nil"
		if tc.policy != nil {
			name = tc.policy.Name()
		}
		if len(p.Cols) != 2 || p.Cols[0] != tc.wantCols[0] || p.Cols[1] != tc.wantCols[1] {
			t.Errorf("%s: job 2 at cols %v, want %v", name, p.Cols, tc.wantCols)
		}
	}
}
