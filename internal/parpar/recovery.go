package parpar

// recovery.go defines the opt-in self-healing layer's tuning knobs. The
// mechanisms live where the protocols live — control-packet retransmission
// in internal/lanai, reliable daemon messaging in ctrlnet.go, the switch
// watchdog and eviction in masterd.go — this file only gathers the timer
// budgets and documents how they relate.
//
// The budgets are layered so each mechanism resolves before the one above
// it loses patience:
//
//	NIC phase force-complete  ≈ NICTimeout·(2^(NICRetries+1)-1)   (~3.5 quanta at defaults)
//	masterd node eviction     ≈ AckTimeout·(2^(AckRetries+1)-1)   (~14 quanta at defaults)
//	recovery-liveness auditor   recoveryStallRounds quanta          (20 quanta)
//
// A healthy-but-lossy node therefore always finishes its switch (via
// degraded flush) and acks well before the watchdog would evict it; only a
// node that cannot ack at all — a crashed host CPU, a severed control
// link — crosses the eviction deadline; and the auditor's liveness alarm
// fires only if even eviction failed to unwedge the round.

import "gangfm/internal/sim"

// Recovery enables and parameterizes the self-healing switch path. Nil on
// Config means fully disabled: no timers are armed, no message is ever
// re-sent, and the cluster behaves byte-identically to the base protocol.
type Recovery struct {
	// NICTimeout is the LANai's first Halt/Ready retransmission deadline,
	// measured from its local phase transition; attempt i fires after
	// NICTimeout<<i (exponential backoff).
	NICTimeout sim.Time
	// NICRetries bounds the per-epoch retransmission attempts of each
	// phase; after the last one the phase completes degraded, without the
	// missing peers' control packets.
	NICRetries int

	// CtrlTimeout is the first re-send deadline for daemon control
	// messages (job load, readiness, start, completion, termination),
	// doubling per attempt.
	CtrlTimeout sim.Time
	// CtrlRetries bounds the re-sends of one control message; an
	// undeliverable message is abandoned afterwards (the watchdog and
	// eviction path own the consequences).
	CtrlRetries int

	// AckTimeout is the masterd switch watchdog's first deadline: a
	// rotation whose acknowledgements are incomplete re-sends the
	// slot-switch notification to the silent nodes, backing off ×2.
	AckTimeout sim.Time
	// AckRetries is how many watchdog re-sends a node may ignore; at the
	// next deadline it is declared suspect and evicted.
	AckRetries int

	// HeartbeatEvery arms the masterd's liveness probe: every interval it
	// pings each live node on the ctrl network and the noded replies over
	// the reliable path. Zero (the default, including DefaultRecovery's)
	// leaves the heartbeat off — the ack watchdog above already covers
	// every mode that rotates. The heartbeat exists for the ack-less
	// regimes: an idle rotation, or batch mode's single slot where the
	// same-row skip means no switch is ever broadcast, so a fail-stop
	// crash is otherwise undetectable.
	HeartbeatEvery sim.Time
	// HeartbeatMisses is how many consecutive intervals a node may stay
	// silent before the masterd declares it dead and evicts it; detection
	// latency is therefore ≈ (HeartbeatMisses+1)·HeartbeatEvery. Must be
	// >= 1 when the heartbeat is armed.
	HeartbeatMisses int
}

// DefaultRecovery returns the budgets described above for a quantum. The
// NIC timeout is half a quantum: it must exceed the worst-case skew
// between two peers' flush starts — the masterd's switch broadcast is
// serialized at CtrlSerialGap per node plus delivery jitter — or a
// healthy-but-late peer triggers clean-path retransmission. At realistic
// quanta (tens of ms) half a quantum dwarfs that skew; stress configs that
// push the jitter toward the quantum itself should tune this up.
func DefaultRecovery(quantum sim.Time) Recovery {
	return Recovery{
		NICTimeout:  quantum / 2,
		NICRetries:  2,
		CtrlTimeout: quantum / 4,
		CtrlRetries: 6,
		AckTimeout:  2 * quantum,
		AckRetries:  2,
	}
}

// validate rejects budgets that cannot work (a zero timeout would spin the
// event loop; negative retries make the first deadline evict).
func (r *Recovery) validate() error {
	if r.NICTimeout <= 0 || r.CtrlTimeout <= 0 || r.AckTimeout <= 0 {
		return errRecoveryTimeout
	}
	if r.NICRetries < 0 || r.CtrlRetries < 0 || r.AckRetries < 0 {
		return errRecoveryRetries
	}
	if r.HeartbeatEvery < 0 {
		return errRecoveryTimeout
	}
	if r.HeartbeatEvery > 0 && r.HeartbeatMisses < 1 {
		return errHeartbeatMisses
	}
	return nil
}

var (
	errRecoveryTimeout = recoveryErr("recovery timeouts must be positive")
	errRecoveryRetries = recoveryErr("recovery retry counts must be non-negative")
	errHeartbeatMisses = recoveryErr("an armed heartbeat needs a miss budget of at least 1")
)

type recoveryErr string

func (e recoveryErr) Error() string { return "parpar: " + string(e) }
