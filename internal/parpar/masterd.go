package parpar

import (
	"fmt"

	"gangfm/internal/core"
	"gangfm/internal/gang"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// Masterd is the cluster manager daemon: it owns the gang matrix, loads
// jobs (Figure 2), and drives the round-robin slot rotation whose switch
// broadcast triggers the three-stage buffer switch on every node.
type Masterd struct {
	c      *Cluster
	matrix *gang.Matrix
	jobs   map[myrinet.JobID]*Job
	nextID myrinet.JobID

	epoch     uint64
	ticking   bool
	lastRow   int
	activated bool

	// in-flight rotation bookkeeping
	inFlight   bool
	acks       int
	quantumUp  bool
	roundStart sim.Time
	// kickASAP requests the next rotation as soon as the in-flight round
	// completes, without waiting for the quantum — set when a job
	// finishes its Figure 2 synchronization so it starts promptly.
	kickASAP bool
	// skipEv is the pending no-switch-needed re-check, cancelable when a
	// job-ready event wants an immediate rotation.
	skipEv sim.Event
}

func newMasterd(c *Cluster) *Masterd {
	return &Masterd{
		c:       c,
		matrix:  gang.NewMatrixPolicy(c.cfg.Nodes, c.cfg.Slots, c.cfg.Packing),
		jobs:    make(map[myrinet.JobID]*Job),
		nextID:  1,
		lastRow: -1,
	}
}

// Matrix exposes the gang matrix (read-only use).
func (m *Masterd) Matrix() *gang.Matrix { return m.matrix }

// Epoch returns the current switch round number.
func (m *Masterd) Epoch() uint64 { return m.epoch }

// Jobs returns the number of live jobs.
func (m *Masterd) Jobs() int { return len(m.jobs) }

// activeRow returns the currently scheduled row (-1 before the first
// rotation).
func (m *Masterd) activeRow() int {
	if !m.activated {
		return -1
	}
	return m.lastRow
}

func (m *Masterd) submit(spec JobSpec) (*Job, error) {
	if spec.Size <= 0 {
		return nil, fmt.Errorf("parpar: job %q has size %d", spec.Name, spec.Size)
	}
	if spec.NewProgram == nil {
		return nil, fmt.Errorf("parpar: job %q has no program", spec.Name)
	}
	id := m.nextID
	placement, err := m.matrix.Place(id, spec.Size)
	if err != nil {
		return nil, err
	}
	m.nextID++
	job := &Job{
		ID: id, Spec: spec, Placement: placement,
		nodeOf:     make([]myrinet.NodeID, spec.Size),
		procs:      make([]*Proc, spec.Size),
		Results:    make([]any, spec.Size),
		SubmitTime: m.c.Eng.Now(),
	}
	for rank, col := range placement.Cols {
		job.nodeOf[rank] = myrinet.NodeID(col)
	}
	m.jobs[id] = job

	// Figure 2: notify each allocated node to load the job.
	for rank, col := range placement.Cols {
		rank, col := rank, col
		m.c.ctrl.send(func() { m.c.nodes[col].loadJob(job, rank) })
	}
	m.maybeTick()
	return job, nil
}

// rankReady collects the per-node process-created notifications; once all
// arrive, the all-up synchronization is broadcast (Figure 2).
func (m *Masterd) rankReady(job *Job) {
	job.readyRanks++
	if job.readyRanks < job.Spec.Size {
		return
	}
	job.state = JobRunning
	job.SyncTime = m.c.Eng.Now()
	for rank, col := range job.Placement.Cols {
		rank, col := rank, col
		m.c.ctrl.send(func() { m.c.nodes[col].startJob(job, rank) })
	}
	// Force the next rotation to perform a real slot switch even if it
	// lands on the already-active row — the new job's processes are
	// resumed only through a switch — and request it promptly rather
	// than waiting out the quantum.
	m.activated = false
	m.kickASAP = true
	m.advance()
}

// rankDone collects per-rank completions; when a job finishes it leaves
// the matrix and its contexts are released cluster-wide.
func (m *Masterd) rankDone(job *Job, rank int, result any) {
	if job.state == JobDone {
		return
	}
	job.Results[rank] = result
	job.doneRanks++
	if job.doneRanks < job.Spec.Size {
		return
	}
	job.state = JobDone
	job.DoneTime = m.c.Eng.Now()
	if err := m.matrix.Remove(job.ID); err != nil {
		panic(fmt.Sprintf("parpar: removing done job: %v", err))
	}
	if m.matrix.Policy().UnifyOnExit() {
		// Slot unification may have migrated a suspended job into the
		// active row, so the row is no longer fully bound and the
		// same-row skip in tick must not elide the next switch. Force a
		// real switch, promptly, exactly as rankReady does.
		m.activated = false
		m.kickASAP = true
	}
	delete(m.jobs, job.ID)
	for _, col := range job.Placement.Cols {
		col := col
		m.c.ctrl.send(func() { m.c.nodes[col].endJob(job.ID) })
	}
	for _, fn := range job.onDone {
		fn(job)
	}
	m.advance()
}

// maybeTick starts the rotation loop if it is not running.
func (m *Masterd) maybeTick() {
	if m.ticking {
		return
	}
	m.ticking = true
	m.tick()
}

// advance starts the next rotation when permitted: never while a switch
// round is in flight, and otherwise once the quantum has elapsed — or
// immediately when a job-ready kick is pending.
func (m *Masterd) advance() {
	if m.inFlight {
		return
	}
	if m.quantumUp || m.kickASAP {
		m.tick()
	}
}

// tick rotates to the next time slot. The switch broadcast goes to every
// node (all LANais participate in the flush protocol); the next tick fires
// once the quantum has elapsed AND every node has acknowledged switch
// completion — the masterd never overlaps rotations.
func (m *Masterd) tick() {
	if m.inFlight {
		return
	}
	m.kickASAP = false
	m.skipEv.Cancel()
	row := m.matrix.Rotate()
	if row == -1 {
		m.ticking = false
		m.activated = false
		m.lastRow = -1
		return
	}
	if m.activated && row == m.lastRow {
		// Single populated slot: nothing to switch; check again next
		// quantum (or sooner, if a job-ready kick cancels the wait).
		m.skipEv = m.c.Eng.Schedule(m.c.cfg.Quantum, m.tick)
		return
	}
	m.lastRow = row
	m.activated = true
	m.epoch++
	epoch := m.epoch

	m.inFlight = true
	m.acks = 0
	m.quantumUp = false
	m.roundStart = m.c.Eng.Now()
	// Snapshot the row's per-node targets now, so every node of the
	// round sees the same decision regardless of delivery jitter. A job
	// becomes a switch target only once its Figure 2 synchronization
	// completed: before that, some nodes may not even have allocated its
	// context, and binding it on a subset would let senders race ahead
	// of receivers — exactly the packet loss the sync exists to prevent.
	targets := make([]myrinet.JobID, len(m.c.nodes))
	for i := range targets {
		targets[i] = myrinet.NoJob
		if id := m.matrix.JobAt(row, i); id != myrinet.NoJob {
			if job, ok := m.jobs[id]; ok && job.state == JobRunning {
				targets[i] = id
			}
		}
	}
	m.c.ctrl.serialBroadcast(len(m.c.nodes), m.c.cfg.CtrlSerialGap, func(i int) {
		m.c.nodes[i].switchSlot(epoch, targets[i], func(core.SwitchStats) {
			m.acks++
			if m.acks == len(m.c.nodes) {
				m.inFlight = false
			}
			m.advance()
		})
	})
	m.c.Eng.Schedule(m.c.cfg.Quantum, func() {
		// A later round (started early by a job-ready kick) owns the
		// pacing now; this round's timer is stale.
		if m.epoch != epoch {
			return
		}
		m.quantumUp = true
		m.advance()
	})
}
