package parpar

import (
	"fmt"
	"sort"

	"gangfm/internal/core"
	"gangfm/internal/gang"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// Masterd is the cluster manager daemon: it owns the gang matrix, loads
// jobs (Figure 2), and drives the round-robin slot rotation whose switch
// broadcast triggers the three-stage buffer switch on every node.
type Masterd struct {
	c      *Cluster
	matrix *gang.Matrix
	jobs   map[myrinet.JobID]*Job
	nextID myrinet.JobID

	epoch     uint64
	ticking   bool
	lastRow   int
	activated bool

	// in-flight rotation bookkeeping
	inFlight   bool
	acks       int
	quantumUp  bool
	roundStart sim.Time
	// kickASAP requests the next rotation as soon as the in-flight round
	// completes, without waiting for the quantum — set when a job
	// finishes its Figure 2 synchronization so it starts promptly.
	kickASAP bool
	// skipEv is the pending no-switch-needed re-check, cancelable when a
	// job-ready event wants an immediate rotation.
	skipEv sim.Event

	// Recovery bookkeeping (all dormant with Recovery nil). dead marks
	// evicted nodes, evictedAt when each was evicted. Per round: needAcks
	// is the live-node count the round waits for, ackedBy dedups the
	// per-node acknowledgements (the watchdog's re-sends mean one node
	// can ack more than once), roundTargets is the broadcast snapshot the
	// watchdog re-sends from, and ackWatch the pending watchdog deadline.
	dead         []bool
	evictedAt    map[int]sim.Time
	needAcks     int
	ackedBy      []bool
	roundTargets []myrinet.JobID
	ackWatch     sim.Event
	// onEvict hooks fire when a node is declared dead — after its matrix
	// column is killed, before the spanning jobs are — so a scheduler can
	// shrink its own capacity caches before kill callbacks cascade into
	// fresh placement decisions.
	onEvict []func(node int)
	// onRejoin hooks mirror onEvict for repair: they fire when a repaired
	// node is admitted back, after its matrix column is revived, so a
	// scheduler can re-expand its capacity caches before draining a
	// backlog into the recovered node.
	onRejoin []func(node int)

	// Heartbeat state (dormant unless Recovery.HeartbeatEvery > 0): every
	// interval the masterd pings each live node on the ctrl network and the
	// noded answers over the reliable path. hbPending marks nodes whose
	// latest ping is unanswered, hbMiss counts consecutive silent
	// intervals, hbSeen is the newest sequence each node replied to.
	hbTicking bool
	hbSeq     uint64
	hbPending []bool
	hbMiss    []int
	hbSeen    []uint64
	hbFn      func()

	// Rejoin protocol state. rebooted marks dead nodes whose fresh
	// incarnation exists (set synchronously at the repair instant, so
	// membership broadcasts reach the new card from then on); rejoinAsked
	// marks nodes whose rejoin request has reached the masterd (the
	// request's reliable-send done predicate). Nodes settle one at a time:
	// joining is the index mid-admission (-1 when idle), and
	// joinAckFrom/joinNeed track which survivors have confirmed re-adding
	// it. While joining >= 0 the rotation cannot start a round, so no
	// flush/release epoch is open anywhere when memberships grow.
	rebooted    []bool
	rejoinAsked []bool
	rejoinQueue []int
	joining     int
	joinAckFrom []bool
	joinNeed    int

	// downs records every eviction as a [From,To) downtime window per node
	// (To == 0 while the node is still down); a closed window is a
	// completed rejoin. Unlike evictedAt, entries survive the rejoin, so
	// availability accounting sees the full history.
	downs map[int][]downWindow

	// Clean-path round state, reused every rotation so the steady-state
	// scheduler loop allocates nothing: targets is the per-node switch
	// decision snapshot, swMsgs the per-node notification records the
	// control network delivers (swArgs pre-boxes their pointers), and
	// cleanAckFn/tickFn/quantumFn the prebuilt callbacks.
	targets  []myrinet.JobID
	swMsgs   []switchMsg
	swArgs   []any
	qPool    []*quantumMsg
	cleanAck func(core.SwitchStats)
	tickFn   func()
}

// switchMsg is one node's slot-switch notification for the current round.
// The records live in Masterd.swMsgs and are rewritten per round on the
// global lane before the deliveries are inserted — a node lane reads its
// record exactly once, at delivery, and the next round cannot start (and
// overwrite) until every node has acknowledged.
type switchMsg struct {
	m      *Masterd
	node   int
	epoch  uint64
	target myrinet.JobID
}

func switchMsgFn(a any) {
	s := a.(*switchMsg)
	s.m.c.nodes[s.node].switchSlot(s.epoch, s.target, s.m.cleanAck)
}

// quantumMsg carries a round's quantum-elapsed check. Pooled per masterd;
// scheduled and fired on the global lane only.
type quantumMsg struct {
	m     *Masterd
	epoch uint64
}

func quantumFn(a any) {
	q := a.(*quantumMsg)
	m, epoch := q.m, q.epoch
	m.qPool = append(m.qPool, q)
	// A later round (started early by a job-ready kick) owns the pacing
	// now; this round's timer is stale.
	if m.epoch != epoch {
		return
	}
	m.quantumUp = true
	m.advance()
}

func newMasterd(c *Cluster) *Masterd {
	m := &Masterd{
		c:           c,
		matrix:      gang.NewMatrixPolicy(c.cfg.Nodes, c.cfg.Slots, c.cfg.Packing),
		jobs:        make(map[myrinet.JobID]*Job),
		nextID:      1,
		lastRow:     -1,
		dead:        make([]bool, c.cfg.Nodes),
		evictedAt:   make(map[int]sim.Time),
		needAcks:    c.cfg.Nodes,
		rebooted:    make([]bool, c.cfg.Nodes),
		rejoinAsked: make([]bool, c.cfg.Nodes),
		joining:     -1,
		downs:       make(map[int][]downWindow),
		targets:     make([]myrinet.JobID, c.cfg.Nodes),
		swMsgs:      make([]switchMsg, c.cfg.Nodes),
		swArgs:      make([]any, c.cfg.Nodes),
	}
	for i := range m.swMsgs {
		m.swMsgs[i].m = m
		m.swMsgs[i].node = i
		m.swArgs[i] = &m.swMsgs[i]
	}
	m.tickFn = m.tick
	// The per-node switch acknowledgement: every ack callback of a clean
	// round is identical (the stats argument is unused), so one shared
	// function value serves all nodes of all rounds.
	m.cleanAck = func(core.SwitchStats) {
		m.acks++
		if m.acks == len(m.c.nodes) {
			m.inFlight = false
		}
		m.advance()
	}
	return m
}

// liveNodes counts the nodes not yet evicted.
func (m *Masterd) liveNodes() int {
	n := 0
	for _, d := range m.dead {
		if !d {
			n++
		}
	}
	return n
}

// Matrix exposes the gang matrix (read-only use).
func (m *Masterd) Matrix() *gang.Matrix { return m.matrix }

// Epoch returns the current switch round number.
func (m *Masterd) Epoch() uint64 { return m.epoch }

// Jobs returns the number of live jobs.
func (m *Masterd) Jobs() int { return len(m.jobs) }

// NodeDead reports whether the recovery layer has evicted node i.
func (m *Masterd) NodeDead(i int) bool {
	return i >= 0 && i < len(m.dead) && m.dead[i]
}

// EvictedNodes returns the evicted node indices in ascending order.
func (m *Masterd) EvictedNodes() []int {
	var out []int
	for i, d := range m.dead {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// LiveNodes returns the number of nodes not yet evicted — the machine's
// surviving capacity.
func (m *Masterd) LiveNodes() int { return m.liveNodes() }

// EvictedAt returns when node i was evicted; ok is false if it is alive.
func (m *Masterd) EvictedAt(i int) (sim.Time, bool) {
	t, ok := m.evictedAt[i]
	return t, ok
}

// OnEvict registers a hook called whenever a node is declared dead. The
// hook runs after the node's matrix column has been killed and before the
// jobs spanning it are, so capacity queries from inside the hook (and from
// the kill callbacks that follow) already see the shrunken machine.
func (m *Masterd) OnEvict(fn func(node int)) {
	m.onEvict = append(m.onEvict, fn)
}

// activeRow returns the currently scheduled row (-1 before the first
// rotation).
func (m *Masterd) activeRow() int {
	if !m.activated {
		return -1
	}
	return m.lastRow
}

func (m *Masterd) submit(spec JobSpec) (*Job, error) {
	if spec.Size <= 0 {
		return nil, fmt.Errorf("parpar: job %q has size %d", spec.Name, spec.Size)
	}
	if spec.NewProgram == nil {
		return nil, fmt.Errorf("parpar: job %q has no program", spec.Name)
	}
	id := m.nextID
	placement, err := m.matrix.Place(id, spec.Size)
	if err != nil {
		return nil, err
	}
	m.nextID++
	job := &Job{
		ID: id, Spec: spec, Placement: placement,
		nodeOf:     make([]myrinet.NodeID, spec.Size),
		procs:      make([]*Proc, spec.Size),
		readySeen:  make([]bool, spec.Size),
		doneSeen:   make([]bool, spec.Size),
		Results:    make([]any, spec.Size),
		SubmitTime: m.c.Eng.Now(),
	}
	for rank, col := range placement.Cols {
		job.nodeOf[rank] = myrinet.NodeID(col)
	}
	m.jobs[id] = job

	// Figure 2: notify each allocated node to load the job.
	for rank, col := range placement.Cols {
		rank, col := rank, col
		m.c.reliableSend(m.c.Eng, col, func() bool { return job.procs[rank] != nil },
			func() { m.c.nodes[col].loadJob(job, rank) })
	}
	if m.c.cfg.Recovery != nil {
		m.armLaunchWatch(job)
	}
	m.maybeTick()
	m.armHeartbeat()
	return job, nil
}

// armLaunchWatch supervises the job's Figure 2 load phase. A node that has
// crashed while idle keeps acknowledging switch rounds — with no buffers
// bound, the three-stage switch never touches its host CPU — so the switch
// watchdog cannot see it; the load fork is the first point where such a
// node must spend CPU or go visibly silent. The deadline sits past the
// reliable ctrl-send retry budget (CtrlTimeout·(2^CtrlRetries−1) is the
// last re-send) plus one ack window, so only a node that ignored every
// re-send is declared failed.
func (m *Masterd) armLaunchWatch(job *Job) {
	rec := m.c.cfg.Recovery
	deadline := rec.CtrlTimeout*sim.Time((1<<rec.CtrlRetries)-1) + rec.AckTimeout
	m.c.Eng.Schedule(deadline, func() {
		if job.state != JobLoading {
			return
		}
		var evict []int
		seen := make(map[int]bool)
		for rank, col := range job.Placement.Cols {
			if job.procs[rank] == nil && !m.dead[col] && !seen[col] {
				seen[col] = true
				evict = append(evict, col)
			}
		}
		sort.Ints(evict)
		for _, col := range evict {
			m.evictNode(col)
		}
	})
}

// rankReady collects the per-node process-created notifications; once all
// arrive, the all-up synchronization is broadcast (Figure 2).
func (m *Masterd) rankReady(job *Job, rank int) {
	if job.state != JobLoading || job.readySeen[rank] {
		return
	}
	job.readySeen[rank] = true
	job.readyRanks++
	if job.readyRanks < job.Spec.Size {
		return
	}
	job.state = JobRunning
	job.SyncTime = m.c.Eng.Now()
	for rank, col := range job.Placement.Cols {
		rank, col := rank, col
		m.c.reliableSend(m.c.Eng, col, func() bool { p := job.procs[rank]; return p == nil || p.started },
			func() { m.c.nodes[col].startJob(job, rank) })
	}
	// Force the next rotation to perform a real slot switch even if it
	// lands on the already-active row — the new job's processes are
	// resumed only through a switch — and request it promptly rather
	// than waiting out the quantum.
	m.activated = false
	m.kickASAP = true
	m.advance()
}

// rankDone collects per-rank completions; when a job finishes it leaves
// the matrix and its contexts are released cluster-wide.
func (m *Masterd) rankDone(job *Job, rank int, result any) {
	if job.state == JobDone || job.state == JobKilled || job.doneSeen[rank] {
		return
	}
	job.doneSeen[rank] = true
	job.Results[rank] = result
	job.doneRanks++
	if job.doneRanks < job.Spec.Size {
		return
	}
	job.state = JobDone
	job.DoneTime = m.c.Eng.Now()
	if err := m.matrix.Remove(job.ID); err != nil {
		panic(fmt.Sprintf("parpar: removing done job: %v", err))
	}
	if m.matrix.Policy().UnifyOnExit() {
		// Slot unification may have migrated a suspended job into the
		// active row, so the row is no longer fully bound and the
		// same-row skip in tick must not elide the next switch. Force a
		// real switch, promptly, exactly as rankReady does.
		m.activated = false
		m.kickASAP = true
	}
	delete(m.jobs, job.ID)
	for _, col := range job.Placement.Cols {
		col := col
		node := m.c.nodes[col]
		m.c.reliableSend(m.c.Eng, col, func() bool { _, ok := node.procs[job.ID]; return !ok },
			func() { node.endJob(job.ID) })
	}
	for _, fn := range job.onDone {
		fn(job)
	}
	m.advance()
}

// maybeTick starts the rotation loop if it is not running.
func (m *Masterd) maybeTick() {
	if m.ticking {
		return
	}
	m.ticking = true
	m.tick()
}

// advance starts the next rotation when permitted: never while a switch
// round is in flight, and otherwise once the quantum has elapsed — or
// immediately when a job-ready kick is pending.
func (m *Masterd) advance() {
	if m.inFlight {
		return
	}
	if m.quantumUp || m.kickASAP {
		m.tick()
	}
}

// tick rotates to the next time slot. The switch broadcast goes to every
// node (all LANais participate in the flush protocol); the next tick fires
// once the quantum has elapsed AND every node has acknowledged switch
// completion — the masterd never overlaps rotations.
func (m *Masterd) tick() {
	if m.inFlight || m.joining >= 0 {
		// A round in flight paces itself; a settling rejoin bars new rounds
		// (growing the flush membership mid-epoch could stall an epoch that
		// was already satisfied) and admitNode re-kicks the rotation.
		return
	}
	m.kickASAP = false
	m.skipEv.Cancel()
	row := m.matrix.Rotate()
	if row == -1 {
		m.ticking = false
		m.activated = false
		m.lastRow = -1
		return
	}
	if m.activated && row == m.lastRow {
		// Single populated slot: nothing to switch; check again next
		// quantum (or sooner, if a job-ready kick cancels the wait).
		m.skipEv = m.c.Eng.Schedule(m.c.cfg.Quantum, m.tickFn)
		return
	}
	m.lastRow = row
	m.activated = true
	m.epoch++
	epoch := m.epoch

	m.inFlight = true
	m.acks = 0
	m.quantumUp = false
	m.roundStart = m.c.Eng.Now()
	// Snapshot the row's per-node targets now, so every node of the
	// round sees the same decision regardless of delivery jitter. A job
	// becomes a switch target only once its Figure 2 synchronization
	// completed: before that, some nodes may not even have allocated its
	// context, and binding it on a subset would let senders race ahead
	// of receivers — exactly the packet loss the sync exists to prevent.
	targets := m.targets
	if m.c.cfg.Recovery != nil {
		// The watchdog's re-sends read the snapshot for the whole round
		// (and a stale re-send may outlive it), so the recovery path gets
		// a fresh array per round.
		targets = make([]myrinet.JobID, len(m.c.nodes))
	}
	for i := range targets {
		targets[i] = myrinet.NoJob
		if id := m.matrix.JobAt(row, i); id != myrinet.NoJob {
			if job, ok := m.jobs[id]; ok && job.state == JobRunning {
				targets[i] = id
			}
		}
	}
	if m.c.cfg.Recovery == nil {
		// Closure-free serial broadcast: same latency sampling and
		// insertion order as ctrl.serialBroadcast, with the per-node
		// round state carried by the reusable switchMsg records.
		for i := range m.c.nodes {
			s := &m.swMsgs[i]
			s.epoch, s.target = epoch, targets[i]
			m.c.ctrl.deliverRoutedArg(i, i,
				m.c.ctrl.delay()+sim.Time(i+1)*m.c.cfg.CtrlSerialGap, switchMsgFn, m.swArgs[i])
		}
	} else {
		// Watchdog-supervised round: evicted nodes are skipped (keeping
		// each survivor's original serialization slot), acknowledgements
		// are deduplicated per node, and a deadline chain re-sends the
		// notification to silent nodes and ultimately evicts them.
		m.roundTargets = targets
		m.needAcks = m.liveNodes()
		if m.ackedBy == nil {
			m.ackedBy = make([]bool, len(m.c.nodes))
		}
		for i := range m.ackedBy {
			m.ackedBy[i] = false
		}
		for i := range m.c.nodes {
			if m.dead[i] {
				continue
			}
			i := i
			m.c.ctrl.deliver(i, m.c.ctrl.delay()+sim.Time(i+1)*m.c.cfg.CtrlSerialGap,
				func() { m.sendSwitch(epoch, i) })
		}
		m.armAckWatch(epoch, 0)
	}
	var q *quantumMsg
	if ln := len(m.qPool); ln > 0 {
		q = m.qPool[ln-1]
		m.qPool = m.qPool[:ln-1]
	} else {
		q = &quantumMsg{m: m}
	}
	q.epoch = epoch
	m.c.Eng.ScheduleArg(m.c.cfg.Quantum, quantumFn, q)
}

// sendSwitch hands one node its slot-switch notification for the round,
// with the deduplicating ack used by both the broadcast and the watchdog's
// re-sends.
func (m *Masterd) sendSwitch(epoch uint64, i int) {
	m.c.nodes[i].switchSlot(epoch, m.roundTargets[i], func(core.SwitchStats) {
		if m.epoch != epoch || m.ackedBy[i] || m.dead[i] {
			return
		}
		m.ackedBy[i] = true
		m.acks++
		if m.acks >= m.needAcks {
			m.closeRound()
		}
		m.advance()
	})
}

// closeRound ends the in-flight rotation and disarms the watchdog. The
// round boundary is where queued rejoiners get their chance: the next
// rotation cannot start until the admission barrier completes.
func (m *Masterd) closeRound() {
	m.inFlight = false
	m.ackWatch.Cancel()
	m.tryRejoin()
}

// armAckWatch schedules watchdog deadline number attempt for the round,
// AckTimeout<<attempt cycles from now.
func (m *Masterd) armAckWatch(epoch uint64, attempt int) {
	m.ackWatch = m.c.Eng.Schedule(m.c.cfg.Recovery.AckTimeout<<attempt, func() {
		m.ackFire(epoch, attempt)
	})
}

// ackFire is a watchdog deadline: the round is still missing
// acknowledgements. Re-send the notification to each silent live node
// while the retry budget lasts; after AckRetries re-sends the silent nodes
// are declared failed and evicted.
func (m *Masterd) ackFire(epoch uint64, attempt int) {
	if m.epoch != epoch || !m.inFlight {
		return
	}
	rec := m.c.cfg.Recovery
	if attempt >= rec.AckRetries {
		// Snapshot the silent set before the first eviction: evictNode can
		// close the round and cascade into a fresh rotation (advance →
		// tick), which resets ackedBy for the *new* round — reading it live
		// here would mistake every healthy node for silent and evict the
		// whole machine.
		var evict []int
		for i := range m.c.nodes {
			if !m.dead[i] && !m.ackedBy[i] {
				evict = append(evict, i)
			}
		}
		for _, i := range evict {
			m.evictNode(i)
		}
		return
	}
	for i := range m.c.nodes {
		if m.dead[i] || m.ackedBy[i] {
			continue
		}
		i := i
		m.c.ctrl.sendTo(m.c.Eng, i, func() { m.sendSwitch(epoch, i) })
	}
	m.armAckWatch(epoch, attempt+1)
}

// evictNode declares a node failed: it leaves the round's quorum, every
// survivor prunes it from its card membership and routing table, and every
// job that spanned it is killed so its slots are reclaimed and its
// surviving processes released. The rotation then continues on the
// remaining nodes.
func (m *Masterd) evictNode(i int) {
	if m.dead[i] {
		return
	}
	m.dead[i] = true
	m.evictedAt[i] = m.c.Eng.Now()
	m.downs[i] = append(m.downs[i], downWindow{From: m.c.Eng.Now()})
	// Shrink the matrix first: the column's free cells leave the capacity
	// caches now, so any placement triggered from the kill callbacks below
	// can no longer land on the dead node.
	if err := m.matrix.KillColumn(i); err != nil {
		panic(fmt.Sprintf("parpar: evicting node %d: %v", i, err))
	}
	id := myrinet.NodeID(i)
	if m.inFlight {
		if m.ackedBy[i] {
			m.acks--
		}
		m.ackedBy[i] = true // a late ack from the dead node must not count
		m.needAcks--
	}
	if m.joining >= 0 && !m.joinAckFrom[i] {
		// A dying survivor leaves the join quorum too: the admission must
		// not wait on a confirmation that will never come.
		m.joinAckFrom[i] = true
		m.joinNeed--
	}
	// Membership update: every survivor — and every rebooted-but-unadmitted
	// incarnation, whose topology view must stay current for its own
	// admission — prunes the dead node. The broadcast carries the eviction's
	// generation (this node's eviction count), and the re-send chain stops
	// once the receiver has applied that generation — NOT when the node
	// leaves the receiver's topology, which un-latches the moment a rejoin
	// re-adds it and would let a stale resend prune the live incarnation.
	gen := len(m.downs[i])
	for j, node := range m.c.nodes {
		if j == i || (m.dead[j] && !m.rebooted[j]) {
			continue
		}
		node := node
		m.c.reliableSend(m.c.Eng, j, func() bool { return node.evictSeen[id] >= gen },
			func() { node.evictPeer(id, gen) })
	}
	for _, fn := range m.onEvict {
		fn(i)
	}
	// Kill spanning jobs in ascending ID order for determinism.
	ids := make([]myrinet.JobID, 0, len(m.jobs))
	for jid, job := range m.jobs {
		for _, col := range job.Placement.Cols {
			if col == i {
				ids = append(ids, jid)
				break
			}
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, jid := range ids {
		m.killJob(m.jobs[jid])
	}
	if m.inFlight && m.acks >= m.needAcks {
		m.closeRound()
	}
	if m.joining >= 0 && m.joinNeed <= 0 {
		m.admitNode()
	}
	m.advance()
}

// killVoluntary terminates a live job on request (operator kill, scheduler
// resize). It reuses the eviction machinery's killJob — matrix removal,
// per-node process stop and context release, JobKilled completion
// callbacks — without declaring any node dead, then lets the rotation
// continue on the remaining jobs.
func (m *Masterd) killVoluntary(job *Job) error {
	if job == nil {
		return fmt.Errorf("parpar: killing nil job")
	}
	if _, live := m.jobs[job.ID]; !live || job.state == JobDone || job.state == JobKilled {
		return fmt.Errorf("parpar: job %d is not live", job.ID)
	}
	m.killJob(job)
	m.advance()
	return nil
}

// compact runs a slot-unification pass regardless of the packing policy's
// UnifyOnExit preference and returns the number of jobs moved. A move can
// put a suspended job into the active row, so the same forced-switch
// pattern as rankDone applies when anything moved.
func (m *Masterd) compact() int {
	moved := m.matrix.Unify()
	if moved > 0 {
		m.activated = false
		m.kickASAP = true
		m.advance()
	}
	return moved
}

// killJob terminates a job that spanned an evicted node: it leaves the
// matrix (reclaiming its slots), its surviving processes are stopped and
// their contexts released, and its completion callbacks fire with state
// JobKilled.
func (m *Masterd) killJob(job *Job) {
	if job.state == JobDone || job.state == JobKilled {
		return
	}
	job.state = JobKilled
	job.DoneTime = m.c.Eng.Now()
	if err := m.matrix.Remove(job.ID); err != nil {
		panic(fmt.Sprintf("parpar: removing killed job: %v", err))
	}
	if m.matrix.Policy().UnifyOnExit() {
		m.activated = false
		m.kickASAP = true
	}
	delete(m.jobs, job.ID)
	for _, col := range job.Placement.Cols {
		if m.dead[col] {
			continue
		}
		col := col
		node := m.c.nodes[col]
		m.c.reliableSend(m.c.Eng, col, func() bool { _, ok := node.procs[job.ID]; return !ok },
			func() { node.killJob(job.ID) })
	}
	for _, fn := range job.onDone {
		fn(job)
	}
}
