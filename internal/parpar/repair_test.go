package parpar

import (
	"strings"
	"testing"

	"gangfm/internal/chaos"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// hbConfig is recoveredConfig with the heartbeat failure detector armed.
// The interval is deliberately coarse relative to testConfig's small
// quantum: the reply charges the host CPU, so the silence budget
// (misses × interval) must exceed the longest contiguous CPU busy stretch
// — program loads and switch copies — or a merely busy node reads as dead.
// The schedd daemon gets the same margin for free from its 4M-cycle
// quantum.
func hbConfig(nodes int) Config {
	cfg := recoveredConfig(nodes)
	cfg.Recovery.HeartbeatEvery = 2 * cfg.Quantum
	cfg.Recovery.HeartbeatMisses = 2
	return cfg
}

// TestHeartbeatDetectsIdleCrash: a single populated slot never broadcasts
// a switch, so the ack watchdog is blind to a fail-stop crash of a node no
// job runs on — the regime batch mode lives in permanently. The heartbeat
// must detect it anyway, within its miss budget, without disturbing the
// running job.
func TestHeartbeatDetectsIdleCrash(t *testing.T) {
	const crashed, crashAt = 3, 50_000
	cfg := hbConfig(4)
	cfg.Slots = 1
	cfg.Chaos = &chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Kind: chaos.NodeCrash, Node: crashed, From: crashAt},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Long enough to outlive the miss budget: the probe loop self-terminates
	// on a quiescent cluster, so a drained machine detects nothing (by design
	// — there is nothing left to protect).
	job, err := c.Submit(JobSpec{Name: "bystander", Size: 2, NewProgram: pingPong(2000)})
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range job.Placement.Cols {
		if col == crashed {
			t.Fatalf("placement assumption broken: job on %v spans node %d", job.Placement.Cols, crashed)
		}
	}
	c.RunUntil(chaosHorizon)
	if !c.master.dead[crashed] {
		t.Fatal("heartbeat never declared the idle crashed node dead")
	}
	at, ok := c.master.FirstEvictedAt(crashed)
	if !ok {
		t.Fatal("no eviction recorded")
	}
	budget := sim.Time(cfg.Recovery.HeartbeatMisses+3) * cfg.Recovery.HeartbeatEvery
	if at < crashAt || at > crashAt+budget {
		t.Fatalf("detected at %d, want within (%d, %d]", at, crashAt, crashAt+budget)
	}
	if job.State() != JobDone {
		t.Fatalf("bystander job is %v, want done; auditor: %s", job.State(), c.Auditor().Summary())
	}
	if !c.Auditor().Ok() {
		t.Fatalf("heartbeat run reported violations: %s", c.Auditor().Summary())
	}
}

// TestNoHeartbeatMissesIdleCrash is the control for the test above: the
// identical crash with the heartbeat disarmed goes undetected forever —
// nothing else in the protocol can see it. This pins that the heartbeat is
// the detector, not a redundant layer over the ack watchdog.
func TestNoHeartbeatMissesIdleCrash(t *testing.T) {
	const crashed = 3
	cfg := recoveredConfig(4)
	cfg.Slots = 1
	cfg.Chaos = &chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Kind: chaos.NodeCrash, Node: crashed, From: 50_000},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(JobSpec{Name: "bystander", Size: 2, NewProgram: pingPong(200)})
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(chaosHorizon)
	if c.master.dead[crashed] {
		t.Fatal("crash was detected with no heartbeat and no acks outstanding — by what?")
	}
	if job.State() != JobDone {
		t.Fatalf("bystander job is %v, want done", job.State())
	}
}

// TestRepairRejoinsAndRestoresCapacity: the full loop — a crash kills the
// spanning job and shrinks the machine; the repair boots a fresh
// incarnation that rejoins at a rotation boundary; afterwards every
// survivor lists the node again, the matrix is back to full width, and a
// machine-wide job (impossible on the degraded cluster) places and runs.
func TestRepairRejoinsAndRestoresCapacity(t *testing.T) {
	const crashed, repairAt = 0, 6_000_000
	cfg := hbConfig(4)
	cfg.Chaos = &chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Kind: chaos.NodeCrash, Node: crashed, From: 50_000},
		{Kind: chaos.NodeRepair, Node: crashed, From: repairAt},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := c.Submit(JobSpec{Name: "doomed", Size: 2, NewProgram: pingPong(400)})
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := c.Submit(JobSpec{Name: "survivor", Size: 2, NewProgram: pingPong(2000)})
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(chaosHorizon)

	if doomed.State() != JobKilled {
		t.Fatalf("job spanning the crashed node is %v, want killed", doomed.State())
	}
	if survivor.State() != JobDone {
		t.Fatalf("surviving job is %v, want done; auditor: %s", survivor.State(), c.Auditor().Summary())
	}
	m := c.master
	if m.dead[crashed] {
		t.Fatal("repaired node still marked dead after the horizon")
	}
	if got := m.Rejoins(crashed); got != 1 {
		t.Fatalf("Rejoins(%d) = %d, want 1", crashed, got)
	}
	rj, ok := m.FirstRejoinAt()
	if !ok || rj < repairAt {
		t.Fatalf("first rejoin at %d (ok=%v), want after the repair instant %d", rj, ok, repairAt)
	}
	for i, n := range c.Nodes() {
		if !n.Mgr.InTopology(myrinet.NodeID(crashed)) {
			t.Fatalf("node %d does not list the rejoined node in its topology", i)
		}
	}
	if got := m.matrix.LiveCols(); got != 4 {
		t.Fatalf("live columns = %d after rejoin, want 4", got)
	}
	// The regrown capacity must be real: a job needing every node — which
	// the 3-wide degraded machine rejected structurally — now places and
	// completes, with ranks running on the fresh incarnation. A ring
	// exchange makes every rank both send and receive, so the rejoined
	// card's data path is exercised in both directions.
	ring := func(size int) func(rank int) Program {
		return func(rank int) Program {
			return ProgramFunc(func(p *Proc) {
				p.EP.SetHandler(func(_, _ int, _ []byte) { p.Done(1) })
				p.EP.Send((rank+1)%size, 64, nil)
			})
		}
	}
	wide, err := c.Submit(JobSpec{Name: "wide", Size: 4, NewProgram: ring(4)})
	if err != nil {
		t.Fatalf("machine-wide job rejected after rejoin: %v", err)
	}
	c.RunUntil(2 * chaosHorizon)
	if wide.State() != JobDone {
		t.Fatalf("machine-wide job is %v, want done; auditor: %s", wide.State(), c.Auditor().Summary())
	}
	if !c.Auditor().Ok() {
		t.Fatalf("repair run reported violations: %s", c.Auditor().Summary())
	}
}

// TestRebootBeforeDetectionEvictsStaleIncarnation: when the repair lands
// before the heartbeat's miss budget runs out (or with no heartbeat at
// all), the rejoin request itself is the first sign of the crash. The
// masterd must retire the stale incarnation — kill the spanning job,
// shrink and regrow the column — before admitting the fresh one.
func TestRebootBeforeDetectionEvictsStaleIncarnation(t *testing.T) {
	const crashed = 0
	cfg := recoveredConfig(4) // no heartbeat: detection only via the rejoin request
	cfg.Chaos = &chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Kind: chaos.NodeCrash, Node: crashed, From: 50_000},
		{Kind: chaos.NodeRepair, Node: crashed, From: 300_000},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := c.Submit(JobSpec{Name: "doomed", Size: 2, NewProgram: pingPong(400)})
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := c.Submit(JobSpec{Name: "survivor", Size: 2, NewProgram: pingPong(400)})
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(chaosHorizon)
	if doomed.State() != JobKilled {
		t.Fatalf("job spanning the crashed node is %v, want killed", doomed.State())
	}
	if survivor.State() != JobDone {
		t.Fatalf("surviving job is %v, want done; auditor: %s", survivor.State(), c.Auditor().Summary())
	}
	m := c.master
	if len(m.downs[crashed]) != 1 || m.Rejoins(crashed) != 1 {
		t.Fatalf("downs=%d rejoins=%d, want one eviction and one rejoin", len(m.downs[crashed]), m.Rejoins(crashed))
	}
	if at, _ := m.FirstEvictedAt(crashed); at < 300_000 {
		t.Fatalf("evicted at %d, want at/after the repair instant (the rejoin request is the detector)", at)
	}
	if !c.Auditor().Ok() {
		t.Fatalf("run reported violations: %s", c.Auditor().Summary())
	}
}

// TestEvictAndRejoinHookOrdering pins the hook contracts the scheduler
// daemon builds on. OnEvict runs after KillColumn but before the spanning
// jobs are killed: capacity queries inside the hook see the shrunken
// machine while the doomed job is still inspectable. OnRejoin mirrors it
// after ReviveColumn: the hook sees the node live again and the matrix at
// full width, so a backlog drain triggered from inside the hook can place
// onto the recovered capacity immediately.
func TestEvictAndRejoinHookOrdering(t *testing.T) {
	const crashed = 0
	cfg := hbConfig(4)
	cfg.Chaos = &chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Kind: chaos.NodeCrash, Node: crashed, From: 50_000},
		{Kind: chaos.NodeRepair, Node: crashed, From: 6_000_000},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := c.Submit(JobSpec{Name: "doomed", Size: 2, NewProgram: pingPong(400)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(JobSpec{Name: "survivor", Size: 2, NewProgram: pingPong(400)}); err != nil {
		t.Fatal(err)
	}
	m := c.master
	var evicts, rejoins []int
	m.OnEvict(func(node int) {
		evicts = append(evicts, node)
		if got := m.matrix.LiveCols(); got != 3 {
			t.Errorf("OnEvict(%d): live columns = %d, want 3 (KillColumn must precede the hook)", node, got)
		}
		if doomed.State() == JobKilled {
			t.Errorf("OnEvict(%d): spanning job already killed (kills must follow the hook)", node)
		}
		if _, live := m.jobs[doomed.ID]; !live {
			t.Errorf("OnEvict(%d): spanning job already gone from the job table", node)
		}
	})
	m.OnRejoin(func(node int) {
		rejoins = append(rejoins, node)
		if m.dead[node] {
			t.Errorf("OnRejoin(%d): node still marked dead inside the hook", node)
		}
		if got := m.matrix.LiveCols(); got != 4 {
			t.Errorf("OnRejoin(%d): live columns = %d, want 4 (ReviveColumn must precede the hook)", node, got)
		}
	})
	c.RunUntil(chaosHorizon)
	if len(evicts) != 1 || evicts[0] != crashed {
		t.Fatalf("OnEvict fired for %v, want [%d]", evicts, crashed)
	}
	if len(rejoins) != 1 || rejoins[0] != crashed {
		t.Fatalf("OnRejoin fired for %v, want [%d]", rejoins, crashed)
	}
	if doomed.State() != JobKilled {
		t.Fatalf("spanning job is %v after the run, want killed", doomed.State())
	}
}

// TestRepairDeterminism extends the recovery replay contract through the
// repair loop: two runs of the same crash-plus-repair-plus-loss plan (with
// the heartbeat armed) produce byte-identical injection traces, identical
// verdicts, and identical rejoin instants.
func TestRepairDeterminism(t *testing.T) {
	run := func() ([]string, []chaos.Violation, sim.Time, int) {
		cfg := hbConfig(4)
		cfg.Chaos = &chaos.Plan{Seed: 31, Faults: []chaos.Fault{
			{Kind: chaos.NodeCrash, Node: 0, From: 50_000},
			{Kind: chaos.NodeRepair, Node: 0, From: 6_000_000},
			{Kind: chaos.HaltLoss, Prob: 0.4, Node: -1},
		}}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(JobSpec{Name: "doomed", Size: 2, NewProgram: pingPong(400)}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(JobSpec{Name: "survivor", Size: 2, NewProgram: pingPong(400)}); err != nil {
			t.Fatal(err)
		}
		c.RunUntil(chaosHorizon)
		rj, _ := c.master.FirstRejoinAt()
		return c.ChaosTrace(), c.Auditor().Violations(), rj, c.master.Rejoins(0)
	}
	t1, v1, r1, n1 := run()
	t2, v2, r2, n2 := run()
	if strings.Join(t1, "\n") != strings.Join(t2, "\n") {
		t.Fatal("identical repair runs produced different injection traces")
	}
	if len(v1) != len(v2) {
		t.Fatalf("violation counts differ: %d vs %d", len(v1), len(v2))
	}
	if r1 != r2 || n1 != n2 {
		t.Fatalf("rejoin timelines differ: %d/%d vs %d/%d", r1, n1, r2, n2)
	}
	if n1 != 1 {
		t.Fatalf("rejoins = %d, want 1", n1)
	}
}
