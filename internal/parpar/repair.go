package parpar

// repair.go closes the failure loop the eviction path opened: detection of
// fail-stop crashes that never miss an acknowledgement, and the admission
// of a repaired node's fresh incarnation back into the gang.
//
// Heartbeat. The ack watchdog in masterd.go only sees a node that owes a
// switch acknowledgement, so two regimes are blind to a fail-stop crash:
// an idle rotation (no jobs → no rounds) and a single populated slot,
// where the same-row skip means no switch is ever broadcast — batch mode
// runs in that regime permanently. The heartbeat covers both: every
// Recovery.HeartbeatEvery cycles the masterd pings each live node on the
// ctrl network and the noded answers over the reliable path after a small
// host-CPU charge; a node silent for HeartbeatMisses consecutive intervals
// is evicted. The probe's jitter draws ride the ctrl network's global-lane
// RNG like every other control message, so an armed heartbeat is
// byte-identical under any sharding (and the zero default keeps it off —
// existing goldens never see a draw-order change).
//
// Rejoin. A repaired node boots as a fresh incarnation (new card, new
// manager, empty daemon state — see Node.reboot) and asks the masterd to
// rejoin. Admission is a barrier at a rotation boundary: while a node is
// settling, no switch round may start, so no flush/release epoch is open
// anywhere and the card memberships can grow without stalling a satisfied
// epoch. Every survivor confirms re-adding the joiner (COMM_add_node plus
// the card's membership) before the masterd revives the node's matrix
// column, fires the OnRejoin hooks, and resumes the rotation.

import (
	"fmt"

	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// downWindow is one [From,To) downtime interval of a node; To == 0 while
// the node is still down.
type downWindow struct {
	From, To sim.Time
}

// heartbeat ------------------------------------------------------------

// armHeartbeat starts the liveness-probe loop when the recovery config
// asks for one. Self-terminating like the audit tick: the loop stops once
// the cluster is quiescent and the next submit re-arms it.
func (m *Masterd) armHeartbeat() {
	r := m.c.cfg.Recovery
	if r == nil || r.HeartbeatEvery <= 0 || m.hbTicking {
		return
	}
	if m.hbPending == nil {
		m.hbPending = make([]bool, len(m.c.nodes))
		m.hbMiss = make([]int, len(m.c.nodes))
		m.hbSeen = make([]uint64, len(m.c.nodes))
		m.hbFn = m.hbTick
	}
	m.hbTicking = true
	m.c.Eng.Schedule(r.HeartbeatEvery, m.hbFn)
}

// hbTick is one heartbeat interval: score the previous round's silence,
// evict the nodes past the miss budget (ascending order, like the ack
// watchdog), then ping the survivors. Eviction happens on the probe
// cadence rather than per missing reply because a reply is not an ack
// with a deadline — only the prober can observe its absence.
func (m *Masterd) hbTick() {
	if len(m.jobs) == 0 && m.joining < 0 && len(m.rejoinQueue) == 0 {
		// Quiescent cluster: stop probing. The rejoin clauses keep the
		// loop alive mid-admission, where a dying survivor would otherwise
		// wedge the join quorum forever.
		m.hbTicking = false
		return
	}
	var evict []int
	for i := range m.c.nodes {
		if m.dead[i] {
			continue
		}
		if m.hbPending[i] {
			m.hbMiss[i]++
			if m.hbMiss[i] >= m.c.cfg.Recovery.HeartbeatMisses {
				evict = append(evict, i)
			}
		} else {
			m.hbMiss[i] = 0
		}
	}
	for _, i := range evict {
		m.evictNode(i)
	}
	m.hbSeq++
	seq := m.hbSeq
	for i := range m.c.nodes {
		if m.dead[i] {
			continue
		}
		i := i
		m.hbPending[i] = true
		m.c.ctrl.sendTo(m.c.Eng, i, func() { m.c.nodes[i].heartbeat(seq) })
	}
	m.c.Eng.Schedule(m.c.cfg.Recovery.HeartbeatEvery, m.hbFn)
}

// hbReply records one node's heartbeat answer. An answer to the current
// probe clears the pending mark; a stale one (the node was slow, the next
// probe already went out) still advances hbSeen so the reliable reply's
// re-send chain stops.
func (m *Masterd) hbReply(i int, seq uint64) {
	if m.dead[i] {
		return
	}
	if seq > m.hbSeen[i] {
		m.hbSeen[i] = seq
	}
	if m.hbSeen[i] >= m.hbSeq {
		m.hbPending[i] = false
		m.hbMiss[i] = 0
	}
}

// hbSeenAtLeast is the heartbeat reply's done predicate: the masterd heard
// this probe (or the node died and the answer no longer matters).
func (m *Masterd) hbSeenAtLeast(i int, seq uint64) bool {
	return m.dead[i] || m.hbSeen[i] >= seq
}

// rejoin ---------------------------------------------------------------

// nodeRebooted marks a dead node's fresh incarnation as existing: from now
// on membership broadcasts (evictions of other nodes) must reach it, so
// its topology view is current when it is admitted. Called synchronously
// at the repair instant, before the rejoin request is even sent.
func (m *Masterd) nodeRebooted(i int) { m.rebooted[i] = true }

// rejoinRequested is the rejoin request's reliable-send done predicate:
// the ask reached the masterd, or the incarnation that sent it has since
// been admitted. Admission clears both flags, so the predicate must latch
// on !rebooted — a late resend after admission would otherwise read as a
// fresh reboot and evict the live node all over again.
func (m *Masterd) rejoinRequested(i int) bool {
	return m.rejoinAsked[i] || !m.rebooted[i]
}

// rejoinRequest is the masterd's handling of a repaired node's rejoin
// message: requests queue, and one at a time the masterd pauses the
// rotation, has every survivor re-add the joiner, and revives its matrix
// column.
func (m *Masterd) rejoinRequest(i int) {
	if m.rejoinAsked[i] {
		return
	}
	if !m.dead[i] {
		// The node rebooted before its crash was even detected (the miss
		// budget had not run out): retire the old incarnation first — the
		// survivors must drop it from their flush membership before the
		// fresh one can be added back.
		m.evictNode(i)
	}
	m.rejoinAsked[i] = true
	m.rejoinQueue = append(m.rejoinQueue, i)
	m.tryRejoin()
}

// tryRejoin starts settling the next queued rejoiner when no switch round
// is in flight and no other admission is settling. Called from the request
// itself, from a closing round, and from a completed admission.
func (m *Masterd) tryRejoin() {
	if m.joining >= 0 || m.inFlight || len(m.rejoinQueue) == 0 {
		return
	}
	i := m.rejoinQueue[0]
	copy(m.rejoinQueue, m.rejoinQueue[1:])
	m.rejoinQueue = m.rejoinQueue[:len(m.rejoinQueue)-1]
	m.joining = i
	if m.joinAckFrom == nil {
		m.joinAckFrom = make([]bool, len(m.c.nodes))
	}
	m.joinNeed = 0
	for j := range m.c.nodes {
		m.joinAckFrom[j] = false
		if !m.dead[j] {
			m.joinNeed++
		}
	}
	if m.joinNeed == 0 {
		// Whole machine was down: nobody to confirm, admit outright.
		m.admitNode()
		return
	}
	id := myrinet.NodeID(i)
	gen := len(m.downs[i])
	for j := range m.c.nodes {
		if j == i || (m.dead[j] && !m.rebooted[j]) {
			// Rebooted-but-unadmitted incarnations get the join too (their
			// boot snapshot pruned the joiner and nothing else would re-add
			// it), but only live survivors count toward the quorum — a
			// settling incarnation's ack is ignored by joinAcked.
			continue
		}
		i, j := i, j
		node := m.c.nodes[j]
		m.c.reliableSend(m.c.Eng, j, func() bool { return m.joinAckSeen(i, j) },
			func() { node.joinPeer(id, gen) })
	}
}

// joinAcked records one survivor's confirmation that it re-added the
// joining node; when the quorum completes, the node is admitted.
func (m *Masterd) joinAcked(i, j int) {
	if m.joining != i || m.joinAckFrom[j] || m.dead[j] {
		return
	}
	m.joinAckFrom[j] = true
	m.joinNeed--
	if m.joinNeed <= 0 {
		m.admitNode()
	}
}

// joinAckSeen is the join broadcast's (and its ack's) done predicate: the
// admission moved on, or this survivor's confirmation is in.
func (m *Masterd) joinAckSeen(i, j int) bool {
	return m.joining != i || m.joinAckFrom[j]
}

// admitNode completes the rejoin barrier: every survivor has re-added the
// node and no rotation round is in flight (tick is gated while settling),
// so no flush/release epoch is open anywhere — the memberships have grown
// safely, the matrix column revives, and the rotation resumes with the
// node back in the gang. Hook ordering mirrors eviction: the column is
// revived first, then the OnRejoin hooks run, so capacity queries from
// inside a hook (and the placements they trigger) already see the regrown
// machine.
func (m *Masterd) admitNode() {
	i := m.joining
	m.joining = -1
	if w := m.downs[i]; len(w) > 0 && w[len(w)-1].To == 0 {
		w[len(w)-1].To = m.c.Eng.Now()
	}
	delete(m.evictedAt, i)
	m.dead[i] = false
	m.rebooted[i] = false
	m.rejoinAsked[i] = false
	if m.hbPending != nil {
		// Fresh incarnation, fresh liveness record: it owes nothing before
		// the next probe round.
		m.hbPending[i] = false
		m.hbMiss[i] = 0
		m.hbSeen[i] = m.hbSeq
	}
	if err := m.matrix.ReviveColumn(i); err != nil {
		panic(fmt.Sprintf("parpar: admitting node %d: %v", i, err))
	}
	for _, fn := range m.onRejoin {
		fn(i)
	}
	m.tryRejoin()
	if m.joining < 0 && m.ticking && !m.inFlight {
		// The rotation may have idled against the barrier (quantum expiry
		// and skip checks return early while settling): rotate now — the
		// slot boundary the rejoiner was promised.
		m.quantumUp = true
	}
	m.advance()
}

// accessors ------------------------------------------------------------

// OnRejoin registers a hook called whenever a repaired node is admitted
// back into the gang. It mirrors OnEvict: the hook runs after the node's
// matrix column has been revived, so capacity queries from inside the
// hook already see the regrown machine and a scheduler can drain its
// backlog into the recovered capacity immediately.
func (m *Masterd) OnRejoin(fn func(node int)) {
	m.onRejoin = append(m.onRejoin, fn)
}

// EverEvicted returns every node that has been evicted at least once —
// including nodes that have since rejoined — in ascending order.
func (m *Masterd) EverEvicted() []int {
	var out []int
	for i := range m.c.nodes {
		if len(m.downs[i]) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// FirstEvictedAt returns node i's first eviction instant; ok is false
// when the node was never evicted. Unlike EvictedAt it keeps answering
// after the node rejoins — it is the anchor for "what would downtime have
// been without repair" accounting.
func (m *Masterd) FirstEvictedAt(i int) (sim.Time, bool) {
	if w := m.downs[i]; len(w) > 0 {
		return w[0].From, true
	}
	return 0, false
}

// Rejoins returns how many times node i was admitted back after an
// eviction.
func (m *Masterd) Rejoins(i int) int {
	n := 0
	for _, w := range m.downs[i] {
		if w.To != 0 {
			n++
		}
	}
	return n
}

// DowntimeIn returns how much of [from, to) node i spent evicted; a still
// open window (the node is down now) extends through to.
func (m *Masterd) DowntimeIn(i int, from, to sim.Time) sim.Time {
	var total sim.Time
	for _, w := range m.downs[i] {
		lo, hi := w.From, w.To
		if hi == 0 {
			hi = to
		}
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// FirstRejoinAt returns the earliest admission instant across all nodes;
// ok is false when no node has rejoined.
func (m *Masterd) FirstRejoinAt() (sim.Time, bool) {
	var best sim.Time
	ok := false
	for i := range m.c.nodes {
		for _, w := range m.downs[i] {
			if w.To != 0 && (!ok || w.To < best) {
				best = w.To
				ok = true
			}
		}
	}
	return best, ok
}
