package parpar

import (
	"testing"

	"gangfm/internal/sim"
)

// TestCtrlNetRoutedDeliveryZeroAlloc pins the allocation-free contract of
// the control network's hot delivery path: deliverRoutedArg with a
// long-lived callback and a pointer (or nil) argument must not allocate
// once the engine arena has warmed — it is what the masterd's per-round
// switch broadcast and the nodes' ack returns ride on.
func TestCtrlNetRoutedDeliveryZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	c := newCtrlNet(eng, 10_000, 5_000, sim.NewRand(1))
	fired := 0
	fn := func(any) { fired++ }
	allocs := testing.AllocsPerRun(100, func() {
		c.deliverRoutedArg(-1, -1, c.delay(), fn, nil)
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("routed delivery allocates %.2f objects per message, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("no deliveries fired")
	}
}

// TestMasterdRoundZeroAlloc measures a full steady-state rotation loop —
// quantum timer, switch broadcast, three-stage switch on every node, ack
// collection — on a warmed two-job cluster. The round must be entirely
// closure-free: pooled switchMsg/quantumMsg records, prebuilt node
// completion chains, pooled halt/ready control ops.
func TestMasterdRoundZeroAlloc(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Slots = 2
	cfg.Quantum = 2_000_000
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if _, err := c.Submit(idleLoopSpec(name, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm: launch both jobs and run several rotations so every pool
	// reaches its high-water mark. Switch-history retention is inherently
	// an amortized allocator (the record slice doubles every 2^k
	// switches), so the measurement window's switch budget is reserved up
	// front — everything else must be allocation-free on its own.
	c.RunUntil(50_000_000)
	for _, n := range c.nodes {
		n.Mgr.ReserveHistory(256)
	}
	epoch := c.master.epoch
	allocs := testing.AllocsPerRun(10, func() { c.RunFor(4 * cfg.Quantum) })
	if c.master.epoch == epoch {
		t.Fatal("no rounds ran during measurement")
	}
	if allocs != 0 {
		t.Fatalf("steady-state rotation allocates %.2f objects per window, want 0", allocs)
	}
}

// idleLoopSpec is a minimal never-finishing program: each rank re-arms a
// compute timer forever, so rotations keep switching between live jobs
// without any communication traffic muddying the measurement.
func idleLoopSpec(name string, ranks int) JobSpec {
	return JobSpec{
		Name: name,
		Size: ranks,
		NewProgram: func(rank int) Program {
			return ProgramFunc(func(p *Proc) {
				var loop func()
				loop = func() { p.Schedule(500_000, loop) }
				loop()
			})
		},
	}
}
