package parpar

import (
	"gangfm/internal/fm"
	"gangfm/internal/gang"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// Program is the application code of one process of a parallel job. Start
// is called when FM_initialize returns (after the global synchronization
// of Figure 2); the process communicates through the Proc handle and calls
// Done exactly once when finished.
type Program interface {
	Start(p *Proc)
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(p *Proc)

// Start calls f(p).
func (f ProgramFunc) Start(p *Proc) { f(p) }

// JobSpec describes a job to submit: its size in nodes and a factory
// producing each rank's program.
type JobSpec struct {
	Name       string
	Size       int
	NewProgram func(rank int) Program
}

// JobState tracks a job through the Figure 2 lifecycle.
type JobState int

const (
	// JobLoading: nodes are running COMM_init_job and forking.
	JobLoading JobState = iota
	// JobRunning: the all-up synchronization completed; processes run
	// whenever their slot is scheduled.
	JobRunning
	// JobDone: every rank called Done.
	JobDone
	// JobKilled: the job spanned an evicted node and was terminated by
	// the recovery layer; surviving ranks' results are partial.
	JobKilled
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case JobLoading:
		return "loading"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobKilled:
		return "killed"
	default:
		return "JobState(?)"
	}
}

// Job is a submitted parallel job.
type Job struct {
	ID        myrinet.JobID
	Spec      JobSpec
	Placement gang.Placement

	nodeOf []myrinet.NodeID // rank -> node
	procs  []*Proc
	state  JobState

	readyRanks int
	doneRanks  int
	// readySeen/doneSeen dedup the per-rank lifecycle notifications: with
	// recovery enabled they are re-sent until acknowledged, and a count
	// alone would double-book a duplicate.
	readySeen []bool
	doneSeen  []bool

	// Results holds each rank's Done value.
	Results []any

	SubmitTime sim.Time
	SyncTime   sim.Time
	DoneTime   sim.Time

	onDone []func(*Job)
}

// State returns the job's lifecycle state.
func (j *Job) State() JobState { return j.state }

// Size returns the number of processes.
func (j *Job) Size() int { return j.Spec.Size }

// OnDone registers a callback invoked (at masterd time) when the job
// completes.
func (j *Job) OnDone(fn func(*Job)) { j.onDone = append(j.onDone, fn) }

// Proc is the harness handle a Program communicates through: the process's
// FM endpoint plus job plumbing.
type Proc struct {
	cluster *Cluster
	node    *Node
	job     *Job
	rank    int

	// EP is the process's FM endpoint: Send, SetHandler, SetOnCanSend,
	// Stats and friends.
	EP *fm.Endpoint

	program Program
	started bool
	done    bool
	// killed marks a process whose job was terminated by node eviction;
	// its endpoint is suspended and its resources already released, so a
	// late Done from the still-unwinding program is ignored.
	killed bool
}

// Rank returns the process's rank in its job.
func (p *Proc) Rank() int { return p.rank }

// Size returns the job size.
func (p *Proc) Size() int { return p.job.Spec.Size }

// Job returns the job ID.
func (p *Proc) Job() myrinet.JobID { return p.job.ID }

// NodeID returns the node hosting this process.
func (p *Proc) NodeID() myrinet.NodeID { return p.node.ID }

// Now returns the current virtual time.
func (p *Proc) Now() sim.Time { return p.node.Eng.Now() }

// Schedule runs fn after d cycles of virtual time (modelling local
// computation between communication phases). The timer lives on the
// hosting node's event lane, so compute phases stay inside the process's
// shard.
func (p *Proc) Schedule(d sim.Time, fn func()) { p.node.Eng.Schedule(d, fn) }

// Done reports the process's result to the noded; when every rank of the
// job has called Done the masterd retires the job. Queued sends are
// flushed into the network first (a real process exits only after its
// last FM_send returned).
func (p *Proc) Done(result any) {
	if p.killed {
		// The job was terminated by node eviction while this program was
		// still unwinding; its completion has nowhere to go.
		p.done = true
		return
	}
	if p.done {
		panic("parpar: Done called twice")
	}
	p.done = true
	job, rank := p.job, p.rank
	p.EP.Flush(func() {
		if p.killed {
			return
		}
		p.EP.Suspend()
		p.cluster.reliableSend(p.node.Eng, -1, func() bool { return job.doneSeen[rank] },
			func() { p.cluster.master.rankDone(job, rank, result) })
	})
}
