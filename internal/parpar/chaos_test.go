package parpar

import (
	"strings"
	"testing"

	"gangfm/internal/chaos"
	"gangfm/internal/fm"
	"gangfm/internal/sim"
)

// chaosHorizon is how long the chaos tests simulate: wedged runs never go
// quiescent (the rotation and audit loops keep ticking), so they are driven
// by time, not by Run().
const chaosHorizon = 50 * 400_000 // 50 quanta of testConfig

// TestLossTriggersCreditStallViolation is the harness's flagship detection:
// under Partitioned FM with data-packet loss, the no-retransmission stall of
// paper §2.2 is reported as a credit-conservation violation, with the
// destroyed-credit ledger as evidence.
func TestLossTriggersCreditStallViolation(t *testing.T) {
	cfg := testConfig(2)
	cfg.Policy = fm.Partitioned
	plan := chaos.Loss(77, 0.2)
	cfg.Chaos = &plan
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(JobSpec{Name: "stream", Size: 2, NewProgram: oneWay(200, 512)}); err != nil {
		t.Fatal(err)
	}
	c.RunUntil(chaosHorizon)

	found := false
	for _, v := range c.Auditor().Violations() {
		if v.Invariant == "credit-conservation" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no credit-conservation violation under 20%% loss; auditor: %s", c.Auditor().Summary())
	}
	if c.Ledger().Destroyed(1) == 0 {
		t.Fatal("ledger recorded no destroyed credits")
	}
	if !strings.Contains(c.Auditor().Summary(), "seed 77") {
		t.Fatalf("summary lacks the replay seed: %s", c.Auditor().Summary())
	}
}

// TestLossTriggersDeliveryStall: with few slots the partitioned credit
// window is wide (C0 ≈ 83), so 20% loss doesn't exhaust the sender's
// credits — instead the receiver starves waiting for packets that no
// longer exist. The delivery-stall check catches this second face of the
// no-retransmission fragility.
func TestLossTriggersDeliveryStall(t *testing.T) {
	cfg := testConfig(2)
	cfg.Slots = 2
	cfg.Policy = fm.Partitioned
	plan := chaos.Loss(99, 0.2)
	cfg.Chaos = &plan
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(JobSpec{Name: "stream", Size: 2, NewProgram: oneWay(200, 512)}); err != nil {
		t.Fatal(err)
	}
	c.RunUntil(chaosHorizon)
	found := false
	for _, v := range c.Auditor().Violations() {
		if v.Invariant == "delivery-stall" {
			found = true
		}
	}
	if !found {
		t.Fatalf("receiver starvation not detected: %s", c.Auditor().Summary())
	}
}

// TestCleanRunAuditsClean: the same workload with no fault plan completes
// with a silent auditor — the checks themselves do not false-positive.
func TestCleanRunAuditsClean(t *testing.T) {
	for _, policy := range []fm.Policy{fm.Partitioned, fm.Switched} {
		cfg := testConfig(2)
		cfg.Policy = policy
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		job, err := c.Submit(JobSpec{Name: "stream", Size: 2, NewProgram: oneWay(100, 512)})
		if err != nil {
			t.Fatal(err)
		}
		c.RunUntil(chaosHorizon)
		if job.State() != JobDone {
			t.Fatalf("%v: clean job did not finish", policy)
		}
		if !c.Auditor().Ok() {
			t.Fatalf("%v: clean run reported violations: %s", policy, c.Auditor().Summary())
		}
	}
}

// TestHaltLossStallsSwitch: losing the flush protocol's halt packets leaves
// every node waiting for its peers' halts, so the switch round never
// acknowledges — the flush-stall check catches the mid-switch fault.
func TestHaltLossStallsSwitch(t *testing.T) {
	cfg := testConfig(2)
	cfg.Chaos = &chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Kind: chaos.HaltLoss, Prob: 1.0, Node: -1},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(JobSpec{Name: "pp", Size: 2, NewProgram: pingPong(5)}); err != nil {
		t.Fatal(err)
	}
	c.RunUntil(chaosHorizon)
	found := false
	for _, v := range c.Auditor().Violations() {
		if v.Invariant == "flush-stall" {
			found = true
		}
	}
	if !found {
		t.Fatalf("halt loss not detected as flush-stall: %s", c.Auditor().Summary())
	}
}

// TestChaosDeterminism: two clusters built from the same config and plan
// produce byte-identical injection traces and identical verdicts — the
// replay contract a seed-reporting fuzzer depends on.
func TestChaosDeterminism(t *testing.T) {
	run := func() ([]string, []chaos.Violation) {
		cfg := testConfig(3)
		plan := chaos.Loss(1234, 0.15)
		cfg.Chaos = &plan
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(JobSpec{Name: "stream", Size: 2, NewProgram: oneWay(150, 768)}); err != nil {
			t.Fatal(err)
		}
		c.RunUntil(chaosHorizon)
		return c.ChaosTrace(), c.Auditor().Violations()
	}
	t1, v1 := run()
	t2, v2 := run()
	if strings.Join(t1, "\n") != strings.Join(t2, "\n") {
		t.Fatal("identical seed+plan produced different injection traces")
	}
	if len(v1) != len(v2) {
		t.Fatalf("verdicts differ: %d vs %d violations", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("violation %d differs:\n  %s\n  %s", i, v1[i], v2[i])
		}
	}
	if len(t1) == 0 {
		t.Fatal("15% loss produced no injections")
	}
}

// TestNodePauseDelaysJob: a NodePause fault freezes one host CPU; the run
// still completes once the window ends, later than the unfaulted run — the
// CPU fault mechanism visibly perturbs the simulation without breaking it.
func TestNodePauseDelaysJob(t *testing.T) {
	elapsed := func(pause bool) sim.Time {
		cfg := testConfig(2)
		if pause {
			cfg.Chaos = &chaos.Plan{Seed: 9, Faults: []chaos.Fault{
				{Kind: chaos.NodePause, Node: 1, From: 100_000, Until: 3_000_000},
			}}
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		job, err := c.Submit(JobSpec{Name: "pp", Size: 2, NewProgram: pingPong(3)})
		if err != nil {
			t.Fatal(err)
		}
		c.RunUntil(chaosHorizon)
		if job.State() != JobDone {
			t.Fatalf("pause=%v: job did not finish", pause)
		}
		return job.DoneTime
	}
	clean := elapsed(false)
	paused := elapsed(true)
	if paused <= clean {
		t.Fatalf("NodePause did not delay completion: %d vs %d", paused, clean)
	}
}
