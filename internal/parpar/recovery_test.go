package parpar

import (
	"strings"
	"testing"

	"gangfm/internal/chaos"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// recoveredConfig is testConfig plus the self-healing switch layer at its
// default budgets.
func recoveredConfig(nodes int) Config {
	cfg := testConfig(nodes)
	r := DefaultRecovery(cfg.Quantum)
	cfg.Recovery = &r
	return cfg
}

// nicTotals sums the recovery-relevant NIC counters across the cluster.
func nicTotals(c *Cluster) (halt, ready, stale, forced uint64) {
	for _, n := range c.Nodes() {
		st := n.NIC.Stats()
		halt += st.HaltRetransmits
		ready += st.ReadyRetransmits
		stale += st.StaleCtrl
		forced += st.ForcedPhases
	}
	return
}

// TestHaltLossRecovered: the exact plan of TestHaltLossStallsSwitch — every
// halt packet lost, forever — wedges the bare protocol; with recovery the
// NIC re-broadcasts halts and ultimately force-completes the flush phase,
// so the same workload finishes with a clean auditor. Permanent 100% halt
// loss means even retransmitted halts die, so this pins the force-complete
// backstop, not just the retransmission.
func TestHaltLossRecovered(t *testing.T) {
	cfg := recoveredConfig(2)
	cfg.Chaos = &chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Kind: chaos.HaltLoss, Prob: 1.0, Node: -1},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(JobSpec{Name: "pp", Size: 2, NewProgram: pingPong(5)})
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(chaosHorizon)
	if job.State() != JobDone {
		t.Fatalf("job state %v under recovery; auditor: %s", job.State(), c.Auditor().Summary())
	}
	if !c.Auditor().Ok() {
		t.Fatalf("recovery run reported violations: %s", c.Auditor().Summary())
	}
	halt, _, _, forced := nicTotals(c)
	if halt == 0 {
		t.Fatal("no halt retransmissions under permanent halt loss")
	}
	if forced == 0 {
		t.Fatal("no forced phases: permanent halt loss is only survivable by force-complete")
	}
}

// TestReadyLossRecovered: the stage-3 mirror of TestHaltLossRecovered —
// permanent ready loss, absorbed by ready retransmission + force-complete.
func TestReadyLossRecovered(t *testing.T) {
	cfg := recoveredConfig(2)
	cfg.Chaos = &chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Kind: chaos.ReadyLoss, Prob: 1.0, Node: -1},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(JobSpec{Name: "pp", Size: 2, NewProgram: pingPong(5)})
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(chaosHorizon)
	if job.State() != JobDone {
		t.Fatalf("job state %v under recovery; auditor: %s", job.State(), c.Auditor().Summary())
	}
	if !c.Auditor().Ok() {
		t.Fatalf("recovery run reported violations: %s", c.Auditor().Summary())
	}
	_, ready, _, _ := nicTotals(c)
	if ready == 0 {
		t.Fatal("no ready retransmissions under permanent ready loss")
	}
}

// TestPartialHaltLossCountsStaleCtrl: with half the halts lost, the
// re-broadcasts reach peers that already heard the original — those
// duplicates must be dropped idempotently and counted, and (being marked
// retransmissions) answered with an echo that fills the sender's own gap.
func TestPartialHaltLossCountsStaleCtrl(t *testing.T) {
	cfg := recoveredConfig(3)
	cfg.Chaos = &chaos.Plan{Seed: 21, Faults: []chaos.Fault{
		{Kind: chaos.HaltLoss, Prob: 0.5, Node: -1},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(JobSpec{Name: "stream", Size: 2, NewProgram: oneWay(100, 512)})
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(chaosHorizon)
	if job.State() != JobDone {
		t.Fatalf("job state %v under recovery; auditor: %s", job.State(), c.Auditor().Summary())
	}
	if !c.Auditor().Ok() {
		t.Fatalf("recovery run reported violations: %s", c.Auditor().Summary())
	}
	halt, _, stale, _ := nicTotals(c)
	if halt == 0 {
		t.Fatal("no halt retransmissions under 50% halt loss")
	}
	if stale == 0 {
		t.Fatal("no stale control packets counted: duplicates should have reached already-heard peers")
	}
}

// TestCtrlLossRecoveredWithinWindow: a 3-quantum blackout of the control
// Ethernet (100% loss) — every masterd/noded message in flight is dropped.
// The reliable-send retry chain (re-sends at 0.25q, 0.75q, 1.75q, 3.75q …
// cumulative) punches through after the window closes; the bare protocol
// wedges on the first lost message. Permanent 100% ctrl loss is excluded
// by design: retransmission needs some delivery.
func TestCtrlLossRecoveredWithinWindow(t *testing.T) {
	cfg := recoveredConfig(2)
	cfg.Chaos = &chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Kind: chaos.CtrlLoss, Prob: 1.0, Node: -1, From: 0, Until: 3 * 400_000},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(JobSpec{Name: "pp", Size: 2, NewProgram: pingPong(5)})
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(chaosHorizon)
	if job.State() != JobDone {
		t.Fatalf("job state %v under recovery; auditor: %s", job.State(), c.Auditor().Summary())
	}
	if !c.Auditor().Ok() {
		t.Fatalf("recovery run reported violations: %s", c.Auditor().Summary())
	}
}

// TestNodeCrashEvictsAndSurvives: a node crashes before its rank of job A
// ever forks. The crashed node is idle, so it still acknowledges switch
// rounds — the launch watchdog is what detects the silent fork, evicts the
// node, and kills job A. Job B, placed on the surviving nodes, must load,
// run and complete normally on the degraded cluster, and every survivor
// must have pruned the dead node from its membership.
func TestNodeCrashEvictsAndSurvives(t *testing.T) {
	const crashed = 0
	cfg := recoveredConfig(4)
	cfg.Chaos = &chaos.Plan{Seed: 5, Faults: []chaos.Fault{
		{Kind: chaos.NodeCrash, Node: crashed, From: 10_000},
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobA, err := c.Submit(JobSpec{Name: "doomed", Size: 2, NewProgram: pingPong(5)})
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := c.Submit(JobSpec{Name: "survivor", Size: 2, NewProgram: pingPong(400)})
	if err != nil {
		t.Fatal(err)
	}
	spans := func(j *Job, col int) bool {
		for _, jc := range j.Placement.Cols {
			if jc == col {
				return true
			}
		}
		return false
	}
	if !spans(jobA, crashed) || spans(jobB, crashed) {
		t.Fatalf("placement assumption broken: A on %v, B on %v", jobA.Placement.Cols, jobB.Placement.Cols)
	}
	c.RunUntil(chaosHorizon)

	if jobA.State() != JobKilled {
		t.Fatalf("job spanning the crashed node is %v, want killed; auditor: %s",
			jobA.State(), c.Auditor().Summary())
	}
	if jobB.State() != JobDone {
		t.Fatalf("surviving job is %v, want done; auditor: %s", jobB.State(), c.Auditor().Summary())
	}
	if !c.master.dead[crashed] {
		t.Fatal("masterd never declared the crashed node dead")
	}
	for i, n := range c.Nodes() {
		if i == crashed {
			continue
		}
		if n.Mgr.InTopology(myrinet.NodeID(crashed)) {
			t.Fatalf("survivor %d still lists the dead node in its topology", i)
		}
	}
	if !c.Auditor().Ok() {
		t.Fatalf("crash recovery reported violations: %s", c.Auditor().Summary())
	}
}

// TestRecoveryDeterminism: the recovery layer preserves the replay
// contract — two runs of the same seeded crash-plus-loss plan produce
// byte-identical injection traces, identical violations (none), and
// identical job timelines.
func TestRecoveryDeterminism(t *testing.T) {
	run := func() ([]string, []chaos.Violation, sim.Time, sim.Time) {
		cfg := recoveredConfig(4)
		cfg.Chaos = &chaos.Plan{Seed: 31, Faults: []chaos.Fault{
			{Kind: chaos.NodeCrash, Node: 0, From: 10_000},
			{Kind: chaos.HaltLoss, Prob: 0.4, Node: -1},
		}}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, err := c.Submit(JobSpec{Name: "doomed", Size: 2, NewProgram: pingPong(5)})
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Submit(JobSpec{Name: "survivor", Size: 2, NewProgram: pingPong(100)})
		if err != nil {
			t.Fatal(err)
		}
		c.RunUntil(chaosHorizon)
		return c.ChaosTrace(), c.Auditor().Violations(), a.DoneTime, b.DoneTime
	}
	t1, v1, a1, b1 := run()
	t2, v2, a2, b2 := run()
	if strings.Join(t1, "\n") != strings.Join(t2, "\n") {
		t.Fatal("identical recovery runs produced different injection traces")
	}
	if len(v1) != len(v2) {
		t.Fatalf("violation counts differ: %d vs %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("violation %d differs:\n  %s\n  %s", i, v1[i], v2[i])
		}
	}
	if a1 != a2 || b1 != b2 {
		t.Fatalf("job timelines differ: %d/%d vs %d/%d", a1, b1, a2, b2)
	}
	if len(t1) == 0 {
		t.Fatal("plan produced no injections")
	}
}

// TestRecoveryCleanPathFree: on a fault-free run the recovery layer is
// pure bookkeeping — every timer is cancelled before it fires, so the
// workload's completion time is cycle-identical to the recovery-off run
// and no retransmission or force-complete ever happens.
func TestRecoveryCleanPathFree(t *testing.T) {
	elapsed := func(recovery bool) sim.Time {
		cfg := testConfig(2)
		if recovery {
			r := DefaultRecovery(cfg.Quantum)
			cfg.Recovery = &r
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		job, err := c.Submit(JobSpec{Name: "stream", Size: 2, NewProgram: oneWay(100, 512)})
		if err != nil {
			t.Fatal(err)
		}
		c.RunUntil(chaosHorizon)
		if job.State() != JobDone {
			t.Fatalf("recovery=%v: job did not finish", recovery)
		}
		if recovery {
			halt, ready, stale, forced := nicTotals(c)
			if halt+ready+stale+forced != 0 {
				t.Fatalf("clean run exercised recovery: halt=%d ready=%d stale=%d forced=%d",
					halt, ready, stale, forced)
			}
		}
		return job.DoneTime
	}
	off := elapsed(false)
	on := elapsed(true)
	if off != on {
		t.Fatalf("recovery changed the clean path: done at %d with, %d without", on, off)
	}
}

// TestRecoveryConfigValidation: broken recovery budgets are rejected at
// cluster construction, not discovered as silent timer misbehaviour.
func TestRecoveryConfigValidation(t *testing.T) {
	cfg := testConfig(2)
	cfg.Recovery = &Recovery{} // zero timeouts
	if _, err := New(cfg); err == nil {
		t.Fatal("zero-valued Recovery accepted")
	}
	cfg = testConfig(2)
	r := DefaultRecovery(cfg.Quantum)
	r.NICRetries = -1
	cfg.Recovery = &r
	if _, err := New(cfg); err == nil {
		t.Fatal("negative retry budget accepted")
	}
}
