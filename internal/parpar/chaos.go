package parpar

// chaos.go wires the chaos harness into the assembled cluster: the fault
// injector (when a plan is configured) and the always-on invariant auditor.
// The auditor runs its registered checks once per quantum while jobs are
// live, and the stack's hook points (NIC drops, manager digests, flush
// ordering) report violations as they happen.

import (
	"fmt"
	"sort"

	"gangfm/internal/chaos"
	"gangfm/internal/lanai"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// progressKey identifies one process's progress snapshot between audit
// ticks.
type progressKey struct {
	node int
	job  myrinet.JobID
}

// Auditor returns the cluster's invariant auditor (always present).
func (c *Cluster) Auditor() *chaos.Auditor { return c.auditor }

// Ledger returns the destroyed-credit ledger.
func (c *Cluster) Ledger() *chaos.CreditLedger { return c.ledger }

// ChaosTrace returns the injector's firing trace, or nil when no fault plan
// is installed.
func (c *Cluster) ChaosTrace() []string {
	if c.injector == nil {
		return nil
	}
	return c.injector.Trace()
}

// armChaos installs the fault injector (if a plan is configured) and the
// invariant auditor's hook points. Called once from New.
func (c *Cluster) armChaos() {
	seed := c.cfg.Seed
	if c.cfg.Chaos != nil {
		seed = c.cfg.Chaos.Seed
	}
	c.auditor = chaos.NewAuditor(c.Eng, seed)
	c.auditor.SetFailFast(c.cfg.FailFast)
	c.ledger = chaos.NewCreditLedger()

	if c.cfg.Chaos != nil && !c.cfg.Chaos.Empty() {
		c.injector = chaos.NewInjector(c.Eng, *c.cfg.Chaos)
		c.Net.SetInjector(c.injector)
		c.ctrl.intercept = c.injector.CtrlMessage
	}
	c.Net.OnDrop = c.ledger.RecordDrop
	for _, n := range c.nodes {
		if c.injector != nil {
			c.injector.ArmNode(int(n.ID), n.CPU)
		}
		c.armNodeObservers(n)
	}
	// Repair events: the injector unblocks the host CPU at the fault time
	// (armed above); the cluster schedules the fresh incarnation's boot and
	// rejoin at the same instant, after the unblock in FIFO order. Without
	// the recovery layer there is no membership to rejoin — the repair is
	// then hardware-only and the stale incarnation simply stops being
	// excused by the CPU-fault auditor.
	if c.injector != nil && c.cfg.Recovery != nil {
		for _, f := range c.cfg.Chaos.Faults {
			if f.Kind != chaos.NodeRepair {
				continue
			}
			node := f.Node
			c.Eng.ScheduleAt(f.From, func() { c.repairNode(node) })
		}
	}

	c.auditor.Register(c.checkEndpoints)
	c.auditor.Register(c.checkJobDelivery)
	c.auditor.Register(c.checkGangMatrix)
	c.auditor.Register(c.checkMasterProgress)
	if c.cfg.Recovery != nil {
		c.auditor.Register(c.checkRecovery)
	}
}

// armNodeObservers wires one node incarnation's observer hooks: the
// injector's store-corruption hook plus drop and violation reporting on
// the card and manager. Called per node at construction and again at
// every reboot — a fresh incarnation's card and manager start with nil
// hooks. The injector's CPU faults are NOT re-armed: they bind to the
// host CPU resource, which survives the reboot.
func (c *Cluster) armNodeObservers(n *Node) {
	if c.injector != nil {
		n.Mgr.OnStore = c.injector.StoreHook(int(n.ID))
	}
	n.NIC.OnDrop = func(p *myrinet.Packet, _ lanai.DropReason) { c.ledger.RecordDrop(p) }
	n.NIC.OnViolation = c.auditor.Report
	n.Mgr.Audit = c.auditor.Report
}

// armAuditTick starts the per-quantum audit loop. The loop keeps itself
// alive only while jobs are live, so a quiescent cluster still lets
// Engine.Run return.
func (c *Cluster) armAuditTick() {
	if c.auditTicking {
		return
	}
	c.auditTicking = true
	var tick func()
	tick = func() {
		c.auditor.RunChecks()
		if c.master.Jobs() == 0 {
			c.auditTicking = false
			return
		}
		c.Eng.Schedule(c.cfg.Quantum, tick)
	}
	c.Eng.Schedule(c.cfg.Quantum, tick)
}

// sortedProcs returns a node's processes in job-ID order, so audit reports
// are emitted deterministically. The returned slice is the node's reusable
// scratch (valid until the next call); insertion sort keeps the audit loop
// free of sort.Slice's reflection allocations — a node holds at most Slots
// processes.
func (n *Node) sortedProcs() []*Proc {
	out := n.procScratch[:0]
	for _, p := range n.procs {
		out = append(out, p)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].job.ID < out[j-1].job.ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	n.procScratch = out
	return out
}

// sortedJobIDs fills the cluster's scratch slice with the map's keys in
// ascending order — the audit loop's allocation-free substitute for a
// per-tick make + sort.Slice.
func (c *Cluster) sortedJobIDs(jobs map[myrinet.JobID]*Job) []myrinet.JobID {
	ids := c.audJobIDs[:0]
	for id := range jobs {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	c.audJobIDs = ids
	return ids
}

// checkEndpoints runs the FM-level invariants on every live endpoint:
// endpoint-local credit and byte accounting, receive-queue occupancy
// against the credit window, and the loss-induced permanent stall the
// paper's §2.2 predicts for a protocol with no retransmission.
func (c *Cluster) checkEndpoints(now sim.Time, report func(invariant, detail string)) {
	for _, n := range c.nodes {
		for _, p := range n.sortedProcs() {
			ep := p.EP
			jobID := p.job.ID
			ep.AuditInvariants(report)

			// Receive-queue occupancy: flow control promises no source
			// ever has more than C0 packets parked at a destination.
			if ctx := ep.Context(); ctx != nil && ctx.Job == jobID && ep.C0() > 0 {
				perSrc := c.audSrcCount
				clear(perSrc)
				for i := 0; i < ctx.RecvQ.Len(); i++ {
					perSrc[ctx.RecvQ.At(i).SrcRank]++
				}
				srcs := c.audSrcs[:0]
				for s := range perSrc {
					srcs = append(srcs, s)
				}
				sort.Ints(srcs)
				c.audSrcs = srcs
				for _, s := range srcs {
					if perSrc[s] > ep.C0() {
						report("recv-occupancy", fmt.Sprintf(
							"node %d job %d rank %d holds %d packets from rank %d (C0=%d)",
							n.ID, jobID, p.rank, perSrc[s], s, ep.C0()))
					}
				}
			}

			// Credit-conservation stall: the sender is head-of-line blocked
			// with zero credits, the network destroyed credits for this job,
			// nothing of the job's is in flight, and no progress happened
			// since the previous tick. A legitimately closed window always
			// reopens (the credits exist somewhere); a loss-starved one
			// cannot.
			key := progressKey{node: int(n.ID), job: jobID}
			st := ep.Stats()
			progress := st.PacketsSent + st.PacketsRecvd + st.RefillsRecvd
			prev, seen := c.prevProgress[key]
			c.prevProgress[key] = progress
			dst, wedged := ep.Stalled()
			if wedged && seen && prev == progress &&
				p.job.state == JobRunning && ep.Running() &&
				c.ledger.Destroyed(jobID) > 0 && c.Net.InFlight(jobID) == 0 {
				report("credit-conservation", fmt.Sprintf(
					"node %d job %d rank %d wedged toward rank %d: %d credits destroyed by %d drops, no retransmission",
					n.ID, jobID, p.rank, dst, c.ledger.Destroyed(jobID), c.ledger.Drops(jobID)))
			}
		}
	}
}

// checkJobDelivery audits end-to-end liveness. FM has no retransmission,
// so a lost packet can wedge a job even when no credit window is exhausted:
// the receiver waits forever for data that no longer exists, with every
// endpoint idle. The check reports a job that is scheduled and runnable,
// has suffered drops, has nothing in flight, and made no communication
// progress over a whole quantum. CPU-fault windows (and the quantum right
// after one, while the backlog drains) are excused: a paused host explains
// a frozen job without any protocol violation.
func (c *Cluster) checkJobDelivery(now sim.Time, report func(invariant, detail string)) {
	for _, id := range c.sortedJobIDs(c.master.jobs) {
		job := c.master.jobs[id]
		if job.state != JobRunning {
			continue
		}
		var progress uint64
		runnable := true
		for _, p := range job.procs {
			if p == nil || p.EP == nil || !p.EP.Running() || c.cpuFaultNear(int(p.node.ID), now) {
				runnable = false
				break
			}
			st := p.EP.Stats()
			progress += st.PacketsSent + st.PacketsRecvd + st.RefillsRecvd
		}
		key := progressKey{node: -1, job: id}
		prev, seen := c.prevProgress[key]
		c.prevProgress[key] = progress
		if !runnable || !seen || prev != progress || progress == 0 {
			continue
		}
		if c.ledger.Drops(id) == 0 || c.Net.InFlight(id) != 0 {
			continue
		}
		report("delivery-stall", fmt.Sprintf(
			"job %d wedged after %d drop(s): nothing in flight, no endpoint progress for a quantum, %d credits destroyed",
			id, c.ledger.Drops(id), c.ledger.Destroyed(id)))
	}
}

// cpuFaultNear reports whether a CPU fault window covers the node now or
// did within the last quantum.
func (c *Cluster) cpuFaultNear(node int, now sim.Time) bool {
	if c.injector == nil {
		return false
	}
	prev := now - c.cfg.Quantum
	if prev < 0 {
		prev = 0
	}
	return c.injector.CPUFaultActive(node, now) || c.injector.CPUFaultActive(node, prev)
}

// checkRecovery audits the self-healing layer itself (registered only with
// recovery enabled).
//
// retransmit-bounded: the retransmission traffic of every card stays under
// the budget implied by its timer configuration — a card exceeding it is
// retransmitting outside its state machine (for example, an echo loop).
//
// eviction-consistency: once a node is evicted, no live job spans it, its
// matrix column is empty, and — after the membership-update grace period —
// every survivor has pruned it from its routing table.
func (c *Cluster) checkRecovery(now sim.Time, report func(invariant, detail string)) {
	m := c.master
	rec := c.cfg.Recovery

	// Per epoch and phase a card re-sends at most NICRetries times to each
	// peer and echoes at most once per marked packet received (itself
	// bounded by the peers' budgets); 4·(NICRetries+1)·peers per epoch
	// covers both phases with slack.
	if peers := len(c.nodes) - 1; peers > 0 {
		limit := uint64(4*(rec.NICRetries+1)*peers) * (m.epoch + 1)
		for _, n := range c.nodes {
			st := n.NIC.Stats()
			if total := st.HaltRetransmits + st.ReadyRetransmits; total > limit {
				report("retransmit-bounded", fmt.Sprintf(
					"node %d re-sent %d control packets over %d epochs (budget %d)",
					n.ID, total, m.epoch, limit))
			}
		}
	}

	evicted := make([]int, 0, len(m.evictedAt))
	for i := range m.evictedAt {
		evicted = append(evicted, i)
	}
	sort.Ints(evicted)
	for _, i := range evicted {
		id := myrinet.NodeID(i)
		for _, jid := range c.sortedJobIDs(m.jobs) {
			for _, col := range m.jobs[jid].Placement.Cols {
				if col == i {
					report("eviction-consistency", fmt.Sprintf(
						"job %d still live across evicted node %d", jid, i))
				}
			}
		}
		for r := 0; r < c.cfg.Slots; r++ {
			if jid := m.matrix.JobAt(r, i); jid != myrinet.NoJob {
				report("eviction-consistency", fmt.Sprintf(
					"matrix slot %d still assigns job %d to evicted node %d", r, jid, i))
			}
		}
		if now-m.evictedAt[i] > c.stallBudget() {
			for j, node := range c.nodes {
				if !m.dead[j] && node.Mgr.InTopology(id) {
					report("eviction-consistency", fmt.Sprintf(
						"node %d still has evicted node %d in its topology", j, i))
				}
			}
		}
	}
}

// checkGangMatrix audits the scheduling matrix's structural invariants.
func (c *Cluster) checkGangMatrix(now sim.Time, report func(invariant, detail string)) {
	for _, msg := range c.master.matrix.Audit() {
		report("gang-matrix", msg)
	}
}

// stallRounds is how many quanta a switch round or job launch may take
// before the auditor calls it stuck. Generous: a healthy round completes
// well within one quantum.
const stallRounds = 4

// recoveryStallRounds is the liveness budget with recovery enabled: the
// layered timers (NIC force-complete ~3.75 quanta, watchdog eviction ~14)
// legitimately stretch a round, so the alarm threshold sits above the
// whole cascade. A round still stuck past it means recovery itself failed.
const recoveryStallRounds = 20

// stallBudget returns the masterd-protocol stall threshold in cycles.
func (c *Cluster) stallBudget() sim.Time {
	if c.cfg.Recovery != nil {
		return recoveryStallRounds * c.cfg.Quantum
	}
	return stallRounds * c.cfg.Quantum
}

// checkMasterProgress audits the masterd's protocols: a switch round that
// never collects all acknowledgements (a lost or starved control message,
// a node that cannot finish its flush) and a job stuck in the Figure 2
// launch protocol. With recovery enabled the round alarm is named for what
// it means there — the recovery cascade itself failed to restore liveness.
func (c *Cluster) checkMasterProgress(now sim.Time, report func(invariant, detail string)) {
	m := c.master
	budget := c.stallBudget()
	if m.inFlight && now-m.roundStart > budget {
		invariant := "flush-stall"
		if c.cfg.Recovery != nil {
			invariant = "recovery-liveness"
		}
		report(invariant, fmt.Sprintf(
			"switch round %d stuck: %d/%d acks after %d cycles",
			m.epoch, m.acks, m.needAcks, now-m.roundStart))
	}
	for _, id := range c.sortedJobIDs(m.jobs) {
		job := m.jobs[id]
		if job.state == JobLoading && now-job.SubmitTime > budget {
			report("launch-stall", fmt.Sprintf(
				"job %d stuck loading: %d/%d ranks ready after %d cycles",
				id, job.readyRanks, job.Spec.Size, now-job.SubmitTime))
		}
		// Completion stall: every rank's program has locally finished
		// (p.done is node-side ground truth) yet the job never reaches
		// JobDone — its rankDone control messages are gone. The condition
		// must persist across consecutive audit ticks: without recovery a
		// ctrl round trip is far shorter than a quantum, so one full
		// quantum of "all done but not done" is already conclusive; with
		// recovery the completions are re-sent with backoff, so the alarm
		// waits out the whole retry budget.
		if job.state == JobRunning {
			allDone := true
			for _, p := range job.procs {
				if p == nil || !p.done {
					allDone = false
					break
				}
			}
			key := progressKey{node: -2, job: id}
			prev := c.prevProgress[key]
			val := uint64(0)
			if allDone {
				val = prev + 1
			}
			c.prevProgress[key] = val
			persist := uint64(2)
			if c.cfg.Recovery != nil {
				persist = recoveryStallRounds
			}
			if val >= persist {
				report("completion-stall", fmt.Sprintf(
					"job %d: all %d ranks finished locally but only %d/%d completions reached the masterd",
					id, job.Spec.Size, job.doneRanks, job.Spec.Size))
			}
		}
	}
}
