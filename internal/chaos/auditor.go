package chaos

import (
	"fmt"
	"strings"
	"sync"

	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// Violation is one invariant breach, timestamped in virtual time.
type Violation struct {
	Time sim.Time
	// Invariant names the broken property ("credit-conservation",
	// "flush-order", "store-integrity", "gang-exclusivity", ...).
	Invariant string
	// Detail describes the concrete breach.
	Detail string
}

// String formats the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%12d %s: %s", v.Time, v.Invariant, v.Detail)
}

// Check is a registered periodic audit: it inspects live state and reports
// breaches through report. Checks must be read-only — they run interleaved
// with the protocol at quantum boundaries.
type Check func(now sim.Time, report func(invariant, detail string))

// violationCap bounds the retained violation list; a systemic breach
// repeats every audit tick and the first occurrences carry the signal.
const violationCap = 200

// Auditor is the central invariant registry: hook points all over the
// stack report violations here, and registered checks run periodically
// (the cluster schedules them every quantum). Every report carries the
// replay seed so a failure message alone suffices to reproduce the run.
type Auditor struct {
	eng  *sim.Engine
	seed uint64

	// mu guards the report state: the NIC and manager hook points can fire
	// from concurrent shard workers when the cluster runs a windowed shard
	// group, while the periodic checks run on the group's global lane.
	mu         sync.Mutex
	failFast   bool
	checks     []Check
	seen       map[string]bool
	violations []Violation
	dropped    uint64
	stopped    bool

	// reportFn is the bound Report method, built once: RunChecks runs every
	// quantum, and evaluating the method value there would allocate a
	// closure per check per tick.
	reportFn func(invariant, detail string)
}

// NewAuditor builds an auditor; seed is the value needed to replay the run
// (the fault plan's seed, or the cluster seed when no plan is installed).
func NewAuditor(eng *sim.Engine, seed uint64) *Auditor {
	a := &Auditor{eng: eng, seed: seed, seen: make(map[string]bool)}
	a.reportFn = a.Report
	return a
}

// Seed returns the replay seed.
func (a *Auditor) Seed() uint64 { return a.seed }

// SetFailFast makes the first violation stop the simulation engine, so
// the event queue freezes at the instant of the breach for inspection.
func (a *Auditor) SetFailFast(on bool) { a.failFast = on }

// Register adds a periodic check.
func (a *Auditor) Register(c Check) { a.checks = append(a.checks, c) }

// RunChecks runs every registered check once, at the current time.
func (a *Auditor) RunChecks() {
	now := a.eng.Now()
	for _, c := range a.checks {
		c(now, a.reportFn)
	}
}

// Report records a violation. Duplicate (invariant, detail) pairs are
// collapsed: a wedged invariant re-reports identically every audit tick.
func (a *Auditor) Report(invariant, detail string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := invariant + "\x00" + detail
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	if len(a.violations) >= violationCap {
		a.dropped++
		return
	}
	a.violations = append(a.violations, Violation{Time: a.eng.Now(), Invariant: invariant, Detail: detail})
	if a.failFast && !a.stopped {
		a.stopped = true
		a.eng.Stop()
	}
}

// Ok reports whether no violation has been recorded.
func (a *Auditor) Ok() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.violations) == 0 && a.dropped == 0
}

// Violations returns the recorded violations in report order.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return out
}

// Summary formats the verdict with the replay seed — the line a failing
// fuzz run prints.
func (a *Auditor) Summary() string {
	if a.Ok() {
		return fmt.Sprintf("ok: no invariant violations (seed %d)", a.seed)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s) — replay with seed %d:", len(a.violations), a.seed)
	for _, v := range a.violations {
		b.WriteString("\n  " + v.String())
	}
	if a.dropped > 0 {
		fmt.Fprintf(&b, "\n  ... %d further distinct violations suppressed", a.dropped)
	}
	return b.String()
}

// CreditLedger tracks the flow-control credits the network destroys. FM
// has no retransmission: when a Data packet is lost, one credit of the
// src→dst pool and its piggybacked refill (Credits of the dst→src pool)
// vanish; a lost Refill destroys its carried credits. The ledger gives
// the credit-conservation auditor the ground truth to distinguish a
// loss-induced stall (a violation of FM's reliable-SAN assumption) from a
// legitimately exhausted window.
type CreditLedger struct {
	// mu guards the maps: drop hooks fire from whichever shard worker owns
	// the dropping node when the cluster runs a windowed shard group.
	mu        sync.Mutex
	destroyed map[myrinet.JobID]int
	drops     map[myrinet.JobID]int
}

// NewCreditLedger builds an empty ledger.
func NewCreditLedger() *CreditLedger {
	return &CreditLedger{
		destroyed: make(map[myrinet.JobID]int),
		drops:     make(map[myrinet.JobID]int),
	}
}

// RecordDrop accounts one dropped packet (network loss or card-level
// discard). Control packets carry no credits and are ignored.
func (l *CreditLedger) RecordDrop(p *myrinet.Packet) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch p.Type {
	case myrinet.Data:
		l.destroyed[p.Job] += 1 + p.Credits
		l.drops[p.Job]++
	case myrinet.Refill:
		l.destroyed[p.Job] += p.Credits
		l.drops[p.Job]++
	}
}

// Destroyed returns how many credits the job has irrecoverably lost.
func (l *CreditLedger) Destroyed(job myrinet.JobID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.destroyed[job]
}

// Drops returns how many of the job's packets were dropped.
func (l *CreditLedger) Drops(job myrinet.JobID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.drops[job]
}
