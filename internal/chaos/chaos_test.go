package chaos

import (
	"strings"
	"testing"

	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// TestPlanValidate pins the structural rules: empty windows, node faults
// without an Until, out-of-range probabilities and factors.
func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero plan", Plan{}, true},
		{"classic loss", Loss(1, 0.05), true},
		{"windowed loss", Plan{Faults: []Fault{{Kind: DataLoss, Prob: 0.5, From: 10, Until: 20, Node: -1}}}, true},
		{"empty window", Plan{Faults: []Fault{{Kind: DataLoss, Prob: 0.5, From: 20, Until: 10}}}, false},
		{"prob > 1", Plan{Faults: []Fault{{Kind: RefillLoss, Prob: 1.5}}}, false},
		{"pause needs until", Plan{Faults: []Fault{{Kind: NodePause, Node: 0}}}, false},
		{"pause needs node", Plan{Faults: []Fault{{Kind: NodePause, Node: -1, From: 0, Until: 100}}}, false},
		{"slow factor out of range", Plan{Faults: []Fault{{Kind: NodeSlow, Node: 0, From: 0, Until: 100, Factor: 1.0}}}, false},
		{"delay must be positive", Plan{Faults: []Fault{{Kind: CtrlDelay, Prob: 0.1}}}, false},
		{"crash ok", Plan{Faults: []Fault{{Kind: NodeCrash, Node: 2, From: 100}}}, true},
		{"crash needs node", Plan{Faults: []Fault{{Kind: NodeCrash, Node: -1, From: 100}}}, false},
		{"crash is permanent", Plan{Faults: []Fault{{Kind: NodeCrash, Node: 2, From: 100, Until: 500}}}, false},
		{"unknown kind", Plan{Faults: []Fault{{Kind: FaultKind(99)}}}, false},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
}

// TestInjectorTraceDeterminism: the core replay contract at the unit level.
// Two injectors built from the same plan, fed the same packet sequence,
// emit byte-identical traces and identical verdicts.
func TestInjectorTraceDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, Faults: []Fault{
		{Kind: DataLoss, Prob: 0.3, Node: -1},
		{Kind: DataDup, Prob: 0.3, Node: -1},
		{Kind: RefillLoss, Prob: 0.5, Node: -1},
	}}
	feed := func() (string, []myrinet.Verdict) {
		in := NewInjector(sim.NewEngine(), plan)
		var verdicts []myrinet.Verdict
		for i := 0; i < 200; i++ {
			typ := myrinet.Data
			if i%5 == 0 {
				typ = myrinet.Refill
			}
			p := &myrinet.Packet{Type: typ, Src: myrinet.NodeID(i % 3), Dst: myrinet.NodeID((i + 1) % 3), Job: 1}
			verdicts = append(verdicts, in.Packet(sim.Time(i*100), p))
		}
		return in.TraceString(), verdicts
	}
	trA, vA := feed()
	trB, vB := feed()
	if trA != trB {
		t.Fatalf("same plan produced different traces:\n--- a ---\n%s\n--- b ---\n%s", trA, trB)
	}
	for i := range vA {
		if vA[i] != vB[i] {
			t.Fatalf("verdict %d differs: %+v vs %+v", i, vA[i], vB[i])
		}
	}
	drops, dups := 0, 0
	for _, v := range vA {
		if v.Drop {
			drops++
		}
		if v.Duplicate {
			dups++
		}
	}
	if drops == 0 || dups == 0 {
		t.Fatalf("plan with p=0.3/0.3/0.5 over 200 packets fired nothing: drops=%d dups=%d", drops, dups)
	}
}

// TestInjectorWindows: a fault outside its [From, Until) window never fires.
func TestInjectorWindows(t *testing.T) {
	plan := Plan{Seed: 7, Faults: []Fault{
		{Kind: DataLoss, Prob: 1.0, From: 1000, Until: 2000, Node: -1},
	}}
	in := NewInjector(sim.NewEngine(), plan)
	p := func() *myrinet.Packet { return &myrinet.Packet{Type: myrinet.Data, Src: 0, Dst: 1, Job: 1} }
	if v := in.Packet(999, p()); v.Drop {
		t.Fatal("fired before From")
	}
	if v := in.Packet(1000, p()); !v.Drop {
		t.Fatal("p=1.0 fault inside its window did not fire")
	}
	if v := in.Packet(2000, p()); v.Drop {
		t.Fatal("fired at Until (window is half-open)")
	}
}

// TestNodeCrash: a crash is a permanent CPU fault — it blocks the host CPU
// from From onward, records a trace line, prints as an open-ended window,
// and CPUFaultActive reports it forever after.
func TestNodeCrash(t *testing.T) {
	f := Fault{Kind: NodeCrash, Node: 1, From: 1000}
	if s := f.String(); !strings.Contains(s, "node-crash[1000,∞)") || !strings.Contains(s, "node=1") {
		t.Fatalf("crash fault formats as %q", s)
	}
	eng := sim.NewEngine()
	in := NewInjector(eng, Plan{Seed: 3, Faults: []Fault{f}})
	cpu := sim.NewResource(eng, "cpu")
	in.ArmNode(1, cpu)
	in.ArmNode(0, cpu) // wrong node: must not arm anything
	ran := false
	eng.ScheduleAt(500, func() {
		cpu.Use(1, func() { ran = true }) // before the crash the CPU works
	})
	eng.RunUntil(5000)
	if !ran {
		t.Fatal("CPU unusable before the crash point")
	}
	if got := in.Counts()[NodeCrash]; got != 1 {
		t.Fatalf("crash fired %d times, want 1", got)
	}
	if !strings.Contains(in.TraceString(), "node 1 crashed") {
		t.Fatalf("trace lacks the crash line:\n%s", in.TraceString())
	}
	if in.CPUFaultActive(1, 999) {
		t.Fatal("crash active before From")
	}
	for _, at := range []sim.Time{1000, 5000, 1 << 40} {
		if !in.CPUFaultActive(1, at) {
			t.Fatalf("crash not active at %d", at)
		}
	}
	if in.CPUFaultActive(0, 2000) {
		t.Fatal("crash active on the wrong node")
	}
}

// TestAuditorDedupeAndSummary: identical reports collapse to one violation,
// the summary carries the replay seed, and Ok flips on the first report.
func TestAuditorDedupeAndSummary(t *testing.T) {
	a := NewAuditor(sim.NewEngine(), 1234)
	if !a.Ok() {
		t.Fatal("fresh auditor not Ok")
	}
	a.Report("credit-bounds", "node 0 job 1: credits 9 > C0 5")
	a.Report("credit-bounds", "node 0 job 1: credits 9 > C0 5") // duplicate
	a.Report("flush-stall", "round 3 stuck")
	if a.Ok() {
		t.Fatal("auditor Ok after violations")
	}
	if got := len(a.Violations()); got != 2 {
		t.Fatalf("dedupe failed: %d violations, want 2", got)
	}
	sum := a.Summary()
	if !strings.Contains(sum, "seed 1234") {
		t.Fatalf("summary lacks the replay seed:\n%s", sum)
	}
	if !strings.Contains(sum, "credit-bounds") || !strings.Contains(sum, "flush-stall") {
		t.Fatalf("summary lacks the invariants:\n%s", sum)
	}
}

// TestAuditorFailFast: with fail-fast set, the first violation stops the
// engine so a wedged run ends at the point of corruption.
func TestAuditorFailFast(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAuditor(eng, 1)
	a.SetFailFast(true)
	a.Register(func(now sim.Time, report func(invariant, detail string)) {
		report("test-invariant", "boom")
	})
	fired := false
	eng.Schedule(100, func() { a.RunChecks() })
	eng.Schedule(200, func() { fired = true })
	eng.Run()
	if fired {
		t.Fatal("engine kept running after a fail-fast violation")
	}
	if a.Ok() {
		t.Fatal("violation not recorded")
	}
}
