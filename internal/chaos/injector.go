package chaos

import (
	"fmt"
	"strings"

	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// traceCap bounds the injection trace so pathological plans cannot eat the
// heap; overflow is counted, not silently dropped.
const traceCap = 10_000

// slowSliceTarget bounds how many CPU-steal slices a NodeSlow fault
// schedules, so wide windows stay cheap.
const slowSliceTarget = 2000

// minSlowSlice is the smallest steal-slice period, in cycles (0.25 ms).
const minSlowSlice = 50_000

// Injector compiles a Plan into deterministic fault decisions. It
// implements myrinet.Injector for packet faults; the parpar cluster also
// wires CtrlMessage into its control network, ArmNode onto each host CPU,
// and StoreHook into each node's buffer-switch manager.
//
// All decisions are functions of the plan seed and the order in which the
// simulation presents events — both deterministic — so a run can be
// replayed exactly from (cluster config, plan).
type Injector struct {
	eng  *sim.Engine
	rng  *sim.Rand
	plan Plan

	trace    []string
	overflow uint64
	counts   map[FaultKind]uint64
}

// NewInjector builds an injector for the plan. Invalid plans panic: a plan
// is test/driver input, and silently skipping faults would make "no
// violations" meaningless.
func NewInjector(eng *sim.Engine, plan Plan) *Injector {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		eng:    eng,
		rng:    sim.NewRand(plan.Seed),
		plan:   plan,
		counts: make(map[FaultKind]uint64),
	}
}

// Plan returns the compiled plan.
func (in *Injector) Plan() Plan { return in.plan }

// Counts returns how many times each fault kind fired.
func (in *Injector) Counts() map[FaultKind]uint64 {
	out := make(map[FaultKind]uint64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Trace returns the injection trace: one line per fired fault, in firing
// order. Identical (seed, plan, workload) runs yield identical traces —
// the determinism contract the chaos tests pin down.
func (in *Injector) Trace() []string {
	out := make([]string, len(in.trace))
	copy(out, in.trace)
	return out
}

// TraceString joins the trace, noting any overflow.
func (in *Injector) TraceString() string {
	s := strings.Join(in.trace, "\n")
	if in.overflow > 0 {
		s += fmt.Sprintf("\n... %d further injections not recorded", in.overflow)
	}
	return s
}

func (in *Injector) record(kind FaultKind, format string, args ...any) {
	in.counts[kind]++
	if len(in.trace) >= traceCap {
		in.overflow++
		return
	}
	in.trace = append(in.trace,
		fmt.Sprintf("%12d %-13s %s", in.eng.Now(), kind, fmt.Sprintf(format, args...)))
}

// packetKind maps a packet type to the fault kinds that can affect it.
func packetKinds(t myrinet.PacketType) (drop FaultKind, canDup bool, ok bool) {
	switch t {
	case myrinet.Data:
		return DataLoss, true, true
	case myrinet.Refill:
		return RefillLoss, false, true
	case myrinet.Halt:
		return HaltLoss, false, true
	case myrinet.Ready:
		return ReadyLoss, false, true
	default:
		return 0, false, false
	}
}

// Packet decides the fate of one packet at injection time (implements
// myrinet.Injector). Each active matching fault consumes exactly one RNG
// draw whether or not it fires, keeping the decision sequence aligned
// across runs.
func (in *Injector) Packet(now sim.Time, p *myrinet.Packet) myrinet.Verdict {
	dropKind, canDup, ok := packetKinds(p.Type)
	if !ok {
		return myrinet.Verdict{}
	}
	var v myrinet.Verdict
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if !f.active(now) || !f.matchesNode(int(p.Src)) {
			continue
		}
		switch f.Kind {
		case dropKind:
			if in.rng.Bool(f.Prob) && !v.Drop {
				v.Drop = true
				in.record(f.Kind, "%s", p)
			}
		case DataDup:
			if canDup && in.rng.Bool(f.Prob) && !v.Duplicate {
				v.Duplicate = true
				in.record(f.Kind, "%s", p)
			}
		}
	}
	if v.Drop {
		// A packet cannot be both lost and duplicated.
		v.Duplicate = false
	}
	return v
}

// CtrlMessage decides the fate of one control-Ethernet message destined
// for node dst (dst < 0 for masterd-bound messages): extra latency to add
// and whether to drop it outright.
func (in *Injector) CtrlMessage(now sim.Time, dst int) (extra sim.Time, drop bool) {
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if !f.active(now) || !f.matchesNode(dst) {
			continue
		}
		switch f.Kind {
		case CtrlLoss:
			if in.rng.Bool(f.Prob) && !drop {
				drop = true
				in.record(CtrlLoss, "ctrl message to node %d", dst)
			}
		case CtrlDelay:
			if in.rng.Bool(f.Prob) {
				extra += f.Delay
				in.record(CtrlDelay, "ctrl message to node %d +%d cycles", dst, f.Delay)
			}
		}
	}
	if drop {
		extra = 0
	}
	return extra, drop
}

// crashHorizon is the "never" a NodeCrash blocks the CPU until: far past
// any reachable virtual time yet small enough that freeAt arithmetic
// cannot overflow.
const crashHorizon = sim.Time(1) << 62

// ArmNode schedules the plan's CPU faults (NodePause, NodeSlow,
// NodeCrash) against one node's host CPU. Called once per node at
// cluster construction.
func (in *Injector) ArmNode(node int, cpu *sim.Resource) {
	for i := range in.plan.Faults {
		f := in.plan.Faults[i]
		if !f.matchesNode(node) {
			continue
		}
		switch f.Kind {
		case NodePause:
			until := f.Until
			in.eng.ScheduleAt(f.From, func() {
				in.record(NodePause, "node %d CPU blocked until %d", node, until)
				cpu.Block(until)
			})
		case NodeCrash:
			in.eng.ScheduleAt(f.From, func() {
				in.record(NodeCrash, "node %d crashed (fail-stop)", node)
				cpu.Block(crashHorizon)
			})
		case NodeRepair:
			// The injector only ends the hardware fault (the CPU block);
			// the cluster schedules the reboot/rejoin at the same instant,
			// after this event in FIFO order, so the fresh incarnation
			// boots on an unblocked CPU.
			in.eng.ScheduleAt(f.From, func() {
				in.record(NodeRepair, "node %d repaired (fresh incarnation boots)", node)
				cpu.Unblock()
			})
		case NodeSlow:
			period := (f.Until - f.From) / slowSliceTarget
			if period < minSlowSlice {
				period = minSlowSlice
			}
			steal := sim.Time(float64(period) * f.Factor)
			if steal == 0 {
				continue
			}
			in.eng.ScheduleAt(f.From, func() {
				in.record(NodeSlow, "node %d losing %.0f%% CPU until %d", node, f.Factor*100, f.Until)
			})
			for t := f.From; t < f.Until; t += period {
				t := t
				in.eng.ScheduleAt(t, func() { cpu.Block(t + steal) })
			}
		}
	}
}

// CPUFaultActive reports whether a NodePause, NodeSlow or NodeCrash
// window covers the node at time t. The delivery-stall auditor uses it to
// excuse progress freezes that a CPU fault fully explains — a paused host
// is slow, not protocol-broken. A crash is active from its From until the
// earliest NodeRepair of the same node after it (forever when the plan
// holds none).
func (in *Injector) CPUFaultActive(node int, t sim.Time) bool {
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		switch f.Kind {
		case NodePause, NodeSlow:
			if f.active(t) && f.matchesNode(node) {
				return true
			}
		case NodeCrash:
			if f.active(t) && f.matchesNode(node) && !in.repairedBetween(f.Node, f.From, t) {
				return true
			}
		}
	}
	return false
}

// repairedBetween reports whether the plan repairs the node at some time in
// (from, t] — i.e. whether a crash at from is over by t.
func (in *Injector) repairedBetween(node int, from, t sim.Time) bool {
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if f.Kind == NodeRepair && f.Node == node && f.From > from && f.From <= t {
			return true
		}
	}
	return false
}

// StoreHook returns the backing-store corruption hook for one node, or nil
// when the plan has no StoreCorrupt fault for it. The hook is invoked by
// the core manager right after a descheduled job's queues are saved (and
// after the integrity digest is taken); it mutates the parked packets in
// place — the digest check at restore time is expected to report it.
func (in *Injector) StoreHook(node int) func(job myrinet.JobID, send, recv []*myrinet.Packet) {
	var relevant []Fault
	for _, f := range in.plan.Faults {
		if f.Kind == StoreCorrupt && f.matchesNode(node) {
			relevant = append(relevant, f)
		}
	}
	if len(relevant) == 0 {
		return nil
	}
	return func(job myrinet.JobID, send, recv []*myrinet.Packet) {
		now := in.eng.Now()
		for _, f := range relevant {
			if !f.active(now) || !in.rng.Bool(f.Prob) {
				continue
			}
			pkts := make([]*myrinet.Packet, 0, len(send)+len(recv))
			pkts = append(pkts, send...)
			pkts = append(pkts, recv...)
			if len(pkts) == 0 {
				continue
			}
			// Corrupt a field the protocol itself never re-reads (Seq is
			// re-stamped by the network on send), so the fault is crash-
			// free and detectable only by the integrity digest — exactly
			// the silent-corruption scenario the digest exists for.
			victim := pkts[in.rng.Intn(len(pkts))]
			victim.Seq ^= 0xDEAD
			in.record(StoreCorrupt, "node %d job %d packet {%s}", node, job, victim)
		}
	}
}
