package fuzzer

import (
	"strings"
	"testing"

	"gangfm/internal/chaos"
	"gangfm/internal/fm"
	"gangfm/internal/parpar"
	"gangfm/internal/workload"
)

// TestSampleDeterministic: the scenario generator is a pure function of the
// seed, and its plans always validate.
func TestSampleDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a, b := Sample(seed), Sample(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d sampled two different scenarios", seed)
		}
		if err := a.Plan.Validate(); err != nil {
			t.Fatalf("seed %d sampled an invalid plan: %v", seed, err)
		}
		if a.Nodes < 2 || a.Nodes > 4 || len(a.Jobs) == 0 || len(a.Plan.Faults) == 0 {
			t.Fatalf("seed %d sampled out-of-range scenario: %s", seed, a)
		}
	}
}

// TestFuzzOneDeterministic: executing the same seed twice yields identical
// verdicts, traces and job outcomes — the replay contract.
func TestFuzzOneDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		r1 := FuzzOne(seed, 0)
		r2 := FuzzOne(seed, 0)
		if r1.String() != r2.String() {
			t.Fatalf("seed %d: verdicts differ:\n%s\n---\n%s", seed, r1, r2)
		}
		if strings.Join(r1.Trace, "\n") != strings.Join(r2.Trace, "\n") {
			t.Fatalf("seed %d: injection traces differ", seed)
		}
	}
}

// TestCampaignFindsViolations: a modest campaign over the default generator
// surfaces at least one invariant violation — the harness actually detects
// the fragilities it was built for — and every run's verdict line renders.
func TestCampaignFindsViolations(t *testing.T) {
	rep := Fuzz(Config{Seed: 1, Runs: 10}, nil)
	if len(rep.Runs) != 10 {
		t.Fatalf("campaign ran %d/10", len(rep.Runs))
	}
	if rep.Failures == 0 {
		t.Fatal("10 fuzz runs with 1-3 faults each found no violations at all")
	}
	for _, r := range rep.Runs {
		if r.String() == "" {
			t.Fatal("empty verdict line")
		}
	}
}

// TestRecoveryCampaign: the differential recovery mode over a fixed seed
// range must find scenarios that wedge the bare protocol (coverage), must
// recover every one of them (the layer's guarantee over its restricted
// fault classes), and must be deterministic run to run.
func TestRecoveryCampaign(t *testing.T) {
	campaign := func() RecoveryReport { return FuzzRecovery(Config{Seed: 1, Runs: 15}, nil) }
	rep := campaign()
	if len(rep.Runs) != 15 {
		t.Fatalf("campaign ran %d/15", len(rep.Runs))
	}
	if rep.Wedged == 0 {
		t.Fatal("no sampled plan wedged the bare protocol: the campaign proves nothing")
	}
	if rep.Unrecovered != 0 {
		for _, r := range rep.Runs {
			if r.Unrecovered() {
				t.Errorf("unrecovered: %s", r)
			}
		}
		t.Fatalf("%d scenario(s) failed with recovery enabled", rep.Unrecovered)
	}
	if rep.Recovered != rep.Wedged {
		t.Fatalf("recovered %d of %d wedged scenarios", rep.Recovered, rep.Wedged)
	}
	rep2 := campaign()
	for i := range rep.Runs {
		if rep.Runs[i].String() != rep2.Runs[i].String() {
			t.Fatalf("run %d verdict differs between identical campaigns:\n%s\n---\n%s",
				i, rep.Runs[i], rep2.Runs[i])
		}
	}
}

// TestSampleRecoveryRestricted: the recovery sampler never draws the fault
// classes the layer does not guarantee against (data-plane loss and
// corruption), keeps loss windows bounded, and crashes at most one node.
func TestSampleRecoveryRestricted(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		s := SampleRecovery(seed)
		if err := s.Plan.Validate(); err != nil {
			t.Fatalf("seed %d: invalid recovery plan: %v", seed, err)
		}
		crashes := 0
		crashAt := map[int]chaos.Fault{}
		for _, f := range s.Plan.Faults {
			switch f.Kind {
			case chaos.DataLoss, chaos.DataDup, chaos.RefillLoss, chaos.StoreCorrupt:
				t.Fatalf("seed %d: recovery sampler drew unguaranteed fault %s", seed, f.Kind)
			case chaos.NodeCrash:
				crashes++
				crashAt[f.Node] = f
			case chaos.NodeRepair:
				// Instant event, like the crash it undoes — checked below
				// against the crash list, once the whole plan is scanned.
			default:
				if f.Until == 0 {
					t.Fatalf("seed %d: open-ended %s in a recovery plan", seed, f.Kind)
				}
			}
		}
		if crashes > 1 {
			t.Fatalf("seed %d: %d node crashes in one plan", seed, crashes)
		}
		for _, f := range s.Plan.Faults {
			if f.Kind != chaos.NodeRepair {
				continue
			}
			c, ok := crashAt[f.Node]
			if !ok {
				t.Fatalf("seed %d: repair of node %d with no crash of that node", seed, f.Node)
			}
			if f.From <= c.From {
				t.Fatalf("seed %d: repair of node %d at %d precedes its crash at %d", seed, f.Node, f.From, c.From)
			}
		}
	}
}

// TestShrinkIsolatesCausalFault: a plan mixing the causal data-loss fault
// with two irrelevant ones shrinks to the data-loss fault alone, and the
// shrunk plan still reproduces the failure.
func TestShrinkIsolatesCausalFault(t *testing.T) {
	s := Scenario{
		Seed:   99,
		Nodes:  2,
		Slots:  2,
		Policy: fm.Partitioned,
		Jobs:   []parpar.JobSpec{workload.Bandwidth("stream", 200, 512)},
		Plan: chaos.Plan{Seed: 99, Faults: []chaos.Fault{
			{Kind: chaos.CtrlDelay, Prob: 0.2, Delay: 50_000, Node: -1},
			{Kind: chaos.DataLoss, Prob: 0.2, Node: -1},
			{Kind: chaos.NodeSlow, Node: 0, From: 0, Until: 800_000, Factor: 0.5},
		}},
	}
	if !Execute(s, 0).Failed() {
		t.Fatal("seed scenario does not fail; shrink test is vacuous")
	}
	min := Shrink(s, 0)
	if len(min.Faults) != 1 || min.Faults[0].Kind != chaos.DataLoss {
		t.Fatalf("shrink kept %d fault(s): %s", len(min.Faults), min)
	}
	t2 := s
	t2.Plan = min
	if !Execute(t2, 0).Failed() {
		t.Fatal("shrunk plan no longer reproduces the failure")
	}
}

// TestCompareLossKnownAnswer is the fuzzer's differential known-answer
// test, the paper's §2.2 contrast: identical loss wedges FM permanently
// (credit-conservation violation, destroyed credits on the ledger) while
// the go-back-N alternative delivers everything via retransmission with a
// clean audit.
func TestCompareLossKnownAnswer(t *testing.T) {
	cmp := CompareLoss(77, 0.2)
	if !cmp.FMStalled {
		t.Fatalf("FM did not stall under 20%% loss: %+v", cmp)
	}
	if cmp.FMDestroyed == 0 {
		t.Fatal("ledger recorded no destroyed credits")
	}
	if !cmp.AltRecovered {
		t.Fatalf("go-back-N did not recover: delivered %d", cmp.AltDelivered)
	}
	if cmp.AltRetransmissions == 0 || cmp.AltDropped == 0 {
		t.Fatalf("alternative run saw no loss to recover from: %+v", cmp)
	}
	if !strings.Contains(cmp.String(), "recovered=true") {
		t.Fatalf("verdict rendering: %s", cmp)
	}
}

// TestRecoveryCampaignChurnAtScale is the wide net behind the failure-aware
// scheduling work: ≥100 recovery scenarios — now with live churn commands
// (kills and resizes) layered over the fault plans — and none may end
// unrecovered. Wedging the bare protocol is expected (that is the
// campaign's coverage); a scenario that stays wedged WITH the recovery
// layer armed is the bug this test exists to catch.
func TestRecoveryCampaignChurnAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("120-seed recovery campaign is not short")
	}
	const runs = 120
	rep := FuzzRecovery(Config{Seed: 1, Runs: runs}, nil)
	if len(rep.Runs) != runs {
		t.Fatalf("campaign ran %d/%d", len(rep.Runs), runs)
	}
	if rep.Wedged == 0 {
		t.Fatal("no sampled plan wedged the bare protocol across the whole campaign")
	}
	if rep.Unrecovered != 0 {
		for _, r := range rep.Runs {
			if r.Unrecovered() {
				t.Errorf("unrecovered: %s", r)
			}
		}
		t.Fatalf("%d of %d scenarios stayed wedged with recovery enabled", rep.Unrecovered, runs)
	}
	// The campaign must actually exercise churn: a healthy share of the
	// sampled scenarios carries kill/resize commands.
	churned := 0
	for seed := uint64(1); seed <= runs; seed++ {
		if len(SampleRecovery(seed).Churn) > 0 {
			churned++
		}
	}
	if churned < runs/10 {
		t.Fatalf("only %d of %d recovery scenarios sampled churn commands", churned, runs)
	}
}
