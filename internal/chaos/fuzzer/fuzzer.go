// Package fuzzer is the simulation fuzzer of the chaos harness: it samples
// random cluster shapes, job mixes and fault plans from a single seed, runs
// each sampled scenario under the invariant auditor, and shrinks failing
// plans to a minimal reproduction. Because every decision — sampling,
// injection, scheduling — flows from the seed through deterministic
// generators, a one-line failure report ("seed 41 ...") is a complete
// reproduction recipe: `gangsim fuzz -seed 41 -runs 1` replays it exactly.
//
// The package sits above the whole stack (it imports parpar, altsched and
// workload), which is why it lives in its own directory rather than in
// package chaos itself: chaos must stay importable by every layer.
package fuzzer

import (
	"fmt"
	"strings"

	"gangfm/internal/altsched"
	"gangfm/internal/chaos"
	"gangfm/internal/fm"
	"gangfm/internal/myrinet"
	"gangfm/internal/parpar"
	"gangfm/internal/sim"
	"gangfm/internal/workload"
)

// DefaultHorizon is how long each fuzz run simulates. Wedged runs never go
// quiescent (the rotation and audit loops keep ticking), so runs are bounded
// by virtual time: 50 quanta of the fuzzer's fast 400k-cycle quantum.
const DefaultHorizon sim.Time = 50 * quantum

// quantum is the gang-scheduling slice used by fuzzed clusters — short, so
// a run crosses many switch rounds inside the horizon.
const quantum sim.Time = 400_000

// Config parameterizes a fuzzing campaign.
type Config struct {
	// Seed is the campaign's base seed; run i uses Seed+i.
	Seed uint64
	// Runs is the number of scenarios to sample and execute.
	Runs int
	// Horizon bounds each run's virtual time (0 means DefaultHorizon).
	Horizon sim.Time
	// Shrink minimizes every failing plan before reporting it.
	Shrink bool
}

// ChurnCmd is one mid-run scheduler command the fuzzer replays against a
// live job — the online-scheduling churn (voluntary kill, resize) that the
// recovery campaign runs *concurrently* with its fault plans, so crash
// detection, eviction, and voluntary kills race the way they do under the
// schedd daemon.
type ChurnCmd struct {
	// Job indexes Scenario.Jobs.
	Job int
	// At is the command's absolute virtual time.
	At sim.Time
	// ResizeTo == 0 means kill; otherwise restart the job as a compute
	// kernel of that many ranks (gang jobs are rigid within an
	// incarnation, so a resize is kill + resubmit).
	ResizeTo int
}

// Scenario is one sampled cluster shape + job mix + fault plan. It is fully
// determined by its Seed.
type Scenario struct {
	Seed   uint64
	Nodes  int
	Slots  int
	Policy fm.Policy
	Jobs   []parpar.JobSpec
	Plan   chaos.Plan
	// Churn are mid-run kill/resize commands (recovery campaign only).
	Churn []ChurnCmd
	// Recovery runs the cluster with the self-healing switch layer enabled
	// (parpar.DefaultRecovery of the fuzz quantum).
	Recovery bool
}

// String summarizes the scenario on one line.
func (s Scenario) String() string {
	names := make([]string, len(s.Jobs))
	for i, j := range s.Jobs {
		names[i] = fmt.Sprintf("%s/%d", j.Name, j.Size)
	}
	mode := ""
	if s.Recovery {
		mode = ", recovery"
	}
	churn := ""
	if len(s.Churn) > 0 {
		churn = fmt.Sprintf(", %d churn cmd(s)", len(s.Churn))
	}
	return fmt.Sprintf("seed %d: %d nodes, %d slots, %v, jobs [%s], %d fault(s)%s%s",
		s.Seed, s.Nodes, s.Slots, s.Policy, strings.Join(names, " "), len(s.Plan.Faults), churn, mode)
}

// RunResult is the outcome of executing one scenario.
type RunResult struct {
	Scenario Scenario
	// Violations are the auditor's findings (deduplicated, in order).
	Violations []chaos.Violation
	// Crash is the recovered panic message when the protocol stack died
	// outright (fault kinds like DataDup can drive FM into states its own
	// internal assertions reject), empty otherwise.
	Crash string
	// DoneJobs counts jobs that finished within the horizon, of TotalJobs.
	DoneJobs, TotalJobs int
	// Trace is the injector's firing log (capped; see chaos.Injector).
	Trace []string
	// Minimal is the shrunk failing plan when shrinking ran, else the
	// scenario's full plan.
	Minimal chaos.Plan
}

// Failed reports whether the run found anything: an invariant violation or
// an outright crash.
func (r RunResult) Failed() bool { return len(r.Violations) > 0 || r.Crash != "" }

// String formats the verdict for campaign logs.
func (r RunResult) String() string {
	var b strings.Builder
	b.WriteString(r.Scenario.String())
	switch {
	case r.Crash != "":
		fmt.Fprintf(&b, "\n  CRASH: %s", r.Crash)
	case len(r.Violations) > 0:
		fmt.Fprintf(&b, "\n  %d violation(s):", len(r.Violations))
		for _, v := range r.Violations {
			b.WriteString("\n    " + v.String())
		}
	default:
		fmt.Fprintf(&b, "\n  ok (%d/%d jobs done)", r.DoneJobs, r.TotalJobs)
	}
	if r.Failed() && len(r.Minimal.Faults) > 0 && len(r.Minimal.Faults) < len(r.Scenario.Plan.Faults) {
		fmt.Fprintf(&b, "\n  shrunk to %d fault(s): %s", len(r.Minimal.Faults), r.Minimal)
	}
	return b.String()
}

// Sample derives a scenario from a seed. The same seed always yields the
// same scenario; the generator draws in a fixed order.
func Sample(seed uint64) Scenario {
	rng := sim.NewRand(seed ^ 0xC0FFEE)
	s := Scenario{
		Seed:  seed,
		Nodes: 2 + rng.Intn(3), // 2..4
		Slots: 2 + rng.Intn(2), // 2..3
	}
	if rng.Bool(0.5) {
		s.Policy = fm.Partitioned
	} else {
		s.Policy = fm.Switched
	}
	njobs := 1 + rng.Intn(2)
	for j := 0; j < njobs; j++ {
		name := fmt.Sprintf("j%d", j)
		switch rng.Intn(4) {
		case 0:
			s.Jobs = append(s.Jobs, workload.Bandwidth(name+"-bw", 50+rng.Intn(150), 256+rng.Intn(768)))
		case 1:
			s.Jobs = append(s.Jobs, workload.PingPong(name+"-pp", 3+rng.Intn(8), 64+rng.Intn(192)))
		case 2:
			ranks := 2 + rng.Intn(s.Nodes-1) // 2..Nodes
			s.Jobs = append(s.Jobs, workload.AllToAll(name+"-a2a", ranks, 3+rng.Intn(8), 128+rng.Intn(384)))
		default:
			s.Jobs = append(s.Jobs, workload.Compute(name+"-cpu", 1+rng.Intn(s.Nodes), sim.Time(200_000+rng.Intn(800_000))))
		}
	}
	s.Plan = samplePlan(rng, seed, s.Nodes)
	return s
}

// samplePlan draws 1..3 faults. Probabilities are kept moderate so most
// runs exercise a meaningfully faulty but not totally demolished network.
func samplePlan(rng *sim.Rand, seed uint64, nodes int) chaos.Plan {
	kinds := []chaos.FaultKind{
		// Data loss is over-represented: it is the paper's central fault.
		chaos.DataLoss, chaos.DataLoss, chaos.DataDup, chaos.RefillLoss,
		chaos.HaltLoss, chaos.ReadyLoss, chaos.StoreCorrupt,
		chaos.CtrlLoss, chaos.CtrlDelay, chaos.NodePause, chaos.NodeSlow,
	}
	plan := chaos.Plan{Seed: seed}
	nf := 1 + rng.Intn(3)
	for i := 0; i < nf; i++ {
		f := chaos.Fault{Kind: kinds[rng.Intn(len(kinds))], Node: -1}
		if rng.Bool(0.3) {
			f.Node = rng.Intn(nodes)
		}
		f.From = sim.Time(rng.Intn(int(DefaultHorizon / 4)))
		if rng.Bool(0.5) {
			f.Until = f.From + quantum*sim.Time(2+rng.Intn(20))
		}
		switch f.Kind {
		case chaos.NodePause:
			f.Node = rng.Intn(nodes)
			f.Until = f.From + quantum*sim.Time(2+rng.Intn(8))
		case chaos.NodeSlow:
			f.Factor = 0.25 + 0.5*rng.Float64()
			f.Until = f.From + quantum*sim.Time(2+rng.Intn(8))
		case chaos.CtrlDelay:
			f.Prob = 0.1 + 0.4*rng.Float64()
			f.Delay = sim.Time(50_000 * (1 + rng.Intn(6)))
		case chaos.HaltLoss, chaos.ReadyLoss, chaos.CtrlLoss:
			// Flush/control faults wedge hard at high probability; keep a
			// spread so some runs survive and some stall.
			f.Prob = 0.05 + 0.55*rng.Float64()
		default:
			f.Prob = 0.05 + 0.3*rng.Float64()
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan
}

// SampleRecovery derives a scenario for the differential recovery campaign:
// the same cluster/job generator as Sample, but a fault plan drawn only from
// the classes the recovery layer promises to absorb — control-path loss
// (halt, ready, ctrl Ethernet) over *bounded* windows, delay/pause/slow
// interference, and at most one fail-stop node crash. Open-ended control
// loss is deliberately excluded: a link that drops 100% of control traffic
// forever is unrecoverable by design (retransmission needs some delivery),
// and pause/loss windows are kept shorter than the watchdog's eviction
// deadline so a merely-slow node is never evicted as dead.
func SampleRecovery(seed uint64) Scenario {
	s := Sample(seed)
	rng := sim.NewRand(seed ^ 0x5EC0E4)
	s.Plan = sampleRecoveryPlan(rng, seed, s.Nodes)
	// Churn commands draw from their own stream so arming them never
	// perturbs the fault plan of the same seed.
	s.Churn = sampleChurn(sim.NewRand(seed^0xC482), len(s.Jobs), s.Nodes)
	// Repairs ride yet another independent stream (existing seeds keep
	// their exact fault plans and churn): when the plan fail-stopped a
	// node, sometimes boot a fresh incarnation later in the run, so the
	// campaign also shakes the reboot/rejoin barrier against every loss
	// and delay class.
	sampleRepairs(sim.NewRand(seed^0x4E9A14), &s.Plan)
	return s
}

// sampleRepairs appends, with probability 1/2 per fail-stop crash in the
// plan, a NodeRepair of the same node 4..16 quanta after the crash. A
// repair is only ever sampled against a crash that exists — a repair of a
// live node is not a scenario the protocol defines.
func sampleRepairs(rng *sim.Rand, plan *chaos.Plan) {
	for _, f := range plan.Faults {
		if f.Kind != chaos.NodeCrash || !rng.Bool(0.5) {
			continue
		}
		plan.Faults = append(plan.Faults, chaos.Fault{
			Kind: chaos.NodeRepair,
			Node: f.Node,
			From: f.From + quantum*sim.Time(4+rng.Intn(13)),
		})
	}
}

// sampleChurn draws 0..2 mid-run scheduler commands: kills and resizes
// against random jobs, timed inside the first half of the horizon so the
// command usually hits a live job and its aftermath (slot reclaim, fresh
// placement) still races the fault plan.
func sampleChurn(rng *sim.Rand, jobs, nodes int) []ChurnCmd {
	var out []ChurnCmd
	n := rng.Intn(3)
	for i := 0; i < n; i++ {
		cmd := ChurnCmd{
			Job: rng.Intn(jobs),
			At:  sim.Time(int(DefaultHorizon/8) + rng.Intn(int(DefaultHorizon)*3/8)),
		}
		if rng.Bool(0.4) {
			cmd.ResizeTo = 1 + rng.Intn(nodes)
		}
		out = append(out, cmd)
	}
	return out
}

// sampleRecoveryPlan draws 1..3 recoverable faults. Loss and pause windows
// are bounded to at most 8 quanta: the masterd watchdog evicts a silent
// node after ~14 quanta, so any fault shorter than that must be survived
// by retransmission alone.
func sampleRecoveryPlan(rng *sim.Rand, seed uint64, nodes int) chaos.Plan {
	kinds := []chaos.FaultKind{
		chaos.HaltLoss, chaos.HaltLoss, chaos.ReadyLoss, chaos.CtrlLoss,
		chaos.CtrlDelay, chaos.NodePause, chaos.NodeSlow, chaos.NodeCrash,
	}
	plan := chaos.Plan{Seed: seed}
	nf := 1 + rng.Intn(3)
	crashed := false
	for i := 0; i < nf; i++ {
		f := chaos.Fault{Kind: kinds[rng.Intn(len(kinds))], Node: -1}
		if f.Kind == chaos.NodeCrash && crashed {
			f.Kind = chaos.HaltLoss // one fail-stop per campaign run
		}
		if rng.Bool(0.3) {
			f.Node = rng.Intn(nodes)
		}
		f.From = sim.Time(rng.Intn(int(DefaultHorizon / 4)))
		switch f.Kind {
		case chaos.NodeCrash:
			crashed = true
			f.Node = rng.Intn(nodes)
			f.Until = 0 // permanent, by definition
		case chaos.NodePause:
			f.Node = rng.Intn(nodes)
			f.Until = f.From + quantum*sim.Time(2+rng.Intn(6))
		case chaos.NodeSlow:
			f.Node = rng.Intn(nodes)
			f.Factor = 0.25 + 0.5*rng.Float64()
			f.Until = f.From + quantum*sim.Time(2+rng.Intn(6))
		case chaos.CtrlDelay:
			f.Prob = 0.1 + 0.4*rng.Float64()
			f.Delay = sim.Time(50_000 * (1 + rng.Intn(6)))
			f.Until = f.From + quantum*sim.Time(2+rng.Intn(6))
		default: // HaltLoss, ReadyLoss, CtrlLoss — harsh but bounded
			f.Prob = 0.5 + 0.5*rng.Float64()
			f.Until = f.From + quantum*sim.Time(2+rng.Intn(6))
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan
}

// Execute runs one scenario to the horizon and collects the verdict. A
// panic inside the protocol stack is recovered and reported as a crash
// finding — for a fuzzer, a stack that dies on a fault is as interesting as
// one that wedges.
func Execute(s Scenario, horizon sim.Time) (res RunResult) {
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	res.Scenario = s
	res.TotalJobs = len(s.Jobs)
	res.Minimal = s.Plan

	var c *parpar.Cluster
	var jobs []*parpar.Job
	defer func() {
		if r := recover(); r != nil {
			res.Crash = fmt.Sprint(r)
		}
		if c != nil {
			res.Violations = c.Auditor().Violations()
			res.Trace = c.ChaosTrace()
			for _, j := range jobs {
				if j.State() == parpar.JobDone {
					res.DoneJobs++
				}
			}
		}
	}()

	cfg := fuzzClusterConfig(s)
	cl, err := parpar.New(cfg)
	if err != nil {
		res.Crash = err.Error()
		return res
	}
	c = cl
	for _, spec := range s.Jobs {
		job, err := c.Submit(spec)
		if err != nil {
			res.Crash = err.Error()
			return res
		}
		jobs = append(jobs, job)
	}
	for _, cmd := range s.Churn {
		cmd := cmd
		c.Eng.ScheduleAt(cmd.At, func() {
			job := jobs[cmd.Job]
			if cmd.ResizeTo > 0 {
				spec := workload.Compute(fmt.Sprintf("%s-r%d", job.Spec.Name, cmd.ResizeTo),
					cmd.ResizeTo, sim.Time(300_000))
				// A resize (or a late kill) may legitimately fail: the job
				// already finished, or evictions shrank the machine below
				// the new width. Both are scheduler-level outcomes, not
				// protocol findings — the auditor judges the run.
				if nj, err := c.Resize(job, spec); err == nil {
					jobs[cmd.Job] = nj
				}
			} else {
				_ = c.Kill(job)
			}
		})
	}
	c.RunUntil(horizon)
	return res
}

// fuzzClusterConfig maps a scenario onto a fast-quantum cluster config.
func fuzzClusterConfig(s Scenario) parpar.Config {
	cfg := parpar.DefaultConfig(s.Nodes)
	cfg.Slots = s.Slots
	cfg.Policy = s.Policy
	cfg.Quantum = quantum
	cfg.CtrlJitter = 50_000
	cfg.ForkDelay = 50_000
	cfg.Seed = s.Seed
	plan := s.Plan
	cfg.Chaos = &plan
	if s.Recovery {
		r := parpar.DefaultRecovery(quantum)
		cfg.Recovery = &r
	}
	return cfg
}

// FuzzOne samples and executes the scenario for one seed.
func FuzzOne(seed uint64, horizon sim.Time) RunResult {
	return Execute(Sample(seed), horizon)
}

// Report is a campaign's outcome.
type Report struct {
	Runs     []RunResult
	Failures int
	Crashes  int
}

// Fuzz executes cfg.Runs scenarios with seeds cfg.Seed, cfg.Seed+1, ....
// logf, when non-nil, receives one progress line per run.
func Fuzz(cfg Config, logf func(format string, args ...any)) Report {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	var rep Report
	for i := 0; i < cfg.Runs; i++ {
		res := FuzzOne(cfg.Seed+uint64(i), cfg.Horizon)
		if res.Failed() {
			rep.Failures++
			if res.Crash != "" {
				rep.Crashes++
			}
			if cfg.Shrink {
				res.Minimal = Shrink(res.Scenario, cfg.Horizon)
			}
		}
		rep.Runs = append(rep.Runs, res)
		if logf != nil {
			logf("%s", res)
		}
	}
	return rep
}

// RecoveryResult pairs the two runs of one differential recovery scenario:
// the same sampled cluster, jobs and fault plan executed without and then
// with the self-healing switch layer.
type RecoveryResult struct {
	Base RunResult // recovery off: expected to wedge under harsh plans
	Rec  RunResult // recovery on: must always come back clean
}

// Wedged reports whether the bare protocol failed on this plan.
func (r RecoveryResult) Wedged() bool { return r.Base.Failed() }

// Unrecovered reports the campaign's real finding: the recovery layer
// itself produced a violation or crash.
func (r RecoveryResult) Unrecovered() bool { return r.Rec.Failed() }

// String formats the differential verdict for campaign logs.
func (r RecoveryResult) String() string {
	verdict := "clean either way"
	switch {
	case r.Unrecovered() && r.Wedged():
		verdict = "UNRECOVERED"
	case r.Unrecovered():
		verdict = "UNRECOVERED (recovery-only failure)"
	case r.Wedged():
		verdict = "wedged bare, recovered"
	}
	s := fmt.Sprintf("%s\n  %s (%d/%d jobs bare, %d/%d with recovery)",
		r.Base.Scenario, verdict, r.Base.DoneJobs, r.Base.TotalJobs, r.Rec.DoneJobs, r.Rec.TotalJobs)
	if r.Unrecovered() {
		if r.Rec.Crash != "" {
			s += "\n  CRASH: " + r.Rec.Crash
		}
		for _, v := range r.Rec.Violations {
			s += "\n    " + v.String()
		}
	}
	return s
}

// RecoveryReport is a differential recovery campaign's outcome.
type RecoveryReport struct {
	Runs []RecoveryResult
	// Wedged counts scenarios the bare protocol failed — the campaign's
	// workload coverage (a campaign that never wedges proves nothing).
	Wedged int
	// Recovered counts wedged scenarios the recovery layer absorbed.
	Recovered int
	// Unrecovered counts scenarios that failed *with* recovery enabled —
	// the regression signal: it must be zero.
	Unrecovered int
}

// FuzzRecovery executes cfg.Runs differential scenarios: each seed is
// sampled with SampleRecovery and run twice, recovery off then on. Every
// recovery-enabled run must finish with a clean auditor — the plans are
// restricted to the fault classes the layer guarantees against.
func FuzzRecovery(cfg Config, logf func(format string, args ...any)) RecoveryReport {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	var rep RecoveryReport
	for i := 0; i < cfg.Runs; i++ {
		s := SampleRecovery(cfg.Seed + uint64(i))
		var res RecoveryResult
		res.Base = Execute(s, cfg.Horizon)
		rs := s
		rs.Recovery = true
		res.Rec = Execute(rs, cfg.Horizon)
		if res.Wedged() {
			rep.Wedged++
			if !res.Unrecovered() {
				rep.Recovered++
			}
		}
		if res.Unrecovered() {
			rep.Unrecovered++
		}
		rep.Runs = append(rep.Runs, res)
		if logf != nil {
			logf("%s", res)
		}
	}
	return rep
}

// Shrink minimizes a failing scenario's fault plan: it greedily drops
// faults whose removal keeps the scenario failing, then narrows the
// surviving faults' windows. The result is the smallest plan (under this
// greedy strategy) that still produces a violation or crash — the fault
// actually responsible for the finding.
func Shrink(s Scenario, horizon sim.Time) chaos.Plan {
	fails := func(p chaos.Plan) bool {
		t := s
		t.Plan = p
		return Execute(t, horizon).Failed()
	}
	plan := s.Plan
	if !fails(plan) {
		return plan // not reproducible; nothing to shrink
	}
	// Pass 1: drop faults one at a time until no single removal keeps the
	// failure alive.
	for changed := true; changed && len(plan.Faults) > 1; {
		changed = false
		for i := range plan.Faults {
			cand := chaos.Plan{Seed: plan.Seed}
			cand.Faults = append(cand.Faults, plan.Faults[:i]...)
			cand.Faults = append(cand.Faults, plan.Faults[i+1:]...)
			if fails(cand) {
				plan = cand
				changed = true
				break
			}
		}
	}
	// Pass 2: narrow each surviving fault's active window by bisection —
	// first close open-ended windows, then halve from both ends.
	for i := range plan.Faults {
		if plan.Faults[i].Kind == chaos.NodePause || plan.Faults[i].Kind == chaos.NodeSlow {
			continue // windows are the fault's semantics; leave them
		}
		if plan.Faults[i].Until == 0 {
			cand := clonePlan(plan)
			cand.Faults[i].Until = horizonOr(horizon)
			if fails(cand) {
				plan = cand
			}
		}
		for step := 0; step < 4 && plan.Faults[i].Until != 0; step++ {
			f := plan.Faults[i]
			mid := f.From + (f.Until-f.From)/2
			if mid <= f.From {
				break
			}
			late := clonePlan(plan)
			late.Faults[i].From = mid
			if fails(late) {
				plan = late
				continue
			}
			early := clonePlan(plan)
			early.Faults[i].Until = mid
			if fails(early) {
				plan = early
				continue
			}
			break
		}
	}
	return plan
}

func clonePlan(p chaos.Plan) chaos.Plan {
	out := chaos.Plan{Seed: p.Seed, Faults: make([]chaos.Fault, len(p.Faults))}
	copy(out.Faults, p.Faults)
	return out
}

func horizonOr(h sim.Time) sim.Time {
	if h <= 0 {
		return DefaultHorizon
	}
	return h
}

// StallComparison contrasts the two stacks' responses to the same loss
// plan: FM (no retransmission — paper §2.2) versus the go-back-N transport
// of the alternative schemes.
type StallComparison struct {
	// FMViolations are the auditor findings from the Partitioned FM run.
	FMViolations []chaos.Violation
	// FMStalled is true when a credit-conservation stall was detected.
	FMStalled bool
	// FMDestroyed is the ledger's destroyed-credit count for the FM job.
	FMDestroyed int
	// AltDelivered / AltRetransmissions / AltDropped summarize the
	// go-back-N run: everything delivered despite drops, via retransmit.
	AltDelivered       uint64
	AltRetransmissions uint64
	AltDropped         uint64
	// AltRecovered is true when the alternative delivered every message.
	AltRecovered bool
}

// CompareLoss runs the paper's §2.2 experiment as a differential check: the
// same seeded loss plan against Partitioned FM (expected: permanent credit
// stall, flagged by the auditor) and against the go-back-N alternative
// (expected: full delivery through retransmission, no findings). It is the
// fuzzer's known-answer test — if this stops distinguishing the stacks, the
// harness itself is broken.
func CompareLoss(seed uint64, prob float64) StallComparison {
	var cmp StallComparison

	// FM side: a long one-way stream under loss.
	fmCfg := parpar.DefaultConfig(2)
	fmCfg.Policy = fm.Partitioned
	fmCfg.Quantum = quantum
	fmCfg.CtrlJitter = 50_000
	fmCfg.ForkDelay = 50_000
	plan := chaos.Loss(seed, prob)
	fmCfg.Chaos = &plan
	c, err := parpar.New(fmCfg)
	if err != nil {
		panic(err)
	}
	if _, err := c.Submit(workload.Bandwidth("stream", 200, 512)); err != nil {
		panic(err)
	}
	c.RunUntil(DefaultHorizon)
	cmp.FMViolations = c.Auditor().Violations()
	for _, v := range cmp.FMViolations {
		if v.Invariant == "credit-conservation" {
			cmp.FMStalled = true
		}
	}
	cmp.FMDestroyed = c.Ledger().Destroyed(1)

	// Alternative side: the same plan kind on the go-back-N transport.
	altCfg := altsched.DefaultClusterConfig(1)
	altCfg.Seed = seed
	altCfg.Quantum = 100_000_000 // no rotation: isolate transport recovery
	altPlan := chaos.Loss(seed, prob)
	altCfg.Chaos = &altPlan
	ac, err := altsched.NewCluster(altCfg)
	if err != nil {
		panic(err)
	}
	ac.Start()
	const msgs = 300
	ac.Endpoints(1)[0].Channel(1).Send(msgs)
	ac.RunFor(400_000_000)
	st := ac.Endpoints(1)[1].Channel(0).Stats()
	cmp.AltDelivered = st.Delivered
	cmp.AltRetransmissions = ac.Endpoints(1)[0].Channel(1).Stats().Retransmissions
	cmp.AltDropped = ac.Net.Stats().Dropped[myrinet.Data]
	cmp.AltRecovered = st.Delivered == msgs
	return cmp
}

// String formats the comparison as the two-line verdict gangsim prints.
func (c StallComparison) String() string {
	fmLine := fmt.Sprintf("FM (no retransmission): %d credits destroyed, stalled=%v, %d violation(s)",
		c.FMDestroyed, c.FMStalled, len(c.FMViolations))
	altLine := fmt.Sprintf("go-back-N alternative:  %d delivered via %d retransmissions over %d drops, recovered=%v",
		c.AltDelivered, c.AltRetransmissions, c.AltDropped, c.AltRecovered)
	return fmLine + "\n" + altLine
}
