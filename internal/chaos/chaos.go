// Package chaos is the deterministic fault-injection and invariant-audit
// layer of the reproduction. The paper's central claims (§2.2, §3.2) are
// fragility claims: FM's credit accounting has no retransmission, so a
// single lost packet corrupts flow control forever; the three-stage flush
// protocol assumes every halt of an epoch arrives. This package turns
// those claims into mechanically checked properties:
//
//   - A Plan declares seeded, schedulable fault events — data-packet loss
//     and duplication on the Myrinet fabric, control-message delay/loss on
//     the ParPar control Ethernet, per-node pause/slowdown windows, and
//     mid-switch faults targeting each flush stage (halt loss, ready
//     loss, backing-store corruption).
//   - An Injector compiles the plan into deterministic per-event
//     decisions, recording a replayable trace. The same seed and plan
//     always produce byte-identical traces.
//   - An Auditor collects invariant-violation reports from hook points in
//     fm, lanai, core, gang and parpar, optionally failing fast, and
//     always carrying the seed needed to replay the run.
//
// The package depends only on internal/sim and internal/myrinet so every
// higher layer (parpar, altsched, the fuzzer) can import it freely.
package chaos

import (
	"fmt"
	"strings"

	"gangfm/internal/sim"
)

// FaultKind enumerates the injectable fault classes.
type FaultKind int

const (
	// DataLoss drops Data packets on the Myrinet fabric with Prob. The
	// paper's §2.2 failure: the packet's credit and its piggybacked
	// refill vanish together.
	DataLoss FaultKind = iota
	// DataDup delivers an extra copy of a Data packet with Prob — the
	// mirror-image fault: credits are *created* out of thin air and the
	// receiver sees fragments it cannot account for.
	DataDup
	// RefillLoss drops explicit Refill packets with Prob: the sender's
	// window never recovers even though all data arrived.
	RefillLoss
	// HaltLoss drops Halt packets with Prob — a stage-1 flush fault. A
	// single lost halt wedges the whole switch round: the protocol has
	// no retransmission for control messages either.
	HaltLoss
	// ReadyLoss drops Ready packets with Prob — a stage-3 release fault.
	ReadyLoss
	// StoreCorrupt flips state in a descheduled job's backing store
	// during the stage-2 buffer copy with Prob per save, on node Node
	// (or every node when Node < 0). The core manager's round-trip
	// digest is expected to catch it at restore time.
	StoreCorrupt
	// CtrlLoss drops masterd/noded control-Ethernet messages with Prob.
	CtrlLoss
	// CtrlDelay adds Delay cycles to control-Ethernet messages with
	// Prob, modelling daemon scheduling hiccups beyond the normal jitter.
	CtrlDelay
	// NodePause blocks node Node's host CPU for the whole [From, Until)
	// window — a process stopped in the debugger, a kernel stall.
	NodePause
	// NodeSlow steals Factor (0..1) of node Node's host CPU over the
	// [From, Until) window, in slices — background daemon interference.
	NodeSlow
	// NodeCrash permanently halts node Node's host CPU from time From: a
	// fail-stop node failure. Unlike NodePause there is no Until — the
	// node never comes back. Without the recovery layer a crash that hits
	// mid-protocol wedges the machine; with recovery enabled the masterd
	// watchdog detects the silent node, evicts it, and kills the jobs
	// spanning it so survivors keep rotating.
	NodeCrash
	// NodeRepair ends an earlier NodeCrash of the same node at time From:
	// the operator swaps the board and the node boots a fresh incarnation
	// (empty memory, new NIC state — nothing of the old incarnation
	// survives). The injector unblocks the host CPU; everything above —
	// re-registration with the masterd, the rotation rejoin, scheduler
	// cache regrowth — is the recovery layer's job. Each repair must be
	// preceded by a crash of its node, and crash/repair events for one
	// node must alternate.
	NodeRepair
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case DataLoss:
		return "data-loss"
	case DataDup:
		return "data-dup"
	case RefillLoss:
		return "refill-loss"
	case HaltLoss:
		return "halt-loss"
	case ReadyLoss:
		return "ready-loss"
	case StoreCorrupt:
		return "store-corrupt"
	case CtrlLoss:
		return "ctrl-loss"
	case CtrlDelay:
		return "ctrl-delay"
	case NodePause:
		return "node-pause"
	case NodeSlow:
		return "node-slow"
	case NodeCrash:
		return "node-crash"
	case NodeRepair:
		return "node-repair"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one schedulable fault event.
type Fault struct {
	Kind FaultKind
	// From and Until bound the fault's active window in virtual time.
	// Until == 0 means "open-ended" for probabilistic kinds; the node
	// kinds (NodePause, NodeSlow) require an explicit Until.
	From, Until sim.Time
	// Prob is the per-event probability for the probabilistic kinds.
	Prob float64
	// Node restricts the fault to one node (packet faults match the
	// source node; ctrl and store faults the destination node). A
	// negative Node matches every node.
	Node int
	// Delay is the extra latency CtrlDelay adds per affected message.
	Delay sim.Time
	// Factor is the CPU fraction NodeSlow steals (0..1).
	Factor float64
}

// active reports whether the fault's window covers time t.
func (f *Fault) active(t sim.Time) bool {
	return t >= f.From && (f.Until == 0 || t < f.Until)
}

// matchesNode reports whether the fault applies to the given node.
func (f *Fault) matchesNode(node int) bool {
	return f.Node < 0 || f.Node == node
}

// String formats a fault for plan listings and traces.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%d,", f.Kind, f.From)
	if f.Until == 0 {
		b.WriteString("∞)")
	} else {
		fmt.Fprintf(&b, "%d)", f.Until)
	}
	switch f.Kind {
	case NodePause, NodeCrash, NodeRepair:
		fmt.Fprintf(&b, " node=%d", f.Node)
	case NodeSlow:
		fmt.Fprintf(&b, " node=%d factor=%.2f", f.Node, f.Factor)
	case CtrlDelay:
		fmt.Fprintf(&b, " p=%.3f delay=%d node=%d", f.Prob, f.Delay, f.Node)
	default:
		fmt.Fprintf(&b, " p=%.3f node=%d", f.Prob, f.Node)
	}
	return b.String()
}

// Plan is a complete, seeded fault schedule for one run. The zero Plan
// injects nothing. Plans are values: copy them freely.
type Plan struct {
	// Seed drives every probabilistic decision the injector makes. The
	// same Seed and Faults produce byte-identical injection traces.
	Seed uint64
	// Faults are consulted in order; their relative order is part of the
	// deterministic contract (each active fault consumes one RNG draw
	// per candidate event).
	Faults []Fault
}

// Loss is a convenience constructor for the classic experiment: open-ended
// uniform data-packet loss on every link, the exact scenario of paper
// §2.2 and examples/lossy.
func Loss(seed uint64, prob float64) Plan {
	return Plan{Seed: seed, Faults: []Fault{{Kind: DataLoss, Prob: prob, Node: -1}}}
}

// Validate checks the plan for structural errors.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if f.Until != 0 && f.Until <= f.From {
			return fmt.Errorf("chaos: fault %d (%s): empty window [%d,%d)", i, f.Kind, f.From, f.Until)
		}
		switch f.Kind {
		case NodePause, NodeSlow:
			if f.Until == 0 {
				return fmt.Errorf("chaos: fault %d (%s): node faults need an explicit Until", i, f.Kind)
			}
			if f.Node < 0 && f.Kind == NodePause {
				return fmt.Errorf("chaos: fault %d (%s): pause needs a specific node", i, f.Kind)
			}
			if f.Kind == NodeSlow && (f.Factor <= 0 || f.Factor >= 1) {
				return fmt.Errorf("chaos: fault %d (%s): factor %v outside (0,1)", i, f.Kind, f.Factor)
			}
		case NodeCrash:
			if f.Node < 0 {
				return fmt.Errorf("chaos: fault %d (%s): crash needs a specific node", i, f.Kind)
			}
			if f.Until != 0 {
				return fmt.Errorf("chaos: fault %d (%s): crashes are permanent; Until must be unset", i, f.Kind)
			}
		case NodeRepair:
			if f.Node < 0 {
				return fmt.Errorf("chaos: fault %d (%s): repair needs a specific node", i, f.Kind)
			}
			if f.Until != 0 {
				return fmt.Errorf("chaos: fault %d (%s): repairs are instantaneous; Until must be unset", i, f.Kind)
			}
			// A repair only makes sense on a node that is down at From:
			// strictly more crashes than repairs must precede it.
			crashes, repairs := 0, 0
			for _, g := range p.Faults {
				if g.Node != f.Node || g.From >= f.From {
					continue
				}
				switch g.Kind {
				case NodeCrash:
					crashes++
				case NodeRepair:
					repairs++
				}
			}
			if crashes <= repairs {
				return fmt.Errorf("chaos: fault %d (%s): node %d is not down at %d (repairs must follow a crash of the same node)",
					i, f.Kind, f.Node, f.From)
			}
		case DataLoss, DataDup, RefillLoss, HaltLoss, ReadyLoss, StoreCorrupt, CtrlLoss, CtrlDelay:
			if f.Prob < 0 || f.Prob > 1 {
				return fmt.Errorf("chaos: fault %d (%s): probability %v outside [0,1]", i, f.Kind, f.Prob)
			}
			if f.Kind == CtrlDelay && f.Delay <= 0 {
				return fmt.Errorf("chaos: fault %d (%s): non-positive delay", i, f.Kind)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %d", i, int(f.Kind))
		}
	}
	return nil
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Faults) == 0 }

// String lists the plan's faults, one per line.
func (p Plan) String() string {
	if p.Empty() {
		return fmt.Sprintf("plan(seed=%d, no faults)", p.Seed)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "plan(seed=%d)", p.Seed)
	for _, f := range p.Faults {
		b.WriteString("\n  " + f.String())
	}
	return b.String()
}
