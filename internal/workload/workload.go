// Package workload provides the benchmark applications of the paper's
// evaluation: the FM point-to-point bandwidth benchmark (§4.1) and the
// all-to-all stress benchmark used to measure context-switch overheads
// (§4.2), plus a ping-pong latency probe used by the examples.
package workload

import (
	"fmt"

	"gangfm/internal/parpar"
	"gangfm/internal/sim"
)

// pump drives an endpoint's send loop against back-pressure. next reports
// the destination and size of the next message, or dst < 0 when nothing is
// (currently) ready to send; onSent records a successful hand-off to FM.
// The loop is installed as the OnCanSend callback so it resumes whenever
// credits return, and the returned kick primes it (callers also re-kick
// after making new messages ready).
func pump(p *parpar.Proc, next func() (dst, size int), onSent func()) func() {
	var kick func()
	kick = func() {
		for {
			dst, size := next()
			if dst < 0 {
				return
			}
			if !p.EP.Send(dst, size, nil) {
				return
			}
			onSent()
		}
	}
	p.EP.SetOnCanSend(kick)
	return kick
}

// meter times a rank's measurement interval: Start is stamped when the
// program enters, and finish reports the result built from (start, end)
// through Done exactly once — the rank-0 timing pattern every benchmark
// shares.
type meter struct {
	p     *parpar.Proc
	start sim.Time
	fired bool
}

func startMeter(p *parpar.Proc) *meter { return &meter{p: p, start: p.Now()} }

func (m *meter) finish(result func(start, end sim.Time) any) {
	if m.fired {
		return
	}
	m.fired = true
	m.p.Done(result(m.start, m.p.Now()))
}

// BandwidthResult is reported by rank 0 of a bandwidth job.
type BandwidthResult struct {
	Messages int
	MsgSize  int
	// Bytes is the total payload volume.
	Bytes uint64
	// Start is when the sender began, End when the finish message
	// arrived back. The span includes descheduled periods — exactly the
	// paper's methodology, which multiplies per-application bandwidth by
	// the number of applications to obtain the aggregate.
	Start, End sim.Time
}

// Elapsed returns the wall (virtual) duration of the measurement.
func (r BandwidthResult) Elapsed() sim.Time { return r.End - r.Start }

// MBs returns the achieved bandwidth in MB/s on the given clock.
func (r BandwidthResult) MBs(clock sim.Clock) float64 {
	secs := clock.ToDuration(r.Elapsed()).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Bytes) / secs / 1e6
}

// Bandwidth returns the paper's point-to-point bandwidth benchmark as a
// job spec: rank 0 sends `msgs` messages of `size` bytes to rank 1; after
// receiving them all, rank 1 sends a finish message and exits; rank 0
// times the whole exchange (paper §4.1). Rank 0's Done value is a
// BandwidthResult.
func Bandwidth(name string, msgs, size int) parpar.JobSpec {
	if msgs <= 0 || size <= 0 {
		panic("workload: bandwidth benchmark needs positive message count and size")
	}
	return parpar.JobSpec{
		Name: name,
		Size: 2,
		NewProgram: func(rank int) parpar.Program {
			if rank == 0 {
				return parpar.ProgramFunc(func(p *parpar.Proc) {
					m := startMeter(p)
					res := BandwidthResult{Messages: msgs, MsgSize: size}
					p.EP.SetHandler(func(_, _ int, _ []byte) {
						m.finish(func(start, end sim.Time) any {
							res.Start, res.End = start, end
							return res
						})
					})
					sent := 0
					pump(p, func() (int, int) {
						if sent >= msgs {
							return -1, 0
						}
						return 1, size
					}, func() {
						sent++
						res.Bytes += uint64(size)
					})()
				})
			}
			return parpar.ProgramFunc(func(p *parpar.Proc) {
				got := 0
				p.EP.SetHandler(func(_, _ int, _ []byte) {
					got++
					if got == msgs {
						p.EP.Send(0, 16, nil)
						p.Done(got)
					}
				})
			})
		},
	}
}

// AllToAllResult is reported by every rank of an all-to-all job.
type AllToAllResult struct {
	Rank     int
	Sent     int
	Received int
	Start    sim.Time
	End      sim.Time
}

// AllToAll returns the paper's all-to-all stress benchmark as a job spec
// for `ranks` processes: every rank sends `perPeer` messages of `size`
// bytes to every other rank, cycling through destinations round-robin so
// the buffers are stressed uniformly. A rank finishes when it has sent
// everything and received the (ranks-1)*perPeer messages addressed to it.
func AllToAll(name string, ranks, perPeer, size int) parpar.JobSpec {
	if ranks < 2 {
		panic("workload: all-to-all needs at least two ranks")
	}
	if perPeer <= 0 || size <= 0 {
		panic("workload: all-to-all needs positive counts")
	}
	return parpar.JobSpec{
		Name: name,
		Size: ranks,
		NewProgram: func(rank int) parpar.Program {
			return parpar.ProgramFunc(func(p *parpar.Proc) {
				m := startMeter(p)
				res := AllToAllResult{Rank: rank}
				total := perPeer * (ranks - 1)
				maybeDone := func() {
					if res.Sent == total && res.Received == total {
						m.finish(func(start, end sim.Time) any {
							res.Start, res.End = start, end
							return res
						})
					}
				}
				p.EP.SetHandler(func(_, _ int, _ []byte) {
					res.Received++
					maybeDone()
				})
				// Destinations rotate starting after our own rank so
				// the cluster's traffic pattern is balanced.
				pump(p, func() (int, int) {
					if res.Sent >= total {
						return -1, 0
					}
					return (rank + 1 + res.Sent%(ranks-1)) % ranks, size
				}, func() {
					res.Sent++
					maybeDone()
				})()
			})
		},
	}
}

// PingPongResult is reported by rank 0 of a ping-pong job.
type PingPongResult struct {
	Rounds int
	Size   int
	Start  sim.Time
	End    sim.Time
}

// RoundTrip returns the mean round-trip time in cycles.
func (r PingPongResult) RoundTrip() sim.Time {
	if r.Rounds == 0 {
		return 0
	}
	return (r.End - r.Start) / sim.Time(r.Rounds)
}

// PingPong returns a two-rank latency benchmark: `rounds` request/reply
// exchanges of `size`-byte messages. Rank 0's Done value is a
// PingPongResult.
func PingPong(name string, rounds, size int) parpar.JobSpec {
	if rounds <= 0 || size <= 0 {
		panic("workload: ping-pong needs positive rounds and size")
	}
	return parpar.JobSpec{
		Name: name,
		Size: 2,
		NewProgram: func(rank int) parpar.Program {
			if rank == 0 {
				return parpar.ProgramFunc(func(p *parpar.Proc) {
					m := startMeter(p)
					count := 0
					p.EP.SetHandler(func(_, _ int, _ []byte) {
						count++
						if count == rounds {
							m.finish(func(start, end sim.Time) any {
								return PingPongResult{Rounds: rounds, Size: size, Start: start, End: end}
							})
							return
						}
						p.EP.Send(1, size, nil)
					})
					p.EP.Send(1, size, nil)
				})
			}
			return parpar.ProgramFunc(func(p *parpar.Proc) {
				count := 0
				p.EP.SetHandler(func(_, _ int, _ []byte) {
					count++
					p.EP.Send(0, size, nil)
					if count == rounds {
						p.Done(count)
					}
				})
			})
		},
	}
}

// Idle returns a job whose processes finish immediately — a placeholder
// occupant for gang matrix slots in scheduling experiments.
func Idle(name string, ranks int) parpar.JobSpec {
	return parpar.JobSpec{
		Name: name,
		Size: ranks,
		NewProgram: func(rank int) parpar.Program {
			return parpar.ProgramFunc(func(p *parpar.Proc) { p.Done(nil) })
		},
	}
}

// Compute returns a job whose processes compute (hold the CPU in bursts)
// for the given number of cycles without communicating, then finish. It
// models the local sequential load used in coscheduling comparisons.
func Compute(name string, ranks int, cycles sim.Time) parpar.JobSpec {
	return parpar.JobSpec{
		Name: name,
		Size: ranks,
		NewProgram: func(rank int) parpar.Program {
			return parpar.ProgramFunc(func(p *parpar.Proc) {
				p.Schedule(cycles, func() { p.Done(cycles) })
			})
		},
	}
}

// ExtractBandwidth pulls rank 0's BandwidthResult out of a finished job.
func ExtractBandwidth(job *parpar.Job) (BandwidthResult, error) {
	if job.State() != parpar.JobDone {
		return BandwidthResult{}, fmt.Errorf("workload: job %q not done (state %v)", job.Spec.Name, job.State())
	}
	res, ok := job.Results[0].(BandwidthResult)
	if !ok {
		return BandwidthResult{}, fmt.Errorf("workload: job %q rank 0 result is %T", job.Spec.Name, job.Results[0])
	}
	return res, nil
}

// ExtractAllToAll pulls every rank's AllToAllResult out of a finished job.
func ExtractAllToAll(job *parpar.Job) ([]AllToAllResult, error) {
	if job.State() != parpar.JobDone {
		return nil, fmt.Errorf("workload: job %q not done (state %v)", job.Spec.Name, job.State())
	}
	out := make([]AllToAllResult, 0, len(job.Results))
	for i, r := range job.Results {
		res, ok := r.(AllToAllResult)
		if !ok {
			return nil, fmt.Errorf("workload: job %q rank %d result is %T", job.Spec.Name, i, r)
		}
		out = append(out, res)
	}
	return out, nil
}
