package workload

import (
	"testing"

	"gangfm/internal/parpar"
	"gangfm/internal/sim"
)

func TestBSPKernel(t *testing.T) {
	c := testCluster(t, 4)
	job, err := c.Submit(BSP("bsp", 4, 3, 2, 1024, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if job.State() != parpar.JobDone {
		t.Fatalf("state %v", job.State())
	}
	// 3 phases x 2 messages x 3 peers in each direction.
	for rank, r := range job.Results {
		res, ok := r.(BSPResult)
		if !ok {
			t.Fatalf("rank %d result %T", rank, r)
		}
		if res.Sent != 18 || res.Received != 18 {
			t.Fatalf("rank %d: sent %d received %d, want 18/18", rank, res.Sent, res.Received)
		}
		if res.Compute != 3*100_000 {
			t.Fatalf("rank %d: compute %d", rank, res.Compute)
		}
		if res.End <= res.Start {
			t.Fatalf("rank %d: empty interval", rank)
		}
	}
	if total := TotalCompute(job); total != 4*3*100_000 {
		t.Fatalf("TotalCompute = %d", total)
	}
}

func TestBSPSingleRankIsComputeOnly(t *testing.T) {
	c := testCluster(t, 2)
	job, err := c.Submit(BSP("solo", 1, 5, 1, 64, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	res := job.Results[0].(BSPResult)
	if res.Sent != 0 || res.Received != 0 {
		t.Fatalf("solo rank communicated: %d/%d", res.Sent, res.Received)
	}
	if res.Compute != 5*50_000 {
		t.Fatalf("compute %d", res.Compute)
	}
}

func TestStencilKernel(t *testing.T) {
	c := testCluster(t, 4)
	job, err := c.Submit(Stencil("st", 4, 6, 512, 80_000))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	for rank, r := range job.Results {
		res, ok := r.(StencilResult)
		if !ok {
			t.Fatalf("rank %d result %T", rank, r)
		}
		// One halo per neighbor per iteration on the ring.
		if res.Sent != 12 || res.Received != 12 {
			t.Fatalf("rank %d: sent %d received %d, want 12/12", rank, res.Sent, res.Received)
		}
		if res.Compute != 6*80_000 {
			t.Fatalf("rank %d: compute %d", rank, res.Compute)
		}
	}
}

func TestStencilTwoRanks(t *testing.T) {
	// With two ranks both ring neighbors are the same rank: two halos per
	// iteration each way, and the run must still terminate cleanly.
	c := testCluster(t, 2)
	job, err := c.Submit(Stencil("st2", 2, 4, 256, 0))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	for rank, r := range job.Results {
		res := r.(StencilResult)
		if res.Sent != 8 || res.Received != 8 {
			t.Fatalf("rank %d: sent %d received %d, want 8/8", rank, res.Sent, res.Received)
		}
	}
}

func TestMasterWorkerKernel(t *testing.T) {
	c := testCluster(t, 4)
	job, err := c.Submit(MasterWorker("mw", 4, 10, 2048, 120_000))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if job.State() != parpar.JobDone {
		t.Fatalf("state %v", job.State())
	}
	master := job.Results[0].(MasterWorkerResult)
	if master.Tasks != 10 || master.Received != 10 {
		t.Fatalf("master: tasks %d received %d", master.Tasks, master.Received)
	}
	// 10 tasks + 3 finish markers.
	if master.Sent != 13 {
		t.Fatalf("master sent %d, want 13", master.Sent)
	}
	workerTasks := 0
	var workerCompute sim.Time
	for rank := 1; rank < 4; rank++ {
		res := job.Results[rank].(MasterWorkerResult)
		workerTasks += res.Tasks
		workerCompute += res.Compute
		// Each worker got its tasks plus one finish marker, and sent one
		// completion per task.
		if res.Received != res.Tasks+1 || res.Sent != res.Tasks {
			t.Fatalf("worker %d: tasks %d sent %d received %d", rank, res.Tasks, res.Sent, res.Received)
		}
	}
	if workerTasks != 10 {
		t.Fatalf("workers completed %d tasks, want 10", workerTasks)
	}
	if workerCompute != 10*120_000 {
		t.Fatalf("worker compute %d", workerCompute)
	}
}

func TestMasterWorkerFewerTasksThanWorkers(t *testing.T) {
	// Some workers receive only a finish marker.
	c := testCluster(t, 4)
	job, err := c.Submit(MasterWorker("mw-small", 4, 2, 1024, 0))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if job.State() != parpar.JobDone {
		t.Fatalf("state %v", job.State())
	}
	total := 0
	for rank := 1; rank < 4; rank++ {
		total += job.Results[rank].(MasterWorkerResult).Tasks
	}
	if total != 2 {
		t.Fatalf("workers completed %d tasks, want 2", total)
	}
}

func TestPingPongReplierResult(t *testing.T) {
	// The replier's Done value is its reply count — both sides must agree
	// on the number of rounds.
	c := testCluster(t, 2)
	job, err := c.Submit(PingPong("pp", 50, 128))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	res, ok := job.Results[0].(PingPongResult)
	if !ok {
		t.Fatalf("rank 0 result %T", job.Results[0])
	}
	if res.Rounds != 50 || res.Size != 128 {
		t.Fatalf("rank 0 result %+v", res)
	}
	replies, ok := job.Results[1].(int)
	if !ok {
		t.Fatalf("rank 1 result %T", job.Results[1])
	}
	if replies != 50 {
		t.Fatalf("replier counted %d rounds, want 50", replies)
	}
	if res.End < job.SyncTime || res.Start < job.SyncTime {
		t.Fatal("measurement interval precedes job sync")
	}
}

func TestKernelValidationPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { BSP("x", 0, 1, 1, 1, 0) },
		func() { BSP("x", 2, 1, 0, 64, 0) },
		func() { Stencil("x", 0, 1, 64, 0) },
		func() { Stencil("x", 2, 1, 0, 0) },
		func() { MasterWorker("x", 1, 1, 64, 0) },
		func() { MasterWorker("x", 4, 0, 64, 0) },
		func() { MasterWorker("x", 4, 1, 8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
