package workload

import (
	"testing"

	"gangfm/internal/core"
	"gangfm/internal/fm"
	"gangfm/internal/parpar"
	"gangfm/internal/sim"
)

func testCluster(t *testing.T, nodes int) *parpar.Cluster {
	t.Helper()
	cfg := parpar.DefaultConfig(nodes)
	cfg.Quantum = 2_000_000 // 10 ms: fast tests
	cfg.CtrlJitter = 50_000
	cfg.ForkDelay = 50_000
	c, err := parpar.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBandwidthBenchmark(t *testing.T) {
	c := testCluster(t, 2)
	job, err := c.Submit(Bandwidth("bw", 500, 16384))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	res, err := ExtractBandwidth(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 500*16384 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	mbs := res.MBs(sim.DefaultClock)
	if mbs < 40 || mbs > 95 {
		t.Fatalf("bandwidth %.1f MB/s out of plausible range", mbs)
	}
	if res.Elapsed() == 0 {
		t.Fatal("zero elapsed time")
	}
}

func TestBandwidthExtractErrors(t *testing.T) {
	c := testCluster(t, 2)
	job, _ := c.Submit(Bandwidth("bw", 100000, 65536))
	// Don't run to completion.
	c.RunFor(1000)
	if _, err := ExtractBandwidth(job); err == nil {
		t.Fatal("extracting from unfinished job should fail")
	}
}

func TestAllToAllBenchmark(t *testing.T) {
	c := testCluster(t, 4)
	job, err := c.Submit(AllToAll("a2a", 4, 25, 1024))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	results, err := ExtractAllToAll(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results for %d ranks", len(results))
	}
	for _, r := range results {
		if r.Sent != 75 || r.Received != 75 {
			t.Fatalf("rank %d: sent %d received %d, want 75/75", r.Rank, r.Sent, r.Received)
		}
	}
}

func TestAllToAllStressesReceiveQueues(t *testing.T) {
	// With many senders per receiver and rotation under way, switches
	// should observe valid packets in the receive buffers (Figure 8's
	// phenomenon).
	c := testCluster(t, 4)
	c.Submit(AllToAll("a2a-1", 4, 300, 1536))
	c.Submit(AllToAll("a2a-2", 4, 300, 1536))
	c.Run()
	sawRecvBacklog := false
	for _, hist := range c.SwitchHistory() {
		for _, s := range hist {
			if s.ValidRecv > 0 {
				sawRecvBacklog = true
			}
		}
	}
	if !sawRecvBacklog {
		t.Fatal("no switch ever observed receive-buffer backlog under all-to-all")
	}
}

func TestPingPong(t *testing.T) {
	c := testCluster(t, 2)
	job, err := c.Submit(PingPong("pp", 100, 64))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	res, ok := job.Results[0].(PingPongResult)
	if !ok {
		t.Fatalf("result type %T", job.Results[0])
	}
	rtt := res.RoundTrip()
	// Round trip should be tens of microseconds: > 2 us, < 500 us.
	if rtt < 400 || rtt > 100_000 {
		t.Fatalf("round-trip %d cycles implausible", rtt)
	}
}

func TestIdleAndCompute(t *testing.T) {
	c := testCluster(t, 2)
	j1, _ := c.Submit(Idle("idle", 2))
	j2, _ := c.Submit(Compute("comp", 2, 500_000))
	c.Run()
	if j1.State() != parpar.JobDone || j2.State() != parpar.JobDone {
		t.Fatalf("states %v %v", j1.State(), j2.State())
	}
	if j2.DoneTime-j2.SyncTime < 500_000 {
		t.Fatal("compute job finished too fast")
	}
}

func TestSpecValidationPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Bandwidth("x", 0, 10) },
		func() { Bandwidth("x", 10, 0) },
		func() { AllToAll("x", 1, 10, 10) },
		func() { AllToAll("x", 4, 0, 10) },
		func() { PingPong("x", 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBandwidthUnderPartitionedCliff(t *testing.T) {
	// With 8 contexts partitioned on a 16-node machine, C0 = 0: the
	// benchmark cannot complete (paper Figure 5's headline).
	cfg := parpar.DefaultConfig(16)
	cfg.Policy = fm.Partitioned
	cfg.Slots = 8
	cfg.Quantum = 2_000_000
	cfg.CtrlJitter = 50_000
	cfg.ForkDelay = 50_000
	c, err := parpar.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(Bandwidth("dead", 10, 64))
	if err != nil {
		t.Fatal(err)
	}
	// Bounded run: the transfer is stuck, so the job can never finish.
	c.RunFor(50_000_000)
	if job.State() == parpar.JobDone {
		t.Fatal("job finished despite zero credits")
	}
	if _, err := ExtractBandwidth(job); err == nil {
		t.Fatal("extract should fail for the wedged job")
	}
}

func TestSwitchedPolicyUnaffectedBySlots(t *testing.T) {
	// The switched policy's bandwidth does not depend on the slot count
	// (Figure 6's flatness, single-job version).
	run := func(slots int) float64 {
		cfg := parpar.DefaultConfig(16)
		cfg.Slots = slots
		cfg.Mode = core.ValidOnly
		cfg.Quantum = 20_000_000
		cfg.CtrlJitter = 50_000
		cfg.ForkDelay = 50_000
		c, _ := parpar.New(cfg)
		job, _ := c.Submit(Bandwidth("bw", 300, 16384))
		c.Run()
		res, err := ExtractBandwidth(job)
		if err != nil {
			t.Fatal(err)
		}
		return res.MBs(sim.DefaultClock)
	}
	b1, b8 := run(1), run(8)
	ratio := b8 / b1
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("switched bandwidth varies with slots: %.1f vs %.1f MB/s", b1, b8)
	}
}
