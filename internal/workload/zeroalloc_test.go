package workload

import (
	"testing"

	"gangfm/internal/parpar"
	"gangfm/internal/sim"
)

// These tests pin the zero-allocation steady state of the three
// scheduler-evaluation kernels: once a job's pools and the engine arena
// have warmed up, advancing simulated time through exchange phases must
// not allocate at all. Any regression here (a closure creeping into a
// per-message path, a pooled record escaping) shows up as a nonzero
// per-window allocation count.

// steadyAllocs warms a single-job cluster past its launch phase, then
// measures heap allocations per fixed time window in mid-execution. The
// quantum is effectively infinite so no context switch lands inside the
// measured windows — what is measured is pure exchange-phase traffic.
func steadyAllocs(t *testing.T, spec parpar.JobSpec, warm, step sim.Time) float64 {
	t.Helper()
	cfg := parpar.DefaultConfig(4)
	cfg.Slots = 1
	cfg.Quantum = 1 << 40
	c, err := parpar.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(warm)
	if job.State() == parpar.JobDone {
		t.Fatal("workload finished during warmup; lengthen it")
	}
	allocs := testing.AllocsPerRun(10, func() { c.RunFor(step) })
	if job.State() == parpar.JobDone {
		t.Fatal("workload finished during measurement; lengthen it")
	}
	return allocs
}

func TestBSPSteadyStateZeroAlloc(t *testing.T) {
	spec := BSP("bsp-steady", 4, 100_000, 2, 1024, 100_000)
	if got := steadyAllocs(t, spec, 20_000_000, 5_000_000); got != 0 {
		t.Fatalf("BSP exchange phase allocates %.2f objects per window, want 0", got)
	}
}

func TestStencilSteadyStateZeroAlloc(t *testing.T) {
	spec := Stencil("st-steady", 4, 100_000, 512, 80_000)
	if got := steadyAllocs(t, spec, 20_000_000, 5_000_000); got != 0 {
		t.Fatalf("stencil exchange phase allocates %.2f objects per window, want 0", got)
	}
}

func TestMasterWorkerSteadyStateZeroAlloc(t *testing.T) {
	spec := MasterWorker("mw-steady", 4, 200_000, 2048, 20_000)
	if got := steadyAllocs(t, spec, 20_000_000, 5_000_000); got != 0 {
		t.Fatalf("task-bag steady state allocates %.2f objects per window, want 0", got)
	}
}
