package workload

import (
	"gangfm/internal/parpar"
	"gangfm/internal/sim"
)

// The kernels in this file are the parallel application models of the
// scheduler-evaluation runs (internal/schedeval): bulk-synchronous
// compute/communicate phases, stencil halo exchange on a ring, and a
// master-worker task bag. Each is parameterized by communication
// intensity (message counts and sizes versus compute cycles) and reports
// per-rank results that implement ComputeReporter, so the evaluator can
// separate compute from communication time.

// A ComputeReporter exposes how many cycles a rank spent in pure compute
// sections; the scheduler evaluator uses it to derive the communication
// fraction of a job's runtime.
type ComputeReporter interface {
	ComputeTime() sim.Time
}

// BSPResult is reported by every rank of a bulk-synchronous job.
type BSPResult struct {
	Rank     int
	Phases   int
	Sent     int
	Received int
	Compute  sim.Time
	Start    sim.Time
	End      sim.Time
}

// ComputeTime returns the cycles spent in compute sections.
func (r BSPResult) ComputeTime() sim.Time { return r.Compute }

// StencilResult is reported by every rank of a stencil job.
type StencilResult struct {
	Rank     int
	Iters    int
	Sent     int
	Received int
	Compute  sim.Time
	Start    sim.Time
	End      sim.Time
}

// ComputeTime returns the cycles spent in compute sections.
func (r StencilResult) ComputeTime() sim.Time { return r.Compute }

// MasterWorkerResult is reported by every rank of a master-worker job.
type MasterWorkerResult struct {
	Rank     int
	Tasks    int // tasks completed by this rank (all tasks, for the master)
	Sent     int
	Received int
	Compute  sim.Time
	Start    sim.Time
	End      sim.Time
}

// ComputeTime returns the cycles spent in compute sections.
func (r MasterWorkerResult) ComputeTime() sim.Time { return r.Compute }

// TotalCompute sums the compute cycles reported by a finished job's ranks;
// results that do not implement ComputeReporter contribute zero.
func TotalCompute(job *parpar.Job) sim.Time {
	var total sim.Time
	for _, r := range job.Results {
		if cr, ok := r.(ComputeReporter); ok {
			total += cr.ComputeTime()
		}
	}
	return total
}

// exchangeProgram is the shared skeleton of the phase-structured kernels:
// every phase computes for `compute` cycles, sends `perDest` messages of
// `size` bytes to each destination (round-robin across dests), and waits
// for the phase's symmetric inbound traffic before advancing. The barrier
// is per-source cumulative — rank r expects perDest messages per phase
// from each rank that lists r as a destination, and FM delivers in order
// per source — so a neighbor running ahead can never stall or confuse it.
// Every rank has received everything addressed to it when it finishes, so
// suspending the endpoint at Done cannot wedge a peer.
func exchangeProgram(rank, ranks, phases int, dests []int, perDest, size int,
	compute sim.Time, report func(sent, received int, computeT, start, end sim.Time) any) parpar.Program {
	return parpar.ProgramFunc(func(p *parpar.Proc) {
		m := startMeter(p)
		if phases <= 0 || (len(dests) == 0 && compute == 0) {
			m.finish(func(start, end sim.Time) any {
				return report(0, 0, 0, start, end)
			})
			return
		}
		// Inbound expectation per source and phase. The communication
		// graphs here (all-pairs, symmetric ring) are undirected, so the
		// traffic rank r expects from s mirrors what r sends to s.
		expFrom := make([]int, ranks)
		for _, d := range dests {
			expFrom[d] += perDest
		}
		perPhase := perDest * len(dests)
		var (
			phase     int
			sentPhase int
			sent      int
			received  int
			computeT  sim.Time
			computing bool
			recvFrom  = make([]int, ranks)
		)
		var startPhase func()
		var kick func()
		maybeAdvance := func() {
			for {
				if computing || sentPhase < perPhase {
					return
				}
				for src, exp := range expFrom {
					if exp > 0 && recvFrom[src] < (phase+1)*exp {
						return
					}
				}
				phase++
				sentPhase = 0
				if phase == phases {
					m.finish(func(start, end sim.Time) any {
						return report(sent, received, computeT, start, end)
					})
					return
				}
				startPhase()
				if computing || perPhase > 0 {
					return
				}
				// Compute-free, communication-free phases (possible only
				// with no dests) fall through and advance again.
			}
		}
		// One compute-done callback for the whole program: phases are
		// sequential, so the same function value serves every phase
		// (allocating it inside startPhase would cost one closure per
		// phase across the entire sweep).
		phaseDone := func() {
			computing = false
			computeT += compute
			kick()
			maybeAdvance()
		}
		startPhase = func() {
			if compute == 0 {
				kick()
				return
			}
			computing = true
			p.Schedule(compute, phaseDone)
		}
		p.EP.SetHandler(func(src, _ int, _ []byte) {
			received++
			recvFrom[src]++
			maybeAdvance()
		})
		kick = pump(p, func() (int, int) {
			if computing || phase >= phases || sentPhase >= perPhase {
				return -1, 0
			}
			return dests[sentPhase%len(dests)], size
		}, func() {
			sentPhase++
			sent++
			maybeAdvance()
		})
		startPhase()
	})
}

// BSP returns a bulk-synchronous job: `phases` rounds in which every rank
// computes for `compute` cycles and then exchanges `perPeer` messages of
// `size` bytes with every other rank before the (implicit, traffic-based)
// barrier releases the next round. With ranks == 1 it degenerates to a
// compute-only chain. Every rank's Done value is a BSPResult.
func BSP(name string, ranks, phases, perPeer, size int, compute sim.Time) parpar.JobSpec {
	if ranks < 1 || phases < 0 || perPeer <= 0 || size <= 0 || compute < 0 {
		panic("workload: BSP needs ranks >= 1 and positive traffic parameters")
	}
	return parpar.JobSpec{
		Name: name,
		Size: ranks,
		NewProgram: func(rank int) parpar.Program {
			var dests []int
			for i := 1; i < ranks; i++ {
				dests = append(dests, (rank+i)%ranks)
			}
			return exchangeProgram(rank, ranks, phases, dests, perPeer, size, compute,
				func(sent, received int, computeT, start, end sim.Time) any {
					return BSPResult{Rank: rank, Phases: phases, Sent: sent,
						Received: received, Compute: computeT, Start: start, End: end}
				})
		},
	}
}

// Stencil returns an iterative halo-exchange job on a ring: each of the
// `iters` iterations computes for `compute` cycles and then trades one
// `halo`-byte boundary message with each ring neighbor. With two ranks
// both neighbors are the same rank (two messages per iteration); with one
// rank it degenerates to a compute-only chain. Every rank's Done value is
// a StencilResult.
func Stencil(name string, ranks, iters, halo int, compute sim.Time) parpar.JobSpec {
	if ranks < 1 || iters < 0 || halo <= 0 || compute < 0 {
		panic("workload: stencil needs ranks >= 1 and a positive halo size")
	}
	return parpar.JobSpec{
		Name: name,
		Size: ranks,
		NewProgram: func(rank int) parpar.Program {
			var dests []int
			if ranks > 1 {
				dests = []int{(rank + 1) % ranks, (rank - 1 + ranks) % ranks}
			}
			return exchangeProgram(rank, ranks, iters, dests, 1, halo, compute,
				func(sent, received int, computeT, start, end sim.Time) any {
					return StencilResult{Rank: rank, Iters: iters, Sent: sent,
						Received: received, Compute: computeT, Start: start, End: end}
				})
		},
	}
}

// mwCtrlSize is the wire size of master-worker control messages (task
// completions and finish markers); task payloads must be larger so the
// two are distinguishable by size alone.
const mwCtrlSize = 8

// MasterWorker returns a task-bag job: rank 0 deals `tasks` tasks of
// `taskBytes` bytes to ranks 1..n-1, one outstanding task per worker; a
// worker computes for `compute` cycles per task and returns an 8-byte
// completion, upon which the master deals it the next task, or an 8-byte
// finish marker once the bag is empty. The pattern is self-throttling
// (at most one task in flight per worker) and asymmetric — the natural
// stress case for per-context credit partitioning on the master's node.
// Every rank's Done value is a MasterWorkerResult.
func MasterWorker(name string, ranks, tasks, taskBytes int, compute sim.Time) parpar.JobSpec {
	if ranks < 2 {
		panic("workload: master-worker needs at least one worker")
	}
	if tasks < 1 || taskBytes < 16 || compute < 0 {
		panic("workload: master-worker needs tasks >= 1 and taskBytes >= 16")
	}
	return parpar.JobSpec{
		Name: name,
		Size: ranks,
		NewProgram: func(rank int) parpar.Program {
			if rank == 0 {
				return parpar.ProgramFunc(func(p *parpar.Proc) {
					m := startMeter(p)
					type send struct{ dst, size int }
					var (
						// The master's send log has a known final length:
						// one task or finish marker per worker kick plus
						// one per completion. Sizing it up front keeps the
						// steady state append-free.
						q           = make([]send, 0, tasks+ranks-1)
						qi          int
						assigned    int
						completions int
						finishSent  int
						sent        int
					)
					var kick func()
					pushWork := func(w int) {
						if assigned < tasks {
							assigned++
							q = append(q, send{w, taskBytes})
						} else {
							q = append(q, send{w, mwCtrlSize})
						}
					}
					maybeDone := func() {
						if completions == tasks && finishSent == ranks-1 {
							m.finish(func(start, end sim.Time) any {
								return MasterWorkerResult{Rank: 0, Tasks: tasks,
									Sent: sent, Received: completions,
									Start: start, End: end}
							})
						}
					}
					p.EP.SetHandler(func(src, size int, _ []byte) {
						if size != mwCtrlSize {
							return
						}
						completions++
						pushWork(src)
						kick()
						maybeDone()
					})
					kick = pump(p, func() (int, int) {
						if qi >= len(q) {
							return -1, 0
						}
						return q[qi].dst, q[qi].size
					}, func() {
						if q[qi].size == mwCtrlSize {
							finishSent++
						}
						qi++
						sent++
						maybeDone()
					})
					for w := 1; w < ranks; w++ {
						pushWork(w)
					}
					kick()
				})
			}
			return parpar.ProgramFunc(func(p *parpar.Proc) {
				m := startMeter(p)
				var (
					done     int
					pending  int
					sent     int
					received int
					computeT sim.Time
				)
				var kick func()
				// One task-done callback for the worker's whole life: tasks
				// are processed one at a time, so the same function value
				// serves every task.
				finishTask := func() {
					computeT += compute
					done++
					pending++
					kick()
				}
				p.EP.SetHandler(func(_, size int, _ []byte) {
					received++
					if size == mwCtrlSize {
						m.finish(func(start, end sim.Time) any {
							return MasterWorkerResult{Rank: rank, Tasks: done,
								Sent: sent, Received: received, Compute: computeT,
								Start: start, End: end}
						})
						return
					}
					if compute == 0 {
						finishTask()
					} else {
						p.Schedule(compute, finishTask)
					}
				})
				kick = pump(p, func() (int, int) {
					if pending == 0 {
						return -1, 0
					}
					return 0, mwCtrlSize
				}, func() {
					pending--
					sent++
				})
			})
		},
	}
}
