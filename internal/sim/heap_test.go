package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestPendingExcludesCanceled is the regression test for the Pending
// accounting bug: canceled events used to stay counted until the queue
// drained past them, so idle-detection loops saw phantom work.
func TestPendingExcludesCanceled(t *testing.T) {
	e := NewEngine()
	evs := make([]Event, 5)
	for i := range evs {
		evs[i] = e.Schedule(Time(10+i), func() {})
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", e.Pending())
	}
	evs[1].Cancel()
	evs[3].Cancel()
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d after two cancels, want 3", e.Pending())
	}
	evs[3].Cancel() // double cancel must not double-count
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d after double cancel, want 3", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after run, want 0", e.Pending())
	}
}

// TestCancelThenReschedule exercises slot reuse: a canceled event's arena
// slot is recycled for a new event, and the stale handle must not be able
// to cancel (or observe) the new occupant.
func TestCancelThenReschedule(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(10, func() { t.Fatal("canceled event fired") })
	stale.Cancel()
	// Drain the queue so the canceled slot returns to the free list.
	e.Run()
	fired := false
	fresh := e.Schedule(5, func() { fired = true })
	if stale.Cancel() {
		t.Fatal("stale handle canceled a recycled slot")
	}
	e.Run()
	if !fired {
		t.Fatal("rescheduled event did not fire (stale cancel hit it?)")
	}
	if fresh.Cancel() {
		t.Fatal("Cancel on a fired event returned true")
	}
}

// TestCancelWithinCallback cancels a same-timestamp successor from inside
// a running callback: the engine must skip it without firing.
func TestCancelWithinCallback(t *testing.T) {
	e := NewEngine()
	var victim Event
	canceledFired := false
	e.Schedule(10, func() { victim.Cancel() })
	victim = e.Schedule(10, func() { canceledFired = true })
	survived := false
	e.Schedule(10, func() { survived = true })
	e.Run()
	if canceledFired {
		t.Fatal("event canceled mid-timestamp still fired")
	}
	if !survived {
		t.Fatal("later same-timestamp event lost")
	}
}

// TestRunUntilAllCanceledPrefix verifies RunUntil advances the clock to
// its deadline even when every queued event ahead of it was canceled —
// the canceled prefix must be discarded, not treated as pending work.
func TestRunUntilAllCanceledPrefix(t *testing.T) {
	e := NewEngine()
	var evs []Event
	for _, d := range []Time{10, 20, 30} {
		evs = append(evs, e.Schedule(d, func() { t.Fatal("canceled event fired") }))
	}
	for _, ev := range evs {
		ev.Cancel()
	}
	fired := false
	e.Schedule(50, func() { fired = true })
	e.RunUntil(40)
	if e.Now() != 40 {
		t.Fatalf("Now() = %d after RunUntil(40), want 40", e.Now())
	}
	if fired {
		t.Fatal("event beyond the deadline fired")
	}
	e.RunUntil(60)
	if !fired {
		t.Fatal("surviving event did not fire")
	}
}

// TestEngineOrderVsReferenceSort is the 4-ary heap's property test: for
// random batches of delays (with duplicates), the firing order must match
// a stable sort of the schedule by (time, submission order).
func TestEngineOrderVsReferenceSort(t *testing.T) {
	prop := func(delays []uint16) bool {
		if len(delays) > 512 {
			delays = delays[:512]
		}
		e := NewEngine()
		type rec struct {
			when Time
			id   int
		}
		var fired []rec
		want := make([]rec, len(delays))
		for i, d := range delays {
			i, at := i, Time(d%97) // force many equal timestamps
			want[i] = rec{at, i}
			e.ScheduleAt(at, func() { fired = append(fired, rec{e.Now(), i}) })
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].when < want[b].when })
		e.Run()
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRandomCancelProperty mixes random scheduling and cancellation
// and checks that exactly the surviving events fire, in order, and that
// Pending tracks the survivors at every step.
func TestEngineRandomCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		var fired []int
		var want []int
		n := 1 + rng.Intn(200)
		evs := make([]Event, n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = e.Schedule(Time(1+rng.Intn(50)), func() { fired = append(fired, i) })
		}
		live := n
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				if !evs[i].Cancel() {
					t.Fatal("Cancel on live event returned false")
				}
				live--
				evs[i] = Event{}
			}
		}
		if e.Pending() != live {
			t.Fatalf("Pending() = %d, want %d", e.Pending(), live)
		}
		type key struct {
			when Time
			id   int
		}
		var keys []key
		for i := 0; i < n; i++ {
			if evs[i] != (Event{}) {
				keys = append(keys, key{evs[i].When(), i})
			}
		}
		sort.SliceStable(keys, func(a, b int) bool {
			if keys[a].when != keys[b].when {
				return keys[a].when < keys[b].when
			}
			return keys[a].id < keys[b].id
		})
		for _, k := range keys {
			want = append(want, k.id)
		}
		e.Run()
		if len(fired) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: order diverged at %d: got %v want %v", trial, i, fired, want)
			}
		}
	}
}

// TestScheduleArgNoAlloc pins the zero-allocation contract of the hot
// path: steady-state Schedule/ScheduleArg + Step must not allocate.
func TestScheduleArgNoAlloc(t *testing.T) {
	e := NewEngine()
	var sink int
	fn := func(a any) { sink += a.(int) }
	// Warm the arena and the free list.
	for i := 0; i < 100; i++ {
		e.ScheduleArg(1, fn, 1)
	}
	e.Run()
	arg := any(3) // boxed once, outside the measured loop
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleArg(1, fn, arg)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state ScheduleArg+Run allocates %.1f per op, want 0", allocs)
	}
}
