package sim

// Rand is a small deterministic pseudo-random source (xorshift64*), used
// for loss injection and workload jitter. math/rand would work too, but a
// self-contained generator keeps simulation results bit-stable across Go
// releases, which matters for golden-value protocol tests.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (zero is remapped, since a
// zero xorshift state is absorbing).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
