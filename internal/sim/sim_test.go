package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockFromDuration(t *testing.T) {
	c := DefaultClock
	cases := []struct {
		d    time.Duration
		want Time
	}{
		{0, 0},
		{time.Second, 200_000_000},
		{time.Millisecond, 200_000},
		{12500 * time.Microsecond, 2_500_000}, // the paper's 12.5 ms improved switch
		{85 * time.Millisecond, 17_000_000},   // the paper's 85 ms full switch
		{-time.Second, 0},
	}
	for _, tc := range cases {
		if got := c.FromDuration(tc.d); got != tc.want {
			t.Errorf("FromDuration(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestClockToDurationRoundTrip(t *testing.T) {
	c := DefaultClock
	for _, cy := range []Time{1, 200, 1_000_000, 2_500_000, 17_000_000} {
		d := c.ToDuration(cy)
		back := c.FromDuration(d)
		// Round-trip should be exact to within one cycle of float error.
		diff := int64(back) - int64(cy)
		if diff < -1 || diff > 1 {
			t.Errorf("round trip %d cycles -> %v -> %d", cy, d, back)
		}
	}
}

func TestCyclesPerByte(t *testing.T) {
	c := DefaultClock
	// 45 MB/s on a 200 MHz clock: 200e6/45e6 = 4.444 cycles/byte.
	got := c.CyclesPerByte(45)
	if got < 4.4 || got > 4.5 {
		t.Errorf("CyclesPerByte(45) = %v, want ~4.44", got)
	}
	if c.CopyCycles(0, 45) != 0 {
		t.Errorf("CopyCycles(0) should be 0")
	}
	if c.CopyCycles(1, 45) == 0 {
		t.Errorf("CopyCycles(1) should be nonzero (round up)")
	}
	// 1 MB at 45 MB/s is 1/45 s = 4,444,444 cycles (±1 for rounding).
	mb := c.CopyCycles(1_000_000, 45)
	if mb < 4_444_444 || mb > 4_444_446 {
		t.Errorf("CopyCycles(1MB, 45MB/s) = %d, want ~4444445", mb)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAmongSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel on pending event returned false")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after run", e.Pending())
	}
}

func TestEngineScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.ScheduleAt(5, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Errorf("Now() = %d after RunUntil(25)", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("second RunUntil fired %d total, want 4", len(fired))
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %d, want 100", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i+1), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt run: count=%d", count)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("resumed run incomplete: count=%d", count)
	}
}

func TestEventChaining(t *testing.T) {
	// Events scheduled from within events preserve causality.
	e := NewEngine()
	var trace []Time
	var step func()
	step = func() {
		trace = append(trace, e.Now())
		if len(trace) < 5 {
			e.Schedule(7, step)
		}
	}
	e.Schedule(0, step)
	e.Run()
	for i, tm := range trace {
		if tm != Time(i*7) {
			t.Fatalf("chained event %d fired at %d, want %d", i, tm, i*7)
		}
	}
}

func TestResourceSerialization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	var done []Time
	// Three 100-cycle jobs requested at t=0 must complete at 100, 200, 300.
	for i := 0; i < 3; i++ {
		r.Use(100, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{100, 200, 300}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
	if r.BusyCycles() != 300 {
		t.Errorf("BusyCycles = %d, want 300", r.BusyCycles())
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	r.Use(50, nil)
	e.Schedule(200, func() {
		if !r.Idle() {
			t.Error("resource should be idle at t=200")
		}
		end := r.Use(10, nil)
		if end != 210 {
			t.Errorf("Use after idle gap ends at %d, want 210", end)
		}
	})
	e.Run()
}

func TestResourceBlock(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	r.Block(500)
	if r.FreeAt() != 500 {
		t.Fatalf("FreeAt = %d, want 500", r.FreeAt())
	}
	end := r.Use(10, nil)
	if end != 510 {
		t.Fatalf("Use after Block ends at %d, want 510", end)
	}
	// Blocking to an earlier time is a no-op.
	r.Block(100)
	if r.FreeAt() != 510 {
		t.Fatalf("Block backwards moved FreeAt to %d", r.FreeAt())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced absorbing zero state")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntnUniform(t *testing.T) {
	r := NewRand(11)
	counts := make([]int, 8)
	const draws = 80000
	for i := 0; i < draws; i++ {
		counts[r.Intn(8)]++
	}
	for i, c := range counts {
		// Each bucket should hold ~10000; allow generous 15% slack.
		if c < 8500 || c > 11500 {
			t.Errorf("bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestRandBoolEdges(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

// Property: for any batch of delays, the engine fires events in
// nondecreasing time order and ends with the clock at the max delay.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a resource's completion times under FIFO Use are exactly the
// prefix sums of the durations (when all requests arrive at t=0).
func TestResourcePrefixSumProperty(t *testing.T) {
	prop := func(durs []uint8) bool {
		e := NewEngine()
		r := NewResource(e, "x")
		var ends []Time
		for _, d := range durs {
			r.Use(Time(d)+1, func() { ends = append(ends, e.Now()) })
		}
		e.Run()
		var sum Time
		for i, d := range durs {
			sum += Time(d) + 1
			if ends[i] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
