package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// stormRec is one executed event in a lookahead storm: the lane's clock at
// execution plus a tag identifying the event (chain step or cross arrival
// with its source shard).
type stormRec struct {
	t   Time
	tag int32
}

// runStorm drives a seeded random event storm across shards shards for the
// given worker count: every shard runs a self-chain from time zero, and at
// random steps posts a cross-shard event to its neighbour with delay
// lookahead+offset, where offset is drawn from offsets. It returns each
// lane's execution trace in order. Per-shard RNGs are seeded from seed and
// consumed only by that shard's chain, so the storm a given seed produces
// is a pure function of (shards, lookahead, offsets, seed) — identical at
// every worker count.
func runStorm(shards, workers int, lookahead Time, offsets []Time, seed uint64) [][]stormRec {
	g := NewGroup(GroupConfig{
		Shards:    shards,
		Lookahead: lookahead,
		Workers:   workers,
		Mode:      Windowed,
	})
	traces := make([][]stormRec, shards)
	rngs := make([]*Rand, shards)
	for s := 0; s < shards; s++ {
		rngs[s] = NewRand(seed + uint64(s)*1_000_003)
	}
	const steps = 400
	for s := 0; s < shards; s++ {
		s := s
		lane := g.Shard(s)
		var step func()
		n := 0
		step = func() {
			traces[s] = append(traces[s], stormRec{t: lane.Now(), tag: int32(n)})
			r := rngs[s].Uint64()
			if r%3 == 0 {
				// Cross-shard post: delay at the lookahead boundary or one
				// of the offered offsets past it.
				dst := g.Shard((s + 1) % shards)
				off := offsets[int(r/3)%len(offsets)]
				src := int32(s)
				lane.CrossAt(dst, lane.Now()+lookahead+off, func() {
					traces[(s+1)%shards] = append(traces[(s+1)%shards],
						stormRec{t: dst.Now(), tag: -1 - src})
				})
			}
			if n++; n < steps {
				// Keep hops short relative to the lookahead so chains from
				// different shards stay inside one another's windows — the
				// regime where ordering bugs would show.
				lane.Schedule(1+Time(r%7), step)
			}
		}
		lane.ScheduleAt(0, step)
	}
	g.Run()
	return traces
}

func stormWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// TestWindowedLookaheadBoundary is the conservative-window property test:
// random cross-shard storms whose deliveries land exactly at the lookahead
// edge (offset 0) and one cycle past it (offset 1) — the two legal
// extremes — must execute every event in nondecreasing timestamp order on
// every lane, and produce the exact same traces at every worker count.
func TestWindowedLookaheadBoundary(t *testing.T) {
	const shards = 4
	const lookahead = Time(50)
	offsets := []Time{0, 1}
	for _, seed := range []uint64{1, 42, 0xfeed} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var ref [][]stormRec
			for _, w := range stormWorkerCounts() {
				traces := runStorm(shards, w, lookahead, offsets, seed)
				for lane, tr := range traces {
					for i := 1; i < len(tr); i++ {
						if tr[i].t < tr[i-1].t {
							t.Fatalf("workers=%d lane %d executed out of order: event %d at t=%d after t=%d",
								w, lane, i, tr[i].t, tr[i-1].t)
						}
					}
				}
				if ref == nil {
					ref = traces
					continue
				}
				for lane := range traces {
					if len(traces[lane]) != len(ref[lane]) {
						t.Fatalf("workers=%d lane %d trace length %d != reference %d",
							w, lane, len(traces[lane]), len(ref[lane]))
					}
					for i := range traces[lane] {
						if traces[lane][i] != ref[lane][i] {
							t.Fatalf("workers=%d lane %d event %d = %+v, reference %+v",
								w, lane, i, traces[lane][i], ref[lane][i])
						}
					}
				}
			}
		})
	}
}

// TestWindowedLookaheadViolationPanics plants a cross-shard delivery one
// cycle inside the window (delay = lookahead-1) and checks the drain
// barrier detects it: the receiving lane has already been parked at the
// window horizon, so the late message must trip the causality panic rather
// than execute behind the lane's frontier.
func TestWindowedLookaheadViolationPanics(t *testing.T) {
	for _, w := range stormWorkerCounts() {
		w := w
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			const lookahead = Time(50)
			g := NewGroup(GroupConfig{
				Shards:    2,
				Lookahead: lookahead,
				Workers:   w,
				Mode:      Windowed,
			})
			src, dst := g.Shard(0), g.Shard(1)
			// Both lanes have an event at t=0, so the window floor is 0 and
			// the horizon is exactly the lookahead: a delivery at
			// lookahead-1 lands behind the parked frontier with certainty.
			src.ScheduleAt(0, func() {
				src.CrossAt(dst, src.Now()+lookahead-1, func() {})
			})
			dst.ScheduleAt(0, func() {})
			defer func() {
				if recover() == nil {
					t.Fatal("lookahead violation went undetected: expected the drain barrier to panic")
				}
			}()
			g.Run()
		})
	}
}

// TestLockstepMatchesSingleEngine replays one storm's self-chains on a
// lockstep group and on a plain engine and compares execution traces:
// lockstep's global (time, seq) order must be exactly the single-engine
// order.
func TestLockstepMatchesSingleEngine(t *testing.T) {
	type rec struct {
		lane int
		t    Time
		tag  int32
	}
	run := func(schedule func(lane int) *Engine, run func()) []rec {
		var out []rec
		for s := 0; s < 3; s++ {
			s := s
			e := schedule(s)
			rng := NewRand(7 + uint64(s))
			var step func()
			n := 0
			step = func() {
				out = append(out, rec{lane: s, t: e.Now(), tag: int32(n)})
				r := rng.Uint64()
				if n++; n < 200 {
					e.Schedule(Time(r%11), step)
				}
			}
			e.ScheduleAt(Time(s), step)
		}
		run()
		return out
	}
	g := NewGroup(GroupConfig{Shards: 3, Mode: Lockstep})
	grouped := run(func(lane int) *Engine { return g.Shard(lane) }, g.Run)
	single := NewEngine()
	// On the single engine all three "lanes" share one queue, exactly as
	// the lockstep contract models them.
	flat := run(func(int) *Engine { return single }, single.Run)
	if len(grouped) != len(flat) {
		t.Fatalf("lockstep fired %d events, single engine %d", len(grouped), len(flat))
	}
	for i := range grouped {
		if grouped[i] != flat[i] {
			t.Fatalf("execution order diverged at event %d: lockstep %+v, single %+v",
				i, grouped[i], flat[i])
		}
	}
}
