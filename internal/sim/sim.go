// Package sim provides the deterministic discrete-event simulation kernel
// on which the whole gangfm stack runs.
//
// All simulated activity is expressed as events on a single virtual clock.
// Time is measured in CPU cycles of the simulated 200 MHz host processor
// (the paper reports every overhead in cycles of a 200 MHz Pentium Pro, so
// using cycles as the base unit lets every result be compared directly).
//
// A single Engine is intentionally single-goroutine: determinism is what
// makes the protocol tests meaningful. Parallelism is available two ways:
// one level up, where independent engine instances (one per
// parameter-sweep point) run on separate goroutines, and within one
// simulation via Group (see shard.go), which partitions the system into
// per-shard engines run under conservative lookahead windows without
// giving up deterministic results.
//
// The event queue is the hot path of every experiment, so it is built to
// run allocation-free in steady state: event records live in a per-engine
// arena recycled through a free list, ordered by a hand-rolled 4-ary
// min-heap of (time, seq) keys held in a flat slice. Scheduling, firing,
// and canceling events never allocate once the arena has grown to the
// engine's high-water mark of concurrently pending events.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point on (or a span of) the virtual clock, in CPU cycles.
type Time uint64

// Common spans, assuming the default 200 MHz clock. These are convenience
// constants for tests and examples; code that must honor a configurable
// clock should go through Clock instead.
const (
	Cycle Time = 1
)

// Clock converts between wall-clock durations, data rates, and cycles.
type Clock struct {
	// Hz is the frequency of the simulated processor. The paper's host
	// is a 200 MHz Pentium Pro.
	Hz uint64
}

// DefaultClock is the 200 MHz Pentium-Pro clock used throughout the paper.
var DefaultClock = Clock{Hz: 200_000_000}

// FromDuration converts a wall-clock duration to cycles.
func (c Clock) FromDuration(d time.Duration) Time {
	if d <= 0 {
		return 0
	}
	return Time(float64(d) / float64(time.Second) * float64(c.Hz))
}

// ToDuration converts cycles to a wall-clock duration.
func (c Clock) ToDuration(t Time) time.Duration {
	return time.Duration(float64(t) / float64(c.Hz) * float64(time.Second))
}

// CyclesPerByte returns the per-byte cost, in cycles, of moving data at the
// given rate in megabytes per second (decimal MB, as used in the paper).
func (c Clock) CyclesPerByte(mbPerSec float64) float64 {
	if mbPerSec <= 0 {
		return math.Inf(1)
	}
	return float64(c.Hz) / (mbPerSec * 1e6)
}

// CopyCycles returns the number of cycles needed to move n bytes at the
// given MB/s rate, rounded up so a nonzero transfer never costs zero.
func (c Clock) CopyCycles(n int, mbPerSec float64) Time {
	if n <= 0 {
		return 0
	}
	cy := float64(n) * c.CyclesPerByte(mbPerSec)
	return Time(math.Ceil(cy))
}

// Event is a handle to a scheduled callback, returned by Engine.Schedule
// and friends. It is a small value (not a pointer into the engine): the
// underlying event record is recycled after the event fires or its
// cancellation is collected, and the generation check in Cancel makes a
// stale handle harmless. The zero Event is valid and never pending.
type Event struct {
	eng  *Engine
	slot int32
	gen  uint64
	when Time
}

// When returns the virtual time at which the event will fire (or fired).
func (ev Event) When() Time { return ev.when }

// Cancel prevents the event from firing. Canceling an already-fired,
// already-canceled, or zero Event is a no-op. Cancel reports whether the
// event was still pending.
func (ev Event) Cancel() bool {
	e := ev.eng
	if e == nil {
		return false
	}
	r := &e.recs[ev.slot]
	if r.gen != ev.gen || r.canceled {
		return false
	}
	r.canceled = true
	r.fn, r.afn, r.arg = nil, nil, nil
	e.pending--
	if g := e.group; g != nil && !g.lockstep && e.shard >= 0 {
		g.noteCancel(e.shard)
	}
	return true
}

// eventRec is the arena-resident part of an event: the callback and the
// liveness bookkeeping. The ordering key lives in the heap entry instead,
// so comparisons never chase a pointer into the arena.
type eventRec struct {
	fn       func()
	afn      func(any)
	arg      any
	gen      uint64 // bumped on every recycle; stale handles mismatch
	canceled bool
}

// heapEnt is one entry of the 4-ary min-heap: the ordering key plus the
// arena slot it refers to. Keeping the key inline makes the sift loops
// pure value comparisons over a contiguous slice.
type heapEnt struct {
	when Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	slot int32
}

func entLess(a, b heapEnt) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// Engine is the discrete-event simulation core. The zero value is not
// usable; construct with NewEngine (standalone) or NewGroup (sharded).
type Engine struct {
	now     Time
	recs    []eventRec // arena of event records
	free    []int32    // recycled arena slots
	heap    []heapEnt  // 4-ary min-heap over (when, seq)
	seq     uint64
	fired   uint64
	pending int // scheduled and not canceled
	stopped bool

	// Sharded-mode fields, nil/zero on standalone engines. shard is the
	// lane index within the group (-1 for the global lane); outbox parks
	// cross-shard messages until the group's next window barrier.
	group  *Group
	shard  int
	outbox []crossMsg
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time. In a lockstep group the clock is
// shared across lanes (every lane sees the time of the event executing
// anywhere in the group), exactly as a single engine would report it.
func (e *Engine) Now() Time {
	if g := e.group; g != nil && g.lockstep {
		return g.now
	}
	return e.now
}

// Group returns the group this engine belongs to, or nil when standalone.
func (e *Engine) Group() *Group { return e.group }

// Fired returns the number of events executed so far (diagnostics).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events scheduled and not canceled.
// Canceled events awaiting lazy removal from the queue are not counted.
func (e *Engine) Pending() int { return e.pending }

// Schedule queues fn to run delay cycles from now and returns the event.
func (e *Engine) Schedule(delay Time, fn func()) Event {
	return e.schedule(e.Now()+delay, fn, nil, nil)
}

// ScheduleAt queues fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a cost-accounting bug, and silently clamping
// would corrupt causality.
func (e *Engine) ScheduleAt(t Time, fn func()) Event {
	return e.schedule(t, fn, nil, nil)
}

// ScheduleArg queues fn(arg) to run delay cycles from now. It exists so
// hot paths can use one long-lived callback value instead of allocating a
// fresh closure per event; passing a pointer-typed arg does not allocate.
func (e *Engine) ScheduleArg(delay Time, fn func(any), arg any) Event {
	return e.schedule(e.Now()+delay, nil, fn, arg)
}

// ScheduleArgAt queues fn(arg) to run at absolute time t (see ScheduleArg).
func (e *Engine) ScheduleArgAt(t Time, fn func(any), arg any) Event {
	return e.schedule(t, nil, fn, arg)
}

func (e *Engine) schedule(t Time, fn func(), afn func(any), arg any) Event {
	if now := e.Now(); t < now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now=%d", t, now))
	}
	seq := e.nextSeq()
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.recs = append(e.recs, eventRec{})
		slot = int32(len(e.recs) - 1)
	}
	r := &e.recs[slot]
	r.fn, r.afn, r.arg = fn, afn, arg
	r.canceled = false
	e.push(heapEnt{when: t, seq: seq, slot: slot})
	e.pending++
	if g := e.group; g != nil && !g.lockstep && e.shard >= 0 {
		g.noteSchedule(e.shard, t)
	}
	return Event{eng: e, slot: slot, gen: r.gen, when: t}
}

// nextSeq returns the next FIFO tie-break key. A lockstep group shares one
// counter across lanes so that the interleaved execution order reproduces a
// single engine's bit-for-bit; everywhere else the counter is per-engine.
func (e *Engine) nextSeq() uint64 {
	if g := e.group; g != nil && g.lockstep {
		g.seq++
		return g.seq
	}
	e.seq++
	return e.seq
}

// freeSlot recycles an arena slot whose heap entry has been popped. The
// generation bump invalidates every outstanding handle to the old event.
func (e *Engine) freeSlot(slot int32) {
	r := &e.recs[slot]
	r.gen++
	r.fn, r.afn, r.arg = nil, nil, nil
	r.canceled = false
	e.free = append(e.free, slot)
}

// Step executes the single earliest pending event. It reports whether an
// event was executed (false means the queue is empty).
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ent := e.popMin()
		r := &e.recs[ent.slot]
		if r.canceled {
			e.freeSlot(ent.slot)
			continue
		}
		fn, afn, arg := r.fn, r.afn, r.arg
		// Recycle before invoking: the callback may schedule into the
		// same slot, and holding dead callbacks alive would leak.
		e.freeSlot(ent.slot)
		e.pending--
		e.now = ent.when
		e.fired++
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	if e.group != nil {
		panic("sim: Run called on a grouped engine; drive the Group instead")
	}
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes all events with time <= limit, then advances the clock
// to limit. Events scheduled beyond the limit stay queued.
func (e *Engine) RunUntil(limit Time) {
	if e.group != nil {
		panic("sim: RunUntil called on a grouped engine; drive the Group instead")
	}
	e.stopped = false
	for !e.stopped {
		when, ok := e.peekWhen()
		if !ok || when > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// Stop makes the innermost Run/RunUntil return after the current event. On
// a grouped engine it stops the whole group (any lane may call it — e.g. a
// fail-fast auditor hook firing inside a shard window).
func (e *Engine) Stop() {
	if e.group != nil {
		e.group.Stop()
		return
	}
	e.stopped = true
}

// CrossAt queues fn at absolute time t on the target engine. On standalone
// engines (or when target is e itself, or the group runs in lockstep, or
// the caller is the barrier-serialized global lane) this is a plain
// ScheduleAt on the target. Only a shard posting to another lane while
// windows run concurrently needs the outbox: the message is parked and
// inserted at the next window barrier, and t must then respect the group's
// lookahead bound relative to the sending event's time.
func (e *Engine) CrossAt(target *Engine, t Time, fn func()) {
	e.cross(target, t, fn, nil, nil)
}

// CrossArgAt is CrossAt with the allocation-avoiding (fn, arg) callback
// form (see ScheduleArg).
func (e *Engine) CrossArgAt(target *Engine, t Time, fn func(any), arg any) {
	e.cross(target, t, nil, fn, arg)
}

func (e *Engine) cross(target *Engine, t Time, fn func(), afn func(any), arg any) {
	if target == e || e.group == nil || e.group.lockstep || e.shard < 0 {
		target.schedule(t, fn, afn, arg)
		return
	}
	e.outbox = append(e.outbox, crossMsg{to: target, when: t, fn: fn, afn: afn, arg: arg})
}

// runWindow executes every pending event with time strictly before h, then
// parks the clock at h. It is one shard's serial share of a conservative
// window; only the group coordinator and its helpers call it.
func (e *Engine) runWindow(h Time) {
	for {
		when, ok := e.peekWhen()
		if !ok || when >= h {
			break
		}
		e.Step()
	}
	if e.now < h {
		e.now = h
	}
}

// peekWhen returns the fire time of the earliest live event, collecting
// any canceled events sitting at the front of the queue.
func (e *Engine) peekWhen() (Time, bool) {
	for len(e.heap) > 0 {
		ent := e.heap[0]
		if !e.recs[ent.slot].canceled {
			return ent.when, true
		}
		e.popMin()
		e.freeSlot(ent.slot)
	}
	return 0, false
}

// peekKey is peekWhen returning the full (when, seq) ordering key — the
// lockstep coordinator compares keys across lanes to replay the global
// single-engine order.
func (e *Engine) peekKey() (heapEnt, bool) {
	for len(e.heap) > 0 {
		ent := e.heap[0]
		if !e.recs[ent.slot].canceled {
			return ent, true
		}
		e.popMin()
		e.freeSlot(ent.slot)
	}
	return heapEnt{}, false
}

// push adds an entry to the 4-ary heap (sift-up).
func (e *Engine) push(ent heapEnt) {
	h := append(e.heap, ent)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// popMin removes and returns the heap minimum (sift-down).
func (e *Engine) popMin() heapEnt {
	h := e.heap
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	if n > 1 {
		e.siftDown()
	}
	return min
}

func (e *Engine) siftDown() {
	h := e.heap
	n := len(h)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			return
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if entLess(h[c], h[best]) {
				best = c
			}
		}
		if !entLess(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
