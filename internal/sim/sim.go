// Package sim provides the deterministic discrete-event simulation kernel
// on which the whole gangfm stack runs.
//
// All simulated activity is expressed as events on a single virtual clock.
// Time is measured in CPU cycles of the simulated 200 MHz host processor
// (the paper reports every overhead in cycles of a 200 MHz Pentium Pro, so
// using cycles as the base unit lets every result be compared directly).
//
// The engine is intentionally single-goroutine: determinism is what makes
// the protocol tests meaningful. Parallelism belongs one level up, where
// independent engine instances (one per parameter-sweep point) run on
// separate goroutines.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point on (or a span of) the virtual clock, in CPU cycles.
type Time uint64

// Common spans, assuming the default 200 MHz clock. These are convenience
// constants for tests and examples; code that must honor a configurable
// clock should go through Clock instead.
const (
	Cycle Time = 1
)

// Clock converts between wall-clock durations, data rates, and cycles.
type Clock struct {
	// Hz is the frequency of the simulated processor. The paper's host
	// is a 200 MHz Pentium Pro.
	Hz uint64
}

// DefaultClock is the 200 MHz Pentium-Pro clock used throughout the paper.
var DefaultClock = Clock{Hz: 200_000_000}

// FromDuration converts a wall-clock duration to cycles.
func (c Clock) FromDuration(d time.Duration) Time {
	if d <= 0 {
		return 0
	}
	return Time(float64(d) / float64(time.Second) * float64(c.Hz))
}

// ToDuration converts cycles to a wall-clock duration.
func (c Clock) ToDuration(t Time) time.Duration {
	return time.Duration(float64(t) / float64(c.Hz) * float64(time.Second))
}

// CyclesPerByte returns the per-byte cost, in cycles, of moving data at the
// given rate in megabytes per second (decimal MB, as used in the paper).
func (c Clock) CyclesPerByte(mbPerSec float64) float64 {
	if mbPerSec <= 0 {
		return math.Inf(1)
	}
	return float64(c.Hz) / (mbPerSec * 1e6)
}

// CopyCycles returns the number of cycles needed to move n bytes at the
// given MB/s rate, rounded up so a nonzero transfer never costs zero.
func (c Clock) CopyCycles(n int, mbPerSec float64) Time {
	if n <= 0 {
		return 0
	}
	cy := float64(n) * c.CyclesPerByte(mbPerSec)
	return Time(math.Ceil(cy))
}

// Event is a scheduled callback. Events are created through Engine.Schedule
// and friends and may be canceled until they fire.
type Event struct {
	when     Time
	seq      uint64 // tie-breaker: FIFO among same-time events
	fn       func()
	index    int // heap index; -1 when not queued
	canceled bool
}

// When returns the virtual time at which the event will fire.
func (ev *Event) When() Time { return ev.when }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Cancel reports whether the event was
// still pending.
func (ev *Event) Cancel() bool {
	if ev == nil || ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	return true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event simulation core. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	fired   uint64
	stopped bool
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (diagnostics).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run delay cycles from now and returns the event.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a cost-accounting bug, and silently clamping
// would corrupt causality.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now=%d", t, e.now))
	}
	e.seq++
	ev := &Event{when: t, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// Step executes the single earliest pending event. It reports whether an
// event was executed (false means the queue is empty).
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.when
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes all events with time <= limit, then advances the clock
// to limit. Events scheduled beyond the limit stay queued.
func (e *Engine) RunUntil(limit Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.when > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// Stop makes the innermost Run/RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}
