package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file adds the sharded execution mode: a Group of engines that
// together simulate one system. Each shard owns a disjoint subset of the
// simulated resources (in gangfm: a contiguous range of cluster nodes with
// their NIC, host CPU, and buffer state), plus one extra "global" engine
// for entities that talk to every shard (the masterd, the control network,
// the chaos auditor). Events whose callback touches another shard's state
// must not be inserted into that shard's queue directly while shards run
// concurrently; they travel as cross-shard messages through per-shard
// outboxes drained at window barriers.
//
// Two modes are provided:
//
//   - Lockstep executes every lane in one goroutine, always picking the
//     globally earliest (time, seq) event, with the seq counter shared
//     across lanes. By induction this replays the exact execution order a
//     single Engine holding every event would produce, so results are
//     bit-identical to the unsharded simulator — the mode used when byte
//     equivalence is required (workers=1, chaos replay).
//
//   - Windowed runs shards concurrently under conservative time windows:
//     with L the minimum latency of any cross-shard interaction
//     (lookahead), all events in [t, t+L) on different shards are
//     causally independent and may run in parallel. The coordinator
//     computes the horizon h = min(earliest shard event + L, earliest
//     global event, limit+1), lets worker goroutines run each shard's
//     serial sub-window up to h, then drains outboxes in deterministic
//     (time, shard, post order) so the next window starts from identical
//     state regardless of worker count or goroutine interleaving.
//
// The global lane never runs inside a window: global events execute only
// when every shard has been parked at or beyond the event's timestamp, so
// global callbacks may read and write any shard's state without locks
// (the barrier is the synchronization). This matches how the paper's
// masterd behaves — it acts on daemon notifications, never mid-quantum.

// Mode selects how a Group executes its lanes.
type Mode int

const (
	// Lockstep interleaves all lanes in one goroutine in global
	// (time, seq) order — bit-identical to a single Engine.
	Lockstep Mode = iota
	// Windowed runs shards on worker goroutines under conservative
	// lookahead windows — semantically equivalent, not bit-identical.
	Windowed
)

// GroupConfig parameterizes NewGroup.
type GroupConfig struct {
	// Shards is the number of shard lanes (excluding the global lane).
	Shards int
	// Lookahead is the minimum virtual-time latency of any cross-shard
	// interaction. Windowed mode requires Lookahead >= 1: an event
	// executing at time t on one shard must never create an event at a
	// time earlier than t+Lookahead on another shard. Deliveries into
	// the global lane are exempt (it is barrier-serialized), but events
	// the global lane sends to a shard must also respect the bound.
	Lookahead Time
	// Workers caps the goroutines running shard windows (>= 1). With 1
	// worker the coordinator runs every window itself — no goroutines,
	// no barriers, still windowed semantics.
	Workers int
	// Mode selects Lockstep or Windowed execution.
	Mode Mode
}

// crossMsg is one event posted from a shard to another lane, parked in the
// source shard's outbox until the next window barrier.
type crossMsg struct {
	to   *Engine
	when Time
	fn   func()
	afn  func(any)
	arg  any
}

// crossQueue orders drained messages by time; sort.Stable preserves the
// (source shard, post order) sequence among equal times, so the insertion
// order — and therefore the seq tie-break in every target queue — is a
// pure function of simulation state, independent of worker scheduling.
type crossQueue []crossMsg

func (q *crossQueue) Len() int           { return len(*q) }
func (q *crossQueue) Less(i, j int) bool { return (*q)[i].when < (*q)[j].when }
func (q *crossQueue) Swap(i, j int)      { (*q)[i], (*q)[j] = (*q)[j], (*q)[i] }

// Group is a set of engines executing one simulation cooperatively.
// Construct with NewGroup; drive with Run or RunUntil. All methods are
// coordinator-side: call them from one goroutine only.
type Group struct {
	shards    []*Engine
	global    *Engine
	all       []*Engine
	lookahead Time
	workers   int
	lockstep  bool

	// Lockstep state: the shared clock and schedule-order counter.
	now Time
	seq uint64

	stopReq atomic.Bool

	// Windowed state: the current window's work list and barrier.
	active  []*Engine
	horizon Time
	xfer    []crossMsg
	sortq   *crossQueue
	widx    atomic.Int64
	wexit   atomic.Int64
	epoch   atomic.Uint64
	quit    atomic.Bool
	nhelp   int
	wg      sync.WaitGroup

	// Min-frontier cache: frontier[i]/fOK[i] mirror shards[i].peekWhen()
	// whenever dirty[i] is false, so the per-window horizon computation
	// touches only the shards whose queues changed instead of peeking
	// every heap every window. Writes follow the window ownership rules:
	// during a window, entry i is touched only by the goroutine running
	// shard i (the schedule hook lowers it, Cancel marks it dirty); the
	// coordinator reads and refreshes entries only between windows.
	frontier []Time
	fOK      []bool
	dirty    []bool
}

// NewGroup builds a group of cfg.Shards shard engines plus one global
// engine, all starting at time zero.
func NewGroup(cfg GroupConfig) *Group {
	if cfg.Shards < 1 {
		panic("sim: group needs at least one shard")
	}
	if cfg.Mode == Windowed && cfg.Lookahead < 1 {
		panic("sim: windowed group needs lookahead >= 1")
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	g := &Group{
		lookahead: cfg.Lookahead,
		workers:   workers,
		lockstep:  cfg.Mode == Lockstep,
		sortq:     new(crossQueue),
	}
	for i := 0; i < cfg.Shards; i++ {
		g.shards = append(g.shards, &Engine{group: g, shard: i})
	}
	g.global = &Engine{group: g, shard: -1}
	g.all = append(append(make([]*Engine, 0, cfg.Shards+1), g.shards...), g.global)
	g.frontier = make([]Time, cfg.Shards)
	g.fOK = make([]bool, cfg.Shards)
	g.dirty = make([]bool, cfg.Shards)
	for i := range g.dirty {
		g.dirty[i] = true
	}
	return g
}

// noteSchedule maintains the frontier cache on event insertion (called from
// Engine.schedule for shard lanes of a windowed group). Insertion can only
// lower a queue's minimum, so a clean entry is updated in place; a dirty
// entry is left for refreshFrontiers.
func (g *Group) noteSchedule(shard int, t Time) {
	if g.dirty[shard] {
		return
	}
	if !g.fOK[shard] || t < g.frontier[shard] {
		g.frontier[shard], g.fOK[shard] = t, true
	}
}

// noteCancel invalidates a shard's cached frontier: the canceled event may
// have been the minimum, and the new minimum is only discoverable by a heap
// peek (done lazily at the next refresh).
func (g *Group) noteCancel(shard int) { g.dirty[shard] = true }

// refreshFrontiers re-peeks the queues of dirty shards only. Coordinator
// context (between windows).
func (g *Group) refreshFrontiers() {
	for i, d := range g.dirty {
		if !d {
			continue
		}
		w, ok := g.shards[i].peekWhen()
		g.frontier[i], g.fOK[i], g.dirty[i] = w, ok, false
	}
}

// Shard returns shard lane i.
func (g *Group) Shard(i int) *Engine { return g.shards[i] }

// Shards returns the number of shard lanes.
func (g *Group) Shards() int { return len(g.shards) }

// Global returns the barrier-serialized global lane.
func (g *Group) Global() *Engine { return g.global }

// Lookahead returns the group's conservative lookahead bound.
func (g *Group) Lookahead() Time { return g.lookahead }

// Serial reports whether the group executes on a single goroutine
// (Lockstep mode): callers may then treat cross-lane calls as ordinary
// sequential code, exactly as with a standalone engine.
func (g *Group) Serial() bool { return g.lockstep }

// Fired returns the total events executed across all lanes.
func (g *Group) Fired() uint64 {
	var n uint64
	for _, e := range g.all {
		n += e.fired
	}
	return n
}

// Pending returns the total events scheduled and not canceled, plus any
// cross-shard messages still parked in outboxes.
func (g *Group) Pending() int {
	n := 0
	for _, e := range g.all {
		n += e.pending + len(e.outbox)
	}
	return n
}

// Now returns the group clock: the lockstep clock, or the maximum lane
// frontier in windowed mode (every executed event is at or before it).
func (g *Group) Now() Time {
	if g.lockstep {
		return g.now
	}
	t := g.global.now
	for _, s := range g.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// Run executes events until every queue drains or Stop is called.
func (g *Group) Run() { g.run(0, false) }

// RunUntil executes all events with time <= limit, then advances every
// lane's clock to limit. Events beyond the limit stay queued.
func (g *Group) RunUntil(limit Time) { g.run(limit, true) }

// Stop makes the innermost Run/RunUntil return once the current event (and
// in windowed mode, the current window) completes.
func (g *Group) Stop() { g.stopReq.Store(true) }

func (g *Group) run(limit Time, bounded bool) {
	g.stopReq.Store(false)
	if g.lockstep {
		g.runLockstep(limit, bounded)
	} else {
		g.runWindowed(limit, bounded)
	}
	if bounded {
		if g.now < limit {
			g.now = limit
		}
		for _, e := range g.all {
			// Windowed horizons may have parked a lane at limit+1 (the
			// window that covers events at limit exactly); RunUntil's
			// contract is that every clock reads limit afterwards.
			if e.now != limit {
				e.now = limit
			}
		}
	}
}

// runLockstep replays the single-engine execution order: always the
// globally smallest (when, seq) key. Seqs are group-wide in this mode, so
// the scan below never sees a tie.
func (g *Group) runLockstep(limit Time, bounded bool) {
	for !g.stopReq.Load() {
		var best *Engine
		var bk heapEnt
		for _, e := range g.all {
			if k, ok := e.peekKey(); ok && (best == nil || entLess(k, bk)) {
				best, bk = e, k
			}
		}
		if best == nil || (bounded && bk.when > limit) {
			return
		}
		g.now = bk.when
		best.Step()
	}
}

func (g *Group) runWindowed(limit Time, bounded bool) {
	g.startWorkers()
	defer g.stopWorkers()
	for !g.stopReq.Load() {
		g.drain()
		g.refreshFrontiers()
		var tS Time
		haveS := false
		for i, ok := range g.fOK {
			if ok && (!haveS || g.frontier[i] < tS) {
				tS, haveS = g.frontier[i], true
			}
		}
		// The global lane runs an event only when every shard is parked
		// at or beyond it (tG <= tS): at that instant no shard goroutine
		// is live, so the callback may touch any shard's state.
		if tG, ok := g.global.peekWhen(); ok && (!haveS || tG <= tS) {
			if bounded && tG > limit {
				return
			}
			g.global.Step()
			continue
		}
		if !haveS {
			return
		}
		if bounded && tS > limit {
			return
		}
		h := tS + g.lookahead
		if h < tS { // overflow near the end of time
			h = math.MaxUint64
		}
		if tG, ok := g.global.peekWhen(); ok && tG < h {
			h = tG
		}
		if bounded && h > limit+1 {
			h = limit + 1
		}
		g.runShardsTo(h)
	}
}

// runShardsTo executes every shard event with time < h, in parallel across
// shards, then parks every shard clock at h.
func (g *Group) runShardsTo(h Time) {
	g.active = g.active[:0]
	for i, s := range g.shards {
		if g.fOK[i] && g.frontier[i] < h {
			g.active = append(g.active, s)
			// The shard will fire (and schedule) events this window; its
			// cached frontier is stale until the next refresh.
			g.dirty[i] = true
		}
	}
	if g.nhelp == 0 || len(g.active) <= 1 {
		for _, s := range g.active {
			s.runWindow(h)
		}
	} else {
		// Publish the window, release the helpers, take part in the
		// work, then wait for every helper to leave the window before
		// touching shared state again.
		g.horizon = h
		g.widx.Store(0)
		g.wexit.Store(0)
		g.epoch.Add(1)
		g.windowWork()
		for g.wexit.Load() < int64(g.nhelp) {
			runtime.Gosched()
		}
	}
	for _, s := range g.shards {
		if s.now < h {
			s.now = h
		}
	}
}

// windowWork claims shards off the shared index until none remain. Both
// the coordinator and every helper run it each window.
func (g *Group) windowWork() {
	n := int64(len(g.active))
	for {
		i := g.widx.Add(1) - 1
		if i >= n {
			return
		}
		g.active[i].runWindow(g.horizon)
	}
}

func (g *Group) helperLoop() {
	defer g.wg.Done()
	var seen uint64
	spins := 0
	for {
		if g.quit.Load() {
			return
		}
		if e := g.epoch.Load(); e != seen {
			seen = e
			g.windowWork()
			g.wexit.Add(1)
			spins = 0
			continue
		}
		if spins++; spins&63 == 0 {
			runtime.Gosched()
		}
	}
}

func (g *Group) startWorkers() {
	n := g.workers - 1
	if n <= 0 {
		return
	}
	if n > len(g.shards)-1 {
		n = len(g.shards) - 1 // more helpers than extra shards is pure overhead
	}
	if n <= 0 {
		return
	}
	g.quit.Store(false)
	g.nhelp = n
	g.wg.Add(n)
	for i := 0; i < n; i++ {
		go g.helperLoop()
	}
}

func (g *Group) stopWorkers() {
	if g.nhelp == 0 {
		return
	}
	g.quit.Store(true)
	g.wg.Wait()
	g.nhelp = 0
}

// drain moves every parked cross-shard message into its target queue. The
// stable sort by time (preserving source-shard order among ties) makes the
// insertion sequence deterministic, so target seq assignment — and with it
// every future tie-break — is independent of how goroutines interleaved
// during the window.
func (g *Group) drain() {
	n := 0
	for _, s := range g.shards {
		n += len(s.outbox)
	}
	if n == 0 {
		return
	}
	g.xfer = g.xfer[:0]
	for _, s := range g.shards {
		g.xfer = append(g.xfer, s.outbox...)
		s.outbox = s.outbox[:0]
	}
	*g.sortq = g.xfer
	sort.Stable(g.sortq)
	for i := range g.xfer {
		m := &g.xfer[i]
		if m.when < m.to.now {
			panic(fmt.Sprintf(
				"sim: cross-shard event at t=%d is behind lane %d's frontier %d — a cross-shard interaction undercut the declared lookahead %d",
				m.when, m.to.shard, m.to.now, g.lookahead))
		}
		// schedule's frontier hook keeps the target's cached minimum
		// consistent (insertions only lower it), so no dirty marking is
		// needed here.
		m.to.schedule(m.when, m.fn, m.afn, m.arg)
		m.to, m.fn, m.afn, m.arg = nil, nil, nil, nil
	}
}
