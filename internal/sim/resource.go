package sim

// Resource models a serially-reusable piece of hardware (a host CPU, a NIC
// DMA engine, a link transmitter): at most one operation occupies it at a
// time, and requests queue in FIFO order.
//
// Acquire-style APIs invite deadlocks in callback-driven simulations, so
// Resource instead exposes a single combining operation: Use schedules work
// of a given duration as soon as the resource is free, and invokes done
// when the work completes. The occupancy bookkeeping is just a "free at"
// watermark — exact, because grants are FIFO and durations are known at
// request time.
type Resource struct {
	eng    *Engine
	name   string
	freeAt Time
	busy   Time // total busy cycles, for utilization stats
}

// NewResource returns a resource bound to the engine.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// FreeAt returns the earliest time at which the resource will be idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyCycles returns the cumulative cycles of scheduled occupancy.
func (r *Resource) BusyCycles() Time { return r.busy }

// Idle reports whether the resource is free at the current time.
func (r *Resource) Idle() bool { return r.freeAt <= r.eng.Now() }

// Use reserves the resource for dur cycles starting as soon as it is free,
// and schedules done at the completion time. It returns the completion
// time. A nil done simply occupies the resource.
func (r *Resource) Use(dur Time, done func()) Time {
	start := r.freeAt
	if now := r.eng.Now(); start < now {
		start = now
	}
	end := start + dur
	r.freeAt = end
	r.busy += dur
	if done != nil {
		r.eng.ScheduleAt(end, done)
	}
	return end
}

// UseArg is Use with an argument-taking completion callback: hot paths pass
// one long-lived fn and a per-grant arg instead of allocating a closure per
// grant (see Engine.ScheduleArg).
func (r *Resource) UseArg(dur Time, done func(any), arg any) Time {
	start := r.freeAt
	if now := r.eng.Now(); start < now {
		start = now
	}
	end := start + dur
	r.freeAt = end
	r.busy += dur
	if done != nil {
		r.eng.ScheduleArgAt(end, done, arg)
	}
	return end
}

// Block extends the resource's occupancy through at least time t, without a
// completion callback. It is used to model an external agent (e.g. the
// noded copying buffers) holding the CPU.
func (r *Resource) Block(until Time) {
	if until > r.freeAt {
		if now := r.eng.Now(); r.freeAt < now {
			r.busy += until - now
		} else {
			r.busy += until - r.freeAt
		}
		r.freeAt = until
	}
}

// Unblock cancels the unconsumed remainder of the resource's occupancy: the
// resource becomes free now, and the reserved-but-never-consumed cycles are
// deducted from the busy total. It models the external agent releasing the
// hardware early — a repaired node whose fail-stop Block(∞) ends. Completion
// callbacks already scheduled by Use keep their original times; only the
// watermark moves.
func (r *Resource) Unblock() {
	if now := r.eng.Now(); r.freeAt > now {
		r.busy -= r.freeAt - now
		r.freeAt = now
	}
}
