package fm

import (
	"fmt"
	"testing"
	"testing/quick"

	"gangfm/internal/chaos"
	"gangfm/internal/lanai"
	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

func TestFlushImmediateWhenIdle(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	fired := false
	r.eps[0].Flush(func() { fired = true })
	r.eng.Run()
	if !fired {
		t.Fatal("Flush on idle endpoint never fired")
	}
}

func TestFlushWaitsForOutbox(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	order := make([]string, 0, 4)
	r.eps[1].SetHandler(func(_, _ int, _ []byte) { order = append(order, "delivered") })
	r.eps[0].Send(1, 3000, nil) // 2 fragments
	injected := r.eps[0].Stats().PacketsSent
	if injected != 0 {
		t.Fatal("send should be asynchronous")
	}
	r.eps[0].Flush(func() { order = append(order, "flushed") })
	r.eng.Run()
	if len(order) < 2 || order[len(order)-1] != "delivered" {
		// flush fires at injection, which precedes delivery
		t.Fatalf("order = %v", order)
	}
	if order[0] != "flushed" {
		t.Fatalf("flush did not fire at injection time: %v", order)
	}
	if got := r.eps[0].Stats().PacketsSent; got != 2 {
		t.Fatalf("packets sent = %d, want 2", got)
	}
}

func TestFlushAcrossSuspension(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	r.eps[0].Suspend()
	r.eps[0].Send(1, 100, nil)
	fired := false
	r.eps[0].Flush(func() { fired = true })
	r.eng.Run()
	if fired {
		t.Fatal("flush fired while the message was stuck in the outbox")
	}
	r.eps[0].Resume()
	r.eng.Run()
	if !fired {
		t.Fatal("flush did not fire after resume drained the outbox")
	}
}

func TestCopyOnReceiveCostsMore(t *testing.T) {
	elapsed := func(copyRecv bool) uint64 {
		r := newJobRig(t, 2, func(c *Config) { c.CopyOnReceive = copyRecv }, nil)
		done := false
		r.eps[1].SetHandler(func(_, _ int, _ []byte) { done = true })
		sent := 0
		var fill func()
		fill = func() {
			for sent < 50 && r.eps[0].Send(1, myrinet.MaxPayload, nil) {
				sent++
			}
		}
		r.eps[0].SetOnCanSend(fill)
		fill()
		r.eng.Run()
		if !done {
			t.Fatal("transfer incomplete")
		}
		return uint64(r.eng.Now())
	}
	zeroCopy := elapsed(false)
	withCopy := elapsed(true)
	if withCopy <= zeroCopy {
		t.Fatalf("CopyOnReceive should slow the receiver: %d vs %d", withCopy, zeroCopy)
	}
}

func TestDrainBatching(t *testing.T) {
	// A suspended receiver accumulates a backlog; on resume the batched
	// drain must clear it in far fewer CPU grants than packets.
	r := newJobRig(t, 2, nil, nil)
	r.eps[1].Suspend()
	sent := 0
	var fill func()
	fill = func() {
		for sent < 40 && r.eps[0].Send(1, 256, nil) {
			sent++
		}
	}
	r.eps[0].SetOnCanSend(fill)
	fill()
	r.eng.Run()
	backlog := r.eps[1].Context().RecvQ.Len()
	if backlog != 40 {
		t.Fatalf("backlog = %d", backlog)
	}
	delivered := 0
	r.eps[1].SetHandler(func(_, _ int, _ []byte) { delivered++ })
	r.eps[1].Resume()
	r.eng.Run()
	if delivered != 40 {
		t.Fatalf("delivered %d/40 after resume", delivered)
	}
}

func TestStatsAccounting(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	got := 0
	r.eps[1].SetHandler(func(_, _ int, _ []byte) { got++ })
	r.eps[0].Send(1, 5000, nil) // 4 fragments
	r.eng.Run()
	tx, rx := r.eps[0].Stats(), r.eps[1].Stats()
	if tx.MessagesSent != 1 || tx.PacketsSent != 4 || tx.PayloadBytesSent != 5000 {
		t.Fatalf("tx stats: %+v", tx)
	}
	if rx.MessagesRecvd != 1 || rx.PacketsRecvd != 4 || rx.PayloadBytesRecv != 5000 {
		t.Fatalf("rx stats: %+v", rx)
	}
}

func TestNewEndpointValidation(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	nodeOf := []myrinet.NodeID{0, 1}
	if _, err := NewEndpoint(r.eng, r.nics[0], r.cpus[0], nil, Config{C0: -1}, 1, 0, nodeOf); err == nil {
		t.Error("negative C0 should fail")
	}
	if _, err := NewEndpoint(r.eng, r.nics[0], r.cpus[0], nil, Config{}, 1, 5, nodeOf); err == nil {
		t.Error("rank out of range should fail")
	}
}

func TestResumeIdempotent(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	r.eps[0].Resume()
	r.eps[0].Resume() // second resume is a no-op
	if !r.eps[0].Running() {
		t.Fatal("endpoint should be running")
	}
	r.eps[0].Suspend()
	if r.eps[0].Running() {
		t.Fatal("endpoint should be suspended")
	}
}

// TestCreditConservationProperty: after any traffic pattern completes and
// the system is quiescent, the credits for every ordered pair (a->b) are
// fully accounted: a's available credits plus the credits b is holding
// back (owed) equal C0. A lost packet breaks exactly this invariant.
func TestCreditConservationProperty(t *testing.T) {
	prop := func(plan []uint16, c0seed uint8) bool {
		if len(plan) > 30 {
			plan = plan[:30]
		}
		c0 := int(c0seed%8) + 2
		r := newJobRigCustom(3, func(c *Config) { c.C0 = c0 })
		for _, ep := range r.eps {
			ep.SetHandler(func(_, _ int, _ []byte) {})
		}
		// Issue sends per plan; each entry picks (src, dst, size).
		for _, v := range plan {
			src := int(v) % 3
			dst := (src + 1 + int(v>>2)%2) % 3
			size := int(v>>4)%3000 + 1
			r.eps[src].Send(dst, size, nil)
		}
		r.eng.Run()
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				if a == b {
					continue
				}
				if got := r.eps[a].Credits(b) + r.eps[b].Owed(a); got != c0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// newJobRigCustom is newJobRigQuiet with a config mutator.
func newJobRigCustom(nodes int, mutate func(*Config)) *jobRig {
	eng := sim.NewEngine()
	net := myrinet.New(eng, myrinet.DefaultConfig(nodes))
	mem := memmodel.Default()
	r := &jobRig{eng: eng, net: net}
	alloc, _ := Allocate(Switched, 252, 668, 1, nodes)
	nodeOf := make([]myrinet.NodeID, nodes)
	for i := range nodeOf {
		nodeOf[i] = myrinet.NodeID(i)
	}
	for i := 0; i < nodes; i++ {
		nic := lanai.New(eng, net, mem, lanai.DefaultConfig(myrinet.NodeID(i)))
		cpu := sim.NewResource(eng, fmt.Sprintf("cpu%d", i))
		cfg := DefaultConfig(alloc.C0)
		if mutate != nil {
			mutate(&cfg)
		}
		ep, _ := NewEndpoint(eng, nic, cpu, mem, cfg, 1, i, nodeOf)
		ctx, _ := nic.Register(1, i, alloc.SendSlots, alloc.RecvSlots, lanai.Hooks{})
		ep.Attach(ctx)
		ep.Resume()
		r.nics = append(r.nics, nic)
		r.cpus = append(r.cpus, cpu)
		r.eps = append(r.eps, ep)
	}
	return r
}

// TestCreditConservationBrokenByLoss: the same invariant fails under loss
// — the paper's justification for requiring a reliable SAN.
func TestCreditConservationBrokenByLoss(t *testing.T) {
	plan := chaos.Loss(21, 0.3)
	r := newJobRig(t, 2, func(c *Config) { c.C0 = 6 }, &plan)
	r.eps[1].SetHandler(func(_, _ int, _ []byte) {})
	sent := 0
	var fill func()
	fill = func() {
		for sent < 60 && r.eps[0].Send(1, 512, nil) {
			sent++
		}
	}
	r.eps[0].SetOnCanSend(fill)
	fill()
	r.eng.Run()
	if got := r.eps[0].Credits(1) + r.eps[1].Owed(0); got == 6 {
		t.Fatal("credit conservation survived 30% loss — loss accounting is broken")
	}
}

// TestAuditInvariantsCleanRun: after loss-free traffic, the endpoint-local
// audit reports nothing.
func TestAuditInvariantsCleanRun(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	r.eps[1].SetHandler(func(_, _ int, _ []byte) {})
	r.eps[0].Send(1, 5000, nil)
	r.eng.Run()
	for _, ep := range r.eps {
		ep.AuditInvariants(func(inv, detail string) {
			t.Errorf("unexpected violation %s: %s", inv, detail)
		})
	}
}

// TestAuditInvariantsByteAccounting: a vanished payload byte (manufactured
// by tampering with the delivered counter, standing in for a reassembly bug)
// is caught by the byte-accounting check.
func TestAuditInvariantsByteAccounting(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	r.eps[1].SetHandler(func(_, _ int, _ []byte) {})
	r.eps[0].Send(1, 3000, nil)
	r.eng.Run()
	r.eps[1].deliveredBytes -= 1
	var got []string
	r.eps[1].AuditInvariants(func(inv, _ string) { got = append(got, inv) })
	if len(got) != 1 || got[0] != "byte-accounting" {
		t.Fatalf("violations = %v, want [byte-accounting]", got)
	}
}

// TestStalledDetectsLossWedge: with heavy loss and no retransmission the
// sender ends up head-of-line blocked with zero credits — the condition
// Stalled exposes to the chaos auditor.
func TestStalledDetectsLossWedge(t *testing.T) {
	plan := chaos.Loss(12345, 0.2)
	r := newJobRig(t, 2, func(c *Config) { c.C0 = 4 }, &plan)
	r.eps[1].SetHandler(func(_, _ int, _ []byte) {})
	sent := 0
	var fill func()
	fill = func() {
		for sent < 100 && r.eps[0].Send(1, 512, nil) {
			sent++
		}
	}
	r.eps[0].SetOnCanSend(fill)
	fill()
	r.eng.Run()
	dst, wedged := r.eps[0].Stalled()
	if !wedged || dst != 1 {
		t.Fatalf("Stalled() = (%d, %v), want (1, true) after lossy run", dst, wedged)
	}
	if _, ok := r.eps[1].Stalled(); ok {
		t.Fatal("idle receiver reported a stall")
	}
}
