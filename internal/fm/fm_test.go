package fm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"gangfm/internal/chaos"
	"gangfm/internal/lanai"
	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

func TestAllocatePartitionedFormulas(t *testing.T) {
	// Paper geometry: send 252, recv 668 packets, p=16 processors.
	cases := []struct {
		n                int
		wantRecv, wantC0 int
	}{
		{1, 668, 41}, // 668/16 = 41
		{2, 334, 10}, // 334/(2*16) = 10
		{3, 222, 4},  // 222/48 = 4
		{4, 167, 2},  // 167/64 = 2
		{5, 133, 1},
		{6, 111, 1},
		{7, 95, 0}, // the communication cliff
		{8, 83, 0}, // paper: "no communication is even possible for as few as 8 contexts"
	}
	for _, tc := range cases {
		a, err := Allocate(Partitioned, 252, 668, tc.n, 16)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if a.RecvSlots != tc.wantRecv {
			t.Errorf("n=%d: RecvSlots=%d, want %d", tc.n, a.RecvSlots, tc.wantRecv)
		}
		if a.C0 != tc.wantC0 {
			t.Errorf("n=%d: C0=%d, want %d", tc.n, a.C0, tc.wantC0)
		}
		if a.SendSlots != 252/tc.n {
			t.Errorf("n=%d: SendSlots=%d, want %d", tc.n, a.SendSlots, 252/tc.n)
		}
	}
}

func TestAllocateSwitchedFormulas(t *testing.T) {
	// Switched: full buffers and C0 = Br/p regardless of context count.
	for n := 1; n <= 8; n++ {
		a, err := Allocate(Switched, 252, 668, n, 16)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if a.SendSlots != 252 || a.RecvSlots != 668 || a.C0 != 41 {
			t.Errorf("n=%d: got %+v, want full buffers and C0=41", n, a)
		}
	}
}

func TestAllocateCreditGainIsNSquared(t *testing.T) {
	// Paper §3.3: "these adjustments increased the maximal credit number
	// by a factor of n^2".
	for _, n := range []int{2, 3, 4} {
		recv := 160 * n * n // divisible by n and by n*16, so no floor noise
		part, _ := Allocate(Partitioned, 252, recv, n, 16)
		sw, _ := Allocate(Switched, 252, recv, n, 16)
		if sw.C0 != part.C0*n*n {
			t.Errorf("n=%d: switched C0=%d, partitioned C0=%d, want n^2 ratio", n, sw.C0, part.C0)
		}
	}
}

func TestAllocateErrors(t *testing.T) {
	if _, err := Allocate(Partitioned, 252, 668, 0, 16); err == nil {
		t.Error("zero contexts should fail")
	}
	if _, err := Allocate(Partitioned, 252, 668, 300, 16); err == nil {
		t.Error("more contexts than send slots should fail")
	}
	if _, err := Allocate(Partitioned, 0, 668, 1, 16); err == nil {
		t.Error("zero buffers should fail")
	}
	if _, err := Allocate(Switched, 252, 668, 1, 0); err == nil {
		t.Error("zero processors should fail")
	}
	if _, err := Allocate(Policy(42), 252, 668, 1, 16); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestPolicyString(t *testing.T) {
	if Partitioned.String() != "partitioned" || Switched.String() != "switched" {
		t.Fatal("policy names")
	}
}

// jobRig wires a single job across `nodes` nodes with one endpoint per
// node, using the switched allocation unless cfgFn overrides.
type jobRig struct {
	eng  *sim.Engine
	net  *myrinet.Network
	nics []*lanai.NIC
	cpus []*sim.Resource
	eps  []*Endpoint
}

func newJobRig(t *testing.T, nodes int, mutate func(*Config), plan *chaos.Plan) *jobRig {
	t.Helper()
	eng := sim.NewEngine()
	net := myrinet.New(eng, myrinet.DefaultConfig(nodes))
	if plan != nil {
		net.SetInjector(chaos.NewInjector(eng, *plan))
	}
	mem := memmodel.Default()
	r := &jobRig{eng: eng, net: net}
	alloc, err := Allocate(Switched, 252, 668, 1, nodes)
	if err != nil {
		t.Fatal(err)
	}
	nodeOf := make([]myrinet.NodeID, nodes)
	for i := range nodeOf {
		nodeOf[i] = myrinet.NodeID(i)
	}
	for i := 0; i < nodes; i++ {
		nic := lanai.New(eng, net, mem, lanai.DefaultConfig(myrinet.NodeID(i)))
		cpu := sim.NewResource(eng, fmt.Sprintf("cpu%d", i))
		cfg := DefaultConfig(alloc.C0)
		if mutate != nil {
			mutate(&cfg)
		}
		ep, err := NewEndpoint(eng, nic, cpu, mem, cfg, 1, i, nodeOf)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := nic.Register(1, i, alloc.SendSlots, alloc.RecvSlots, lanai.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		ep.Attach(ctx)
		ep.Resume()
		r.nics = append(r.nics, nic)
		r.cpus = append(r.cpus, cpu)
		r.eps = append(r.eps, ep)
	}
	return r
}

func TestSendReceiveIntegrity(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	payload := make([]byte, 4000) // > 2 fragments
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	gotSize := 0
	r.eps[1].SetHandler(func(src, size int, data []byte) {
		if src != 0 {
			t.Errorf("src = %d, want 0", src)
		}
		gotSize = size
		got = data
	})
	if !r.eps[0].Send(1, len(payload), payload) {
		t.Fatal("send rejected")
	}
	r.eng.Run()
	if gotSize != len(payload) {
		t.Fatalf("received size %d, want %d", gotSize, len(payload))
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted in transit")
	}
	st := r.eps[0].Stats()
	wantFrags := (4000 + myrinet.MaxPayload - 1) / myrinet.MaxPayload
	if st.PacketsSent != uint64(wantFrags) {
		t.Fatalf("sent %d packets, want %d", st.PacketsSent, wantFrags)
	}
}

func TestManyMessagesOrdered(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	var order []int
	r.eps[1].SetHandler(func(_, size int, _ []byte) { order = append(order, size) })
	const n = 50
	sent := 0
	var fill func()
	fill = func() {
		for sent < n && r.eps[0].Send(1, sent+1, nil) {
			sent++
		}
	}
	r.eps[0].SetOnCanSend(fill)
	fill()
	r.eng.Run()
	if len(order) != n {
		t.Fatalf("received %d messages, want %d", len(order), n)
	}
	for i, sz := range order {
		if sz != i+1 {
			t.Fatalf("message order violated at %d: size %d", i, sz)
		}
	}
}

func TestOutboxBackpressure(t *testing.T) {
	r := newJobRig(t, 2, func(c *Config) { c.OutboxCap = 4 }, nil)
	accepted := 0
	for i := 0; i < 10; i++ {
		if r.eps[0].Send(1, 100, nil) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d, want outbox cap 4", accepted)
	}
	canSendFired := 0
	r.eps[0].SetOnCanSend(func() { canSendFired++ })
	r.eng.Run()
	if canSendFired == 0 {
		t.Fatal("OnCanSend never fired")
	}
}

func TestZeroCreditsNoCommunication(t *testing.T) {
	// The Figure 5 cliff: C0 = 0 means the sender can never inject.
	r := newJobRig(t, 2, func(c *Config) { c.C0 = 0 }, nil)
	delivered := 0
	r.eps[1].SetHandler(func(_, _ int, _ []byte) { delivered++ })
	r.eps[0].Send(1, 100, nil)
	r.eng.Run()
	if delivered != 0 {
		t.Fatal("message delivered with zero credits")
	}
	if r.eps[0].Stats().CreditStalls == 0 {
		t.Fatal("expected a credit stall")
	}
}

func TestCreditStallAndRefillRecovery(t *testing.T) {
	// C0=2 forces repeated stalls; refills must keep traffic moving.
	r := newJobRig(t, 2, func(c *Config) { c.C0 = 2 }, nil)
	delivered := 0
	r.eps[1].SetHandler(func(_, _ int, _ []byte) { delivered++ })
	const n = 30
	sent := 0
	var fill func()
	fill = func() {
		for sent < n && r.eps[0].Send(1, 512, nil) {
			sent++
		}
	}
	r.eps[0].SetOnCanSend(fill)
	fill()
	r.eng.Run()
	if delivered != n {
		t.Fatalf("delivered %d, want %d", delivered, n)
	}
	if r.eps[0].Stats().CreditStalls == 0 {
		t.Fatal("expected credit stalls with C0=2")
	}
	if r.eps[1].Stats().RefillsSent == 0 {
		t.Fatal("receiver sent no refills")
	}
}

func TestPiggybackReducesExplicitRefills(t *testing.T) {
	// Bidirectional traffic piggybacks credits on data packets; the
	// number of explicit refills should drop well below the one-way case.
	run := func(bidi bool) uint64 {
		r := newJobRig(t, 2, func(c *Config) { c.C0 = 8 }, nil)
		const n = 60
		for _, ep := range r.eps {
			ep := ep
			sent := 0
			send := func() bool {
				if ep.Rank() == 1 && !bidi {
					return false
				}
				dst := 1 - ep.Rank()
				for sent < n && ep.Send(dst, 512, nil) {
					sent++
				}
				return true
			}
			ep.SetOnCanSend(func() { send() })
			send()
		}
		r.eng.Run()
		return r.eps[1].Stats().RefillsSent
	}
	oneWay := run(false)
	twoWay := run(true)
	if oneWay == 0 {
		t.Fatal("one-way traffic needs explicit refills")
	}
	if twoWay >= oneWay {
		t.Fatalf("piggybacking did not reduce explicit refills: one-way=%d two-way=%d", oneWay, twoWay)
	}
}

func TestSuspendAccumulatesResumDrains(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	delivered := 0
	r.eps[1].SetHandler(func(_, _ int, _ []byte) { delivered++ })
	r.eps[1].Suspend()
	for i := 0; i < 5; i++ {
		r.eps[0].Send(1, 200, nil)
	}
	r.eng.Run()
	if delivered != 0 {
		t.Fatal("suspended process consumed packets")
	}
	backlog := r.eps[1].Context().RecvQ.Len()
	if backlog != 5 {
		t.Fatalf("receive queue backlog = %d, want 5", backlog)
	}
	r.eps[1].Resume()
	r.eng.Run()
	if delivered != 5 {
		t.Fatalf("delivered %d after resume, want 5", delivered)
	}
}

func TestSuspendedSenderProducesNothing(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	r.eps[0].Suspend()
	r.eps[0].Send(1, 100, nil) // queued in outbox only
	r.eng.Run()
	if r.eps[0].Stats().PacketsSent != 0 {
		t.Fatal("suspended sender injected a packet")
	}
	r.eps[0].Resume()
	r.eng.Run()
	if r.eps[0].Stats().PacketsSent != 1 {
		t.Fatal("resume did not restart the pump")
	}
}

func TestCreditsNeverExceedC0(t *testing.T) {
	// Bidirectional random-ish traffic; the endpoint itself panics if
	// credits exceed C0, so surviving the run is the assertion. Also
	// check non-negativity here.
	r := newJobRig(t, 3, func(c *Config) { c.C0 = 3 }, nil)
	for _, ep := range r.eps {
		ep := ep
		sent := 0
		var fill func()
		fill = func() {
			for sent < 40 {
				dst := (ep.Rank() + 1 + sent%2) % 3
				if dst == ep.Rank() {
					dst = (dst + 1) % 3
				}
				if !ep.Send(dst, 100+sent*13, nil) {
					return
				}
				sent++
			}
		}
		ep.SetOnCanSend(fill)
		fill()
	}
	r.eng.Run()
	for _, ep := range r.eps {
		for peer := 0; peer < 3; peer++ {
			if c := ep.Credits(peer); c < 0 || c > 3 {
				t.Fatalf("rank %d credits toward %d = %d, outside [0,3]", ep.Rank(), peer, c)
			}
		}
	}
}

func TestPacketLossCorruptsFlowControl(t *testing.T) {
	// Paper §2.2: "a single packet loss can mess up the credit counters
	// and the entire flow control algorithm. FM does not have a
	// retransmission mechanism." With loss injected, the transfer stalls
	// and never completes.
	plan := chaos.Loss(12345, 0.2)
	r := newJobRig(t, 2, func(c *Config) { c.C0 = 4 }, &plan)
	delivered := 0
	r.eps[1].SetHandler(func(_, _ int, _ []byte) { delivered++ })
	const n = 100
	sent := 0
	var fill func()
	fill = func() {
		for sent < n && r.eps[0].Send(1, 512, nil) {
			sent++
		}
	}
	r.eps[0].SetOnCanSend(fill)
	fill()
	r.eng.Run()
	if delivered >= n {
		t.Fatalf("all %d messages delivered despite 20%% loss and no retransmission", n)
	}
	// The sender must be wedged: out of credits with messages pending.
	if r.eps[0].Credits(1) != 0 {
		t.Logf("credits remaining: %d (loss pattern dependent)", r.eps[0].Credits(1))
	}
}

func TestRefillThresholdDefault(t *testing.T) {
	c := Config{C0: 10}
	if c.refillThreshold() != 5 {
		t.Fatalf("default threshold = %d, want C0/2", c.refillThreshold())
	}
	c = Config{C0: 1}
	if c.refillThreshold() != 1 {
		t.Fatalf("threshold floor = %d, want 1", c.refillThreshold())
	}
	c = Config{C0: 10, RefillThreshold: 3}
	if c.refillThreshold() != 3 {
		t.Fatal("explicit threshold ignored")
	}
}

func TestSendValidation(t *testing.T) {
	r := newJobRig(t, 2, nil, nil)
	for _, fn := range []func(){
		func() { r.eps[0].Send(0, 10, nil) },             // self
		func() { r.eps[0].Send(5, 10, nil) },             // out of range
		func() { r.eps[0].Send(1, 0, nil) },              // empty
		func() { r.eps[0].Send(1, 10, make([]byte, 3)) }, // size mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBandwidthApproximatesPaperPeak(t *testing.T) {
	// One context, switched allocation, large messages: the paper's
	// Figures 5 and 6 peak around 70-80 MB/s. Our host cost model should
	// land in that band.
	r := newJobRig(t, 2, nil, nil)
	const msgSize = 64 * 1024
	const nMsgs = 64
	var doneAt sim.Time
	received := 0
	r.eps[1].SetHandler(func(_, size int, _ []byte) {
		received++
		if received == nMsgs {
			doneAt = r.eng.Now()
		}
	})
	sent := 0
	var fill func()
	fill = func() {
		for sent < nMsgs && r.eps[0].Send(1, msgSize, nil) {
			sent++
		}
	}
	r.eps[0].SetOnCanSend(fill)
	fill()
	r.eng.Run()
	if received != nMsgs {
		t.Fatalf("received %d, want %d", received, nMsgs)
	}
	bytes := float64(msgSize) * nMsgs
	secs := sim.DefaultClock.ToDuration(doneAt).Seconds()
	mbs := bytes / secs / 1e6
	if mbs < 55 || mbs > 90 {
		t.Fatalf("peak bandwidth %.1f MB/s, want ~70 (55-90)", mbs)
	}
}

// Property: messages of arbitrary sizes arrive intact and in order.
func TestMessageIntegrityProperty(t *testing.T) {
	prop := func(sizes []uint16, seed uint64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		r := newJobRigQuiet(2)
		rng := sim.NewRand(seed)
		var want [][]byte
		for _, s := range sizes {
			size := int(s)%5000 + 1
			buf := make([]byte, size)
			for i := range buf {
				buf[i] = byte(rng.Uint64())
			}
			want = append(want, buf)
		}
		var got [][]byte
		r.eps[1].SetHandler(func(_, _ int, data []byte) {
			cp := make([]byte, len(data))
			copy(cp, data)
			got = append(got, cp)
		})
		i := 0
		var fill func()
		fill = func() {
			for i < len(want) && r.eps[0].Send(1, len(want[i]), want[i]) {
				i++
			}
		}
		r.eps[0].SetOnCanSend(fill)
		fill()
		r.eng.Run()
		if len(got) != len(want) {
			return false
		}
		for j := range want {
			if !bytes.Equal(got[j], want[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// newJobRigQuiet is newJobRig without *testing.T, for quick properties.
func newJobRigQuiet(nodes int) *jobRig {
	eng := sim.NewEngine()
	net := myrinet.New(eng, myrinet.DefaultConfig(nodes))
	mem := memmodel.Default()
	r := &jobRig{eng: eng, net: net}
	alloc, _ := Allocate(Switched, 252, 668, 1, nodes)
	nodeOf := make([]myrinet.NodeID, nodes)
	for i := range nodeOf {
		nodeOf[i] = myrinet.NodeID(i)
	}
	for i := 0; i < nodes; i++ {
		nic := lanai.New(eng, net, mem, lanai.DefaultConfig(myrinet.NodeID(i)))
		cpu := sim.NewResource(eng, fmt.Sprintf("cpu%d", i))
		ep, _ := NewEndpoint(eng, nic, cpu, mem, DefaultConfig(alloc.C0), 1, i, nodeOf)
		ctx, _ := nic.Register(1, i, alloc.SendSlots, alloc.RecvSlots, lanai.Hooks{})
		ep.Attach(ctx)
		ep.Resume()
		r.nics = append(r.nics, nic)
		r.cpus = append(r.cpus, cpu)
		r.eps = append(r.eps, ep)
	}
	return r
}
