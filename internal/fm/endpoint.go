package fm

import (
	"fmt"

	"gangfm/internal/lanai"
	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// Config holds the host-side cost parameters and flow-control settings of
// an endpoint.
type Config struct {
	// SendOverhead is the fixed host cost per injected packet (call
	// overhead, header build, credit bookkeeping), on top of the
	// write-combined copy of the packet into the card's send queue.
	SendOverhead sim.Time
	// RecvOverhead is the fixed host cost per extracted packet (header
	// decode, handler dispatch, credit bookkeeping). FM handlers run on
	// the data in place, so no per-byte copy is charged unless
	// CopyOnReceive is set.
	RecvOverhead sim.Time
	// RefillOverhead is the host cost of emitting an explicit refill.
	RefillOverhead sim.Time
	// CopyOnReceive charges a host-RAM copy of the payload on extraction
	// (for workloads whose handlers copy out; ablation knob).
	CopyOnReceive bool

	// C0 is the initial and maximal per-peer credit count.
	C0 int
	// RefillThreshold is the consumed-packet count that triggers an
	// explicit refill (the "low water mark" logic of §2.2). Zero means
	// max(1, C0/2).
	RefillThreshold int
	// OutboxCap bounds the number of application messages queued in the
	// library awaiting injection. Zero means 16.
	OutboxCap int
}

// DefaultConfig returns host costs calibrated for the 200 MHz Pentium Pro
// (peak one-way bandwidth lands at ~70 MB/s, matching Figure 5/6 at one
// context) and the credit count c0.
func DefaultConfig(c0 int) Config {
	return Config{
		SendOverhead:   300, // 1.5 us per FM_send packet
		RecvOverhead:   600, // 3 us per FM_extract packet
		RefillOverhead: 250,
		C0:             c0,
	}
}

func (c *Config) refillThreshold() int {
	if c.RefillThreshold > 0 {
		return c.RefillThreshold
	}
	t := c.C0 / 2
	if t < 1 {
		t = 1
	}
	return t
}

func (c *Config) outboxCap() int {
	if c.OutboxCap > 0 {
		return c.OutboxCap
	}
	return 16
}

// Stats counts endpoint activity.
type Stats struct {
	MessagesSent     uint64
	MessagesRecvd    uint64
	PacketsSent      uint64
	PacketsRecvd     uint64
	PayloadBytesSent uint64
	PayloadBytesRecv uint64
	RefillsSent      uint64
	RefillsRecvd     uint64
	CreditStalls     uint64
	SendQFullStalls  uint64
}

// outMsg is an application message queued for injection.
type outMsg struct {
	dst     int
	size    int
	payload []byte
	frag    int
	nfrags  int
	msgID   uint64
}

// partial is an in-progress reassembly from one source.
type partial struct {
	msgID   uint64
	size    int
	got     int
	nfrags  int
	payload []byte
}

// Endpoint is one process's FM library state: the user-level communication
// interface bound to a hardware context on the local card.
type Endpoint struct {
	eng *sim.Engine
	nic *lanai.NIC
	ctx *lanai.Context
	mem *memmodel.Model
	cpu *sim.Resource
	cfg Config

	job    myrinet.JobID
	rank   int
	nodeOf []myrinet.NodeID // rank -> node

	running bool
	killed  bool

	sendCredits []int // per peer rank
	consumed    []int // per peer rank, consumed since last refill sent

	// outbox is a fixed ring (len == OutboxCap): outHead indexes the
	// oldest queued message, outN counts them. A ring instead of a
	// sliding slice keeps the steady-state send path allocation-free.
	outbox    []outMsg
	outHead   int
	outN      int
	nextMsgID []uint64
	pumping   bool
	draining  bool
	// pumpFrag carries the in-flight fragment length to pumpDoneFn — the
	// one shared injection-complete callback (at most one injection is in
	// progress per endpoint, guarded by pumping).
	pumpFrag   int
	pumpDoneFn func()
	// drainN carries the in-flight batch size to drainDoneFn (one batch at
	// a time, guarded by draining).
	drainN      int
	drainDoneFn func()
	// refillQ holds the peers whose refill host-cost grants are pending,
	// in grant order (the CPU resource is FIFO); refillDoneFn pops from it.
	refillQ     []int
	refillHead  int
	refillGrant func()
	hooks       lanai.Hooks

	reasm map[int]*partial // src rank -> in-progress message
	// partialPool recycles reassembly records. Payload arrays are NOT
	// pooled: the delivered slice's ownership transfers to the handler,
	// which may retain it.
	partialPool []*partial

	handler      func(src int, size int, payload []byte)
	onCanSend    func()
	flushWaiters []func()

	// deliveredBytes counts payload handed to the message handler; together
	// with the bytes parked in reasm it must always equal PayloadBytesRecv
	// (the reassembly byte-accounting invariant the chaos auditor checks).
	deliveredBytes uint64

	stats Stats
}

// NewEndpoint builds the library state for process rank of job, running on
// the host whose CPU is cpu, with peers located per nodeOf. The endpoint
// starts suspended; Attach it to a context and call Resume.
func NewEndpoint(eng *sim.Engine, nic *lanai.NIC, cpu *sim.Resource, mem *memmodel.Model,
	cfg Config, job myrinet.JobID, rank int, nodeOf []myrinet.NodeID) (*Endpoint, error) {
	if rank < 0 || rank >= len(nodeOf) {
		return nil, fmt.Errorf("fm: rank %d out of range for job of size %d", rank, len(nodeOf))
	}
	if cfg.C0 < 0 {
		return nil, fmt.Errorf("fm: negative credit count %d", cfg.C0)
	}
	e := &Endpoint{
		eng: eng, nic: nic, mem: mem, cpu: cpu, cfg: cfg,
		job: job, rank: rank, nodeOf: nodeOf,
		sendCredits: make([]int, len(nodeOf)),
		consumed:    make([]int, len(nodeOf)),
		nextMsgID:   make([]uint64, len(nodeOf)),
		outbox:      make([]outMsg, cfg.outboxCap()),
		reasm:       make(map[int]*partial),
	}
	for i := range e.sendCredits {
		e.sendCredits[i] = cfg.C0
	}
	e.pumpDoneFn = func() {
		e.pumping = false
		e.completeSend(e.pumpFrag)
		e.pump()
	}
	e.drainDoneFn = e.drainDone
	e.refillGrant = e.refillGranted
	e.hooks = lanai.Hooks{
		OnArrive:    func(*lanai.Context) { e.drain() },
		OnRefill:    func(_ *lanai.Context, p *myrinet.Packet) { e.refillArrived(p) },
		OnSendSpace: func(*lanai.Context) { e.pump() },
	}
	return e, nil
}

// outSlot maps the i-th oldest outbox message to its ring index.
func (e *Endpoint) outSlot(i int) int {
	i += e.outHead
	if i >= len(e.outbox) {
		i -= len(e.outbox)
	}
	return i
}

// Hooks returns the NIC callbacks that bind this endpoint to a hardware
// context. The glueFM layer installs them at COMM_init_job / switch-in.
// The hook set is built once in NewEndpoint: Attach runs at every
// switch-in, so rebuilding the closures there would allocate per switch.
func (e *Endpoint) Hooks() lanai.Hooks { return e.hooks }

// Attach binds the endpoint to its hardware context.
func (e *Endpoint) Attach(ctx *lanai.Context) {
	e.ctx = ctx
	ctx.Hooks = e.Hooks()
}

// Context returns the attached hardware context (nil before Attach).
func (e *Endpoint) Context() *lanai.Context { return e.ctx }

// Rank returns the process's rank within its job.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the number of processes in the job.
func (e *Endpoint) Size() int { return len(e.nodeOf) }

// Job returns the job ID.
func (e *Endpoint) Job() myrinet.JobID { return e.job }

// Stats returns a snapshot of the endpoint counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Credits returns the current send credits toward peer dst (tests and the
// failure-injection experiments read this).
func (e *Endpoint) Credits(dst int) int { return e.sendCredits[dst] }

// Owed returns the number of packets consumed from peer since the last
// refill was sent to it — credits this endpoint is holding back. At
// quiescence, Credits on one side plus Owed on the other sums to C0:
// credit conservation, the invariant a single lost packet destroys.
func (e *Endpoint) Owed(peer int) int { return e.consumed[peer] }

// Running reports whether the process is scheduled.
func (e *Endpoint) Running() bool { return e.running }

// SetHandler registers the message-arrival callback. The payload slice is
// nil for size-only workloads.
func (e *Endpoint) SetHandler(h func(src int, size int, payload []byte)) { e.handler = h }

// SetOnCanSend registers a callback fired when outbox space frees up after
// Send returned false.
func (e *Endpoint) SetOnCanSend(f func()) { e.onCanSend = f }

// CanSend reports whether the outbox can accept another message.
func (e *Endpoint) CanSend() bool { return e.outN < len(e.outbox) }

// Send queues a message of size bytes for dst. payload may be nil (the
// cost model keys off size); when non-nil its length must equal size and
// the bytes are delivered to the destination handler. Send reports whether
// the message was accepted; when false the caller should wait for
// OnCanSend. Sending to self or out of range panics: it is always an
// application bug.
func (e *Endpoint) Send(dst int, size int, payload []byte) bool {
	if dst < 0 || dst >= len(e.nodeOf) || dst == e.rank {
		panic(fmt.Sprintf("fm: rank %d sending to invalid destination %d", e.rank, dst))
	}
	if size <= 0 {
		panic("fm: message size must be positive")
	}
	if payload != nil && len(payload) != size {
		panic("fm: payload length does not match size")
	}
	if !e.CanSend() {
		return false
	}
	nfrags := (size + myrinet.MaxPayload - 1) / myrinet.MaxPayload
	e.outbox[e.outSlot(e.outN)] = outMsg{
		dst: dst, size: size, payload: payload,
		nfrags: nfrags, msgID: e.nextMsgID[dst],
	}
	e.outN++
	e.nextMsgID[dst]++
	e.pump()
	return true
}

// Suspend models SIGSTOP: the process stops producing and consuming. An
// operation already holding the CPU completes (the signal is delivered at
// the next return to user level).
func (e *Endpoint) Suspend() { e.running = false }

// Kill models SIGKILL: the process will never run again. Unlike Suspend,
// an operation already holding the CPU is abandoned rather than allowed to
// finish — the job's communication contexts are being torn down node by
// node, and a straggler packet injected after this node's queues were
// released would punch a hole in a still-live peer's fragment stream (the
// peer sees message n+1 while mid-reassembly of message n).
func (e *Endpoint) Kill() {
	e.running = false
	e.killed = true
}

// Resume models SIGCONT: the process resumes pumping and draining, and
// re-emits any refill that was deferred because the network was halted
// when it came due.
func (e *Endpoint) Resume() {
	if e.running || e.killed {
		return
	}
	e.running = true
	for peer := range e.consumed {
		if peer != e.rank && e.consumed[peer] >= e.cfg.refillThreshold() {
			e.sendRefill(peer)
		}
	}
	e.pump()
	e.drain()
}

// sendCost is the host time to inject one packet: fixed overhead plus the
// write-combined copy of header+payload into the card's send queue.
func (e *Endpoint) sendCost(wireBytes int) sim.Time {
	return e.cfg.SendOverhead + e.mem.CopyCycles(wireBytes, memmodel.HostRAM, memmodel.NICWC)
}

// recvCost is the host time to extract one packet.
func (e *Endpoint) recvCost(p *myrinet.Packet) sim.Time {
	c := e.cfg.RecvOverhead
	if e.cfg.CopyOnReceive {
		c += e.mem.CopyCycles(p.PayloadLen, memmodel.PinnedRAM, memmodel.HostRAM)
	}
	return c
}

// pump advances the send side: one packet per host-CPU grant, in strict
// message order (FM_send blocks the caller, so a message with no credits
// head-of-line-blocks the process).
func (e *Endpoint) pump() {
	if !e.running || e.pumping || e.ctx == nil || e.outN == 0 {
		return
	}
	m := &e.outbox[e.outHead]
	if e.sendCredits[m.dst] <= 0 {
		e.stats.CreditStalls++
		return // a refill arrival re-kicks the pump
	}
	if e.ctx.SendQ.Full() {
		e.stats.SendQFullStalls++
		return // OnSendSpace re-kicks the pump
	}
	fragLen := m.size - m.frag*myrinet.MaxPayload
	if fragLen > myrinet.MaxPayload {
		fragLen = myrinet.MaxPayload
	}
	e.pumping = true
	e.pumpFrag = fragLen
	e.cpu.Use(e.sendCost(fragLen+myrinet.HeaderSize), e.pumpDoneFn)
}

// completeSend finishes the injection whose host cost was just paid. It
// runs even if the process was suspended mid-operation — the packet was
// already being written when the signal arrived — but not if it was
// killed: a kill tears down the job's contexts, so the half-written
// packet is abandoned instead of injected post-mortem.
func (e *Endpoint) completeSend(fragLen int) {
	if e.outN == 0 || e.killed {
		return
	}
	m := &e.outbox[e.outHead]
	var chunk []byte
	if m.payload != nil {
		start := m.frag * myrinet.MaxPayload
		chunk = m.payload[start : start+fragLen]
	}
	pkt := e.nic.NewPacket()
	pkt.Type = myrinet.Data
	pkt.Src, pkt.Dst = e.nodeOf[e.rank], e.nodeOf[m.dst]
	pkt.Job, pkt.SrcRank, pkt.DstRank = e.job, e.rank, m.dst
	pkt.MsgID, pkt.Frag, pkt.NFrags = m.msgID, m.frag, m.nfrags
	pkt.PayloadLen, pkt.Payload = fragLen, chunk
	// Piggyback a refill for everything of theirs we consumed since the
	// last refill (paper §2.2).
	pkt.Credits = e.consumed[m.dst]
	e.consumed[m.dst] = 0
	e.sendCredits[m.dst]--
	e.stats.PacketsSent++
	e.stats.PayloadBytesSent += uint64(fragLen)
	if !e.nic.EnqueueSend(e.ctx, pkt) {
		// The pump checked SendQ.Full before paying the host cost;
		// between then and now only the scanner can run, and it only
		// frees slots. Treat overflow as a model invariant violation.
		panic("fm: send queue overflowed despite pump check")
	}
	m.frag++
	if m.frag == m.nfrags {
		e.stats.MessagesSent++
		*m = outMsg{} // drop the payload reference
		e.outHead = e.outSlot(1)
		e.outN--
		if e.outN == 0 {
			e.outHead = 0
		}
		if e.onCanSend != nil && e.CanSend() {
			e.onCanSend()
		}
		if e.outN == 0 && len(e.flushWaiters) > 0 {
			waiters := e.flushWaiters
			e.flushWaiters = nil
			for _, fn := range waiters {
				fn()
			}
		}
	}
}

// Flush invokes fn once every queued message has been injected into the
// card's send queue (the point at which FM_send would have returned for
// all of them). If the process is descheduled first, fn fires after it is
// rescheduled and the queue drains.
func (e *Endpoint) Flush(fn func()) {
	if e.outN == 0 && !e.pumping {
		e.eng.Schedule(0, fn)
		return
	}
	e.flushWaiters = append(e.flushWaiters, fn)
}

// drainBatch bounds how many pending packets one FM_extract call consumes.
const drainBatch = 16

// drain advances the receive side. FM_extract processes every pending
// packet in one call (batched here up to drainBatch per CPU grant), so a
// backlogged receive queue drains faster than it fills; in steady state
// the queue stays nearly empty, exactly as the paper observes (§3.2). The
// packets stay in the receive queue while being processed — they are
// "valid" for the purposes of the buffer switch — and are dequeued when
// the extraction completes.
func (e *Endpoint) drain() {
	if !e.running || e.draining || e.ctx == nil {
		return
	}
	n := e.ctx.RecvQ.Len()
	if n == 0 {
		return
	}
	if n > drainBatch {
		n = drainBatch
	}
	var cost sim.Time
	for i := 0; i < n; i++ {
		cost += e.recvCost(e.ctx.RecvQ.At(i))
	}
	e.draining = true
	e.drainN = n
	e.cpu.Use(cost, e.drainDoneFn)
}

// drainDone finishes the extraction whose host cost was just paid (the
// batch size rode along in drainN; only one batch is in flight at a time).
func (e *Endpoint) drainDone() {
	e.draining = false
	n := e.drainN
	for i := 0; i < n; i++ {
		got := e.nic.DequeueRecv(e.ctx)
		if got == nil {
			return // buffer was switched out from under a stale drain
		}
		e.consumePacket(got)
	}
	e.drain()
}

func (e *Endpoint) consumePacket(p *myrinet.Packet) {
	e.stats.PacketsRecvd++
	e.stats.PayloadBytesRecv += uint64(p.PayloadLen)
	if p.Credits > 0 {
		e.addCredits(p.SrcRank, p.Credits)
	}
	src := p.SrcRank
	e.consumed[src]++
	e.reassemble(p)
	e.nic.FreePacket(p)
	if e.consumed[src] >= e.cfg.refillThreshold() {
		e.sendRefill(src)
	}
}

func (e *Endpoint) reassemble(p *myrinet.Packet) {
	src := p.SrcRank
	pa := e.reasm[src]
	if pa == nil || pa.msgID != p.MsgID {
		if pa != nil && pa.got != 0 {
			panic(fmt.Sprintf("fm: interleaved fragments from rank %d (msg %d arrived during msg %d)",
				src, p.MsgID, pa.msgID))
		}
		pa = e.newPartial(p.MsgID, p.NFrags)
		e.reasm[src] = pa
	}
	if p.Frag != pa.got {
		panic(fmt.Sprintf("fm: fragment %d from rank %d arrived out of order (want %d)", p.Frag, src, pa.got))
	}
	pa.got++
	pa.size += p.PayloadLen
	if p.Payload != nil {
		pa.payload = append(pa.payload, p.Payload...)
	}
	if pa.got == pa.nfrags {
		delete(e.reasm, src)
		e.stats.MessagesRecvd++
		e.deliveredBytes += uint64(pa.size)
		payload := pa.payload
		size := pa.size
		// The payload array's ownership passes to the handler (which may
		// retain the slice); only the record itself is recycled.
		pa.payload = nil
		e.partialPool = append(e.partialPool, pa)
		if e.handler != nil {
			e.handler(src, size, payload)
		}
	}
}

// newPartial takes a reassembly record from the pool (or allocates one).
func (e *Endpoint) newPartial(msgID uint64, nfrags int) *partial {
	if n := len(e.partialPool); n > 0 {
		pa := e.partialPool[n-1]
		e.partialPool = e.partialPool[:n-1]
		*pa = partial{msgID: msgID, nfrags: nfrags}
		return pa
	}
	return &partial{msgID: msgID, nfrags: nfrags}
}

func (e *Endpoint) addCredits(peer, n int) {
	e.sendCredits[peer] += n
	if e.sendCredits[peer] > e.cfg.C0 {
		panic(fmt.Sprintf("fm: credits toward rank %d exceed C0=%d — refill accounting corrupt",
			peer, e.cfg.C0))
	}
	e.pump()
}

// sendRefill emits an explicit refill to peer. The owed count is consumed
// only at the moment of injection: if the process is descheduled or the
// network halted before the host operation completes, the refill is
// deferred (and re-issued on Resume) rather than injected into a flushed
// network, where it would arrive after the peer's buffers were switched
// and its credits lost forever.
func (e *Endpoint) sendRefill(peer int) {
	if e.consumed[peer] == 0 {
		return
	}
	// The CPU resource grants in FIFO order, so the pending-peer queue and
	// the grant callbacks pair up positionally — no closure needed.
	e.refillQ = append(e.refillQ, peer)
	e.cpu.Use(e.cfg.RefillOverhead, e.refillGrant)
}

// refillGranted runs when the host cost of the oldest pending refill has
// been paid.
func (e *Endpoint) refillGranted() {
	peer := e.refillQ[e.refillHead]
	e.refillHead++
	if e.refillHead == len(e.refillQ) {
		e.refillQ = e.refillQ[:0]
		e.refillHead = 0
	}
	n := e.consumed[peer]
	if n == 0 || !e.running || e.nic.Halted() {
		return
	}
	e.consumed[peer] = 0
	e.stats.RefillsSent++
	e.nic.SendRefill(e.job, e.rank, peer, e.nodeOf[peer], n)
}

func (e *Endpoint) refillArrived(p *myrinet.Packet) {
	e.stats.RefillsRecvd++
	e.addCredits(p.SrcRank, p.Credits)
}

// C0 returns the configured per-peer credit maximum.
func (e *Endpoint) C0() int { return e.cfg.C0 }

// Stalled reports whether the endpoint is head-of-line blocked on credits:
// a message is queued, no injection is in progress, and the head message's
// destination has no send credits. The chaos auditor combines this with the
// network's drop ledger to tell a loss-induced permanent stall (paper §2.2)
// from an ordinary transient window closure.
func (e *Endpoint) Stalled() (dst int, ok bool) {
	if e.outN == 0 || e.pumping {
		return 0, false
	}
	m := &e.outbox[e.outHead]
	if e.sendCredits[m.dst] > 0 {
		return 0, false
	}
	return m.dst, true
}

// AuditInvariants checks the endpoint-local protocol invariants and reports
// each breach. It is read-only and safe to call at any instant:
//
//   - send credits toward every peer stay within [0, C0];
//   - consumed-since-refill counts stay within [0, C0] (a peer cannot have
//     sent more packets than its window without a refill in between);
//   - every payload byte received is either delivered to the handler or
//     parked in an in-progress reassembly — bytes never vanish.
func (e *Endpoint) AuditInvariants(report func(invariant, detail string)) {
	for peer := range e.sendCredits {
		if peer == e.rank {
			continue
		}
		if c := e.sendCredits[peer]; c < 0 || c > e.cfg.C0 {
			report("credit-bounds", fmt.Sprintf(
				"job %d rank %d holds %d credits toward rank %d (C0=%d)",
				e.job, e.rank, c, peer, e.cfg.C0))
		}
		if o := e.consumed[peer]; o < 0 || o > e.cfg.C0 {
			report("credit-bounds", fmt.Sprintf(
				"job %d rank %d owes %d credits to rank %d (C0=%d)",
				e.job, e.rank, o, peer, e.cfg.C0))
		}
	}
	var pending uint64
	for _, pa := range e.reasm {
		pending += uint64(pa.size)
	}
	if e.stats.PayloadBytesRecv != e.deliveredBytes+pending {
		report("byte-accounting", fmt.Sprintf(
			"job %d rank %d received %d payload bytes but delivered %d with %d pending reassembly",
			e.job, e.rank, e.stats.PayloadBytesRecv, e.deliveredBytes, pending))
	}
}
