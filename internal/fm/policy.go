// Package fm is the host-side Fast Messages library: per-process
// communication endpoints with message fragmentation, credit-based flow
// control with refills (explicit and piggybacked), and the host-CPU cost
// model that shapes achievable bandwidth.
//
// The two buffer-management policies under study live here:
//
//   - Partitioned (original FM 2.0): the card's send queue and the pinned
//     receive buffer are divided equally among the maximum number of
//     contexts n, giving C0 = Br/(n²·p) credits per peer (paper §2.2).
//   - Switched (the paper's contribution): the running process owns the
//     whole buffer; queue contents are swapped at gang context switches,
//     giving C0 = Br/p — an n² improvement (paper §3.3).
package fm

import "fmt"

// Policy selects how NIC buffer space is shared among time-sliced
// processes.
type Policy int

const (
	// Partitioned statically divides the buffers among MaxContexts.
	Partitioned Policy = iota
	// Switched gives the full buffers to the running process and swaps
	// contents at gang context switches.
	Switched
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Partitioned:
		return "partitioned"
	case Switched:
		return "switched"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Allocation describes the per-process buffer and credit assignment a
// policy produces.
type Allocation struct {
	// SendSlots and RecvSlots are the per-process queue capacities, in
	// packet slots.
	SendSlots int
	RecvSlots int
	// C0 is the initial (and maximal) number of send credits toward each
	// peer (paper §2.2 / §3.3).
	C0 int
}

// Allocate computes the per-process allocation.
//
// totalSend and totalRecv are the card's send-queue and the pinned receive
// buffer capacities in packets (252 and 668 in the paper). maxContexts is
// the fixed maximum number of FM processes per host (the gang matrix
// depth); the division is NOT adapted to the number currently active
// (paper §2.2). processors is the machine size p: credits assume the worst
// case of every node sending to one process.
func Allocate(policy Policy, totalSend, totalRecv, maxContexts, processors int) (Allocation, error) {
	if totalSend <= 0 || totalRecv <= 0 {
		return Allocation{}, fmt.Errorf("fm: non-positive buffer sizes %d/%d", totalSend, totalRecv)
	}
	if maxContexts <= 0 {
		return Allocation{}, fmt.Errorf("fm: need at least one context, got %d", maxContexts)
	}
	if processors <= 0 {
		return Allocation{}, fmt.Errorf("fm: need at least one processor, got %d", processors)
	}
	switch policy {
	case Partitioned:
		a := Allocation{
			SendSlots: totalSend / maxContexts,
			RecvSlots: totalRecv / maxContexts,
		}
		// C0 = B'r / (n·p) with B'r = Br/n, i.e. Br/(n²·p).
		a.C0 = a.RecvSlots / (maxContexts * processors)
		if a.SendSlots == 0 || a.RecvSlots == 0 {
			return Allocation{}, fmt.Errorf("fm: %d contexts leave no buffer space", maxContexts)
		}
		return a, nil
	case Switched:
		a := Allocation{
			SendSlots: totalSend,
			RecvSlots: totalRecv,
			C0:        totalRecv / processors,
		}
		if a.C0 == 0 {
			// C0 = Br/p rounds to zero: no process could ever send, and the
			// FM would wedge silently (observed at 1024 peers with the
			// paper's Br = 668). Reject the configuration instead.
			return Allocation{}, fmt.Errorf(
				"fm: switched credit split C0 = Br/p = %d/%d = 0 — machine too large for the receive buffer (p ≤ %d, or grow Br)",
				totalRecv, processors, totalRecv)
		}
		return a, nil
	default:
		return Allocation{}, fmt.Errorf("fm: unknown policy %d", int(policy))
	}
}
