package memmodel

import (
	"testing"
	"testing/quick"

	"gangfm/internal/sim"
)

func TestKindString(t *testing.T) {
	if HostRAM.String() != "HostRAM" || PinnedRAM.String() != "PinnedRAM" || NICWC.String() != "NICWC" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(99).String() != "Kind(?)" {
		t.Fatal("unknown kind string")
	}
}

func TestCopyRatesDirectional(t *testing.T) {
	m := Default()
	const n = 100_000
	hostHost := m.CopyCycles(n, HostRAM, HostRAM)
	toNIC := m.CopyCycles(n, HostRAM, NICWC)
	fromNIC := m.CopyCycles(n, NICWC, HostRAM)

	// Write-combining: writes to NIC are the fastest path, reads from
	// NIC the slowest, regular copies in between.
	if !(toNIC < hostHost && hostHost < fromNIC) {
		t.Fatalf("rate ordering violated: toNIC=%d hostHost=%d fromNIC=%d",
			toNIC, hostHost, fromNIC)
	}
}

func TestZeroBytesFree(t *testing.T) {
	m := Default()
	if m.CopyCycles(0, HostRAM, NICWC) != 0 {
		t.Error("zero-byte copy should cost 0")
	}
	if m.DMACycles(0) != 0 {
		t.Error("zero-byte DMA should cost 0")
	}
	if m.ScanCycles(0, HostRAM) != 0 {
		t.Error("zero-slot scan should cost 0")
	}
}

// TestPaperFullSwitchCost checks the calibration claim from DESIGN.md: a
// full buffer switch (save + restore of the ~400 KB NIC send queue and the
// 1 MB pinned receive queue) lands near the paper's "less than 85 ms
// (17,000,000 cycles)".
func TestPaperFullSwitchCost(t *testing.T) {
	m := Default()
	const (
		sendBuf = 252 * 1560 // ~393 KB on the NIC
		recvBuf = 668 * 1560 // ~1.04 MB pinned
	)
	total := m.CopyCycles(sendBuf, NICWC, HostRAM) + // save send queue (slow WC read)
		m.CopyCycles(sendBuf, HostRAM, NICWC) + // restore send queue
		m.CopyCycles(recvBuf, PinnedRAM, HostRAM) + // save receive queue
		m.CopyCycles(recvBuf, HostRAM, PinnedRAM) // restore receive queue

	ms := sim.DefaultClock.ToDuration(total).Seconds() * 1000
	if ms < 60 || ms > 85 {
		t.Fatalf("full switch = %.1f ms (%d cycles), paper says <85 ms and dominated by the send queue", ms, total)
	}

	// The send-queue save (WC read) must be the single most expensive
	// leg, despite the receive buffer being 2.5x larger (paper §4.2).
	saveSend := m.CopyCycles(sendBuf, NICWC, HostRAM)
	saveRecv := m.CopyCycles(recvBuf, PinnedRAM, HostRAM)
	if saveSend <= saveRecv {
		t.Fatalf("WC read-back should dominate: saveSend=%d saveRecv=%d", saveSend, saveRecv)
	}
}

// TestPaperImprovedSwitchCost checks the improved algorithm's calibration:
// scanning both queues plus copying ~100 valid packets should stay under
// the paper's 12.5 ms (2,500,000 cycles).
func TestPaperImprovedSwitchCost(t *testing.T) {
	m := Default()
	const pkt = 1560
	valid := 110 // paper Fig 8 tops out a bit above 100 receive packets
	total := m.ScanCycles(252, NICWC) + m.ScanCycles(668, PinnedRAM) +
		m.CopyCycles(10*pkt, NICWC, HostRAM) + // few valid send packets out
		m.CopyCycles(10*pkt, HostRAM, NICWC) + // and back in
		m.CopyCycles(valid*pkt, PinnedRAM, HostRAM) +
		m.CopyCycles(valid*pkt, HostRAM, PinnedRAM)
	if total > 2_500_000 {
		t.Fatalf("improved switch = %d cycles, paper says <2.5M", total)
	}
}

func TestScanKindCost(t *testing.T) {
	m := Default()
	host := m.ScanCycles(100, PinnedRAM)
	nic := m.ScanCycles(100, NICWC)
	if nic <= host {
		t.Fatalf("scanning NIC slots must cost more: nic=%d host=%d", nic, host)
	}
}

func TestDMAFasterThanHostCopy(t *testing.T) {
	m := Default()
	const n = 1560
	if m.DMACycles(n) >= m.CopyCycles(n, HostRAM, HostRAM) {
		t.Fatal("DMA engine should beat host memcpy")
	}
}

// Property: copy cost is monotone in size for every (src,dst) pair.
func TestCopyMonotoneProperty(t *testing.T) {
	m := Default()
	kinds := []Kind{HostRAM, PinnedRAM, NICWC}
	prop := func(a, b uint16) bool {
		small, big := int(a), int(a)+int(b)
		for _, s := range kinds {
			for _, d := range kinds {
				if m.CopyCycles(small, s, d) > m.CopyCycles(big, s, d) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: cost is additive to within the per-op setup overhead, i.e.
// splitting a copy in two never makes it cheaper.
func TestCopySplitNeverCheaperProperty(t *testing.T) {
	m := Default()
	prop := func(a, b uint16) bool {
		x, y := int(a)+1, int(b)+1
		whole := m.CopyCycles(x+y, NICWC, HostRAM)
		parts := m.CopyCycles(x, NICWC, HostRAM) + m.CopyCycles(y, NICWC, HostRAM)
		return parts >= whole
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
