// Package memmodel charges cycle costs for data movement between the three
// memory region kinds that matter in the paper's system:
//
//   - plain host RAM (process memory, backing stores),
//   - pinned DMA buffers in host RAM (the FM receive queue), and
//   - NIC RAM mapped with the P6 "write-combining" policy (the FM send
//     queue, which lives on the Myrinet card).
//
// Write-combining makes writes to the NIC fast (~80 MB/s measured in the
// paper) and reads from it slow (~14 MB/s), while regular host-to-host
// copies run at ~45 MB/s. These three constants are what make the paper's
// full buffer switch cost ~17M cycles (85 ms) even though the receive
// buffer is 2.5x larger than the send buffer: *reading back* the send
// queue over the write-combined mapping dominates.
package memmodel

import "gangfm/internal/sim"

// Kind identifies a memory region's access characteristics.
type Kind int

const (
	// HostRAM is ordinary pageable process memory.
	HostRAM Kind = iota
	// PinnedRAM is host memory pinned for DMA (the receive queue). Copy
	// performance is the same as HostRAM; the distinction exists because
	// pinned memory is the scarce resource the paper is managing.
	PinnedRAM
	// NICWC is memory on the Myrinet card mapped with the write-combining
	// policy: fast to write, very slow to read.
	NICWC
)

// String returns the region kind name.
func (k Kind) String() string {
	switch k {
	case HostRAM:
		return "HostRAM"
	case PinnedRAM:
		return "PinnedRAM"
	case NICWC:
		return "NICWC"
	default:
		return "Kind(?)"
	}
}

// Model holds the calibrated transfer rates. All rates are in decimal
// megabytes per second, as reported in the paper (§4.2).
type Model struct {
	Clock sim.Clock

	// HostCopyMBs is the regular memcpy bandwidth (~45 MB/s on the
	// 200 MHz Pentium Pro).
	HostCopyMBs float64
	// WCReadMBs is the bandwidth of reads from a write-combined region
	// (~14 MB/s).
	WCReadMBs float64
	// WCWriteMBs is the bandwidth of writes to a write-combined region
	// (~80 MB/s).
	WCWriteMBs float64
	// DMAMBs is the card's DMA engine bandwidth into pinned host memory.
	// The LANai 4.x DMA engine is faster than host copies; ~120 MB/s
	// keeps the host CPU the bottleneck, as observed in the paper.
	DMAMBs float64

	// ScanCyclesPerSlot is the cost of inspecting one queue slot header
	// during the improved (valid-packets-only) buffer switch. Scanning a
	// slot touches a couple of header words.
	ScanCyclesPerSlot sim.Time
	// WCScanCyclesPerSlot is the same for slots that live on the NIC,
	// where each header read crosses the slow write-combined mapping.
	WCScanCyclesPerSlot sim.Time
	// CopySetupCycles is the fixed per-copy-operation overhead.
	CopySetupCycles sim.Time
}

// Default returns the model calibrated to the paper's measurements.
func Default() *Model {
	return &Model{
		Clock:               sim.DefaultClock,
		HostCopyMBs:         45,
		WCReadMBs:           14,
		WCWriteMBs:          80,
		DMAMBs:              120,
		ScanCyclesPerSlot:   20,
		WCScanCyclesPerSlot: 120,
		CopySetupCycles:     200,
	}
}

// rate returns the governing MB/s for a copy from src to dst. The slow
// side of the write-combined mapping dominates whenever the NIC is
// involved; host<->host copies (pinned or not) run at the memcpy rate.
func (m *Model) rate(src, dst Kind) float64 {
	switch {
	case src == NICWC && dst == NICWC:
		// Never happens in the real system (card-to-card copies go
		// through the host); charge the pessimal read rate.
		return m.WCReadMBs
	case src == NICWC:
		return m.WCReadMBs
	case dst == NICWC:
		return m.WCWriteMBs
	default:
		return m.HostCopyMBs
	}
}

// CopyCycles returns the cycles the host CPU spends moving n bytes from a
// region of kind src to one of kind dst.
func (m *Model) CopyCycles(n int, src, dst Kind) sim.Time {
	if n <= 0 {
		return 0
	}
	return m.CopySetupCycles + m.Clock.CopyCycles(n, m.rate(src, dst))
}

// DMACycles returns the time the card's DMA engine needs to land n bytes
// in pinned host memory (or fetch them from it).
func (m *Model) DMACycles(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return m.Clock.CopyCycles(n, m.DMAMBs)
}

// ScanCycles returns the cost of walking slot headers looking for valid
// packets during the improved buffer switch.
func (m *Model) ScanCycles(slots int, kind Kind) sim.Time {
	if slots <= 0 {
		return 0
	}
	per := m.ScanCyclesPerSlot
	if kind == NICWC {
		per = m.WCScanCyclesPerSlot
	}
	return sim.Time(slots) * per
}
