// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the bandwidth surfaces of Figures 5 and 6, the context
// switch stage timings of Figures 7 and 9, the buffer-occupancy counts of
// Figure 8, the §4.2 overhead summary, and the §2.2/§3.3 credit formulas.
//
// Absolute message counts and quanta are scaled down from the paper's
// (500,000-message, 3-second-quantum) runs so a full reproduction finishes
// in seconds of real time; EXPERIMENTS.md records the scaling and the
// paper-vs-measured comparison. Every run is a deterministic simulation,
// so repeated invocations produce identical numbers.
package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gangfm/internal/sim"
)

// Params tunes an experiment run.
type Params struct {
	// Quick shrinks the sweep (fewer sizes, fewer node counts, fewer
	// messages) for smoke tests and -short benchmarks.
	Quick bool
	// Parallel bounds the number of concurrently simulated points;
	// 0 means one per available CPU (GOMAXPROCS). Each point owns an
	// independent engine, so sweeps are embarrassingly parallel.
	Parallel int
	// Shards, when > 1, runs each cluster-backed point on a sharded
	// engine group (parpar.Config.Shards); Workers sets the worker count
	// per group. The figures must come out identical either way — that is
	// the equivalence the sharded engine promises, and the root-package
	// parallel tests enforce it against the golden tables.
	Shards  int
	Workers int
}

func (p Params) parallel() int {
	if p.Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Parallel
}

// firedTotal accumulates engine event counts across sweep points, so the
// bench pipeline can report events/second for whole figures.
var firedTotal atomic.Uint64

func addFired(n uint64) { firedTotal.Add(n) }

// TakeFiredCount returns the number of simulation events fired by all
// sweep points since the last call, and resets the counter.
func TakeFiredCount() uint64 { return firedTotal.Swap(0) }

// forEach runs fn(i) for i in [0,n) on up to `parallel` goroutines. Work
// is claimed one index at a time off a shared atomic counter, so uneven
// point costs (the large-node-count, large-message corners of a sweep
// dominate) never leave a worker idle while another holds a backlog.
func forEach(parallel, n int, fn func(i int)) {
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// mbs converts (bytes, cycles) to MB/s on the default clock.
func mbs(bytes uint64, elapsed sim.Time) float64 {
	secs := sim.DefaultClock.ToDuration(elapsed).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(bytes) / secs / 1e6
}
