package experiments

import (
	"gangfm/internal/altsched"
	"gangfm/internal/core"
	"gangfm/internal/metrics"
	"gangfm/internal/myrinet"
	"gangfm/internal/parpar"
	"gangfm/internal/workload"
)

// SchemeRow compares one scheduling/communication coordination scheme
// (paper §5 related work) on the same two-job, two-node rotation workload.
type SchemeRow struct {
	Name string
	// CoordCycles is the mean per-switch coordination cost: the network
	// flush + release protocol for the paper's scheme, zero for
	// SHARE-style discard, the quiescence wait for PM-style.
	CoordCycles float64
	// CopyCycles is the mean buffer-switch cost (identical cost model
	// for all schemes).
	CopyCycles float64
	Switches   int
	// Discards counts packets the card dropped because their process was
	// not scheduled (only possible without a flush).
	Discards uint64
	// Retransmissions counts recovery traffic (zero for the paper's
	// scheme: the flush guarantees no loss, so FM needs no retries).
	Retransmissions uint64
	// Efficiency is delivered / transmitted packets.
	Efficiency float64
}

// Schemes runs the three coordination schemes over comparable rotating
// two-job workloads and tabulates switch cost vs recovery cost: the
// paper's flush trades a small coordination protocol for zero discards
// and zero retransmissions.
func Schemes(p Params) []SchemeRow {
	rows := make([]SchemeRow, 3)
	forEach(p.parallel(), 3, func(i int) {
		switch i {
		case 0:
			rows[0] = paperSchemeRow(p)
		case 1:
			rows[1] = altSchemeRow(p, altsched.ShareDiscard)
		case 2:
			rows[2] = altSchemeRow(p, altsched.PMQuiescence)
		}
	})
	return rows
}

func paperSchemeRow(p Params) SchemeRow {
	cfg := parpar.DefaultConfig(2)
	cfg.Slots = 2
	cfg.Mode = core.ValidOnly
	cfg.Quantum = 2_000_000
	cfg.CtrlJitter = 40_000
	cfg.CtrlSerialGap = 20_000
	cfg.ForkDelay = 50_000
	cluster, err := parpar.New(cfg)
	if err != nil {
		panic(err)
	}
	msgs := 6000
	if p.Quick {
		msgs = 2500
	}
	for i := 0; i < 2; i++ {
		if _, err := cluster.Submit(workload.Bandwidth("sch", msgs, myrinet.MaxPayload)); err != nil {
			panic(err)
		}
	}
	cluster.Run()
	addFired(cluster.Fired())

	row := SchemeRow{Name: "gang + flush + switch (paper)", Efficiency: 1}
	var coord, copies float64
	for _, hist := range cluster.SwitchHistory() {
		for _, s := range hist {
			if s.From == myrinet.NoJob || s.To == myrinet.NoJob {
				continue
			}
			row.Switches++
			coord += float64(s.Halt + s.Release)
			copies += float64(s.Copy)
		}
	}
	if row.Switches > 0 {
		row.CoordCycles = coord / float64(row.Switches)
		row.CopyCycles = copies / float64(row.Switches)
	}
	return row
}

func altSchemeRow(p Params, scheme altsched.Scheme) SchemeRow {
	cfg := altsched.DefaultClusterConfig(2)
	cfg.Scheme = scheme
	cfg.Quantum = 2_000_000
	cluster, err := altsched.NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	cluster.Start()
	msgs := 6000
	if p.Quick {
		msgs = 2500
	}
	for j := 1; j <= 2; j++ {
		cluster.Endpoints(myrinet.JobID(j))[0].Channel(1).Send(msgs)
	}
	dur := 30 * cfg.Quantum
	if p.Quick {
		dur = 15 * cfg.Quantum
	}
	cluster.RunFor(dur)
	addFired(cluster.Eng.Fired())
	rep := cluster.Collect()
	name := "discard + retransmit (SHARE)"
	if scheme == altsched.PMQuiescence {
		name = "quiescence flush (PM/SCore)"
	}
	return SchemeRow{
		Name:            name,
		CoordCycles:     rep.MeanWait,
		CopyCycles:      rep.MeanCopy,
		Switches:        rep.Switches,
		Discards:        rep.Discards,
		Retransmissions: rep.Retransmissions,
		Efficiency:      rep.Efficiency(),
	}
}

// SchemesTable renders the comparison.
func SchemesTable(rows []SchemeRow) *metrics.Table {
	t := metrics.NewTable(
		"Coordination schemes compared (two jobs rotating; related work, paper §5)",
		"scheme", "coordination [cyc]", "copy [cyc]", "switches", "discards", "retransmissions", "efficiency")
	for _, r := range rows {
		t.AddRow(r.Name, r.CoordCycles, r.CopyCycles, r.Switches, r.Discards, r.Retransmissions, r.Efficiency)
	}
	return t
}
