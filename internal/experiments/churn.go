package experiments

import (
	"gangfm/internal/metrics"
	"gangfm/internal/schedd"
	"gangfm/internal/schedeval"
	"gangfm/internal/sim"
)

// Churn runs the online-scheduling showdown: one seeded churn trace —
// arrivals plus mid-run kill, resize, and deadline directives — served by
// the schedd daemon in gang and batch mode and by the analytic fractional
// model (the Casanova–Stillwell–Vivien comparison). The three runs share
// one trace, so the grid isolates the serving discipline.
func Churn(p Params) []*schedd.Result {
	gen := schedeval.DefaultGenConfig(8)
	gen.Seed = 11
	gen.Jobs = 28
	gen.KillFraction = 0.15
	gen.ResizeFraction = 0.15
	gen.DeadlineFraction = 0.25
	if p.Quick {
		gen.Jobs = 12
	}
	trace, err := schedeval.Generate(gen)
	if err != nil {
		panic(err)
	}
	cfg := schedd.DefaultConfig(8)
	cfg.Trace = trace
	cfg.Shards = p.Shards
	cfg.Workers = p.Workers
	rs, err := schedd.Showdown(cfg)
	if err != nil {
		panic(err)
	}
	for _, r := range rs {
		addFired(r.Events)
	}
	return rs
}

// ChurnCrash reruns the churn showdown with fail-stop node crashes armed
// on top of the live kill/resize/deadline churn: the same seeded trace as
// Churn, plus seeded crashes that take nodes out mid-run for good. All
// three modes pay the failures — the gang and batch daemons through the
// chaos-driven eviction path (requeue with backoff under a retry budget,
// matrix columns shrunk), the fractional model analytically — so the
// availability grid isolates how each discipline degrades. The gang and
// batch daemons also run with the adaptive (EWMA-stretch) backfill
// estimator, which the crash recovery stresses: post-crash the machine is
// smaller and everything runs slower than the static estimate assumes.
func ChurnCrash(p Params) []*schedd.Result {
	gen := schedeval.DefaultGenConfig(8)
	gen.Seed = 11
	gen.Jobs = 28
	gen.KillFraction = 0.15
	gen.ResizeFraction = 0.15
	gen.DeadlineFraction = 0.25
	if p.Quick {
		gen.Jobs = 12
	}
	trace, err := schedeval.Generate(gen)
	if err != nil {
		panic(err)
	}
	var lastArrive sim.Time
	for _, tj := range trace {
		if tj.Arrive > lastArrive {
			lastArrive = tj.Arrive
		}
	}
	// Crashes land in [span/4, span) with span = the last arrival: well
	// inside the run, while the backlog still holds live jobs to kill and
	// requeue. The crash stream has its own seed — it is sampled
	// independently of the job trace, so the jobs here are exactly Churn's.
	crashes, err := schedeval.GenCrashes(7, gen.Nodes, 0.35, lastArrive)
	if err != nil {
		panic(err)
	}
	cfg := schedd.DefaultConfig(8)
	cfg.Trace = trace
	cfg.Crashes = crashes
	cfg.AdaptiveEstimate = true
	cfg.Shards = p.Shards
	cfg.Workers = p.Workers
	rs, err := schedd.Showdown(cfg)
	if err != nil {
		panic(err)
	}
	for _, r := range rs {
		addFired(r.Events)
	}
	return rs
}

// ChurnRepair closes the failure loop ChurnCrash opened: the same seeded
// trace and the same seeded crashes, plus seeded repairs — most crashed
// nodes come back after a sampled MTTR as fresh incarnations and rejoin the
// gang at a rotation boundary. Arming repairs also arms the heartbeat (the
// masterd pings every node each quantum), so batch mode — whose single
// populated slot never broadcasts a switch and therefore never misses an
// ack — finally detects its dead nodes instead of running blind. The
// availability grid grows the repair columns: nodes readmitted, the
// fraction of lost node-cycles the repairs recovered, and the goodput after
// the first rejoin.
func ChurnRepair(p Params) []*schedd.Result {
	gen := schedeval.DefaultGenConfig(8)
	gen.Seed = 11
	gen.Jobs = 28
	gen.KillFraction = 0.15
	gen.ResizeFraction = 0.15
	gen.DeadlineFraction = 0.25
	if p.Quick {
		gen.Jobs = 12
	}
	trace, err := schedeval.Generate(gen)
	if err != nil {
		panic(err)
	}
	var lastArrive sim.Time
	for _, tj := range trace {
		if tj.Arrive > lastArrive {
			lastArrive = tj.Arrive
		}
	}
	crashes, err := schedeval.GenCrashes(7, gen.Nodes, 0.35, lastArrive)
	if err != nil {
		panic(err)
	}
	// Repairs ride their own seed on top of the crash stream (the same
	// crashes as ChurnCrash, so the two goldens differ only by the repair
	// loop): 3 in 4 crashed nodes come back, after half to one-and-a-half
	// times the quarter-span MTTR.
	repairs, err := schedeval.GenRepairs(13, crashes, 0.75, lastArrive/4)
	if err != nil {
		panic(err)
	}
	cfg := schedd.DefaultConfig(8)
	cfg.Trace = trace
	cfg.Crashes = crashes
	cfg.Repairs = repairs
	cfg.AdaptiveEstimate = true
	cfg.Shards = p.Shards
	cfg.Workers = p.Workers
	rs, err := schedd.Showdown(cfg)
	if err != nil {
		panic(err)
	}
	for _, r := range rs {
		addFired(r.Events)
	}
	return rs
}

// ChurnGrid renders the per-mode response/slowdown/utilization grid.
func ChurnGrid(rs []*schedd.Result) *metrics.Table { return schedd.GridTable(rs) }

// ChurnStats renders the per-verb decision-log statistics.
func ChurnStats(rs []*schedd.Result) *metrics.Table { return schedd.StatsTable(rs) }

// ChurnAvailability renders the failure half of the crash showdown:
// goodput, requeue and gaveup activity, mean time-to-requeue, and the
// capacity the dead nodes took with them.
func ChurnAvailability(rs []*schedd.Result) *metrics.Table { return schedd.AvailabilityTable(rs) }
