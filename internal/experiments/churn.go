package experiments

import (
	"gangfm/internal/metrics"
	"gangfm/internal/schedd"
	"gangfm/internal/schedeval"
)

// Churn runs the online-scheduling showdown: one seeded churn trace —
// arrivals plus mid-run kill, resize, and deadline directives — served by
// the schedd daemon in gang and batch mode and by the analytic fractional
// model (the Casanova–Stillwell–Vivien comparison). The three runs share
// one trace, so the grid isolates the serving discipline.
func Churn(p Params) []*schedd.Result {
	gen := schedeval.DefaultGenConfig(8)
	gen.Seed = 11
	gen.Jobs = 28
	gen.KillFraction = 0.15
	gen.ResizeFraction = 0.15
	gen.DeadlineFraction = 0.25
	if p.Quick {
		gen.Jobs = 12
	}
	trace, err := schedeval.Generate(gen)
	if err != nil {
		panic(err)
	}
	cfg := schedd.DefaultConfig(8)
	cfg.Trace = trace
	cfg.Shards = p.Shards
	cfg.Workers = p.Workers
	rs, err := schedd.Showdown(cfg)
	if err != nil {
		panic(err)
	}
	for _, r := range rs {
		addFired(r.Events)
	}
	return rs
}

// ChurnGrid renders the per-mode response/slowdown/utilization grid.
func ChurnGrid(rs []*schedd.Result) *metrics.Table { return schedd.GridTable(rs) }

// ChurnStats renders the per-verb decision-log statistics.
func ChurnStats(rs []*schedd.Result) *metrics.Table { return schedd.StatsTable(rs) }
