package experiments

import (
	"gangfm/internal/fm"
	"gangfm/internal/gang"
	"gangfm/internal/metrics"
	"gangfm/internal/schedeval"
)

// Sched runs the trace-driven scheduler evaluation: one generated job
// stream replayed under every (packing policy, credit scheme) pair on an
// 8-node machine with a deep 8-row gang matrix — the regime where the
// partitioned scheme's C0 = Br/(n²p) credits collapse to 1 while the
// switched scheme keeps Br/p. Runs in the grid are independent clusters,
// so they parallelize like any other sweep.
func Sched(p Params) []*schedeval.Result {
	gen := schedeval.DefaultGenConfig(8)
	gen.Seed = 7
	gen.Jobs = 36
	if p.Quick {
		gen.Jobs = 12
	}
	trace, err := schedeval.Generate(gen)
	if err != nil {
		panic(err)
	}
	base := schedeval.DefaultConfig(8)
	base.Trace = trace
	base.Shards = p.Shards
	base.Workers = p.Workers

	schemes := []fm.Policy{fm.Partitioned, fm.Switched}
	packings := gang.Policies()
	results := make([]*schedeval.Result, len(packings)*len(schemes))
	forEach(p.parallel(), len(results), func(i int) {
		cfg := base
		cfg.Packing = packings[i/len(schemes)]
		cfg.Scheme = schemes[i%len(schemes)]
		r, err := schedeval.Run(cfg)
		if err != nil {
			panic(err)
		}
		addFired(r.Events)
		results[i] = r
	})
	return results
}

// SchedTable renders the evaluation's summary table.
func SchedTable(rs []*schedeval.Result) *metrics.Table {
	return schedeval.SummaryTable(rs)
}
