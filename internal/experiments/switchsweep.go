package experiments

import (
	"gangfm/internal/core"
	"gangfm/internal/metrics"
	"gangfm/internal/myrinet"
	"gangfm/internal/parpar"
	"gangfm/internal/workload"
)

// SwitchPoint aggregates the per-stage context-switch costs and buffer
// occupancies observed at one cluster size — one x-position of Figures 7,
// 8 and 9.
type SwitchPoint struct {
	Nodes int
	// Stage means, in cycles (Figures 7 and 9).
	HaltCycles    float64
	CopyCycles    float64
	ReleaseCycles float64
	// Mean valid packets found in the outgoing queues (Figure 8).
	ValidSend float64
	ValidRecv float64
	// Switches is the number of real (non-idle) switches sampled.
	Switches int
}

// Total returns the mean end-to-end switch cost in cycles.
func (s SwitchPoint) Total() float64 { return s.HaltCycles + s.CopyCycles + s.ReleaseCycles }

func sweepNodes(quick bool) []int {
	if quick {
		return []int{2, 8, 16}
	}
	return []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
}

// SwitchSweep measures switch-stage costs under an all-to-all stress load
// (paper §4.2): two identical all-to-all jobs alternate in two time slots
// while every switch's stage durations and queue occupancies are recorded.
// mode selects the full (Figure 7) or improved (Figure 9) copy algorithm;
// Figure 8's occupancy counts come from the same runs.
func SwitchSweep(p Params, mode core.CopyMode) []SwitchPoint {
	nodes := sweepNodes(p.Quick)
	points := make([]SwitchPoint, len(nodes))
	forEach(p.parallel(), len(nodes), func(i int) {
		points[i] = switchPoint(nodes[i], mode, p.Quick)
	})
	return points
}

func switchPoint(nodes int, mode core.CopyMode, quick bool) SwitchPoint {
	cfg := parpar.DefaultConfig(nodes)
	cfg.Slots = 2
	cfg.Mode = mode
	// 50 ms quantum, scaled from the paper's 1 s; each job's all-to-all
	// work is sized to span several quanta so the sampled switches are
	// mid-stream (buffers loaded), not start/finish artifacts.
	cfg.Quantum = 10_000_000
	cfg.ForkDelay = 100_000
	perPeer := clamp(10_000/(nodes-1), 80, 10_000)
	if quick {
		perPeer = clamp(perPeer/4, 40, 2500)
		cfg.Quantum = 2_500_000
	}
	cluster, err := parpar.New(cfg)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cluster.Submit(workload.AllToAll("a2a", nodes, perPeer, 1536)); err != nil {
			panic(err)
		}
	}
	cluster.Run()
	addFired(cluster.Fired())

	pt := SwitchPoint{Nodes: nodes}
	var halt, cp, rel, vs, vr []float64
	for _, hist := range cluster.SwitchHistory() {
		for _, s := range hist {
			// Only steady-state switches between the two jobs count;
			// activation switches (From == NoJob) see empty buffers.
			if s.To == myrinet.NoJob || s.From == myrinet.NoJob {
				continue
			}
			halt = append(halt, float64(s.Halt))
			cp = append(cp, float64(s.Copy))
			rel = append(rel, float64(s.Release))
			vs = append(vs, float64(s.ValidSend))
			vr = append(vr, float64(s.ValidRecv))
		}
	}
	pt.Switches = len(halt)
	pt.HaltCycles = metrics.Mean(halt)
	pt.CopyCycles = metrics.Mean(cp)
	pt.ReleaseCycles = metrics.Mean(rel)
	pt.ValidSend = metrics.Mean(vs)
	pt.ValidRecv = metrics.Mean(vr)
	return pt
}

// Fig7 measures the full-copy switch stages (paper Figure 7).
func Fig7(p Params) []SwitchPoint { return SwitchSweep(p, core.FullCopy) }

// Fig9 measures the improved (valid-only) switch stages (paper Figure 9).
func Fig9(p Params) []SwitchPoint { return SwitchSweep(p, core.ValidOnly) }

// Fig8FromSweep extracts the Figure 8 view (valid packets at switch time)
// from a sweep's points.
func Fig8FromSweep(points []SwitchPoint) *metrics.Table {
	t := metrics.NewTable(
		"Figure 8: valid packets in the buffers during buffer switching",
		"nodes", "recv buffer", "send buffer", "switches sampled")
	for _, pt := range points {
		t.AddRow(pt.Nodes, pt.ValidRecv, pt.ValidSend, pt.Switches)
	}
	return t
}

// StageTable renders a sweep as the stacked-stage table of Figures 7/9.
func StageTable(title string, points []SwitchPoint) *metrics.Table {
	t := metrics.NewTable(title,
		"nodes", "halt [cyc]", "buffer switch [cyc]", "release [cyc]", "total [cyc]", "switches")
	for _, pt := range points {
		t.AddRow(pt.Nodes, pt.HaltCycles, pt.CopyCycles, pt.ReleaseCycles, pt.Total(), pt.Switches)
	}
	return t
}
