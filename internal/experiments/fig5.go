package experiments

import (
	"strconv"

	"gangfm/internal/fm"
	"gangfm/internal/metrics"
	"gangfm/internal/parpar"
	"gangfm/internal/sim"
	"gangfm/internal/workload"
)

// Fig5Point is one cell of the Figure 5 surface: point-to-point bandwidth
// under the original FM buffer division, as a function of message size and
// the number of contexts the buffers are divided among.
type Fig5Point struct {
	Contexts int
	MsgSize  int
	MBs      float64
	// Completed is false when the transfer wedged (zero credits): the
	// paper's "no communication is even possible" regime.
	Completed bool
	// C0 is the per-peer credit count the partitioned policy produced.
	C0 int
}

// fig5Sizes approximates the paper's message-size axis (64 B .. 64 KB).
func fig5Sizes(quick bool) []int {
	if quick {
		return []int{256, 4096, 65536}
	}
	return []int{64, 256, 1024, 4096, 16384, 65536}
}

func fig5Contexts(quick bool) []int {
	if quick {
		return []int{1, 4, 8}
	}
	return []int{1, 2, 3, 4, 5, 6, 7, 8}
}

// fig5Messages picks the message count for a size: enough volume for a
// stable measurement, bounded to keep the sweep fast (the paper used
// 500,000 for small and 100,000 for large messages).
func fig5Messages(size int, quick bool) int {
	n := clamp(16_000_000/size, 500, 8000)
	if quick {
		n = clamp(n/8, 100, 1000)
	}
	return n
}

// fig5Deadline bounds each point's virtual runtime; a transfer that has
// not finished by then is reported as wedged. Slow-but-alive points (one
// credit, stop-and-wait) complete well inside it.
const fig5Deadline = 10 * 200_000_000 // 10 virtual seconds

// Fig5 measures the partitioned-buffer bandwidth surface: a 16-node
// ParPar with the original FM buffer division, the slot-table depth set to
// the context count (paper §4.1), one 2-process benchmark job, and no
// context switching.
func Fig5(p Params) []Fig5Point {
	sizes := fig5Sizes(p.Quick)
	contexts := fig5Contexts(p.Quick)
	points := make([]Fig5Point, len(sizes)*len(contexts))
	forEach(p.parallel(), len(points), func(i int) {
		n := contexts[i/len(sizes)]
		size := sizes[i%len(sizes)]
		points[i] = fig5Point(n, size, p)
	})
	return points
}

func fig5Point(nContexts, size int, p Params) Fig5Point {
	cfg := parpar.DefaultConfig(16)
	cfg.Policy = fm.Partitioned
	cfg.Slots = nContexts
	cfg.Quantum = 40_000_000 // irrelevant: a single job never rotates
	cfg.CtrlJitter = 50_000
	cfg.ForkDelay = 100_000
	cfg.Shards = p.Shards
	cfg.Workers = p.Workers
	cluster, err := parpar.New(cfg)
	if err != nil {
		panic(err)
	}
	alloc, aerr := fm.Allocate(fm.Partitioned, 252, 668, nContexts, 16)
	c0 := 0
	if aerr == nil {
		c0 = alloc.C0
	}
	msgs := fig5Messages(size, p.Quick)
	job, err := cluster.Submit(workload.Bandwidth("fig5", msgs, size))
	if err != nil {
		panic(err)
	}
	cluster.RunUntil(fig5Deadline)
	addFired(cluster.Fired())
	pt := Fig5Point{Contexts: nContexts, MsgSize: size, C0: c0}
	res, err := workload.ExtractBandwidth(job)
	if err != nil {
		return pt // wedged: MBs stays 0
	}
	pt.Completed = true
	pt.MBs = res.MBs(sim.DefaultClock)
	return pt
}

// Fig5Table renders the points as a size × contexts bandwidth matrix.
func Fig5Table(points []Fig5Point) *metrics.Table {
	return surfaceTable(
		"Figure 5: bandwidth [MB/s] vs message size and #contexts (original FM buffer division)",
		"msg size \\ contexts",
		fig5Key(points),
	)
}

// surface rendering shared with Figure 6 ------------------------------------

type surfaceCell struct {
	x, y int // y = msg size, x = contexts/jobs
	v    float64
}

func fig5Key(points []Fig5Point) []surfaceCell {
	cells := make([]surfaceCell, len(points))
	for i, pt := range points {
		cells[i] = surfaceCell{x: pt.Contexts, y: pt.MsgSize, v: pt.MBs}
	}
	return cells
}

func surfaceTable(title, corner string, cells []surfaceCell) *metrics.Table {
	xs, ys := axisValues(cells)
	headers := make([]string, 0, len(xs)+1)
	headers = append(headers, corner)
	for _, x := range xs {
		headers = append(headers, itoa(x))
	}
	t := metrics.NewTable(title, headers...)
	byKey := make(map[[2]int]float64, len(cells))
	for _, c := range cells {
		byKey[[2]int{c.x, c.y}] = c.v
	}
	for _, y := range ys {
		row := make([]any, 0, len(xs)+1)
		row = append(row, itoa(y))
		for _, x := range xs {
			row = append(row, byKey[[2]int{x, y}])
		}
		t.AddRow(row...)
	}
	return t
}

func axisValues(cells []surfaceCell) (xs, ys []int) {
	seenX := map[int]bool{}
	seenY := map[int]bool{}
	for _, c := range cells {
		if !seenX[c.x] {
			seenX[c.x] = true
			xs = insertSorted(xs, c.x)
		}
		if !seenY[c.y] {
			seenY[c.y] = true
			ys = insertSorted(ys, c.y)
		}
	}
	return xs, ys
}

func insertSorted(s []int, v int) []int {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// itoa formats axis labels, abbreviating whole kilobytes as in the
// paper's axes (1024 -> "1K").
func itoa(v int) string {
	if v >= 1024 && v%1024 == 0 {
		return strconv.Itoa(v/1024) + "K"
	}
	return strconv.Itoa(v)
}
