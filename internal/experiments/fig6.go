package experiments

import (
	"gangfm/internal/core"
	"gangfm/internal/metrics"
	"gangfm/internal/parpar"
	"gangfm/internal/sim"
	"gangfm/internal/workload"
)

// Fig6Point is one cell of the Figure 6 surface: total system bandwidth
// under the buffer-switching scheme, as a function of message size and the
// number of gang-scheduled jobs.
type Fig6Point struct {
	Jobs    int
	MsgSize int
	// PerJobMBs is the mean bandwidth each application measured over its
	// own wall time (including descheduled periods).
	PerJobMBs float64
	// AggregateMBs is PerJobMBs multiplied by the number of applications
	// — the paper's methodology for total system bandwidth.
	AggregateMBs float64
	Switches     int
}

// fig6Sizes approximates the paper's axis (96 B .. 96 KB).
func fig6Sizes(quick bool) []int {
	if quick {
		return []int{384, 6144, 98304}
	}
	return []int{96, 384, 1536, 6144, 24576, 98304}
}

func fig6JobCounts(quick bool) []int {
	if quick {
		return []int{1, 4, 8}
	}
	return []int{1, 2, 3, 4, 5, 6, 7, 8}
}

// fig6Quantum is the gang-scheduling quantum for the Figure 6 runs. The
// paper used 3 s; we scale to 20 ms so eight-job sweeps stay fast, and
// scale the daemon jitter down with it so switch overhead remains a
// comparable (small) fraction of the quantum.
const fig6Quantum = 4_000_000

// estMsgCycles estimates the sender-side cost of one message, which is the
// bandwidth bottleneck: per fragment, the FM_send overhead plus the
// write-combined copy into the card (~2.5 cycles/byte).
func estMsgCycles(size int) int {
	frags := (size + 1535) / 1536
	cycles := 0
	rem := size
	for i := 0; i < frags; i++ {
		frag := rem
		if frag > 1536 {
			frag = 1536
		}
		rem -= frag
		cycles += 300 + 200 + (frag+24)*5/2
	}
	return cycles
}

// fig6Messages sizes each job so its active sending time spans ~10 quanta:
// the paper's aggregate-bandwidth methodology (per-job bandwidth over wall
// time × #jobs) is only meaningful when every job's run covers many full
// rotations.
func fig6Messages(size int, quick bool) int {
	target := 10 * fig6Quantum
	if quick {
		target = 3 * fig6Quantum
	}
	return clamp(target/estMsgCycles(size), 100, 60_000)
}

// Fig6 measures the buffer-switching bandwidth surface: k identical
// 2-process benchmark jobs stacked in k time slots of a 2-node ParPar
// (stacking forces the alternation the paper measures; on the full
// machine the DHC packer would spread small jobs across disjoint columns
// instead of time-slicing them).
func Fig6(p Params) []Fig6Point {
	sizes := fig6Sizes(p.Quick)
	jobCounts := fig6JobCounts(p.Quick)
	points := make([]Fig6Point, len(sizes)*len(jobCounts))
	forEach(p.parallel(), len(points), func(i int) {
		k := jobCounts[i/len(sizes)]
		size := sizes[i%len(sizes)]
		points[i] = fig6Point(k, size, p)
	})
	return points
}

func fig6Point(k, size int, p Params) Fig6Point {
	cfg := parpar.DefaultConfig(2)
	cfg.Slots = 8
	cfg.Mode = core.ValidOnly
	cfg.Quantum = fig6Quantum
	cfg.CtrlJitter = 40_000
	cfg.ForkDelay = 100_000
	cfg.Shards = p.Shards
	cfg.Workers = p.Workers
	cluster, err := parpar.New(cfg)
	if err != nil {
		panic(err)
	}
	msgs := fig6Messages(size, p.Quick)
	jobs := make([]*parpar.Job, k)
	for i := range jobs {
		jobs[i], err = cluster.Submit(workload.Bandwidth("fig6", msgs, size))
		if err != nil {
			panic(err)
		}
	}
	cluster.Run()
	addFired(cluster.Fired())

	var per []float64
	for _, job := range jobs {
		res, err := workload.ExtractBandwidth(job)
		if err != nil {
			panic(err)
		}
		per = append(per, res.MBs(sim.DefaultClock))
	}
	switches := 0
	for _, hist := range cluster.SwitchHistory() {
		switches += len(hist)
	}
	mean := metrics.Mean(per)
	return Fig6Point{
		Jobs: k, MsgSize: size,
		PerJobMBs:    mean,
		AggregateMBs: mean * float64(k),
		Switches:     switches,
	}
}

// Fig6Table renders the points as a size × jobs aggregate-bandwidth matrix.
func Fig6Table(points []Fig6Point) *metrics.Table {
	cells := make([]surfaceCell, len(points))
	for i, pt := range points {
		cells[i] = surfaceCell{x: pt.Jobs, y: pt.MsgSize, v: pt.AggregateMBs}
	}
	return surfaceTable(
		"Figure 6: total bandwidth [MB/s] vs message size and #jobs (buffer switching)",
		"msg size \\ jobs",
		cells,
	)
}
