package experiments

import (
	"runtime"
	"strings"
	"testing"
)

func quickParams() Params {
	return Params{Quick: true, Parallel: runtime.NumCPU()}
}

func TestForEachCoversAll(t *testing.T) {
	for _, par := range []int{1, 3, 8} {
		hits := make([]int, 20)
		var mu chan struct{} = make(chan struct{}, 1)
		mu <- struct{}{}
		forEach(par, len(hits), func(i int) {
			<-mu
			hits[i]++
			mu <- struct{}{}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallel=%d: index %d hit %d times", par, i, h)
			}
		}
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 1, 10) != 5 || clamp(-3, 1, 10) != 1 || clamp(99, 1, 10) != 10 {
		t.Fatal("clamp broken")
	}
}

func TestFig5Shape(t *testing.T) {
	points := Fig5(quickParams())
	byCtx := map[int]map[int]Fig5Point{}
	for _, pt := range points {
		if byCtx[pt.Contexts] == nil {
			byCtx[pt.Contexts] = map[int]Fig5Point{}
		}
		byCtx[pt.Contexts][pt.MsgSize] = pt
	}
	// 1 context: near peak for large messages.
	if p := byCtx[1][65536]; p.MBs < 55 {
		t.Fatalf("1-context 64K bandwidth %.1f MB/s, want near peak", p.MBs)
	}
	// 8 contexts: zero credits, no communication at all (the paper's
	// headline cliff).
	for size, p := range byCtx[8] {
		if p.Completed || p.MBs != 0 {
			t.Fatalf("8 contexts, size %d: bandwidth %.1f, want wedged", size, p.MBs)
		}
		if p.C0 != 0 {
			t.Fatalf("8 contexts: C0 = %d, want 0", p.C0)
		}
	}
	// Monotone non-increasing in context count for every size.
	for _, size := range fig5Sizes(true) {
		prev := byCtx[1][size].MBs
		for _, n := range []int{4, 8} {
			cur := byCtx[n][size].MBs
			if cur > prev*1.05 {
				t.Fatalf("size %d: bandwidth rose from %.1f to %.1f between contexts", size, prev, cur)
			}
			prev = cur
		}
	}
	// Bandwidth grows with message size at 1 context.
	if byCtx[1][256].MBs >= byCtx[1][65536].MBs {
		t.Fatal("bandwidth should grow with message size")
	}
}

func TestFig5Table(t *testing.T) {
	points := []Fig5Point{
		{Contexts: 1, MsgSize: 1024, MBs: 70},
		{Contexts: 2, MsgSize: 1024, MBs: 60},
		{Contexts: 1, MsgSize: 65536, MBs: 75},
		{Contexts: 2, MsgSize: 65536, MBs: 65},
	}
	s := Fig5Table(points).String()
	for _, want := range []string{"Figure 5", "1K", "64K", "70.00", "65.00"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}

func TestFig6Flatness(t *testing.T) {
	points := Fig6(quickParams())
	byJobs := map[int]map[int]Fig6Point{}
	for _, pt := range points {
		if byJobs[pt.Jobs] == nil {
			byJobs[pt.Jobs] = map[int]Fig6Point{}
		}
		byJobs[pt.Jobs][pt.MsgSize] = pt
	}
	// The headline: aggregate bandwidth is ~flat in the job count. Allow
	// 15% sag for switch overhead at the scaled-down quantum.
	for _, size := range fig6Sizes(true) {
		base := byJobs[1][size].AggregateMBs
		if base <= 0 {
			t.Fatalf("size %d: zero baseline bandwidth", size)
		}
		for _, k := range []int{4, 8} {
			agg := byJobs[k][size].AggregateMBs
			if agg < base*0.85 || agg > base*1.10 {
				t.Fatalf("size %d: aggregate at %d jobs = %.1f vs baseline %.1f — not flat",
					size, k, agg, base)
			}
		}
	}
	// Rotation actually happened for k>1.
	if byJobs[8][fig6Sizes(true)[0]].Switches == 0 {
		t.Fatal("no switches recorded with 8 jobs")
	}
}

func TestSwitchSweepShapes(t *testing.T) {
	full := Fig7(quickParams())
	improved := Fig9(quickParams())
	if len(full) != len(improved) || len(full) == 0 {
		t.Fatal("sweep sizes mismatch")
	}
	for i := range full {
		f, v := full[i], improved[i]
		if f.Switches == 0 || v.Switches == 0 {
			t.Fatalf("nodes %d: no switches sampled", f.Nodes)
		}
		// Figure 7 vs 9: the improved copy is dramatically cheaper.
		if v.CopyCycles*4 > f.CopyCycles {
			t.Fatalf("nodes %d: improved copy %.0f not <1/4 of full %.0f",
				f.Nodes, v.CopyCycles, f.CopyCycles)
		}
		// Full copy is occupancy-independent: ~constant across node
		// counts (compare to the 2-node value).
		ratio := f.CopyCycles / full[0].CopyCycles
		if ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("full copy cost varies with nodes: %.0f vs %.0f", f.CopyCycles, full[0].CopyCycles)
		}
	}
	// Figure 7: buffer switch dominates the full-copy switch.
	for _, f := range full {
		if f.CopyCycles < f.HaltCycles || f.CopyCycles < f.ReleaseCycles {
			t.Fatalf("nodes %d: full copy (%.0f) should dominate halt (%.0f) and release (%.0f)",
				f.Nodes, f.CopyCycles, f.HaltCycles, f.ReleaseCycles)
		}
	}
	// Figure 8: receive-buffer occupancy grows with node count; send
	// stays comparatively small.
	first, last := improved[0], improved[len(improved)-1]
	if last.ValidRecv <= first.ValidRecv {
		t.Fatalf("recv occupancy did not grow with nodes: %.1f -> %.1f",
			first.ValidRecv, last.ValidRecv)
	}
	if last.ValidSend > last.ValidRecv {
		t.Fatalf("send occupancy (%.1f) should stay below recv (%.1f) at 16 nodes",
			last.ValidSend, last.ValidRecv)
	}
	// Halt time grows with node count (skew + serial broadcast).
	if last.HaltCycles <= first.HaltCycles {
		t.Fatalf("halt cost did not grow with nodes: %.0f -> %.0f",
			first.HaltCycles, last.HaltCycles)
	}
}

func TestOverheadBounds(t *testing.T) {
	rep := Overhead(quickParams())
	// The paper's 85 ms / 12.5 ms figures bound the buffer-switch stage.
	fullMs := MsOf(rep.FullCopy.CopyCycles)
	impMs := MsOf(rep.Improved.CopyCycles)
	if fullMs >= 85 {
		t.Fatalf("full buffer switch %.1f ms, paper bound 85 ms", fullMs)
	}
	if impMs >= 12.5 {
		t.Fatalf("improved buffer switch %.1f ms, paper bound 12.5 ms", impMs)
	}
	if pct := PercentOfQuantum(rep.Improved.CopyCycles); pct >= 1.25 {
		t.Fatalf("improved overhead %.2f%% of 1 s quantum, paper says <1.25%%", pct)
	}
	s := OverheadTable(rep).String()
	if !strings.Contains(s, "full copy") || !strings.Contains(s, "valid-only") {
		t.Fatalf("overhead table malformed:\n%s", s)
	}
}

func TestCreditsMatchPaperFormulas(t *testing.T) {
	rows := Credits()
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	want := map[int][2]int{ // contexts -> {partitioned C0, switched C0}
		1: {41, 41}, 2: {10, 41}, 3: {4, 41}, 4: {2, 41},
		5: {1, 41}, 6: {1, 41}, 7: {0, 41}, 8: {0, 41},
	}
	for _, r := range rows {
		w := want[r.Contexts]
		if r.PartitionedC0 != w[0] || r.SwitchedC0 != w[1] {
			t.Fatalf("contexts %d: C0 = %d/%d, want %d/%d",
				r.Contexts, r.PartitionedC0, r.SwitchedC0, w[0], w[1])
		}
	}
	s := CreditsTable(rows).String()
	if !strings.Contains(s, "contexts") {
		t.Fatal("credits table malformed")
	}
}

func TestStageAndFig8Tables(t *testing.T) {
	pts := []SwitchPoint{{Nodes: 2, HaltCycles: 100, CopyCycles: 200, ReleaseCycles: 50, ValidSend: 1, ValidRecv: 5, Switches: 3}}
	if s := StageTable("Figure 7", pts).String(); !strings.Contains(s, "350.00") {
		t.Fatalf("stage table missing total:\n%s", s)
	}
	if s := Fig8FromSweep(pts).String(); !strings.Contains(s, "5.00") {
		t.Fatalf("fig8 table missing recv count:\n%s", s)
	}
}

func TestSchemesComparison(t *testing.T) {
	rows := Schemes(quickParams())
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	paper, share, pm := rows[0], rows[1], rows[2]
	// The paper's scheme: coordination cost but perfect efficiency.
	if paper.Discards != 0 || paper.Retransmissions != 0 {
		t.Fatalf("paper scheme should have no discards/retransmissions: %+v", paper)
	}
	if paper.CoordCycles == 0 {
		t.Fatal("paper scheme's flush+release should cost something")
	}
	// SHARE: zero coordination, but pays in discards and retransmissions.
	if share.CoordCycles != 0 {
		t.Fatalf("discard scheme should have zero coordination: %+v", share)
	}
	if share.Discards == 0 || share.Retransmissions == 0 {
		t.Fatalf("discard scheme should show recovery costs: %+v", share)
	}
	if share.Efficiency >= 1 {
		t.Fatalf("discard efficiency should be < 1: %v", share.Efficiency)
	}
	// PM: some quiescence wait, cheaper coordination than the paper's
	// full flush on the sampled runs is NOT guaranteed (quiescence can
	// be slow under load), but it must resolve without halt broadcasts —
	// asserted structurally in the altsched tests. Here: sanity.
	if pm.Switches == 0 {
		t.Fatal("pm scheme recorded no switches")
	}
	s := SchemesTable(rows).String()
	if !strings.Contains(s, "SHARE") || !strings.Contains(s, "paper") {
		t.Fatalf("schemes table malformed:\n%s", s)
	}
}

func TestResponsivenessComparison(t *testing.T) {
	rows := Responsiveness(quickParams())
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	gang, dyn := rows[0], rows[1]
	if gang.Requests == 0 || dyn.Requests == 0 {
		t.Fatalf("missing samples: %+v %+v", gang, dyn)
	}
	// Dynamic coscheduling answers in ~dispatch time; gang waits a
	// fraction of the quantum. An order of magnitude separates them.
	if dyn.MeanRTTCycles*5 > gang.MeanRTTCycles {
		t.Fatalf("dyncos RTT %.0f not clearly below gang %.0f",
			dyn.MeanRTTCycles, gang.MeanRTTCycles)
	}
	// But gang's maximum is bounded by roughly a full rotation.
	if gang.MaxRTTCycles > 3*4_000_000 {
		t.Fatalf("gang max RTT %.0f exceeds a full rotation", gang.MaxRTTCycles)
	}
	if s := ResponsivenessTable(rows).String(); !strings.Contains(s, "dynamic") {
		t.Fatal("table malformed")
	}
}
