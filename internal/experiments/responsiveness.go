package experiments

import (
	"gangfm/internal/altsched"
	"gangfm/internal/memmodel"
	"gangfm/internal/metrics"
	"gangfm/internal/myrinet"
	"gangfm/internal/parpar"
	"gangfm/internal/sim"
	"gangfm/internal/workload"
)

// ResponsivenessRow compares request/reply latency for sparse interactive
// traffic under gang scheduling versus dynamic coscheduling (paper §5:
// Sobalvarro et al.). Gang scheduling co-schedules communicating peers —
// ideal for bulk synchronized traffic — but an interactive request issued
// while the job is descheduled waits for its next quantum; dynamic
// coscheduling wakes the destination in ~dispatch time.
type ResponsivenessRow struct {
	Scheme        string
	Requests      int
	MeanRTTCycles float64
	MaxRTTCycles  float64
}

// Responsiveness measures both schemes on the same sparse request/reply
// pattern (one request every ~37 ms against a 20 ms quantum).
func Responsiveness(p Params) []ResponsivenessRow {
	rows := make([]ResponsivenessRow, 2)
	forEach(p.parallel(), 2, func(i int) {
		if i == 0 {
			rows[0] = gangResponsiveness(p)
		} else {
			rows[1] = dyncosResponsiveness(p)
		}
	})
	return rows
}

func respRequests(p Params) int {
	if p.Quick {
		return 8
	}
	return 30
}

const respInterval = 7_400_000 // 37 ms: deliberately off-phase with the quantum

func gangResponsiveness(p Params) ResponsivenessRow {
	cfg := parpar.DefaultConfig(2)
	cfg.Slots = 2
	cfg.Quantum = 4_000_000 // 20 ms
	cfg.CtrlJitter = 40_000
	cfg.ForkDelay = 50_000
	cluster, err := parpar.New(cfg)
	if err != nil {
		panic(err)
	}
	requests := respRequests(p)
	var rtts []float64

	// The interactive job: rank 0 issues a request every respInterval
	// (the issue event fires regardless of scheduling; the send waits in
	// the library until the process runs); rank 1 echoes.
	spec := parpar.JobSpec{
		Name: "interactive",
		Size: 2,
		NewProgram: func(rank int) parpar.Program {
			return parpar.ProgramFunc(func(pr *parpar.Proc) {
				if rank == 1 {
					pr.EP.SetHandler(func(_, _ int, _ []byte) { pr.EP.Send(0, 64, nil) })
					// The echo server retires with the cluster run.
					pr.Done(nil)
					return
				}
				issued := sim.Time(0)
				got := 0
				pr.EP.SetHandler(func(_, _ int, _ []byte) {
					rtts = append(rtts, float64(pr.Now()-issued))
					got++
					if got == requests {
						pr.Done(got)
					}
				})
				var tick func()
				n := 0
				tick = func() {
					if n >= requests {
						return
					}
					n++
					issued = pr.Now()
					pr.EP.Send(1, 64, nil)
					pr.Schedule(respInterval, tick)
				}
				tick()
			})
		},
	}
	if _, err := cluster.Submit(spec); err != nil {
		panic(err)
	}
	// The competing slot: a long-running compute job forcing rotation.
	computeSpec := workload.Compute("rival", 2, sim.Time(requests+4)*respInterval)
	if _, err := cluster.Submit(computeSpec); err != nil {
		panic(err)
	}
	cluster.RunUntil(sim.Time(requests+8) * respInterval * 2)
	addFired(cluster.Fired())
	return ResponsivenessRow{
		Scheme:        "gang scheduling (20 ms quantum)",
		Requests:      len(rtts),
		MeanRTTCycles: metrics.Mean(rtts),
		MaxRTTCycles:  metrics.Max(rtts),
	}
}

func dyncosResponsiveness(p Params) ResponsivenessRow {
	eng := sim.NewEngine()
	net := myrinet.New(eng, myrinet.DefaultConfig(2))
	mem := memmodel.Default()
	cfg := altsched.DefaultDynCosConfig()
	a, err := altsched.NewDynCosNode(eng, net, mem, 0, 0, cfg)
	if err != nil {
		panic(err)
	}
	b, err := altsched.NewDynCosNode(eng, net, mem, 1, 1, cfg)
	if err != nil {
		panic(err)
	}
	requests := respRequests(p)
	var rtts []float64
	var issued sim.Time
	b.EP.Channel(0).SetOnDeliver(func(uint64) { b.EP.Channel(0).Send(1) })
	n := 0
	var tick func()
	a.EP.Channel(1).SetOnDeliver(func(uint64) {
		rtts = append(rtts, float64(eng.Now()-issued))
	})
	tick = func() {
		if n >= requests {
			return
		}
		n++
		issued = eng.Now()
		a.Wake()
		a.EP.Channel(1).Send(1)
		eng.Schedule(respInterval, tick)
	}
	tick()
	eng.RunUntil(sim.Time(requests+8) * respInterval * 2)
	addFired(eng.Fired())
	return ResponsivenessRow{
		Scheme:        "dynamic coscheduling (100 us dispatch)",
		Requests:      len(rtts),
		MeanRTTCycles: metrics.Mean(rtts),
		MaxRTTCycles:  metrics.Max(rtts),
	}
}

// ResponsivenessTable renders the comparison.
func ResponsivenessTable(rows []ResponsivenessRow) *metrics.Table {
	t := metrics.NewTable(
		"Sparse request/reply responsiveness: gang scheduling vs dynamic coscheduling (paper §5)",
		"scheme", "requests", "mean RTT [ms]", "max RTT [ms]")
	for _, r := range rows {
		t.AddRow(r.Scheme, r.Requests, MsOf(r.MeanRTTCycles), MsOf(r.MaxRTTCycles))
	}
	return t
}
