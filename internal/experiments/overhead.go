package experiments

import (
	"gangfm/internal/core"
	"gangfm/internal/fm"
	"gangfm/internal/metrics"
	"gangfm/internal/sim"
)

// OverheadReport reproduces the §4.2 summary numbers: the cost of one
// buffer switch under each algorithm, in cycles, milliseconds, and as a
// fraction of a 1-second gang-scheduling quantum.
type OverheadReport struct {
	FullCopy SwitchPoint
	Improved SwitchPoint
}

// quantum1s is the paper's 1-second reference quantum in cycles.
const quantum1s = 200_000_000

// MsOf converts mean cycles to milliseconds on the paper's clock.
func MsOf(cycles float64) float64 {
	return cycles / float64(sim.DefaultClock.Hz) * 1000
}

// PercentOfQuantum returns the overhead fraction of a 1 s quantum.
func PercentOfQuantum(cycles float64) float64 {
	return cycles / quantum1s * 100
}

// Overhead measures both switch algorithms on the full 16-node machine.
func Overhead(p Params) OverheadReport {
	var rep OverheadReport
	forEach(p.parallel(), 2, func(i int) {
		if i == 0 {
			rep.FullCopy = switchPoint(16, core.FullCopy, p.Quick)
		} else {
			rep.Improved = switchPoint(16, core.ValidOnly, p.Quick)
		}
	})
	return rep
}

// OverheadTable renders the report against the paper's bounds. The 85 ms
// and 12.5 ms figures in §4.2 bound the buffer-switch stage itself ("the
// buffer switch takes less than 12.5 msecs"); the flush and release stages
// are reported alongside.
func OverheadTable(rep OverheadReport) *metrics.Table {
	t := metrics.NewTable(
		"Context switch overhead (16 nodes, all-to-all load; paper §4.2)",
		"algorithm", "buffer switch [ms]", "paper bound", "full switch [ms]", "copy % of 1s quantum")
	t.AddRow("full copy",
		MsOf(rep.FullCopy.CopyCycles), "<85 ms (17M cycles)",
		MsOf(rep.FullCopy.Total()), PercentOfQuantum(rep.FullCopy.CopyCycles))
	t.AddRow("valid-only copy",
		MsOf(rep.Improved.CopyCycles), "<12.5 ms (2.5M cycles)",
		MsOf(rep.Improved.Total()), PercentOfQuantum(rep.Improved.CopyCycles))
	return t
}

// CreditRow is one line of the §2.2 vs §3.3 credit comparison.
type CreditRow struct {
	Contexts        int
	PartitionedRecv int
	PartitionedC0   int
	SwitchedC0      int
}

// Credits tabulates the credit formulas on the paper's geometry (send 252
// and receive 668 packet slots, 16 processors): C0 = Br/(n²p) partitioned
// versus C0 = Br/p switched.
func Credits() []CreditRow {
	rows := make([]CreditRow, 0, 8)
	for n := 1; n <= 8; n++ {
		row := CreditRow{Contexts: n}
		if a, err := fm.Allocate(fm.Partitioned, 252, 668, n, 16); err == nil {
			row.PartitionedRecv = a.RecvSlots
			row.PartitionedC0 = a.C0
		}
		if a, err := fm.Allocate(fm.Switched, 252, 668, n, 16); err == nil {
			row.SwitchedC0 = a.C0
		}
		rows = append(rows, row)
	}
	return rows
}

// CreditsTable renders the credit comparison.
func CreditsTable(rows []CreditRow) *metrics.Table {
	t := metrics.NewTable(
		"Flow-control credits per peer (Br=668 packets, p=16): partitioned vs switched",
		"contexts", "recv slots/proc", "C0 partitioned", "C0 switched")
	for _, r := range rows {
		t.AddRow(r.Contexts, r.PartitionedRecv, r.PartitionedC0, r.SwitchedC0)
	}
	return t
}
