package schedeval

import (
	"reflect"
	"strings"
	"testing"

	"gangfm/internal/chaos"
	"gangfm/internal/fm"
	"gangfm/internal/gang"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(8)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	cfg.Seed = 2
	c, _ := Generate(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	for i, j := range a {
		if err := j.Validate(8); err != nil {
			t.Fatalf("generated job %d invalid: %v", i, err)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	jobs, err := Generate(DefaultGenConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := FormatTrace(&b, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, back) {
		t.Fatal("trace did not round-trip")
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, bad := range []string{
		"1 2 bsp 1 1",       // too few fields
		"1 2 warp 1 1 64 0", // unknown kernel
		"x 2 bsp 1 1 64 0",  // non-numeric field
		"1 2 bsp 1 1 64 -5", // negative number
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTrace(%q) accepted", bad)
		}
	}
	got, err := ParseTrace(strings.NewReader("# comment\n\n10 2 bsp 2 1 64 1000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kernel != KernelBSP || got[0].Size != 2 {
		t.Fatalf("parsed %+v", got)
	}
}

func smallTrace(t *testing.T, jobs int) []TraceJob {
	t.Helper()
	cfg := DefaultGenConfig(8)
	cfg.Seed = 7
	cfg.Jobs = jobs
	trace, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Trace = smallTrace(t, 10)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different results")
	}
	if a.Finished != len(a.Jobs) {
		t.Fatalf("only %d/%d jobs finished", a.Finished, len(a.Jobs))
	}
	if !a.AuditOK {
		t.Fatalf("auditor flagged a clean run: %d violations", a.Violations)
	}
}

// TestSwitchedBeatsPartitioned is the issue's acceptance criterion: on
// the same trace, with several jobs competing for slots, switched
// whole-buffer credits must beat partitioned per-context credits on both
// mean bounded slowdown and aggregate utilization — for every packing
// policy.
func TestSwitchedBeatsPartitioned(t *testing.T) {
	base := DefaultConfig(8)
	base.Trace = smallTrace(t, 16)
	rs, err := Compare(base, []fm.Policy{fm.Partitioned, fm.Switched}, gang.Policies())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(rs); i += 2 {
		part, sw := rs[i], rs[i+1]
		if part.Scheme != fm.Partitioned || sw.Scheme != fm.Switched {
			t.Fatalf("grid order broken at %d", i)
		}
		if sw.PeakConcurrent < 4 {
			t.Errorf("%s: peak concurrency %d < 4, comparison not meaningful",
				sw.Packing, sw.PeakConcurrent)
		}
		if sw.MeanSlowdown >= part.MeanSlowdown {
			t.Errorf("%s: switched mean bsld %.2f not better than partitioned %.2f",
				sw.Packing, sw.MeanSlowdown, part.MeanSlowdown)
		}
		if sw.Utilization <= part.Utilization {
			t.Errorf("%s: switched utilization %.3f not better than partitioned %.3f",
				sw.Packing, sw.Utilization, part.Utilization)
		}
	}
}

// TestChaosSmoke is the chaos-compatibility satellite: a fault plan with
// data loss and a node slowdown installed under a sched run must keep the
// auditor wired and produce a byte-identical injection trace per seed.
func TestChaosSmoke(t *testing.T) {
	// All message sizes fit one fragment (<= myrinet.MaxPayload): FM has
	// no retransmission, so whole-message loss stalls delivery — which the
	// auditor flags — while a lost middle fragment would be a protocol
	// violation the endpoint panics on.
	trace := []TraceJob{
		{Arrive: 0, Size: 4, Kernel: KernelAllToAll, Units: 2, Msgs: 10, MsgBytes: 1024, Compute: 100_000},
		{Arrive: 1_000_000, Size: 2, Kernel: KernelBSP, Units: 3, Msgs: 8, MsgBytes: 512, Compute: 200_000},
		{Arrive: 2_500_000, Size: 4, Kernel: KernelStencil, Units: 4, Msgs: 1, MsgBytes: 1024, Compute: 150_000},
		{Arrive: 4_000_000, Size: 3, Kernel: KernelMasterWorker, Units: 6, Msgs: 1, MsgBytes: 256, Compute: 300_000},
	}
	run := func() *Result {
		cfg := DefaultConfig(8)
		cfg.Trace = trace
		cfg.Deadline = 400_000_000
		cfg.Chaos = &chaos.Plan{
			Seed: 99,
			Faults: []chaos.Fault{
				{Kind: chaos.DataLoss, From: 0, Until: 200_000_000, Prob: 0.05, Node: -1},
				{Kind: chaos.NodeSlow, From: 10_000_000, Until: 60_000_000, Node: 1, Factor: 0.5},
			},
		}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if len(a.ChaosTrace) == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if !reflect.DeepEqual(a.ChaosTrace, b.ChaosTrace) {
		t.Fatal("chaos injection trace not byte-identical across runs")
	}
	if !reflect.DeepEqual(a.Jobs, b.Jobs) {
		t.Fatal("job metrics not deterministic under chaos")
	}
	// The auditor must still be wired (counting checks, zero or more
	// violations — under pure loss the go-back-N-free FM can stall, which
	// is exactly what the auditor is there to flag deterministically).
	if a.Violations != b.Violations {
		t.Fatal("auditor verdict not deterministic")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig(8)
	if _, err := Run(cfg); err == nil {
		t.Fatal("empty trace accepted")
	}
	cfg.Trace = []TraceJob{{Arrive: 0, Size: 99, Kernel: KernelBSP, Units: 1, Msgs: 1, MsgBytes: 64}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("oversized job accepted")
	}
}
