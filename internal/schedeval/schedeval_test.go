package schedeval

import (
	"reflect"
	"strings"
	"testing"

	"gangfm/internal/chaos"
	"gangfm/internal/fm"
	"gangfm/internal/gang"
	"gangfm/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(8)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	cfg.Seed = 2
	c, _ := Generate(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	for i, j := range a {
		if err := j.Validate(8); err != nil {
			t.Fatalf("generated job %d invalid: %v", i, err)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	jobs, err := Generate(DefaultGenConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := FormatTrace(&b, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, back) {
		t.Fatal("trace did not round-trip")
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, bad := range []string{
		"1 2 bsp 1 1",       // too few fields
		"1 2 warp 1 1 64 0", // unknown kernel
		"x 2 bsp 1 1 64 0",  // non-numeric field
		"1 2 bsp 1 1 64 -5", // negative number
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTrace(%q) accepted", bad)
		}
	}
	got, err := ParseTrace(strings.NewReader("# comment\n\n10 2 bsp 2 1 64 1000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kernel != KernelBSP || got[0].Size != 2 {
		t.Fatalf("parsed %+v", got)
	}
}

func smallTrace(t *testing.T, jobs int) []TraceJob {
	t.Helper()
	cfg := DefaultGenConfig(8)
	cfg.Seed = 7
	cfg.Jobs = jobs
	trace, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Trace = smallTrace(t, 10)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different results")
	}
	if a.Finished != len(a.Jobs) {
		t.Fatalf("only %d/%d jobs finished", a.Finished, len(a.Jobs))
	}
	if !a.AuditOK {
		t.Fatalf("auditor flagged a clean run: %d violations", a.Violations)
	}
}

// TestSwitchedBeatsPartitioned is the issue's acceptance criterion: on
// the same trace, with several jobs competing for slots, switched
// whole-buffer credits must beat partitioned per-context credits on both
// mean bounded slowdown and aggregate utilization — for every packing
// policy.
func TestSwitchedBeatsPartitioned(t *testing.T) {
	base := DefaultConfig(8)
	base.Trace = smallTrace(t, 16)
	rs, err := Compare(base, []fm.Policy{fm.Partitioned, fm.Switched}, gang.Policies())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(rs); i += 2 {
		part, sw := rs[i], rs[i+1]
		if part.Scheme != fm.Partitioned || sw.Scheme != fm.Switched {
			t.Fatalf("grid order broken at %d", i)
		}
		if sw.PeakConcurrent < 4 {
			t.Errorf("%s: peak concurrency %d < 4, comparison not meaningful",
				sw.Packing, sw.PeakConcurrent)
		}
		if sw.MeanSlowdown >= part.MeanSlowdown {
			t.Errorf("%s: switched mean bsld %.2f not better than partitioned %.2f",
				sw.Packing, sw.MeanSlowdown, part.MeanSlowdown)
		}
		if sw.Utilization <= part.Utilization {
			t.Errorf("%s: switched utilization %.3f not better than partitioned %.3f",
				sw.Packing, sw.Utilization, part.Utilization)
		}
	}
}

// TestChaosSmoke is the chaos-compatibility satellite: a fault plan with
// data loss and a node slowdown installed under a sched run must keep the
// auditor wired and produce a byte-identical injection trace per seed.
func TestChaosSmoke(t *testing.T) {
	// All message sizes fit one fragment (<= myrinet.MaxPayload): FM has
	// no retransmission, so whole-message loss stalls delivery — which the
	// auditor flags — while a lost middle fragment would be a protocol
	// violation the endpoint panics on.
	trace := []TraceJob{
		{Arrive: 0, Size: 4, Kernel: KernelAllToAll, Units: 2, Msgs: 10, MsgBytes: 1024, Compute: 100_000},
		{Arrive: 1_000_000, Size: 2, Kernel: KernelBSP, Units: 3, Msgs: 8, MsgBytes: 512, Compute: 200_000},
		{Arrive: 2_500_000, Size: 4, Kernel: KernelStencil, Units: 4, Msgs: 1, MsgBytes: 1024, Compute: 150_000},
		{Arrive: 4_000_000, Size: 3, Kernel: KernelMasterWorker, Units: 6, Msgs: 1, MsgBytes: 256, Compute: 300_000},
	}
	run := func() *Result {
		cfg := DefaultConfig(8)
		cfg.Trace = trace
		cfg.Deadline = 400_000_000
		cfg.Chaos = &chaos.Plan{
			Seed: 99,
			Faults: []chaos.Fault{
				{Kind: chaos.DataLoss, From: 0, Until: 200_000_000, Prob: 0.05, Node: -1},
				{Kind: chaos.NodeSlow, From: 10_000_000, Until: 60_000_000, Node: 1, Factor: 0.5},
			},
		}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if len(a.ChaosTrace) == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if !reflect.DeepEqual(a.ChaosTrace, b.ChaosTrace) {
		t.Fatal("chaos injection trace not byte-identical across runs")
	}
	if !reflect.DeepEqual(a.Jobs, b.Jobs) {
		t.Fatal("job metrics not deterministic under chaos")
	}
	// The auditor must still be wired (counting checks, zero or more
	// violations — under pure loss the go-back-N-free FM can stall, which
	// is exactly what the auditor is there to flag deterministically).
	if a.Violations != b.Violations {
		t.Fatal("auditor verdict not deterministic")
	}
}

// TestChurnDirectivesRoundTrip covers the kill=/resize=/deadline= trace
// extension: directives survive a format/parse cycle in any combination,
// and directive-free jobs still format to the original 7-field lines.
func TestChurnDirectivesRoundTrip(t *testing.T) {
	jobs := []TraceJob{
		{Arrive: 10, Size: 2, Kernel: KernelBSP, Units: 2, Msgs: 4, MsgBytes: 64, Compute: 1000},
		{Arrive: 20, Size: 4, Kernel: KernelStencil, Units: 3, Msgs: 1, MsgBytes: 128, Compute: 2000,
			Kill: 5_000_000},
		{Arrive: 30, Size: 2, Kernel: KernelAllToAll, Units: 2, Msgs: 6, MsgBytes: 256, Compute: 500,
			ResizeAt: 9_000_000, ResizeTo: 4, Deadline: 90_000_000},
		{Arrive: 40, Size: 3, Kernel: KernelMasterWorker, Units: 6, Msgs: 1, MsgBytes: 64, Compute: 800,
			Deadline: 70_000_000},
	}
	for i, j := range jobs {
		if err := j.Validate(8); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
	}
	var b strings.Builder
	if err := FormatTrace(&b, jobs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if got := len(strings.Fields(lines[1])); got != 7 {
		t.Fatalf("directive-free job formatted with %d fields, want 7", got)
	}
	if !strings.Contains(lines[2], "kill=5000000") {
		t.Fatalf("kill directive missing: %q", lines[2])
	}
	if !strings.Contains(lines[3], "resize=4@9000000") || !strings.Contains(lines[3], "deadline=90000000") {
		t.Fatalf("resize/deadline directives missing: %q", lines[3])
	}
	back, err := ParseTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, back) {
		t.Fatalf("churn trace did not round-trip:\n%+v\n%+v", jobs, back)
	}
	for _, bad := range []string{
		"1 2 bsp 1 1 64 0 kill",            // no value
		"1 2 bsp 1 1 64 0 kill=x",          // bad number
		"1 2 bsp 1 1 64 0 resize=4",        // missing @time
		"1 2 bsp 1 1 64 0 frobnicate=1",    // unknown key
		"1 2 bsp 1 1 64 0 deadline=-3",     // negative
		"1 2 bsp 1 1 64 0 resize=4@x",      // bad resize time
		"1 2 bsp 1 1 64 0 kill=1 extra -2", // trailing junk
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTrace(%q) accepted", bad)
		}
	}
	// Churn-field validation.
	base := TraceJob{Arrive: 100, Size: 2, Kernel: KernelBSP, Units: 1, Msgs: 1, MsgBytes: 64}
	for name, mut := range map[string]func(*TraceJob){
		"kill before arrival":     func(j *TraceJob) { j.Kill = 50 },
		"deadline before arrival": func(j *TraceJob) { j.Deadline = 100 },
		"resize without time":     func(j *TraceJob) { j.ResizeTo = 4 },
		"resize without size":     func(j *TraceJob) { j.ResizeAt = 500 },
		"resize to oversized":     func(j *TraceJob) { j.ResizeAt = 500; j.ResizeTo = 99 },
	} {
		j := base
		mut(&j)
		if err := j.Validate(8); err == nil {
			t.Errorf("Validate accepted %s", name)
		}
	}
}

// TestGenerateChurnFractions checks the generator's churn post-pass: the
// base stream (arrivals, sizes, kernels) is bit-identical with and without
// churn fractions, roughly the requested share of jobs carries each
// directive, and everything generated still validates.
func TestGenerateChurnFractions(t *testing.T) {
	base := DefaultGenConfig(8)
	base.Jobs = 200
	plain, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	churned := base
	churned.KillFraction = 0.2
	churned.ResizeFraction = 0.2
	churned.DeadlineFraction = 0.3
	jobs, err := Generate(churned)
	if err != nil {
		t.Fatal(err)
	}
	kills, resizes, deadlines := 0, 0, 0
	for i, j := range jobs {
		stripped := j
		stripped.Kill, stripped.ResizeAt, stripped.ResizeTo, stripped.Deadline = 0, 0, 0, 0
		if !reflect.DeepEqual(stripped, plain[i]) {
			t.Fatalf("churn post-pass perturbed base job %d: %+v vs %+v", i, stripped, plain[i])
		}
		if err := j.Validate(8); err != nil {
			t.Fatalf("churned job %d invalid: %v", i, err)
		}
		if j.Kill != 0 {
			kills++
		}
		if j.ResizeTo != 0 {
			resizes++
		}
		if j.Deadline != 0 {
			deadlines++
		}
	}
	if kills == 0 || resizes == 0 || deadlines == 0 {
		t.Fatalf("churn fractions produced kills=%d resizes=%d deadlines=%d, want all > 0",
			kills, resizes, deadlines)
	}
	again, err := Generate(churned)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, again) {
		t.Fatal("churned generation not deterministic")
	}
}

// TestCensoredReported pins satellite 3: jobs cut off by the run deadline
// are counted in Result.Censored and surface in the summary table's cens
// column instead of being silently folded into the response means.
func TestCensoredReported(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Trace = smallTrace(t, 10)
	cfg.Deadline = 5_000_000 // far too short for ten jobs
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Censored == 0 {
		t.Fatal("expected censored jobs under a 5M-cycle deadline")
	}
	if r.Censored+r.Finished != len(r.Jobs) {
		t.Fatalf("censored %d + finished %d != %d jobs", r.Censored, r.Finished, len(r.Jobs))
	}
	rendered := SummaryTable([]*Result{r}).String()
	if !strings.Contains(rendered, "cens") {
		t.Fatalf("summary table lacks a cens column:\n%s", rendered)
	}
	// A full run censors nothing.
	cfg.Deadline = 0
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Censored != 0 {
		t.Fatalf("full run reports %d censored jobs, want 0", full.Censored)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig(8)
	if _, err := Run(cfg); err == nil {
		t.Fatal("empty trace accepted")
	}
	cfg.Trace = []TraceJob{{Arrive: 0, Size: 99, Kernel: KernelBSP, Units: 1, Msgs: 1, MsgBytes: 64}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("oversized job accepted")
	}
}

// TestGenCrashes pins the crash sampler: deterministic per seed, times in
// the mid-run window [span/4, span), nodes ascending and in range, never
// the whole machine, and an RNG stream independent of the job generator's.
func TestGenCrashes(t *testing.T) {
	const span = 40_000_000
	crashes, err := GenCrashes(7, 8, 0.5, span)
	if err != nil {
		t.Fatal(err)
	}
	if len(crashes) == 0 {
		t.Fatal("fraction 0.5 over 8 nodes sampled no crashes")
	}
	if len(crashes) > 7 {
		t.Fatalf("%d crashes would take the whole 8-node machine down", len(crashes))
	}
	for i, c := range crashes {
		if err := c.Validate(8); err != nil {
			t.Fatalf("crash %d: %v", i, err)
		}
		if c.At < span/4 || c.At >= span {
			t.Fatalf("crash %d at %d outside [%d, %d)", i, c.At, span/4, span)
		}
		if i > 0 && crashes[i-1].Node >= c.Node {
			t.Fatalf("crash nodes not ascending: %v", crashes)
		}
	}
	again, err := GenCrashes(7, 8, 0.5, span)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(crashes, again) {
		t.Fatal("crash sampling not deterministic")
	}
	if none, err := GenCrashes(7, 8, 0, span); err != nil || none != nil {
		t.Fatalf("fraction 0: crashes=%v err=%v, want nil/nil", none, err)
	}
	for name, call := range map[string]func() ([]Crash, error){
		"fraction > 1": func() ([]Crash, error) { return GenCrashes(7, 8, 1.5, span) },
		"no nodes":     func() ([]Crash, error) { return GenCrashes(7, 0, 0.5, span) },
		"no span":      func() ([]Crash, error) { return GenCrashes(7, 8, 0.5, 0) },
	} {
		if _, err := call(); err == nil {
			t.Errorf("GenCrashes accepted %s", name)
		}
	}
}

// TestCrashDirectiveRoundTrip pins the crash trace syntax: FormatTraceFull
// emits "crash node@T" lines that ParseTraceFull round-trips alongside the
// job lines, while the offline ParseTrace — which cannot represent a dead
// node — rejects any trace carrying one.
func TestCrashDirectiveRoundTrip(t *testing.T) {
	jobs := []TraceJob{
		{Arrive: 10, Size: 2, Kernel: KernelBSP, Units: 2, Msgs: 4, MsgBytes: 64, Compute: 1000},
		{Arrive: 20, Size: 4, Kernel: KernelStencil, Units: 3, Msgs: 1, MsgBytes: 128, Compute: 2000,
			Kill: 5_000_000},
	}
	crashes := []Crash{{Node: 0, At: 9_000_000}, {Node: 5, At: 12_345_678}}
	repairs := []Repair{{Node: 5, At: 20_000_000}}
	var b strings.Builder
	if err := FormatTraceFull(&b, jobs, crashes, repairs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "crash 5@12345678") {
		t.Fatalf("crash directive missing:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "repair 5@20000000") {
		t.Fatalf("repair directive missing:\n%s", b.String())
	}
	backJobs, backCrashes, backRepairs, err := ParseTraceFull(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, backJobs) || !reflect.DeepEqual(crashes, backCrashes) ||
		!reflect.DeepEqual(repairs, backRepairs) {
		t.Fatalf("crash trace did not round-trip:\n%+v %+v %+v\n%+v %+v %+v",
			jobs, crashes, repairs, backJobs, backCrashes, backRepairs)
	}
	if _, err := ParseTrace(strings.NewReader(b.String())); err == nil {
		t.Fatal("ParseTrace accepted a trace with crash directives")
	}
	for _, bad := range []string{
		"crash",              // no operand
		"crash 1",            // missing @T
		"crash x@5",          // bad node
		"crash 1@x",          // bad time
		"crash 1@5 trailer",  // extra field
		"repair",             // no operand
		"repair 1",           // missing @T
		"repair x@5",         // bad node
		"repair 1@x",         // bad time
		"repair 1@5 trailer", // extra field
	} {
		if _, _, _, err := ParseTraceFull(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTraceFull(%q) accepted", bad)
		}
	}
}

// TestRepairValidation pins ValidateRepairs's alternation rule (every
// repair must strictly follow an unmatched crash of the same node) and
// GenRepairs's determinism and pairing guarantee.
func TestRepairValidation(t *testing.T) {
	crashes := []Crash{{Node: 1, At: 100}, {Node: 3, At: 200}}
	good := []Repair{{Node: 1, At: 150}, {Node: 3, At: 900}}
	if err := ValidateRepairs(good, crashes, 8); err != nil {
		t.Fatalf("valid repairs rejected: %v", err)
	}
	for name, reps := range map[string][]Repair{
		"no crash":       {{Node: 2, At: 150}},
		"before crash":   {{Node: 1, At: 50}},
		"at crash":       {{Node: 1, At: 100}},
		"double repair":  {{Node: 1, At: 150}, {Node: 1, At: 160}},
		"node range":     {{Node: 9, At: 150}},
		"non-positive t": {{Node: 1, At: 0}},
	} {
		if err := ValidateRepairs(reps, crashes, 8); err == nil {
			t.Errorf("ValidateRepairs accepted %s", name)
		}
	}

	span := sim.Time(40_000_000)
	reps, err := GenRepairs(13, crashes, 0.9, span/4)
	if err != nil {
		t.Fatal(err)
	}
	again, err := GenRepairs(13, crashes, 0.9, span/4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reps, again) {
		t.Fatal("repair sampling not deterministic")
	}
	if err := ValidateRepairs(reps, crashes, 8); err != nil {
		t.Fatalf("generated repairs invalid: %v", err)
	}
	if none, err := GenRepairs(13, crashes, 0, span); err != nil || none != nil {
		t.Fatalf("fraction 0: repairs=%v err=%v, want nil/nil", none, err)
	}
	for name, call := range map[string]func() ([]Repair, error){
		"fraction > 1": func() ([]Repair, error) { return GenRepairs(13, crashes, 1.5, span) },
		"tiny mttr":    func() ([]Repair, error) { return GenRepairs(13, crashes, 0.5, 1) },
	} {
		if _, err := call(); err == nil {
			t.Errorf("GenRepairs accepted %s", name)
		}
	}
}
