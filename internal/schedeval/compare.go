package schedeval

import (
	"fmt"

	"gangfm/internal/fm"
	"gangfm/internal/gang"
	"gangfm/internal/metrics"
	"gangfm/internal/sim"
)

// Compare replays the base config's trace under every (packing, scheme)
// combination, packing-major, and returns the runs in grid order. The
// runs share the trace but nothing else, so each is independently
// deterministic.
func Compare(base Config, schemes []fm.Policy, packings []gang.Policy) ([]*Result, error) {
	var out []*Result
	for _, p := range packings {
		for _, s := range schemes {
			cfg := base
			cfg.Scheme = s
			cfg.Packing = p
			r, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("schedeval: %s/%s: %w", p.Name(), s, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// ms renders cycles as milliseconds on the default clock.
func ms(t float64) float64 {
	return sim.DefaultClock.ToDuration(sim.Time(t)).Seconds() * 1e3
}

// SummaryTable renders one row per run: the comparison the paper's n²
// credit argument predicts (partitioned slowdowns blow up with competing
// jobs; switched ones do not). The response and slowdown aggregates
// cover finished jobs only; censored jobs get their count and their mean
// deadline-clamped response (a lower bound) in their own columns.
func SummaryTable(rs []*Result) *metrics.Table {
	t := metrics.NewTable(
		"Trace-driven schedule evaluation",
		"packing", "credits", "jobs", "done", "cens", "cens_resp_ms", "peak",
		"makespan_ms", "mean_resp_ms", "mean_bsld", "max_bsld", "util",
		"comm_frac", "switches",
	)
	for _, r := range rs {
		t.AddRow(
			r.Packing, r.Scheme.String(), len(r.Jobs), r.Finished, r.Censored,
			ms(r.CensoredMeanResponse), r.PeakConcurrent,
			ms(float64(r.Makespan)), ms(r.MeanResponse),
			r.MeanSlowdown, r.MaxSlowdown, r.Utilization, r.MeanCommFraction,
			r.Switches,
		)
	}
	return t
}

// JobTable renders a run's per-job metrics.
func JobTable(r *Result) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Per-job metrics (%s packing, %s credits)", r.Packing, r.Scheme),
		"job", "kernel", "size", "done", "arrive_ms", "wait_ms", "resp_ms",
		"bsld", "comm_frac", "switches",
	)
	for _, m := range r.Jobs {
		done := "yes"
		if !m.Finished {
			done = "no"
		}
		t.AddRow(
			m.Index, m.Kernel.String(), m.Size, done,
			ms(float64(m.Arrive)), ms(float64(m.Wait)), ms(float64(m.Response)),
			m.Slowdown, m.CommFraction, m.Switches,
		)
	}
	return t
}
