// Package schedeval is the trace-driven scheduler-evaluation subsystem:
// it replays a stream of parallel-job arrivals against a parpar cluster,
// with a chosen credit scheme (Partitioned vs Switched buffers) and
// gang-matrix packing policy, and reports per-job response time, bounded
// slowdown, communication fraction, and aggregate utilization. It is the
// end-to-end demonstration of the paper's claim: partitioning the NIC
// buffers by the context count costs every job dearly once several jobs
// compete for slots, while switched whole-buffer credits do not.
package schedeval

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gangfm/internal/parpar"
	"gangfm/internal/sim"
	"gangfm/internal/workload"
)

// Kernel identifies the application model a trace job runs.
type Kernel int

const (
	// KernelBSP is the bulk-synchronous compute/exchange kernel.
	KernelBSP Kernel = iota
	// KernelStencil is the ring halo-exchange kernel.
	KernelStencil
	// KernelMasterWorker is the task-bag kernel.
	KernelMasterWorker
	// KernelAllToAll is the paper's §4.2 all-to-all stress benchmark.
	KernelAllToAll
)

var kernelNames = [...]string{"bsp", "stencil", "masterworker", "alltoall"}

// String returns the kernel's trace-format name.
func (k Kernel) String() string {
	if k < 0 || int(k) >= len(kernelNames) {
		return fmt.Sprintf("kernel(%d)", int(k))
	}
	return kernelNames[k]
}

// KernelByName resolves a trace-format kernel name.
func KernelByName(name string) (Kernel, bool) {
	for i, n := range kernelNames {
		if n == name {
			return Kernel(i), true
		}
	}
	return 0, false
}

// TraceJob is one arrival in a job trace.
type TraceJob struct {
	// Arrive is the submission time in cycles.
	Arrive sim.Time
	// Size is the number of nodes (= ranks) the job gangs across.
	Size int
	// Kernel selects the application model.
	Kernel Kernel
	// Units is the kernel's outer iteration count: BSP phases, stencil
	// iterations, master-worker tasks, or all-to-all rounds.
	Units int
	// Msgs is the per-unit message multiplier (per peer for BSP, per
	// round for all-to-all; ignored by stencil and master-worker, which
	// fix their per-unit message counts).
	Msgs int
	// MsgBytes is the payload size: exchange/halo message bytes, or the
	// master-worker task descriptor size.
	MsgBytes int
	// Compute is the per-unit compute time in cycles (per phase,
	// iteration, or task).
	Compute sim.Time

	// Churn directives, all optional (zero = absent), consumed by the
	// online scheduler daemon (internal/schedd); the offline replayer
	// ignores them. Kill terminates the job at the given absolute time.
	// ResizeAt restarts the job at ResizeTo nodes at the given absolute
	// time (gang jobs are rigid within one incarnation, so resize is a
	// kill + resubmit). Deadline is the job's absolute response deadline;
	// missing it is reported, not enforced.
	Kill     sim.Time
	ResizeAt sim.Time
	ResizeTo int
	Deadline sim.Time
}

// Crash is a machine-level trace directive: node Node fail-stops at
// absolute time At. Crashes belong to the trace, not to any job — the
// failure-aware churn path (internal/schedd) arms them as chaos NodeCrash
// faults; the offline replayer cannot represent them and ParseTrace
// rejects traces that carry any.
type Crash struct {
	Node int
	At   sim.Time
}

// Validate checks the crash against the machine size.
func (c Crash) Validate(nodes int) error {
	if c.Node < 0 || c.Node >= nodes {
		return fmt.Errorf("schedeval: crash node %d outside 0..%d", c.Node, nodes-1)
	}
	if c.At <= 0 {
		return fmt.Errorf("schedeval: crash time %d must be positive", c.At)
	}
	return nil
}

// Repair is the machine-level trace directive closing a Crash: node Node
// is repaired at absolute time At and its fresh incarnation rejoins the
// cluster. Like crashes, repairs belong to the trace, not to any job; the
// failure-aware churn path arms them as chaos NodeRepair faults.
type Repair struct {
	Node int
	At   sim.Time
}

// Validate checks the repair against the machine size.
func (r Repair) Validate(nodes int) error {
	if r.Node < 0 || r.Node >= nodes {
		return fmt.Errorf("schedeval: repair node %d outside 0..%d", r.Node, nodes-1)
	}
	if r.At <= 0 {
		return fmt.Errorf("schedeval: repair time %d must be positive", r.At)
	}
	return nil
}

// ValidateRepairs checks each repair against the machine size and the
// crash list: every repair must strictly follow a crash of the same node,
// and crash/repair must alternate per node (a node cannot be repaired
// twice without failing in between) — the same pairing rule the chaos
// plan enforces fault-by-fault.
func ValidateRepairs(repairs []Repair, crashes []Crash, nodes int) error {
	for _, r := range repairs {
		if err := r.Validate(nodes); err != nil {
			return err
		}
		down, up := 0, 0
		for _, c := range crashes {
			if c.Node == r.Node && c.At < r.At {
				down++
			}
		}
		for _, o := range repairs {
			if o.Node == r.Node && o.At < r.At {
				up++
			}
		}
		if down <= up {
			return fmt.Errorf("schedeval: repair of node %d at %d does not follow a crash of that node", r.Node, uint64(r.At))
		}
	}
	return nil
}

// Spec builds the job's parpar spec.
func (j TraceJob) Spec(name string) parpar.JobSpec {
	switch j.Kernel {
	case KernelBSP:
		if j.Size == 1 {
			return workload.BSP(name, 1, j.Units, 1, j.MsgBytes, j.Compute)
		}
		return workload.BSP(name, j.Size, j.Units, j.Msgs, j.MsgBytes, j.Compute)
	case KernelStencil:
		return workload.Stencil(name, j.Size, j.Units, j.MsgBytes, j.Compute)
	case KernelMasterWorker:
		return workload.MasterWorker(name, j.Size, j.Units, j.MsgBytes, j.Compute)
	case KernelAllToAll:
		return workload.AllToAll(name, j.Size, j.Units*j.Msgs, j.MsgBytes)
	}
	panic(fmt.Sprintf("schedeval: unknown kernel %v", j.Kernel))
}

// Nominal estimates the job's dedicated-machine service time in cycles.
// It is a deliberate scheme-independent work anchor — compute wall time
// plus a crude copy/latency charge per byte and message — used as the
// bounded-slowdown denominator and the utilization numerator, so the
// comparison between credit schemes on the same trace is apples to
// apples. The constants only scale the absolute numbers, never the
// direction of a comparison.
func (j TraceJob) Nominal() sim.Time {
	wall, comm := j.NominalParts()
	return wall + comm + 100_000
}

// NominalParts splits the Nominal anchor into its compute-wall and
// communication components (Nominal = wall + comm + a fixed launch
// charge). The split is what analytic contention models — the fractional
// processor-sharing mode — use to decide how much of a job's work
// degrades with co-residency.
func (j TraceJob) NominalParts() (wall, comm sim.Time) {
	var msgs, bytes int
	switch j.Kernel {
	case KernelBSP:
		msgs = j.Units * j.Msgs * (j.Size - 1)
	case KernelStencil:
		if j.Size > 1 {
			msgs = j.Units * 2
		}
	case KernelMasterWorker:
		// Per-rank traffic is dominated by the master: tasks out,
		// completions in.
		msgs = 2 * j.Units
	case KernelAllToAll:
		msgs = j.Units * j.Msgs * (j.Size - 1)
	}
	bytes = msgs * j.MsgBytes
	wall = sim.Time(j.Units) * j.Compute
	if j.Kernel == KernelMasterWorker && j.Size > 1 {
		// Tasks run on the workers, ceil-divided among them.
		perWorker := (j.Units + j.Size - 2) / (j.Size - 1)
		wall = sim.Time(perWorker) * j.Compute
	}
	return wall, sim.Time(bytes)*3 + sim.Time(msgs)*2000
}

// Validate checks the job against the machine size.
func (j TraceJob) Validate(nodes int) error {
	if j.Size < 1 || j.Size > nodes {
		return fmt.Errorf("schedeval: job size %d outside 1..%d", j.Size, nodes)
	}
	if j.Units < 1 || j.Msgs < 1 || j.MsgBytes < 1 {
		return fmt.Errorf("schedeval: job needs positive units/msgs/bytes, got %d/%d/%d",
			j.Units, j.Msgs, j.MsgBytes)
	}
	switch j.Kernel {
	case KernelMasterWorker:
		if j.Size < 2 {
			return fmt.Errorf("schedeval: master-worker job needs size >= 2")
		}
		if j.MsgBytes < 16 {
			return fmt.Errorf("schedeval: master-worker task bytes %d < 16", j.MsgBytes)
		}
	case KernelAllToAll:
		if j.Size < 2 {
			return fmt.Errorf("schedeval: all-to-all job needs size >= 2")
		}
	case KernelBSP, KernelStencil:
	default:
		return fmt.Errorf("schedeval: unknown kernel %d", int(j.Kernel))
	}
	if (j.ResizeAt != 0) != (j.ResizeTo != 0) {
		return fmt.Errorf("schedeval: resize needs both a time and a size, got %d@%d",
			j.ResizeTo, j.ResizeAt)
	}
	if j.ResizeTo != 0 {
		if j.ResizeAt <= j.Arrive {
			return fmt.Errorf("schedeval: resize time %d not after arrival %d", j.ResizeAt, j.Arrive)
		}
		// The post-resize incarnation must itself be a valid job.
		resized := j
		resized.Size = j.ResizeTo
		resized.ResizeAt, resized.ResizeTo = 0, 0
		resized.Kill, resized.Deadline = 0, 0
		if err := resized.Validate(nodes); err != nil {
			return fmt.Errorf("schedeval: resize target: %w", err)
		}
	}
	if j.Kill != 0 && j.Kill <= j.Arrive {
		return fmt.Errorf("schedeval: kill time %d not after arrival %d", j.Kill, j.Arrive)
	}
	if j.Deadline != 0 && j.Deadline <= j.Arrive {
		return fmt.Errorf("schedeval: deadline %d not after arrival %d", j.Deadline, j.Arrive)
	}
	return nil
}

// ParseTrace reads the trace text format: one job per line as
//
//	arrive size kernel units msgs bytes compute [kill=T] [resize=N@T] [deadline=T]
//
// with '#' comments and blank lines ignored. Times are in cycles. The
// trailing key=value churn directives are optional and may appear in any
// order; traces without them parse exactly as before. Machine-level
// crash=node@T lines are rejected here — they only make sense on the
// failure-aware churn path, which parses with ParseTraceFull.
func ParseTrace(r io.Reader) ([]TraceJob, error) {
	jobs, crashes, repairs, err := ParseTraceFull(r)
	if err != nil {
		return nil, err
	}
	if n := len(crashes) + len(repairs); n > 0 {
		return nil, fmt.Errorf("schedeval: trace carries %d crash/repair directives; they need the churn path (ParseTraceFull)", n)
	}
	return jobs, nil
}

// ParseTraceFull reads the trace text format including machine-level
// crash and repair directives, one per line as
//
//	crash node@T
//	repair node@T
//
// alongside the job lines ParseTrace documents. Crashes and repairs are
// returned in file order.
func ParseTraceFull(r io.Reader) ([]TraceJob, []Crash, []Repair, error) {
	var jobs []TraceJob
	var crashes []Crash
	var repairs []Repair
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if f[0] == "crash" || f[0] == "repair" {
			if len(f) != 2 {
				return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: want %q, got %d fields", line, f[0]+" node@T", len(f))
			}
			nodeStr, atStr, ok := strings.Cut(f[1], "@")
			if !ok {
				return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: %s %q (want node@T)", line, f[0], f[1])
			}
			node, err := strconv.ParseUint(nodeStr, 10, 32)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: %s node %q: %v", line, f[0], nodeStr, err)
			}
			at, err := strconv.ParseUint(atStr, 10, 64)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: %s time %q: %v", line, f[0], atStr, err)
			}
			if f[0] == "crash" {
				crashes = append(crashes, Crash{Node: int(node), At: sim.Time(at)})
			} else {
				repairs = append(repairs, Repair{Node: int(node), At: sim.Time(at)})
			}
			continue
		}
		if len(f) < 7 {
			return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: want at least 7 fields, got %d", line, len(f))
		}
		kernel, ok := KernelByName(f[2])
		if !ok {
			return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: unknown kernel %q", line, f[2])
		}
		nums := make([]uint64, 7)
		for i, s := range f[:7] {
			if i == 2 {
				continue
			}
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("schedeval: trace line %d field %d: %v", line, i+1, err)
			}
			nums[i] = v
		}
		j := TraceJob{
			Arrive:   sim.Time(nums[0]),
			Size:     int(nums[1]),
			Kernel:   kernel,
			Units:    int(nums[3]),
			Msgs:     int(nums[4]),
			MsgBytes: int(nums[5]),
			Compute:  sim.Time(nums[6]),
		}
		for _, tok := range f[7:] {
			key, val, ok := strings.Cut(tok, "=")
			if !ok {
				return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: bad directive %q (want key=value)", line, tok)
			}
			switch key {
			case "kill":
				v, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: kill=%q: %v", line, val, err)
				}
				j.Kill = sim.Time(v)
			case "deadline":
				v, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: deadline=%q: %v", line, val, err)
				}
				j.Deadline = sim.Time(v)
			case "resize":
				sz, at, ok := strings.Cut(val, "@")
				if !ok {
					return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: resize=%q (want N@T)", line, val)
				}
				n, err := strconv.ParseUint(sz, 10, 32)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: resize size %q: %v", line, sz, err)
				}
				t, err := strconv.ParseUint(at, 10, 64)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: resize time %q: %v", line, at, err)
				}
				j.ResizeTo, j.ResizeAt = int(n), sim.Time(t)
			default:
				return nil, nil, nil, fmt.Errorf("schedeval: trace line %d: unknown directive %q", line, key)
			}
		}
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, nil, err
	}
	return jobs, crashes, repairs, nil
}

// FormatTrace writes jobs in the ParseTrace format. Churn directives are
// emitted only when set, so churn-free traces round-trip to the original
// 7-field format.
func FormatTrace(w io.Writer, jobs []TraceJob) error {
	return FormatTraceFull(w, jobs, nil, nil)
}

// FormatTraceFull writes jobs plus machine-level crash and repair
// directives, which round-trip through ParseTraceFull. With no crashes or
// repairs the output is exactly FormatTrace's.
func FormatTraceFull(w io.Writer, jobs []TraceJob, crashes []Crash, repairs []Repair) error {
	if _, err := fmt.Fprintln(w, "# arrive size kernel units msgs bytes compute [kill=T] [resize=N@T] [deadline=T]"); err != nil {
		return err
	}
	for _, c := range crashes {
		if _, err := fmt.Fprintf(w, "crash %d@%d\n", c.Node, uint64(c.At)); err != nil {
			return err
		}
	}
	for _, r := range repairs {
		if _, err := fmt.Fprintf(w, "repair %d@%d\n", r.Node, uint64(r.At)); err != nil {
			return err
		}
	}
	for _, j := range jobs {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d %d %s %d %d %d %d",
			uint64(j.Arrive), j.Size, j.Kernel, j.Units, j.Msgs, j.MsgBytes, uint64(j.Compute))
		if j.Kill != 0 {
			fmt.Fprintf(&sb, " kill=%d", uint64(j.Kill))
		}
		if j.ResizeTo != 0 {
			fmt.Fprintf(&sb, " resize=%d@%d", j.ResizeTo, uint64(j.ResizeAt))
		}
		if j.Deadline != 0 {
			fmt.Fprintf(&sb, " deadline=%d", uint64(j.Deadline))
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}
