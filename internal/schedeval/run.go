package schedeval

import (
	"fmt"
	"sort"
	"strings"

	"gangfm/internal/chaos"
	"gangfm/internal/core"
	"gangfm/internal/fm"
	"gangfm/internal/gang"
	"gangfm/internal/metrics"
	"gangfm/internal/myrinet"
	"gangfm/internal/parpar"
	"gangfm/internal/sim"
	"gangfm/internal/workload"
)

// Config parameterizes one evaluation run: a trace replayed against one
// (credit scheme, packing policy) combination.
type Config struct {
	// Nodes and Slots shape the machine and its gang matrix.
	Nodes int
	Slots int
	// Quantum is the gang-scheduling time slice.
	Quantum sim.Time
	// Scheme selects Partitioned or Switched buffer credits.
	Scheme fm.Policy
	// Mode is the buffer-switch algorithm used by the Switched scheme.
	Mode core.CopyMode
	// Packing is the gang-matrix packing policy (nil = buddy).
	Packing gang.Policy
	// Trace is the arrival stream to replay.
	Trace []TraceJob
	// Seed drives control-network jitter.
	Seed uint64
	// SlowdownBound is Feitelson's short-job bound, in cycles.
	SlowdownBound sim.Time
	// Deadline bounds the run; jobs unfinished by then are censored at
	// the deadline. Zero means last arrival + 10000 quanta.
	Deadline sim.Time
	// Chaos optionally installs a fault plan under the run.
	Chaos *chaos.Plan
	// FailFast stops at the first invariant violation.
	FailFast bool
	// Shards and Workers select the sharded engine group for the cluster
	// (parpar.Config.Shards/Workers); results must be identical to an
	// unsharded run.
	Shards  int
	Workers int
}

// DefaultConfig returns the evaluation setup: a deep 8-row gang matrix
// (with 8 nodes that puts the partitioned scheme at C0 = 1 — the
// starvation regime the paper's n² argument predicts — while switched
// credits are unaffected), switched credits with the improved copy, a
// 20 ms quantum (long enough to amortize the buffer-switch cost the
// switched scheme pays per rotation), and a 10 ms slowdown bound.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		Slots:         8,
		Quantum:       4_000_000,
		Scheme:        fm.Switched,
		Mode:          core.ValidOnly,
		SlowdownBound: 2_000_000,
	}
}

// JobMetrics is one trace job's fate under a run.
type JobMetrics struct {
	Index    int
	Kernel   Kernel
	Size     int
	Arrive   sim.Time
	Submit   sim.Time // when the job left the FCFS backlog for the matrix
	Sync     sim.Time // when all ranks were up
	Done     sim.Time // completion, or the deadline when censored
	Finished bool
	// Nominal is the scheme-independent dedicated-machine work anchor.
	Nominal sim.Time
	// Response is Done - Arrive; Wait is Submit - Arrive.
	Response sim.Time
	Wait     sim.Time
	// Slowdown is the bounded slowdown max(1, response/max(nominal, bound)).
	Slowdown float64
	// CommFraction is 1 - compute/(size * residence): the share of the
	// job's node-seconds not spent in pure compute sections.
	CommFraction float64
	// Switches counts the per-node context switches into this job.
	Switches int
}

// Result aggregates a run.
type Result struct {
	Scheme  fm.Policy
	Packing string
	Jobs    []JobMetrics

	Finished int
	// Censored counts jobs still unfinished at the run deadline: their
	// Done is clamped to the deadline, so their response times are lower
	// bounds, not observations. They are excluded from MeanResponse and
	// the slowdown aggregates (which cover finished jobs only) and
	// reported separately through CensoredMeanResponse.
	Censored       int
	PeakConcurrent int
	Makespan       sim.Time
	MeanResponse   float64 // cycles, finished jobs only
	MeanSlowdown   float64 // finished jobs only
	MaxSlowdown    float64 // finished jobs only
	// CensoredMeanResponse is the mean deadline-clamped response of the
	// censored jobs — a lower bound on what their true mean would be, kept
	// out of MeanResponse so truncating a run earlier can never make the
	// reported mean look better.
	CensoredMeanResponse float64 // cycles
	// Utilization is sum(size * nominal) over finished jobs divided by
	// nodes * makespan — the fraction of the machine's node-cycles that
	// went to (nominally accounted) useful work.
	Utilization      float64
	MeanCommFraction float64
	Switches         int

	AuditOK    bool
	Violations int
	ChaosTrace []string
	Events     uint64
}

// Run replays the trace. Jobs are submitted FCFS: an arrival that does
// not fit the slot table waits in a backlog and is resubmitted, in
// arrival order, as running jobs exit.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Trace) == 0 {
		return nil, fmt.Errorf("schedeval: empty trace")
	}
	for i, j := range cfg.Trace {
		if err := j.Validate(cfg.Nodes); err != nil {
			return nil, fmt.Errorf("trace job %d: %w", i, err)
		}
	}
	pcfg := parpar.DefaultConfig(cfg.Nodes)
	pcfg.Slots = cfg.Slots
	pcfg.Policy = cfg.Scheme
	pcfg.Mode = cfg.Mode
	pcfg.Packing = cfg.Packing
	if cfg.Quantum > 0 {
		pcfg.Quantum = cfg.Quantum
	}
	// Fast-simulation control-network parameters (same as the experiment
	// harness uses).
	pcfg.CtrlJitter = 40_000
	pcfg.CtrlSerialGap = 20_000
	pcfg.ForkDelay = 50_000
	if cfg.Seed != 0 {
		pcfg.Seed = cfg.Seed
	}
	pcfg.Chaos = cfg.Chaos
	pcfg.FailFast = cfg.FailFast
	pcfg.Shards = cfg.Shards
	pcfg.Workers = cfg.Workers
	cluster, err := parpar.New(pcfg)
	if err != nil {
		return nil, err
	}

	// Arrival order: by time, ties by trace position.
	order := make([]int, len(cfg.Trace))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cfg.Trace[order[a]].Arrive < cfg.Trace[order[b]].Arrive
	})

	type fate struct {
		submitted bool
		submit    sim.Time
		sync      sim.Time
		done      sim.Time
		finished  bool
	}
	fates := make([]fate, len(cfg.Trace))
	idOf := make(map[myrinet.JobID]int)
	jobOf := make(map[int]*parpar.Job)
	var backlog []int
	inSystem, peak := 0, 0

	var drain func()
	drain = func() {
		for len(backlog) > 0 {
			i := backlog[0]
			tj := cfg.Trace[i]
			name := fmt.Sprintf("j%d-%s", i, tj.Kernel)
			job, err := cluster.Submit(tj.Spec(name))
			if err != nil {
				if strings.Contains(err.Error(), "slot table full") {
					return // resubmitted when a job exits
				}
				panic(fmt.Sprintf("schedeval: submit job %d: %v", i, err))
			}
			backlog = backlog[1:]
			fates[i].submitted = true
			fates[i].submit = cluster.Eng.Now()
			idOf[job.ID] = i
			jobOf[i] = job
			job.OnDone(func(j *parpar.Job) {
				k := idOf[j.ID]
				fates[k].sync = j.SyncTime
				fates[k].done = j.DoneTime
				fates[k].finished = true
				inSystem--
				drain()
			})
		}
	}
	var lastArrive sim.Time
	for _, i := range order {
		i := i
		if cfg.Trace[i].Arrive > lastArrive {
			lastArrive = cfg.Trace[i].Arrive
		}
		cluster.Eng.ScheduleAt(cfg.Trace[i].Arrive, func() {
			inSystem++
			if inSystem > peak {
				peak = inSystem
			}
			backlog = append(backlog, i)
			drain()
		})
	}

	deadline := cfg.Deadline
	if deadline == 0 {
		q := pcfg.Quantum
		deadline = lastArrive + 10_000*q
	}
	cluster.RunUntil(deadline)

	// Switches endured, per job, across all nodes.
	switchesOf := make(map[myrinet.JobID]int)
	totalSwitches := 0
	for _, hist := range cluster.SwitchHistory() {
		for _, s := range hist {
			totalSwitches++
			if s.To != myrinet.NoJob {
				switchesOf[s.To]++
			}
		}
	}

	res := &Result{
		Scheme:     cfg.Scheme,
		Packing:    cluster.Master().Matrix().Policy().Name(),
		Switches:   totalSwitches,
		AuditOK:    cluster.Auditor().Ok(),
		Violations: len(cluster.Auditor().Violations()),
		ChaosTrace: cluster.ChaosTrace(),
		Events:     cluster.Fired(),
	}
	bound := float64(cfg.SlowdownBound)
	firstArrive := cfg.Trace[order[0]].Arrive
	var lastEnd sim.Time
	var slowdowns, comms []float64
	var usefulWork float64
	for i, tj := range cfg.Trace {
		f := fates[i]
		m := JobMetrics{
			Index:   i,
			Kernel:  tj.Kernel,
			Size:    tj.Size,
			Arrive:  tj.Arrive,
			Nominal: tj.Nominal(),
		}
		end := deadline
		if f.finished {
			m.Finished = true
			m.Submit, m.Sync, m.Done = f.submit, f.sync, f.done
			end = f.done
			res.Finished++
		} else if f.submitted {
			m.Submit = f.submit
			m.Done = deadline
			res.Censored++
		} else {
			m.Submit = deadline
			m.Done = deadline
			res.Censored++
		}
		if end > lastEnd {
			lastEnd = end
		}
		m.Response = end - tj.Arrive
		if m.Submit > tj.Arrive {
			m.Wait = m.Submit - tj.Arrive
		}
		m.Slowdown = metrics.BoundedSlowdown(float64(m.Response), float64(m.Nominal), bound)
		m.CommFraction = 1
		if f.finished && f.done > f.sync {
			residence := float64(tj.Size) * float64(f.done-f.sync)
			compute := float64(workload.TotalCompute(jobOf[i]))
			if frac := 1 - compute/residence; frac >= 0 {
				m.CommFraction = frac
			} else {
				m.CommFraction = 0
			}
			usefulWork += float64(tj.Size) * float64(m.Nominal)
		}
		if job := jobOf[i]; job != nil {
			m.Switches = switchesOf[job.ID]
		}
		if m.Finished {
			slowdowns = append(slowdowns, m.Slowdown)
			comms = append(comms, m.CommFraction)
		}
		res.Jobs = append(res.Jobs, m)
	}
	res.PeakConcurrent = peak
	res.Makespan = lastEnd - firstArrive
	var responses, censResponses []float64
	for _, m := range res.Jobs {
		if m.Finished {
			responses = append(responses, float64(m.Response))
		} else {
			censResponses = append(censResponses, float64(m.Response))
		}
	}
	res.MeanResponse = metrics.Mean(responses)
	res.MeanSlowdown = metrics.Mean(slowdowns)
	res.MaxSlowdown = metrics.Max(slowdowns)
	res.CensoredMeanResponse = metrics.Mean(censResponses)
	res.MeanCommFraction = metrics.Mean(comms)
	if res.Makespan > 0 {
		res.Utilization = usefulWork / (float64(cfg.Nodes) * float64(res.Makespan))
	}
	return res, nil
}
