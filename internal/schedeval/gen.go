package schedeval

import (
	"fmt"
	"math"

	"gangfm/internal/sim"
)

// GenConfig parameterizes the synthetic job-arrival generator.
type GenConfig struct {
	// Seed drives the (xorshift) generator; the same seed always yields
	// the same trace, bit for bit.
	Seed uint64
	// Jobs is the number of arrivals to generate.
	Jobs int
	// Nodes is the machine size jobs must fit.
	Nodes int
	// MeanInterarrival is the mean of the exponential gap between
	// arrivals, in cycles.
	MeanInterarrival sim.Time
	// CommIntensity in [0, 1] scales how communication-heavy the jobs
	// are: it shifts the mix toward more messages, bigger payloads, and
	// less per-unit compute.
	CommIntensity float64

	// Churn fractions in [0, 1], all zero by default. When any is
	// positive, a post-pass (continuing the same rng, so the base stream
	// stays bit-identical when all are zero) marks roughly that share of
	// jobs with a kill=, resize=, or deadline= directive. Kill and resize
	// are mutually exclusive per job; deadlines combine with either.
	KillFraction     float64
	ResizeFraction   float64
	DeadlineFraction float64
}

// DefaultGenConfig returns a workload of 40 jobs whose arrivals overlap
// enough to keep several jobs gang-scheduled at once on a machine of the
// given size.
func DefaultGenConfig(nodes int) GenConfig {
	return GenConfig{
		Seed:             1,
		Jobs:             40,
		Nodes:            nodes,
		MeanInterarrival: 1_500_000,
		CommIntensity:    0.7,
	}
}

// Generate produces a deterministic trace from the config: exponential
// interarrival gaps, power-of-two-leaning sizes, and a kernel mix of
// roughly 35% BSP, 25% stencil, 20% master-worker, and 20% all-to-all.
func Generate(cfg GenConfig) ([]TraceJob, error) {
	if cfg.Jobs <= 0 || cfg.Nodes <= 0 {
		return nil, fmt.Errorf("schedeval: generator needs positive jobs and nodes")
	}
	if cfg.MeanInterarrival <= 0 {
		return nil, fmt.Errorf("schedeval: generator needs a positive mean interarrival")
	}
	ci := cfg.CommIntensity
	if ci < 0 || ci > 1 {
		return nil, fmt.Errorf("schedeval: comm intensity %v outside [0,1]", ci)
	}
	rng := sim.NewRand(cfg.Seed)
	var jobs []TraceJob
	var now sim.Time
	for i := 0; i < cfg.Jobs; i++ {
		gap := sim.Time(-math.Log(1-rng.Float64()) * float64(cfg.MeanInterarrival))
		now += gap
		j := TraceJob{Arrive: now}

		// Sizes lean to powers of two (the gang matrix's buddy blocks)
		// with occasional odd widths for fragmentation pressure.
		pow2 := []int{1, 2, 2, 4, 4, 4}
		size := pow2[rng.Intn(len(pow2))]
		if rng.Bool(0.2) {
			size += rng.Intn(2)
		}
		if size > cfg.Nodes {
			size = cfg.Nodes
		}
		if size < 1 {
			size = 1
		}
		j.Size = size

		// Communication intensity trades compute for traffic. The message
		// streams have to be long enough for credit-limited senders to hit
		// steady state — single messages hide the partitioned scheme's
		// tiny per-context credit allowance.
		bytesChoices := []int{512, 1024, 2048, 4096}
		j.MsgBytes = bytesChoices[rng.Intn(len(bytesChoices))]
		j.Msgs = 8 + rng.Intn(8) + int(ci*30)
		j.Compute = sim.Time(50_000 + rng.Intn(150_000) + int((1-ci)*400_000))

		switch r := rng.Float64(); {
		case r < 0.35 || size == 1:
			j.Kernel = KernelBSP
			j.Units = 2 + rng.Intn(4)
		case r < 0.60:
			j.Kernel = KernelStencil
			j.Units = 4 + rng.Intn(6)
		case r < 0.80:
			j.Kernel = KernelMasterWorker
			if j.Size < 2 {
				j.Size = 2
			}
			j.Units = 3 * (j.Size - 1) // a few tasks per worker
			if j.MsgBytes < 16 {
				j.MsgBytes = 16
			}
		default:
			j.Kernel = KernelAllToAll
			j.Units = 2 + rng.Intn(3)
		}
		if err := j.Validate(cfg.Nodes); err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	if cfg.KillFraction > 0 || cfg.ResizeFraction > 0 || cfg.DeadlineFraction > 0 {
		for _, f := range []struct {
			name string
			frac float64
		}{
			{"kill", cfg.KillFraction}, {"resize", cfg.ResizeFraction}, {"deadline", cfg.DeadlineFraction},
		} {
			if f.frac < 0 || f.frac > 1 {
				return nil, fmt.Errorf("schedeval: %s fraction %v outside [0,1]", f.name, f.frac)
			}
		}
		for i := range jobs {
			j := &jobs[i]
			// Churn times scale with the job's own nominal so they land
			// mid-run: a quarter nominal after arrival at the earliest
			// (the job is usually placed by then), up to a few nominals
			// later (time slicing stretches real response well past one
			// nominal, so even the tail usually hits a live job).
			churnAt := func() sim.Time {
				n := int(j.Nominal())
				return j.Arrive + sim.Time(n/4+1+rng.Intn(3*n+1))
			}
			switch {
			case cfg.KillFraction > 0 && rng.Bool(cfg.KillFraction):
				j.Kill = churnAt()
			case cfg.ResizeFraction > 0 && rng.Bool(cfg.ResizeFraction):
				lo := 1
				if j.Kernel == KernelMasterWorker || j.Kernel == KernelAllToAll {
					lo = 2
				}
				to := lo + rng.Intn(cfg.Nodes-lo+1)
				if to == j.Size { // force a real size change when possible
					if to < cfg.Nodes {
						to++
					} else if to > lo {
						to--
					}
				}
				if to != j.Size {
					j.ResizeTo = to
					j.ResizeAt = churnAt()
				}
			}
			if cfg.DeadlineFraction > 0 && rng.Bool(cfg.DeadlineFraction) {
				j.Deadline = j.Arrive + 10*j.Nominal() + sim.Time(rng.Intn(40_000_000))
			}
			if err := j.Validate(cfg.Nodes); err != nil {
				return nil, err
			}
		}
	}
	return jobs, nil
}

// GenCrashes samples fail-stop node crashes for a failure-aware churn
// campaign: each node crashes independently with probability fraction, at
// a time uniform in [span/4, span). The RNG stream is derived from the
// seed but separate from the job generator's, so arming crashes never
// perturbs the job trace, and at least one node is always left alive.
// Crashes come back in ascending node order (times are independent).
func GenCrashes(seed uint64, nodes int, fraction float64, span sim.Time) ([]Crash, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("schedeval: crash fraction %v outside [0,1]", fraction)
	}
	if nodes <= 0 || span <= 0 {
		return nil, fmt.Errorf("schedeval: crash generator needs positive nodes and span")
	}
	if fraction == 0 {
		return nil, nil
	}
	rng := sim.NewRand(seed ^ 0xC4A5_4ED0)
	lo := span / 4
	if lo < 1 {
		lo = 1
	}
	var crashes []Crash
	for n := 0; n < nodes; n++ {
		if !rng.Bool(fraction) {
			continue
		}
		if len(crashes) >= nodes-1 {
			break // never take the whole machine down
		}
		at := lo + sim.Time(rng.Intn(int(span-lo)))
		crashes = append(crashes, Crash{Node: n, At: at})
	}
	return crashes, nil
}

// GenRepairs samples repairs for a crash list: each crashed node is
// repaired independently with probability fraction, at its crash time
// plus an MTTR uniform in [mttr/2, 3·mttr/2). The RNG stream is derived
// from the seed but separate from both the job generator's and the crash
// generator's, so turning repairs on never moves a crash or a job.
// Repairs come back in crash order, one per repaired crash, and always
// satisfy ValidateRepairs against the input crashes.
func GenRepairs(seed uint64, crashes []Crash, fraction float64, mttr sim.Time) ([]Repair, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("schedeval: repair fraction %v outside [0,1]", fraction)
	}
	if fraction > 0 && mttr <= 1 {
		return nil, fmt.Errorf("schedeval: repair generator needs an MTTR of at least 2 cycles, got %d", mttr)
	}
	if fraction == 0 || len(crashes) == 0 {
		return nil, nil
	}
	rng := sim.NewRand(seed ^ 0x4E9A_12D7)
	var repairs []Repair
	for _, c := range crashes {
		if !rng.Bool(fraction) {
			continue
		}
		at := c.At + mttr/2 + sim.Time(rng.Intn(int(mttr)))
		repairs = append(repairs, Repair{Node: c.Node, At: at})
	}
	return repairs, nil
}
