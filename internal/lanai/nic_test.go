package lanai

import (
	"testing"

	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// rig builds an engine, network and one NIC per node.
func rig(t *testing.T, nodes int) (*sim.Engine, *myrinet.Network, []*NIC) {
	t.Helper()
	eng := sim.NewEngine()
	net := myrinet.New(eng, myrinet.DefaultConfig(nodes))
	mem := memmodel.Default()
	nics := make([]*NIC, nodes)
	for i := range nics {
		nics[i] = New(eng, net, mem, DefaultConfig(myrinet.NodeID(i)))
	}
	return eng, net, nics
}

func dataPkt(src, dst myrinet.NodeID, job myrinet.JobID, msg uint64) *myrinet.Packet {
	return &myrinet.Packet{
		Type: myrinet.Data, Src: src, Dst: dst, Job: job,
		MsgID: msg, NFrags: 1, PayloadLen: 256,
	}
}

func TestRegisterResourceLimits(t *testing.T) {
	_, _, nics := rig(t, 2)
	n := nics[0]
	// Default geometry: 252 send slots, 668 recv slots.
	c1, err := n.Register(1, 0, 200, 600, Hooks{})
	if err != nil {
		t.Fatalf("first register: %v", err)
	}
	if _, err := n.Register(2, 0, 100, 10, Hooks{}); err == nil {
		t.Fatal("register should fail when NIC RAM is exhausted")
	}
	if _, err := n.Register(2, 0, 10, 100, Hooks{}); err == nil {
		t.Fatal("register should fail when pinned DMA region is exhausted")
	}
	if _, err := n.Register(1, 0, 1, 1, Hooks{}); err == nil {
		t.Fatal("duplicate job registration should fail")
	}
	n.Unregister(c1)
	if _, err := n.Register(2, 0, 252, 668, Hooks{}); err != nil {
		t.Fatalf("register after unregister: %v", err)
	}
	if _, err := n.Register(3, 0, 0, 1, Hooks{}); err == nil {
		t.Fatal("zero-size queues should be rejected")
	}
}

func TestDataDelivery(t *testing.T) {
	eng, _, nics := rig(t, 2)
	var arrived []*myrinet.Packet
	rx, err := nics[1].Register(1, 1, 126, 334, Hooks{
		OnArrive: func(ctx *Context) {
			arrived = append(arrived, nics[1].DequeueRecv(ctx))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rx
	tx, err := nics[0].Register(1, 0, 126, 334, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		nics[0].EnqueueSend(tx, dataPkt(0, 1, 1, uint64(i)))
	}
	eng.Run()
	if len(arrived) != 5 {
		t.Fatalf("arrived %d packets, want 5", len(arrived))
	}
	for i, p := range arrived {
		if p.MsgID != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, p.MsgID)
		}
	}
	if nics[0].Stats().Injected != 5 || nics[1].Stats().Received != 5 {
		t.Fatal("stats mismatch")
	}
}

func TestNoContextDrop(t *testing.T) {
	eng, _, nics := rig(t, 2)
	tx, _ := nics[0].Register(1, 0, 126, 334, Hooks{})
	var drops []DropReason
	nics[1].OnDrop = func(p *myrinet.Packet, r DropReason) { drops = append(drops, r) }
	nics[0].EnqueueSend(tx, dataPkt(0, 1, 1, 0))
	eng.Run()
	if len(drops) != 1 || drops[0] != DropNoContext {
		t.Fatalf("drops = %v, want [no-context]", drops)
	}
	if nics[1].Stats().Drops[DropNoContext] != 1 {
		t.Fatal("drop not counted")
	}
}

func TestRecvQueueFullDrop(t *testing.T) {
	eng, _, nics := rig(t, 2)
	tx, _ := nics[0].Register(1, 0, 126, 334, Hooks{})
	// Tiny receive queue, host never consumes.
	if _, err := nics[1].Register(1, 1, 10, 2, Hooks{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		nics[0].EnqueueSend(tx, dataPkt(0, 1, 1, uint64(i)))
	}
	eng.Run()
	if got := nics[1].Stats().Drops[DropRecvFull]; got != 4 {
		t.Fatalf("recv-full drops = %d, want 4", got)
	}
}

func TestHaltBitBlocksData(t *testing.T) {
	eng, _, nics := rig(t, 2)
	tx, _ := nics[0].Register(1, 0, 126, 334, Hooks{})
	received := 0
	nics[1].Register(1, 1, 126, 334, Hooks{
		OnArrive: func(ctx *Context) { received++; nics[1].DequeueRecv(ctx) },
	})

	flushed := [2]bool{}
	nics[0].HaltNetwork(0, func() { flushed[0] = true })
	nics[1].HaltNetwork(0, func() { flushed[1] = true })
	eng.Run()
	if !flushed[0] || !flushed[1] {
		t.Fatal("flush did not complete")
	}

	// With the halt bit set, enqueued data stays queued.
	nics[0].EnqueueSend(tx, dataPkt(0, 1, 1, 0))
	eng.Run()
	if received != 0 {
		t.Fatal("data sent while halted")
	}
	if tx.SendQ.Len() != 1 {
		t.Fatal("packet should remain in send queue")
	}

	// Release resumes transmission automatically.
	nics[0].ReleaseNetwork(0, nil)
	nics[1].ReleaseNetwork(0, nil)
	eng.Run()
	if received != 1 {
		t.Fatalf("received = %d after release, want 1", received)
	}
}

func TestFlushWaitsForAllNodes(t *testing.T) {
	eng, _, nics := rig(t, 4)
	done := 0
	for _, n := range nics[:3] {
		n.HaltNetwork(0, func() { done++ })
	}
	eng.Run()
	if done != 0 {
		t.Fatal("flush completed without the 4th node halting")
	}
	nics[3].HaltNetwork(0, func() { done++ })
	eng.Run()
	if done != 4 {
		t.Fatalf("flushed %d nodes, want 4", done)
	}
}

// TestFlushDrainsInFlight is the core flush correctness property: data
// injected before the halt is delivered before the flush completes, so the
// buffer switch sees a quiescent network.
func TestFlushDrainsInFlight(t *testing.T) {
	eng, _, nics := rig(t, 2)
	tx, _ := nics[0].Register(1, 0, 126, 334, Hooks{})
	received := 0
	nics[1].Register(1, 1, 126, 334, Hooks{
		OnArrive: func(ctx *Context) { received++; nics[1].DequeueRecv(ctx) },
	})
	// Inject a burst, then immediately halt.
	const burst = 20
	for i := 0; i < burst; i++ {
		nics[0].EnqueueSend(tx, dataPkt(0, 1, 1, uint64(i)))
	}
	receivedAtFlush := -1
	inFlightAtHalt := tx.SendQ.Len()
	nics[1].HaltNetwork(0, nil)
	nics[0].HaltNetwork(0, func() { receivedAtFlush = received })
	eng.Run()
	sentBeforeHalt := burst - inFlightAtHalt + 1 // +1 possibly mid-injection
	if receivedAtFlush < 0 {
		t.Fatal("flush did not complete")
	}
	// Everything that left node 0 before its halt must be at node 1 by
	// the time node 0's flush completes (FIFO: the halt message arrived
	// after the data, and node 1's halt only came after that data was
	// consumed by its receive context... note node1 halted first here,
	// but its halt message to node 0 does not gate node 0's data).
	if receivedAtFlush < sentBeforeHalt-1 {
		t.Fatalf("flush completed with in-flight data: received %d at flush, sent >= %d",
			receivedAtFlush, sentBeforeHalt)
	}
	// Packets still in the send queue at halt remain there (they will be
	// switched with the buffer).
	if tx.SendQ.Len() == 0 && inFlightAtHalt > 2 {
		t.Fatalf("expected packets stranded in send queue (had %d at halt)", inFlightAtHalt)
	}
}

func TestRefillDelivery(t *testing.T) {
	eng, _, nics := rig(t, 3)
	var got []int
	var from []myrinet.NodeID
	nics[2].Register(1, 2, 126, 334, Hooks{
		OnRefill: func(ctx *Context, p *myrinet.Packet) {
			got = append(got, p.Credits)
			from = append(from, p.Src)
		},
	})
	nics[0].SendRefill(1, 0, 2, 2, 7)
	nics[1].SendRefill(1, 1, 2, 2, 9)
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("refills delivered: %d, want 2", len(got))
	}
	sum := got[0] + got[1]
	if sum != 16 {
		t.Fatalf("credit totals = %v", got)
	}
	if from[0] == from[1] {
		t.Fatal("refill sources not distinguished")
	}
}

func TestRefillBypassesHalt(t *testing.T) {
	// Refills travel as network packets but are emitted directly by the
	// firmware; an in-flight refill arriving during a flush must still be
	// delivered (it carries the credits the resumed process needs).
	eng, _, nics := rig(t, 2)
	creditsSeen := 0
	nics[1].Register(1, 1, 126, 334, Hooks{
		OnRefill: func(ctx *Context, p *myrinet.Packet) { creditsSeen += p.Credits },
	})
	nics[0].SendRefill(1, 0, 1, 1, 5)
	nics[0].HaltNetwork(0, nil)
	nics[1].HaltNetwork(0, nil)
	eng.Run()
	if creditsSeen != 5 {
		t.Fatalf("refill lost across flush: credits=%d", creditsSeen)
	}
}

func TestRoundRobinAcrossContexts(t *testing.T) {
	eng, _, nics := rig(t, 2)
	// Two contexts on node 0, both with traffic: injections alternate.
	a, _ := nics[0].Register(1, 0, 50, 100, Hooks{})
	b, _ := nics[0].Register(2, 0, 50, 100, Hooks{})
	var order []myrinet.JobID
	nics[1].Register(1, 1, 50, 100, Hooks{
		OnArrive: func(ctx *Context) { order = append(order, nics[1].DequeueRecv(ctx).Job) },
	})
	nics[1].Register(2, 1, 50, 100, Hooks{
		OnArrive: func(ctx *Context) { order = append(order, nics[1].DequeueRecv(ctx).Job) },
	})
	for i := 0; i < 4; i++ {
		nics[0].EnqueueSend(a, dataPkt(0, 1, 1, uint64(i)))
		nics[0].EnqueueSend(b, dataPkt(0, 1, 2, uint64(i)))
	}
	eng.Run()
	if len(order) != 8 {
		t.Fatalf("delivered %d, want 8", len(order))
	}
	// Strict alternation 1,2,1,2... (both queues always nonempty).
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("scanner not round-robin: %v", order)
		}
	}
}

func TestSetIdentityRebindsJob(t *testing.T) {
	eng, _, nics := rig(t, 2)
	tx, _ := nics[0].Register(7, 0, 126, 334, Hooks{})
	seenJob7, seenJob9 := 0, 0
	ctx, _ := nics[1].Register(7, 1, 126, 334, Hooks{
		OnArrive: func(c *Context) { seenJob7++; nics[1].DequeueRecv(c) },
	})
	nics[0].EnqueueSend(tx, dataPkt(0, 1, 7, 0))
	eng.Run()

	// Rebind the receiving context to job 9.
	nics[1].SetIdentity(ctx, 9, 1, Hooks{
		OnArrive: func(c *Context) { seenJob9++; nics[1].DequeueRecv(c) },
	})
	nics[0].SetIdentity(tx, 9, 0, Hooks{})
	nics[0].EnqueueSend(tx, dataPkt(0, 1, 9, 1))
	eng.Run()
	if seenJob7 != 1 || seenJob9 != 1 {
		t.Fatalf("seenJob7=%d seenJob9=%d, want 1,1", seenJob7, seenJob9)
	}
	if nics[1].ContextFor(7) != nil {
		t.Fatal("job 7 should no longer resolve")
	}
	if nics[1].ContextFor(9) != ctx {
		t.Fatal("job 9 should resolve to the rebound context")
	}
}

func TestDataFilter(t *testing.T) {
	eng, _, nics := rig(t, 2)
	tx, _ := nics[0].Register(1, 0, 126, 334, Hooks{})
	received := 0
	nics[1].Register(1, 1, 126, 334, Hooks{
		OnArrive: func(c *Context) { received++; nics[1].DequeueRecv(c) },
	})
	nics[1].DataFilter = func(p *myrinet.Packet) bool { return p.MsgID%2 == 0 }
	for i := 0; i < 6; i++ {
		nics[0].EnqueueSend(tx, dataPkt(0, 1, 1, uint64(i)))
	}
	eng.Run()
	if received != 3 {
		t.Fatalf("received = %d with filter, want 3", received)
	}
	if nics[1].Stats().Drops[DropFiltered] != 3 {
		t.Fatal("filtered drops not counted")
	}
}

func TestOnSendSpaceFires(t *testing.T) {
	eng, _, nics := rig(t, 2)
	spaceEvents := 0
	tx, _ := nics[0].Register(1, 0, 4, 100, Hooks{})
	tx.Hooks.OnSendSpace = func(*Context) { spaceEvents++ }
	nics[1].Register(1, 1, 4, 100, Hooks{})
	for i := 0; i < 4; i++ {
		nics[0].EnqueueSend(tx, dataPkt(0, 1, 1, uint64(i)))
	}
	eng.Run()
	if spaceEvents != 4 {
		t.Fatalf("OnSendSpace fired %d times, want 4", spaceEvents)
	}
}

func TestSingleNodeFlushCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	net := myrinet.New(eng, myrinet.DefaultConfig(1))
	n := New(eng, net, memmodel.Default(), DefaultConfig(0))
	flushed, released := false, false
	n.HaltNetwork(3, func() { flushed = true })
	n.ReleaseNetwork(3, func() { released = true })
	eng.Run()
	if !flushed || !released {
		t.Fatal("single-node halt/release should complete without peers")
	}
}

func TestFlushStateObservable(t *testing.T) {
	eng, _, nics := rig(t, 3)
	nics[0].HaltNetwork(0, nil)
	eng.Run() // node 1 and 2 never halt; flush is stuck at H,1+arrivals
	local, _ := nics[0].FlushState(0)
	if !local {
		t.Fatal("node 0 should have locally halted")
	}
	// Node 1 received node 0's halt: state S,1.
	l1, r1 := nics[1].FlushState(0)
	if l1 || r1 != 1 {
		t.Fatalf("node 1 state = (%v,%d), want (false,1)", l1, r1)
	}
}

func TestSendRawBypassesQueueAndHalt(t *testing.T) {
	eng, _, nics := rig(t, 2)
	acks := 0
	nics[1].OnControl = func(p *myrinet.Packet) {
		if p.Type == myrinet.Ack {
			acks++
		}
	}
	// Halt node 0; raw control still flows (firmware-generated).
	nics[0].HaltNetwork(0, nil)
	nics[1].HaltNetwork(0, nil)
	eng.Run()
	nics[0].SendRaw(&myrinet.Packet{Type: myrinet.Ack, Src: 0, Dst: 1, Job: 1})
	eng.Run()
	if acks != 1 {
		t.Fatalf("raw ack not delivered while halted: %d", acks)
	}
}

func TestQueueAt(t *testing.T) {
	q := NewQueue(4)
	a, b := &myrinet.Packet{MsgID: 1}, &myrinet.Packet{MsgID: 2}
	q.Enqueue(a)
	q.Enqueue(b)
	if q.At(0) != a || q.At(1) != b {
		t.Fatal("At order wrong")
	}
	if q.At(-1) != nil || q.At(2) != nil {
		t.Fatal("out-of-range At should return nil")
	}
}

func TestRecvEngineSerializesHaltBehindDMA(t *testing.T) {
	// A halt arriving right after a burst of data must not complete the
	// flush until every preceding packet is deposited in the queue.
	eng, _, nics := rig(t, 2)
	tx, _ := nics[0].Register(1, 0, 126, 334, Hooks{})
	nics[1].Register(1, 1, 126, 334, Hooks{})
	const burst = 40
	for i := 0; i < burst; i++ {
		nics[0].EnqueueSend(tx, dataPkt(0, 1, 1, uint64(i)))
	}
	// Let part of the burst reach the wire, then halt while arrivals are
	// still being DMA'd at node 1.
	eng.RunUntil(12_000)
	depositedAtFlush := -1
	nics[1].HaltNetwork(0, func() {
		depositedAtFlush = nics[1].ContextFor(1).RecvQ.Len()
	})
	nics[0].HaltNetwork(0, nil)
	eng.Run()
	injected := int(nics[0].Stats().Injected)
	if injected == 0 || injected == burst {
		t.Fatalf("test setup: want a partial burst in flight, injected=%d", injected)
	}
	if depositedAtFlush != injected {
		t.Fatalf("flush completed with %d/%d in-flight packets deposited", depositedAtFlush, injected)
	}
}

func TestUnregisterReindexesSlots(t *testing.T) {
	_, _, nics := rig(t, 2)
	a, _ := nics[0].Register(1, 0, 10, 10, Hooks{})
	b, _ := nics[0].Register(2, 0, 10, 10, Hooks{})
	c, _ := nics[0].Register(3, 0, 10, 10, Hooks{})
	_ = a
	nics[0].Unregister(b)
	if len(nics[0].Contexts()) != 2 {
		t.Fatal("context not removed")
	}
	if c.Slot != 1 {
		t.Fatalf("slot not reindexed: %d", c.Slot)
	}
	if nics[0].ContextFor(2) != nil {
		t.Fatal("unregistered job still resolves")
	}
}

// TestReleaseBeforeFlushReportsViolation: completing the release stage for
// an epoch whose flush has not finished is a protocol-order breach the card
// reports through OnViolation; the proper halt-then-release order is silent.
func TestReleaseBeforeFlushReportsViolation(t *testing.T) {
	// Out-of-order release: single node, so both trackers complete locally.
	eng, _, nics := rig(t, 1)
	var got []string
	nics[0].OnViolation = func(inv, detail string) { got = append(got, inv) }
	nics[0].ReleaseNetwork(7, nil)
	eng.Run()
	if len(got) != 1 || got[0] != "flush-order" {
		t.Fatalf("violations = %v, want [flush-order]", got)
	}

	// Proper order for the same epoch: no violation.
	eng2, _, nics2 := rig(t, 1)
	var got2 []string
	nics2[0].OnViolation = func(inv, detail string) { got2 = append(got2, inv) }
	nics2[0].HaltNetwork(7, func() {
		nics2[0].ReleaseNetwork(7, nil)
	})
	eng2.Run()
	if len(got2) != 0 {
		t.Fatalf("ordered switch reported violations: %v", got2)
	}
}

// TestOnDepositObservesArrivals: the deposit hook fires once per data packet
// landing in a receive queue, after the enqueue.
func TestOnDepositObservesArrivals(t *testing.T) {
	eng, net, nics := rig(t, 2)
	if _, err := nics[1].Register(1, 0, 10, 10, Hooks{}); err != nil {
		t.Fatal(err)
	}
	deposits := 0
	nics[1].OnDeposit = func(ctx *Context, p *myrinet.Packet) {
		deposits++
		if ctx.RecvQ.Len() == 0 {
			t.Error("OnDeposit fired before the enqueue")
		}
	}
	for i := 0; i < 3; i++ {
		net.Send(dataPkt(0, 1, 1, uint64(i)))
	}
	eng.Run()
	if deposits != 3 {
		t.Fatalf("deposits = %d, want 3", deposits)
	}
}
