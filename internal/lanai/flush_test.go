package lanai

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPhaseTrackerBasic(t *testing.T) {
	pt := newPhaseTracker(3)
	done := false
	pt.LocalTransition(1, func() { done = true })
	if done {
		t.Fatal("completed before any remote arrival")
	}
	pt.Arrive(1)
	pt.Arrive(1)
	if done {
		t.Fatal("completed with only 2 of 3 remote halts")
	}
	pt.Arrive(1)
	if !done {
		t.Fatal("did not complete at H,p")
	}
	if !pt.Done(1) {
		t.Fatal("Done(1) should be true")
	}
}

func TestPhaseTrackerRemoteFirst(t *testing.T) {
	// Figure 3: an arriving halt may precede the local halt ("a certain
	// LANai may receive a halt message before it was notified by its
	// noded").
	pt := newPhaseTracker(2)
	pt.Arrive(5)
	pt.Arrive(5)
	done := false
	pt.LocalTransition(5, func() { done = true })
	if !done {
		t.Fatal("local transition after all remotes should complete immediately")
	}
}

func TestPhaseTrackerEpochIsolation(t *testing.T) {
	pt := newPhaseTracker(1)
	done1, done2 := false, false
	pt.LocalTransition(1, func() { done1 = true })
	// A halt for a *future* epoch must not complete epoch 1.
	pt.Arrive(2)
	if done1 {
		t.Fatal("epoch-2 arrival completed epoch 1")
	}
	pt.Arrive(1)
	if !done1 {
		t.Fatal("epoch 1 should have completed")
	}
	pt.LocalTransition(2, func() { done2 = true })
	if !done2 {
		t.Fatal("epoch 2 should complete from the early arrival")
	}
}

func TestPhaseTrackerZeroPeers(t *testing.T) {
	pt := newPhaseTracker(0)
	done := false
	pt.LocalTransition(0, func() { done = true })
	if !done {
		t.Fatal("single-node flush should complete on local transition")
	}
}

func TestPhaseTrackerState(t *testing.T) {
	pt := newPhaseTracker(4)
	if l, r := pt.State(7); l || r != 0 {
		t.Fatal("initial state should be S,0")
	}
	pt.Arrive(7)
	pt.Arrive(7)
	if l, r := pt.State(7); l || r != 2 {
		t.Fatalf("state after 2 arrivals = (%v,%d), want (false,2)", l, r)
	}
	pt.LocalTransition(7, nil)
	if l, r := pt.State(7); !l || r != 2 {
		t.Fatalf("state after lh = (%v,%d), want (true,2)", l, r)
	}
}

func TestPhaseTrackerDuplicateLocalPanics(t *testing.T) {
	pt := newPhaseTracker(2)
	pt.LocalTransition(1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate local transition")
		}
	}()
	pt.LocalTransition(1, nil)
}

func TestPhaseTrackerOverArrivalPanics(t *testing.T) {
	pt := newPhaseTracker(1)
	pt.Arrive(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arrivals exceeding peer count")
		}
	}()
	pt.Arrive(1)
}

// Property (Figure 3): for ANY interleaving of the local halt and the p-1
// arriving halts, the tracker completes exactly once, and only after all
// transitions have happened.
func TestFlushAllInterleavingsProperty(t *testing.T) {
	prop := func(seed int64, peers8 uint8) bool {
		peers := int(peers8%8) + 1
		// Build the transition multiset: one "lh" + peers "ah".
		events := make([]int, 0, peers+1)
		events = append(events, -1) // local halt
		for i := 0; i < peers; i++ {
			events = append(events, i)
		}
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })

		pt := newPhaseTracker(peers)
		completions := 0
		for i, ev := range events {
			last := i == len(events)-1
			if ev == -1 {
				pt.LocalTransition(0, func() { completions++ })
			} else {
				pt.Arrive(0)
			}
			if !last && completions != 0 {
				return false // completed early
			}
		}
		return completions == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
