package lanai

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gangfm/internal/myrinet"
)

func TestPhaseTrackerBasic(t *testing.T) {
	pt := newPhaseTracker(3)
	done := false
	pt.LocalTransition(1, func() { done = true })
	if done {
		t.Fatal("completed before any remote arrival")
	}
	pt.Arrive(1, 1)
	pt.Arrive(1, 2)
	if done {
		t.Fatal("completed with only 2 of 3 remote halts")
	}
	pt.Arrive(1, 3)
	if !done {
		t.Fatal("did not complete at H,p")
	}
	if !pt.Done(1) {
		t.Fatal("Done(1) should be true")
	}
}

func TestPhaseTrackerRemoteFirst(t *testing.T) {
	// Figure 3: an arriving halt may precede the local halt ("a certain
	// LANai may receive a halt message before it was notified by its
	// noded").
	pt := newPhaseTracker(2)
	pt.Arrive(5, 1)
	pt.Arrive(5, 2)
	done := false
	pt.LocalTransition(5, func() { done = true })
	if !done {
		t.Fatal("local transition after all remotes should complete immediately")
	}
}

func TestPhaseTrackerEpochIsolation(t *testing.T) {
	pt := newPhaseTracker(1)
	done1, done2 := false, false
	pt.LocalTransition(1, func() { done1 = true })
	// A halt for a *future* epoch must not complete epoch 1.
	pt.Arrive(2, 1)
	if done1 {
		t.Fatal("epoch-2 arrival completed epoch 1")
	}
	pt.Arrive(1, 1)
	if !done1 {
		t.Fatal("epoch 1 should have completed")
	}
	pt.LocalTransition(2, func() { done2 = true })
	if !done2 {
		t.Fatal("epoch 2 should complete from the early arrival")
	}
}

func TestPhaseTrackerZeroPeers(t *testing.T) {
	pt := newPhaseTracker(0)
	done := false
	pt.LocalTransition(0, func() { done = true })
	if !done {
		t.Fatal("single-node flush should complete on local transition")
	}
}

func TestPhaseTrackerState(t *testing.T) {
	pt := newPhaseTracker(4)
	if l, r := pt.State(7); l || r != 0 {
		t.Fatal("initial state should be S,0")
	}
	pt.Arrive(7, 1)
	pt.Arrive(7, 2)
	if l, r := pt.State(7); l || r != 2 {
		t.Fatalf("state after 2 arrivals = (%v,%d), want (false,2)", l, r)
	}
	pt.LocalTransition(7, nil)
	if l, r := pt.State(7); !l || r != 2 {
		t.Fatalf("state after lh = (%v,%d), want (true,2)", l, r)
	}
}

func TestPhaseTrackerDuplicateLocalPanics(t *testing.T) {
	pt := newPhaseTracker(2)
	pt.LocalTransition(1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate local transition")
		}
	}()
	pt.LocalTransition(1, nil)
}

func TestPhaseTrackerDuplicateArrivalIsStale(t *testing.T) {
	// A retransmitted halt from a peer already counted must not advance
	// the state machine; Arrive reports it stale instead.
	pt := newPhaseTracker(2)
	if !pt.Arrive(1, 1) {
		t.Fatal("first arrival from peer 1 should be fresh")
	}
	if pt.Arrive(1, 1) {
		t.Fatal("duplicate arrival from peer 1 should be stale")
	}
	if l, r := pt.State(1); l || r != 1 {
		t.Fatalf("state after duplicate = (%v,%d), want (false,1)", l, r)
	}
	done := false
	pt.LocalTransition(1, func() { done = true })
	pt.Arrive(1, 2)
	if !done {
		t.Fatal("fresh arrival from peer 2 should complete the phase")
	}
	// Anything for a completed epoch is stale, fresh peer or not.
	if pt.Arrive(1, 1) || pt.Arrive(1, 2) {
		t.Fatal("arrivals for a completed epoch should be stale")
	}
}

func TestPhaseTrackerForceComplete(t *testing.T) {
	pt := newPhaseTracker(2)
	done := false
	// Before the local transition, force-complete must refuse: the node
	// has not even halted itself yet.
	if pt.ForceComplete(3) {
		t.Fatal("force-complete before local transition should refuse")
	}
	pt.LocalTransition(3, func() { done = true })
	pt.Arrive(3, 1)
	if !pt.ForceComplete(3) {
		t.Fatal("force-complete of an open epoch should succeed")
	}
	if !done || !pt.Done(3) {
		t.Fatal("force-complete should fire the completion callback")
	}
	if pt.ForceComplete(3) {
		t.Fatal("force-complete of a done epoch should be a no-op")
	}
	// The straggler that force-complete stopped waiting for is stale.
	if pt.Arrive(3, 2) {
		t.Fatal("post-force arrival should be stale")
	}
}

func TestPhaseTrackerEvict(t *testing.T) {
	pt := newPhaseTracker(3)
	done := false
	pt.LocalTransition(1, func() { done = true })
	pt.Arrive(1, 1)
	pt.Arrive(1, 2)
	// Evicting the only unheard peer completes the open epoch.
	pt.Evict(3)
	if !done {
		t.Fatal("eviction of the last missing peer should complete the phase")
	}
	if !pt.Evicted(3) || pt.Evicted(2) {
		t.Fatal("eviction bookkeeping wrong")
	}
	// The next epoch expects only the two survivors.
	done = false
	pt.LocalTransition(2, func() { done = true })
	if pt.Arrive(2, 3) {
		t.Fatal("arrival from an evicted peer should be stale")
	}
	pt.Arrive(2, 1)
	pt.Arrive(2, 2)
	if !done {
		t.Fatal("survivor-only epoch should complete without the evicted peer")
	}
	// Eviction is idempotent: peers must not be double-decremented.
	pt.Evict(3)
	done = false
	pt.LocalTransition(4, func() { done = true })
	pt.Arrive(4, 1)
	if done {
		t.Fatal("epoch completed with one of two surviving peers missing")
	}
	pt.Arrive(4, 2)
	if !done {
		t.Fatal("epoch should complete with both survivors heard")
	}
}

func TestPhaseTrackerEvictAlreadyHeardPeer(t *testing.T) {
	// Evicting a peer whose message was already counted must re-evaluate
	// the epoch with that arrival discounted — not complete early.
	pt := newPhaseTracker(2)
	done := false
	pt.LocalTransition(1, func() { done = true })
	pt.Arrive(1, 1)
	pt.Evict(1)
	if done {
		t.Fatal("evicting the already-heard peer must discount its arrival, not complete the phase")
	}
	pt.Arrive(1, 2)
	if !done {
		t.Fatal("the surviving peer's arrival should complete the phase")
	}
}

func TestPhaseTrackerTransitioned(t *testing.T) {
	pt := newPhaseTracker(1)
	if pt.Transitioned(9) {
		t.Fatal("untouched epoch should not be transitioned")
	}
	pt.LocalTransition(9, nil)
	if !pt.Transitioned(9) {
		t.Fatal("open epoch after local transition should be transitioned")
	}
	pt.Arrive(9, 1)
	if !pt.Done(9) || !pt.Transitioned(9) {
		t.Fatal("completed epoch should remain transitioned")
	}
}

// Property (Figure 3): for ANY interleaving of the local halt and the p-1
// arriving halts, the tracker completes exactly once, and only after all
// transitions have happened.
func TestFlushAllInterleavingsProperty(t *testing.T) {
	prop := func(seed int64, peers8 uint8) bool {
		peers := int(peers8%8) + 1
		// Build the transition multiset: one "lh" + peers "ah".
		events := make([]int, 0, peers+1)
		events = append(events, -1) // local halt
		for i := 0; i < peers; i++ {
			events = append(events, i)
		}
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })

		pt := newPhaseTracker(peers)
		completions := 0
		for i, ev := range events {
			last := i == len(events)-1
			if ev == -1 {
				pt.LocalTransition(0, func() { completions++ })
			} else {
				pt.Arrive(0, myrinet.NodeID(ev+1))
			}
			if !last && completions != 0 {
				return false // completed early
			}
		}
		return completions == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
