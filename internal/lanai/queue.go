// Package lanai models the LANai 4.3 processor and firmware on the Myrinet
// card: hardware communication contexts, the dual-context control program
// (a send scanner and an interrupt-driven receive context), the halt bit
// checked before every packet injection, and the network flush / release
// protocols of paper §3.2 (Figure 3).
package lanai

import "gangfm/internal/myrinet"

// Queue is a fixed-capacity FIFO of packets occupying fixed-size slots, as
// the FM queues do (capacity counts packet slots, not bytes). It is a ring
// over a fixed backing array: steady-state Enqueue/Dequeue never allocates
// (the hardware queues are fixed SRAM regions, so neither does the card).
type Queue struct {
	pkts []*myrinet.Packet // len(pkts) == capacity, fixed at construction
	head int               // index of the oldest packet
	n    int               // number of valid packets
	// drops counts enqueue attempts rejected for lack of space.
	drops uint64
}

// NewQueue returns a queue with capacity slots.
func NewQueue(capacity int) *Queue {
	return &Queue{pkts: make([]*myrinet.Packet, capacity)}
}

// Cap returns the slot capacity.
func (q *Queue) Cap() int { return len(q.pkts) }

// Len returns the number of valid packets currently queued.
func (q *Queue) Len() int { return q.n }

// Full reports whether no slot is free.
func (q *Queue) Full() bool { return q.n >= len(q.pkts) }

// Drops returns the number of rejected enqueues.
func (q *Queue) Drops() uint64 { return q.drops }

func (q *Queue) slot(i int) int {
	i += q.head
	if i >= len(q.pkts) {
		i -= len(q.pkts)
	}
	return i
}

// Enqueue appends p; it reports whether a slot was available.
func (q *Queue) Enqueue(p *myrinet.Packet) bool {
	if q.Full() {
		q.drops++
		return false
	}
	q.pkts[q.slot(q.n)] = p
	q.n++
	return true
}

// Dequeue removes and returns the oldest packet, or nil if empty.
func (q *Queue) Dequeue() *myrinet.Packet {
	if q.n == 0 {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head = q.slot(1)
	q.n--
	if q.n == 0 {
		q.head = 0
	}
	return p
}

// Peek returns the oldest packet without removing it, or nil.
func (q *Queue) Peek() *myrinet.Packet {
	if q.n == 0 {
		return nil
	}
	return q.pkts[q.head]
}

// At returns the i-th oldest packet without removing it, or nil when out
// of range. FM_extract inspects a batch of pending packets this way.
func (q *Queue) At(i int) *myrinet.Packet {
	if i < 0 || i >= q.n {
		return nil
	}
	return q.pkts[q.slot(i)]
}

// Drain removes and returns all queued packets, oldest first. It is used
// by the buffer switch to move queue contents to a backing store.
func (q *Queue) Drain() []*myrinet.Packet {
	return q.DrainTo(nil)
}

// DrainTo removes all queued packets, oldest first, appending them to
// dst[:0] and returning the result. Passing a store's previous slice lets
// the buffer switch reuse its backing array instead of allocating one per
// switch.
func (q *Queue) DrainTo(dst []*myrinet.Packet) []*myrinet.Packet {
	dst = dst[:0]
	for i := 0; i < q.n; i++ {
		s := q.slot(i)
		dst = append(dst, q.pkts[s])
		q.pkts[s] = nil
	}
	q.head, q.n = 0, 0
	return dst
}

// Clear discards all queued packets without returning them.
func (q *Queue) Clear() {
	for i := 0; i < q.n; i++ {
		q.pkts[q.slot(i)] = nil
	}
	q.head, q.n = 0, 0
}

// Load refills the queue from a backing store, oldest first. It panics if
// the packets exceed capacity, which would indicate a switch between
// incompatible queue geometries.
func (q *Queue) Load(pkts []*myrinet.Packet) {
	if len(pkts) > len(q.pkts) {
		panic("lanai: restoring more packets than queue capacity")
	}
	q.Clear()
	copy(q.pkts, pkts)
	q.n = len(pkts)
}

// ValidBytes returns the total wire bytes of queued packets — what the
// improved buffer-switch algorithm actually copies.
func (q *Queue) ValidBytes() int {
	n := 0
	for i := 0; i < q.n; i++ {
		n += q.pkts[q.slot(i)].WireSize()
	}
	return n
}
