// Package lanai models the LANai 4.3 processor and firmware on the Myrinet
// card: hardware communication contexts, the dual-context control program
// (a send scanner and an interrupt-driven receive context), the halt bit
// checked before every packet injection, and the network flush / release
// protocols of paper §3.2 (Figure 3).
package lanai

import "gangfm/internal/myrinet"

// Queue is a fixed-capacity FIFO of packets occupying fixed-size slots, as
// the FM queues do (capacity counts packet slots, not bytes).
type Queue struct {
	cap  int
	pkts []*myrinet.Packet
	// drops counts enqueue attempts rejected for lack of space.
	drops uint64
}

// NewQueue returns a queue with capacity slots.
func NewQueue(capacity int) *Queue {
	return &Queue{cap: capacity}
}

// Cap returns the slot capacity.
func (q *Queue) Cap() int { return q.cap }

// Len returns the number of valid packets currently queued.
func (q *Queue) Len() int { return len(q.pkts) }

// Full reports whether no slot is free.
func (q *Queue) Full() bool { return len(q.pkts) >= q.cap }

// Drops returns the number of rejected enqueues.
func (q *Queue) Drops() uint64 { return q.drops }

// Enqueue appends p; it reports whether a slot was available.
func (q *Queue) Enqueue(p *myrinet.Packet) bool {
	if q.Full() {
		q.drops++
		return false
	}
	q.pkts = append(q.pkts, p)
	return true
}

// Dequeue removes and returns the oldest packet, or nil if empty.
func (q *Queue) Dequeue() *myrinet.Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	p := q.pkts[0]
	q.pkts[0] = nil
	q.pkts = q.pkts[1:]
	return p
}

// Peek returns the oldest packet without removing it, or nil.
func (q *Queue) Peek() *myrinet.Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	return q.pkts[0]
}

// At returns the i-th oldest packet without removing it, or nil when out
// of range. FM_extract inspects a batch of pending packets this way.
func (q *Queue) At(i int) *myrinet.Packet {
	if i < 0 || i >= len(q.pkts) {
		return nil
	}
	return q.pkts[i]
}

// Drain removes and returns all queued packets, oldest first. It is used
// by the buffer switch to move queue contents to a backing store.
func (q *Queue) Drain() []*myrinet.Packet {
	out := q.pkts
	q.pkts = nil
	return out
}

// Load refills the queue from a backing store, oldest first. It panics if
// the packets exceed capacity, which would indicate a switch between
// incompatible queue geometries.
func (q *Queue) Load(pkts []*myrinet.Packet) {
	if len(pkts) > q.cap {
		panic("lanai: restoring more packets than queue capacity")
	}
	q.pkts = append(q.pkts[:0], pkts...)
}

// ValidBytes returns the total wire bytes of queued packets — what the
// improved buffer-switch algorithm actually copies.
func (q *Queue) ValidBytes() int {
	n := 0
	for _, p := range q.pkts {
		n += p.WireSize()
	}
	return n
}
