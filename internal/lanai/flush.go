package lanai

// flush.go implements the state machines of paper Figure 3 (network flush)
// and its mirror image for the release stage.
//
// During a flush, each node performs two independent things, interleaved
// arbitrarily: a *local halt* ("lh": stop transmitting, broadcast a halt
// message) and the *collection* of halt messages from every other node
// ("ah" transitions). The flush completes in state H,p — locally halted
// and p-1 remote halts counted (the node itself is the p-th).
//
// Because nodes are not synchronized, a node can receive halts — or even
// readys — for an epoch it has not itself entered yet. Counters are
// therefore keyed by epoch; this is the robustness refinement called out
// in DESIGN.md (the real system relied on phase alternation).

// phaseTracker counts one class of control message (halt or ready) per
// epoch and fires a completion callback when the local transition has
// happened and all expected remote messages have arrived.
type phaseTracker struct {
	peers int // number of remote nodes expected to report (p-1)

	arrived map[uint64]int
	local   map[uint64]bool
	done    map[uint64]bool
	onDone  map[uint64]func()
}

func newPhaseTracker(peers int) *phaseTracker {
	return &phaseTracker{
		peers:   peers,
		arrived: make(map[uint64]int),
		local:   make(map[uint64]bool),
		done:    make(map[uint64]bool),
		onDone:  make(map[uint64]func()),
	}
}

// LocalTransition records the node's own halt/ready ("lh" in Figure 3) for
// epoch and registers the completion callback.
func (t *phaseTracker) LocalTransition(epoch uint64, onDone func()) {
	if t.local[epoch] {
		panic("lanai: duplicate local phase transition for epoch")
	}
	t.local[epoch] = true
	t.onDone[epoch] = onDone
	t.check(epoch)
}

// Arrive records a remote halt/ready ("ah" in Figure 3) for epoch.
func (t *phaseTracker) Arrive(epoch uint64) {
	t.arrived[epoch]++
	if t.arrived[epoch] > t.peers {
		panic("lanai: more phase messages than peers for one epoch")
	}
	t.check(epoch)
}

// State returns (locallyDone, remoteCount) for an epoch — the Figure 3
// state label (S/H, k) with k = remoteCount + (1 if locallyDone).
func (t *phaseTracker) State(epoch uint64) (local bool, remote int) {
	return t.local[epoch], t.arrived[epoch]
}

// Done reports whether the epoch's phase has completed.
func (t *phaseTracker) Done(epoch uint64) bool { return t.done[epoch] }

func (t *phaseTracker) check(epoch uint64) {
	if t.done[epoch] || !t.local[epoch] || t.arrived[epoch] < t.peers {
		return
	}
	t.done[epoch] = true
	cb := t.onDone[epoch]
	// Free the epoch's bookkeeping; epochs are never revisited.
	delete(t.arrived, epoch)
	delete(t.local, epoch)
	delete(t.onDone, epoch)
	if cb != nil {
		cb()
	}
}
