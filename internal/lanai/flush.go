package lanai

// flush.go implements the state machines of paper Figure 3 (network flush)
// and its mirror image for the release stage.
//
// During a flush, each node performs two independent things, interleaved
// arbitrarily: a *local halt* ("lh": stop transmitting, broadcast a halt
// message) and the *collection* of halt messages from every other node
// ("ah" transitions). The flush completes in state H,p — locally halted
// and p-1 remote halts counted (the node itself is the p-th).
//
// Because nodes are not synchronized, a node can receive halts — or even
// readys — for an epoch it has not itself entered yet. Counters are
// therefore keyed by epoch; this is the robustness refinement called out
// in DESIGN.md (the real system relied on phase alternation).
//
// The tracker also remembers *which* peer each message came from, which is
// what makes the recovery layer possible: duplicates (from retransmission)
// are idempotent, completed epochs reject late stragglers, the unheard-peer
// set is the retransmission target list, and an evicted peer can be dropped
// from the expected count of every open epoch.

import (
	"sort"

	"gangfm/internal/myrinet"
)

// phaseTracker counts one class of control message (halt or ready) per
// epoch and fires a completion callback when the local transition has
// happened and all expected remote messages have arrived.
type phaseTracker struct {
	peers int // number of live remote nodes expected to report (p-1)

	heard   map[uint64]map[myrinet.NodeID]bool
	local   map[uint64]bool
	onDone  map[uint64]func()
	evicted map[myrinet.NodeID]bool

	// Completed epochs are tracked as a watermark plus exceptions rather
	// than an ever-growing set: epochs complete (nearly) in order, one per
	// switch, so a per-epoch map entry retained forever would make the
	// steady state allocate. Every epoch below doneLo is complete (valid
	// once doneAny is set — the floor is anchored to the first completed
	// epoch, since callers may start numbering anywhere); doneEx holds the
	// out-of-order completions at or above the floor and is compacted into
	// doneLo as the gap fills.
	doneLo  uint64
	doneAny bool
	doneEx  map[uint64]bool

	// setPool recycles the per-epoch heard sets: epochs open and close at
	// every switch, so reusing the cleared map keeps the steady-state
	// flush allocation-free.
	setPool []map[myrinet.NodeID]bool
}

func newPhaseTracker(peers int) *phaseTracker {
	return &phaseTracker{
		peers:   peers,
		heard:   make(map[uint64]map[myrinet.NodeID]bool),
		local:   make(map[uint64]bool),
		doneEx:  make(map[uint64]bool),
		onDone:  make(map[uint64]func()),
		evicted: make(map[myrinet.NodeID]bool),
	}
}

// LocalTransition records the node's own halt/ready ("lh" in Figure 3) for
// epoch and registers the completion callback.
func (t *phaseTracker) LocalTransition(epoch uint64, onDone func()) {
	if t.local[epoch] {
		panic("lanai: duplicate local phase transition for epoch")
	}
	t.local[epoch] = true
	t.onDone[epoch] = onDone
	t.check(epoch)
}

// Arrive records a remote halt/ready ("ah" in Figure 3) for epoch from the
// given peer. It reports whether the message carried new information: a
// duplicate of an already-counted peer, a message for a completed epoch, or
// one from an evicted peer is stale and returns false (the caller counts it
// and drops the packet).
func (t *phaseTracker) Arrive(epoch uint64, from myrinet.NodeID) bool {
	if t.Done(epoch) || t.evicted[from] {
		return false
	}
	set := t.heard[epoch]
	if set == nil {
		if ln := len(t.setPool); ln > 0 {
			set = t.setPool[ln-1]
			t.setPool = t.setPool[:ln-1]
		} else {
			set = make(map[myrinet.NodeID]bool)
		}
		t.heard[epoch] = set
	}
	if set[from] {
		return false
	}
	set[from] = true
	t.check(epoch)
	return true
}

// Heard reports whether the peer's message for epoch has been counted.
func (t *phaseTracker) Heard(epoch uint64, from myrinet.NodeID) bool {
	return t.heard[epoch][from]
}

// liveHeard counts the epoch's arrivals from peers that are still members.
func (t *phaseTracker) liveHeard(epoch uint64) int {
	n := 0
	for from := range t.heard[epoch] {
		if !t.evicted[from] {
			n++
		}
	}
	return n
}

// State returns (locallyDone, remoteCount) for an epoch — the Figure 3
// state label (S/H, k) with k = remoteCount + (1 if locallyDone).
func (t *phaseTracker) State(epoch uint64) (local bool, remote int) {
	return t.local[epoch], t.liveHeard(epoch)
}

// Done reports whether the epoch's phase has completed.
func (t *phaseTracker) Done(epoch uint64) bool {
	return (t.doneAny && epoch < t.doneLo) || t.doneEx[epoch]
}

// Transitioned reports whether this node has made its own transition for
// the epoch (including epochs already completed, whose per-epoch state has
// been freed).
func (t *phaseTracker) Transitioned(epoch uint64) bool {
	return t.Done(epoch) || t.local[epoch]
}

// ForceComplete completes an epoch's phase without the missing peers — the
// recovery layer's last resort after the retransmission budget is spent.
// It is a no-op before the local transition or after normal completion.
func (t *phaseTracker) ForceComplete(epoch uint64) bool {
	if t.Done(epoch) || !t.local[epoch] {
		return false
	}
	t.complete(epoch)
	return true
}

// Evict removes a peer from the membership: it is no longer expected to
// report for any epoch, past or future. Open epochs whose only missing
// messages were the evicted peer's complete immediately (in ascending epoch
// order, for determinism).
func (t *phaseTracker) Evict(peer myrinet.NodeID) {
	if t.evicted[peer] {
		return
	}
	t.evicted[peer] = true
	t.peers--
	open := make([]uint64, 0, len(t.onDone))
	for e := range t.onDone {
		open = append(open, e)
	}
	sort.Slice(open, func(i, j int) bool { return open[i] < open[j] })
	for _, e := range open {
		t.check(e)
	}
}

// Evicted reports whether the peer has been removed from the membership.
func (t *phaseTracker) Evicted(peer myrinet.NodeID) bool { return t.evicted[peer] }

// Join restores an evicted peer to the membership: future epochs expect its
// reports again. The caller (the masterd rejoin barrier) guarantees no epoch
// is open anywhere when joins are applied — growing the membership mid-epoch
// could stall an epoch that was already satisfied — so Join touches only the
// membership, never the open-epoch state.
func (t *phaseTracker) Join(peer myrinet.NodeID) {
	if !t.evicted[peer] {
		return
	}
	delete(t.evicted, peer)
	t.peers++
}

func (t *phaseTracker) check(epoch uint64) {
	if t.Done(epoch) || !t.local[epoch] || t.liveHeard(epoch) < t.peers {
		return
	}
	t.complete(epoch)
}

func (t *phaseTracker) complete(epoch uint64) {
	if !t.doneAny {
		t.doneAny = true
		t.doneLo = epoch
	}
	t.doneEx[epoch] = true
	for t.doneEx[t.doneLo] {
		delete(t.doneEx, t.doneLo)
		t.doneLo++
	}
	cb := t.onDone[epoch]
	// Free the epoch's bookkeeping; epochs are never revisited (the done
	// watermark keeps stragglers for old epochs detectable without
	// retaining per-epoch state).
	if set := t.heard[epoch]; set != nil {
		clear(set)
		t.setPool = append(t.setPool, set)
	}
	delete(t.heard, epoch)
	delete(t.local, epoch)
	delete(t.onDone, epoch)
	if cb != nil {
		cb()
	}
}
