package lanai

import (
	"fmt"

	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// Config holds the card's geometry and firmware cost parameters.
type Config struct {
	// Node is this card's address on the data network.
	Node myrinet.NodeID

	// SendSlots is the total number of packet slots in the send-queue
	// region of the card's RAM. The paper's card has 512 KB of which
	// ~400 KB hold the send queue: 252 slots of 1560 bytes.
	SendSlots int
	// RecvSlots is the total number of packet slots in the pinned DMA
	// receive buffer on the host: 1 MB = 668 slots (paper §4.2).
	RecvSlots int

	// SendOverhead is the LANai processing time per injected packet
	// (scan, route lookup, header build), in host cycles.
	SendOverhead sim.Time
	// RecvOverhead is the receive-context processing time per packet
	// before the DMA starts, in host cycles.
	RecvOverhead sim.Time
	// CtlOverhead is the firmware cost of emitting one halt/ready
	// control packet during the serial broadcast loop.
	CtlOverhead sim.Time
}

// DefaultConfig returns the LANai 4.3 parameters used throughout the
// reproduction.
func DefaultConfig(node myrinet.NodeID) Config {
	return Config{
		Node:         node,
		SendSlots:    252,
		RecvSlots:    668,
		SendOverhead: 400, // 2 us
		RecvOverhead: 500, // 2.5 us
		CtlOverhead:  150,
	}
}

// Recovery parameterizes the firmware's control-packet retransmission
// layer. The protocol of Figure 3 assumes every Halt/Ready arrives; with
// recovery enabled the card arms a timer per switch epoch after its own
// local transition and, while the phase is incomplete, re-broadcasts its
// control packet to the peers not yet heard from — Timeout cycles for the
// first attempt, doubling on each subsequent one (exponential backoff).
// After Retries attempts the phase is force-completed without the missing
// peers (degraded flush): liveness is restored and failure detection is
// left to the masterd's watchdog, which alone decides eviction.
//
// Retransmitted packets carry a marker; a card receiving a marked packet
// it has already counted (or whose epoch it has completed) echoes its own
// control packet back to the sender, so one-sided loss heals even when
// the receiver has nothing left to wait for. Echoes are unmarked and
// therefore never trigger counter-echoes.
type Recovery struct {
	// Timeout is the first retransmission deadline, measured from the
	// local phase transition, in cycles.
	Timeout sim.Time
	// Retries bounds the retransmission attempts per epoch per phase;
	// attempt i fires after Timeout<<i. After the last attempt the phase
	// is force-completed.
	Retries int
}

// ctrlRetransmit marks a Halt/Ready as a retransmission in the otherwise
// unused Frag field of control packets; receivers that find it stale echo
// their own control packet back (unmarked) to unstick the sender.
const ctrlRetransmit = 1

// Hooks are the host-library callbacks attached to a context. All hooks
// are optional.
type Hooks struct {
	// OnArrive fires after a data packet has been DMA'd into the
	// context's receive queue.
	OnArrive func(ctx *Context)
	// OnRefill fires when a flow-control refill for this context
	// arrives; p carries the sending node/rank and the credit count.
	OnRefill func(ctx *Context, p *myrinet.Packet)
	// OnSendSpace fires when the send scanner frees a send-queue slot,
	// so a host pump blocked on a full queue can resume.
	OnSendSpace func(ctx *Context)
}

// Context is one hardware communication context on the card: an FM
// process's send queue (card RAM) and receive queue (pinned host RAM).
type Context struct {
	Slot  int
	Job   myrinet.JobID
	Rank  int
	SendQ *Queue
	RecvQ *Queue
	Hooks Hooks

	nic *Context // guard against cross-NIC misuse (set to self at registration)
}

// DropReason classifies why the card discarded a packet.
type DropReason int

const (
	// DropNoContext: no context registered for the packet's job — the
	// situation the paper's synchronized startup (Fig 2) exists to
	// prevent, and the direct cause of lost credits.
	DropNoContext DropReason = iota
	// DropRecvFull: the context's receive queue had no free slot. Under
	// correct credit accounting this never happens.
	DropRecvFull
	// DropFiltered: a data filter (SHARE-style scheme) rejected it.
	DropFiltered
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropNoContext:
		return "no-context"
	case DropRecvFull:
		return "recv-full"
	case DropFiltered:
		return "filtered"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// Stats collects card-level counters.
type Stats struct {
	Injected   uint64
	Received   uint64
	Drops      map[DropReason]uint64
	HaltsSent  uint64
	ReadysSent uint64

	// HaltRetransmits / ReadyRetransmits count recovery-layer re-sends
	// (timer-driven retransmissions plus stale-packet echoes). Always zero
	// with recovery disabled.
	HaltRetransmits  uint64
	ReadyRetransmits uint64
	// StaleCtrl counts Halt/Ready packets that carried no new information:
	// duplicates of an already-counted peer, packets for a completed
	// epoch, or packets from an evicted peer.
	StaleCtrl uint64
	// ForcedPhases counts flush/release phases completed degraded, without
	// every peer's control packet, after the retransmission budget ran out.
	ForcedPhases uint64
}

// NIC is the simulated Myrinet card: LANai processor, firmware and queues.
type NIC struct {
	eng *sim.Engine
	net *myrinet.Network
	mem *memmodel.Model
	cfg Config

	contexts []*Context
	byJob    map[myrinet.JobID]*Context

	sendSlotsUsed int
	recvSlotsUsed int

	haltBit     bool
	flush       *phaseTracker
	release     *phaseTracker
	scanPending bool
	rr          int // round-robin cursor over context slots

	// recovery, when non-nil, enables the retransmission layer; the
	// timer maps hold the pending per-epoch retransmission events so
	// normal completion cancels them (zero clean-path overhead).
	recovery      *Recovery
	flushTimers   map[uint64]sim.Event
	releaseTimers map[uint64]sim.Event

	// recvEngine serializes the receive context + DMA engine.
	recvEngine *sim.Resource

	// DataFilter, when set, is consulted for every incoming data packet
	// before DMA; returning false drops the packet (and counts it as
	// DropFiltered). Used by the SHARE-style alternative scheme.
	DataFilter func(p *myrinet.Packet) bool
	// OnControl, when set, receives Ack/Nack packets (alternative
	// schemes); Halt/Ready are always handled by the flush trackers.
	OnControl func(p *myrinet.Packet)
	// OnDrop, when set, observes every dropped packet.
	OnDrop func(p *myrinet.Packet, reason DropReason)
	// OnDeposit, when set, observes every data packet the instant it
	// lands in a context's receive queue (after DMA, before OnArrive).
	// The chaos auditors use it to catch deliveries to a context the
	// gang schedule says is not running.
	OnDeposit func(ctx *Context, p *myrinet.Packet)
	// OnViolation, when set, receives protocol-invariant violation
	// reports from the card's own state machines (the chaos auditor
	// installs it; nil means violations surface only through behavior).
	OnViolation func(invariant, detail string)

	// scanFn/kickFn/depositFn/refillFn are the per-card callback values
	// the firmware schedules with, created once so the per-packet paths
	// allocate no closures.
	scanFn    func()
	kickFn    func()
	depositFn func(any)
	refillFn  func(any)

	// opPool recycles the ctrlOp records the clean-path flush/release
	// protocol schedules with (broadcast sends, tail transitions, control
	// arrivals) — one op per event, freed when the event fires.
	opPool []*ctrlOp

	// relEpoch/relDone hold the one in-flight release completion so the
	// clean path can use the prebuilt relCompleteFn instead of a closure
	// per switch; an overlapping release falls back to a closure.
	relEpoch      uint64
	relDone       func()
	relBusy       bool
	relCompleteFn func()

	stats Stats
}

// ctrlOp is one pooled flush-protocol action: a scheduled control-packet
// send, a tail local transition, or a counted control arrival. The record
// rides through the engine as the event argument, so the clean-path
// protocol allocates no closures.
type ctrlOp struct {
	n     *NIC
	t     *phaseTracker
	typ   myrinet.PacketType
	dst   myrinet.NodeID
	epoch uint64
	retx  bool
	done  func()
}

// The shared event callbacks: one function value per action kind for the
// whole package (the op carries all per-event state).
var (
	ctrlSendFn   = func(a any) { a.(*ctrlOp).fireSend() }
	ctrlTailFn   = func(a any) { a.(*ctrlOp).fireTail() }
	ctrlArriveFn = func(a any) { a.(*ctrlOp).fireArrive() }
)

func (n *NIC) getOp() *ctrlOp {
	if ln := len(n.opPool); ln > 0 {
		op := n.opPool[ln-1]
		n.opPool = n.opPool[:ln-1]
		*op = ctrlOp{n: n}
		return op
	}
	return &ctrlOp{n: n}
}

func (n *NIC) putOp(op *ctrlOp) {
	op.done = nil
	n.opPool = append(n.opPool, op)
}

func (op *ctrlOp) fireSend() {
	n := op.n
	if op.typ == myrinet.Halt {
		n.stats.HaltsSent++
	} else {
		n.stats.ReadysSent++
	}
	n.sendCtrl(op.typ, op.dst, op.epoch, false)
	n.putOp(op)
}

func (op *ctrlOp) fireTail() {
	n, t, epoch, done := op.n, op.t, op.epoch, op.done
	n.putOp(op)
	n.localTransition(t, epoch, done)
}

func (op *ctrlOp) fireArrive() {
	n, t, epoch, src, retx := op.n, op.t, op.epoch, op.dst, op.retx
	n.putOp(op)
	n.ctrlArrive(t, epoch, src, retx)
}

// New creates a card attached to the network.
func New(eng *sim.Engine, net *myrinet.Network, mem *memmodel.Model, cfg Config) *NIC {
	n := &NIC{
		eng:        eng,
		net:        net,
		mem:        mem,
		cfg:        cfg,
		byJob:      make(map[myrinet.JobID]*Context),
		flush:      newPhaseTracker(net.Nodes() - 1),
		release:    newPhaseTracker(net.Nodes() - 1),
		recvEngine: sim.NewResource(eng, fmt.Sprintf("nic%d-recv", cfg.Node)),
		stats:      Stats{Drops: make(map[DropReason]uint64)},
	}
	n.scanFn = n.scan
	n.kickFn = n.kickSender
	n.depositFn = n.deposit
	n.refillFn = n.refillArrived
	n.relCompleteFn = n.releaseComplete
	net.Attach(cfg.Node, n)
	return n
}

// NewPacket returns a zeroed packet from this node's slice of the
// network's free list; packets built through it are recycled at their
// death point (see FreePacket).
func (n *NIC) NewPacket() *myrinet.Packet { return n.net.NewPacketFrom(n.cfg.Node) }

// FreePacket returns a pool-allocated packet to the network's free list
// (no-op for externally constructed packets). Host libraries call it when
// they finish consuming a delivered packet.
func (n *NIC) FreePacket(p *myrinet.Packet) { n.net.FreePacket(p) }

// Node returns the card's network address.
func (n *NIC) Node() myrinet.NodeID { return n.cfg.Node }

// NetworkNodes returns the size of the fabric the card is attached to (the
// routing-table information COMM_init_node reads from the configuration).
func (n *NIC) NetworkNodes() int { return n.net.Nodes() }

// Config returns the card's configuration.
func (n *NIC) Config() Config { return n.cfg }

// Stats returns a snapshot of the counters.
func (n *NIC) Stats() Stats { return n.stats }

// SetRecovery enables the control-packet retransmission layer. Must be
// called before the first switch; the zero value of r is rejected.
func (n *NIC) SetRecovery(r Recovery) {
	if r.Timeout <= 0 || r.Retries < 0 {
		panic(fmt.Sprintf("lanai: invalid recovery config %+v", r))
	}
	n.recovery = &r
	n.flushTimers = make(map[uint64]sim.Event)
	n.releaseTimers = make(map[uint64]sim.Event)
}

// EvictPeer removes a peer from the card's membership view: it is no
// longer expected to report in any flush or release phase, open epochs
// blocked only on it complete immediately, and future broadcasts skip it.
func (n *NIC) EvictPeer(peer myrinet.NodeID) {
	n.flush.Evict(peer)
	n.release.Evict(peer)
}

// JoinPeer restores an evicted peer to the card's membership view: a
// repaired node's fresh incarnation will report in every future flush and
// release phase, and broadcasts reach it again. The masterd's rejoin
// barrier only applies joins between rotation rounds, when no flush or
// release epoch is open on any card.
func (n *NIC) JoinPeer(peer myrinet.NodeID) {
	n.flush.Join(peer)
	n.release.Join(peer)
}

// Halted reports the state of the halt bit.
func (n *NIC) Halted() bool { return n.haltBit }

// Register allocates a hardware context with the given queue capacities
// (in packet slots). It fails if the card or the pinned DMA region cannot
// accommodate the request, or the job already has a context — the resource
// scarcity that motivates the whole paper.
func (n *NIC) Register(job myrinet.JobID, rank, sendSlots, recvSlots int, hooks Hooks) (*Context, error) {
	if sendSlots <= 0 || recvSlots <= 0 {
		return nil, fmt.Errorf("lanai: context for job %d needs positive queue sizes", job)
	}
	if n.sendSlotsUsed+sendSlots > n.cfg.SendSlots {
		return nil, fmt.Errorf("lanai: NIC RAM exhausted: %d send slots in use, %d requested, %d total",
			n.sendSlotsUsed, sendSlots, n.cfg.SendSlots)
	}
	if n.recvSlotsUsed+recvSlots > n.cfg.RecvSlots {
		return nil, fmt.Errorf("lanai: pinned DMA buffer exhausted: %d recv slots in use, %d requested, %d total",
			n.recvSlotsUsed, recvSlots, n.cfg.RecvSlots)
	}
	if _, dup := n.byJob[job]; dup {
		return nil, fmt.Errorf("lanai: job %d already has a context on node %d", job, n.cfg.Node)
	}
	ctx := &Context{
		Slot:  len(n.contexts),
		Job:   job,
		Rank:  rank,
		SendQ: NewQueue(sendSlots),
		RecvQ: NewQueue(recvSlots),
		Hooks: hooks,
	}
	ctx.nic = ctx
	n.contexts = append(n.contexts, ctx)
	n.byJob[job] = ctx
	n.sendSlotsUsed += sendSlots
	n.recvSlotsUsed += recvSlots
	return ctx, nil
}

// Unregister releases the context's card and DMA resources.
func (n *NIC) Unregister(ctx *Context) {
	if n.byJob[ctx.Job] == ctx {
		delete(n.byJob, ctx.Job)
	}
	for i, c := range n.contexts {
		if c == ctx {
			n.contexts = append(n.contexts[:i], n.contexts[i+1:]...)
			break
		}
	}
	n.sendSlotsUsed -= ctx.SendQ.Cap()
	n.recvSlotsUsed -= ctx.RecvQ.Cap()
	for i, c := range n.contexts {
		c.Slot = i
	}
	if n.rr >= len(n.contexts) {
		n.rr = 0
	}
}

// SetIdentity rebinds a context to a different (job, rank) — the pointer
// update half of the buffer switch: queue contents are swapped separately
// by the glueFM layer.
func (n *NIC) SetIdentity(ctx *Context, job myrinet.JobID, rank int, hooks Hooks) {
	if n.byJob[ctx.Job] == ctx {
		delete(n.byJob, ctx.Job)
	}
	ctx.Job = job
	ctx.Rank = rank
	ctx.Hooks = hooks
	n.byJob[job] = ctx
}

// ContextFor returns the context serving job, or nil.
func (n *NIC) ContextFor(job myrinet.JobID) *Context {
	return n.byJob[job]
}

// Contexts returns the live contexts (do not mutate).
func (n *NIC) Contexts() []*Context { return n.contexts }

// EnqueueSend places a host-built packet in the context's send queue and
// wakes the send scanner. It reports whether a slot was free; the host
// library must not call it when the queue is full (it should wait for
// OnSendSpace), but the card tolerates it.
func (n *NIC) EnqueueSend(ctx *Context, p *myrinet.Packet) bool {
	if !ctx.SendQ.Enqueue(p) {
		return false
	}
	n.kickSender()
	return true
}

// DequeueRecv removes the oldest packet from the context's receive queue
// (the host library calls this from FM_extract).
func (n *NIC) DequeueRecv(ctx *Context) *myrinet.Packet {
	return ctx.RecvQ.Dequeue()
}

// kickSender arms the send scanner if it is idle, transmission is not
// halted, and some context has a packet queued.
func (n *NIC) kickSender() {
	if n.scanPending || n.haltBit || !n.anyReady() {
		return
	}
	n.scanPending = true
	n.eng.Schedule(n.cfg.SendOverhead, n.scanFn)
}

// scan is the armed send scanner's firing: inject one packet and re-arm
// when the link frees.
func (n *NIC) scan() {
	n.scanPending = false
	// The firmware checks the halt bit before sending each packet
	// (paper §3.2); if it was set while we were preparing, the
	// packet stays queued.
	if n.haltBit {
		return
	}
	ctx := n.nextReady()
	if ctx == nil {
		return
	}
	p := ctx.SendQ.Dequeue()
	n.stats.Injected++
	linkFree := n.net.Send(p)
	if ctx.Hooks.OnSendSpace != nil {
		ctx.Hooks.OnSendSpace(ctx)
	}
	n.eng.ScheduleAt(linkFree, n.kickFn)
}

// anyReady reports whether any context has a packet queued to send.
func (n *NIC) anyReady() bool {
	for _, ctx := range n.contexts {
		if ctx.SendQ.Len() > 0 {
			return true
		}
	}
	return false
}

// nextReady returns the next context with a queued packet, round-robin.
func (n *NIC) nextReady() *Context {
	if len(n.contexts) == 0 {
		return nil
	}
	for i := 0; i < len(n.contexts); i++ {
		ctx := n.contexts[(n.rr+i)%len(n.contexts)]
		if ctx.SendQ.Len() > 0 {
			n.rr = (n.rr + i + 1) % len(n.contexts)
			return ctx
		}
	}
	return nil
}

// SendRefill injects an explicit flow-control refill. Refills bypass the
// credit check and the data send queue (they are small control-like
// packets the firmware emits directly).
func (n *NIC) SendRefill(job myrinet.JobID, srcRank, dstRank int, dst myrinet.NodeID, credits int) {
	p := n.net.NewPacketFrom(n.cfg.Node)
	p.Type, p.Src, p.Dst = myrinet.Refill, n.cfg.Node, dst
	p.Job, p.SrcRank, p.DstRank, p.Credits = job, srcRank, dstRank, credits
	n.net.Send(p)
}

// SendRaw injects a firmware-generated packet directly, bypassing the data
// send queue and the halt bit. The alternative schemes use it for
// NIC-level acknowledgements, which (like PM's) flow regardless of the
// destination process's scheduling state.
func (n *NIC) SendRaw(p *myrinet.Packet) {
	n.net.Send(p)
}

// HaltNetwork implements the first stage of the context switch: set the
// halt bit, broadcast a halt message to every other node (serial loop —
// Myrinet has no hardware broadcast), and invoke onFlushed once halts
// from all other nodes have been collected (state H,p of Figure 3).
func (n *NIC) HaltNetwork(epoch uint64, onFlushed func()) {
	n.haltBit = true
	if n.flush.peers == 0 {
		n.flush.LocalTransition(epoch, onFlushed)
		return
	}
	// Serial broadcast loop: each control packet costs firmware time and
	// is serialized behind in-flight data at the injection port.
	delay := sim.Time(0)
	for d := 0; d < n.net.Nodes(); d++ {
		dst := myrinet.NodeID(d)
		if dst == n.cfg.Node || n.flush.Evicted(dst) {
			continue
		}
		delay += n.cfg.CtlOverhead
		op := n.getOp()
		op.t, op.typ, op.dst, op.epoch = n.flush, myrinet.Halt, dst, epoch
		n.eng.ScheduleArg(delay, ctrlSendFn, op)
	}
	op := n.getOp()
	op.t, op.epoch, op.done = n.flush, epoch, onFlushed
	n.eng.ScheduleArg(delay, ctrlTailFn, op)
}

// ReleaseNetwork implements the third stage: broadcast readiness to
// receive for the new context and, once every other node has also
// reported ready, clear the halt bit, restart the send scanner, and invoke
// onReleased.
func (n *NIC) ReleaseNetwork(epoch uint64, onReleased func()) {
	var complete func()
	if !n.relBusy {
		// One release in flight (the scheduler-driven steady state): stash
		// its state and use the prebuilt completion callback.
		n.relBusy = true
		n.relEpoch, n.relDone = epoch, onReleased
		complete = n.relCompleteFn
	} else {
		complete = func() { n.completeRelease(epoch, onReleased) }
	}
	if n.release.peers == 0 {
		n.release.LocalTransition(epoch, complete)
		return
	}
	delay := sim.Time(0)
	for d := 0; d < n.net.Nodes(); d++ {
		dst := myrinet.NodeID(d)
		if dst == n.cfg.Node || n.release.Evicted(dst) {
			continue
		}
		delay += n.cfg.CtlOverhead
		op := n.getOp()
		op.t, op.typ, op.dst, op.epoch = n.release, myrinet.Ready, dst, epoch
		n.eng.ScheduleArg(delay, ctrlSendFn, op)
	}
	op := n.getOp()
	op.t, op.epoch, op.done = n.release, epoch, complete
	n.eng.ScheduleArg(delay, ctrlTailFn, op)
}

// releaseComplete resolves the stashed in-flight release.
func (n *NIC) releaseComplete() {
	epoch, done := n.relEpoch, n.relDone
	n.relBusy, n.relDone = false, nil
	n.completeRelease(epoch, done)
}

// completeRelease finishes stage 3 once every peer has reported ready. The
// release stage must strictly follow flush completion for the same epoch:
// clearing the halt bit while data of the previous context could still be
// on the wire is exactly the overlap the three-stage protocol exists to
// prevent.
func (n *NIC) completeRelease(epoch uint64, onReleased func()) {
	if !n.flush.Done(epoch) {
		if n.OnViolation != nil {
			n.OnViolation("flush-order",
				fmt.Sprintf("node %d released epoch %d before its flush completed", n.cfg.Node, epoch))
		}
	}
	n.haltBit = false
	n.kickSender()
	if onReleased != nil {
		onReleased()
	}
}

// sendCtrl emits one flush-protocol control packet. Retransmissions and
// echoes are distinguished by the marker (see ctrlRetransmit).
func (n *NIC) sendCtrl(typ myrinet.PacketType, dst myrinet.NodeID, epoch uint64, retx bool) {
	p := n.net.NewPacketFrom(n.cfg.Node)
	p.Type, p.Src, p.Dst, p.Job, p.Epoch = typ, n.cfg.Node, dst, myrinet.NoJob, epoch
	if retx {
		p.Frag = ctrlRetransmit
	}
	n.net.Send(p)
}

// localTransition performs the tracker's local transition and, with
// recovery enabled, wraps the completion callback to cancel the epoch's
// retransmission timer and arms the first one if the phase is still open.
func (n *NIC) localTransition(t *phaseTracker, epoch uint64, onDone func()) {
	if n.recovery == nil {
		t.LocalTransition(epoch, onDone)
		return
	}
	t.LocalTransition(epoch, func() {
		n.cancelRetry(t, epoch)
		if onDone != nil {
			onDone()
		}
	})
	if !t.Done(epoch) {
		n.armRetry(t, epoch, 0)
	}
}

// timersOf returns the retransmission-timer map for a tracker.
func (n *NIC) timersOf(t *phaseTracker) map[uint64]sim.Event {
	if t == n.flush {
		return n.flushTimers
	}
	return n.releaseTimers
}

func (n *NIC) cancelRetry(t *phaseTracker, epoch uint64) {
	timers := n.timersOf(t)
	if ev, ok := timers[epoch]; ok {
		ev.Cancel()
		delete(timers, epoch)
	}
}

// armRetry schedules retransmission attempt number attempt for the epoch,
// Timeout<<attempt cycles from now.
func (n *NIC) armRetry(t *phaseTracker, epoch uint64, attempt int) {
	n.timersOf(t)[epoch] = n.eng.Schedule(n.recovery.Timeout<<attempt, func() {
		n.retryFire(t, epoch, attempt)
	})
}

// retryFire is a retransmission deadline: the phase is still incomplete,
// so either re-broadcast to the unheard peers and back off, or — budget
// spent — force the phase complete without them.
func (n *NIC) retryFire(t *phaseTracker, epoch uint64, attempt int) {
	delete(n.timersOf(t), epoch)
	if t.Done(epoch) {
		return
	}
	if attempt >= n.recovery.Retries {
		if t.ForceComplete(epoch) {
			n.stats.ForcedPhases++
		}
		return
	}
	typ := myrinet.Halt
	if t == n.release {
		typ = myrinet.Ready
	}
	delay := sim.Time(0)
	for d := 0; d < n.net.Nodes(); d++ {
		dst := myrinet.NodeID(d)
		if dst == n.cfg.Node || t.Evicted(dst) || t.Heard(epoch, dst) {
			continue
		}
		delay += n.cfg.CtlOverhead
		n.eng.Schedule(delay, func() {
			if t.Done(epoch) || t.Heard(epoch, dst) {
				return
			}
			n.countRetransmit(typ)
			n.sendCtrl(typ, dst, epoch, true)
		})
	}
	n.armRetry(t, epoch, attempt+1)
}

func (n *NIC) countRetransmit(typ myrinet.PacketType) {
	if typ == myrinet.Halt {
		n.stats.HaltRetransmits++
	} else {
		n.stats.ReadyRetransmits++
	}
}

// FlushState exposes the Figure 3 state label for an epoch: whether the
// local halt has happened and how many remote halts have been counted.
func (n *NIC) FlushState(epoch uint64) (local bool, remote int) {
	return n.flush.State(epoch)
}

// HandlePacket is the receive context: it consumes a packet from the
// network, identifies its type and destination, and DMAs data packets into
// the target context's receive queue (paper §2.2).
func (n *NIC) HandlePacket(p *myrinet.Packet) {
	switch p.Type {
	case myrinet.Halt:
		// Control messages are consumed by the same receive context
		// that performs data DMA, so a halt is counted only after every
		// packet that preceded it on the wire has been fully deposited
		// in its receive queue. The buffer switch that follows flush
		// completion therefore sees complete queues.
		op := n.getOp()
		op.t, op.epoch, op.dst, op.retx = n.flush, p.Epoch, p.Src, p.Frag == ctrlRetransmit
		n.net.FreePacket(p)
		n.recvEngine.UseArg(n.cfg.CtlOverhead, ctrlArriveFn, op)
	case myrinet.Ready:
		op := n.getOp()
		op.t, op.epoch, op.dst, op.retx = n.release, p.Epoch, p.Src, p.Frag == ctrlRetransmit
		n.net.FreePacket(p)
		n.recvEngine.UseArg(n.cfg.CtlOverhead, ctrlArriveFn, op)
	case myrinet.Ack, myrinet.Nack:
		if n.OnControl != nil {
			n.OnControl(p)
		}
		n.net.FreePacket(p)
	case myrinet.Refill:
		ctx := n.byJob[p.Job]
		if ctx == nil {
			n.drop(p, DropNoContext)
			return
		}
		n.recvEngine.UseArg(n.cfg.RecvOverhead, n.refillFn, p)
	case myrinet.Data:
		if n.DataFilter != nil && !n.DataFilter(p) {
			n.drop(p, DropFiltered)
			return
		}
		ctx := n.byJob[p.Job]
		if ctx == nil {
			n.drop(p, DropNoContext)
			return
		}
		cost := n.cfg.RecvOverhead + n.mem.DMACycles(p.WireSize())
		n.recvEngine.UseArg(cost, n.depositFn, p)
	}
}

// ctrlArrive counts one received Halt/Ready against its tracker. Stale
// packets — duplicates, completed epochs, evicted peers — are dropped and
// counted; if a *retransmitted* packet turns out stale and this card has
// itself made the epoch's transition, it echoes its own control packet to
// the sender, healing one-sided loss (the sender is stuck waiting for a
// packet that was lost, not unsent).
func (n *NIC) ctrlArrive(t *phaseTracker, epoch uint64, src myrinet.NodeID, retx bool) {
	if t.Arrive(epoch, src) {
		return
	}
	n.stats.StaleCtrl++
	if !retx || n.recovery == nil || t.Evicted(src) || !t.Transitioned(epoch) {
		return
	}
	typ := myrinet.Halt
	if t == n.release {
		typ = myrinet.Ready
	}
	n.countRetransmit(typ)
	n.sendCtrl(typ, src, epoch, false)
}

// refillArrived is the receive context's handling of a refill after its
// processing cost has been paid.
func (n *NIC) refillArrived(a any) {
	p := a.(*myrinet.Packet)
	if cur := n.byJob[p.Job]; cur != nil && cur.Hooks.OnRefill != nil {
		cur.Hooks.OnRefill(cur, p)
	}
	n.net.FreePacket(p)
}

// deposit completes a data packet's DMA into its context's receive queue.
func (n *NIC) deposit(a any) {
	p := a.(*myrinet.Packet)
	// Re-resolve: a buffer switch may have rebound contexts while the
	// DMA was in progress. Data for a job is only in flight while that
	// job is scheduled (the gang-scheduling invariant), so the context
	// is normally still there.
	cur := n.byJob[p.Job]
	if cur == nil {
		n.drop(p, DropNoContext)
		return
	}
	if !cur.RecvQ.Enqueue(p) {
		n.drop(p, DropRecvFull)
		return
	}
	n.stats.Received++
	if n.OnDeposit != nil {
		n.OnDeposit(cur, p)
	}
	if cur.Hooks.OnArrive != nil {
		cur.Hooks.OnArrive(cur)
	}
}

func (n *NIC) drop(p *myrinet.Packet, reason DropReason) {
	n.stats.Drops[reason]++
	if n.OnDrop != nil {
		n.OnDrop(p, reason)
	}
	// A data packet also consumes its piggybacked credits when dropped;
	// the loss of both is exactly how FM's accounting gets corrupted
	// (paper §2.2). Nothing to do here — the damage is the *absence* of
	// bookkeeping. The packet object itself, though, is dead: recycle it.
	n.net.FreePacket(p)
}
