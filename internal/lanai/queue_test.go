package lanai

import (
	"testing"
	"testing/quick"

	"gangfm/internal/myrinet"
)

func TestQueueBasics(t *testing.T) {
	q := NewQueue(3)
	if q.Cap() != 3 || q.Len() != 0 || q.Full() {
		t.Fatal("fresh queue state wrong")
	}
	if q.Dequeue() != nil || q.Peek() != nil {
		t.Fatal("empty queue should return nil")
	}
	p1 := &myrinet.Packet{MsgID: 1}
	p2 := &myrinet.Packet{MsgID: 2}
	p3 := &myrinet.Packet{MsgID: 3}
	p4 := &myrinet.Packet{MsgID: 4}
	for _, p := range []*myrinet.Packet{p1, p2, p3} {
		if !q.Enqueue(p) {
			t.Fatal("enqueue failed with space available")
		}
	}
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	if q.Enqueue(p4) {
		t.Fatal("enqueue succeeded on full queue")
	}
	if q.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", q.Drops())
	}
	if q.Peek() != p1 {
		t.Fatal("Peek should return oldest")
	}
	if q.Dequeue() != p1 || q.Dequeue() != p2 || q.Dequeue() != p3 {
		t.Fatal("FIFO order violated")
	}
}

func TestQueueDrainLoad(t *testing.T) {
	q := NewQueue(5)
	for i := 0; i < 4; i++ {
		q.Enqueue(&myrinet.Packet{MsgID: uint64(i)})
	}
	pkts := q.Drain()
	if len(pkts) != 4 || q.Len() != 0 {
		t.Fatalf("Drain returned %d packets, queue len %d", len(pkts), q.Len())
	}
	q2 := NewQueue(5)
	q2.Load(pkts)
	for i := 0; i < 4; i++ {
		if q2.Dequeue().MsgID != uint64(i) {
			t.Fatal("Load did not preserve order")
		}
	}
}

func TestQueueLoadOverCapacityPanics(t *testing.T) {
	q := NewQueue(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic loading beyond capacity")
		}
	}()
	q.Load([]*myrinet.Packet{{}, {}})
}

func TestQueueValidBytes(t *testing.T) {
	q := NewQueue(4)
	q.Enqueue(&myrinet.Packet{Type: myrinet.Data, PayloadLen: 100})
	q.Enqueue(&myrinet.Packet{Type: myrinet.Data, PayloadLen: myrinet.MaxPayload})
	want := (100 + myrinet.HeaderSize) + myrinet.PacketSize
	if q.ValidBytes() != want {
		t.Fatalf("ValidBytes = %d, want %d", q.ValidBytes(), want)
	}
}

// Property: a queue behaves exactly like a bounded FIFO for any sequence
// of enqueue/dequeue operations.
func TestQueueFIFOModelProperty(t *testing.T) {
	prop := func(ops []bool, capacity uint8) bool {
		capz := int(capacity%16) + 1
		q := NewQueue(capz)
		var model []*myrinet.Packet
		next := uint64(0)
		for _, enq := range ops {
			if enq {
				p := &myrinet.Packet{MsgID: next}
				next++
				ok := q.Enqueue(p)
				if ok != (len(model) < capz) {
					return false
				}
				if ok {
					model = append(model, p)
				}
			} else {
				got := q.Dequeue()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
