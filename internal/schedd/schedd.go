// Package schedd is the online gang-scheduler daemon: an event-sourced
// service that runs on the DES clock of a live parpar cluster. Commands
// (submit, kill, resize) arrive mid-simulation from a churn trace; an
// admission loop places jobs into the gang matrix through the existing
// packing policies, guided by an aggregated per-node placement cache (the
// kubernetes schedulercache.NodeInfo pattern) so admission prechecks are
// O(nodes) instead of O(matrix); a kill or resize that opens a hole
// triggers slot-to-slot migration (Unify) and conservative backfill; and
// every decision is appended to a log that is byte-identical per seed —
// the determinism contract every other layer of this repo honors.
//
// The same daemon serves two of the three comparison modes of the
// Casanova–Stillwell–Vivien showdown (compare.go): gang scheduling (a
// deep slot table, switched credits, real time slicing) and batch
// (Slots=1, run-to-completion). The third, dynamic fractional resource
// sharing, is modeled analytically in fractional.go.
package schedd

import (
	"fmt"
	"sort"
	"strings"

	"gangfm/internal/chaos"
	"gangfm/internal/core"
	"gangfm/internal/fm"
	"gangfm/internal/gang"
	"gangfm/internal/metrics"
	"gangfm/internal/myrinet"
	"gangfm/internal/parpar"
	"gangfm/internal/schedeval"
	"gangfm/internal/sim"
)

// Config parameterizes one daemon run.
type Config struct {
	// Nodes and Slots shape the machine and its gang matrix; Slots=1 is
	// the batch (run-to-completion) serving mode.
	Nodes int
	Slots int
	// Quantum is the gang time slice.
	Quantum sim.Time
	// Scheme selects Partitioned or Switched buffer credits.
	Scheme fm.Policy
	// Mode is the buffer-switch algorithm used by the Switched scheme.
	Mode core.CopyMode
	// Packing is the gang-matrix packing policy (nil = buddy).
	Packing gang.Policy
	// Trace is the churn trace: arrivals plus optional kill=/resize=/
	// deadline= directives.
	Trace []schedeval.TraceJob
	// Seed drives control-network jitter.
	Seed uint64
	// SlowdownBound is Feitelson's short-job bound, in cycles.
	SlowdownBound sim.Time
	// Horizon bounds the run; zero means last arrival + 10000 quanta.
	// Jobs unfinished at the horizon are censored.
	Horizon sim.Time
	// BackfillSlack scales the conservative backfill estimate; zero means
	// the default 2x. Larger is more conservative (fewer backfills).
	BackfillSlack float64
	// AdaptiveEstimate replaces the static slots-deep stretch in the
	// backfill estimate with an observed per-kernel EWMA of response over
	// nominal work, tightening as completions accumulate. Off by default:
	// the clean-path goldens pin the static estimator.
	AdaptiveEstimate bool
	// Chaos optionally installs a fault plan; Recovery enables the
	// self-healing layer (required for evictions to resolve).
	Chaos    *chaos.Plan
	Recovery *parpar.Recovery
	// Crashes are fail-stop node crashes injected into the run (the
	// crash=node@T trace directive / gangsim churn -crash path). They are
	// appended to the chaos plan as NodeCrash faults; if no Recovery is
	// configured, the default recovery budgets are armed so evictions
	// actually resolve instead of wedging the rotation.
	Crashes []schedeval.Crash
	// Repairs close crashes: node repairs (the repair=node@T trace
	// directive / gangsim churn -repair path), appended to the chaos plan
	// as NodeRepair faults. Each repair must strictly follow a crash of
	// the same node. Arming any repair also arms the heartbeat failure
	// detector (one probe per quantum, two-miss budget) unless the
	// Recovery config already set one — a repair is only worth modelling
	// when crashes are actually detected, and the ack watchdog alone
	// cannot see a crash in batch mode (Slots=1 never broadcasts a
	// switch) or on an idle rotation.
	Repairs []schedeval.Repair
	// RetryBudget caps how many times a crash-killed job is requeued
	// before the daemon gives up on it. Zero means the default (3);
	// negative means no retries.
	RetryBudget int
	// RequeueBackoff is the base delay before a crash-killed job re-enters
	// the admission queue; it doubles per retry of the same job. Zero
	// means one quantum.
	RequeueBackoff sim.Time
	// Shards and Workers select the sharded engine group.
	Shards  int
	Workers int
}

// DefaultConfig mirrors schedeval's evaluation setup: a deep 8-row gang
// matrix, switched credits with the improved copy, a 4M-cycle quantum.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		Slots:         8,
		Quantum:       4_000_000,
		Scheme:        fm.Switched,
		Mode:          core.ValidOnly,
		SlowdownBound: 2_000_000,
	}
}

// task is the daemon's view of one trace job across its incarnations.
type task struct {
	idx  int
	tj   schedeval.TraceJob
	size int // current incarnation size (changes on resize)
	job  *parpar.Job

	queued   bool // waiting in the admission queue
	placed   bool
	placedAt sim.Time
	est      sim.Time // estimated completion time while running

	finished bool
	done     sim.Time
	killed   bool // daemon-initiated kill (trace kill= directive)
	resized  bool // at least one resize happened
	killing  bool // kill in progress (distinguishes from eviction)
	resizing bool // resize kill in progress
	evicted  bool // chaos eviction killed it for good (no retries left)
	backfill bool // admitted by backfill, out of queue order
	dlMiss   bool // finished after its deadline (or censored with one)

	// Requeue state (failure-aware scheduling): retries counts the
	// crash-kill resubmissions so far, pending marks a requeue scheduled
	// but not yet fired (its backoff window), crashAt stamps the kill that
	// the next placement's time-to-requeue is measured from, and gaveup
	// marks a terminal eviction the daemon explicitly abandoned.
	retries int
	pending bool
	crashAt sim.Time
	gaveup  bool
}

// Daemon is the online scheduler.
type Daemon struct {
	cfg     Config
	cluster *parpar.Cluster
	cache   *Cache
	log     *Log

	tasks []*task
	queue []*task // admission order: arrivals FCFS, resizes re-enqueued

	horizon sim.Time
	slack   float64

	// Failure-aware state: retry budget and base backoff for crash-kill
	// requeues, plus the time-to-requeue accumulators (crash kill to
	// re-placement on surviving capacity).
	budget     int
	backoff    sim.Time
	requeueSum sim.Time
	requeueN   int

	// Adaptive backfill estimator: per-kernel EWMA of observed stretch
	// (wall response over nominal work) seeded lazily from completions.
	adaptive bool
	stretch  map[schedeval.Kernel]float64
}

// New builds the daemon and its cluster. The trace is validated against
// the machine size.
func New(cfg Config) (*Daemon, error) {
	if len(cfg.Trace) == 0 {
		return nil, fmt.Errorf("schedd: empty trace")
	}
	for i, j := range cfg.Trace {
		if err := j.Validate(cfg.Nodes); err != nil {
			return nil, fmt.Errorf("schedd: trace job %d: %w", i, err)
		}
	}
	for i, cr := range cfg.Crashes {
		if err := cr.Validate(cfg.Nodes); err != nil {
			return nil, fmt.Errorf("schedd: crash %d: %w", i, err)
		}
	}
	if err := schedeval.ValidateRepairs(cfg.Repairs, cfg.Crashes, cfg.Nodes); err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	pcfg := parpar.DefaultConfig(cfg.Nodes)
	pcfg.Slots = cfg.Slots
	pcfg.Policy = cfg.Scheme
	pcfg.Mode = cfg.Mode
	pcfg.Packing = cfg.Packing
	if cfg.Quantum > 0 {
		pcfg.Quantum = cfg.Quantum
	}
	// Fast-simulation control-network parameters, as schedeval uses.
	pcfg.CtrlJitter = 40_000
	pcfg.CtrlSerialGap = 20_000
	pcfg.ForkDelay = 50_000
	if cfg.Seed != 0 {
		pcfg.Seed = cfg.Seed
	}
	pcfg.Chaos = cfg.Chaos
	pcfg.Recovery = cfg.Recovery
	if len(cfg.Crashes) > 0 {
		// Fold the crash schedule into the chaos plan (as fail-stop
		// NodeCrash faults) without mutating the caller's plan, and arm the
		// default recovery budgets if none were configured — a crash
		// without recovery wedges the rotation instead of evicting.
		plan := chaos.Plan{Seed: pcfg.Seed}
		if cfg.Chaos != nil {
			plan = *cfg.Chaos
			plan.Faults = append([]chaos.Fault(nil), cfg.Chaos.Faults...)
		}
		for _, cr := range cfg.Crashes {
			plan.Faults = append(plan.Faults,
				chaos.Fault{Kind: chaos.NodeCrash, Node: cr.Node, From: cr.At})
		}
		for _, rp := range cfg.Repairs {
			plan.Faults = append(plan.Faults,
				chaos.Fault{Kind: chaos.NodeRepair, Node: rp.Node, From: rp.At})
		}
		pcfg.Chaos = &plan
		if pcfg.Recovery == nil {
			r := parpar.DefaultRecovery(pcfg.Quantum)
			pcfg.Recovery = &r
		}
		if len(cfg.Repairs) > 0 && pcfg.Recovery.HeartbeatEvery == 0 {
			// Repairs imply a heartbeat failure detector (copy, never
			// mutate a caller-owned Recovery): four probes per quantum, two
			// missed intervals to declare a node dead. The cadence must beat
			// the repair stream — detection after the node already rebooted
			// degenerates into the rejoin request outing the stale
			// incarnation, and batch mode (one populated slot, no switch
			// broadcasts, no acks to miss) would never notice the crash at
			// all.
			r := *pcfg.Recovery
			r.HeartbeatEvery = pcfg.Quantum / 4
			r.HeartbeatMisses = 2
			pcfg.Recovery = &r
		}
	}
	pcfg.Shards = cfg.Shards
	pcfg.Workers = cfg.Workers
	cluster, err := parpar.New(pcfg)
	if err != nil {
		return nil, err
	}
	slack := cfg.BackfillSlack
	if slack <= 0 {
		slack = 2
	}
	budget := cfg.RetryBudget
	if budget == 0 {
		budget = 3
	} else if budget < 0 {
		budget = 0
	}
	backoff := cfg.RequeueBackoff
	if backoff <= 0 {
		backoff = pcfg.Quantum
	}
	d := &Daemon{
		cfg:      cfg,
		cluster:  cluster,
		cache:    NewCache(cfg.Nodes, cfg.Slots),
		log:      NewLog(),
		slack:    slack,
		budget:   budget,
		backoff:  backoff,
		adaptive: cfg.AdaptiveEstimate,
	}
	if d.adaptive {
		d.stretch = make(map[schedeval.Kernel]float64)
	}
	// Shrink our capacity caches the instant a node is declared dead —
	// before the spanning jobs' kill callbacks can trigger new placements —
	// and regrow them the instant a repaired node is admitted back, so the
	// backlog drains into the recovered capacity.
	cluster.Master().OnEvict(d.onNodeDead)
	cluster.Master().OnRejoin(d.onNodeRepaired)
	return d, nil
}

// Cluster exposes the underlying parpar cluster.
func (d *Daemon) Cluster() *parpar.Cluster { return d.cluster }

// Cache exposes the placement cache (tests audit it against the matrix).
func (d *Daemon) Cache() *Cache { return d.cache }

// Log exposes the decision log.
func (d *Daemon) Log() *Log { return d.log }

// Run schedules every trace command on the DES clock and drives the
// cluster to the horizon. It may be called once.
func (d *Daemon) Run() error {
	if d.tasks != nil {
		return fmt.Errorf("schedd: Run called twice")
	}
	var lastArrive sim.Time
	for i := range d.cfg.Trace {
		tj := d.cfg.Trace[i]
		if tj.Arrive > lastArrive {
			lastArrive = tj.Arrive
		}
		t := &task{idx: i, tj: tj, size: tj.Size}
		d.tasks = append(d.tasks, t)
	}
	d.horizon = d.cfg.Horizon
	if d.horizon == 0 {
		q := d.cfg.Quantum
		if q == 0 {
			q = 4_000_000
		}
		d.horizon = lastArrive + 10_000*q
	}
	eng := d.cluster.Eng
	// Command events, all on the global lane. Arrival ties are broken by
	// trace order because ScheduleAt is FIFO per timestamp.
	order := make([]int, len(d.tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return d.tasks[order[a]].tj.Arrive < d.tasks[order[b]].tj.Arrive
	})
	for _, i := range order {
		t := d.tasks[i]
		eng.ScheduleAt(t.tj.Arrive, func() { d.submit(t) })
		if t.tj.Kill != 0 {
			eng.ScheduleAt(t.tj.Kill, func() { d.kill(t) })
		}
		if t.tj.ResizeTo != 0 {
			eng.ScheduleAt(t.tj.ResizeAt, func() { d.resize(t) })
		}
	}
	d.cluster.RunUntil(d.horizon)
	d.finishLog()
	return nil
}

// specFor rebuilds the parpar spec for the task's current incarnation
// size (NewProgram closures capture the size, so a resize needs a fresh
// spec from the trace job).
func (t *task) specFor() parpar.JobSpec {
	tj := t.tj
	tj.Size = t.size
	return tj.Spec(fmt.Sprintf("j%d-%s", t.idx, tj.Kernel))
}

// estimate is the conservative completion estimate used by backfill: the
// scheme-independent nominal work, multiplied by a stretch factor and the
// configured slack. The static stretch is the slot-table depth (time
// slicing stretches wall time by the number of co-scheduled rows); with
// AdaptiveEstimate on, kernels that have completed at least once use the
// observed EWMA stretch instead, which starts at the static worst case and
// tightens toward the real response as completions accumulate.
func (d *Daemon) estimate(t *task) sim.Time {
	tj := t.tj
	tj.Size = t.size
	slots := d.cfg.Slots
	if slots < 1 {
		slots = 1
	}
	stretch := float64(slots)
	if d.adaptive {
		if s, ok := d.stretch[tj.Kernel]; ok {
			stretch = s
		}
	}
	return sim.Time(d.slack * float64(tj.Nominal()) * stretch)
}

// observe feeds a natural completion into the adaptive estimator: the
// incarnation's wall response over its nominal work is the realized
// stretch for its kernel type.
func (d *Daemon) observe(t *task, now sim.Time) {
	if !d.adaptive {
		return
	}
	tj := t.tj
	tj.Size = t.size
	nominal := float64(tj.Nominal())
	if nominal <= 0 || now <= t.placedAt {
		return
	}
	obs := float64(now-t.placedAt) / nominal
	if old, ok := d.stretch[tj.Kernel]; ok {
		d.stretch[tj.Kernel] = 0.5*old + 0.5*obs
	} else {
		d.stretch[tj.Kernel] = obs
	}
}

// EstimatedStretch exposes the adaptive estimator's current stretch for a
// kernel (tests assert the estimate tightens); ok is false before the
// kernel's first completion or with the adaptive estimator off.
func (d *Daemon) EstimatedStretch(k schedeval.Kernel) (float64, bool) {
	s, ok := d.stretch[k]
	return s, ok
}

// submit handles an arrival command: log it, enqueue, drain.
func (d *Daemon) submit(t *task) {
	now := d.cluster.Eng.Now()
	d.log.Add(now, VerbSubmit, "job=%d size=%d", t.idx, t.size)
	t.queued = true
	d.queue = append(d.queue, t)
	d.drain()
}

// kill handles a kill command. A running job dies through the voluntary
// termination path; a queued one is simply dequeued.
func (d *Daemon) kill(t *task) {
	now := d.cluster.Eng.Now()
	switch {
	case t.finished || t.killed || t.evicted:
		d.log.Add(now, VerbKillLate, "job=%d", t.idx)
	case t.pending:
		// Crash-killed, waiting out its requeue backoff: cancel the
		// pending resubmission and retire the task.
		t.pending = false
		t.killed = true
		t.done = now
		d.log.Add(now, VerbKill, "job=%d pending=true", t.idx)
	case t.queued:
		d.dequeue(t)
		t.killed = true
		t.done = now
		d.log.Add(now, VerbKill, "job=%d queued=true", t.idx)
	case t.job != nil:
		t.killing = true
		if err := d.cluster.Kill(t.job); err != nil {
			panic(fmt.Sprintf("schedd: kill job %d: %v", t.idx, err))
		}
		t.killing = false
		t.killed = true
		t.job = nil
		t.done = now
		d.log.Add(now, VerbKill, "job=%d", t.idx)
		d.reclaim()
	}
}

// resize handles a resize command: a queued task just changes size; a
// running one is killed (the incarnation is rigid) and re-enqueued at the
// new size, then the freed slots are compacted and backfilled.
func (d *Daemon) resize(t *task) {
	now := d.cluster.Eng.Now()
	to := t.tj.ResizeTo
	switch {
	case t.finished || t.killed || t.evicted:
		d.log.Add(now, VerbResizeLate, "job=%d", t.idx)
		return
	case t.pending:
		// Crash-killed, waiting out its backoff: the resubmission will
		// come back at the new size.
		t.size = to
		t.resized = true
		d.log.Add(now, VerbResize, "job=%d to=%d pending=true", t.idx, to)
	case t.queued:
		t.size = to
		t.resized = true
		d.log.Add(now, VerbResize, "job=%d to=%d queued=true", t.idx, to)
	case t.job != nil:
		t.resizing = true
		if err := d.cluster.Kill(t.job); err != nil {
			panic(fmt.Sprintf("schedd: resize-kill job %d: %v", t.idx, err))
		}
		t.resizing = false
		t.job = nil
		t.placed = false
		t.size = to
		t.resized = true
		t.queued = true
		d.queue = append(d.queue, t)
		d.log.Add(now, VerbResize, "job=%d to=%d", t.idx, to)
		d.reclaim()
	}
	d.drain()
}

// reclaim runs after a kill/resize/eviction/completion opened a hole:
// migrate survivors into earlier slots (so the hole is contiguous and the
// rotation visits fewer rows), then drain the queue with backfill.
func (d *Daemon) reclaim() {
	if moved := d.cluster.Compact(); moved > 0 {
		d.log.Add(d.cluster.Eng.Now(), VerbCompact, "moved=%d", moved)
	}
	d.drain()
}

// onNodeDead is the masterd eviction hook: it fires after the dead node's
// matrix column is killed and before the jobs spanning it are, so the
// placement cache shrinks before any kill callback can cascade into a new
// admission decision. Queued jobs larger than the surviving machine are
// given up on the spot — they could otherwise wedge the queue head and
// censor everything behind it.
func (d *Daemon) onNodeDead(node int) {
	now := d.cluster.Eng.Now()
	d.cache.KillNode(node)
	live := d.cluster.Master().Matrix().LiveCols()
	d.log.Add(now, VerbNodeDead, "node=%d live=%d", node, live)
	var doomed []*task
	for _, t := range d.queue {
		if t.size > live {
			doomed = append(doomed, t)
		}
	}
	for _, t := range doomed {
		d.dequeue(t)
		d.giveUp(t, now, fmt.Sprintf("reason=capacity size=%d live=%d", t.size, live))
	}
}

// onNodeRepaired is the masterd rejoin hook: it fires after the repaired
// node's matrix column is revived, so the placement cache regrows first
// and the drain that follows can place the backlog onto the recovered
// capacity immediately. Jobs already given up stay given up — abandoning
// them was a reported decision, not a reversible one.
func (d *Daemon) onNodeRepaired(node int) {
	now := d.cluster.Eng.Now()
	d.cache.ReviveNode(node)
	live := d.cluster.Master().Matrix().LiveCols()
	d.log.Add(now, VerbNodeRepair, "node=%d live=%d", node, live)
	d.drain()
}

// giveUp retires a task the daemon abandons: it counts as a terminal
// eviction, reported in its own gaveup row, never folded into the means.
func (d *Daemon) giveUp(t *task, now sim.Time, detail string) {
	t.evicted = true
	t.gaveup = true
	t.pending = false
	t.queued = false
	t.done = now
	d.log.Add(now, VerbGaveup, "job=%d %s", t.idx, detail)
}

// requeueFire ends a crash-killed task's backoff window: re-check the
// surviving capacity (more nodes may have died while it waited), then
// re-enter the admission queue in event order.
func (d *Daemon) requeueFire(t *task) {
	if !t.pending {
		return // canceled by a kill command during the backoff
	}
	t.pending = false
	now := d.cluster.Eng.Now()
	if live := d.cluster.Master().Matrix().LiveCols(); t.size > live {
		d.giveUp(t, now, fmt.Sprintf("reason=capacity size=%d live=%d", t.size, live))
		return
	}
	t.queued = true
	d.queue = append(d.queue, t)
	d.drain()
}

// dequeue removes a task from the admission queue.
func (d *Daemon) dequeue(t *task) {
	for i, q := range d.queue {
		if q == t {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			break
		}
	}
	t.queued = false
}

// drain is the admission loop: place queue-head tasks while they fit;
// when the head blocks, conservatively backfill later tasks into the
// hole. The cache's aggregate counters prune candidates that cannot
// possibly fit without touching the matrix.
func (d *Daemon) drain() {
	now := d.cluster.Eng.Now()
	for len(d.queue) > 0 {
		head := d.queue[0]
		if !d.tryPlace(head, false) {
			break
		}
	}
	if len(d.queue) <= 1 {
		return
	}
	// Head is blocked. The shadow is the earliest estimated completion
	// among running jobs — the soonest the head's prospects can improve —
	// and a later candidate may jump the queue only if its own estimate
	// says it clears out before then, so the head is never delayed by the
	// backfill (conservative, in the EASY sense but with estimates).
	shadow := sim.Time(0)
	for _, t := range d.tasks {
		if t.placed && !t.finished && t.job != nil {
			if shadow == 0 || t.est < shadow {
				shadow = t.est
			}
		}
	}
	if shadow == 0 || shadow <= now {
		return
	}
	for _, t := range d.queue[1:] {
		if now+d.estimate(t) > shadow {
			continue
		}
		d.tryPlace(t, true)
	}
}

// tryPlace attempts to admit one queued task. The cache precheck is a
// necessary condition (enough nodes with a free slot anywhere); the
// matrix's packing policy is the sufficiency check. Returns true if the
// task was placed.
func (d *Daemon) tryPlace(t *task, asBackfill bool) bool {
	now := d.cluster.Eng.Now()
	if d.cache.FreeNodes() < t.size {
		d.log.Add(now, VerbPrune, "job=%d size=%d free_nodes=%d", t.idx, t.size, d.cache.FreeNodes())
		return false
	}
	job, err := d.cluster.Submit(t.specFor())
	if err != nil {
		if strings.Contains(err.Error(), "slot table full") {
			d.log.Add(now, VerbQueue, "job=%d size=%d", t.idx, t.size)
			return false
		}
		panic(fmt.Sprintf("schedd: submit job %d: %v", t.idx, err))
	}
	d.dequeue(t)
	t.job = job
	t.placed = true
	t.placedAt = now
	t.est = now + d.estimate(t)
	t.backfill = t.backfill || asBackfill
	if t.crashAt != 0 {
		// Back on the matrix after a crash: close the availability gap.
		d.requeueSum += now - t.crashAt
		d.requeueN++
		t.crashAt = 0
	}
	d.cache.Place(job.Placement)
	verb := VerbPlace
	if asBackfill {
		verb = VerbBackfill
	}
	d.log.Add(now, verb, "job=%d size=%d row=%d col0=%d", t.idx, t.size,
		job.Placement.Row, job.Placement.Cols[0])
	job.OnDone(func(j *parpar.Job) { d.onDone(t, j) })
	return true
}

// onDone is the completion callback for every incarnation: a natural
// completion retires the task; a JobKilled completion is either one of
// the daemon's own kills (kill/resize commands, flagged) or a chaos
// eviction.
func (d *Daemon) onDone(t *task, j *parpar.Job) {
	if t.job != j {
		return // a stale incarnation's callback
	}
	now := d.cluster.Eng.Now()
	d.cache.Remove(j.Placement)
	if j.State() == parpar.JobKilled {
		if t.killing || t.resizing {
			return // the command handler owns the bookkeeping and logging
		}
		// Crash-kill: a chaos eviction took the job down, not a command.
		// Requeue it on surviving capacity if the retry budget and the
		// shrunken machine allow; otherwise give up explicitly.
		t.job = nil
		t.placed = false
		d.log.Add(now, VerbEvicted, "job=%d", t.idx)
		live := d.cluster.Master().Matrix().LiveCols()
		switch {
		case t.retries >= d.budget:
			t.evicted = true
			t.gaveup = true
			t.done = now
			d.log.Add(now, VerbGaveup, "job=%d reason=budget retries=%d", t.idx, t.retries)
		case t.size > live:
			t.evicted = true
			t.gaveup = true
			t.done = now
			d.log.Add(now, VerbGaveup, "job=%d reason=capacity size=%d live=%d", t.idx, t.size, live)
		default:
			t.retries++
			t.pending = true
			t.crashAt = now
			delay := d.backoff << (t.retries - 1)
			d.log.Add(now, VerbRequeue, "job=%d retry=%d delay=%d", t.idx, t.retries, uint64(delay))
			d.cluster.Eng.ScheduleAt(now+delay, func() { d.requeueFire(t) })
		}
		d.reclaim()
		return
	}
	d.observe(t, now)
	t.finished = true
	t.done = now
	if t.tj.Deadline != 0 && now > t.tj.Deadline {
		t.dlMiss = true
		d.log.Add(now, VerbDone, "job=%d deadline_miss=true", t.idx)
	} else {
		d.log.Add(now, VerbDone, "job=%d", t.idx)
	}
	d.reclaim()
}

// finishLog appends the horizon summary: censored tasks and the cache
// audit verdict.
func (d *Daemon) finishLog() {
	censored := 0
	for _, t := range d.tasks {
		if !t.finished && !t.killed && !t.evicted {
			censored++
			if t.tj.Deadline != 0 && d.horizon > t.tj.Deadline {
				t.dlMiss = true
			}
		}
	}
	bad := d.cache.Audit(d.cluster.Master().Matrix())
	for _, msg := range bad {
		d.log.Add(d.horizon, VerbCacheBad, "%s", msg)
	}
	evicted := d.cluster.Master().EvictedNodes()
	d.log.Add(d.horizon, VerbHorizon, "censored=%d cache_ok=%t nodes_evicted=%d",
		censored, len(bad) == 0, len(evicted))
}

// Result aggregates a finished run for the comparison grid.
type Result struct {
	Mode string // "gang" or "batch"

	Jobs     int
	Finished int
	Killed   int
	Resized  int
	Evicted  int
	Censored int
	DlMiss   int

	Backfills  int
	Migrations int // jobs moved by compaction

	MeanResponse float64
	MeanSlowdown float64
	MaxSlowdown  float64
	Utilization  float64

	// Availability metrics (all zero on clean runs): Requeues counts
	// crash-kill resubmissions, RequeuedJobs the distinct jobs that came
	// back at least once, GaveUp the jobs the scheduler explicitly
	// abandoned (retry budget exhausted or machine too small — a subset of
	// Evicted). MeanRequeue is the mean cycles from crash-kill to
	// re-placement on surviving capacity. NodesLost counts evicted nodes,
	// CapacityLost the fraction of the machine's node-cycles they took
	// with them, and Goodput the useful work over the node-cycles that
	// actually survived (utilization of the live machine).
	Requeues     int
	RequeuedJobs int
	GaveUp       int
	MeanRequeue  float64
	NodesLost    int
	CapacityLost float64
	Goodput      float64

	// Repair metrics (all zero unless repairs are armed): Repairs is the
	// number of armed repair events, NodesRepaired the nodes admitted back
	// at least once, CapacityRepaired the fraction of the node-cycles the
	// crashes would have cost that repair recovered (downtime avoided over
	// downtime without repair), and PostRepairGoodput the goodput over the
	// window from the first rejoin to the end of the run — the "did the
	// machine actually come back" number.
	Repairs           int
	NodesRepaired     int
	CapacityRepaired  float64
	PostRepairGoodput float64

	Log    *Log
	Events uint64
}

// Result computes the run's aggregate metrics. Response and slowdown are
// computed over finished jobs only; killed, evicted, and censored jobs
// are reported in their own columns, not folded into the means (that is
// the censoring-transparency rule schedeval's summary also follows).
func (d *Daemon) Result(mode string) *Result {
	r := &Result{
		Mode:   mode,
		Jobs:   len(d.tasks),
		Log:    d.log,
		Events: d.cluster.Fired(),
	}
	bound := float64(d.cfg.SlowdownBound)
	if bound <= 0 {
		bound = 1
	}
	master := d.cluster.Master()
	firstRejoin, anyRejoin := master.FirstRejoinAt()
	var responses, slowdowns []float64
	var usefulWork, postWork float64
	var firstArrive, lastEnd sim.Time
	for i, t := range d.tasks {
		if i == 0 || t.tj.Arrive < firstArrive {
			firstArrive = t.tj.Arrive
		}
		switch {
		case t.finished:
			r.Finished++
			resp := float64(t.done - t.tj.Arrive)
			responses = append(responses, resp)
			tj := t.tj
			tj.Size = t.size
			nominal := tj.Nominal()
			slowdowns = append(slowdowns, metrics.BoundedSlowdown(resp, float64(nominal), bound))
			usefulWork += float64(t.size) * float64(nominal)
			if anyRejoin && t.done >= firstRejoin {
				postWork += float64(t.size) * float64(nominal)
			}
			if t.done > lastEnd {
				lastEnd = t.done
			}
		case t.killed:
			r.Killed++
			if t.done > lastEnd {
				lastEnd = t.done
			}
		case t.evicted:
			r.Evicted++
			if t.done > lastEnd {
				lastEnd = t.done
			}
		default:
			r.Censored++
			if d.horizon > lastEnd {
				lastEnd = d.horizon
			}
		}
		if t.resized {
			r.Resized++
		}
		if t.dlMiss {
			r.DlMiss++
		}
		if t.backfill {
			r.Backfills++
		}
		if t.retries > 0 {
			r.RequeuedJobs++
			r.Requeues += t.retries
		}
		if t.gaveup {
			r.GaveUp++
		}
	}
	r.Migrations = d.log.Sum(VerbCompact, "moved")
	r.MeanResponse = metrics.Mean(responses)
	r.MeanSlowdown = metrics.Mean(slowdowns)
	r.MaxSlowdown = metrics.Max(slowdowns)
	if d.requeueN > 0 {
		r.MeanRequeue = float64(d.requeueSum) / float64(d.requeueN)
	}
	span := lastEnd - firstArrive
	r.Repairs = len(d.cfg.Repairs)
	var lost, lostNoRepair float64
	for _, n := range master.EverEvicted() {
		r.NodesLost++
		if master.Rejoins(n) > 0 {
			r.NodesRepaired++
		}
		// Actual downtime versus the no-repair counterfactual (the node
		// stays down from its first eviction); on repair-free runs the two
		// are equal and this reduces to the old "lost from eviction to the
		// end" formula.
		lost += float64(master.DowntimeIn(n, 0, lastEnd))
		if at, ok := master.FirstEvictedAt(n); ok && at < lastEnd {
			lostNoRepair += float64(lastEnd - at)
		}
	}
	if span > 0 {
		total := float64(d.cfg.Nodes) * float64(span)
		r.Utilization = usefulWork / total
		r.CapacityLost = lost / total
		if surviving := total - lost; surviving > 0 {
			r.Goodput = usefulWork / surviving
		}
	}
	if lostNoRepair > 0 {
		r.CapacityRepaired = (lostNoRepair - lost) / lostNoRepair
	}
	if anyRejoin && lastEnd > firstRejoin {
		postTotal := float64(d.cfg.Nodes) * float64(lastEnd-firstRejoin)
		for _, n := range master.EverEvicted() {
			postTotal -= float64(master.DowntimeIn(n, firstRejoin, lastEnd))
		}
		if postTotal > 0 {
			r.PostRepairGoodput = postWork / postTotal
		}
	}
	return r
}

// JobID is a convenience for tests: the parpar job ID of task idx's
// current incarnation, or NoJob.
func (d *Daemon) JobID(idx int) myrinet.JobID {
	if idx < 0 || idx >= len(d.tasks) || d.tasks[idx].job == nil {
		return myrinet.NoJob
	}
	return d.tasks[idx].job.ID
}
