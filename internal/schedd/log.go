package schedd

import (
	"fmt"
	"strconv"
	"strings"

	"gangfm/internal/metrics"
	"gangfm/internal/sim"
)

// Verb labels one kind of scheduling decision. The order of this list is
// the order of the stats table, so it is part of the golden output.
type Verb int

const (
	VerbSubmit Verb = iota
	VerbPlace
	VerbBackfill
	VerbQueue
	VerbPrune
	VerbKill
	VerbKillLate
	VerbResize
	VerbResizeLate
	VerbCompact
	VerbDone
	VerbEvicted
	VerbRequeue
	VerbGaveup
	VerbNodeDead
	VerbNodeRepair
	VerbCacheBad
	VerbHorizon
	verbCount
)

var verbNames = [...]string{
	"submit", "place", "backfill", "queue", "prune", "kill", "kill-late",
	"resize", "resize-late", "compact", "done", "evicted", "requeue", "gaveup",
	"node-dead", "node-repair", "cache-bad", "horizon",
}

// failureVerb reports whether v only ever appears in failure-injected runs.
// StatsTable hides these rows when every run's count is zero, so clean-path
// decision tables render byte-identically to the pre-failure-aware layout.
func failureVerb(v Verb) bool {
	return v == VerbRequeue || v == VerbGaveup || v == VerbNodeDead || v == VerbNodeRepair
}

// String returns the verb's log name.
func (v Verb) String() string {
	if v < 0 || int(v) >= len(verbNames) {
		return fmt.Sprintf("verb(%d)", int(v))
	}
	return verbNames[v]
}

// Log is the daemon's append-only decision log. Every entry is stamped
// with the DES time at which the decision was made, so the rendered log
// is byte-identical for a given seed — across runs and across worker
// counts, by the engine group's determinism contract.
type Log struct {
	lines  []string
	counts [verbCount]int
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Add appends one decision line: "t=<cycles> <verb> <details>".
func (l *Log) Add(t sim.Time, v Verb, format string, args ...any) {
	l.counts[v]++
	l.lines = append(l.lines, fmt.Sprintf("t=%d %s %s", uint64(t), v, fmt.Sprintf(format, args...)))
}

// Len returns the number of entries.
func (l *Log) Len() int { return len(l.lines) }

// Count returns how many entries carry the verb.
func (l *Log) Count(v Verb) int {
	if v < 0 || v >= verbCount {
		return 0
	}
	return l.counts[v]
}

// Lines returns the log lines in append order.
func (l *Log) Lines() []string { return l.lines }

// String renders the full log, one line per decision.
func (l *Log) String() string {
	var sb strings.Builder
	for _, line := range l.lines {
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Sum adds up the integer values of key=N fields across the verb's lines
// (e.g. Sum(VerbCompact, "moved") = total jobs migrated by compaction).
func (l *Log) Sum(v Verb, key string) int {
	prefix := key + "="
	want := " " + v.String() + " "
	total := 0
	for _, line := range l.lines {
		if !strings.Contains(line, want) {
			continue
		}
		for _, f := range strings.Fields(line) {
			if strings.HasPrefix(f, prefix) {
				if n, err := strconv.Atoi(f[len(prefix):]); err == nil {
					total += n
				}
			}
		}
	}
	return total
}

// StatsTable renders per-verb decision counts for a set of runs, one
// column per mode — the decision-log half of the churn report.
func StatsTable(rs []*Result) *metrics.Table {
	cols := []string{"decision"}
	for _, r := range rs {
		cols = append(cols, r.Mode)
	}
	t := metrics.NewTable("Decision-log statistics", cols...)
	for v := Verb(0); v < verbCount; v++ {
		if failureVerb(v) {
			seen := false
			for _, r := range rs {
				if r.Log != nil && r.Log.Count(v) > 0 {
					seen = true
					break
				}
			}
			if !seen {
				continue
			}
		}
		row := []any{v.String()}
		for _, r := range rs {
			if r.Log == nil {
				row = append(row, 0)
				continue
			}
			row = append(row, r.Log.Count(v))
		}
		t.AddRow(row...)
	}
	return t
}
