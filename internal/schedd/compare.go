package schedd

import (
	"fmt"

	"gangfm/internal/metrics"
	"gangfm/internal/sim"
)

// Showdown runs the Casanova–Stillwell–Vivien comparison on one churn
// trace: gang scheduling (the configured slot depth, real time slicing on
// the full parpar stack), batch (Slots=1, run-to-completion), and
// dynamic fractional sharing (analytic processor sharing). All three see
// the same arrivals, kills, resizes, and deadlines.
func Showdown(cfg Config) ([]*Result, error) {
	gangd, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("schedd: gang: %w", err)
	}
	if err := gangd.Run(); err != nil {
		return nil, err
	}
	batchCfg := cfg
	batchCfg.Slots = 1
	batchd, err := New(batchCfg)
	if err != nil {
		return nil, fmt.Errorf("schedd: batch: %w", err)
	}
	if err := batchd.Run(); err != nil {
		return nil, err
	}
	return []*Result{
		gangd.Result("gang"),
		batchd.Result("batch"),
		Fractional(cfg),
	}, nil
}

// ms renders cycles as milliseconds on the default clock.
func ms(t float64) float64 {
	return sim.DefaultClock.ToDuration(sim.Time(t)).Seconds() * 1e3
}

// AvailabilityTable renders the failure-aware half of the showdown: per
// mode, the goodput (useful work over the node-cycles that survived the
// crashes), the requeue/gaveup activity, the mean time from crash-kill to
// re-placement, and how much of the machine the dead nodes took with them.
func AvailabilityTable(rs []*Result) *metrics.Table {
	t := metrics.NewTable(
		"Availability under node crashes",
		"mode", "goodput", "done", "requeues", "rq_jobs", "gaveup", "cens",
		"mean_ttr_ms", "nodes_lost", "cap_lost",
	)
	for _, r := range rs {
		t.AddRow(
			r.Mode, r.Goodput, r.Finished, r.Requeues, r.RequeuedJobs,
			r.GaveUp, r.Censored, ms(r.MeanRequeue), r.NodesLost, r.CapacityLost,
		)
	}
	return t
}

// GridTable renders the per-mode comparison grid: job fates, backfill and
// migration activity, and the response/bounded-slowdown/utilization
// numbers the showdown is about.
func GridTable(rs []*Result) *metrics.Table {
	t := metrics.NewTable(
		"Gang vs batch vs fractional under churn",
		"mode", "jobs", "done", "kill", "evict", "resz", "cens", "dlmiss",
		"bfill", "migr", "mean_resp_ms", "mean_bsld", "max_bsld", "util",
	)
	for _, r := range rs {
		t.AddRow(
			r.Mode, r.Jobs, r.Finished, r.Killed, r.Evicted, r.Resized,
			r.Censored, r.DlMiss, r.Backfills, r.Migrations,
			ms(r.MeanResponse), r.MeanSlowdown, r.MaxSlowdown, r.Utilization,
		)
	}
	return t
}
