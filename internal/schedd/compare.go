package schedd

import (
	"fmt"

	"gangfm/internal/metrics"
	"gangfm/internal/sim"
)

// Showdown runs the Casanova–Stillwell–Vivien comparison on one churn
// trace: gang scheduling (the configured slot depth, real time slicing on
// the full parpar stack), batch (Slots=1, run-to-completion), and
// dynamic fractional sharing (analytic processor sharing). All three see
// the same arrivals, kills, resizes, and deadlines.
func Showdown(cfg Config) ([]*Result, error) {
	gangd, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("schedd: gang: %w", err)
	}
	if err := gangd.Run(); err != nil {
		return nil, err
	}
	batchCfg := cfg
	batchCfg.Slots = 1
	batchd, err := New(batchCfg)
	if err != nil {
		return nil, fmt.Errorf("schedd: batch: %w", err)
	}
	if err := batchd.Run(); err != nil {
		return nil, err
	}
	return []*Result{
		gangd.Result("gang"),
		batchd.Result("batch"),
		Fractional(cfg),
	}, nil
}

// ms renders cycles as milliseconds on the default clock.
func ms(t float64) float64 {
	return sim.DefaultClock.ToDuration(sim.Time(t)).Seconds() * 1e3
}

// AvailabilityTable renders the failure-aware half of the showdown: per
// mode, the goodput (useful work over the node-cycles that survived the
// crashes), the requeue/gaveup activity, the mean time from crash-kill to
// re-placement, and how much of the machine the dead nodes took with them.
// When any run armed repairs, three more columns report the repair side of
// the loop: nodes admitted back, the fraction of the would-be-lost
// node-cycles the repairs recovered, and the goodput after the first
// rejoin. Crash-only runs render the pre-repair layout byte-identically.
func AvailabilityTable(rs []*Result) *metrics.Table {
	withRepairs := false
	for _, r := range rs {
		if r.Repairs > 0 {
			withRepairs = true
			break
		}
	}
	cols := []string{
		"mode", "goodput", "done", "requeues", "rq_jobs", "gaveup", "cens",
		"mean_ttr_ms", "nodes_lost", "cap_lost",
	}
	if withRepairs {
		cols = append(cols, "nodes_rep", "cap_rep", "post_gp")
	}
	t := metrics.NewTable("Availability under node crashes", cols...)
	for _, r := range rs {
		row := []any{
			r.Mode, r.Goodput, r.Finished, r.Requeues, r.RequeuedJobs,
			r.GaveUp, r.Censored, ms(r.MeanRequeue), r.NodesLost, r.CapacityLost,
		}
		if withRepairs {
			row = append(row, r.NodesRepaired, r.CapacityRepaired, r.PostRepairGoodput)
		}
		t.AddRow(row...)
	}
	return t
}

// GridTable renders the per-mode comparison grid: job fates, backfill and
// migration activity, and the response/bounded-slowdown/utilization
// numbers the showdown is about.
func GridTable(rs []*Result) *metrics.Table {
	t := metrics.NewTable(
		"Gang vs batch vs fractional under churn",
		"mode", "jobs", "done", "kill", "evict", "resz", "cens", "dlmiss",
		"bfill", "migr", "mean_resp_ms", "mean_bsld", "max_bsld", "util",
	)
	for _, r := range rs {
		t.AddRow(
			r.Mode, r.Jobs, r.Finished, r.Killed, r.Evicted, r.Resized,
			r.Censored, r.DlMiss, r.Backfills, r.Migrations,
			ms(r.MeanResponse), r.MeanSlowdown, r.MaxSlowdown, r.Utilization,
		)
	}
	return t
}
