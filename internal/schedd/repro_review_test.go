package schedd

import (
	"strings"
	"testing"

	"gangfm/internal/schedeval"
	"gangfm/internal/sim"
)

// Review repro: three backfill candidates behind a blocked head; the
// backfill loop iterates d.queue[1:] while tryPlace mutates d.queue.
func TestReviewBackfillQueueMutation(t *testing.T) {
	long := func(arrive sim.Time, size int) schedeval.TraceJob {
		return schedeval.TraceJob{Arrive: arrive, Size: size, Kernel: schedeval.KernelBSP,
			Units: 5, Msgs: 4, MsgBytes: 512, Compute: 8_000_000}
	}
	short := func(arrive sim.Time, size int) schedeval.TraceJob {
		return schedeval.TraceJob{Arrive: arrive, Size: size, Kernel: schedeval.KernelBSP,
			Units: 1, Msgs: 1, MsgBytes: 64, Compute: 50_000}
	}
	cfg := DefaultConfig(6)
	cfg.Slots = 2
	cfg.Trace = []schedeval.TraceJob{
		long(0, 6),       // row 0, all columns
		long(100_000, 3), // row 1, three columns
		long(200_000, 6), // head: blocked
		short(300_000, 1),
		short(310_000, 1),
		short(320_000, 1),
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	logStr := d.Log().String()
	for _, j := range []string{"job=3", "job=4", "job=5"} {
		n := strings.Count(logStr, "backfill "+j)
		t.Logf("backfill count for %s: %d", j, n)
		if n > 1 {
			t.Errorf("task %s submitted %d times", j, n)
		}
	}
	if bad := d.Cache().Audit(d.Cluster().Master().Matrix()); len(bad) != 0 {
		t.Errorf("cache audit: %v", bad)
	}
	t.Logf("log:\n%s", logStr)
}
