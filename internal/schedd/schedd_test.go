package schedd

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"gangfm/internal/chaos"
	"gangfm/internal/parpar"
	"gangfm/internal/schedeval"
	"gangfm/internal/sim"
)

// churnTrace generates the standard seeded churn workload.
func churnTrace(t *testing.T, jobs int) []schedeval.TraceJob {
	t.Helper()
	g := schedeval.DefaultGenConfig(8)
	g.Seed = 11
	g.Jobs = jobs
	g.KillFraction = 0.15
	g.ResizeFraction = 0.15
	g.DeadlineFraction = 0.25
	trace, err := schedeval.Generate(g)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// render folds a run's observable output into one string: the grid row
// inputs plus the full decision log.
func render(r *Result) string {
	return fmt.Sprintf("%s jobs=%d done=%d kill=%d evict=%d resz=%d cens=%d dl=%d bf=%d migr=%d resp=%.3f bsld=%.3f/%.3f util=%.4f\n%s",
		r.Mode, r.Jobs, r.Finished, r.Killed, r.Evicted, r.Resized, r.Censored,
		r.DlMiss, r.Backfills, r.Migrations, r.MeanResponse, r.MeanSlowdown,
		r.MaxSlowdown, r.Utilization, r.Log.String())
}

// TestDaemonDeterminism is the acceptance criterion's core: the same seed
// must produce a byte-identical decision log and metrics — across repeated
// runs and across sharded execution at workers 1, 2, and 4.
func TestDaemonDeterminism(t *testing.T) {
	trace := churnTrace(t, 14)
	run := func(shards, workers int) string {
		cfg := DefaultConfig(8)
		cfg.Trace = trace
		cfg.Shards = shards
		cfg.Workers = workers
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		return render(d.Result("gang"))
	}
	base := run(0, 0)
	if again := run(0, 0); again != base {
		t.Fatal("unsharded rerun diverged")
	}
	for _, workers := range []int{1, 2, 4} {
		if got := run(4, workers); got != base {
			t.Fatalf("shards=4 workers=%d diverged from unsharded run:\n--- base ---\n%s\n--- got ---\n%s",
				workers, base, got)
		}
	}
	if !strings.Contains(base, " place ") || !strings.Contains(base, " done ") {
		t.Fatalf("log lacks basic decisions:\n%s", base)
	}
}

// TestKillResizeChurn checks the command paths end to end on the seeded
// trace: kills and resizes both happen, resized jobs complete at their new
// size, and the cache stays coherent with the matrix (no cache-bad lines,
// horizon reports cache_ok).
func TestKillResizeChurn(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Trace = churnTrace(t, 20)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	r := d.Result("gang")
	if r.Killed == 0 {
		t.Error("trace has kill directives but none executed")
	}
	if r.Resized == 0 {
		t.Error("trace has resize directives but none executed")
	}
	if r.Finished == 0 {
		t.Error("no jobs finished")
	}
	if got := r.Log.Count(VerbCacheBad); got != 0 {
		t.Errorf("%d cache coherence violations:\n%s", got, r.Log)
	}
	if bad := d.Cache().Audit(d.Cluster().Master().Matrix()); len(bad) != 0 {
		t.Errorf("cache audit: %v", bad)
	}
	if !strings.Contains(r.Log.String(), "cache_ok=true") {
		t.Error("horizon line does not report cache_ok=true")
	}
	if r.Finished+r.Killed+r.Evicted+r.Censored != r.Jobs {
		t.Errorf("fates don't partition: %d+%d+%d+%d != %d",
			r.Finished, r.Killed, r.Evicted, r.Censored, r.Jobs)
	}
}

// TestKillMidMessageTeardown is a regression test for a fragment-stream
// corruption in the kill path: the masterd delivers node-side kills with
// jittered ctrl latencies, so one rank's queues are torn down while its
// peers are still live and mid-message. A merely *suspended* endpoint
// would finish an in-flight send after its own SendQ was cleared,
// injecting message n+1 onto the wire with a fragment of message n
// destroyed — the live peer's reassembly then panicked ("interleaved
// fragments"). The 28-job seed-11 trace hits the window (job 9, a
// 2048-byte-message all-to-all, is killed 788k cycles after placement,
// mid-fragment-stream); smaller traces don't.
func TestKillMidMessageTeardown(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Trace = churnTrace(t, 28)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	r := d.Result("gang")
	if r.Killed == 0 {
		t.Error("trace has kill directives but none executed")
	}
	if r.Finished+r.Killed+r.Evicted+r.Censored != r.Jobs {
		t.Errorf("fates don't partition: %d+%d+%d+%d != %d",
			r.Finished, r.Killed, r.Evicted, r.Censored, r.Jobs)
	}
	if bad := d.Cache().Audit(d.Cluster().Master().Matrix()); len(bad) != 0 {
		t.Errorf("cache audit: %v", bad)
	}
}

// TestBackfillConservative pins the backfill rule with a hand-built
// scenario on a 4-node, 2-slot machine: two long jobs fill column space so
// a spanning head blocks, a short narrow job may jump the queue (its
// estimate clears before the shadow), and a long narrow job may not.
func TestBackfillConservative(t *testing.T) {
	long := func(arrive sim.Time, size int) schedeval.TraceJob {
		return schedeval.TraceJob{Arrive: arrive, Size: size, Kernel: schedeval.KernelBSP,
			Units: 5, Msgs: 4, MsgBytes: 512, Compute: 8_000_000}
	}
	short := func(arrive sim.Time, size int) schedeval.TraceJob {
		return schedeval.TraceJob{Arrive: arrive, Size: size, Kernel: schedeval.KernelBSP,
			Units: 1, Msgs: 1, MsgBytes: 64, Compute: 50_000}
	}
	cfg := DefaultConfig(4)
	cfg.Slots = 2
	cfg.Trace = []schedeval.TraceJob{
		long(0, 4),        // row 0, all columns
		long(100_000, 2),  // row 1, two columns
		long(200_000, 4),  // head: blocked until both longs exit
		short(300_000, 2), // short narrow: estimate clears the shadow -> backfill
		long(400_000, 2),  // long narrow: estimate exceeds the shadow -> waits
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	r := d.Result("gang")
	if r.Finished != len(cfg.Trace) {
		t.Fatalf("only %d/%d finished:\n%s", r.Finished, len(cfg.Trace), r.Log)
	}
	logStr := r.Log.String()
	if !strings.Contains(logStr, "backfill job=3") {
		t.Errorf("short job 3 was not backfilled:\n%s", logStr)
	}
	if strings.Contains(logStr, "backfill job=4") {
		t.Errorf("long job 4 was backfilled past the blocked head:\n%s", logStr)
	}
	if r.Backfills != 1 {
		t.Errorf("backfills = %d, want 1", r.Backfills)
	}
	// Conservativeness: the backfilled job must not have delayed the head.
	// Job 3 is admitted into job 1's row and exits before either long job,
	// so job 2's placement time equals what a no-backfill run would give.
	noBF := cfg
	noBF.Trace = cfg.Trace[:3]
	d2, err := New(noBF)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Run(); err != nil {
		t.Fatal(err)
	}
	headPlaced := func(log *Log) sim.Time {
		for _, line := range log.Lines() {
			if strings.Contains(line, " place job=2 ") {
				var at int64
				if _, err := fmt.Sscanf(line, "t=%d", &at); err != nil {
					t.Fatalf("unparseable log line %q: %v", line, err)
				}
				return sim.Time(at)
			}
		}
		t.Fatalf("head job 2 never placed:\n%s", log)
		return 0
	}
	// Backfill must never push the head later; earlier is fine (the short
	// job perturbs rotation timing by a few control messages).
	if with, without := headPlaced(r.Log), headPlaced(d2.Log()); with > without {
		t.Errorf("backfill delayed the head: with=%d without=%d", with, without)
	}
}

// TestChaosUnderChurn is the chaos-under-churn smoke: a NodeCrash mid-
// churn on a recovered cluster must evict the crashed node's jobs (logged
// as evicted, counted in the grid), while jobs on surviving nodes
// complete — and the whole thing replays byte-identically.
func TestChaosUnderChurn(t *testing.T) {
	long := func(arrive sim.Time, size int) schedeval.TraceJob {
		return schedeval.TraceJob{Arrive: arrive, Size: size, Kernel: schedeval.KernelBSP,
			Units: 4, Msgs: 6, MsgBytes: 512, Compute: 2_000_000}
	}
	run := func(shards, workers int) (*Result, []int) {
		cfg := DefaultConfig(4)
		cfg.Slots = 2
		cfg.Quantum = 400_000
		cfg.Trace = []schedeval.TraceJob{
			long(0, 4),         // spans the doomed node -> evicted
			long(100_000, 2),   // lands on nodes 0-1... placement decides
			long(5_000_000, 2), // arrives after the crash settles
		}
		cfg.Horizon = 400_000_000
		cfg.Shards = shards
		cfg.Workers = workers
		rec := parpar.DefaultRecovery(cfg.Quantum)
		cfg.Recovery = &rec
		cfg.Chaos = &chaos.Plan{Seed: 5, Faults: []chaos.Fault{
			{Kind: chaos.NodeCrash, Node: 3, From: 150_000},
		}}
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		return d.Result("gang"), d.Cluster().Master().EvictedNodes()
	}
	r, evicted := run(0, 0)
	if len(evicted) == 0 {
		t.Fatalf("no node evicted under NodeCrash:\n%s", r.Log)
	}
	if got := r.Log.Count(VerbNodeDead); got != len(evicted) {
		t.Errorf("node-dead log count %d != evicted nodes %d", got, len(evicted))
	}
	if r.Evicted == 0 {
		t.Fatalf("no job evicted, want the full-machine job:\n%s", r.Log)
	}
	// Terminal evictions are exactly the explicit gaveups, and every
	// crash-kill was either requeued or given up — nothing silently lost.
	if r.Evicted != r.GaveUp {
		t.Errorf("evicted %d != gaveup %d: a crash-kill fate went unreported", r.Evicted, r.GaveUp)
	}
	if crashKills := r.Log.Count(VerbEvicted); crashKills > r.Log.Count(VerbRequeue)+r.Log.Count(VerbGaveup) {
		t.Errorf("%d crash-kills but only %d requeue + %d gaveup decisions",
			crashKills, r.Log.Count(VerbRequeue), r.Log.Count(VerbGaveup))
	}
	// Zero jobs stuck in Loading on dead nodes: the spanning job requeued
	// onto surviving capacity and finished, so nothing is censored.
	if r.Censored != 0 {
		t.Errorf("censored %d jobs, want 0 (requeue must drain them):\n%s", r.Censored, r.Log)
	}
	if r.RequeuedJobs == 0 {
		t.Errorf("no job requeued, want the crash-killed small job:\n%s", r.Log)
	}
	if r.Finished == 0 {
		t.Fatalf("no survivor completed on the degraded cluster:\n%s", r.Log)
	}
	if r.NodesLost != len(evicted) || r.CapacityLost <= 0 || r.Goodput <= r.Utilization {
		t.Errorf("availability metrics inconsistent: lost=%d cap=%.3f goodput=%.3f util=%.3f",
			r.NodesLost, r.CapacityLost, r.Goodput, r.Utilization)
	}
	r2, _ := run(0, 0)
	if render(r) != render(r2) {
		t.Fatal("chaos-under-churn run not byte-identical across replays")
	}
	// An armed chaos plan forces the sharded group into lockstep, so the
	// crash cascade — eviction order, requeue timing, every log line — must
	// be byte-identical at any shard/worker setting.
	for _, workers := range []int{1, 2, 4} {
		sharded, _ := run(4, workers)
		if render(r) != render(sharded) {
			t.Fatalf("shards=4 workers=%d diverged from the unsharded crash run", workers)
		}
	}
}

// TestFractionalKnownAnswer checks the analytic processor-sharing model
// against closed-form answers. Two compute-only jobs sharing one node
// follow the classic PS timeline: the shorter finishes at twice its work,
// the longer at the sum of both.
func TestFractionalKnownAnswer(t *testing.T) {
	// Compute-only (size 1 => no messages => comm fraction 0).
	j0 := schedeval.TraceJob{Arrive: 0, Size: 1, Kernel: schedeval.KernelBSP,
		Units: 10, Msgs: 1, MsgBytes: 64, Compute: 1_000_000}
	j1 := schedeval.TraceJob{Arrive: 0, Size: 1, Kernel: schedeval.KernelBSP,
		Units: 30, Msgs: 1, MsgBytes: 64, Compute: 1_000_000}
	n0, n1 := float64(j0.Nominal()), float64(j1.Nominal())
	cfg := DefaultConfig(1)
	cfg.Trace = []schedeval.TraceJob{j0, j1}
	r := Fractional(cfg)
	if r.Finished != 2 {
		t.Fatalf("finished %d/2:\n%s", r.Finished, r.Log)
	}
	// PS on one CPU: short job sees rate 1/2 until it exits at 2*n0; the
	// long one then runs alone and exits at n0 + n1.
	wantMean := (2*n0 + n0 + n1) / 2
	if got := r.MeanResponse; !near(got, wantMean, 1) {
		t.Errorf("mean response %v, want %v", got, wantMean)
	}

	// A lone communication-heavy job runs at full rate: response = nominal.
	comm := schedeval.TraceJob{Arrive: 0, Size: 2, Kernel: schedeval.KernelAllToAll,
		Units: 4, Msgs: 20, MsgBytes: 2048, Compute: 10_000}
	cfg2 := DefaultConfig(4)
	cfg2.Trace = []schedeval.TraceJob{comm}
	r2 := Fractional(cfg2)
	if got, want := r2.MeanResponse, float64(comm.Nominal()); !near(got, want, 1) {
		t.Errorf("lone comm job response %v, want nominal %v", got, want)
	}

	// Two identical comm-heavy jobs overlapping: with comm fraction cf and
	// co-residency 2, each runs at 1/((1-cf)*2 + cf*4) — communication
	// degrades quadratically (the split-credit effect).
	cfg3 := DefaultConfig(2)
	cfg3.Trace = []schedeval.TraceJob{comm, comm}
	r3 := Fractional(cfg3)
	wall, cparts := comm.NominalParts()
	nom := float64(comm.Nominal())
	cf := float64(cparts) / nom
	_ = wall
	want3 := nom * ((1-cf)*2 + cf*4)
	if got := r3.MeanResponse; !near(got, want3, 1) {
		t.Errorf("shared comm jobs response %v, want %v", got, want3)
	}
	if r3.MeanResponse <= r2.MeanResponse {
		t.Error("co-residency did not degrade communication-bound jobs")
	}
}

func near(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// TestShowdownGrid runs all three modes on the seeded churn trace and
// checks the grid invariants: same jobs everywhere, every mode reports
// bounded slowdown and utilization, fractional admits everything (no
// queue), and the rendering carries all three rows.
func TestShowdownGrid(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Trace = churnTrace(t, 12)
	rs, err := Showdown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3", len(rs))
	}
	modes := []string{"gang", "batch", "fractional"}
	for i, r := range rs {
		if r.Mode != modes[i] {
			t.Fatalf("mode[%d] = %q, want %q", i, r.Mode, modes[i])
		}
		if r.Jobs != len(cfg.Trace) {
			t.Errorf("%s saw %d jobs, want %d", r.Mode, r.Jobs, len(cfg.Trace))
		}
		if r.Finished == 0 {
			t.Errorf("%s finished nothing", r.Mode)
		}
		if r.MeanSlowdown < 1 && r.Finished > 0 {
			t.Errorf("%s mean bounded slowdown %v < 1", r.Mode, r.MeanSlowdown)
		}
		if r.Utilization <= 0 || r.Utilization > 1.5 {
			t.Errorf("%s utilization %v implausible", r.Mode, r.Utilization)
		}
	}
	if rs[2].Log.Count(VerbQueue) != 0 || rs[2].Log.Count(VerbPrune) != 0 {
		t.Error("fractional mode queued jobs; it must admit immediately")
	}
	grid := GridTable(rs).String()
	for _, mode := range modes {
		if !strings.Contains(grid, mode) {
			t.Errorf("grid lacks %s row:\n%s", mode, grid)
		}
	}
	stats := StatsTable(rs).String()
	if !strings.Contains(stats, "backfill") || !strings.Contains(stats, "compact") {
		t.Errorf("stats table lacks decision rows:\n%s", stats)
	}
	// The whole showdown is deterministic.
	rs2, err := Showdown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if GridTable(rs).String() != GridTable(rs2).String() {
		t.Fatal("showdown grid not deterministic")
	}
	for i := range rs {
		if !reflect.DeepEqual(rs[i].Log.Lines(), rs2[i].Log.Lines()) {
			t.Fatalf("%s decision log not deterministic", rs[i].Mode)
		}
	}
}

// TestConfigValidation covers the constructor's error paths.
func TestConfigValidation(t *testing.T) {
	if _, err := New(DefaultConfig(8)); err == nil {
		t.Error("empty trace accepted")
	}
	cfg := DefaultConfig(8)
	cfg.Trace = []schedeval.TraceJob{{Arrive: 0, Size: 99, Kernel: schedeval.KernelBSP,
		Units: 1, Msgs: 1, MsgBytes: 64}}
	if _, err := New(cfg); err == nil {
		t.Error("oversized job accepted")
	}
}

// TestAdaptiveEstimateTightens pins the EWMA backfill estimator: it starts
// from the static slots-deep worst case, and once a kernel has completed,
// the observed stretch — near 1 for jobs running alone — replaces it, so
// the shadow estimate tightens toward the real response.
func TestAdaptiveEstimateTightens(t *testing.T) {
	var trace []schedeval.TraceJob
	for i := 0; i < 6; i++ {
		trace = append(trace, schedeval.TraceJob{
			Arrive: sim.Time(1 + i*60_000_000), Size: 4, Kernel: schedeval.KernelBSP,
			Units: 2, Msgs: 2, MsgBytes: 256, Compute: 2_000_000})
	}
	run := func(adaptive bool) *Daemon {
		cfg := DefaultConfig(8)
		cfg.Trace = trace
		cfg.AdaptiveEstimate = adaptive
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		if r := d.Result("gang"); r.Finished != len(trace) {
			t.Fatalf("finished %d of %d jobs", r.Finished, len(trace))
		}
		return d
	}
	d := run(true)
	s, ok := d.EstimatedStretch(schedeval.KernelBSP)
	if !ok {
		t.Fatal("no stretch observed after six completions")
	}
	static := float64(DefaultConfig(8).Slots)
	if s <= 0 || s >= static/2 {
		t.Fatalf("observed stretch %.3f did not tighten below the static %.0f", s, static)
	}
	if _, ok := d.EstimatedStretch(schedeval.KernelStencil); ok {
		t.Fatal("stretch reported for a kernel that never completed")
	}
	if _, ok := run(false).EstimatedStretch(schedeval.KernelBSP); ok {
		t.Fatal("stretch reported with the adaptive estimator off")
	}
}

// crashedChurn runs the gang daemon over the seeded churn trace with
// sampled fail-stop crashes armed.
func crashedChurn(t *testing.T, retryBudget int) (*Daemon, int) {
	t.Helper()
	trace := churnTrace(t, 12)
	var lastArrive sim.Time
	for _, tj := range trace {
		if tj.Arrive > lastArrive {
			lastArrive = tj.Arrive
		}
	}
	crashes, err := schedeval.GenCrashes(7, 8, 0.35, lastArrive)
	if err != nil {
		t.Fatal(err)
	}
	if len(crashes) == 0 {
		t.Fatal("crash sampler produced no crashes")
	}
	cfg := DefaultConfig(8)
	cfg.Trace = trace
	cfg.Crashes = crashes
	cfg.AdaptiveEstimate = true
	cfg.RetryBudget = retryBudget
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	return d, len(crashes)
}

// TestCrashRequeueRecovers is the tentpole acceptance check in test form:
// under mid-run node crashes the gang daemon evicts the dead nodes, shrinks
// its capacity view, and requeues the crash-killed jobs on the survivors —
// nothing is left censored (stuck in Loading on a dead node) at the
// horizon, and the placement cache stays coherent with the shrunken matrix.
func TestCrashRequeueRecovers(t *testing.T) {
	d, nCrashes := crashedChurn(t, 0)
	r := d.Result("gang")
	if r.NodesLost != nCrashes {
		t.Fatalf("NodesLost = %d, want %d", r.NodesLost, nCrashes)
	}
	if got := d.Cluster().Master().LiveNodes(); got != 8-nCrashes {
		t.Fatalf("LiveNodes = %d, want %d", got, 8-nCrashes)
	}
	if r.Requeues == 0 || r.RequeuedJobs == 0 {
		t.Fatalf("crashes killed jobs but requeues=%d requeued_jobs=%d", r.Requeues, r.RequeuedJobs)
	}
	if r.Censored != 0 {
		t.Fatalf("%d jobs censored at the horizon — stuck instead of requeued:\n%s", r.Censored, d.Log())
	}
	if r.MeanRequeue <= 0 {
		t.Fatalf("MeanRequeue = %v with %d requeues", r.MeanRequeue, r.Requeues)
	}
	if r.CapacityLost <= 0 || r.Goodput <= 0 {
		t.Fatalf("availability metrics not computed: cap_lost=%v goodput=%v", r.CapacityLost, r.Goodput)
	}
	if got := r.Log.Count(VerbRequeue); got != r.Requeues {
		t.Fatalf("log has %d requeue lines, result says %d", got, r.Requeues)
	}
	if got := r.Log.Count(VerbCacheBad); got != 0 {
		t.Fatalf("%d cache coherence violations:\n%s", got, r.Log)
	}
	if bad := d.Cache().Audit(d.Cluster().Master().Matrix()); len(bad) != 0 {
		t.Fatalf("cache audit: %v", bad)
	}
	if r.Finished+r.Killed+r.Evicted+r.Censored != r.Jobs {
		t.Fatalf("fates don't partition: %d+%d+%d+%d != %d",
			r.Finished, r.Killed, r.Evicted, r.Censored, r.Jobs)
	}
}

// TestCrashRetryBudgetExhausted pins the gaveup path: with a zero retry
// budget (RetryBudget < 0) every crash-killed job is abandoned with
// reason=budget instead of requeued.
func TestCrashRetryBudgetExhausted(t *testing.T) {
	d, _ := crashedChurn(t, -1)
	r := d.Result("gang")
	if r.Requeues != 0 {
		t.Fatalf("zero budget but %d requeues", r.Requeues)
	}
	if r.GaveUp == 0 {
		t.Fatal("zero budget and crash kills, but no job gave up")
	}
	if !strings.Contains(r.Log.String(), "reason=budget") {
		t.Fatalf("gaveup lines lack reason=budget:\n%s", r.Log)
	}
	if r.Censored != 0 {
		t.Fatalf("%d jobs censored — gaveup path left work stuck", r.Censored)
	}
}

// repairedChurn runs the gang daemon over the seeded churn trace with
// sampled crashes and repairs armed — the configuration of the
// churn_repair golden, down to the seeds.
func repairedChurn(t *testing.T) (*Daemon, []schedeval.Crash, []schedeval.Repair) {
	t.Helper()
	trace := churnTrace(t, 12)
	var lastArrive sim.Time
	for _, tj := range trace {
		if tj.Arrive > lastArrive {
			lastArrive = tj.Arrive
		}
	}
	crashes, err := schedeval.GenCrashes(7, 8, 0.35, lastArrive)
	if err != nil {
		t.Fatal(err)
	}
	repairs, err := schedeval.GenRepairs(13, crashes, 0.75, lastArrive/4)
	if err != nil {
		t.Fatal(err)
	}
	if len(crashes) == 0 || len(repairs) == 0 {
		t.Fatalf("samplers produced %d crashes, %d repairs", len(crashes), len(repairs))
	}
	cfg := DefaultConfig(8)
	cfg.Trace = trace
	cfg.Crashes = crashes
	cfg.Repairs = repairs
	cfg.AdaptiveEstimate = true
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	return d, crashes, repairs
}

// TestRepairRejoinRestoresDaemonCapacity is the repair tentpole in test
// form: repaired nodes rejoin the gang, the placement cache re-expands
// over the revived columns without a single coherence violation, the
// availability metrics grow their repair half, and — because arming
// repairs arms the heartbeat — every crash is detected strictly before
// its repair lands, not outed by the rejoin request.
func TestRepairRejoinRestoresDaemonCapacity(t *testing.T) {
	d, crashes, repairs := repairedChurn(t)
	r := d.Result("gang")
	if r.Repairs != len(repairs) || r.NodesRepaired != len(repairs) {
		t.Fatalf("Repairs=%d NodesRepaired=%d, want %d armed and admitted", r.Repairs, r.NodesRepaired, len(repairs))
	}
	wantLive := 8 - len(crashes) + len(repairs)
	if got := d.Cluster().Master().LiveNodes(); got != wantLive {
		t.Fatalf("LiveNodes = %d at the horizon, want %d", got, wantLive)
	}
	if got := r.Log.Count(VerbNodeRepair); got != len(repairs) {
		t.Fatalf("log has %d node-repair lines, want %d:\n%s", got, len(repairs), r.Log)
	}
	if r.CapacityRepaired <= 0 || r.CapacityRepaired > 1 {
		t.Fatalf("CapacityRepaired = %v outside (0,1]", r.CapacityRepaired)
	}
	if r.PostRepairGoodput <= 0 {
		t.Fatalf("PostRepairGoodput = %v, want positive", r.PostRepairGoodput)
	}
	if r.Censored != 0 {
		t.Fatalf("%d jobs censored at the horizon:\n%s", r.Censored, d.Log())
	}
	if got := r.Log.Count(VerbCacheBad); got != 0 {
		t.Fatalf("%d cache coherence violations across rejoins:\n%s", got, r.Log)
	}
	if bad := d.Cache().Audit(d.Cluster().Master().Matrix()); len(bad) != 0 {
		t.Fatalf("cache audit after rejoins: %v", bad)
	}
	// Heartbeat detection: the node-dead line for every repaired node must
	// carry a timestamp before that node's repair directive. A detection at
	// or after the repair instant means the rejoin request was the detector
	// — the regime the heartbeat exists to eliminate.
	repairAt := make(map[int]sim.Time)
	for _, rp := range repairs {
		repairAt[rp.Node] = rp.At
	}
	deadAt := make(map[int]sim.Time)
	for _, line := range r.Log.Lines() {
		var ts sim.Time
		var node int
		if n, _ := fmt.Sscanf(line, "t=%d node-dead node=%d", &ts, &node); n == 2 {
			if _, seen := deadAt[node]; !seen {
				deadAt[node] = ts
			}
		}
	}
	for node, at := range repairAt {
		det, ok := deadAt[node]
		if !ok {
			t.Fatalf("repaired node %d has no node-dead line:\n%s", node, r.Log)
		}
		if det >= at {
			t.Fatalf("node %d detected at %d, repair at %d: detection must precede the repair", node, det, at)
		}
	}
}
