package schedd

import (
	"fmt"

	"gangfm/internal/gang"
)

// NodeInfo is the cached aggregate for one node (one matrix column): the
// counters an admission decision needs, maintained incrementally on
// placement events so queries never rescan the slot table — the
// kubernetes schedulercache.NodeInfo pattern applied to a gang matrix.
type NodeInfo struct {
	// Free is the number of unoccupied slots in the node's column.
	Free int
	// Resident is the number of jobs with a process on the node.
	Resident int
}

// Cache aggregates per-node occupancy for the daemon. It is written only
// by the daemon's own placement/removal events and reconciled against the
// matrix (the source of truth) by Audit — exactly the event-sourced
// cache-vs-store split the scheduler pattern prescribes. Slot-to-slot
// migration (Unify) never changes a job's columns, so compaction requires
// no cache updates at all.
type Cache struct {
	slots     int
	nodes     []NodeInfo
	freeNodes int    // count of live nodes with Free > 0, the admission precheck
	dead      []bool // evicted nodes: Free pinned to 0, capacity gone for good
}

// NewCache returns an empty cache for a nodes-column, slots-deep matrix.
func NewCache(nodes, slots int) *Cache {
	c := &Cache{slots: slots, nodes: make([]NodeInfo, nodes), freeNodes: nodes,
		dead: make([]bool, nodes)}
	for i := range c.nodes {
		c.nodes[i].Free = slots
	}
	return c
}

// Node returns one node's cached aggregates.
func (c *Cache) Node(i int) NodeInfo {
	if i < 0 || i >= len(c.nodes) {
		return NodeInfo{}
	}
	return c.nodes[i]
}

// FreeNodes returns how many nodes have at least one free slot — the
// O(1) necessary condition for admitting a job of any size up to that
// count (a placement needs that many distinct columns).
func (c *Cache) FreeNodes() int { return c.freeNodes }

// Place records a committed placement.
func (c *Cache) Place(p gang.Placement) {
	for _, col := range p.Cols {
		n := &c.nodes[col]
		n.Free--
		n.Resident++
		if n.Free == 0 {
			c.freeNodes--
		}
	}
}

// Remove records a departure (completion, kill, or eviction). Slots on a
// dead node do not return to the free pool — that capacity died with it.
func (c *Cache) Remove(p gang.Placement) {
	for _, col := range p.Cols {
		n := &c.nodes[col]
		if c.dead[col] {
			n.Resident--
			continue
		}
		if n.Free == 0 {
			c.freeNodes++
		}
		n.Free++
		n.Resident--
	}
}

// KillNode marks a node evicted: its free slots leave the capacity pool
// immediately, so FreeNodes answers with live capacity from this point on.
// Resident counts drain as the spanning jobs are killed and Removed.
func (c *Cache) KillNode(i int) {
	if i < 0 || i >= len(c.nodes) || c.dead[i] {
		return
	}
	c.dead[i] = true
	n := &c.nodes[i]
	if n.Free > 0 {
		c.freeNodes--
	}
	n.Free = 0
}

// ReviveNode returns a repaired node's capacity to the pool. The fresh
// incarnation's column was drained before eviction completed (every
// spanning job was killed and Removed), so its full slot depth comes
// back free; the subtraction keeps the invariant honest even if a
// Remove is still owed.
func (c *Cache) ReviveNode(i int) {
	if i < 0 || i >= len(c.nodes) || !c.dead[i] {
		return
	}
	c.dead[i] = false
	n := &c.nodes[i]
	n.Free = c.slots - n.Resident
	if n.Free > 0 {
		c.freeNodes++
	}
}

// Audit reconciles the cache against the matrix and returns one message
// per divergence (nil when coherent). The matrix's own per-column load
// cache is itself audited against a full recount by gang.Matrix.Audit,
// so agreement here chains all the way to the raw slot table.
func (c *Cache) Audit(m *gang.Matrix) []string {
	var bad []string
	if m.Cols() != len(c.nodes) {
		return []string{fmt.Sprintf("cache tracks %d nodes, matrix has %d", len(c.nodes), m.Cols())}
	}
	free := 0
	for i := range c.nodes {
		load := m.ColLoad(i)
		if got := c.nodes[i].Resident; got != load {
			bad = append(bad, fmt.Sprintf("node %d cache resident=%d, matrix load=%d", i, got, load))
		}
		if c.dead[i] != m.ColDead(i) {
			bad = append(bad, fmt.Sprintf("node %d cache dead=%t, matrix dead=%t", i, c.dead[i], m.ColDead(i)))
		}
		wantFree := c.slots - load
		if c.dead[i] {
			wantFree = 0 // a dead column holds no usable capacity
		}
		if got := c.nodes[i].Free; got != wantFree {
			bad = append(bad, fmt.Sprintf("node %d cache free=%d, matrix says %d", i, got, wantFree))
		}
		if c.nodes[i].Free > 0 {
			free++
		}
	}
	if free != c.freeNodes {
		bad = append(bad, fmt.Sprintf("cache freeNodes=%d, recount says %d", c.freeNodes, free))
	}
	return bad
}
