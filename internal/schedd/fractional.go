package schedd

import (
	"fmt"
	"sort"

	"gangfm/internal/metrics"
	"gangfm/internal/schedeval"
	"gangfm/internal/sim"
)

// Fractional runs the dynamic fractional resource-sharing mode of the
// Casanova–Stillwell–Vivien comparison, analytically: every job is
// admitted immediately onto its size's least-loaded nodes and all
// co-resident jobs processor-share each node. There is no DES under it —
// between churn events the model advances each job's remaining (nominal)
// work at a closed-form rate, so the whole run costs O(events · jobs).
//
// The rate model is honest about what this repo simulates elsewhere: with
// k co-resident jobs on a job's most-loaded node, its compute stretches
// by k (CPU processor sharing) and its communication by k² (the NIC
// buffer is split k ways, the paper's partitioned-credit argument — the
// very overhead gang scheduling's switched credits avoid). A job whose
// communication fraction is cf therefore progresses at
//
//	rate(k) = 1 / ((1-cf)·k + cf·k²)
//
// so fractional sharing looks great for compute-bound mixes and decays
// for communication-bound ones, which is exactly the trade the showdown
// is meant to expose.
func Fractional(cfg Config) *Result {
	type ftask struct {
		idx  int
		tj   schedeval.TraceJob
		size int
		cols []int
		rem  float64 // remaining nominal work, cycles
		cf   float64 // communication fraction of Nominal

		active   bool
		finished bool
		killed   bool
		resized  bool
		dlMiss   bool
		arrive   sim.Time
		done     float64
		retries  int
		gaveup   bool
	}
	tasks := make([]*ftask, len(cfg.Trace))
	var lastArrive sim.Time
	for i := range cfg.Trace {
		tj := cfg.Trace[i]
		tasks[i] = &ftask{idx: i, tj: tj, size: tj.Size, arrive: tj.Arrive}
		if tj.Arrive > lastArrive {
			lastArrive = tj.Arrive
		}
	}
	quantum := cfg.Quantum
	if quantum == 0 {
		quantum = 4_000_000
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = lastArrive + 10_000*quantum
	}

	// The discrete churn commands, time-ordered (ties: machine events
	// first — and a crash before a repair of the same instant — then
	// trace order, then arrive < kill < resize).
	type fevent struct {
		t    sim.Time
		kind int // 0 arrive, 1 kill, 2 resize, 3 node crash, 4 node repair
		task *ftask
		node int
	}
	var events []fevent
	for _, t := range tasks {
		events = append(events, fevent{t: t.tj.Arrive, kind: 0, task: t})
		if t.tj.Kill != 0 {
			events = append(events, fevent{t: t.tj.Kill, kind: 1, task: t})
		}
		if t.tj.ResizeTo != 0 {
			events = append(events, fevent{t: t.tj.ResizeAt, kind: 2, task: t})
		}
	}
	for _, cr := range cfg.Crashes {
		events = append(events, fevent{t: cr.At, kind: 3, task: nil, node: cr.Node})
	}
	for _, rp := range cfg.Repairs {
		events = append(events, fevent{t: rp.At, kind: 4, task: nil, node: rp.Node})
	}
	eventIdx := func(e fevent) int {
		if e.task == nil {
			return -1 // machine events order before any job's
		}
		return e.task.idx
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		if ai, bi := eventIdx(events[a]), eventIdx(events[b]); ai != bi {
			return ai < bi
		}
		return events[a].kind < events[b].kind
	})

	log := NewLog()
	load := make([]int, cfg.Nodes) // co-resident jobs per node

	// Failure state: dead nodes leave the placement pool until (and
	// unless) a repair brings them back. Each node's downtime is a list of
	// [from, to) windows, to < 0 while the node is still down — the same
	// shape the masterd keeps, so both sides of the showdown account for
	// availability identically.
	type fwin struct{ from, to float64 }
	deadNode := make([]bool, cfg.Nodes)
	wins := make(map[int][]fwin)
	live := cfg.Nodes
	budget := cfg.RetryBudget
	if budget == 0 {
		budget = 3
	} else if budget < 0 {
		budget = 0
	}

	// place puts a task on its size's least-loaded live nodes (ties:
	// lowest node id — deterministic) and starts its work clock.
	nodeOrder := make([]int, 0, cfg.Nodes)
	place := func(t *ftask, now float64) {
		nodeOrder = nodeOrder[:0]
		for i := 0; i < cfg.Nodes; i++ {
			if !deadNode[i] {
				nodeOrder = append(nodeOrder, i)
			}
		}
		sort.SliceStable(nodeOrder, func(a, b int) bool {
			return load[nodeOrder[a]] < load[nodeOrder[b]]
		})
		t.cols = append([]int(nil), nodeOrder[:t.size]...)
		sort.Ints(t.cols)
		for _, c := range t.cols {
			load[c]++
		}
		tj := t.tj
		tj.Size = t.size
		wall, comm := tj.NominalParts()
		nominal := tj.Nominal()
		t.rem = float64(nominal)
		t.cf = 0
		if nominal > 0 {
			t.cf = float64(comm) / float64(wall+comm+100_000)
		}
		t.active = true
		log.Add(sim.Time(now), VerbPlace, "job=%d size=%d col0=%d", t.idx, t.size, t.cols[0])
	}
	unplace := func(t *ftask) {
		for _, c := range t.cols {
			load[c]--
		}
		t.cols = nil
		t.active = false
	}
	rate := func(t *ftask) float64 {
		k := 1
		for _, c := range t.cols {
			if load[c] > k {
				k = load[c]
			}
		}
		fk := float64(k)
		return 1 / ((1-t.cf)*fk + t.cf*fk*fk)
	}

	// advanceTo drains analytic completions up to the target time, then
	// advances every survivor's remaining work to the target.
	now := float64(0)
	var advanceTo func(target float64)
	advanceTo = func(target float64) {
		for {
			// Earliest completion at or before the target; ties keep the
			// lowest trace index (scan order), for determinism.
			var next *ftask
			nextAt := target
			for _, t := range tasks {
				if !t.active {
					continue
				}
				if at := now + t.rem/rate(t); at <= nextAt && (next == nil || at < nextAt) {
					next, nextAt = t, at
				}
			}
			if next == nil {
				now = target
				return
			}
			// Advance everyone to the completion instant, retire the
			// finisher, recompute rates (loads changed), repeat.
			dt := nextAt - now
			for _, t := range tasks {
				if t.active {
					t.rem -= dt * rate(t)
				}
			}
			now = nextAt
			next.rem = 0
			next.finished = true
			next.done = now
			unplace(next)
			if next.tj.Deadline != 0 && now > float64(next.tj.Deadline) {
				next.dlMiss = true
				log.Add(sim.Time(now), VerbDone, "job=%d deadline_miss=true", next.idx)
			} else {
				log.Add(sim.Time(now), VerbDone, "job=%d", next.idx)
			}
		}
	}

	// giveUp retires a task the model abandons, mirroring the daemon's
	// explicit gaveup reporting.
	giveUp := func(t *ftask, at sim.Time, detail string) {
		t.gaveup = true
		t.done = float64(at)
		log.Add(at, VerbGaveup, "job=%d %s", t.idx, detail)
	}

	for _, ev := range events {
		if sim.Time(ev.t) > horizon {
			break
		}
		advanceTo(float64(ev.t))
		t := ev.task
		switch ev.kind {
		case 0:
			log.Add(ev.t, VerbSubmit, "job=%d size=%d", t.idx, t.size)
			if t.size > live {
				giveUp(t, ev.t, fmt.Sprintf("reason=capacity size=%d live=%d", t.size, live))
				break
			}
			place(t, float64(ev.t))
		case 1:
			if t.finished || t.killed || t.gaveup {
				log.Add(ev.t, VerbKillLate, "job=%d", t.idx)
				break
			}
			unplace(t)
			t.killed = true
			t.done = float64(ev.t)
			log.Add(ev.t, VerbKill, "job=%d", t.idx)
		case 2:
			if t.finished || t.killed || t.gaveup {
				log.Add(ev.t, VerbResizeLate, "job=%d", t.idx)
				break
			}
			// Restart at the new size, like the gang daemon's rigid
			// incarnations: remaining work resets to the new nominal.
			unplace(t)
			t.size = t.tj.ResizeTo
			t.resized = true
			log.Add(ev.t, VerbResize, "job=%d to=%d", t.idx, t.size)
			if t.size > live {
				giveUp(t, ev.t, fmt.Sprintf("reason=capacity size=%d live=%d", t.size, live))
				break
			}
			place(t, float64(ev.t))
		case 3:
			if deadNode[ev.node] {
				break
			}
			deadNode[ev.node] = true
			wins[ev.node] = append(wins[ev.node], fwin{from: float64(ev.t), to: -1})
			live--
			log.Add(ev.t, VerbNodeDead, "node=%d live=%d", ev.node, live)
			// Fractional sharing pays realistic failure costs too: jobs on
			// the dead node lose their work and restart on the survivors
			// (the PS pool admits immediately, so there is no backoff gap),
			// under the same retry budget as the gang daemon.
			for _, ft := range tasks {
				if !ft.active {
					continue
				}
				hit := false
				for _, c := range ft.cols {
					if c == ev.node {
						hit = true
						break
					}
				}
				if !hit {
					continue
				}
				unplace(ft)
				log.Add(ev.t, VerbEvicted, "job=%d", ft.idx)
				switch {
				case ft.retries >= budget:
					giveUp(ft, ev.t, fmt.Sprintf("reason=budget retries=%d", ft.retries))
				case ft.size > live:
					giveUp(ft, ev.t, fmt.Sprintf("reason=capacity size=%d live=%d", ft.size, live))
				default:
					ft.retries++
					log.Add(ev.t, VerbRequeue, "job=%d retry=%d delay=0", ft.idx, ft.retries)
					place(ft, float64(ev.t))
				}
			}
		case 4:
			if !deadNode[ev.node] {
				break
			}
			// A repaired node returns to the placement pool: new arrivals
			// and crash-restarts spread onto it from now on (jobs in
			// flight keep their columns — the PS pool never migrates).
			// Jobs already given up stay given up, like the daemon's.
			deadNode[ev.node] = false
			w := wins[ev.node]
			w[len(w)-1].to = float64(ev.t)
			live++
			log.Add(ev.t, VerbNodeRepair, "node=%d live=%d", ev.node, live)
		}
	}
	advanceTo(float64(horizon))

	r := &Result{Mode: "fractional", Jobs: len(tasks), Log: log}
	bound := float64(cfg.SlowdownBound)
	if bound <= 0 {
		bound = 1
	}
	firstRejoin := 0.0
	anyRejoin := false
	for n := 0; n < cfg.Nodes; n++ {
		for _, w := range wins[n] {
			if w.to >= 0 && (!anyRejoin || w.to < firstRejoin) {
				firstRejoin, anyRejoin = w.to, true
			}
		}
	}
	var responses, slowdowns []float64
	var usefulWork, postWork, lastEnd float64
	firstArrive := float64(tasks[0].arrive)
	censored := 0
	for _, t := range tasks {
		if float64(t.arrive) < firstArrive {
			firstArrive = float64(t.arrive)
		}
		switch {
		case t.finished:
			r.Finished++
			resp := t.done - float64(t.arrive)
			responses = append(responses, resp)
			tj := t.tj
			tj.Size = t.size
			nominal := float64(tj.Nominal())
			slowdowns = append(slowdowns, metrics.BoundedSlowdown(resp, nominal, bound))
			usefulWork += float64(t.size) * nominal
			if anyRejoin && t.done >= firstRejoin {
				postWork += float64(t.size) * nominal
			}
			if t.done > lastEnd {
				lastEnd = t.done
			}
		case t.killed:
			r.Killed++
			if t.done > lastEnd {
				lastEnd = t.done
			}
		case t.gaveup:
			r.Evicted++
			r.GaveUp++
			if t.done > lastEnd {
				lastEnd = t.done
			}
		default:
			r.Censored++
			censored++
			if t.tj.Deadline != 0 && horizon > t.tj.Deadline {
				t.dlMiss = true
			}
			lastEnd = float64(horizon)
		}
		if t.resized {
			r.Resized++
		}
		if t.dlMiss {
			r.DlMiss++
		}
		if t.retries > 0 {
			r.RequeuedJobs++
			r.Requeues += t.retries
		}
	}
	downNow := 0
	for n := 0; n < cfg.Nodes; n++ {
		if deadNode[n] {
			downNow++
		}
	}
	log.Add(horizon, VerbHorizon, "censored=%d cache_ok=true nodes_evicted=%d", censored, downNow)
	r.MeanResponse = metrics.Mean(responses)
	r.MeanSlowdown = metrics.Mean(slowdowns)
	r.MaxSlowdown = metrics.Max(slowdowns)
	span := lastEnd - firstArrive
	r.Repairs = len(cfg.Repairs)
	var lostCap, lostNoRepair float64
	for n := 0; n < cfg.Nodes; n++ {
		ws := wins[n]
		if len(ws) == 0 {
			continue
		}
		r.NodesLost++
		if first := ws[0].from; first < lastEnd {
			lostNoRepair += lastEnd - first
		}
		rejoined := false
		for _, w := range ws {
			if w.to >= 0 {
				rejoined = true
			}
			lo, hi := w.from, w.to
			if hi < 0 || hi > lastEnd {
				hi = lastEnd
			}
			if hi > lo {
				lostCap += hi - lo
			}
		}
		if rejoined {
			r.NodesRepaired++
		}
	}
	if span > 0 {
		total := float64(cfg.Nodes) * span
		r.Utilization = usefulWork / total
		r.CapacityLost = lostCap / total
		if surviving := total - lostCap; surviving > 0 {
			r.Goodput = usefulWork / surviving
		}
	}
	if lostNoRepair > 0 {
		r.CapacityRepaired = (lostNoRepair - lostCap) / lostNoRepair
	}
	if anyRejoin && lastEnd > firstRejoin {
		postTotal := float64(cfg.Nodes) * (lastEnd - firstRejoin)
		for n := 0; n < cfg.Nodes; n++ {
			for _, w := range wins[n] {
				lo, hi := w.from, w.to
				if hi < 0 || hi > lastEnd {
					hi = lastEnd
				}
				if lo < firstRejoin {
					lo = firstRejoin
				}
				if hi > lo {
					postTotal -= hi - lo
				}
			}
		}
		if postTotal > 0 {
			r.PostRepairGoodput = postWork / postTotal
		}
	}
	return r
}
