package gang

import "gangfm/internal/myrinet"

// A Policy decides where a job lands in the gang matrix. The columns a
// policy picks become the job's nodes for its whole lifetime (processes
// never migrate); the row is only the time slot, so row moves are cheap
// and Unify exploits that. Policies are stateless values: the same
// (matrix, size) input always yields the same proposal, which keeps
// trace-driven evaluation runs deterministic.
type Policy interface {
	// Name identifies the policy in tables and CLI flags.
	Name() string
	// Propose picks the row and columns for a job of the given size.
	// Returning row == m.Rows() requests a fresh row; Matrix.Place
	// enforces the maxRows bound and commits the proposal.
	Propose(m *Matrix, size int) (row int, cols []int)
	// UnifyOnExit reports whether Remove should consolidate rows after a
	// departure (slot unification: surviving jobs migrate into earlier
	// rows so the rotation visits fewer slots).
	UnifyOnExit() bool
}

// Buddy is the DHC (Distributed Hierarchical Control) scheme of Feitelson
// & Rudolph used by ParPar: a job of size s goes to the least-loaded
// aligned block of 2^ceil(log2 s) columns, occupying the leftmost s cells
// of that block in the first row where they are all free (paper §2.1).
type Buddy struct{}

// Name returns "buddy".
func (Buddy) Name() string { return "buddy" }

// UnifyOnExit returns false: DHC relies on block alignment, not packing.
func (Buddy) UnifyOnExit() bool { return false }

// Propose implements the two DHC steps. Blocks that lost columns to node
// eviction compete only if enough live columns survive; a job then takes
// the leftmost live cells of the block. When no aligned block can hold the
// job (the shrink broke every buddy), alignment is abandoned and the job
// takes the machine's lowest live columns — degraded-mode placement beats
// wedging the queue.
func (Buddy) Propose(m *Matrix, size int) (int, []int) {
	// Step 1: pick the least-loaded aligned block of the buddy size.
	width := nextPow2(size)
	if width > m.cols {
		width = m.cols
	}
	bestStart, bestLoad := -1, -1
	for start := 0; start+width <= m.cols; start += width {
		liveIn := 0
		for c := start; c < start+width; c++ {
			if !m.dead[c] {
				liveIn++
			}
		}
		if liveIn < size {
			continue
		}
		load := m.blockLoad(start, width)
		if bestStart < 0 || load < bestLoad {
			bestStart, bestLoad = start, load
		}
	}
	// Step 2: the leftmost `size` live columns of the chosen block, in the
	// first row where they are all free.
	var cols []int
	if bestStart < 0 {
		cols = m.liveRange(size)
	} else {
		cols = make([]int, 0, size)
		for c := bestStart; len(cols) < size; c++ {
			if !m.dead[c] {
				cols = append(cols, c)
			}
		}
	}
	for r := range m.rows {
		if m.freeIn(r, cols) {
			return r, cols
		}
	}
	return len(m.rows), cols
}

// FirstFit scans rows in slot order and takes the leftmost contiguous run
// of free columns that fits, opening a new row only when no row has one.
// It packs greedily with no alignment, trading fragmentation resistance
// for simplicity — the classic baseline of the gang-packing literature.
type FirstFit struct{}

// Name returns "first-fit".
func (FirstFit) Name() string { return "first-fit" }

// UnifyOnExit returns false.
func (FirstFit) UnifyOnExit() bool { return false }

// Propose returns the first row holding a wide-enough free run. Rows whose
// cached free-cell count cannot cover the job are skipped without a scan.
func (FirstFit) Propose(m *Matrix, size int) (int, []int) {
	for r := range m.rows {
		if m.RowFree(r) < size {
			continue
		}
		if start := firstRun(m.rows[r], size); start >= 0 {
			return r, colRange(start, size)
		}
	}
	return len(m.rows), m.liveRange(size)
}

// BestFit places each job in the tightest free run anywhere in the matrix
// (the run whose leftover is smallest; ties go to the earliest row, then
// the leftmost run) and unifies slots when a job exits: survivors whose
// column set is free in an earlier row migrate down, so half-empty rows
// merge and the rotation stops visiting dead time slots.
type BestFit struct{}

// Name returns "best-fit".
func (BestFit) Name() string { return "best-fit" }

// UnifyOnExit returns true: departures trigger slot unification.
func (BestFit) UnifyOnExit() bool { return true }

// Propose returns the tightest-fitting free run. Rows whose cached
// free-cell count cannot cover the job are skipped without a scan.
func (BestFit) Propose(m *Matrix, size int) (int, []int) {
	bestRow, bestStart, bestLen := -1, -1, -1
	for r, row := range m.rows {
		if m.RowFree(r) < size {
			continue
		}
		for start := 0; start < len(row); {
			if row[start] != myrinet.NoJob {
				start++
				continue
			}
			end := start
			for end < len(row) && row[end] == myrinet.NoJob {
				end++
			}
			if run := end - start; run >= size && (bestLen < 0 || run < bestLen) {
				bestRow, bestStart, bestLen = r, start, run
			}
			start = end
		}
	}
	if bestRow >= 0 {
		return bestRow, colRange(bestStart, size)
	}
	return len(m.rows), m.liveRange(size)
}

// Policies returns every packing policy, in comparison-table order.
func Policies() []Policy { return []Policy{FirstFit{}, Buddy{}, BestFit{}} }

// PolicyByName resolves a CLI/trace policy name.
func PolicyByName(name string) (Policy, bool) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, true
		}
	}
	return nil, false
}

// firstRun returns the leftmost start of `size` consecutive free cells in
// the row, or -1.
func firstRun(row []myrinet.JobID, size int) int {
	run := 0
	for c, j := range row {
		if j != myrinet.NoJob {
			run = 0
			continue
		}
		run++
		if run == size {
			return c - size + 1
		}
	}
	return -1
}

// colRange returns [start, start+size).
func colRange(start, size int) []int {
	cols := make([]int, size)
	for i := range cols {
		cols[i] = start + i
	}
	return cols
}
