package gang

import (
	"testing"
	"testing/quick"

	"gangfm/internal/myrinet"
)

func TestPolicyByName(t *testing.T) {
	for _, want := range []string{"first-fit", "buddy", "best-fit"} {
		p, ok := PolicyByName(want)
		if !ok || p.Name() != want {
			t.Fatalf("PolicyByName(%q) = %v, %v", want, p, ok)
		}
	}
	if _, ok := PolicyByName("worst-fit"); ok {
		t.Fatal("unknown policy resolved")
	}
}

func TestFirstFitPacksLeftmost(t *testing.T) {
	m := NewMatrixPolicy(8, 0, FirstFit{})
	p1, _ := m.Place(1, 3)
	p2, err := m.Place(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// No buddy alignment: job 2 starts right after job 1.
	if p1.Cols[0] != 0 || p2.Cols[0] != 3 {
		t.Fatalf("first-fit placed at %v and %v", p1.Cols, p2.Cols)
	}
	if p2.Row != 0 {
		t.Fatalf("job 2 should share row 0, got %d", p2.Row)
	}
	// A job too wide for the remaining run opens a new row.
	p3, _ := m.Place(3, 2)
	if p3.Row != 1 || p3.Cols[0] != 0 {
		t.Fatalf("job 3 placed at row %d cols %v", p3.Row, p3.Cols)
	}
}

func TestBestFitPicksTightestRun(t *testing.T) {
	m := NewMatrixPolicy(8, 0, BestFit{})
	// Row 0: [A A . . . B B B] — a 2-wide hole between A and B... build it.
	m.Place(1, 2) // cols 0-1
	m.Place(2, 6) // cols 2-7 (tightest run is the 6-wide remainder)
	m.Place(3, 5) // row 1 cols 0-4
	if err := m.Remove(2); err != nil {
		t.Fatal(err)
	}
	// Free runs now: row 0 cols 2-7 (6 wide), row 1 cols 5-7 (3 wide).
	// A size-2 job must take the tighter row-1 run.
	p, err := m.Place(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Row != 1 || p.Cols[0] != 5 {
		t.Fatalf("best-fit placed at row %d cols %v, want row 1 col 5", p.Row, p.Cols)
	}
}

func TestBestFitUnifiesOnExit(t *testing.T) {
	m := NewMatrixPolicy(4, 0, BestFit{})
	m.Place(1, 3) // row 0 cols 0-2
	m.Place(2, 3) // row 1 cols 0-2
	m.Place(3, 3) // row 2 cols 0-2
	if m.Rows() != 3 {
		t.Fatalf("rows = %d", m.Rows())
	}
	// Removing the row-0 job must pull the survivors down a slot each.
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 {
		t.Fatalf("unification left %d rows, want 2", m.Rows())
	}
	p2, _ := m.Placement(2)
	p3, _ := m.Placement(3)
	if p2.Row != 0 || p3.Row != 1 {
		t.Fatalf("rows after unify: job2=%d job3=%d", p2.Row, p3.Row)
	}
	if bad := m.Audit(); len(bad) != 0 {
		t.Fatalf("audit after unify: %v", bad)
	}
}

func TestUnifyKeepsColumns(t *testing.T) {
	m := NewMatrixPolicy(4, 0, BestFit{})
	m.Place(1, 4) // row 0, all columns
	m.Place(2, 2) // row 1 cols 0-1
	m.Place(3, 2) // row 1 cols 2-3
	m.Remove(1)
	// Both survivors shared row 1; after unification one of them moves to
	// row 0 but must keep its exact column set (columns are nodes).
	p2, _ := m.Placement(2)
	p3, _ := m.Placement(3)
	if p2.Cols[0] != 0 || p3.Cols[0] != 2 {
		t.Fatalf("unify moved columns: job2=%v job3=%v", p2.Cols, p3.Cols)
	}
	if m.Rows() != 1 {
		t.Fatalf("rows = %d, want 1 (both jobs fit one slot)", m.Rows())
	}
}

// occupied counts non-empty cells across the whole matrix.
func occupied(m *Matrix) int {
	n := 0
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			if m.JobAt(r, c) != myrinet.NoJob {
				n++
			}
		}
	}
	return n
}

// TestMatrixChurnAllPolicies is the churn property: under a randomized,
// seeded alloc/free sequence every packing policy must keep Audit clean
// after every operation, never leak or duplicate a slot (occupied cells
// always equal the summed sizes of live jobs), and drain back to an empty
// matrix when every job is removed.
func TestMatrixChurnAllPolicies(t *testing.T) {
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			prop := func(ops []uint16) bool {
				m := NewMatrixPolicy(16, 8, pol)
				live := []myrinet.JobID{}
				sizes := map[myrinet.JobID]int{}
				next := myrinet.JobID(1)
				total := 0
				for _, op := range ops {
					if op%4 == 0 && len(live) > 0 {
						// Free a pseudo-random live job.
						i := int(op>>2) % len(live)
						id := live[i]
						if err := m.Remove(id); err != nil {
							return false
						}
						total -= sizes[id]
						delete(sizes, id)
						live = append(live[:i], live[i+1:]...)
					} else {
						size := int(op>>4)%16 + 1
						if _, err := m.Place(next, size); err == nil {
							live = append(live, next)
							sizes[next] = size
							total += size
						} // a full table is a legitimate rejection
						next++
					}
					if bad := m.Audit(); len(bad) != 0 {
						t.Logf("audit: %v", bad)
						return false
					}
					if occupied(m) != total {
						t.Logf("occupied %d != live total %d", occupied(m), total)
						return false
					}
				}
				for _, id := range live {
					if err := m.Remove(id); err != nil {
						return false
					}
				}
				return m.Rows() == 0 && m.Jobs() == 0 && occupied(m) == 0
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
