package gang

import (
	"testing"
	"testing/quick"

	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 16: 16}
	for n, want := range cases {
		if got := nextPow2(n); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPlaceSingleJob(t *testing.T) {
	m := NewMatrix(16, 0)
	p, err := m.Place(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Row != 0 || len(p.Cols) != 4 {
		t.Fatalf("placement %+v", p)
	}
	// Buddy alignment: a size-4 job starts on a multiple of 4.
	if p.Cols[0]%4 != 0 {
		t.Fatalf("block not aligned: %v", p.Cols)
	}
	if m.Rows() != 1 || m.Jobs() != 1 {
		t.Fatalf("rows=%d jobs=%d", m.Rows(), m.Jobs())
	}
}

func TestPlaceTwoJobsShareRow(t *testing.T) {
	// Two size-8 jobs fit side by side in one row of 16.
	m := NewMatrix(16, 0)
	p1, _ := m.Place(1, 8)
	p2, err := m.Place(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Row != 0 || p2.Row != 0 {
		t.Fatalf("jobs should share row 0: %d, %d", p1.Row, p2.Row)
	}
	if p1.Cols[0] == p2.Cols[0] {
		t.Fatal("jobs placed in the same block")
	}
	jobs := m.RowJobs(0)
	if len(jobs) != 2 {
		t.Fatalf("RowJobs = %v", jobs)
	}
}

func TestPlaceLeastLoadedBlock(t *testing.T) {
	// After loading the left half, a new job should land on the right.
	m := NewMatrix(16, 0)
	m.Place(1, 8) // left block, row 0
	m.Place(2, 8) // right block, row 0
	m.Place(3, 8) // row 1, either block
	p4, _ := m.Place(4, 4)
	// Job 3 made one 8-block heavier; job 4 (width 4) must land inside
	// the lighter half.
	p3, _ := m.Placement(3)
	if p4.Cols[0] >= p3.Cols[0] && p4.Cols[0] < p3.Cols[0]+8 {
		t.Fatalf("job 4 placed in the loaded block: job3 at %v, job4 at %v", p3.Cols, p4.Cols)
	}
}

func TestPlaceFullMachineJob(t *testing.T) {
	m := NewMatrix(16, 0)
	p, err := m.Place(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cols) != 16 {
		t.Fatal("full-machine job should take every column")
	}
	p2, err := m.Place(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Row != 1 {
		t.Fatalf("second full job in row %d, want 1", p2.Row)
	}
}

func TestPlaceNonPowerOfTwo(t *testing.T) {
	m := NewMatrix(16, 0)
	p, err := m.Place(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cols) != 5 {
		t.Fatalf("size-5 job got %d columns", len(p.Cols))
	}
	if p.Cols[0]%8 != 0 {
		t.Fatalf("size-5 job should align to its 8-wide buddy block: %v", p.Cols)
	}
}

func TestPlaceErrors(t *testing.T) {
	m := NewMatrix(8, 2)
	if _, err := m.Place(1, 0); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := m.Place(1, 9); err == nil {
		t.Error("oversized job should fail")
	}
	m.Place(1, 8)
	if _, err := m.Place(1, 4); err == nil {
		t.Error("duplicate job should fail")
	}
	m.Place(2, 8)
	if _, err := m.Place(3, 8); err == nil {
		t.Error("exceeding maxRows should fail")
	}
}

func TestRemoveAndTrim(t *testing.T) {
	m := NewMatrix(8, 0)
	m.Place(1, 8)
	m.Place(2, 8)
	if m.Rows() != 2 {
		t.Fatal("want 2 rows")
	}
	if err := m.Remove(2); err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 1 {
		t.Fatalf("trailing empty row not trimmed: %d rows", m.Rows())
	}
	if err := m.Remove(2); err == nil {
		t.Fatal("double remove should fail")
	}
	m.Remove(1)
	if m.Rows() != 0 || m.Jobs() != 0 {
		t.Fatal("matrix should be empty")
	}
}

func TestRotateRoundRobin(t *testing.T) {
	m := NewMatrix(4, 0)
	m.Place(1, 4)
	m.Place(2, 4)
	m.Place(3, 4)
	var seen []int
	for i := 0; i < 6; i++ {
		seen = append(seen, m.Rotate())
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("rotation %v, want %v", seen, want)
		}
	}
}

func TestRotateSkipsEmptiedRow(t *testing.T) {
	m := NewMatrix(4, 0)
	m.Place(1, 4)
	m.Place(2, 4)
	m.Place(3, 4)
	m.Rotate() // row 0
	m.Remove(2)
	if r := m.Rotate(); r != 2 {
		t.Fatalf("rotation after removing row-1 job went to %d, want 2", r)
	}
}

func TestRotateEmptyMatrix(t *testing.T) {
	m := NewMatrix(4, 0)
	if m.Rotate() != -1 {
		t.Fatal("empty matrix rotation should return -1")
	}
}

func TestJobAtBounds(t *testing.T) {
	m := NewMatrix(4, 0)
	m.Place(7, 2)
	if m.JobAt(0, 0) != 7 {
		t.Fatal("JobAt(0,0)")
	}
	if m.JobAt(5, 0) != myrinet.NoJob || m.JobAt(0, 9) != myrinet.NoJob || m.JobAt(-1, -1) != myrinet.NoJob {
		t.Fatal("out-of-bounds JobAt should return NoJob")
	}
}

// Property: after any sequence of placements (sizes 1..cols), no cell
// holds two jobs, every job's cells are within one row and within one
// aligned buddy block, and removals restore all cells.
func TestMatrixInvariantProperty(t *testing.T) {
	prop := func(sizes []uint8) bool {
		m := NewMatrix(16, 0)
		placed := make(map[myrinet.JobID]Placement)
		next := myrinet.JobID(1)
		for _, s := range sizes {
			size := int(s)%16 + 1
			p, err := m.Place(next, size)
			if err != nil {
				return false // unbounded rows: placement must succeed
			}
			placed[next] = p
			next++
		}
		// Cell consistency.
		counts := make(map[myrinet.JobID]int)
		for r := 0; r < m.Rows(); r++ {
			for c := 0; c < m.Cols(); c++ {
				if j := m.JobAt(r, c); j != myrinet.NoJob {
					counts[j]++
					if placed[j].Row != r {
						return false
					}
				}
			}
		}
		for j, p := range placed {
			if counts[j] != len(p.Cols) {
				return false
			}
			width := nextPow2(len(p.Cols))
			if width > 16 {
				width = 16
			}
			block := p.Cols[0] / width
			for _, c := range p.Cols {
				if c/width != block {
					return false // crossed a buddy boundary
				}
			}
		}
		// Remove everything.
		for j := range placed {
			if err := m.Remove(j); err != nil {
				return false
			}
		}
		return m.Rows() == 0 && m.Jobs() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAuditCleanAndCorrupted(t *testing.T) {
	m := NewMatrix(4, 0)
	if _, err := m.Place(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Place(2, 4); err != nil {
		t.Fatal(err)
	}
	if bad := m.Audit(); len(bad) != 0 {
		t.Fatalf("clean matrix audited dirty: %v", bad)
	}
	// Corrupt a cell behind the placement map's back: job 1 loses a cell to
	// an unplaced job.
	m.rows[0][0] = 99
	bad := m.Audit()
	if len(bad) == 0 {
		t.Fatal("corrupted matrix audited clean")
	}
}

// TestChurnQuickCheck drives every packing policy through seeded random
// submit/kill/compact churn — the online scheduler's operation mix — and
// after every mutation audits the full invariant set: no slot
// double-booking, placements consistent, and the incremental occupancy
// caches (colLoad/rowFree) agreeing with a recount. It also checks that
// Unify still compacts: a second pass immediately after one never moves
// anything further.
func TestChurnQuickCheck(t *testing.T) {
	for _, policy := range Policies() {
		policy := policy
		t.Run(policy.Name(), func(t *testing.T) {
			rng := sim.NewRand(0xC0FFEE)
			m := NewMatrixPolicy(8, 8, policy)
			live := []myrinet.JobID{}
			next := myrinet.JobID(1)
			audit := func(step int, op string) {
				t.Helper()
				if bad := m.Audit(); len(bad) != 0 {
					t.Fatalf("step %d (%s): %v", step, op, bad)
				}
			}
			for step := 0; step < 2000; step++ {
				switch {
				case len(live) == 0 || rng.Bool(0.5):
					size := 1 + rng.Intn(8)
					if _, err := m.Place(next, size); err != nil {
						// Slot table full is a legal outcome, never corruption.
						audit(step, "place-reject")
						continue
					}
					live = append(live, next)
					next++
					audit(step, "place")
				case rng.Bool(0.2):
					// Explicit compaction (the daemon's migration pass).
					m.Unify()
					audit(step, "unify")
					if again := m.Unify(); again != 0 {
						t.Fatalf("step %d: second Unify moved %d jobs — first pass did not compact", step, again)
					}
				default:
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					if err := m.Remove(id); err != nil {
						t.Fatalf("step %d: remove %d: %v", step, id, err)
					}
					audit(step, "remove")
				}
			}
			for _, id := range live {
				if err := m.Remove(id); err != nil {
					t.Fatal(err)
				}
			}
			if m.Rows() != 0 || m.Jobs() != 0 {
				t.Fatalf("drained matrix not empty: %d rows, %d jobs", m.Rows(), m.Jobs())
			}
		})
	}
}

func TestKillColumnShrinksCapacity(t *testing.T) {
	m := NewMatrix(8, 4)
	if _, err := m.Place(1, 4); err != nil {
		t.Fatal(err)
	}
	// Kill a free column: live capacity and the row-free cache both shrink.
	if err := m.KillColumn(6); err != nil {
		t.Fatal(err)
	}
	if m.LiveCols() != 7 || !m.ColDead(6) || m.ColDead(5) {
		t.Fatalf("live=%d dead(6)=%v dead(5)=%v", m.LiveCols(), m.ColDead(6), m.ColDead(5))
	}
	if got := m.RowFree(0); got != 3 {
		t.Fatalf("RowFree(0) = %d after killing a free column, want 3", got)
	}
	if m.JobAt(0, 6) != myrinet.NoJob {
		t.Fatalf("dead cell reads as job %d", m.JobAt(0, 6))
	}
	// The full-machine precheck now counts live columns, not physical ones.
	if _, err := m.Place(2, 8); err == nil {
		t.Fatal("size-8 job placed on a 7-live-column machine")
	}
	if bad := m.Audit(); bad != nil {
		t.Fatalf("audit after kill: %v", bad)
	}
}

func TestKillColumnUnderJob(t *testing.T) {
	m := NewMatrixPolicy(4, 4, FirstFit{})
	p, err := m.Place(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Kill a column a job occupies: the cell is tallied as dead-occupied
	// (the job still holds it) and the audit stays clean until the caller
	// kills the spanning job, as the masterd eviction path does.
	if err := m.KillColumn(2); err != nil {
		t.Fatal(err)
	}
	if bad := m.Audit(); bad != nil {
		t.Fatalf("audit between kill and job removal: %v", bad)
	}
	if m.JobAt(p.Row, 2) != 1 {
		t.Fatalf("occupied dead cell lost its job: %d", m.JobAt(p.Row, 2))
	}
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
	// The vacated dead cell must not return to free capacity.
	if m.Rows() != 0 {
		t.Fatalf("rows = %d after removing the only job, want 0 (trimmed)", m.Rows())
	}
	if _, err := m.Place(2, 4); err == nil {
		t.Fatal("size-4 job placed on a 3-live-column machine")
	}
	q, err := m.Place(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range q.Cols {
		if c == 2 {
			t.Fatalf("placement %v landed on dead column 2", q.Cols)
		}
	}
	if bad := m.Audit(); bad != nil {
		t.Fatalf("audit after re-place: %v", bad)
	}
}

func TestKillColumnErrors(t *testing.T) {
	m := NewMatrix(4, 0)
	if err := m.KillColumn(-1); err == nil {
		t.Fatal("killed column -1")
	}
	if err := m.KillColumn(4); err == nil {
		t.Fatal("killed column past the machine")
	}
	if err := m.KillColumn(1); err != nil {
		t.Fatal(err)
	}
	if err := m.KillColumn(1); err == nil {
		t.Fatal("killed column 1 twice")
	}
}

func TestPackersSkipDeadColumns(t *testing.T) {
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			m := NewMatrixPolicy(8, 8, pol)
			for _, c := range []int{1, 4} {
				if err := m.KillColumn(c); err != nil {
					t.Fatal(err)
				}
			}
			for id := myrinet.JobID(1); id <= 6; id++ {
				p, err := m.Place(id, 1+int(id)%4)
				if err != nil {
					t.Fatalf("job %d: %v", id, err)
				}
				for _, c := range p.Cols {
					if m.ColDead(c) {
						t.Fatalf("job %d placed on dead column %d (cols %v)", id, c, p.Cols)
					}
				}
			}
			if bad := m.Audit(); bad != nil {
				t.Fatalf("audit: %v", bad)
			}
		})
	}
}

// TestKillColumnChurnQuickCheck extends the churn property test with node
// kills: random place/remove/unify traffic interleaved with column kills
// (each followed by removing the spanning jobs, the masterd contract), with
// a full audit after every step.
func TestKillColumnChurnQuickCheck(t *testing.T) {
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			rng := sim.NewRand(23)
			m := NewMatrixPolicy(8, 6, pol)
			var live []myrinet.JobID
			next := myrinet.JobID(1)
			audit := func(step int, op string) {
				if bad := m.Audit(); bad != nil {
					t.Fatalf("step %d after %s: %v", step, op, bad)
				}
			}
			for step := 0; step < 1500; step++ {
				switch {
				case m.LiveCols() > 2 && rng.Bool(0.02):
					// Kill a live column, then kill its spanning jobs as the
					// eviction path does.
					c := rng.Intn(8)
					for m.ColDead(c) {
						c = (c + 1) % 8
					}
					if err := m.KillColumn(c); err != nil {
						t.Fatalf("step %d: kill column %d: %v", step, c, err)
					}
					for i := 0; i < len(live); {
						p, _ := m.Placement(live[i])
						spans := false
						for _, pc := range p.Cols {
							if pc == c {
								spans = true
								break
							}
						}
						if !spans {
							i++
							continue
						}
						if err := m.Remove(live[i]); err != nil {
							t.Fatalf("step %d: remove spanning job %d: %v", step, live[i], err)
						}
						live = append(live[:i], live[i+1:]...)
					}
					audit(step, "kill-column")
				case len(live) == 0 || rng.Bool(0.5):
					size := 1 + rng.Intn(m.LiveCols())
					if _, err := m.Place(next, size); err != nil {
						audit(step, "place-reject")
						continue
					}
					live = append(live, next)
					next++
					audit(step, "place")
				case rng.Bool(0.2):
					m.Unify()
					audit(step, "unify")
				default:
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					if err := m.Remove(id); err != nil {
						t.Fatalf("step %d: remove %d: %v", step, id, err)
					}
					audit(step, "remove")
				}
			}
			for _, id := range live {
				if err := m.Remove(id); err != nil {
					t.Fatal(err)
				}
			}
			if m.Jobs() != 0 {
				t.Fatalf("drained matrix still holds %d jobs", m.Jobs())
			}
		})
	}
}

func TestReviveColumnRestoresCapacity(t *testing.T) {
	m := NewMatrix(8, 4)
	if _, err := m.Place(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.KillColumn(6); err != nil {
		t.Fatal(err)
	}
	// Revive the drained column: live capacity, the row-free cache, and the
	// full-machine precheck must all see the regrown column immediately.
	if err := m.ReviveColumn(6); err != nil {
		t.Fatal(err)
	}
	if m.LiveCols() != 8 || m.ColDead(6) {
		t.Fatalf("live=%d dead(6)=%v after revive", m.LiveCols(), m.ColDead(6))
	}
	if got := m.RowFree(0); got != 4 {
		t.Fatalf("RowFree(0) = %d after revive, want 4", got)
	}
	if _, err := m.Place(2, 8); err != nil {
		t.Fatalf("size-8 job rejected on a fully revived machine: %v", err)
	}
	if bad := m.Audit(); bad != nil {
		t.Fatalf("audit after revive: %v", bad)
	}
}

func TestReviveColumnErrors(t *testing.T) {
	m := NewMatrixPolicy(4, 4, FirstFit{})
	if err := m.ReviveColumn(-1); err == nil {
		t.Fatal("revived column -1")
	}
	if err := m.ReviveColumn(4); err == nil {
		t.Fatal("revived column past the machine")
	}
	if err := m.ReviveColumn(1); err == nil {
		t.Fatal("revived a live column")
	}
	// A dead column still spanned by a job is not drained: revive must
	// refuse until the masterd kills the spanning job (the admit contract).
	if _, err := m.Place(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.KillColumn(2); err != nil {
		t.Fatal(err)
	}
	if err := m.ReviveColumn(2); err == nil {
		t.Fatal("revived a column with undrained cells")
	}
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := m.ReviveColumn(2); err != nil {
		t.Fatalf("revive after drain: %v", err)
	}
	if bad := m.Audit(); bad != nil {
		t.Fatalf("audit: %v", bad)
	}
}

// TestReviveColumnChurnQuickCheck closes the loop on the kill-column churn
// property test: random place/remove/unify traffic interleaved with column
// kills AND revivals of drained dead columns (the repair path's admit
// contract), with a full audit after every step. Capacity lost to a kill
// must be exactly recovered by the matching revive.
func TestReviveColumnChurnQuickCheck(t *testing.T) {
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			rng := sim.NewRand(29)
			m := NewMatrixPolicy(8, 6, pol)
			var live []myrinet.JobID
			next := myrinet.JobID(1)
			audit := func(step int, op string) {
				if bad := m.Audit(); bad != nil {
					t.Fatalf("step %d after %s: %v", step, op, bad)
				}
			}
			for step := 0; step < 1500; step++ {
				switch {
				case m.LiveCols() > 2 && rng.Bool(0.03):
					c := rng.Intn(8)
					for m.ColDead(c) {
						c = (c + 1) % 8
					}
					if err := m.KillColumn(c); err != nil {
						t.Fatalf("step %d: kill column %d: %v", step, c, err)
					}
					for i := 0; i < len(live); {
						p, _ := m.Placement(live[i])
						spans := false
						for _, pc := range p.Cols {
							if pc == c {
								spans = true
								break
							}
						}
						if !spans {
							i++
							continue
						}
						if err := m.Remove(live[i]); err != nil {
							t.Fatalf("step %d: remove spanning job %d: %v", step, live[i], err)
						}
						live = append(live[:i], live[i+1:]...)
					}
					audit(step, "kill-column")
				case m.LiveCols() < 8 && rng.Bool(0.06):
					// Revive one of the dead columns. Spanning jobs were
					// killed at eviction time, so every dead column here is
					// already drained and the revive must succeed.
					c := rng.Intn(8)
					for !m.ColDead(c) {
						c = (c + 1) % 8
					}
					if err := m.ReviveColumn(c); err != nil {
						t.Fatalf("step %d: revive column %d: %v", step, c, err)
					}
					audit(step, "revive-column")
				case len(live) == 0 || rng.Bool(0.5):
					size := 1 + rng.Intn(m.LiveCols())
					if _, err := m.Place(next, size); err != nil {
						audit(step, "place-reject")
						continue
					}
					live = append(live, next)
					next++
					audit(step, "place")
				case rng.Bool(0.2):
					m.Unify()
					audit(step, "unify")
				default:
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					if err := m.Remove(id); err != nil {
						t.Fatalf("step %d: remove %d: %v", step, id, err)
					}
					audit(step, "remove")
				}
			}
			for _, id := range live {
				if err := m.Remove(id); err != nil {
					t.Fatal(err)
				}
			}
			if m.Jobs() != 0 {
				t.Fatalf("drained matrix still holds %d jobs", m.Jobs())
			}
		})
	}
}
