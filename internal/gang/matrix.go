// Package gang implements the ParPar gang-scheduling matrix: columns are
// the machine's nodes, rows are time slots, and each cell holds (at most)
// one process of a parallel job. The masterd rotates among rows in
// round-robin order; the mapping of jobs into the matrix is delegated to a
// pluggable packing Policy. The default is the DHC (Distributed
// Hierarchical Control) buddy scheme of Feitelson & Rudolph — a job of
// size s is assigned to the least-loaded aligned block of 2^ceil(log2 s)
// columns, occupying the leftmost s cells of that block in the first row
// where they are all free (paper §2.1) — with first-fit and best-fit (plus
// slot unification on exit) available for the scheduler-evaluation runs.
package gang

import (
	"fmt"

	"gangfm/internal/myrinet"
)

// Placement records where a job sits in the matrix.
type Placement struct {
	Job  myrinet.JobID
	Row  int
	Cols []int // the node columns assigned, ascending
}

// deadCell marks a cell in a killed column. It is distinct from both
// myrinet.NoJob and every real job ID, so free-run scans treat dead cells
// as permanently occupied and placement can never land on an evicted node.
const deadCell myrinet.JobID = -2

// Matrix is the gang-scheduling table.
type Matrix struct {
	cols    int
	maxRows int // 0 = unbounded
	policy  Policy
	rows    [][]myrinet.JobID
	jobs    map[myrinet.JobID]Placement
	current int

	// Aggregated occupancy caches, maintained incrementally by
	// Place/Remove/Unify so placement queries are O(candidate cells)
	// instead of re-scanning the whole matrix (the kubernetes
	// schedulercache.NodeInfo pattern, applied to a slot table):
	// colLoad[c] counts occupied cells in column c across all rows — the
	// DHC controller's subtree load and the online scheduler's per-node
	// residency; rowFree[r] counts free cells in row r, letting run
	// searches skip rows that cannot possibly hold the job.
	colLoad []int
	rowFree []int

	// Column-shrink state (failure-aware scheduling): dead[c] marks a
	// column whose node was evicted, live counts the surviving columns, and
	// rowDeadUsed[r] counts cells in row r still occupied by a job on a
	// dead column (non-zero only between KillColumn and the eviction of the
	// spanning jobs). rowFree counts free *live* cells, so FreeNodes-style
	// capacity questions answered from the caches reflect live capacity.
	dead        []bool
	live        int
	rowDeadUsed []int

	// auditCols is Audit's per-column recount scratch, kept on the matrix
	// so the per-quantum audit tick stays allocation-free (a fresh
	// variable-size make([]int, cols) would heap-allocate every call).
	auditCols []int
}

// NewMatrix returns a matrix with the given number of node columns and the
// default DHC buddy packing policy. maxRows bounds the number of time
// slots (the fixed context count the buffers must be divided by in
// partitioned mode); 0 means unbounded.
func NewMatrix(cols, maxRows int) *Matrix {
	return NewMatrixPolicy(cols, maxRows, nil)
}

// NewMatrixPolicy returns a matrix using the given packing policy (nil
// selects the default Buddy policy).
func NewMatrixPolicy(cols, maxRows int, policy Policy) *Matrix {
	if cols <= 0 {
		panic("gang: need at least one column")
	}
	if policy == nil {
		policy = Buddy{}
	}
	return &Matrix{
		cols:    cols,
		maxRows: maxRows,
		policy:  policy,
		jobs:    make(map[myrinet.JobID]Placement),
		current: -1,
		colLoad: make([]int, cols),
		dead:    make([]bool, cols),
		live:    cols,
	}
}

// Policy returns the matrix's packing policy.
func (m *Matrix) Policy() Policy { return m.policy }

// Cols returns the number of node columns.
func (m *Matrix) Cols() int { return m.cols }

// LiveCols returns the number of surviving (non-killed) columns — the live
// capacity of the machine.
func (m *Matrix) LiveCols() int { return m.live }

// ColDead reports whether column c has been killed.
func (m *Matrix) ColDead(c int) bool {
	return c >= 0 && c < m.cols && m.dead[c]
}

// Rows returns the number of allocated time slots.
func (m *Matrix) Rows() int { return len(m.rows) }

// Jobs returns the number of placed jobs.
func (m *Matrix) Jobs() int { return len(m.jobs) }

// Current returns the index of the active row, or -1 before the first
// rotation.
func (m *Matrix) Current() int { return m.current }

// Placement returns a job's placement.
func (m *Matrix) Placement(job myrinet.JobID) (Placement, bool) {
	p, ok := m.jobs[job]
	return p, ok
}

// JobAt returns the job occupying (row, col), or NoJob. Dead cells read as
// NoJob: nothing runs there, and callers must not mistake the sentinel for
// a real job ID.
func (m *Matrix) JobAt(row, col int) myrinet.JobID {
	if row < 0 || row >= len(m.rows) || col < 0 || col >= m.cols {
		return myrinet.NoJob
	}
	if j := m.rows[row][col]; j != deadCell {
		return j
	}
	return myrinet.NoJob
}

// RowJobs returns the distinct jobs scheduled in a row.
func (m *Matrix) RowJobs(row int) []myrinet.JobID {
	if row < 0 || row >= len(m.rows) {
		return nil
	}
	seen := make(map[myrinet.JobID]bool)
	var out []myrinet.JobID
	for _, j := range m.rows[row] {
		if j != myrinet.NoJob && j != deadCell && !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// blockLoad sums occupied cells over the block's columns, across all rows
// — the DHC controller's subtree load. Served from the per-column cache:
// O(width) regardless of the slot-table depth.
func (m *Matrix) blockLoad(start, width int) int {
	load := 0
	for c := start; c < start+width; c++ {
		load += m.colLoad[c]
	}
	return load
}

// ColLoad returns the number of occupied cells in column c across all
// rows — the column's resident-process count. O(1) from the cache.
func (m *Matrix) ColLoad(c int) int {
	if c < 0 || c >= m.cols {
		return 0
	}
	return m.colLoad[c]
}

// RowFree returns the number of free cells in row r. O(1) from the cache.
func (m *Matrix) RowFree(r int) int {
	if r < 0 || r >= len(m.rows) {
		return 0
	}
	return m.rowFree[r]
}

// Place assigns a job of the given size using the packing policy. It
// returns the placement or an error when the job cannot fit (too large for
// the machine, or the slot table is full).
func (m *Matrix) Place(job myrinet.JobID, size int) (Placement, error) {
	if size <= 0 {
		return Placement{}, fmt.Errorf("gang: job %d has non-positive size %d", job, size)
	}
	if size > m.cols {
		return Placement{}, fmt.Errorf("gang: job %d of size %d exceeds %d nodes", job, size, m.cols)
	}
	if size > m.live {
		return Placement{}, fmt.Errorf("gang: job %d of size %d exceeds %d live nodes", job, size, m.live)
	}
	if _, dup := m.jobs[job]; dup {
		return Placement{}, fmt.Errorf("gang: job %d already placed", job)
	}

	row, cols := m.policy.Propose(m, size)
	if len(cols) != size || row < 0 || row > len(m.rows) {
		panic(fmt.Sprintf("gang: policy %s proposed row %d cols %v for size %d", m.policy.Name(), row, cols, size))
	}
	if row == len(m.rows) {
		if m.maxRows > 0 && len(m.rows) >= m.maxRows {
			return Placement{}, fmt.Errorf("gang: slot table full (%d rows) placing job %d", m.maxRows, job)
		}
		fresh := make([]myrinet.JobID, m.cols)
		for c := range fresh {
			if m.dead[c] {
				fresh[c] = deadCell
			} else {
				fresh[c] = myrinet.NoJob
			}
		}
		m.rows = append(m.rows, fresh)
		m.rowFree = append(m.rowFree, m.live)
		m.rowDeadUsed = append(m.rowDeadUsed, 0)
	}
	if !m.freeIn(row, cols) {
		panic(fmt.Sprintf("gang: policy %s proposed occupied cells row %d cols %v", m.policy.Name(), row, cols))
	}
	for _, c := range cols {
		m.rows[row][c] = job
		m.colLoad[c]++
	}
	m.rowFree[row] -= len(cols)
	p := Placement{Job: job, Row: row, Cols: cols}
	m.jobs[job] = p
	return p, nil
}

func (m *Matrix) freeIn(row int, cols []int) bool {
	for _, c := range cols {
		if m.rows[row][c] != myrinet.NoJob {
			return false
		}
	}
	return true
}

// Remove deletes a job from the matrix. Trailing all-empty rows are
// trimmed so the rotation does not visit dead slots, and policies that
// request it get a slot-unification pass.
func (m *Matrix) Remove(job myrinet.JobID) error {
	p, ok := m.jobs[job]
	if !ok {
		return fmt.Errorf("gang: removing unplaced job %d", job)
	}
	for _, c := range p.Cols {
		if m.dead[c] {
			// The column died under this job: the cell reverts to the dead
			// sentinel, not to free capacity.
			m.rows[p.Row][c] = deadCell
			m.rowDeadUsed[p.Row]--
		} else {
			m.rows[p.Row][c] = myrinet.NoJob
			m.rowFree[p.Row]++
		}
		m.colLoad[c]--
	}
	delete(m.jobs, job)
	if m.policy.UnifyOnExit() {
		m.Unify()
	}
	m.trim()
	return nil
}

// trim drops trailing all-empty rows and clamps the rotation cursor.
func (m *Matrix) trim() {
	for len(m.rows) > 0 && m.rowEmpty(len(m.rows)-1) {
		m.rows = m.rows[:len(m.rows)-1]
	}
	m.rowFree = m.rowFree[:len(m.rows)]
	m.rowDeadUsed = m.rowDeadUsed[:len(m.rows)]
	if m.current >= len(m.rows) {
		m.current = len(m.rows) - 1
	}
}

// KillColumn removes an evicted node's column from the live capacity:
// free cells become dead sentinels (deducted from rowFree so run searches
// and FreeNodes-style prechecks see live capacity only), and cells still
// occupied are tallied in rowDeadUsed until the spanning jobs are killed.
// The caller (masterd eviction) must kill those jobs afterwards; until
// then their placements keep the matrix audit-consistent.
func (m *Matrix) KillColumn(c int) error {
	if c < 0 || c >= m.cols {
		return fmt.Errorf("gang: kill of column %d outside [0,%d)", c, m.cols)
	}
	if m.dead[c] {
		return fmt.Errorf("gang: column %d already dead", c)
	}
	m.dead[c] = true
	m.live--
	for r := range m.rows {
		switch m.rows[r][c] {
		case myrinet.NoJob:
			m.rows[r][c] = deadCell
			m.rowFree[r]--
		case deadCell:
			// unreachable: the column was live until now
		default:
			m.rowDeadUsed[r]++
		}
	}
	m.trim()
	return nil
}

// ReviveColumn returns a repaired node's column to the live capacity: the
// dead sentinels flip back to free cells (credited to rowFree, so run
// searches and FreeNodes-style prechecks immediately see the regrown
// capacity) and the column counts toward live again. It is KillColumn's
// inverse, legal only once the column is fully drained: the masterd must
// have killed every job that spanned the node before the eviction (i.e.
// rowDeadUsed holds no residue for this column — equivalently its colLoad
// is zero).
func (m *Matrix) ReviveColumn(c int) error {
	if c < 0 || c >= m.cols {
		return fmt.Errorf("gang: revive of column %d outside [0,%d)", c, m.cols)
	}
	if !m.dead[c] {
		return fmt.Errorf("gang: column %d is not dead", c)
	}
	if m.colLoad[c] != 0 {
		return fmt.Errorf("gang: column %d still holds %d undrained cells", c, m.colLoad[c])
	}
	m.dead[c] = false
	m.live++
	for r := range m.rows {
		if m.rows[r][c] == deadCell {
			m.rows[r][c] = myrinet.NoJob
			m.rowFree[r]++
		}
	}
	m.trim()
	return nil
}

// liveRange returns the lowest `size` live column indices, ascending. The
// caller must have checked size <= m.live.
func (m *Matrix) liveRange(size int) []int {
	cols := make([]int, 0, size)
	for c := 0; c < m.cols && len(cols) < size; c++ {
		if !m.dead[c] {
			cols = append(cols, c)
		}
	}
	return cols
}

// Unify migrates jobs into earlier time slots: a job moves to the lowest
// row where its exact column set is free. Only the row changes — the
// columns are the job's nodes, and processes never migrate — so the move
// is pure bookkeeping: the next rotation simply finds the job in a fuller
// slot. Returns the number of jobs moved. Rows are scanned bottom-up and
// candidates left-to-right, so the result is deterministic.
func (m *Matrix) Unify() int {
	moved := 0
	for r := 1; r < len(m.rows); r++ {
		for c := 0; c < m.cols; c++ {
			j := m.rows[r][c]
			if j == myrinet.NoJob || j == deadCell {
				continue
			}
			p := m.jobs[j]
			if p.Cols[0] != c {
				continue // visit each job once, at its leftmost cell
			}
			for lower := 0; lower < r; lower++ {
				if m.rowFree[lower] < len(p.Cols) || !m.freeIn(lower, p.Cols) {
					continue
				}
				for _, pc := range p.Cols {
					m.rows[r][pc] = myrinet.NoJob
					m.rows[lower][pc] = j
				}
				m.rowFree[r] += len(p.Cols)
				m.rowFree[lower] -= len(p.Cols)
				p.Row = lower
				m.jobs[j] = p
				moved++
				break
			}
		}
	}
	if moved > 0 {
		m.trim()
	}
	return moved
}

func (m *Matrix) rowEmpty(r int) bool {
	return m.rowFree[r] == m.live && m.rowDeadUsed[r] == 0
}

// Audit checks the matrix's structural invariants and returns one message
// per breach (nil when consistent): every placement's cells hold exactly
// its job, every occupied cell belongs to a recorded placement, no job
// appears in more than one row — the slot-exclusivity property gang
// scheduling's communication guarantees rest on — and the incremental
// occupancy caches agree with a full recount.
func (m *Matrix) Audit() []string {
	var bad []string
	cells := make(map[myrinet.JobID]int)
	if m.auditCols == nil {
		m.auditCols = make([]int, m.cols)
	}
	colCount := m.auditCols
	for c := range colCount {
		colCount[c] = 0
	}
	for r, row := range m.rows {
		free, deadUsed := 0, 0
		for c, j := range row {
			if j == deadCell {
				if !m.dead[c] {
					bad = append(bad, fmt.Sprintf("cell (%d,%d) holds a dead sentinel in a live column", r, c))
				}
				continue
			}
			if j == myrinet.NoJob {
				if m.dead[c] {
					bad = append(bad, fmt.Sprintf("cell (%d,%d) reads free in dead column %d", r, c, c))
					continue
				}
				free++
				continue
			}
			if m.dead[c] {
				deadUsed++
			}
			colCount[c]++
			cells[j]++
			p, ok := m.jobs[j]
			if !ok {
				bad = append(bad, fmt.Sprintf("cell (%d,%d) holds unplaced job %d", r, c, j))
				continue
			}
			if p.Row != r {
				bad = append(bad, fmt.Sprintf("job %d occupies row %d but is placed in row %d", j, r, p.Row))
			}
		}
		if m.rowFree[r] != free {
			bad = append(bad, fmt.Sprintf("row %d cache says %d free cells, recount says %d", r, m.rowFree[r], free))
		}
		if m.rowDeadUsed[r] != deadUsed {
			bad = append(bad, fmt.Sprintf("row %d cache says %d dead-occupied cells, recount says %d", r, m.rowDeadUsed[r], deadUsed))
		}
	}
	for c, n := range colCount {
		if m.colLoad[c] != n {
			bad = append(bad, fmt.Sprintf("column %d cache says load %d, recount says %d", c, m.colLoad[c], n))
		}
	}
	liveCount := 0
	for _, d := range m.dead {
		if !d {
			liveCount++
		}
	}
	if liveCount != m.live {
		bad = append(bad, fmt.Sprintf("live-column cache says %d, recount says %d", m.live, liveCount))
	}
	for j, p := range m.jobs {
		if got := cells[j]; got != len(p.Cols) {
			bad = append(bad, fmt.Sprintf("job %d occupies %d cells, placement says %d", j, got, len(p.Cols)))
		}
		for _, c := range p.Cols {
			if m.JobAt(p.Row, c) != j {
				bad = append(bad, fmt.Sprintf("placement cell (%d,%d) does not hold job %d", p.Row, c, j))
			}
		}
	}
	return bad
}

// Rotate advances to the next non-empty row in round-robin order and
// returns its index, or -1 when the matrix holds no jobs. With a single
// non-empty row, Rotate returns that row (the caller can detect the
// no-switch-needed case by comparing with Current before rotating).
func (m *Matrix) Rotate() int {
	if len(m.rows) == 0 {
		m.current = -1
		return -1
	}
	start := m.current
	for i := 1; i <= len(m.rows); i++ {
		r := (start + i) % len(m.rows)
		if r < 0 {
			r += len(m.rows)
		}
		if !m.rowEmpty(r) {
			m.current = r
			return r
		}
	}
	m.current = -1
	return -1
}
