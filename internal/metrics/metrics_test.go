package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Max(xs) != 4 || Min(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Median([]float64{5, 1, 9}) != 5 {
		t.Errorf("odd Median")
	}
	if got := Stddev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("Stddev of constants = %v", got)
	}
}

func TestStatsEmpty(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 || Median(nil) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty inputs should yield 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "a", "b")
	tb.AddRow(1, 2.5)
	tb.AddRow("x", "y")
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	s := tb.String()
	for _, want := range []string{"Figure X", "a", "b", "1", "2.50", "x", "y"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

// Property: Min <= Median <= Max and Min <= Mean <= Max.
func TestOrderingProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		lo, hi := Min(xs), Max(xs)
		m, md := Mean(xs), Median(xs)
		eps := 1e-9 * (math.Abs(hi) + 1)
		return lo <= m+eps && m <= hi+eps && lo <= md+eps && md <= hi+eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSumAndPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if got := Sum(xs); got != 15 {
		t.Fatalf("Sum = %v", got)
	}
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %v", got)
	}
}

func TestBoundedSlowdown(t *testing.T) {
	// Long job: plain response/service ratio.
	if got := BoundedSlowdown(200, 100, 10); got != 2 {
		t.Fatalf("long job: %v", got)
	}
	// Short job: the bound replaces the tiny service time.
	if got := BoundedSlowdown(50, 1, 10); got != 5 {
		t.Fatalf("short job: %v", got)
	}
	// Never below 1.
	if got := BoundedSlowdown(5, 100, 10); got != 1 {
		t.Fatalf("floor: %v", got)
	}
	// Degenerate inputs clamp to 1.
	if got := BoundedSlowdown(5, 0, 0); got != 1 {
		t.Fatalf("degenerate: %v", got)
	}
}
