// Package metrics provides the small statistics and table-formatting
// helpers the experiment harness uses to print paper-style tables.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile of xs (nearest-rank definition,
// p in [0, 100]; 0 for empty input).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// BoundedSlowdown returns Feitelson's bounded slowdown of a job:
// max(1, response / max(service, bound)). The bound keeps very short jobs
// from dominating the average with enormous raw slowdowns.
func BoundedSlowdown(response, service, bound float64) float64 {
	den := service
	if den < bound {
		den = bound
	}
	if den <= 0 {
		return 1
	}
	s := response / den
	if s < 1 {
		return 1
	}
	return s
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Table accumulates rows and prints them aligned, in the style of the
// paper's tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title))); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Headers) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	}
	for _, row := range t.rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}
