package altsched

import (
	"testing"

	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// dynPair builds two dynamically coscheduled nodes hosting a 2-rank job.
func dynPair(t *testing.T, cfg DynCosConfig) (*sim.Engine, *DynCosNode, *DynCosNode) {
	t.Helper()
	eng := sim.NewEngine()
	net := myrinet.New(eng, myrinet.DefaultConfig(2))
	mem := memmodel.Default()
	a, err := NewDynCosNode(eng, net, mem, 0, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDynCosNode(eng, net, mem, 1, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, a, b
}

func TestDynCosMessageWakesReceiver(t *testing.T) {
	eng, a, b := dynPair(t, DefaultDynCosConfig())
	delivered := 0
	b.EP.Channel(0).SetOnDeliver(func(uint64) { delivered++ })
	// Both start descheduled (computing). The sender wakes itself and
	// sends; the receiver must be woken by the arrival.
	a.Wake()
	a.EP.Channel(1).Send(3)
	eng.RunUntil(10_000_000)
	if delivered != 3 {
		t.Fatalf("delivered %d/3", delivered)
	}
	if b.Wakeups == 0 {
		t.Fatal("receiver was never woken by message arrival")
	}
}

func TestDynCosIdleTimeoutDeschedules(t *testing.T) {
	cfg := DefaultDynCosConfig()
	eng, a, b := dynPair(t, cfg)
	a.Wake()
	a.EP.Channel(1).Send(1)
	eng.RunUntil(1_000_000)
	if !b.EP.Running() && !a.EP.Running() {
		// already descheduled — fine, but verify it happened via timer
	}
	eng.RunUntil(20_000_000)
	if a.EP.Running() || b.EP.Running() {
		t.Fatal("processes should be descheduled after the idle timeout")
	}
}

func TestDynCosComputeFraction(t *testing.T) {
	// Sparse traffic: local compute should keep the vast majority of the
	// CPU despite the communication wakeups.
	cfg := DefaultDynCosConfig()
	eng, a, b := dynPair(t, cfg)
	requests := 0
	var tick func()
	tick = func() {
		if requests >= 10 {
			return
		}
		requests++
		a.Wake()
		a.EP.Channel(1).Send(1)
		eng.Schedule(20_000_000, tick) // one message every 100 ms
	}
	tick()
	eng.RunUntil(220_000_000)
	if f := a.ComputeFraction(); f < 0.90 {
		t.Fatalf("compute fraction %.2f, want >0.90 under sparse traffic", f)
	}
	if f := b.ComputeFraction(); f < 0.90 {
		t.Fatalf("receiver compute fraction %.2f", f)
	}
	if b.EP.Channel(0).Stats().Delivered != 10 {
		t.Fatalf("delivered %d/10", b.EP.Channel(0).Stats().Delivered)
	}
}

func TestDynCosResponseLatency(t *testing.T) {
	// The headline property: a request arriving at a descheduled process
	// is served after ~dispatch latency, not after waiting for the next
	// gang quantum. Round trip = 2x dispatch + transport.
	cfg := DefaultDynCosConfig()
	eng, a, b := dynPair(t, cfg)
	b.EP.Channel(0).SetOnDeliver(func(uint64) {
		// Echo: the reply wakes node A's process in turn.
		b.EP.Channel(0).Send(1)
	})
	var issued, replied sim.Time
	a.EP.Channel(1).SetOnDeliver(func(uint64) { replied = eng.Now() })
	issued = eng.Now()
	a.Wake()
	a.EP.Channel(1).Send(1)
	eng.RunUntil(50_000_000)
	if replied == 0 {
		t.Fatal("no reply")
	}
	rtt := replied - issued
	// Must be on the order of the dispatch latency (tens of us), far
	// below any gang quantum (>= tens of ms).
	if rtt > 1_000_000 {
		t.Fatalf("round trip %d cycles — dynamic coscheduling should respond in ~dispatch time", rtt)
	}
	if rtt < cfg.Dispatch {
		t.Fatalf("round trip %d cycles below the dispatch latency %d — wakeup not modeled", rtt, cfg.Dispatch)
	}
}

func TestDynCosBulkTrafficStaysAwake(t *testing.T) {
	// A continuous stream must not thrash wakeups: the idle timer keeps
	// the process scheduled while traffic flows.
	cfg := DefaultDynCosConfig()
	eng, a, b := dynPair(t, cfg)
	a.Wake()
	a.EP.Channel(1).Send(2000)
	eng.RunUntil(100_000_000)
	if got := b.EP.Channel(0).Stats().Delivered; got != 2000 {
		t.Fatalf("delivered %d/2000", got)
	}
	if b.Wakeups > 10 {
		t.Fatalf("receiver thrashed: %d wakeups for one continuous stream", b.Wakeups)
	}
}
