package altsched

import (
	"fmt"

	"gangfm/internal/lanai"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// Endpoint is one process under an alternative scheme: a set of reliable
// channels to its peers, bound to the node's shared hardware context when
// the process is scheduled.
type Endpoint struct {
	eng *sim.Engine
	nic *lanai.NIC
	cpu *sim.Resource
	cfg RChannelConfig

	job    myrinet.JobID
	rank   int
	nodeOf []myrinet.NodeID

	ctx          *lanai.Context
	chans        map[int]*RChannel // per peer rank
	running      bool
	draining     bool
	payloadBytes int

	recvOverhead sim.Time

	// drainN carries the in-flight drain batch size to drainDoneFn, the
	// cached drain-completion callback (one drain batch is in flight at a
	// time, guarded by draining). hooks is the context-hook set handed to
	// the card at every attach; building it once keeps the per-switch
	// rebind allocation-free.
	drainN      int
	drainDoneFn func()
	hooks       lanai.Hooks
}

// NewEndpoint builds the process's transport state; channels to peers are
// created lazily on first use.
func NewEndpoint(eng *sim.Engine, nic *lanai.NIC, cpu *sim.Resource, cfg RChannelConfig,
	job myrinet.JobID, rank int, nodeOf []myrinet.NodeID, payloadLen int) (*Endpoint, error) {
	if rank < 0 || rank >= len(nodeOf) {
		return nil, fmt.Errorf("altsched: rank %d out of range", rank)
	}
	e := &Endpoint{
		eng: eng, nic: nic, cpu: cpu, cfg: cfg,
		job: job, rank: rank, nodeOf: nodeOf,
		chans:        make(map[int]*RChannel),
		payloadBytes: payloadLen,
		recvOverhead: cfg.RecvOverhead,
	}
	e.drainDoneFn = e.drainDone
	e.hooks = lanai.Hooks{
		OnArrive:    func(*lanai.Context) { e.drain() },
		OnSendSpace: func(*lanai.Context) { e.pumpAll() },
	}
	return e, nil
}

// Channel returns (creating if needed) the reliable channel to peer.
func (e *Endpoint) Channel(peer int) *RChannel {
	if peer == e.rank || peer < 0 || peer >= len(e.nodeOf) {
		panic("altsched: invalid peer")
	}
	if c := e.chans[peer]; c != nil {
		return c
	}
	c, err := NewRChannel(e.eng, e.nic, e.ctx, e.cpu, e.cfg,
		e.job, e.rank, peer, e.nodeOf[peer], e.payload())
	if err != nil {
		panic(err)
	}
	c.running = e.running // inherit the process's run state
	e.chans[peer] = c
	return c
}

func (e *Endpoint) payload() int { return e.payloadBytes }

// PayloadBytes returns the fixed per-packet payload the endpoint streams.
func (e *Endpoint) PayloadBytes() int { return e.payloadBytes }

// Job returns the endpoint's job.
func (e *Endpoint) Job() myrinet.JobID { return e.job }

// Rank returns the endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Running reports the process's run state.
func (e *Endpoint) Running() bool { return e.running }

// attach binds the endpoint (and its channels) to the hardware context.
func (e *Endpoint) attach(ctx *lanai.Context) {
	e.ctx = ctx
	for _, c := range e.chans {
		c.ctx = ctx
	}
	ctx.Hooks = e.hooks
}

// Suspend stops the process: pumps and retransmission timers halt.
func (e *Endpoint) Suspend() {
	e.running = false
	for _, c := range e.chans {
		c.Suspend()
	}
}

// Resume restarts the process.
func (e *Endpoint) Resume() {
	if e.running {
		return
	}
	e.running = true
	for _, c := range e.chans {
		c.Resume()
	}
	e.drain()
}

// accept is the NIC-level receive-context processing (go-back-N check and
// cumulative ack) of an arriving data packet.
func (e *Endpoint) accept(p *myrinet.Packet) bool {
	return e.Channel(p.SrcRank).Accept(p)
}

// handleAck routes a cumulative acknowledgement to the right channel.
func (e *Endpoint) handleAck(p *myrinet.Packet) {
	e.Channel(p.SrcRank).HandleAck(p)
}

// handleNack routes a rejection to the right channel.
func (e *Endpoint) handleNack(p *myrinet.Packet) {
	e.Channel(p.SrcRank).HandleNack(p)
}

// outstanding sums unacknowledged packets across channels.
func (e *Endpoint) outstanding() int {
	n := 0
	for _, c := range e.chans {
		n += c.Outstanding()
	}
	return n
}

// quiesced reports whether every channel's window is resolved.
func (e *Endpoint) quiesced() bool {
	for _, c := range e.chans {
		if !c.Quiesced() {
			return false
		}
	}
	return true
}

func (e *Endpoint) pumpAll() {
	for _, c := range e.chans {
		c.pump()
	}
}

// drain consumes deposited packets on the host, delivering them to the
// owning channels.
func (e *Endpoint) drain() {
	if !e.running || e.draining || e.ctx == nil {
		return
	}
	n := e.ctx.RecvQ.Len()
	if n == 0 {
		return
	}
	if n > 16 {
		n = 16
	}
	e.draining = true
	e.drainN = n
	e.cpu.Use(sim.Time(n)*e.recvOverhead, e.drainDoneFn)
}

func (e *Endpoint) drainDone() {
	n := e.drainN
	e.draining = false
	for i := 0; i < n; i++ {
		p := e.nic.DequeueRecv(e.ctx)
		if p == nil {
			return
		}
		e.Channel(p.SrcRank).Deliver(p)
		e.nic.FreePacket(p)
	}
	e.drain()
}
