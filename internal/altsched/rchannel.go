// Package altsched implements the two related-work alternatives the paper
// compares against (§5), on the same simulated Myrinet/LANai substrate:
//
//   - SHARE-style discard switching (Franke, Pattnaik & Rudolph): context
//     switches are driven by synchronized clocks with NO network flush;
//     the card discards packets whose job ID does not match the currently
//     scheduled process, and higher-level software retransmits to recover
//     (go-back-N here).
//
//   - PM/SCore-style quiescence flush (Hori, Tezuka & Ishikawa): the
//     transport acknowledges every packet, so a node can flush without
//     control broadcasts — it simply stops transmitting and waits until
//     every outstanding packet has been acknowledged.
//
// Both schemes need an acknowledging transport instead of FM's credits,
// provided here by RChannel: a go-back-N reliable channel between two
// ranks of a job, with cumulative acks, retransmission timers, and
// NIC-level acknowledgement generation (acks are produced when the card
// deposits a packet, as PM does, so they flow even while the destination
// process is descheduled).
package altsched

import (
	"fmt"

	"gangfm/internal/lanai"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// RChannelConfig tunes the reliable transport.
type RChannelConfig struct {
	// Window is the go-back-N send window in packets.
	Window int
	// RTO is the retransmission timeout in cycles.
	RTO sim.Time
	// SendOverhead is the host cost per (re)transmitted packet.
	SendOverhead sim.Time
	// RecvOverhead is the host cost per consumed packet.
	RecvOverhead sim.Time
}

// DefaultRChannelConfig returns a window comparable to FM's switched-mode
// credit count and an RTO of ~0.5 ms.
func DefaultRChannelConfig() RChannelConfig {
	return RChannelConfig{
		Window:       40,
		RTO:          100_000,
		SendOverhead: 4000, // comparable to FM's per-packet host cost
		RecvOverhead: 600,
	}
}

// RChannelStats counts transport activity.
type RChannelStats struct {
	Sent            uint64 // first transmissions
	Retransmissions uint64
	Delivered       uint64 // in-order deliveries to the application
	OutOfOrderDrops uint64
	AcksSent        uint64
	Timeouts        uint64
}

// RChannel is one direction of a reliable go-back-N stream from the local
// rank to a peer. Both sides of a connection own one RChannel for sending
// and deliver the peer's traffic through it.
type RChannel struct {
	eng *sim.Engine
	nic *lanai.NIC
	ctx *lanai.Context
	cpu *sim.Resource
	cfg RChannelConfig

	job        myrinet.JobID
	rank       int
	peerRank   int
	peerNode   myrinet.NodeID
	payloadLen int

	running bool

	// sender state
	nextSeq  uint64
	sendBase uint64
	pending  int // messages requested but not yet transmitted
	timer    sim.Event
	pumping  bool
	// nacked records that the peer rejected the in-flight window (its
	// process was descheduled, PM-style): the window counts as resolved
	// for quiescence purposes and is retransmitted on Resume.
	nacked bool
	// pumpDoneFn is the single cached send-overhead completion callback
	// (one transmission is in flight at a time, guarded by pumping).
	pumpDoneFn func()
	// timeoutFn is the cached retransmission-timer callback; armTimer runs
	// on every ack, so a fresh method value there would allocate per packet.
	timeoutFn func()

	// receiver state
	recvNext uint64

	onDeliver func(seq uint64)
	stats     RChannelStats
}

// NewRChannel creates the sending half toward peerRank at peerNode. The
// channel transmits fixed-size packets of payloadLen bytes (the benchmarks
// stream uniform packets, as FM's do).
func NewRChannel(eng *sim.Engine, nic *lanai.NIC, ctx *lanai.Context, cpu *sim.Resource,
	cfg RChannelConfig, job myrinet.JobID, rank, peerRank int, peerNode myrinet.NodeID,
	payloadLen int) (*RChannel, error) {
	if cfg.Window <= 0 || cfg.RTO == 0 {
		return nil, fmt.Errorf("altsched: channel needs a positive window and RTO")
	}
	if payloadLen <= 0 || payloadLen > myrinet.MaxPayload {
		return nil, fmt.Errorf("altsched: payload length %d out of range", payloadLen)
	}
	c := &RChannel{
		eng: eng, nic: nic, ctx: ctx, cpu: cpu, cfg: cfg,
		job: job, rank: rank, peerRank: peerRank, peerNode: peerNode,
		payloadLen: payloadLen,
	}
	c.pumpDoneFn = func() {
		c.pumping = false
		if c.pending == 0 {
			return
		}
		c.pending--
		c.transmit(c.nextSeq, false)
		c.nextSeq++
		c.armTimer()
		c.pump()
	}
	c.timeoutFn = c.timeout
	return c, nil
}

// Stats returns a snapshot of the counters.
func (c *RChannel) Stats() RChannelStats { return c.stats }

// Outstanding returns the number of unacknowledged packets.
func (c *RChannel) Outstanding() int { return int(c.nextSeq - c.sendBase) }

// Quiesced reports whether every transmitted packet is resolved: either
// acknowledged or nacked (PM counts both — nacked packets are resent after
// the job is rescheduled).
func (c *RChannel) Quiesced() bool { return c.nacked || c.Outstanding() == 0 }

// PendingSends returns requested-but-untransmitted message count.
func (c *RChannel) PendingSends() int { return c.pending }

// SetOnDeliver registers the in-order delivery callback.
func (c *RChannel) SetOnDeliver(fn func(seq uint64)) { c.onDeliver = fn }

// Resume starts (or restarts) the process: pumping and retransmission. A
// window the peer nacked while we were descheduled is retransmitted now.
func (c *RChannel) Resume() {
	if c.running {
		return
	}
	c.running = true
	if c.nacked {
		c.nacked = false
		for seq := c.sendBase; seq < c.nextSeq; seq++ {
			c.transmit(seq, true)
		}
	}
	c.armTimer()
	c.pump()
}

// Suspend models descheduling: transmission and timers stop. The PM-style
// scheme calls this before its quiescence wait; the SHARE-style scheme
// calls it at its (unflushed) switch.
func (c *RChannel) Suspend() {
	c.running = false
	c.stopTimer()
}

// Running reports the channel's run state.
func (c *RChannel) Running() bool { return c.running }

// Send queues n fixed-size messages for transmission.
func (c *RChannel) Send(n int) {
	if n <= 0 {
		panic("altsched: Send needs a positive count")
	}
	c.pending += n
	c.pump()
}

// pump transmits while the window and the card's send queue allow.
func (c *RChannel) pump() {
	if !c.running || c.pumping || c.pending == 0 {
		return
	}
	if c.Outstanding() >= c.cfg.Window || c.ctx.SendQ.Full() {
		return
	}
	c.pumping = true
	c.cpu.Use(c.cfg.SendOverhead, c.pumpDoneFn)
}

func (c *RChannel) transmit(seq uint64, retrans bool) {
	if retrans {
		c.stats.Retransmissions++
	} else {
		c.stats.Sent++
	}
	p := c.nic.NewPacket()
	p.Type = myrinet.Data
	p.Src, p.Dst = c.nic.Node(), c.peerNode
	p.Job, p.SrcRank, p.DstRank = c.job, c.rank, c.peerRank
	p.MsgID, p.NFrags, p.PayloadLen = seq, 1, c.payloadLen
	c.nic.EnqueueSend(c.ctx, p)
}

// Accept performs the receive context's NIC-level processing of an
// arriving data packet, before the DMA deposits it: in-order packets are
// acknowledged cumulatively and accepted; out-of-order packets (the gap
// left by a loss or a discard) are rejected — go-back-N — and the current
// cumulative ack is repeated to speed the sender's recovery. Accept runs
// regardless of whether the destination process is scheduled.
func (c *RChannel) Accept(p *myrinet.Packet) bool {
	if p.MsgID == c.recvNext {
		c.recvNext++
		c.sendAck()
		return true
	}
	c.stats.OutOfOrderDrops++
	c.sendAck()
	return false
}

// Deliver hands an accepted, deposited packet to the application (called
// from the host drain loop).
func (c *RChannel) Deliver(p *myrinet.Packet) {
	c.stats.Delivered++
	if c.onDeliver != nil {
		c.onDeliver(p.MsgID)
	}
}

// sendAck emits a cumulative acknowledgement. Acks are generated at the
// card level (the receive context acknowledges deposits), so they cost no
// host time and flow even when the process is descheduled — the property
// the PM-style flush depends on.
func (c *RChannel) sendAck() {
	c.stats.AcksSent++
	p := c.nic.NewPacket()
	p.Type = myrinet.Ack
	p.Src, p.Dst = c.nic.Node(), c.peerNode
	p.Job, p.SrcRank, p.DstRank = c.job, c.rank, c.peerRank
	p.MsgID = c.recvNext
	c.nic.SendRaw(p)
}

// HandleAck processes a cumulative ack for our outgoing stream.
func (c *RChannel) HandleAck(p *myrinet.Packet) {
	if p.MsgID <= c.sendBase {
		return // duplicate
	}
	if p.MsgID > c.nextSeq {
		panic("altsched: ack beyond transmitted window")
	}
	c.sendBase = p.MsgID
	if c.sendBase == c.nextSeq {
		c.nacked = false
	}
	c.armTimer()
	c.pump()
}

// HandleNack records the peer's rejection of our in-flight window: the
// peer's card could not receive for our job (its process is descheduled).
func (c *RChannel) HandleNack(p *myrinet.Packet) {
	if c.Outstanding() > 0 {
		c.nacked = true
		c.stopTimer()
	}
}

// timeout retransmits every unacknowledged packet (go-back-N).
func (c *RChannel) timeout() {
	if !c.running || c.Outstanding() == 0 {
		return
	}
	c.stats.Timeouts++
	for seq := c.sendBase; seq < c.nextSeq; seq++ {
		c.transmit(seq, true)
	}
	c.armTimer()
}

func (c *RChannel) armTimer() {
	c.stopTimer()
	if !c.running || c.Outstanding() == 0 {
		return
	}
	c.timer = c.eng.Schedule(c.cfg.RTO, c.timeoutFn)
}

func (c *RChannel) stopTimer() {
	// A handle to a fired event cancels as a no-op, so no liveness check
	// is needed here.
	c.timer.Cancel()
}
