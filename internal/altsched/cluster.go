package altsched

import (
	"fmt"

	"gangfm/internal/chaos"
	"gangfm/internal/core"
	"gangfm/internal/lanai"
	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// ClusterConfig parameterizes a scheme-comparison cluster.
type ClusterConfig struct {
	Nodes  int
	Jobs   int
	Scheme Scheme
	Mode   core.CopyMode
	// Quantum is the synchronized-clock switching period. Both schemes
	// in this package derive switches from synchronized clocks (as SHARE
	// does) rather than a masterd broadcast.
	Quantum sim.Time
	// ClockSkew is the residual per-node clock offset, sampled uniformly
	// in [0, ClockSkew) once per node.
	ClockSkew sim.Time
	// Channel tunes the go-back-N transport.
	Channel RChannelConfig
	// PayloadLen is the fixed per-packet payload of the streams.
	PayloadLen int
	Seed       uint64

	// Chaos, when non-nil, is a fault plan injected into the data network
	// — the same plans internal/parpar accepts, so FM's behavior under a
	// fault and the alternatives' can be compared run for run.
	Chaos *chaos.Plan
}

// DefaultClusterConfig returns a 2-node comparison setup.
func DefaultClusterConfig(jobs int) ClusterConfig {
	return ClusterConfig{
		Nodes:      2,
		Jobs:       jobs,
		Scheme:     ShareDiscard,
		Mode:       core.ValidOnly,
		Quantum:    4_000_000,
		ClockSkew:  4_000, // 20 us: SHARE relies on tightly synchronized clocks
		Channel:    DefaultRChannelConfig(),
		PayloadLen: myrinet.MaxPayload,
		Seed:       1,
	}
}

// node bundles one compute node's hardware and manager.
type node struct {
	nic  *lanai.NIC
	cpu  *sim.Resource
	mgr  *Manager
	skew sim.Time
}

// Cluster is a self-contained rig comparing the alternative schemes: Jobs
// two-rank jobs stream rank 0 -> rank 1 continuously while synchronized
// clocks rotate the schedule every Quantum.
type Cluster struct {
	Eng *sim.Engine
	Net *myrinet.Network
	cfg ClusterConfig

	nodes []*node
	// eps[job][rank]
	eps   map[myrinet.JobID][]*Endpoint
	epoch uint64
	// rotateFn is the cached rotation callback (a fresh method value per
	// quantum would allocate).
	rotateFn func()
}

// NewCluster assembles the rig and registers all processes.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("altsched: need at least 2 nodes")
	}
	if cfg.Jobs < 1 {
		return nil, fmt.Errorf("altsched: need at least 1 job")
	}
	eng := sim.NewEngine()
	net := myrinet.New(eng, myrinet.DefaultConfig(cfg.Nodes))
	if cfg.Chaos != nil && !cfg.Chaos.Empty() {
		net.SetInjector(chaos.NewInjector(eng, *cfg.Chaos))
	}
	mem := memmodel.Default()
	rng := sim.NewRand(cfg.Seed)
	c := &Cluster{Eng: eng, Net: net, cfg: cfg, eps: make(map[myrinet.JobID][]*Endpoint)}
	for i := 0; i < cfg.Nodes; i++ {
		nic := lanai.New(eng, net, mem, lanai.DefaultConfig(myrinet.NodeID(i)))
		cpu := sim.NewResource(eng, fmt.Sprintf("alt-cpu%d", i))
		mgr, err := NewManager(eng, nic, cpu, mem, cfg.Scheme, cfg.Mode)
		if err != nil {
			return nil, err
		}
		skew := sim.Time(0)
		if cfg.ClockSkew > 0 {
			skew = sim.Time(rng.Uint64() % uint64(cfg.ClockSkew))
		}
		c.nodes = append(c.nodes, &node{nic: nic, cpu: cpu, mgr: mgr, skew: skew})
	}
	nodeOf := []myrinet.NodeID{0, 1}
	for j := 1; j <= cfg.Jobs; j++ {
		job := myrinet.JobID(j)
		eps := make([]*Endpoint, 2)
		for rank := 0; rank < 2; rank++ {
			n := c.nodes[rank]
			ep, err := NewEndpoint(eng, n.nic, n.cpu, cfg.Channel, job, rank, nodeOf, cfg.PayloadLen)
			if err != nil {
				return nil, err
			}
			if err := n.mgr.AddProcess(ep); err != nil {
				return nil, err
			}
			eps[rank] = ep
		}
		c.eps[job] = eps
	}
	c.rotateFn = c.rotate
	return c, nil
}

// Endpoints returns a job's endpoints by rank.
func (c *Cluster) Endpoints(job myrinet.JobID) []*Endpoint { return c.eps[job] }

// Managers returns the per-node managers.
func (c *Cluster) Managers() []*Manager {
	out := make([]*Manager, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.mgr
	}
	return out
}

// Start schedules job 1 everywhere and begins the clock-driven rotation.
func (c *Cluster) Start() {
	c.rotate()
}

// rotate advances the schedule on every node at (skewed) synchronized
// clock ticks — there is no coordinator and no inter-node protocol.
func (c *Cluster) rotate() {
	c.epoch++
	job := myrinet.JobID(int(c.epoch-1)%c.cfg.Jobs + 1)
	for _, n := range c.nodes {
		n := n
		c.Eng.Schedule(n.skew, func() {
			if err := n.mgr.Switch(c.epoch, job, nil); err != nil {
				panic(err)
			}
		})
	}
	c.Eng.Schedule(c.cfg.Quantum, c.rotateFn)
}

// RunFor advances the simulation by d cycles.
func (c *Cluster) RunFor(d sim.Time) {
	c.Eng.RunUntil(c.Eng.Now() + d)
}

// Report aggregates a run's transport and switch statistics.
type Report struct {
	Scheme          Scheme
	Switches        int
	MeanWait        float64 // cycles (quiescence; zero for discard)
	MeanCopy        float64 // cycles
	Delivered       uint64
	Sent            uint64
	Retransmissions uint64
	Discards        uint64 // card-level ID-filter drops
}

// Efficiency returns delivered / total transmissions.
func (r Report) Efficiency() float64 {
	total := r.Sent + r.Retransmissions
	if total == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(total)
}

// Collect builds the report from the run so far.
func (c *Cluster) Collect() Report {
	rep := Report{Scheme: c.cfg.Scheme}
	var wait, copies float64
	for _, n := range c.nodes {
		for _, rec := range n.mgr.History() {
			if rec.From == myrinet.NoJob {
				continue
			}
			rep.Switches++
			wait += float64(rec.Wait)
			copies += float64(rec.Copy)
		}
		rep.Discards += n.nic.Stats().Drops[lanai.DropFiltered]
	}
	if rep.Switches > 0 {
		rep.MeanWait = wait / float64(rep.Switches)
		rep.MeanCopy = copies / float64(rep.Switches)
	}
	for _, eps := range c.eps {
		for _, ep := range eps {
			for _, ch := range ep.chans {
				st := ch.Stats()
				rep.Sent += st.Sent
				rep.Retransmissions += st.Retransmissions
				rep.Delivered += st.Delivered
			}
		}
	}
	return rep
}
