package altsched

import (
	"testing"

	"gangfm/internal/chaos"
	"gangfm/internal/lanai"
	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

func TestSchemeString(t *testing.T) {
	if ShareDiscard.String() != "share-discard" || PMQuiescence.String() != "pm-quiescence" {
		t.Fatal("scheme names")
	}
}

// pairRig wires two nodes with one job and reliable channels both ways,
// scheduled from the start.
func pairRig(t *testing.T, scheme Scheme) (*Cluster, *Endpoint, *Endpoint) {
	t.Helper()
	cfg := DefaultClusterConfig(1)
	cfg.Scheme = scheme
	cfg.Quantum = 100_000_000 // effectively no rotation during short tests
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	eps := c.Endpoints(1)
	return c, eps[0], eps[1]
}

func TestReliableDeliveryInOrder(t *testing.T) {
	c, tx, rx := pairRig(t, ShareDiscard)
	var got []uint64
	rx.Channel(0).SetOnDeliver(func(seq uint64) { got = append(got, seq) })
	tx.Channel(1).Send(100)
	c.RunFor(50_000_000)
	if len(got) != 100 {
		t.Fatalf("delivered %d/100", len(got))
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, seq)
		}
	}
	st := tx.Channel(1).Stats()
	if st.Retransmissions != 0 {
		t.Fatalf("retransmissions on a clean run: %d", st.Retransmissions)
	}
}

func TestWindowLimitsOutstanding(t *testing.T) {
	cfg := DefaultClusterConfig(1)
	cfg.Channel.Window = 4
	cfg.Channel.RTO = 10_000_000 // long, so no timeouts interfere
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	tx := c.Endpoints(1)[0]
	tx.Channel(1).Send(50)
	// Sample while running: the window bound must hold throughout.
	for i := 0; i < 40; i++ {
		c.RunFor(50_000)
		if o := tx.Channel(1).Outstanding(); o > 4 {
			t.Fatalf("outstanding %d exceeds window 4", o)
		}
	}
	c.RunFor(100_000_000)
	if d := c.Endpoints(1)[1].Channel(0).Stats().Delivered; d != 50 {
		t.Fatalf("delivered %d/50", d)
	}
}

func TestLossRecoveryByRetransmission(t *testing.T) {
	// Unlike FM's credits (which wedge permanently), go-back-N recovers
	// from loss — the property SHARE's discard approach depends on. The
	// fault plan is the same kind internal/parpar accepts, so the two
	// stacks' responses to identical loss are directly comparable.
	cfg := DefaultClusterConfig(1)
	cfg.Seed = 7
	cfg.Quantum = 100_000_000 // no rotation during the stream
	plan := chaos.Loss(7, 0.05)
	cfg.Chaos = &plan
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	tx, rx := c.Endpoints(1)[0], c.Endpoints(1)[1]
	tx.Channel(1).Send(300)
	c.RunFor(400_000_000)
	st := rx.Channel(0).Stats()
	if st.Delivered != 300 {
		t.Fatalf("delivered %d/300 under 5%% loss", st.Delivered)
	}
	if tx.Channel(1).Stats().Retransmissions == 0 {
		t.Fatal("expected retransmissions under loss")
	}
	if dropped := c.Net.Stats().Dropped[myrinet.Data]; dropped == 0 {
		t.Fatal("injector dropped nothing")
	}
}

func TestShareDiscardSwitchSkipsFlush(t *testing.T) {
	cfg := DefaultClusterConfig(2)
	cfg.Scheme = ShareDiscard
	cfg.Quantum = 2_000_000
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Endpoints(1)[0].Channel(1).Send(4000)
	c.Endpoints(2)[0].Channel(1).Send(4000)
	c.RunFor(40_000_000)
	rep := c.Collect()
	if rep.Switches == 0 {
		t.Fatal("no switches recorded")
	}
	if rep.MeanWait != 0 {
		t.Fatalf("discard switching should have zero flush wait, got %.0f", rep.MeanWait)
	}
	// The defining cost: packets racing the unflushed switch are
	// discarded and must be retransmitted.
	if rep.Discards == 0 {
		t.Fatal("expected card-level discards without a flush")
	}
	if rep.Retransmissions == 0 {
		t.Fatal("expected retransmissions to recover the discards")
	}
	// No halt protocol: the cards never exchanged Halt messages.
	for _, m := range c.Managers() {
		_ = m
	}
	if c.Net.Stats().Sent[myrinet.Halt] != 0 {
		t.Fatal("discard scheme must not use the halt protocol")
	}
}

func TestPMQuiescenceResolvesWithoutControlBroadcast(t *testing.T) {
	cfg := DefaultClusterConfig(2)
	cfg.Scheme = PMQuiescence
	cfg.Quantum = 2_000_000
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Endpoints(1)[0].Channel(1).Send(4000)
	c.Endpoints(2)[0].Channel(1).Send(4000)
	c.RunFor(40_000_000)
	rep := c.Collect()
	if rep.Switches == 0 {
		t.Fatal("no switches recorded")
	}
	if c.Net.Stats().Sent[myrinet.Halt] != 0 || c.Net.Stats().Sent[myrinet.Ready] != 0 {
		t.Fatal("quiescence scheme must not use halt/ready broadcasts")
	}
	// Progress under rotation.
	if rep.Delivered == 0 {
		t.Fatal("no traffic delivered")
	}
}

func TestSchemesMakeProgressAcrossManyRotations(t *testing.T) {
	for _, scheme := range []Scheme{ShareDiscard, PMQuiescence} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := DefaultClusterConfig(2)
			cfg.Scheme = scheme
			cfg.Quantum = 1_000_000
			c, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c.Start()
			for j := 1; j <= 2; j++ {
				c.Endpoints(myrinet.JobID(j))[0].Channel(1).Send(2000)
			}
			c.RunFor(100_000_000)
			for j := 1; j <= 2; j++ {
				d := c.Endpoints(myrinet.JobID(j))[1].Channel(0).Stats().Delivered
				if d != 2000 {
					t.Fatalf("job %d delivered %d/2000", j, d)
				}
			}
		})
	}
}

func TestDeliveryExactlyOnceUnderDiscard(t *testing.T) {
	// Retransmissions must not cause duplicate deliveries.
	cfg := DefaultClusterConfig(2)
	cfg.Scheme = ShareDiscard
	cfg.Quantum = 800_000
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	seen := make(map[uint64]int)
	c.Endpoints(1)[1].Channel(0).SetOnDeliver(func(seq uint64) { seen[seq]++ })
	c.Endpoints(1)[0].Channel(1).Send(1500)
	c.Endpoints(2)[0].Channel(1).Send(1500)
	c.RunFor(120_000_000)
	if len(seen) != 1500 {
		t.Fatalf("delivered %d distinct/1500", len(seen))
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d delivered %d times", seq, n)
		}
	}
}

func TestPMQuiescenceWaitRecorded(t *testing.T) {
	cfg := DefaultClusterConfig(2)
	cfg.Scheme = PMQuiescence
	cfg.Quantum = 2_000_000
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Endpoints(1)[0].Channel(1).Send(4000)
	c.Endpoints(2)[0].Channel(1).Send(4000)
	c.RunFor(30_000_000)
	rep := c.Collect()
	if rep.MeanWait == 0 {
		t.Fatal("quiescence flush should record nonzero wait on the sending node")
	}
}

func TestEfficiencyMetric(t *testing.T) {
	r := Report{Sent: 90, Retransmissions: 10, Delivered: 90}
	if e := r.Efficiency(); e != 0.9 {
		t.Fatalf("efficiency = %v", e)
	}
	if (Report{}).Efficiency() != 0 {
		t.Fatal("empty report efficiency should be 0")
	}
}

func TestClusterValidation(t *testing.T) {
	bad := DefaultClusterConfig(0)
	if _, err := NewCluster(bad); err == nil {
		t.Fatal("zero jobs should fail")
	}
	bad = DefaultClusterConfig(1)
	bad.Nodes = 1
	if _, err := NewCluster(bad); err == nil {
		t.Fatal("one node should fail")
	}
}

func TestRChannelValidation(t *testing.T) {
	eng := sim.NewEngine()
	net := myrinet.New(eng, myrinet.DefaultConfig(2))
	nic := lanai.New(eng, net, memmodel.Default(), lanai.DefaultConfig(0))
	cpu := sim.NewResource(eng, "c")
	bad := DefaultRChannelConfig()
	bad.Window = 0
	if _, err := NewRChannel(eng, nic, nil, cpu, bad, 1, 0, 1, 1, 100); err == nil {
		t.Fatal("zero window should fail")
	}
	bad = DefaultRChannelConfig()
	if _, err := NewRChannel(eng, nic, nil, cpu, bad, 1, 0, 1, 1, 0); err == nil {
		t.Fatal("zero payload should fail")
	}
	if _, err := NewRChannel(eng, nic, nil, cpu, bad, 1, 0, 1, 1, myrinet.MaxPayload+1); err == nil {
		t.Fatal("oversized payload should fail")
	}
}
