package altsched

import (
	"fmt"

	"gangfm/internal/lanai"
	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// Dynamic coscheduling (Sobalvarro, Pakin, Weihl & Chien; paper §5):
// instead of gang scheduling, an incoming message triggers the scheduling
// of the process it is destined to. The original work used FM version 1,
// which supports a single full-size context, and the competing workload
// was local sequential computation — so there is no buffer partitioning
// and no buffer switching at all: the parallel process always owns the
// card, and the scheduler only decides whether the *CPU* runs it or the
// local compute job.

// DynCosConfig tunes a dynamically coscheduled node.
type DynCosConfig struct {
	// Dispatch is the wakeup latency from message arrival to the
	// destination process running (interrupt + OS scheduler).
	Dispatch sim.Time
	// IdleTimeout deschedules the process after this long with no
	// communication activity, returning the CPU to the local job.
	IdleTimeout sim.Time
	// Channel tunes the reliable transport.
	Channel RChannelConfig
	// PayloadLen is the fixed packet payload.
	PayloadLen int
}

// DefaultDynCosConfig returns a 100 us dispatch and 1 ms idle timeout.
func DefaultDynCosConfig() DynCosConfig {
	return DynCosConfig{
		Dispatch:    20_000,  // 100 us
		IdleTimeout: 200_000, // 1 ms
		Channel:     DefaultRChannelConfig(),
		PayloadLen:  256,
	}
}

// DynCosNode is one node under dynamic coscheduling: a communicating
// process (always bound to the card) time-shares the CPU with a local
// sequential job; arrivals wake the communicator.
type DynCosNode struct {
	eng *sim.Engine
	nic *lanai.NIC
	cpu *sim.Resource
	cfg DynCosConfig

	EP *Endpoint

	wakePending bool
	idleTimer   sim.Event
	// Cached timer callbacks: onActivity and armIdleTimer run per arrival,
	// so fresh closures or method values there would allocate per message.
	wakeFn      func()
	idleCheckFn func()

	// CPU accounting for the local compute job: it runs whenever the
	// communicating process does not.
	computeSince  sim.Time
	ComputeCycles sim.Time
	Wakeups       uint64
}

// NewDynCosNode builds a node whose communicating process is rank of a
// two-rank job spanning nodes 0 and 1.
func NewDynCosNode(eng *sim.Engine, net *myrinet.Network, mem *memmodel.Model,
	id myrinet.NodeID, rank int, cfg DynCosConfig) (*DynCosNode, error) {
	nic := lanai.New(eng, net, mem, lanai.DefaultConfig(id))
	cpu := sim.NewResource(eng, fmt.Sprintf("dyncos-cpu%d", id))
	nicCfg := nic.Config()
	ctx, err := nic.Register(1, rank, nicCfg.SendSlots, nicCfg.RecvSlots, lanai.Hooks{})
	if err != nil {
		return nil, err
	}
	ep, err := NewEndpoint(eng, nic, cpu, cfg.Channel, 1, rank, []myrinet.NodeID{0, 1}, cfg.PayloadLen)
	if err != nil {
		return nil, err
	}
	n := &DynCosNode{eng: eng, nic: nic, cpu: cpu, cfg: cfg, EP: ep}
	n.wakeFn = func() {
		n.wakePending = false
		n.wake()
	}
	n.idleCheckFn = n.idleCheck
	ep.attach(ctx)
	// Wrap the arrival hook: accept/ack at NIC level, then wake the
	// process if it is descheduled.
	nic.DataFilter = func(p *myrinet.Packet) bool { return ep.accept(p) }
	nic.OnControl = func(p *myrinet.Packet) {
		if p.Type == myrinet.Ack {
			ep.handleAck(p)
		}
	}
	ctx.Hooks = lanai.Hooks{
		OnArrive: func(*lanai.Context) {
			n.onActivity()
			ep.drain()
		},
		OnSendSpace: func(*lanai.Context) { ep.pumpAll() },
	}
	n.computeSince = eng.Now()
	return n, nil
}

// onActivity wakes the communicating process on message arrival and
// re-arms the idle timer.
func (n *DynCosNode) onActivity() {
	n.armIdleTimer()
	if n.EP.Running() || n.wakePending {
		return
	}
	n.wakePending = true
	n.eng.Schedule(n.cfg.Dispatch, n.wakeFn)
}

// Wake schedules the communicating process immediately (a self-initiated
// wake, e.g. the application decided to send).
func (n *DynCosNode) Wake() { n.wake() }

func (n *DynCosNode) wake() {
	if n.EP.Running() {
		return
	}
	n.Wakeups++
	n.ComputeCycles += n.eng.Now() - n.computeSince
	n.EP.Resume()
	n.armIdleTimer()
}

// armIdleTimer (re)schedules the deschedule check.
func (n *DynCosNode) armIdleTimer() {
	n.idleTimer.Cancel()
	n.idleTimer = n.eng.Schedule(n.cfg.IdleTimeout, n.idleCheckFn)
}

// idleCheck deschedules the communicator when it has gone quiet.
func (n *DynCosNode) idleCheck() {
	if !n.EP.Running() {
		return
	}
	busy := n.EP.outstanding() > 0 || n.EP.ctx.RecvQ.Len() > 0
	for _, c := range n.EP.chans {
		if c.PendingSends() > 0 {
			busy = true
		}
	}
	if busy {
		n.armIdleTimer()
		return
	}
	n.EP.Suspend()
	n.computeSince = n.eng.Now()
}

// ComputeFraction returns the fraction of elapsed time the local compute
// job held the CPU.
func (n *DynCosNode) ComputeFraction() float64 {
	total := n.eng.Now()
	if total == 0 {
		return 1
	}
	c := n.ComputeCycles
	if !n.EP.Running() {
		c += n.eng.Now() - n.computeSince
	}
	return float64(c) / float64(total)
}
