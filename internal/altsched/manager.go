package altsched

import (
	"fmt"

	"gangfm/internal/core"
	"gangfm/internal/lanai"
	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// Scheme selects the alternative coordination strategy.
type Scheme int

const (
	// ShareDiscard switches without any flush: mismatched packets are
	// discarded by the card and the transport retransmits (SHARE, §5).
	ShareDiscard Scheme = iota
	// PMQuiescence flushes by quiescence: stop transmitting and wait for
	// acknowledgements of all outstanding packets, with no control
	// broadcasts (PM/SCore, §5).
	PMQuiescence
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case ShareDiscard:
		return "share-discard"
	case PMQuiescence:
		return "pm-quiescence"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// SwitchRecord captures one alternative-scheme context switch.
type SwitchRecord struct {
	Epoch uint64
	From  myrinet.JobID
	To    myrinet.JobID
	// Wait is the pre-copy wait: zero for ShareDiscard (no flush),
	// the quiescence wait for PMQuiescence.
	Wait sim.Time
	// Copy is the buffer-switch cost.
	Copy sim.Time
	// ValidRecv counts packets found in (and copied with) the receive
	// queue.
	ValidRecv int
	ValidSend int
}

// Total returns the switch's end-to-end cost.
func (r SwitchRecord) Total() sim.Time { return r.Wait + r.Copy }

// proc is a job's process under an alternative scheme.
type proc struct {
	job       myrinet.JobID
	rank      int
	ep        *Endpoint
	sendStore []*myrinet.Packet
	recvStore []*myrinet.Packet
}

// Manager is the per-node scheduler integration for the alternative
// schemes: it owns the single full-size hardware context and swaps buffers
// at switches, like the paper's scheme, but coordinates (or doesn't)
// according to the selected related-work strategy.
type Manager struct {
	eng    *sim.Engine
	nic    *lanai.NIC
	cpu    *sim.Resource
	mem    *memmodel.Model
	scheme Scheme
	mode   core.CopyMode

	hwCtx   *lanai.Context
	procs   map[myrinet.JobID]*proc
	current *proc

	history []SwitchRecord
}

// NewManager builds a manager owning the card's full buffers.
func NewManager(eng *sim.Engine, nic *lanai.NIC, cpu *sim.Resource, mem *memmodel.Model,
	scheme Scheme, mode core.CopyMode) (*Manager, error) {
	cfg := nic.Config()
	ctx, err := nic.Register(myrinet.NoJob, -1, cfg.SendSlots, cfg.RecvSlots, lanai.Hooks{})
	if err != nil {
		return nil, fmt.Errorf("altsched: %w", err)
	}
	m := &Manager{
		eng: eng, nic: nic, cpu: cpu, mem: mem,
		scheme: scheme, mode: mode,
		hwCtx: ctx,
		procs: make(map[myrinet.JobID]*proc),
	}
	// SHARE's card-level ID check: packets for a job other than the
	// currently scheduled one are discarded (and, since no ack is
	// produced, the sender's transport eventually retransmits them).
	// Under PM this filter never fires: quiescence guarantees nothing is
	// in flight across a switch.
	nic.DataFilter = func(p *myrinet.Packet) bool {
		pr := m.procs[p.Job]
		if pr == nil || pr != m.current {
			// PM nacks what it cannot receive, resolving the sender's
			// quiescence accounting; SHARE silently discards and lets
			// the sender's timers recover.
			if m.scheme == PMQuiescence {
				nack := nic.NewPacket()
				nack.Type = myrinet.Nack
				nack.Src, nack.Dst = nic.Node(), p.Src
				nack.Job, nack.SrcRank, nack.DstRank = p.Job, p.DstRank, p.SrcRank
				nack.MsgID = p.MsgID
				nic.SendRaw(nack)
			}
			return false
		}
		// NIC-level go-back-N accept/ack, before the DMA deposit.
		return pr.ep.accept(p)
	}
	nic.OnControl = func(p *myrinet.Packet) {
		pr := m.procs[p.Job]
		if pr == nil {
			return
		}
		switch p.Type {
		case myrinet.Ack:
			pr.ep.handleAck(p)
		case myrinet.Nack:
			pr.ep.handleNack(p)
		}
	}
	return m, nil
}

// History returns the recorded switches.
func (m *Manager) History() []SwitchRecord { return m.history }

// Current returns the scheduled job, or NoJob.
func (m *Manager) Current() myrinet.JobID {
	if m.current == nil {
		return myrinet.NoJob
	}
	return m.current.job
}

// AddProcess registers a job's process on this node.
func (m *Manager) AddProcess(ep *Endpoint) error {
	if _, dup := m.procs[ep.job]; dup {
		return fmt.Errorf("altsched: job %d already present", ep.job)
	}
	pr := &proc{job: ep.job, rank: ep.rank, ep: ep}
	m.procs[ep.job] = pr
	return nil
}

// Switch performs the scheme's context switch to job.
func (m *Manager) Switch(epoch uint64, job myrinet.JobID, done func(SwitchRecord)) error {
	next, ok := m.procs[job]
	if !ok {
		return fmt.Errorf("altsched: switch to unknown job %d", job)
	}
	rec := SwitchRecord{Epoch: epoch, From: m.Current(), To: job}
	if m.current != nil {
		m.current.ep.Suspend()
	}
	switch m.scheme {
	case ShareDiscard:
		// No flush at all: straight to the buffer copy. In-flight
		// packets race the switch and get discarded by the ID filter.
		m.copyAndBind(next, &rec, done)
	case PMQuiescence:
		// Stop transmitting (the suspend above stopped the pump; the
		// card keeps draining the send queue), then wait until every
		// transmitted packet has been acknowledged.
		t0 := m.eng.Now()
		m.quiesce(func() {
			rec.Wait = m.eng.Now() - t0
			m.copyAndBind(next, &rec, done)
		})
	default:
		return fmt.Errorf("altsched: unknown scheme %d", int(m.scheme))
	}
	return nil
}

// quiesce polls until the outgoing process has drained its send queue and
// every transmitted packet is resolved (acked or nacked).
func (m *Manager) quiesce(doneFn func()) {
	const pollInterval = 2000
	var check func()
	check = func() {
		if m.current == nil || (m.hwCtx.SendQ.Len() == 0 && m.current.ep.quiesced()) {
			doneFn()
			return
		}
		m.eng.Schedule(pollInterval, check)
	}
	check()
}

// copyAndBind performs the buffer switch (same cost model as the paper's
// scheme) and resumes the incoming process.
func (m *Manager) copyAndBind(next *proc, rec *SwitchRecord, done func(SwitchRecord)) {
	rec.ValidSend = m.hwCtx.SendQ.Len()
	rec.ValidRecv = m.hwCtx.RecvQ.Len()
	t0 := m.eng.Now()
	if m.current == next {
		next.ep.Resume()
		m.finish(rec, done)
		return
	}
	cost := core.BufferCopyCost(m.mem, m.mode,
		m.hwCtx.SendQ.Cap(), m.hwCtx.RecvQ.Cap(),
		rec.ValidSend, rec.ValidRecv,
		len(next.sendStore), len(next.recvStore),
		m.current != nil, true)
	m.cpu.Use(cost, func() {
		rec.Copy = m.eng.Now() - t0
		if m.current != nil {
			m.current.sendStore = m.hwCtx.SendQ.DrainTo(m.current.sendStore)
			m.current.recvStore = m.hwCtx.RecvQ.DrainTo(m.current.recvStore)
		} else {
			m.hwCtx.SendQ.Clear()
			m.hwCtx.RecvQ.Clear()
		}
		m.nic.SetIdentity(m.hwCtx, next.job, next.rank, lanai.Hooks{})
		next.ep.attach(m.hwCtx)
		m.hwCtx.SendQ.Load(next.sendStore)
		m.hwCtx.RecvQ.Load(next.recvStore)
		// Truncate rather than nil: the backing arrays are reused by the
		// DrainTo at this process's next deschedule.
		next.sendStore = next.sendStore[:0]
		next.recvStore = next.recvStore[:0]
		m.current = next
		next.ep.Resume()
		m.finish(rec, done)
	})
}

func (m *Manager) finish(rec *SwitchRecord, done func(SwitchRecord)) {
	m.history = append(m.history, *rec)
	if done != nil {
		done(*rec)
	}
}
