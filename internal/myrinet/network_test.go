package myrinet

import (
	"testing"
	"testing/quick"

	"gangfm/internal/sim"
)

func collector(got *[]*Packet) Handler {
	return HandlerFunc(func(p *Packet) { *got = append(*got, p) })
}

func TestPacketTypeStrings(t *testing.T) {
	for ty, want := range map[PacketType]string{
		Data: "Data", Refill: "Refill", Halt: "Halt", Ready: "Ready", Ack: "Ack", Nack: "Nack",
	} {
		if ty.String() != want {
			t.Errorf("PacketType %d String = %q, want %q", ty, ty.String(), want)
		}
	}
}

func TestControlClassification(t *testing.T) {
	if Data.IsControl() || Refill.IsControl() {
		t.Error("Data/Refill misclassified as control")
	}
	for _, ty := range []PacketType{Halt, Ready, Ack, Nack} {
		if !ty.IsControl() {
			t.Errorf("%v should be control", ty)
		}
	}
}

func TestWireSize(t *testing.T) {
	d := &Packet{Type: Data, PayloadLen: MaxPayload}
	if d.WireSize() != PacketSize {
		t.Errorf("full data packet wire size = %d, want %d", d.WireSize(), PacketSize)
	}
	h := &Packet{Type: Halt}
	if h.WireSize() != ControlSize {
		t.Errorf("halt wire size = %d, want %d", h.WireSize(), ControlSize)
	}
	r := &Packet{Type: Refill, PayloadLen: 0}
	if r.WireSize() != ControlSize {
		t.Errorf("refill wire size = %d, want %d", r.WireSize(), ControlSize)
	}
}

func TestDelivery(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(4))
	var got []*Packet
	net.Attach(1, collector(&got))
	net.Send(&Packet{Type: Data, Src: 0, Dst: 1, PayloadLen: 100})
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if eng.Now() == 0 {
		t.Fatal("delivery should take nonzero time")
	}
}

func TestFIFOPerRoute(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(2))
	var got []*Packet
	net.Attach(1, collector(&got))
	const n = 50
	for i := 0; i < n; i++ {
		net.Send(&Packet{Type: Data, Src: 0, Dst: 1, PayloadLen: 10 + i*7, MsgID: uint64(i)})
	}
	eng.Run()
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	for i, p := range got {
		if p.MsgID != uint64(i) {
			t.Fatalf("FIFO violated at %d: got msg %d", i, p.MsgID)
		}
		if p.Seq != uint64(i) {
			t.Fatalf("sequence stamping wrong at %d: %d", i, p.Seq)
		}
	}
}

// TestControlAfterDataFIFO verifies the property the flush protocol relies
// on: a Halt sent after data on the same route arrives after the data.
func TestControlAfterDataFIFO(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(2))
	var got []*Packet
	net.Attach(1, collector(&got))
	for i := 0; i < 10; i++ {
		net.Send(&Packet{Type: Data, Src: 0, Dst: 1, PayloadLen: MaxPayload})
	}
	net.Send(&Packet{Type: Halt, Src: 0, Dst: 1})
	eng.Run()
	if got[len(got)-1].Type != Halt {
		t.Fatal("halt overtook data packets")
	}
}

func TestSerializationShapesBandwidth(t *testing.T) {
	// 100 full packets at 160 MB/s should take ~100 * (1560B/160MBs).
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	net := New(eng, cfg)
	var got []*Packet
	net.Attach(1, collector(&got))
	const n = 100
	for i := 0; i < n; i++ {
		net.Send(&Packet{Type: Data, Src: 0, Dst: 1, PayloadLen: MaxPayload})
	}
	eng.Run()
	perPkt := sim.DefaultClock.CopyCycles(PacketSize, cfg.LinkMBs) + cfg.PerPacketGap
	want := sim.Time(n)*perPkt + cfg.SwitchLatency
	gotT := eng.Now()
	if gotT < want-10 || gotT > want+10 {
		t.Fatalf("last delivery at %d, want ~%d", gotT, want)
	}
}

func TestIndependentSourcesDontSerialize(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(4))
	var got []*Packet
	net.Attach(3, collector(&got))
	// Two different sources inject simultaneously; both arrive after a
	// single transmission time, not two.
	net.Send(&Packet{Type: Data, Src: 0, Dst: 3, PayloadLen: MaxPayload})
	net.Send(&Packet{Type: Data, Src: 1, Dst: 3, PayloadLen: MaxPayload})
	eng.Run()
	perPkt := sim.DefaultClock.CopyCycles(PacketSize, 160) + 40
	if eng.Now() > perPkt+200+20 {
		t.Fatalf("independent sources appear serialized: done at %d", eng.Now())
	}
}

func TestSelfSend(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(2))
	var got []*Packet
	net.Attach(0, collector(&got))
	net.Send(&Packet{Type: Data, Src: 0, Dst: 0, PayloadLen: 5})
	eng.Run()
	if len(got) != 1 {
		t.Fatal("self-send not delivered")
	}
}

// lossInjector is a local stand-in for the chaos layer (which cannot be
// imported here: it depends on this package). It drops matching packets
// with a fixed probability and can duplicate the first data packet.
type lossInjector struct {
	rng     *sim.Rand
	prob    float64
	control bool // also drop control packets
	dupOnce bool
	dupped  bool
}

func (l *lossInjector) Packet(_ sim.Time, p *Packet) Verdict {
	if l.dupOnce && !l.dupped && p.Type == Data {
		l.dupped = true
		return Verdict{Duplicate: true}
	}
	if !l.control && p.Type.IsControl() {
		return Verdict{}
	}
	if l.prob > 0 && l.rng.Bool(l.prob) {
		return Verdict{Drop: true}
	}
	return Verdict{}
}

func TestLossInjection(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(2))
	net.SetInjector(&lossInjector{rng: sim.NewRand(99), prob: 0.5})
	var dropped []*Packet
	net.OnDrop = func(p *Packet) { dropped = append(dropped, p) }
	var got []*Packet
	net.Attach(1, collector(&got))
	const n = 1000
	for i := 0; i < n; i++ {
		net.Send(&Packet{Type: Data, Src: 0, Dst: 1, PayloadLen: 10})
	}
	eng.Run()
	s := net.Stats()
	if s.Dropped[Data] == 0 {
		t.Fatal("no packets dropped at 50% loss")
	}
	if int(s.Dropped[Data])+len(got) != n {
		t.Fatalf("dropped %d + delivered %d != sent %d", s.Dropped[Data], len(got), n)
	}
	if len(dropped) != int(s.Dropped[Data]) {
		t.Fatalf("OnDrop observed %d drops, stats say %d", len(dropped), s.Dropped[Data])
	}
	// This injector exempts control packets, as the default chaos plans do.
	for i := 0; i < 100; i++ {
		net.Send(&Packet{Type: Halt, Src: 0, Dst: 1})
	}
	eng.Run()
	if net.Stats().Dropped[Halt] != 0 {
		t.Fatal("control packets dropped by a data-only injector")
	}
}

func TestInjectorDropsControl(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(2))
	net.SetInjector(&lossInjector{rng: sim.NewRand(5), prob: 0.9, control: true})
	net.Attach(1, HandlerFunc(func(*Packet) {}))
	for i := 0; i < 200; i++ {
		net.Send(&Packet{Type: Halt, Src: 0, Dst: 1})
	}
	eng.Run()
	if net.Stats().Dropped[Halt] == 0 {
		t.Fatal("a control-matching injector should drop control packets")
	}
}

func TestDuplicateInjection(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(2))
	net.SetInjector(&lossInjector{rng: sim.NewRand(1), dupOnce: true})
	var got []*Packet
	net.Attach(1, collector(&got))
	net.Send(&Packet{Type: Data, Src: 0, Dst: 1, Job: 4, PayloadLen: 10, MsgID: 9})
	if net.InFlight(4) != 2 {
		t.Fatalf("InFlight = %d with a duplicate on the wire, want 2", net.InFlight(4))
	}
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(got))
	}
	if got[0] == got[1] {
		t.Fatal("duplicate must be an independent packet, not the same pointer")
	}
	if got[1].MsgID != 9 {
		t.Fatal("duplicate lost its header fields")
	}
	if net.Stats().Duplicated[Data] != 1 {
		t.Fatalf("Duplicated[Data] = %d, want 1", net.Stats().Duplicated[Data])
	}
	if net.InFlight(4) != 0 {
		t.Fatalf("InFlight = %d after delivery, want 0", net.InFlight(4))
	}
}

func TestStatsAccounting(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(3))
	net.Attach(1, HandlerFunc(func(*Packet) {}))
	net.Send(&Packet{Type: Data, Src: 0, Dst: 1, PayloadLen: 100})
	net.Send(&Packet{Type: Refill, Src: 2, Dst: 1})
	eng.Run()
	s := net.Stats()
	if s.Sent[Data] != 1 || s.Sent[Refill] != 1 {
		t.Fatalf("sent counters wrong: %+v", s.Sent)
	}
	if s.Delivered[Data] != 1 || s.Delivered[Refill] != 1 {
		t.Fatalf("delivered counters wrong: %+v", s.Delivered)
	}
	wantBytes := uint64(100 + HeaderSize + ControlSize)
	if s.Bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", s.Bytes, wantBytes)
	}
}

func TestUnattachedHandlerDrops(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(2))
	net.Send(&Packet{Type: Data, Src: 0, Dst: 1, PayloadLen: 1})
	eng.Run()
	if net.Stats().Dropped[Data] != 1 {
		t.Fatal("packet to unattached node should count as dropped")
	}
}

func TestBadEndpointsPanic(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range destination")
		}
	}()
	net.Send(&Packet{Type: Data, Src: 0, Dst: 7})
}

// Property: for any interleaving of sizes, delivery order per route equals
// send order (FIFO), for every pair of nodes used.
func TestFIFOProperty(t *testing.T) {
	prop := func(sizes []uint16, dsts []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		eng := sim.NewEngine()
		net := New(eng, DefaultConfig(4))
		got := make(map[NodeID][]*Packet)
		for i := 0; i < 4; i++ {
			id := NodeID(i)
			net.Attach(id, HandlerFunc(func(p *Packet) { got[id] = append(got[id], p) }))
		}
		next := make(map[[2]NodeID]uint64)
		for i, sz := range sizes {
			dst := NodeID(1)
			if i < len(dsts) {
				dst = NodeID(dsts[i] % 4)
			}
			src := NodeID(0)
			if dst == 0 {
				src = 1
			}
			key := [2]NodeID{src, dst}
			net.Send(&Packet{
				Type: Data, Src: src, Dst: dst,
				PayloadLen: int(sz%MaxPayload) + 1,
				MsgID:      next[key],
			})
			next[key]++
		}
		eng.Run()
		for _, pkts := range got {
			perSrc := make(map[NodeID]uint64)
			for _, p := range pkts {
				if p.MsgID != perSrc[p.Src] {
					return false
				}
				perSrc[p.Src]++
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInFlightTracking(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(2))
	net.Attach(1, HandlerFunc(func(*Packet) {}))
	for i := 0; i < 5; i++ {
		net.Send(&Packet{Type: Data, Src: 0, Dst: 1, Job: 7, PayloadLen: 100})
	}
	if net.InFlight(7) != 5 {
		t.Fatalf("InFlight = %d after sends, want 5", net.InFlight(7))
	}
	eng.Run()
	if net.InFlight(7) != 0 {
		t.Fatalf("InFlight = %d after delivery, want 0", net.InFlight(7))
	}
	// Control packets are not tracked.
	net.Send(&Packet{Type: Halt, Src: 0, Dst: 1, Job: 7})
	if net.InFlight(7) != 0 {
		t.Fatal("control packets must not count as in-flight data")
	}
	eng.Run()
}

func TestInFlightAccountsDrops(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig(2))
	net.SetInjector(&lossInjector{rng: sim.NewRand(3), prob: 1.0})
	net.Attach(1, HandlerFunc(func(*Packet) {}))
	net.Send(&Packet{Type: Data, Src: 0, Dst: 1, Job: 3, PayloadLen: 10})
	eng.Run()
	if net.InFlight(3) != 0 {
		t.Fatalf("dropped packet left InFlight = %d", net.InFlight(3))
	}
}
