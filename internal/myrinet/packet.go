// Package myrinet models the ParPar data network: a Myrinet SAN connecting
// up to 16 compute nodes through a single crossbar switch.
//
// The model preserves the two properties the paper's flush protocol depends
// on (§3.2):
//
//  1. FIFO delivery — FM uses one precomputed route per (source,
//     destination) pair, and Myrinet links are FIFO, so a control packet
//     sent after data packets arrives after them.
//  2. No hardware broadcast — "broadcasts" (the halt/ready messages) are
//     implemented as a serial loop of point-to-point packets.
//
// Each node's injection port is a serially-reusable transmitter: packets
// from one source leave one at a time at link rate, which both shapes
// bandwidth and guarantees per-source ordering.
package myrinet

import "fmt"

// NodeID identifies a node on the data network (0-based).
type NodeID int

// JobID identifies a parallel job; it tags every data packet so the NIC can
// demultiplex to the right context (and, in the SHARE-style scheme, discard
// packets for descheduled jobs).
type JobID int

// NoJob is the JobID of packets not associated with any job (control
// traffic between the LANais themselves).
const NoJob JobID = -1

// PacketType distinguishes the wire-level packet classes. Control packets
// (Halt, Ready) travel between the Myrinet cards only, are specially
// tagged, are merely counted on receipt, and need neither buffering nor
// credits (paper §3.2).
type PacketType uint8

const (
	// Data carries a fragment of a user message. Consumes one credit.
	Data PacketType = iota
	// Refill is an explicit flow-control credit refill (paper §2.2).
	// Refills bypass the credit check themselves.
	Refill
	// Halt is the network-flush control message: "I will not send any
	// more packets (in this epoch)".
	Halt
	// Ready is the release control message: "I am ready to receive
	// messages for the new context".
	Ready
	// Ack is used only by the PM/SCore-style alternative scheme
	// (internal/altsched), which flushes by acking outstanding packets.
	Ack
	// Nack is used by the alternative schemes to reject a packet
	// (receiver out of space, or wrong job scheduled).
	Nack
)

// String returns the packet type name.
func (t PacketType) String() string {
	switch t {
	case Data:
		return "Data"
	case Refill:
		return "Refill"
	case Halt:
		return "Halt"
	case Ready:
		return "Ready"
	case Ack:
		return "Ack"
	case Nack:
		return "Nack"
	default:
		return fmt.Sprintf("PacketType(%d)", uint8(t))
	}
}

// IsControl reports whether the packet is LANai-to-LANai control traffic
// that is counted rather than buffered and never consumes credits.
func (t PacketType) IsControl() bool {
	return t == Halt || t == Ready || t == Ack || t == Nack
}

// Wire-format constants. FM's packet size is 1560 bytes (paper §4.2); the
// header takes a slice of that, leaving MaxPayload per packet.
const (
	// PacketSize is the fixed FM packet size in bytes, including header.
	PacketSize = 1560
	// HeaderSize covers routing, type, job/rank identification, message
	// id and fragment bookkeeping, and the piggybacked credit count.
	HeaderSize = 24
	// MaxPayload is the user payload capacity of one packet.
	MaxPayload = PacketSize - HeaderSize
	// ControlSize is the wire size of control packets (halt/ready/ack);
	// they carry only a header.
	ControlSize = HeaderSize
)

// Packet is one Myrinet packet. Packets are passed by pointer through the
// simulation and must not be mutated after Send.
type Packet struct {
	Type PacketType
	Src  NodeID
	Dst  NodeID

	// Job and rank bookkeeping for demultiplexing at the receiver.
	Job     JobID
	SrcRank int
	DstRank int

	// Message fragmentation: fragment Frag of NFrags of message MsgID
	// (per sender-receiver pair).
	MsgID  uint64
	Frag   int
	NFrags int

	// PayloadLen is the number of user bytes carried; Payload holds them
	// (may be nil for size-only workloads — the cost model keys off
	// PayloadLen, and tests that verify integrity set Payload).
	PayloadLen int
	Payload    []byte

	// Credits is the piggybacked refill count: how many packets from Dst
	// were consumed by Src since the last refill (paper §2.2). Explicit
	// Refill packets carry it alone.
	Credits int

	// Epoch tags Halt/Ready packets (and, in the SHARE-style scheme,
	// data packets) with the gang-scheduling switch round they belong
	// to, so unsynchronized nodes cannot mix rounds.
	Epoch uint64

	// Seq is a per-(src,dst) sequence number stamped by the network,
	// used by tests to verify FIFO delivery and by the alternative
	// schemes for go-back-N retransmission.
	Seq uint64

	// pooled marks a packet as allocated from (and currently owned by)
	// its network's free list. FreePacket recycles only pooled packets,
	// so externally constructed packets — tests build them with struct
	// literals and may hold them past delivery — are never reused, and a
	// double free is a no-op instead of a corruption.
	pooled bool
}

// WireSize returns the packet's size on the wire in bytes.
func (p *Packet) WireSize() int {
	if p.Type.IsControl() || p.Type == Refill {
		return ControlSize
	}
	return HeaderSize + p.PayloadLen
}

// String formats a compact packet description for traces and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %d->%d job=%d msg=%d frag=%d/%d len=%d cred=%d epoch=%d",
		p.Type, p.Src, p.Dst, p.Job, p.MsgID, p.Frag, p.NFrags, p.PayloadLen, p.Credits, p.Epoch)
}
