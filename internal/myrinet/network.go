package myrinet

import (
	"fmt"

	"gangfm/internal/sim"
)

// Handler receives packets delivered by the network. Each node attaches
// exactly one handler (its NIC).
type Handler interface {
	HandlePacket(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// HandlePacket calls f(p).
func (f HandlerFunc) HandlePacket(p *Packet) { f(p) }

// Config holds the network's physical parameters.
type Config struct {
	// Nodes is the number of attached compute nodes.
	Nodes int
	// LinkMBs is the per-direction link bandwidth in MB/s. Myrinet in
	// the paper's era is 1.28 Gb/s per direction = 160 MB/s.
	LinkMBs float64
	// SwitchLatency is the fixed propagation delay through the crossbar
	// (source NIC to destination NIC), in cycles.
	SwitchLatency sim.Time
	// PerPacketGap is the inter-packet gap at the injection port (route
	// header processing, sampling delay), in cycles.
	PerPacketGap sim.Time
}

// Verdict is the fault layer's decision for one packet at injection time.
// The zero Verdict delivers the packet normally.
type Verdict struct {
	// Drop loses the packet: it never reaches the destination handler
	// (FM assumes an insignificant SAN error rate; paper §2.2 describes
	// how a single loss corrupts the credit accounting forever).
	Drop bool
	// Duplicate delivers an extra copy right behind the original on the
	// same route.
	Duplicate bool
}

// Injector decides the fate of each transmitted packet — the seam the
// chaos layer plugs into (internal/chaos compiles fault plans into one).
// Implementations must be deterministic functions of their own seeded
// state and the packet sequence presented to them.
type Injector interface {
	Packet(now sim.Time, p *Packet) Verdict
}

// DefaultConfig returns the ParPar data-network parameters: 16 nodes on
// 160 MB/s links with ~1 µs of switch latency.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		LinkMBs:       160,
		SwitchLatency: 200, // 1 µs at 200 MHz
		PerPacketGap:  40,  // 200 ns
	}
}

// Stats aggregates network-level counters.
type Stats struct {
	Sent       map[PacketType]uint64
	Delivered  map[PacketType]uint64
	Dropped    map[PacketType]uint64
	Duplicated map[PacketType]uint64
	Bytes      uint64
}

func newStats() Stats {
	return Stats{
		Sent:       make(map[PacketType]uint64),
		Delivered:  make(map[PacketType]uint64),
		Dropped:    make(map[PacketType]uint64),
		Duplicated: make(map[PacketType]uint64),
	}
}

// nodeState holds the per-node slice of the fabric's mutable state. Under
// sharded execution node i's bucket is touched only by events running on
// the engine that owns node i (send-side counters by the source, delivery
// counters by the destination), so concurrent shard windows never contend;
// aggregate views (Stats, InFlight) merge the buckets and are only safe
// where the whole fabric is quiescent (single-engine runs, or the group's
// barrier-serialized global lane).
type nodeState struct {
	stats Stats
	// inFlight is this bucket's contribution to the per-job count of
	// data packets on the wire: +1 at the source when a packet is sent,
	// -1 wherever it lands (destination) or dies (source, for injected
	// drops). Individual buckets may go negative; the sum never does.
	inFlight map[JobID]int
	// pool recycles packet objects between their death points (delivery
	// consumption, drops) and the next send: the classic create-at-send,
	// drop-at-delivery free-list workload.
	pool []*Packet
}

// Network is the simulated Myrinet fabric.
type Network struct {
	eng      *sim.Engine
	cfg      Config
	clock    sim.Clock
	handlers []Handler
	// engs, when non-nil, maps each node to the shard engine that owns
	// it (see SetShardEngines); nil means n.eng owns everything.
	engs []*sim.Engine
	// ports serializes each node's injection link.
	ports []*sim.Resource
	// lastArrival enforces FIFO per (src,dst) route even under unusual
	// latency parameterizations.
	lastArrival [][]sim.Time
	seq         [][]uint64
	injector    Injector
	perNode     []nodeState

	// OnDrop, when set, observes every packet the fabric loses (injected
	// faults and deliveries to unattached nodes). The chaos credit
	// ledger hangs here.
	OnDrop func(p *Packet)

	// deliverFn is the one delivery callback shared by every scheduled
	// arrival, so the per-packet closure allocation disappears from the
	// hot path.
	deliverFn func(any)
}

// New constructs a network on the given engine.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic("myrinet: config needs at least one node")
	}
	n := &Network{
		eng:      eng,
		cfg:      cfg,
		clock:    sim.DefaultClock,
		handlers: make([]Handler, cfg.Nodes),
		ports:    make([]*sim.Resource, cfg.Nodes),
		perNode:  make([]nodeState, cfg.Nodes),
	}
	n.lastArrival = make([][]sim.Time, cfg.Nodes)
	n.seq = make([][]uint64, cfg.Nodes)
	for i := range n.ports {
		n.ports[i] = sim.NewResource(eng, fmt.Sprintf("port%d", i))
		n.lastArrival[i] = make([]sim.Time, cfg.Nodes)
		n.seq[i] = make([]uint64, cfg.Nodes)
		n.perNode[i].stats = newStats()
		n.perNode[i].inFlight = make(map[JobID]int)
	}
	n.deliverFn = func(a any) { n.deliver(a.(*Packet)) }
	return n
}

// SetShardEngines partitions the fabric across a shard group: engs[i] is
// the engine owning node i (every event touching node i's NIC state runs
// there). Must be called before any traffic; the injection-port resources
// are rebuilt on their owning engines.
func (n *Network) SetShardEngines(engs []*sim.Engine) {
	if len(engs) != n.cfg.Nodes {
		panic(fmt.Sprintf("myrinet: %d shard engines for %d nodes", len(engs), n.cfg.Nodes))
	}
	n.engs = engs
	for i := range n.ports {
		n.ports[i] = sim.NewResource(engs[i], fmt.Sprintf("port%d", i))
	}
}

// engFor returns the engine owning node id.
func (n *Network) engFor(id NodeID) *sim.Engine {
	if n.engs != nil {
		return n.engs[id]
	}
	return n.eng
}

// Lookahead returns the minimum delay between a send on one node and its
// observable effect on any other node: every cross-node arrival lands at
// least CopyCycles(1 byte) + PerPacketGap (serialization) + SwitchLatency
// cycles after Send. This is the conservative bound a sharded execution of
// the fabric may use as its window size (sim.GroupConfig.Lookahead).
func (n *Network) Lookahead() sim.Time {
	return n.cfg.SwitchLatency + n.cfg.PerPacketGap + 1
}

// NewPacket returns a zeroed packet from the free list (growing it when
// empty). Senders that build packets through NewPacket get them recycled
// at their death point — consumption, drop, or undeliverable — via
// FreePacket, keeping the steady-state send path allocation-free.
func (n *Network) NewPacket() *Packet { return n.NewPacketFrom(0) }

// poolIdx maps a node to its free-list bucket. Per-node pools exist so
// concurrent shards never share one; an unsharded run executes on a single
// engine, so every node shares bucket 0 — otherwise unidirectional traffic
// allocates at the source forever while packets pile up in the
// destination's pool.
func (n *Network) poolIdx(id NodeID) NodeID {
	if n.engs == nil {
		return 0
	}
	return id
}

// NewPacketFrom is NewPacket drawing from node src's free list — the form
// NIC send paths use so that concurrent shards never share a pool.
func (n *Network) NewPacketFrom(src NodeID) *Packet {
	pool := &n.perNode[n.poolIdx(src)].pool
	if ln := len(*pool); ln > 0 {
		p := (*pool)[ln-1]
		*pool = (*pool)[:ln-1]
		*p = Packet{pooled: true}
		return p
	}
	return &Packet{pooled: true}
}

// FreePacket returns a pool-allocated packet to the free list of the node
// where it died (its destination — delivery paths own the packet at its
// death point). Packets not from NewPacket (tests build them with struct
// literals) are left to the garbage collector, and freeing twice is a
// no-op, so every death point in the stack can call this unconditionally.
func (n *Network) FreePacket(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	n.freeTo(p.Dst, p)
}

func (n *Network) freeTo(id NodeID, p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	p.pooled = false
	pool := &n.perNode[n.poolIdx(id)].pool
	*pool = append(*pool, p)
}

// Nodes returns the number of attached nodes.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of the counters, merged across nodes. Under
// sharded execution call it only while the fabric is quiescent (between
// runs, or from the group's global lane).
func (n *Network) Stats() Stats {
	out := newStats()
	for i := range n.perNode {
		s := &n.perNode[i].stats
		for k, v := range s.Sent {
			out.Sent[k] += v
		}
		for k, v := range s.Delivered {
			out.Delivered[k] += v
		}
		for k, v := range s.Dropped {
			out.Dropped[k] += v
		}
		for k, v := range s.Duplicated {
			out.Duplicated[k] += v
		}
		out.Bytes += s.Bytes
	}
	return out
}

// SetInjector installs the fault layer consulted for every packet; nil
// removes it (the default: a perfectly reliable fabric).
func (n *Network) SetInjector(i Injector) { n.injector = i }

// Attach registers the handler (NIC) for node id.
func (n *Network) Attach(id NodeID, h Handler) {
	n.handlers[id] = h
}

// txCycles returns the serialization time for size bytes at link rate.
func (n *Network) txCycles(size int) sim.Time {
	return n.clock.CopyCycles(size, n.cfg.LinkMBs) + n.cfg.PerPacketGap
}

// Send injects the packet at the source's output port. The port serializes
// transmissions; the packet arrives at the destination handler after the
// serialization delay plus switch latency. Send returns the time at which
// the source's link becomes free again (i.e. when the NIC's send engine
// can start the next packet).
//
// Sending to self is delivered locally after the switch latency without
// occupying the injection port (FM short-circuits self sends).
func (n *Network) Send(p *Packet) sim.Time {
	if p.Src < 0 || int(p.Src) >= n.cfg.Nodes || p.Dst < 0 || int(p.Dst) >= n.cfg.Nodes {
		panic(fmt.Sprintf("myrinet: packet with bad endpoints %d->%d", p.Src, p.Dst))
	}
	src := n.engFor(p.Src)
	b := &n.perNode[p.Src]
	b.stats.Sent[p.Type]++
	b.stats.Bytes += uint64(p.WireSize())
	p.Seq = n.seq[p.Src][p.Dst]
	n.seq[p.Src][p.Dst]++

	if p.Type == Data {
		b.inFlight[p.Job]++
	}
	var v Verdict
	if n.injector != nil {
		// The injector is a single sequential machine; sharded runs that
		// install one must serialize (sim.Lockstep), which parpar enforces.
		v = n.injector.Packet(src.Now(), p)
	}
	if p.Src == p.Dst {
		if v.Drop {
			n.dropInjected(p)
			return src.Now()
		}
		src.ScheduleArg(n.cfg.SwitchLatency, n.deliverFn, p)
		if v.Duplicate {
			n.duplicate(p, src.Now()+n.cfg.SwitchLatency+1)
		}
		return src.Now()
	}

	tx := n.txCycles(p.WireSize())
	var arrival sim.Time
	linkFree := n.ports[p.Src].Use(tx, nil)
	arrival = linkFree + n.cfg.SwitchLatency
	// Per-route FIFO guard: never deliver before an earlier packet on
	// the same route.
	if last := n.lastArrival[p.Src][p.Dst]; arrival <= last {
		arrival = last + 1
	}
	n.lastArrival[p.Src][p.Dst] = arrival

	if v.Drop {
		n.dropInjected(p)
		return linkFree
	}
	// Cross-node arrivals are always >= Lookahead() cycles in the future
	// (serialization of at least one byte plus the inter-packet gap, then
	// the switch), which is exactly what lets a shard group run windows
	// of that width concurrently.
	src.CrossArgAt(n.engFor(p.Dst), arrival, n.deliverFn, p)
	if v.Duplicate {
		n.duplicate(p, arrival+1)
	}
	return linkFree
}

// dropInjected accounts a fault-layer loss: the packet leaves the sender's
// counters but never reaches a handler, taking its credits with it. It
// runs in source context, so the packet dies into the source's bucket.
func (n *Network) dropInjected(p *Packet) {
	b := &n.perNode[p.Src]
	b.stats.Dropped[p.Type]++
	if n.OnDrop != nil {
		n.OnDrop(p)
	}
	if p.Type == Data {
		b.inFlight[p.Job]--
	}
	n.freeTo(p.Src, p)
}

// duplicate schedules an extra copy of p arriving right behind the
// original on the same route (a shallow copy: the duplicate must be an
// independent packet so receiver-side bookkeeping sees two arrivals).
func (n *Network) duplicate(p *Packet, at sim.Time) {
	b := &n.perNode[p.Src]
	b.stats.Duplicated[p.Type]++
	if p.Type == Data {
		b.inFlight[p.Job]++
	}
	if last := n.lastArrival[p.Src][p.Dst]; at <= last {
		at = last + 1
	}
	n.lastArrival[p.Src][p.Dst] = at
	dup := n.NewPacketFrom(p.Src)
	*dup = *p
	dup.pooled = true
	n.engFor(p.Src).CrossArgAt(n.engFor(p.Dst), at, n.deliverFn, dup)
}

func (n *Network) deliver(p *Packet) {
	b := &n.perNode[p.Dst]
	if p.Type == Data {
		b.inFlight[p.Job]--
	}
	h := n.handlers[p.Dst]
	if h == nil {
		b.stats.Dropped[p.Type]++
		if n.OnDrop != nil {
			n.OnDrop(p)
		}
		n.FreePacket(p)
		return
	}
	b.stats.Delivered[p.Type]++
	h.HandlePacket(p)
}

// InFlight reports how many of the job's data packets are currently on the
// wire. The flush protocol's guarantee — the invariant the buffer switch
// depends on — is that this is zero for the halted job when every node has
// collected all halts. The count is summed across node buckets, so under
// sharded execution it is meaningful only at barriers (the audit tick runs
// on the global lane, which satisfies that).
func (n *Network) InFlight(job JobID) int {
	total := 0
	for i := range n.perNode {
		total += n.perNode[i].inFlight[job]
	}
	return total
}

// PortFreeAt returns when node id's injection port becomes idle — the NIC
// send engine uses this to pace its scanner.
func (n *Network) PortFreeAt(id NodeID) sim.Time {
	return n.ports[id].FreeAt()
}
