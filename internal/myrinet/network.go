package myrinet

import (
	"fmt"

	"gangfm/internal/sim"
)

// Handler receives packets delivered by the network. Each node attaches
// exactly one handler (its NIC).
type Handler interface {
	HandlePacket(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// HandlePacket calls f(p).
func (f HandlerFunc) HandlePacket(p *Packet) { f(p) }

// Config holds the network's physical parameters.
type Config struct {
	// Nodes is the number of attached compute nodes.
	Nodes int
	// LinkMBs is the per-direction link bandwidth in MB/s. Myrinet in
	// the paper's era is 1.28 Gb/s per direction = 160 MB/s.
	LinkMBs float64
	// SwitchLatency is the fixed propagation delay through the crossbar
	// (source NIC to destination NIC), in cycles.
	SwitchLatency sim.Time
	// PerPacketGap is the inter-packet gap at the injection port (route
	// header processing, sampling delay), in cycles.
	PerPacketGap sim.Time
	// LossProb, if nonzero, drops each packet independently with this
	// probability. FM assumes an insignificant SAN error rate; the
	// failure-injection tests exercise what happens when that assumption
	// breaks (paper §2.2: a single loss corrupts the credit accounting).
	LossProb float64
	// LoseControl extends loss injection to control packets too. By
	// default only Data/Refill packets are subject to loss, because the
	// interesting paper-level failure is credit desynchronization.
	LoseControl bool
	// Seed seeds the deterministic loss generator.
	Seed uint64
}

// DefaultConfig returns the ParPar data-network parameters: 16 nodes on
// 160 MB/s links with ~1 µs of switch latency.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		LinkMBs:       160,
		SwitchLatency: 200, // 1 µs at 200 MHz
		PerPacketGap:  40,  // 200 ns
		Seed:          1,
	}
}

// Stats aggregates network-level counters.
type Stats struct {
	Sent      map[PacketType]uint64
	Delivered map[PacketType]uint64
	Dropped   map[PacketType]uint64
	Bytes     uint64
}

func newStats() Stats {
	return Stats{
		Sent:      make(map[PacketType]uint64),
		Delivered: make(map[PacketType]uint64),
		Dropped:   make(map[PacketType]uint64),
	}
}

// Network is the simulated Myrinet fabric.
type Network struct {
	eng      *sim.Engine
	cfg      Config
	clock    sim.Clock
	handlers []Handler
	// ports serializes each node's injection link.
	ports []*sim.Resource
	// lastArrival enforces FIFO per (src,dst) route even under unusual
	// latency parameterizations.
	lastArrival [][]sim.Time
	seq         [][]uint64
	rng         *sim.Rand
	stats       Stats
	// inFlight tracks per-job data packets currently on the wire — the
	// quantity the flush protocol guarantees is zero when it completes.
	inFlight map[JobID]int
}

// New constructs a network on the given engine.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic("myrinet: config needs at least one node")
	}
	n := &Network{
		eng:      eng,
		cfg:      cfg,
		clock:    sim.DefaultClock,
		handlers: make([]Handler, cfg.Nodes),
		ports:    make([]*sim.Resource, cfg.Nodes),
		rng:      sim.NewRand(cfg.Seed),
		stats:    newStats(),
		inFlight: make(map[JobID]int),
	}
	n.lastArrival = make([][]sim.Time, cfg.Nodes)
	n.seq = make([][]uint64, cfg.Nodes)
	for i := range n.ports {
		n.ports[i] = sim.NewResource(eng, fmt.Sprintf("port%d", i))
		n.lastArrival[i] = make([]sim.Time, cfg.Nodes)
		n.seq[i] = make([]uint64, cfg.Nodes)
	}
	return n
}

// Nodes returns the number of attached nodes.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats { return n.stats }

// Attach registers the handler (NIC) for node id.
func (n *Network) Attach(id NodeID, h Handler) {
	n.handlers[id] = h
}

// txCycles returns the serialization time for size bytes at link rate.
func (n *Network) txCycles(size int) sim.Time {
	return n.clock.CopyCycles(size, n.cfg.LinkMBs) + n.cfg.PerPacketGap
}

// Send injects the packet at the source's output port. The port serializes
// transmissions; the packet arrives at the destination handler after the
// serialization delay plus switch latency. Send returns the time at which
// the source's link becomes free again (i.e. when the NIC's send engine
// can start the next packet).
//
// Sending to self is delivered locally after the switch latency without
// occupying the injection port (FM short-circuits self sends).
func (n *Network) Send(p *Packet) sim.Time {
	if p.Src < 0 || int(p.Src) >= n.cfg.Nodes || p.Dst < 0 || int(p.Dst) >= n.cfg.Nodes {
		panic(fmt.Sprintf("myrinet: packet with bad endpoints %d->%d", p.Src, p.Dst))
	}
	n.stats.Sent[p.Type]++
	n.stats.Bytes += uint64(p.WireSize())
	p.Seq = n.seq[p.Src][p.Dst]
	n.seq[p.Src][p.Dst]++

	if p.Type == Data {
		n.inFlight[p.Job]++
	}
	if p.Src == p.Dst {
		n.eng.Schedule(n.cfg.SwitchLatency, func() { n.deliver(p) })
		return n.eng.Now()
	}

	tx := n.txCycles(p.WireSize())
	var arrival sim.Time
	linkFree := n.ports[p.Src].Use(tx, nil)
	arrival = linkFree + n.cfg.SwitchLatency
	// Per-route FIFO guard: never deliver before an earlier packet on
	// the same route.
	if last := n.lastArrival[p.Src][p.Dst]; arrival <= last {
		arrival = last + 1
	}
	n.lastArrival[p.Src][p.Dst] = arrival

	drop := n.cfg.LossProb > 0 &&
		(n.cfg.LoseControl || !p.Type.IsControl()) &&
		n.rng.Bool(n.cfg.LossProb)
	if drop {
		n.stats.Dropped[p.Type]++
		n.landed(p)
		return linkFree
	}
	n.eng.ScheduleAt(arrival, func() { n.deliver(p) })
	return linkFree
}

func (n *Network) deliver(p *Packet) {
	n.landed(p)
	h := n.handlers[p.Dst]
	if h == nil {
		n.stats.Dropped[p.Type]++
		return
	}
	n.stats.Delivered[p.Type]++
	h.HandlePacket(p)
}

func (n *Network) landed(p *Packet) {
	if p.Type == Data {
		n.inFlight[p.Job]--
	}
}

// InFlight reports how many of the job's data packets are currently on the
// wire. The flush protocol's guarantee — the invariant the buffer switch
// depends on — is that this is zero for the halted job when every node has
// collected all halts.
func (n *Network) InFlight(job JobID) int { return n.inFlight[job] }

// PortFreeAt returns when node id's injection port becomes idle — the NIC
// send engine uses this to pace its scanner.
func (n *Network) PortFreeAt(id NodeID) sim.Time {
	return n.ports[id].FreeAt()
}
