// Package core implements the paper's contribution: the "glueFM" network
// management library (Table 1) that integrates the FM communication system
// with the ParPar cluster's gang scheduler, and the buffer-switching
// context switch (§3.2).
//
// The API mirrors Table 1 of the paper:
//
//	Initialization:   InitNode, AddNode, RemoveNode
//	Process control:  InitJob, EndJob
//	Context switch:   HaltNetwork, ContextSwitch, ReleaseNetwork
//
// plus SwitchTo, which runs the three switch stages in order and reports
// per-stage timings — the quantity Figures 7 and 9 measure.
package core

import (
	"fmt"

	"gangfm/internal/fm"
	"gangfm/internal/lanai"
	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// CopyMode selects the buffer-switch algorithm of §4.2.
type CopyMode int

const (
	// FullCopy copies the entire send and receive buffer regions,
	// regardless of occupancy (the paper's first implementation;
	// ≤85 ms / 17M cycles).
	FullCopy CopyMode = iota
	// ValidOnly scans the queues and copies only the valid packets (the
	// paper's improved algorithm; ≤12.5 ms / 2.5M cycles).
	ValidOnly
)

// String names the copy mode.
func (m CopyMode) String() string {
	switch m {
	case FullCopy:
		return "full-copy"
	case ValidOnly:
		return "valid-only"
	default:
		return fmt.Sprintf("CopyMode(%d)", int(m))
	}
}

// Process is the per-job process the manager schedules: the glueFM layer
// needs to stop/start it around switches and to bind it to the hardware
// context that will carry its traffic. fm.Endpoint satisfies it.
type Process interface {
	// Attach binds the process's library state to a hardware context
	// (FM_initialize's queue mapping, or a switch-in rebinding).
	Attach(ctx *lanai.Context)
	Suspend()
	Resume()
}

// SwitchStats records one context switch's three stage durations and the
// buffer occupancy found at the switch (Figures 7, 8, 9).
type SwitchStats struct {
	Epoch   uint64
	From    myrinet.JobID
	To      myrinet.JobID
	Halt    sim.Time // stage 1: network flush
	Copy    sim.Time // stage 2: buffer switch
	Release sim.Time // stage 3: refill/ready protocol

	// ValidSend and ValidRecv are the valid packet counts found in the
	// outgoing process's queues (Figure 8).
	ValidSend int
	ValidRecv int
	// RestoredSend/RestoredRecv are the packet counts loaded from the
	// incoming process's backing store.
	RestoredSend int
	RestoredRecv int
}

// Total returns the switch's end-to-end duration.
func (s SwitchStats) Total() sim.Time { return s.Halt + s.Copy + s.Release }

// backingStore holds a descheduled process's queue contents in pageable
// virtual memory (Figure 4). The digest is taken at save time and verified
// at restore: the store sits in pageable RAM across an arbitrary number of
// scheduling rounds, exactly where silent corruption would be invisible to
// the protocol itself.
type backingStore struct {
	send   []*myrinet.Packet
	recv   []*myrinet.Packet
	digest uint64
	stored bool
}

// queueDigest hashes every protocol-visible field of the parked packets
// (FNV-1a). Any bit that changes between save and restore changes the sum.
func queueDigest(send, recv []*myrinet.Packet) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	hash := func(pkts []*myrinet.Packet) {
		mix(uint64(len(pkts)))
		for _, p := range pkts {
			mix(uint64(p.Type))
			mix(uint64(p.Src))
			mix(uint64(p.Dst))
			mix(uint64(p.Job))
			mix(uint64(p.SrcRank))
			mix(uint64(p.DstRank))
			mix(p.MsgID)
			mix(uint64(p.Frag))
			mix(uint64(p.NFrags))
			mix(uint64(p.PayloadLen))
			mix(uint64(p.Credits))
			mix(p.Epoch)
			mix(p.Seq)
			for _, b := range p.Payload {
				h ^= uint64(b)
				h *= prime
			}
		}
	}
	hash(send)
	hash(recv)
	return h
}

// proc is the manager's record of one job's process on this node.
type proc struct {
	job   myrinet.JobID
	rank  int
	p     Process
	store backingStore
	// ctx is the process's dedicated hardware context in Partitioned
	// mode; nil in Switched mode (where the single hwCtx is shared).
	ctx *lanai.Context
}

// swState is the one in-flight three-stage switch. The scheduler issues at
// most one switch per node at a time, so SwitchTo/SwitchIdle stash their
// stage state here and drive the chain through callbacks prebuilt in
// NewManager — the steady-state switch allocates nothing. A second switch
// arriving while one is in flight falls back to the closure-based path.
type swState struct {
	busy       bool
	stats      SwitchStats
	next       *proc
	done       func(SwitchStats)
	t0, t1, t2 sim.Time
}

// Config parameterizes a node's manager.
type Config struct {
	// Policy selects Partitioned (original FM) or Switched (the paper).
	Policy fm.Policy
	// Mode selects the buffer-switch algorithm (Switched policy only).
	Mode CopyMode
	// MaxContexts is the gang matrix depth: the fixed maximum number of
	// processes per host the buffers must accommodate.
	MaxContexts int
	// Processors is the machine size p used in the credit formulas.
	Processors int
}

// Manager is the per-node glueFM instance, linked with the noded.
type Manager struct {
	eng *sim.Engine
	nic *lanai.NIC
	cpu *sim.Resource
	mem *memmodel.Model
	cfg Config

	alloc fm.Allocation

	// Switched-mode state: the one hardware context and the process it
	// is currently bound to.
	hwCtx   *lanai.Context
	current *proc

	procs map[myrinet.JobID]*proc

	topology map[myrinet.NodeID]bool

	lastEpoch uint64
	history   []SwitchStats
	inited    bool

	// sw and the *Fn fields implement the closure-free switch chain; the
	// functions are bound once in NewManager (a method value used as an
	// expression allocates at every evaluation).
	sw            swState
	haltDoneFn    func()
	copyWorkFn    func()
	copyDoneFn    func()
	releaseDoneFn func()

	// OnPreCopy, when set, is invoked at the start of every stage-2
	// buffer copy, after the flush completed and before any queue is
	// touched — the point where the protocol guarantees the outgoing
	// job has nothing in flight. Tests assert that invariant here.
	OnPreCopy func(from, to myrinet.JobID)
	// OnStore, when set, observes a job's queues right after they are
	// saved to the backing store (and after the integrity digest is
	// taken). The chaos layer's StoreCorrupt fault mutates them here.
	OnStore func(job myrinet.JobID, send, recv []*myrinet.Packet)
	// Audit, when set, receives invariant-violation reports (backing
	// store digest mismatches, deliveries to descheduled jobs).
	Audit func(invariant, detail string)
}

func (m *Manager) audit(invariant, detail string) {
	if m.Audit != nil {
		m.Audit(invariant, detail)
	}
}

// NewManager builds a manager; call InitNode before use (the split mirrors
// the paper's COMM_init_node, which loads the LANai control program when
// the noded starts).
func NewManager(eng *sim.Engine, nic *lanai.NIC, cpu *sim.Resource, mem *memmodel.Model, cfg Config) (*Manager, error) {
	nicCfg := nic.Config()
	alloc, err := fm.Allocate(cfg.Policy, nicCfg.SendSlots, nicCfg.RecvSlots, cfg.MaxContexts, cfg.Processors)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m := &Manager{
		eng: eng, nic: nic, cpu: cpu, mem: mem, cfg: cfg,
		alloc:    alloc,
		procs:    make(map[myrinet.JobID]*proc),
		topology: make(map[myrinet.NodeID]bool),
	}
	m.haltDoneFn = m.haltDone
	m.copyWorkFn = m.copyWork
	m.copyDoneFn = m.copyDone
	m.releaseDoneFn = m.releaseDone
	return m, nil
}

// Alloc returns the per-process buffer/credit allocation the policy
// produced — the value the FM library's flow control must be configured
// with (paper §3.3).
func (m *Manager) Alloc() fm.Allocation { return m.alloc }

// History returns the recorded switch statistics.
func (m *Manager) History() []SwitchStats { return m.history }

// ReserveHistory pre-grows the switch-history buffer to absorb at least n
// further switches without reallocating. Per-switch history retention is
// the one amortized allocator left in the steady-state rotation (a slice
// doubling every 2^k switches); a measurement that needs a strictly
// allocation-free window reserves its switch budget up front.
func (m *Manager) ReserveHistory(n int) {
	if need := len(m.history) + n; cap(m.history) < need {
		h := make([]SwitchStats, len(m.history), need)
		copy(h, m.history)
		m.history = h
	}
}

// StoredPackets reports how many packets a descheduled job has parked in
// its backing store (send, recv). A bound or unknown job reports zeros.
func (m *Manager) StoredPackets(job myrinet.JobID) (send, recv int) {
	pr, ok := m.procs[job]
	if !ok {
		return 0, 0
	}
	return len(pr.store.send), len(pr.store.recv)
}

// Contexts returns the number of communication contexts currently
// allocated on this node (live InitJob minus EndJob) — the residency an
// online scheduler's per-node cache tracks, and the leak detector for
// kill-during-load races.
func (m *Manager) Contexts() int { return len(m.procs) }

// Current returns the job currently bound to the buffers, or NoJob.
func (m *Manager) Current() myrinet.JobID {
	if m.current == nil {
		return myrinet.NoJob
	}
	return m.current.job
}

// InitNode initializes the LANai control program, the routing table and —
// in Switched mode — the single full-size hardware context
// (COMM_init_node).
func (m *Manager) InitNode() error {
	if m.inited {
		return fmt.Errorf("core: node %d already initialized", m.nic.Node())
	}
	for i := 0; i < m.nic.NetworkNodes(); i++ {
		m.topology[myrinet.NodeID(i)] = true
	}
	if m.cfg.Policy == fm.Switched {
		ctx, err := m.nic.Register(myrinet.NoJob, -1, m.alloc.SendSlots, m.alloc.RecvSlots, lanai.Hooks{})
		if err != nil {
			return fmt.Errorf("core: allocating the full-size context: %w", err)
		}
		m.hwCtx = ctx
		// The gang-scheduling invariant: under buffer switching, data for a
		// job may land only while that job owns the buffers. A deposit for
		// any other job means the flush/release barrier leaked traffic
		// across a switch.
		m.nic.OnDeposit = func(ctx *lanai.Context, p *myrinet.Packet) {
			if p.Job != m.Current() {
				m.audit("descheduled-delivery", fmt.Sprintf(
					"node %d: data for job %d deposited while job %d owns the buffers",
					m.nic.Node(), p.Job, m.Current()))
			}
		}
	}
	m.inited = true
	return nil
}

// AddNode records a node joining the topology (COMM_add_node). The
// simulated fabric is fixed-size, so this is routing-table bookkeeping
// with validation, as in the paper's implementation.
func (m *Manager) AddNode(id myrinet.NodeID) error {
	if m.topology[id] {
		return fmt.Errorf("core: node %d already in topology", id)
	}
	m.topology[id] = true
	return nil
}

// RemoveNode records a node leaving the topology (COMM_remove_node).
func (m *Manager) RemoveNode(id myrinet.NodeID) error {
	if !m.topology[id] {
		return fmt.Errorf("core: node %d not in topology", id)
	}
	delete(m.topology, id)
	return nil
}

// Nodes returns the current topology size.
func (m *Manager) Nodes() int { return len(m.topology) }

// InTopology reports whether a node is in the routing-table view.
func (m *Manager) InTopology(id myrinet.NodeID) bool { return m.topology[id] }

// InitJob allocates a communication context for a process about to be
// forked (COMM_init_job). In Partitioned mode this registers a dedicated
// hardware context with the divided buffer sizes. In Switched mode it
// creates the pageable backing store; the shared hardware context is bound
// only by the scheduler's SwitchTo, so that every node of the machine
// agrees — through the flush/release barrier — on which job owns the
// buffers before any process can send. Early packets (peers running before
// this job's process has mapped its queues, Fig 2) are still received,
// because binding precedes any peer's release, which precedes any send.
func (m *Manager) InitJob(job myrinet.JobID, rank int, p Process) error {
	if !m.inited {
		return fmt.Errorf("core: InitJob before InitNode")
	}
	if _, dup := m.procs[job]; dup {
		return fmt.Errorf("core: job %d already initialized on node %d", job, m.nic.Node())
	}
	pr := &proc{job: job, rank: rank, p: p}
	if m.cfg.Policy == fm.Partitioned {
		ctx, err := m.nic.Register(job, rank, m.alloc.SendSlots, m.alloc.RecvSlots, lanai.Hooks{})
		if err != nil {
			return fmt.Errorf("core: job %d context: %w", job, err)
		}
		p.Attach(ctx)
		pr.ctx = ctx
	}
	m.procs[job] = pr
	return nil
}

// EndJob releases a job's communication resources (COMM_end_job).
func (m *Manager) EndJob(job myrinet.JobID) error {
	pr, ok := m.procs[job]
	if !ok {
		return fmt.Errorf("core: EndJob for unknown job %d", job)
	}
	delete(m.procs, job)
	if pr.ctx != nil {
		m.nic.Unregister(pr.ctx)
	}
	if m.current == pr {
		if m.hwCtx != nil {
			m.nic.SetIdentity(m.hwCtx, myrinet.NoJob, -1, lanai.Hooks{})
			m.hwCtx.SendQ.Clear()
			m.hwCtx.RecvQ.Clear()
		}
		m.current = nil
	}
	// A kill can land while a buffer switch is in flight (the masterd's
	// kill ctrl races the rotation it triggered). If the dying proc is
	// the switch's incoming side, detach it: binding it after its
	// resources were released would re-register the dead job's identity
	// and inject its stored packets post-mortem. The switch completes as
	// an idle switch instead.
	if m.sw.busy && m.sw.next == pr {
		m.sw.next = nil
	}
	return nil
}

// bind points the shared hardware context at pr and loads its stored
// queue contents, verifying the save-time integrity digest first.
func (m *Manager) bind(pr *proc) {
	if pr.store.stored {
		if got := queueDigest(pr.store.send, pr.store.recv); got != pr.store.digest {
			m.audit("store-integrity", fmt.Sprintf(
				"node %d job %d backing store digest %#x, saved %#x — queues corrupted while paged out",
				m.nic.Node(), pr.job, got, pr.store.digest))
		}
		pr.store.stored = false
	}
	m.nic.SetIdentity(m.hwCtx, pr.job, pr.rank, lanai.Hooks{})
	pr.p.Attach(m.hwCtx)
	m.hwCtx.SendQ.Load(pr.store.send)
	m.hwCtx.RecvQ.Load(pr.store.recv)
	// Truncate rather than nil the store slices: the backing arrays are
	// reused by DrainTo at the next switch-out, so the steady-state save
	// allocates nothing.
	pr.store.send = pr.store.send[:0]
	pr.store.recv = pr.store.recv[:0]
	m.current = pr
}

// HaltNetwork runs stage 1 in isolation (COMM_halt_network): suspend the
// running process and flush the network for the given epoch. Most callers
// should use SwitchTo; the staged entry points exist to mirror Table 1 and
// for the stage-level benchmarks.
func (m *Manager) HaltNetwork(epoch uint64, done func()) error {
	if epoch <= m.lastEpoch && m.lastEpoch != 0 {
		return fmt.Errorf("core: epoch %d not after %d", epoch, m.lastEpoch)
	}
	m.lastEpoch = epoch
	if m.current != nil {
		m.current.p.Suspend()
	}
	m.nic.HaltNetwork(epoch, done)
	return nil
}

// ContextSwitch runs stage 2 in isolation (COMM_context_switch): swap the
// buffers from the current process to job's. The network must be halted.
func (m *Manager) ContextSwitch(job myrinet.JobID, done func(SwitchStats)) error {
	if m.cfg.Policy != fm.Switched {
		return fmt.Errorf("core: ContextSwitch requires the switched policy")
	}
	if !m.nic.Halted() {
		return fmt.Errorf("core: ContextSwitch with the network not halted")
	}
	next, ok := m.procs[job]
	if !ok {
		return fmt.Errorf("core: ContextSwitch to unknown job %d", job)
	}
	stats := SwitchStats{Epoch: m.lastEpoch, From: m.Current(), To: job}
	m.copyBuffers(next, &stats, func() { done(stats) })
	return nil
}

// ReleaseNetwork runs stage 3 in isolation (COMM_release_network).
func (m *Manager) ReleaseNetwork(epoch uint64, done func()) error {
	m.nic.ReleaseNetwork(epoch, func() {
		if m.current != nil {
			m.current.p.Resume()
		}
		if done != nil {
			done()
		}
	})
	return nil
}

// SwitchTo performs the complete three-stage context switch to job and
// reports the per-stage timings. All nodes of the cluster must call it
// with the same epoch (the masterd includes the round number in its
// broadcast). In Partitioned mode there is nothing to flush or copy: the
// switch is a plain SIGSTOP/SIGCONT pair.
func (m *Manager) SwitchTo(epoch uint64, job myrinet.JobID, done func(SwitchStats)) error {
	next, ok := m.procs[job]
	if !ok {
		return fmt.Errorf("core: switch to unknown job %d on node %d", job, m.nic.Node())
	}
	if m.cfg.Policy == fm.Partitioned {
		if m.current != nil && m.current != next {
			m.current.p.Suspend()
		}
		m.current = next
		next.p.Resume()
		if done != nil {
			done(SwitchStats{Epoch: epoch, To: job})
		}
		return nil
	}

	return m.haltStage(epoch, SwitchStats{Epoch: epoch, From: m.Current(), To: job}, next, done)
}

// SwitchIdle performs a context switch on a node that has no process in
// the incoming time slot: the node still participates in the network
// flush and release protocols (every LANai counts halts from every other
// node), and the outgoing process's buffers are saved, but nothing is
// restored.
func (m *Manager) SwitchIdle(epoch uint64, done func(SwitchStats)) error {
	if m.cfg.Policy == fm.Partitioned {
		if m.current != nil {
			m.current.p.Suspend()
			m.current = nil
		}
		if done != nil {
			done(SwitchStats{Epoch: epoch, To: myrinet.NoJob})
		}
		return nil
	}
	return m.haltStage(epoch, SwitchStats{Epoch: epoch, From: m.Current(), To: myrinet.NoJob}, nil, done)
}

// haltStage takes stats by value: the steady-state switch copies it into
// the prebuilt m.sw record, so nothing escapes; only the slow fallback
// lets its closures capture a heap copy.
func (m *Manager) haltStage(epoch uint64, stats SwitchStats, next *proc, done func(SwitchStats)) error {
	if m.sw.busy {
		return m.haltStageSlow(epoch, stats, next, done)
	}
	m.sw.busy = true
	m.sw.stats = stats
	m.sw.next = next
	m.sw.done = done
	m.sw.t0 = m.eng.Now()
	if epoch <= m.lastEpoch && m.lastEpoch != 0 {
		m.sw.busy, m.sw.next, m.sw.done = false, nil, nil
		return fmt.Errorf("core: epoch %d not after %d", epoch, m.lastEpoch)
	}
	m.lastEpoch = epoch
	if m.current != nil {
		m.current.p.Suspend()
	}
	m.nic.HaltNetwork(epoch, m.haltDoneFn)
	return nil
}

func (m *Manager) haltDone() {
	m.sw.stats.Halt = m.eng.Now() - m.sw.t0
	m.sw.t1 = m.eng.Now()
	st := &m.sw.stats
	if m.OnPreCopy != nil {
		m.OnPreCopy(st.From, st.To)
	}
	st.ValidSend = m.hwCtx.SendQ.Len()
	st.ValidRecv = m.hwCtx.RecvQ.Len()
	if m.current == m.sw.next {
		m.eng.Schedule(0, m.copyDoneFn)
		return
	}
	if m.sw.next != nil {
		st.RestoredSend = len(m.sw.next.store.send)
		st.RestoredRecv = len(m.sw.next.store.recv)
	}
	m.cpu.Use(m.copyCost(st, m.current != nil, m.sw.next != nil), m.copyWorkFn)
}

func (m *Manager) copyWork() {
	if m.current != nil {
		m.current.store.send = m.hwCtx.SendQ.DrainTo(m.current.store.send)
		m.current.store.recv = m.hwCtx.RecvQ.DrainTo(m.current.store.recv)
		m.current.store.digest = queueDigest(m.current.store.send, m.current.store.recv)
		m.current.store.stored = true
		if m.OnStore != nil {
			m.OnStore(m.current.job, m.current.store.send, m.current.store.recv)
		}
	} else {
		m.hwCtx.SendQ.Clear()
		m.hwCtx.RecvQ.Clear()
	}
	if m.sw.next != nil {
		m.bind(m.sw.next)
	} else {
		m.nic.SetIdentity(m.hwCtx, myrinet.NoJob, -1, lanai.Hooks{})
		m.current = nil
	}
	m.copyDone()
}

func (m *Manager) copyDone() {
	m.sw.stats.Copy = m.eng.Now() - m.sw.t1
	m.sw.t2 = m.eng.Now()
	m.nic.ReleaseNetwork(m.sw.stats.Epoch, m.releaseDoneFn)
}

func (m *Manager) releaseDone() {
	m.sw.stats.Release = m.eng.Now() - m.sw.t2
	if m.current != nil {
		m.current.p.Resume()
	}
	st := m.sw.stats
	done := m.sw.done
	m.sw.busy, m.sw.next, m.sw.done = false, nil, nil
	m.history = append(m.history, st)
	if done != nil {
		done(st)
	}
}

// haltStageSlow is the closure-based fallback for an overlapping switch
// request (the staged test APIs can produce one); the scheduler-driven
// steady state never takes it.
func (m *Manager) haltStageSlow(epoch uint64, stats SwitchStats, next *proc, done func(SwitchStats)) error {
	t0 := m.eng.Now()
	err := m.HaltNetwork(epoch, func() {
		stats.Halt = m.eng.Now() - t0
		t1 := m.eng.Now()
		m.copyBuffers(next, &stats, func() {
			stats.Copy = m.eng.Now() - t1
			t2 := m.eng.Now()
			m.nic.ReleaseNetwork(epoch, func() {
				stats.Release = m.eng.Now() - t2
				if m.current != nil {
					m.current.p.Resume()
				}
				m.history = append(m.history, stats)
				if done != nil {
					done(stats)
				}
			})
		})
	})
	return err
}

// copyBuffers performs the stage-2 buffer switch on the host CPU: save the
// outgoing process's queues to its backing store, then restore the
// incoming process's queues (Figure 4). A nil next unbinds the context
// (idle switch). Switching to the already-bound job costs nothing.
func (m *Manager) copyBuffers(next *proc, stats *SwitchStats, done func()) {
	if m.OnPreCopy != nil {
		m.OnPreCopy(stats.From, stats.To)
	}
	stats.ValidSend = m.hwCtx.SendQ.Len()
	stats.ValidRecv = m.hwCtx.RecvQ.Len()
	if m.current == next {
		m.eng.Schedule(0, done)
		return
	}
	if next != nil {
		stats.RestoredSend = len(next.store.send)
		stats.RestoredRecv = len(next.store.recv)
	}

	cost := m.copyCost(stats, m.current != nil, next != nil)
	m.cpu.Use(cost, func() {
		if m.current != nil {
			m.current.store.send = m.hwCtx.SendQ.DrainTo(m.current.store.send)
			m.current.store.recv = m.hwCtx.RecvQ.DrainTo(m.current.store.recv)
			m.current.store.digest = queueDigest(m.current.store.send, m.current.store.recv)
			m.current.store.stored = true
			if m.OnStore != nil {
				m.OnStore(m.current.job, m.current.store.send, m.current.store.recv)
			}
		} else {
			m.hwCtx.SendQ.Clear()
			m.hwCtx.RecvQ.Clear()
		}
		if next != nil {
			m.bind(next)
		} else {
			m.nic.SetIdentity(m.hwCtx, myrinet.NoJob, -1, lanai.Hooks{})
			m.current = nil
		}
		done()
	})
}

// copyCost computes the host cycles of the stage-2 copy. save and restore
// indicate which halves of the switch actually happen (an idle switch
// restores nothing; a first bind saves nothing).
func (m *Manager) copyCost(stats *SwitchStats, save, restore bool) sim.Time {
	return BufferCopyCost(m.mem, m.cfg.Mode,
		m.alloc.SendSlots, m.alloc.RecvSlots,
		stats.ValidSend, stats.ValidRecv,
		stats.RestoredSend, stats.RestoredRecv,
		save, restore)
}

// BufferCopyCost computes the host cycles of one buffer switch (Figure 4)
// under the given algorithm: the full send-queue region lives on the card
// behind the write-combined mapping, the receive queue in pinned host
// memory. It is exported so the alternative schemes (internal/altsched)
// charge exactly the same copy costs as the paper's scheme.
func BufferCopyCost(mem *memmodel.Model, mode CopyMode,
	sendSlots, recvSlots, validSend, validRecv, restoredSend, restoredRecv int,
	save, restore bool) sim.Time {
	sendRegion := sendSlots * myrinet.PacketSize
	recvRegion := recvSlots * myrinet.PacketSize
	var cost sim.Time
	switch mode {
	case FullCopy:
		// Entire regions, irrespective of occupancy.
		if save {
			cost += mem.CopyCycles(sendRegion, memmodel.NICWC, memmodel.HostRAM) +
				mem.CopyCycles(recvRegion, memmodel.PinnedRAM, memmodel.HostRAM)
		}
		if restore {
			cost += mem.CopyCycles(sendRegion, memmodel.HostRAM, memmodel.NICWC) +
				mem.CopyCycles(recvRegion, memmodel.HostRAM, memmodel.PinnedRAM)
		}
	case ValidOnly:
		// Scan the queues' slot headers, then copy only valid packets,
		// per-packet (the measured linear growth of Figure 9).
		cost = mem.ScanCycles(sendSlots, memmodel.NICWC) +
			mem.ScanCycles(recvSlots, memmodel.PinnedRAM)
		if save {
			cost += sim.Time(validSend)*mem.CopyCycles(myrinet.PacketSize, memmodel.NICWC, memmodel.HostRAM) +
				sim.Time(validRecv)*mem.CopyCycles(myrinet.PacketSize, memmodel.PinnedRAM, memmodel.HostRAM)
		}
		if restore {
			cost += sim.Time(restoredSend)*mem.CopyCycles(myrinet.PacketSize, memmodel.HostRAM, memmodel.NICWC) +
				sim.Time(restoredRecv)*mem.CopyCycles(myrinet.PacketSize, memmodel.HostRAM, memmodel.PinnedRAM)
		}
	default:
		panic("core: unknown copy mode")
	}
	return cost
}
