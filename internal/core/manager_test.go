package core

import (
	"fmt"
	"testing"

	"gangfm/internal/fm"
	"gangfm/internal/lanai"
	"gangfm/internal/memmodel"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

// cluster is a minimal multi-node, multi-job test rig: one NIC, CPU and
// manager per node; one fm.Endpoint per (job, node).
type cluster struct {
	eng  *sim.Engine
	net  *myrinet.Network
	mem  *memmodel.Model
	nics []*lanai.NIC
	cpus []*sim.Resource
	mgrs []*Manager
	// eps[job][node]
	eps map[myrinet.JobID][]*fm.Endpoint
}

func newCluster(t *testing.T, nodes int, cfg Config) *cluster {
	t.Helper()
	c := &cluster{
		eng: sim.NewEngine(),
		mem: memmodel.Default(),
		eps: make(map[myrinet.JobID][]*fm.Endpoint),
	}
	c.net = myrinet.New(c.eng, myrinet.DefaultConfig(nodes))
	for i := 0; i < nodes; i++ {
		nic := lanai.New(c.eng, c.net, c.mem, lanai.DefaultConfig(myrinet.NodeID(i)))
		cpu := sim.NewResource(c.eng, fmt.Sprintf("cpu%d", i))
		mgr, err := NewManager(c.eng, nic, cpu, c.mem, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.InitNode(); err != nil {
			t.Fatal(err)
		}
		c.nics = append(c.nics, nic)
		c.cpus = append(c.cpus, cpu)
		c.mgrs = append(c.mgrs, mgr)
	}
	return c
}

// addJob creates a job spanning all nodes and runs InitJob on each.
func (c *cluster) addJob(t *testing.T, job myrinet.JobID) []*fm.Endpoint {
	t.Helper()
	nodes := len(c.nics)
	nodeOf := make([]myrinet.NodeID, nodes)
	for i := range nodeOf {
		nodeOf[i] = myrinet.NodeID(i)
	}
	eps := make([]*fm.Endpoint, nodes)
	for i := 0; i < nodes; i++ {
		alloc := c.mgrs[i].Alloc()
		ep, err := fm.NewEndpoint(c.eng, c.nics[i], c.cpus[i], c.mem,
			fm.DefaultConfig(alloc.C0), job, i, nodeOf)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.mgrs[i].InitJob(job, i, ep); err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		// In switched mode the endpoint's context is the shared one,
		// bound when the job is scheduled; attach lazily via hooks.
		if ctx := c.nics[i].ContextFor(job); ctx != nil {
			ep.Attach(ctx)
		}
	}
	c.eps[job] = eps
	return eps
}

// switchAll runs SwitchTo on every node for the same epoch, with a small
// per-node skew, and returns the collected stats once all complete.
func (c *cluster) switchAll(t *testing.T, epoch uint64, job myrinet.JobID, skew sim.Time) []SwitchStats {
	t.Helper()
	stats := make([]SwitchStats, len(c.mgrs))
	done := 0
	for i, mgr := range c.mgrs {
		i, mgr := i, mgr
		c.eng.Schedule(sim.Time(i)*skew, func() {
			if err := mgr.SwitchTo(epoch, job, func(s SwitchStats) {
				stats[i] = s
				done++
			}); err != nil {
				t.Errorf("node %d switch: %v", i, err)
			}
		})
	}
	c.eng.Run()
	if done != len(c.mgrs) {
		t.Fatalf("only %d/%d nodes completed the switch", done, len(c.mgrs))
	}
	return stats
}

func defaultCfg(nodes int) Config {
	return Config{Policy: fm.Switched, Mode: ValidOnly, MaxContexts: 4, Processors: nodes}
}

func TestCopyModeString(t *testing.T) {
	if FullCopy.String() != "full-copy" || ValidOnly.String() != "valid-only" {
		t.Fatal("copy mode names")
	}
}

func TestInitNodeOnce(t *testing.T) {
	c := newCluster(t, 2, defaultCfg(2))
	if err := c.mgrs[0].InitNode(); err == nil {
		t.Fatal("second InitNode should fail")
	}
}

func TestTopologyBookkeeping(t *testing.T) {
	c := newCluster(t, 4, defaultCfg(4))
	m := c.mgrs[0]
	if m.Nodes() != 4 {
		t.Fatalf("Nodes() = %d, want 4", m.Nodes())
	}
	if err := m.AddNode(2); err == nil {
		t.Fatal("duplicate AddNode should fail")
	}
	if err := m.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 3 {
		t.Fatalf("Nodes() = %d after remove, want 3", m.Nodes())
	}
	if err := m.RemoveNode(3); err == nil {
		t.Fatal("double RemoveNode should fail")
	}
	if err := m.AddNode(3); err != nil {
		t.Fatal(err)
	}
}

func TestInitJobDuplicate(t *testing.T) {
	c := newCluster(t, 2, defaultCfg(2))
	c.addJob(t, 1)
	ep := c.eps[1][0]
	if err := c.mgrs[0].InitJob(1, 0, ep); err == nil {
		t.Fatal("duplicate InitJob should fail")
	}
}

func TestJobNotBoundUntilScheduled(t *testing.T) {
	// Binding follows the schedule, not InitJob order: the context is
	// bound only by a slot switch, so all nodes agree on the owner.
	c := newCluster(t, 2, defaultCfg(2))
	c.addJob(t, 1)
	if c.mgrs[0].Current() != myrinet.NoJob {
		t.Fatalf("Current() = %d before any switch, want NoJob", c.mgrs[0].Current())
	}
	c.switchAll(t, 1, 1, 0)
	if c.mgrs[0].Current() != 1 {
		t.Fatalf("Current() = %d after switch, want 1", c.mgrs[0].Current())
	}
	if c.nics[0].ContextFor(1) == nil {
		t.Fatal("no hardware context for job 1 after switch")
	}
}

func TestEarlyPacketsStoredBeforeProcessReady(t *testing.T) {
	// Paper Fig 2: the context is live before the process has mapped its
	// queues, so early packets are received and stored.
	c := newCluster(t, 2, defaultCfg(2))
	eps := c.addJob(t, 1)
	c.switchAll(t, 1, 1, 0)
	// Node 1's process is not yet at FM_initialize: model by suspending
	// its endpoint. Node 0's process is up and sending.
	eps[1].Suspend()
	eps[0].Resume()
	eps[0].Send(1, 300, nil)
	c.eng.Run()
	if got := c.nics[1].ContextFor(1).RecvQ.Len(); got != 1 {
		t.Fatalf("early packet not stored: RecvQ len = %d", got)
	}
	// When the process finally starts, it drains the stored packet.
	delivered := 0
	eps[1].SetHandler(func(_, _ int, _ []byte) { delivered++ })
	eps[1].Resume()
	c.eng.Run()
	if delivered != 1 {
		t.Fatal("stored packet not delivered after process start")
	}
}

func TestEndJob(t *testing.T) {
	c := newCluster(t, 2, defaultCfg(2))
	c.addJob(t, 1)
	c.switchAll(t, 1, 1, 0)
	if err := c.mgrs[0].EndJob(1); err != nil {
		t.Fatal(err)
	}
	if c.mgrs[0].Current() != myrinet.NoJob {
		t.Fatal("EndJob of the bound job should unbind")
	}
	if err := c.mgrs[0].EndJob(1); err == nil {
		t.Fatal("EndJob of unknown job should fail")
	}
}

func TestThreeStageSwitch(t *testing.T) {
	c := newCluster(t, 2, defaultCfg(2))
	c.addJob(t, 1)
	c.addJob(t, 2)
	c.switchAll(t, 1, 1, 0)
	stats := c.switchAll(t, 2, 2, 1000)
	for i, s := range stats {
		if s.From != 1 || s.To != 2 {
			t.Fatalf("node %d: switch %d->%d, want 1->2", i, s.From, s.To)
		}
		if s.Halt == 0 || s.Copy == 0 || s.Release == 0 {
			t.Fatalf("node %d: zero-duration stage: %+v", i, s)
		}
	}
	for i, m := range c.mgrs {
		if m.Current() != 2 {
			t.Fatalf("node %d bound to %d, want 2", i, m.Current())
		}
		if len(m.History()) != 2 {
			t.Fatalf("node %d history = %d entries", i, len(m.History()))
		}
	}
}

func TestSwitchEpochMonotonic(t *testing.T) {
	c := newCluster(t, 1, defaultCfg(1))
	c.addJob(t, 1)
	c.addJob(t, 2)
	c.switchAll(t, 5, 2, 0)
	err := c.mgrs[0].SwitchTo(5, 1, nil)
	if err == nil {
		t.Fatal("reused epoch should fail")
	}
	err = c.mgrs[0].SwitchTo(3, 1, nil)
	if err == nil {
		t.Fatal("regressing epoch should fail")
	}
}

func TestSwitchToUnknownJob(t *testing.T) {
	c := newCluster(t, 1, defaultCfg(1))
	if err := c.mgrs[0].SwitchTo(1, 9, nil); err == nil {
		t.Fatal("switch to unknown job should fail")
	}
}

func TestContextSwitchRequiresHalt(t *testing.T) {
	c := newCluster(t, 1, defaultCfg(1))
	c.addJob(t, 1)
	if err := c.mgrs[0].ContextSwitch(1, func(SwitchStats) {}); err == nil {
		t.Fatal("ContextSwitch without halt should fail")
	}
}

func TestStagedAPIMirrorsTable1(t *testing.T) {
	// Drive the three stages separately, as a noded would with the raw
	// Table 1 functions.
	c := newCluster(t, 2, defaultCfg(2))
	c.addJob(t, 1)
	c.addJob(t, 2)
	var switched, released [2]bool
	for i, m := range c.mgrs {
		i, m := i, m
		if err := m.HaltNetwork(1, func() {
			if err := m.ContextSwitch(2, func(SwitchStats) {
				switched[i] = true
				if err := m.ReleaseNetwork(1, func() { released[i] = true }); err != nil {
					t.Errorf("release: %v", err)
				}
			}); err != nil {
				t.Errorf("context switch: %v", err)
			}
		}); err != nil {
			t.Fatalf("halt: %v", err)
		}
	}
	c.eng.Run()
	for i := range c.mgrs {
		if !switched[i] || !released[i] {
			t.Fatalf("node %d staged switch incomplete", i)
		}
		if c.mgrs[i].Current() != 2 {
			t.Fatalf("node %d current = %d", i, c.mgrs[i].Current())
		}
	}
}

// TestBufferContentsSurviveSwitch is the Figure 4 correctness property:
// packets in the queues at switch-out are restored at switch-in and
// delivered exactly once, in order.
func TestBufferContentsSurviveSwitch(t *testing.T) {
	for _, mode := range []CopyMode{FullCopy, ValidOnly} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := defaultCfg(2)
			cfg.Mode = mode
			c := newCluster(t, 2, cfg)
			a := c.addJob(t, 1)
			b := c.addJob(t, 2)

			var gotA []int
			a[1].SetHandler(func(_, size int, _ []byte) { gotA = append(gotA, size) })
			b[1].SetHandler(func(_, _ int, _ []byte) {})
			c.switchAll(t, 1, 1, 0) // bind job 1 everywhere
			a[1].Suspend()          // receiver busy elsewhere: packets pile up in RecvQ

			for i := 1; i <= 8; i++ {
				if !a[0].Send(1, i, nil) {
					t.Fatalf("send %d rejected", i)
				}
			}
			c.eng.Run()
			backlog := c.nics[1].ContextFor(1).RecvQ.Len()
			if backlog != 8 {
				t.Fatalf("backlog before switch = %d, want 8", backlog)
			}

			// Switch to job 2: job 1's packets go to the backing store.
			stats := c.switchAll(t, 2, 2, 500)
			if stats[1].ValidRecv != 8 {
				t.Fatalf("switch saw %d valid recv packets, want 8", stats[1].ValidRecv)
			}
			if len(gotA) != 0 {
				t.Fatal("job 1 packets delivered while job 2 scheduled")
			}

			// Switch back: restored packets must drain to the handler.
			stats = c.switchAll(t, 3, 1, 500)
			if stats[1].RestoredRecv != 8 {
				t.Fatalf("restore loaded %d packets, want 8", stats[1].RestoredRecv)
			}
			a[1].Resume()
			c.eng.Run()
			if len(gotA) != 8 {
				t.Fatalf("delivered %d messages after restore, want 8", len(gotA))
			}
			for i, sz := range gotA {
				if sz != i+1 {
					t.Fatalf("order violated after restore: %v", gotA)
				}
			}
		})
	}
}

// TestTrafficContinuesAcrossSwitches runs a continuous stream through
// several full rotations and verifies nothing is lost or reordered — the
// paper's "robust, withstood thorough testing without packet loss".
func TestTrafficContinuesAcrossSwitches(t *testing.T) {
	c := newCluster(t, 2, defaultCfg(2))
	a := c.addJob(t, 1)
	b := c.addJob(t, 2)

	type stream struct {
		sent, rcvd int
	}
	streams := map[myrinet.JobID]*stream{1: {}, 2: {}}
	for job, eps := range map[myrinet.JobID][]*fm.Endpoint{1: a, 2: b} {
		job, eps := job, eps
		st := streams[job]
		eps[1].SetHandler(func(_, size int, _ []byte) {
			st.rcvd++
			if size != st.rcvd {
				t.Errorf("job %d: message %d arrived with size %d", job, st.rcvd, size)
			}
		})
		var fill func()
		fill = func() {
			for st.sent < 200 && eps[0].Send(1, st.sent+1, nil) {
				st.sent++
			}
		}
		eps[0].SetOnCanSend(fill)
		fill()
	}
	c.switchAll(t, 1, 1, 0) // activate job 1

	quantum := sim.DefaultClock.FromDuration(5_000_000) // 5 ms in ns
	jobs := []myrinet.JobID{2, 1, 2, 1, 2, 1}
	for round, j := range jobs {
		c.eng.RunUntil(c.eng.Now() + quantum)
		c.switchAll(t, uint64(round+2), j, 200)
	}
	c.eng.Run()
	for job, st := range streams {
		if st.rcvd != 200 {
			t.Errorf("job %d: received %d/200 messages (sent %d)", job, st.rcvd, st.sent)
		}
	}
}

func TestFullCopyCostMatchesPaper(t *testing.T) {
	// Full copy on the paper's geometry: "less than 85 msecs (17,000,000
	// cycles)" and independent of occupancy.
	cfg := Config{Policy: fm.Switched, Mode: FullCopy, MaxContexts: 4, Processors: 16}
	c := newCluster(t, 2, cfg)
	c.addJob(t, 1)
	c.addJob(t, 2)
	c.switchAll(t, 1, 1, 0)
	stats := c.switchAll(t, 2, 2, 0)
	copyCycles := stats[0].Copy
	if copyCycles > 17_000_000 || copyCycles < 10_000_000 {
		t.Fatalf("full copy = %d cycles, paper says <17M (and in that order)", copyCycles)
	}
}

func TestValidOnlyCostMatchesPaper(t *testing.T) {
	// Improved algorithm with near-empty buffers: "less than 12.5 msecs
	// (2,500,000 cycles)". Empty queues should be far below even that.
	c := newCluster(t, 2, defaultCfg(2))
	c.addJob(t, 1)
	c.addJob(t, 2)
	c.switchAll(t, 1, 1, 0)
	stats := c.switchAll(t, 2, 2, 0)
	if stats[0].Copy > 2_500_000 {
		t.Fatalf("valid-only copy = %d cycles, paper says <2.5M", stats[0].Copy)
	}
}

func TestValidOnlyLinearInPackets(t *testing.T) {
	// Figure 9: "the linear growth in the copying time is correlated with
	// the linear growth of the number of packets found in the buffer".
	cost := func(backlog int) sim.Time {
		c := newCluster(t, 2, defaultCfg(2))
		a := c.addJob(t, 1)
		c.addJob(t, 2)
		c.switchAll(t, 1, 1, 0)
		a[1].Suspend()
		for i := 0; i < backlog; i++ {
			a[0].Send(1, 100, nil)
		}
		c.eng.Run()
		stats := c.switchAll(t, 2, 2, 0)
		if stats[1].ValidRecv != backlog {
			t.Fatalf("backlog %d not found at switch: %d", backlog, stats[1].ValidRecv)
		}
		return stats[1].Copy
	}
	c0 := cost(0)
	c5 := cost(5)
	c10 := cost(10)
	if !(c0 < c5 && c5 < c10) {
		t.Fatalf("copy cost not increasing: %d %d %d", c0, c5, c10)
	}
	// Linearity: increments per 5 packets should match.
	d1, d2 := c5-c0, c10-c5
	diff := int64(d1) - int64(d2)
	if diff < 0 {
		diff = -diff
	}
	if diff > int64(d1)/10+1 {
		t.Fatalf("copy cost not linear: increments %d vs %d", d1, d2)
	}
}

func TestFullCopyConstantInPackets(t *testing.T) {
	// Figure 7: the full buffer switch does not depend on occupancy.
	cost := func(backlog int) sim.Time {
		cfg := defaultCfg(2)
		cfg.Mode = FullCopy
		c := newCluster(t, 2, cfg)
		a := c.addJob(t, 1)
		c.addJob(t, 2)
		c.switchAll(t, 1, 1, 0)
		a[1].Suspend()
		for i := 0; i < backlog; i++ {
			a[0].Send(1, 100, nil)
		}
		c.eng.Run()
		return c.switchAll(t, 2, 2, 0)[1].Copy
	}
	if cost(0) != cost(20) {
		t.Fatal("full copy cost should be occupancy-independent")
	}
}

func TestPartitionedSwitchIsCheap(t *testing.T) {
	cfg := Config{Policy: fm.Partitioned, MaxContexts: 4, Processors: 2}
	c := newCluster(t, 2, cfg)
	a := c.addJob(t, 1)
	b := c.addJob(t, 2)
	c.switchAll(t, 1, 1, 0)
	if !a[0].Running() {
		t.Fatal("switch did not resume job 1")
	}
	stats := c.switchAll(t, 2, 2, 0)
	for _, s := range stats {
		if s.Halt != 0 || s.Copy != 0 || s.Release != 0 {
			t.Fatalf("partitioned switch should have zero-cost stages: %+v", s)
		}
	}
	if !b[0].Running() || a[0].Running() {
		t.Fatal("partitioned switch did not suspend/resume correctly")
	}
}

func TestPartitionedContextsCoexist(t *testing.T) {
	// In partitioned mode every job keeps its own live hardware context.
	cfg := Config{Policy: fm.Partitioned, MaxContexts: 4, Processors: 2}
	c := newCluster(t, 2, cfg)
	c.addJob(t, 1)
	c.addJob(t, 2)
	for i := 0; i < 2; i++ {
		if c.nics[i].ContextFor(1) == nil || c.nics[i].ContextFor(2) == nil {
			t.Fatal("both jobs should have hardware contexts")
		}
	}
	// Queue capacities are the divided sizes.
	ctx := c.nics[0].ContextFor(1)
	if ctx.SendQ.Cap() != 252/4 || ctx.RecvQ.Cap() != 668/4 {
		t.Fatalf("partitioned context sized %d/%d, want %d/%d",
			ctx.SendQ.Cap(), ctx.RecvQ.Cap(), 252/4, 668/4)
	}
}

func TestHaltGrowsWithSkew(t *testing.T) {
	// The halt stage waits for the slowest node (Figure 7's growth with
	// node count comes from notification skew).
	run := func(skew sim.Time) sim.Time {
		c := newCluster(t, 4, defaultCfg(4))
		c.addJob(t, 1)
		c.addJob(t, 2)
		stats := c.switchAll(t, 1, 2, skew)
		return stats[0].Halt // node 0 halts first, waits longest
	}
	small, large := run(100), run(50_000)
	if large <= small {
		t.Fatalf("halt time should grow with skew: %d vs %d", small, large)
	}
	if large < 3*50_000 {
		t.Fatalf("node 0 should wait for node 3's skew: halt=%d", large)
	}
}

// TestBackingStoreDigestDetectsCorruption: a packet mutated while parked in
// the backing store (via the OnStore hook, standing in for silent memory
// corruption) is reported at restore time; clean round trips are not.
func TestBackingStoreDigestDetectsCorruption(t *testing.T) {
	for _, corrupt := range []bool{false, true} {
		c := newCluster(t, 2, defaultCfg(2))
		c.addJob(t, 1)
		c.addJob(t, 2)
		var violations []string
		for i, mgr := range c.mgrs {
			if corrupt && i == 0 {
				mgr.OnStore = func(job myrinet.JobID, send, recv []*myrinet.Packet) {
					if job == 1 && len(recv) > 0 {
						recv[0].Seq ^= 0xDEAD
					}
				}
			}
			mgr.Audit = func(inv, detail string) {
				violations = append(violations, inv)
			}
		}
		c.switchAll(t, 1, 1, 0)
		// Park data in job 1's receive queue on node 0, then switch away so
		// it is saved to the backing store.
		c.eps[1][0].Suspend()
		c.eps[1][1].Send(0, 2000, nil)
		c.eng.Run()
		c.switchAll(t, 2, 2, 0)
		c.switchAll(t, 3, 1, 0)
		if corrupt && len(violations) == 0 {
			t.Fatal("corrupted backing store not detected at restore")
		}
		if corrupt {
			for _, v := range violations {
				if v != "store-integrity" {
					t.Fatalf("unexpected violation %q", v)
				}
			}
		}
		if !corrupt && len(violations) != 0 {
			t.Fatalf("clean round trip reported violations: %v", violations)
		}
	}
}
