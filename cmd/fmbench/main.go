// Command fmbench runs one-off benchmarks on the simulated ParPar/FM
// stack, in the spirit of the benchmark programs shipped with the FM
// distribution (paper §4.1). Unlike cmd/gangsim (which regenerates the
// paper's figures), fmbench exposes the knobs directly.
//
// Examples:
//
//	fmbench -bench bandwidth -msgs 10000 -size 16384
//	fmbench -bench bandwidth -policy partitioned -slots 8   # the wedge
//	fmbench -bench bandwidth -policy partitioned -loss 0.01 # §2.2 audit
//	fmbench -bench latency -msgs 2000 -size 64
//	fmbench -bench alltoall -nodes 8 -msgs 500 -jobs 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"gangfm"
	"gangfm/internal/core"
	"gangfm/internal/fm"
	"gangfm/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// run is the whole benchmark driver, separated from main so the smoke
// tests can execute it in-process.
func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("fmbench", flag.ContinueOnError)
	var (
		bench   = fs.String("bench", "bandwidth", "bandwidth | latency | alltoall")
		nodes   = fs.Int("nodes", 16, "cluster size")
		policy  = fs.String("policy", "switched", "switched | partitioned")
		mode    = fs.String("copy", "valid", "valid | full (buffer switch algorithm)")
		slots   = fs.Int("slots", 4, "gang slot-table depth (buffer divisor when partitioned)")
		jobs    = fs.Int("jobs", 1, "identical jobs to gang-schedule")
		msgs    = fs.Int("msgs", 5000, "messages (per sender / per peer)")
		size    = fs.Int("size", 16384, "message size in bytes")
		quantum = fs.Duration("quantum", time.Second, "gang-scheduling quantum (virtual)")
		loss    = fs.Float64("loss", 0, "packet loss probability on the data network")
		seed    = fs.Uint64("seed", 1, "simulation seed")
		limit   = fs.Duration("limit", 60*time.Second, "virtual-time limit before declaring a wedge")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := gangfm.DefaultClusterConfig(*nodes)
	cfg.Slots = *slots
	cfg.Seed = *seed
	cfg.Quantum = sim.DefaultClock.FromDuration(*quantum)
	switch *policy {
	case "switched":
		cfg.Policy = fm.Switched
	case "partitioned":
		cfg.Policy = fm.Partitioned
	default:
		fmt.Fprintf(out, "unknown policy %q\n", *policy)
		return 2
	}
	switch *mode {
	case "valid":
		cfg.Mode = core.ValidOnly
	case "full":
		cfg.Mode = core.FullCopy
	default:
		fmt.Fprintf(out, "unknown copy mode %q\n", *mode)
		return 2
	}
	if *loss > 0 {
		plan := gangfm.Loss(*seed, *loss)
		cfg.Chaos = &plan
	}

	cluster, err := gangfm.NewCluster(cfg)
	if err != nil {
		fmt.Fprintln(out, err)
		return 1
	}

	var specs []gangfm.JobSpec
	for j := 0; j < *jobs; j++ {
		name := fmt.Sprintf("%s-%d", *bench, j)
		switch *bench {
		case "bandwidth":
			specs = append(specs, gangfm.Bandwidth(name, *msgs, *size))
		case "latency":
			specs = append(specs, gangfm.PingPong(name, *msgs, *size))
		case "alltoall":
			specs = append(specs, gangfm.AllToAll(name, *nodes, *msgs, *size))
		default:
			fmt.Fprintf(out, "unknown benchmark %q\n", *bench)
			return 2
		}
	}
	var submitted []*gangfm.Job
	for _, spec := range specs {
		job, err := cluster.Submit(spec)
		if err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		submitted = append(submitted, job)
	}

	start := time.Now()
	cluster.RunUntil(sim.DefaultClock.FromDuration(*limit))
	real := time.Since(start)
	clock := gangfm.Clock()
	eps := float64(cluster.Eng.Fired()) / real.Seconds()
	fmt.Fprintf(out, "simulated %v of virtual time in %v real (%d events, %.2fM events/s)\n\n",
		clock.ToDuration(cluster.Eng.Now()).Round(time.Millisecond), real.Round(time.Millisecond),
		cluster.Eng.Fired(), eps/1e6)

	for i, job := range submitted {
		switch *bench {
		case "bandwidth":
			res, err := gangfm.ExtractBandwidth(job)
			if err != nil {
				fmt.Fprintf(out, "job %d: WEDGED (%v)\n", i, err)
				continue
			}
			fmt.Fprintf(out, "job %d: %d x %d B in %v -> %.1f MB/s\n",
				i, res.Messages, res.MsgSize, clock.ToDuration(res.Elapsed()).Round(time.Microsecond), res.MBs(clock))
		case "latency":
			if job.State() != gangfm.JobDone {
				fmt.Fprintf(out, "job %d: not finished\n", i)
				continue
			}
			res := job.Results[0].(gangfm.PingPongResult)
			fmt.Fprintf(out, "job %d: %d-byte round trip %v (%d cycles)\n",
				i, res.Size, clock.ToDuration(res.RoundTrip()), res.RoundTrip())
		case "alltoall":
			results, err := gangfm.ExtractAllToAll(job)
			if err != nil {
				fmt.Fprintf(out, "job %d: WEDGED (%v)\n", i, err)
				continue
			}
			var bytes uint64
			var span sim.Time
			for _, r := range results {
				bytes += uint64(r.Sent) * uint64(*size)
				if r.End > span {
					span = r.End
				}
			}
			secs := clock.ToDuration(span).Seconds()
			fmt.Fprintf(out, "job %d: all-to-all moved %.1f MB in %v -> %.1f MB/s aggregate\n",
				i, float64(bytes)/1e6, clock.ToDuration(span).Round(time.Microsecond), float64(bytes)/secs/1e6)
		}
	}

	// Switch accounting, when any rotation happened.
	switches, totalCycles := 0, sim.Time(0)
	for _, hist := range cluster.SwitchHistory() {
		for _, s := range hist {
			if s.From >= 0 && s.To >= 0 {
				switches++
				totalCycles += s.Total()
			}
		}
	}
	if switches > 0 {
		fmt.Fprintf(out, "\n%d buffer switches, mean %v each\n",
			switches, clock.ToDuration(totalCycles/sim.Time(switches)).Round(time.Microsecond))
	}

	// The invariant auditor runs on every cluster; under -loss it is the
	// mechanical witness of the §2.2 wedge.
	if !cluster.Auditor().Ok() {
		fmt.Fprintf(out, "\n%s\n", cluster.Auditor().Summary())
	}
	return 0
}
