// Command fmbench runs one-off benchmarks on the simulated ParPar/FM
// stack, in the spirit of the benchmark programs shipped with the FM
// distribution (paper §4.1). Unlike cmd/gangsim (which regenerates the
// paper's figures), fmbench exposes the knobs directly.
//
// Examples:
//
//	fmbench -bench bandwidth -msgs 10000 -size 16384
//	fmbench -bench bandwidth -policy partitioned -slots 8   # the wedge
//	fmbench -bench latency -msgs 2000 -size 64
//	fmbench -bench alltoall -nodes 8 -msgs 500 -jobs 2
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"gangfm"
	"gangfm/internal/core"
	"gangfm/internal/fm"
	"gangfm/internal/myrinet"
	"gangfm/internal/sim"
)

func main() {
	var (
		bench   = flag.String("bench", "bandwidth", "bandwidth | latency | alltoall")
		nodes   = flag.Int("nodes", 16, "cluster size")
		policy  = flag.String("policy", "switched", "switched | partitioned")
		mode    = flag.String("copy", "valid", "valid | full (buffer switch algorithm)")
		slots   = flag.Int("slots", 4, "gang slot-table depth (buffer divisor when partitioned)")
		jobs    = flag.Int("jobs", 1, "identical jobs to gang-schedule")
		msgs    = flag.Int("msgs", 5000, "messages (per sender / per peer)")
		size    = flag.Int("size", 16384, "message size in bytes")
		quantum = flag.Duration("quantum", time.Second, "gang-scheduling quantum (virtual)")
		loss    = flag.Float64("loss", 0, "packet loss probability on the data network")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		limit   = flag.Duration("limit", 60*time.Second, "virtual-time limit before declaring a wedge")
	)
	flag.Parse()

	cfg := gangfm.DefaultClusterConfig(*nodes)
	cfg.Slots = *slots
	cfg.Seed = *seed
	cfg.Quantum = sim.DefaultClock.FromDuration(*quantum)
	switch *policy {
	case "switched":
		cfg.Policy = fm.Switched
	case "partitioned":
		cfg.Policy = fm.Partitioned
	default:
		log.Fatalf("unknown policy %q", *policy)
	}
	switch *mode {
	case "valid":
		cfg.Mode = core.ValidOnly
	case "full":
		cfg.Mode = core.FullCopy
	default:
		log.Fatalf("unknown copy mode %q", *mode)
	}
	if *loss > 0 {
		net := myrinet.DefaultConfig(*nodes)
		net.LossProb = *loss
		net.Seed = *seed
		cfg.NetConfig = &net
	}

	cluster, err := gangfm.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var specs []gangfm.JobSpec
	for j := 0; j < *jobs; j++ {
		name := fmt.Sprintf("%s-%d", *bench, j)
		switch *bench {
		case "bandwidth":
			specs = append(specs, gangfm.Bandwidth(name, *msgs, *size))
		case "latency":
			specs = append(specs, gangfm.PingPong(name, *msgs, *size))
		case "alltoall":
			specs = append(specs, gangfm.AllToAll(name, *nodes, *msgs, *size))
		default:
			log.Fatalf("unknown benchmark %q", *bench)
		}
	}
	var submitted []*gangfm.Job
	for _, spec := range specs {
		job, err := cluster.Submit(spec)
		if err != nil {
			log.Fatal(err)
		}
		submitted = append(submitted, job)
	}

	start := time.Now()
	cluster.RunUntil(sim.DefaultClock.FromDuration(*limit))
	real := time.Since(start)
	clock := gangfm.Clock()
	fmt.Printf("simulated %v of virtual time in %v real (%d events)\n\n",
		clock.ToDuration(cluster.Eng.Now()).Round(time.Millisecond), real.Round(time.Millisecond), cluster.Eng.Fired())

	for i, job := range submitted {
		switch *bench {
		case "bandwidth":
			res, err := gangfm.ExtractBandwidth(job)
			if err != nil {
				fmt.Printf("job %d: WEDGED (%v)\n", i, err)
				continue
			}
			fmt.Printf("job %d: %d x %d B in %v -> %.1f MB/s\n",
				i, res.Messages, res.MsgSize, clock.ToDuration(res.Elapsed()).Round(time.Microsecond), res.MBs(clock))
		case "latency":
			if job.State() != gangfm.JobDone {
				fmt.Printf("job %d: not finished\n", i)
				continue
			}
			res := job.Results[0].(gangfm.PingPongResult)
			fmt.Printf("job %d: %d-byte round trip %v (%d cycles)\n",
				i, res.Size, clock.ToDuration(res.RoundTrip()), res.RoundTrip())
		case "alltoall":
			results, err := gangfm.ExtractAllToAll(job)
			if err != nil {
				fmt.Printf("job %d: WEDGED (%v)\n", i, err)
				continue
			}
			var bytes uint64
			var span sim.Time
			for _, r := range results {
				bytes += uint64(r.Sent) * uint64(*size)
				if r.End > span {
					span = r.End
				}
			}
			secs := clock.ToDuration(span).Seconds()
			fmt.Printf("job %d: all-to-all moved %.1f MB in %v -> %.1f MB/s aggregate\n",
				i, float64(bytes)/1e6, clock.ToDuration(span).Round(time.Microsecond), float64(bytes)/secs/1e6)
		}
	}

	// Switch accounting, when any rotation happened.
	switches, totalCycles := 0, sim.Time(0)
	for _, hist := range cluster.SwitchHistory() {
		for _, s := range hist {
			if s.From >= 0 && s.To >= 0 {
				switches++
				totalCycles += s.Total()
			}
		}
	}
	if switches > 0 {
		fmt.Printf("\n%d buffer switches, mean %v each\n",
			switches, clock.ToDuration(totalCycles/sim.Time(switches)).Round(time.Microsecond))
	}
}
