package main

import (
	"strings"
	"testing"
)

// TestLatencySmoke: a small latency run completes and reports a round trip.
func TestLatencySmoke(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-bench", "latency", "-nodes", "2", "-msgs", "20", "-size", "64",
		"-quantum", "2ms", "-limit", "2s"}, &out)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "round trip") {
		t.Fatalf("no latency result:\n%s", out.String())
	}
}

// TestLossRunReportsAuditorVerdict: a partitioned run under loss wedges and
// the auditor's summary (with the replay seed) appears in the output.
func TestLossRunReportsAuditorVerdict(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-bench", "bandwidth", "-nodes", "2", "-policy", "partitioned",
		"-msgs", "300", "-size", "512", "-quantum", "2ms", "-loss", "0.2", "-seed", "77",
		"-limit", "1s"}, &out)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "WEDGED") {
		t.Fatalf("lossy run did not wedge:\n%s", s)
	}
	if !strings.Contains(s, "violation") || !strings.Contains(s, "seed 77") {
		t.Fatalf("auditor verdict missing:\n%s", s)
	}
}

// TestBadFlags: unknown benchmarks and policies exit 2.
func TestBadFlags(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-bench", "nope"}, &out); code != 2 {
		t.Fatalf("bad bench: exit %d", code)
	}
	out.Reset()
	if code := run([]string{"-policy", "nope"}, &out); code != 2 {
		t.Fatalf("bad policy: exit %d", code)
	}
}
