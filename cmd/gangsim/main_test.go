package main

import (
	"os"
	"strings"
	"testing"

	"gangfm/internal/experiments"
)

// TestFuzzSubcommandSmoke: a tiny campaign runs end to end, prints one
// verdict per run and the replay hint.
func TestFuzzSubcommandSmoke(t *testing.T) {
	var out strings.Builder
	if code := runFuzz([]string{"-seed", "1", "-runs", "5", "-shrink=false"}, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	s := out.String()
	if strings.Count(s, "seed ") < 5 {
		t.Fatalf("expected 5 verdict lines:\n%s", s)
	}
	if !strings.Contains(s, "replay any with") {
		t.Fatalf("missing replay hint:\n%s", s)
	}
}

// TestFuzzSubcommandReplayIsIdentical: the acceptance contract — the same
// seed reproduces byte-identical output, injection traces included.
func TestFuzzSubcommandReplayIsIdentical(t *testing.T) {
	run := func() string {
		var out strings.Builder
		if code := runFuzz([]string{"-seed", "7", "-runs", "3", "-trace"}, &out); code != 0 {
			t.Fatalf("exit %d:\n%s", code, out.String())
		}
		return out.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different output:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestFuzzCompareSmoke: the differential known-answer check prints the FM
// stall and the go-back-N recovery.
func TestFuzzCompareSmoke(t *testing.T) {
	var out strings.Builder
	if code := runFuzz([]string{"-compare", "-seed", "77", "-prob", "0.2"}, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "stalled=true") || !strings.Contains(s, "recovered=true") {
		t.Fatalf("differential verdict wrong:\n%s", s)
	}
}

// TestFuzzBadFlag: unknown flags exit with a usage error, not a panic.
func TestFuzzBadFlag(t *testing.T) {
	var out strings.Builder
	if code := runFuzz([]string{"-nope"}, &out); code != 2 {
		t.Fatalf("exit %d for bad flag", code)
	}
}

// TestExperimentSmoke: the cheapest experiment command still renders its
// table (the figure regenerators have their own deep tests; this pins the
// CLI wiring).
func TestExperimentSmoke(t *testing.T) {
	table := experiments.CreditsTable(experiments.Credits()).String()
	if !strings.Contains(table, "C0") {
		t.Fatalf("credits table did not render:\n%s", table)
	}
}

// TestUnknownSubcommand: an unrecognized name exits 2 and prints the
// sorted listing with every dispatchable subcommand and a description.
func TestUnknownSubcommand(t *testing.T) {
	var out strings.Builder
	if code := unknownSubcommand(&out, "figg5"); code != 2 {
		t.Fatalf("exit %d for unknown subcommand, want 2", code)
	}
	s := out.String()
	if !strings.Contains(s, `unknown subcommand "figg5"`) {
		t.Fatalf("missing error line:\n%s", s)
	}
	for _, sc := range subcommands {
		if !strings.Contains(s, sc.name) || !strings.Contains(s, sc.desc) {
			t.Fatalf("listing missing %q:\n%s", sc.name, s)
		}
	}
	// Sorted: each registered name appears after its predecessor.
	last := -1
	for _, sc := range subcommands {
		i := strings.Index(s, "\n  "+sc.name)
		if i < 0 {
			t.Fatalf("listing entry for %q not at line start:\n%s", sc.name, s)
		}
		if i < last {
			t.Fatalf("listing not sorted at %q:\n%s", sc.name, s)
		}
		last = i
	}
}

// TestSchedSubcommandSmoke: the scheduler evaluation runs end to end in
// quick mode and prints one summary row per (packing, scheme) pair.
func TestSchedSubcommandSmoke(t *testing.T) {
	var out strings.Builder
	if code := runSched([]string{"-quick"}, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{"first-fit", "buddy", "best-fit", "partitioned", "switched", "mean_bsld"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestSchedSubcommandDeterministic: the acceptance contract — the same
// seed produces byte-identical tables.
func TestSchedSubcommandDeterministic(t *testing.T) {
	run := func() string {
		var out strings.Builder
		if code := runSched([]string{"-quick", "-seed", "7", "-per-job"}, &out); code != 0 {
			t.Fatalf("exit %d:\n%s", code, out.String())
		}
		return out.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different output:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestChurnSubcommandSmoke: the online-scheduling showdown runs end to
// end in quick mode and prints the three-mode grid plus decision stats.
func TestChurnSubcommandSmoke(t *testing.T) {
	var out strings.Builder
	if code := runChurn([]string{"-quick"}, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{"gang", "batch", "fractional", "mean_bsld", "util",
		"Decision-log statistics", "backfill", "compact"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestChurnSubcommandDeterministic: the acceptance contract — the same
// seed produces byte-identical grids and decision logs, at any worker
// count of the sharded engine.
func TestChurnSubcommandDeterministic(t *testing.T) {
	run := func(extra ...string) string {
		var out strings.Builder
		args := append([]string{"-quick", "-seed", "11", "-log"}, extra...)
		if code := runChurn(args, &out); code != 0 {
			t.Fatalf("exit %d:\n%s", code, out.String())
		}
		return out.String()
	}
	base := run()
	if again := run(); again != base {
		t.Fatal("same seed produced different output across runs")
	}
	for _, w := range []string{"1", "2", "4"} {
		if got := run("-shards", "4", "-workers", w); got != base {
			t.Fatalf("shards=4 workers=%s diverged from the unsharded run:\n--- base ---\n%s\n--- got ---\n%s",
				w, base, got)
		}
	}
}

// TestChurnTraceRoundTrip: -dump-trace writes a replayable trace — the
// churn directives survive the text format and the replay reproduces the
// generated run byte for byte.
func TestChurnTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/churn.trace"
	var a, b strings.Builder
	if code := runChurn([]string{"-quick", "-seed", "11", "-dump-trace", path}, &a); code != 0 {
		t.Fatalf("exit %d:\n%s", code, a.String())
	}
	if code := runChurn([]string{"-trace", path}, &b); code != 0 {
		t.Fatalf("exit %d:\n%s", code, b.String())
	}
	if a.String() != b.String() {
		t.Fatalf("trace replay diverged:\n--- generated ---\n%s\n--- replayed ---\n%s",
			a.String(), b.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s := string(data); !strings.Contains(s, "kill=") || !strings.Contains(s, "resize=") {
		t.Fatalf("dumped trace lacks churn directives:\n%s", s)
	}
}

// TestChurnBadFlags: unknown policies, flags, and out-of-range failure
// knobs exit with a usage error, not a panic and not a silent clamp.
func TestChurnBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-nope"},
		{"-policy", "warp"},
		{"-crash", "-0.1"},
		{"-crash", "1.5"},
		{"-crash", "0.5", "-repair", "-0.1"},
		{"-crash", "0.5", "-repair", "2"},
		{"-crash", "0.5", "-repair", "0.5", "-mttr", "-1"},
		// A repair probability with no crash source (no -crash, no trace
		// file) has nothing to repair — reject it rather than no-op.
		{"-repair", "0.5"},
	} {
		var out strings.Builder
		if code := runChurn(args, &out); code != 2 {
			t.Fatalf("exit %d for %v, want 2", code, args)
		}
	}
}

// TestSchedBadFlags: unknown policies, schemes and flags exit with a
// usage error, not a panic.
func TestSchedBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-nope"},
		{"-policy", "warp"},
		{"-scheme", "quantum"},
	} {
		var out strings.Builder
		if code := runSched(args, &out); code != 2 {
			t.Fatalf("exit %d for %v, want 2", code, args)
		}
	}
}
