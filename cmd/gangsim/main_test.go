package main

import (
	"strings"
	"testing"

	"gangfm/internal/experiments"
)

// TestFuzzSubcommandSmoke: a tiny campaign runs end to end, prints one
// verdict per run and the replay hint.
func TestFuzzSubcommandSmoke(t *testing.T) {
	var out strings.Builder
	if code := runFuzz([]string{"-seed", "1", "-runs", "5", "-shrink=false"}, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	s := out.String()
	if strings.Count(s, "seed ") < 5 {
		t.Fatalf("expected 5 verdict lines:\n%s", s)
	}
	if !strings.Contains(s, "replay any with") {
		t.Fatalf("missing replay hint:\n%s", s)
	}
}

// TestFuzzSubcommandReplayIsIdentical: the acceptance contract — the same
// seed reproduces byte-identical output, injection traces included.
func TestFuzzSubcommandReplayIsIdentical(t *testing.T) {
	run := func() string {
		var out strings.Builder
		if code := runFuzz([]string{"-seed", "7", "-runs", "3", "-trace"}, &out); code != 0 {
			t.Fatalf("exit %d:\n%s", code, out.String())
		}
		return out.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different output:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestFuzzCompareSmoke: the differential known-answer check prints the FM
// stall and the go-back-N recovery.
func TestFuzzCompareSmoke(t *testing.T) {
	var out strings.Builder
	if code := runFuzz([]string{"-compare", "-seed", "77", "-prob", "0.2"}, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "stalled=true") || !strings.Contains(s, "recovered=true") {
		t.Fatalf("differential verdict wrong:\n%s", s)
	}
}

// TestFuzzBadFlag: unknown flags exit with a usage error, not a panic.
func TestFuzzBadFlag(t *testing.T) {
	var out strings.Builder
	if code := runFuzz([]string{"-nope"}, &out); code != 2 {
		t.Fatalf("exit %d for bad flag", code)
	}
}

// TestExperimentSmoke: the cheapest experiment command still renders its
// table (the figure regenerators have their own deep tests; this pins the
// CLI wiring).
func TestExperimentSmoke(t *testing.T) {
	table := experiments.CreditsTable(experiments.Credits()).String()
	if !strings.Contains(table, "C0") {
		t.Fatalf("credits table did not render:\n%s", table)
	}
}
