package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"gangfm/internal/experiments"
	"gangfm/internal/myrinet"
	"gangfm/internal/parpar"
	"gangfm/internal/sim"
	"gangfm/internal/workload"
)

// BenchResult is one figure's performance measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Events      uint64  `json:"events"`
	EventsPerS  float64 `json:"events_per_second"`
	Allocs      uint64  `json:"allocs"`
	AllocsPerEv float64 `json:"allocs_per_event"`
	// Analytic marks entries that evaluate closed-form formulas rather
	// than running the simulator: they fire no events, so the per-event
	// rates are undefined (reported as zero) and excluded from regression
	// comparisons.
	Analytic bool `json:"analytic,omitempty"`
}

// BenchBaseline pins the numbers measured on the pre-optimization tree
// (container/heap event queue, per-packet allocation, channel-fed sweep
// workers) so every BENCH_*.json carries its own point of comparison.
// Measured single-threaded on an Intel Xeon @ 2.10 GHz.
type BenchBaseline struct {
	Note              string  `json:"note"`
	EngineNsPerEvent  float64 `json:"engine_ns_per_event"`
	EngineAllocsPerEv float64 `json:"engine_allocs_per_event"`
	BandwidthPointNs  float64 `json:"bandwidth_point_ns"`
	BandwidthAllocs   float64 `json:"bandwidth_point_allocs"`
	AllFullSeconds    float64 `json:"all_full_seconds"`
	AllQuickSeconds   float64 `json:"all_quick_seconds"`
}

var benchBaseline = BenchBaseline{
	Note:              "pre-optimization tree: container/heap queue, per-packet allocation, fixed 4-worker sweeps; 1-core Xeon 2.10 GHz",
	EngineNsPerEvent:  69.35,
	EngineAllocsPerEv: 1,
	BandwidthPointNs:  6_735_988,
	BandwidthAllocs:   83_635,
	AllFullSeconds:    24.9,
	AllQuickSeconds:   1.6,
}

// ScalingResult is one leg of the parallel_scaling sweep: a fixed
// large-topology workload run unsharded, or sharded at a given worker
// count.
type ScalingResult struct {
	Name        string  `json:"name"`
	Shards      int     `json:"shards"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	Events      uint64  `json:"events"`
	EventsPerS  float64 `json:"events_per_second"`
	// Speedup is wall time of the workers=1 sharded leg divided by this
	// leg's wall time (1.0 for that leg itself; 0 for the unsharded
	// baseline, which is the serial reference, not part of the scaling
	// curve).
	Speedup float64 `json:"speedup"`
}

// BenchReport is the top-level BENCH_<date>.json document.
type BenchReport struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`
	// EngineNsPerEvent is a dedicated microbenchmark of the DES hot loop
	// (one self-rescheduling event), comparable to engine_ns_per_event in
	// the baseline block.
	EngineNsPerEvent float64 `json:"engine_ns_per_event"`
	// SwitchCycles is the mean steady-state three-stage switch cost of a
	// fixed 16-node workload, in virtual cycles — deterministic, so any
	// change between reports is a protocol change, not measurement noise.
	// SwitchCyclesRecoveryClean is the same probe with the self-healing
	// layer enabled and no faults; the two must be cycle-identical (the
	// recovery timers all cancel on the clean path) and bench exits
	// non-zero when they are not.
	SwitchCycles              float64       `json:"switch_cycles"`
	SwitchCyclesRecoveryClean float64       `json:"switch_cycles_recovery_clean"`
	Figures                   []BenchResult `json:"figures"`
	Total                     BenchResult   `json:"total"`
	// ParallelScaling sweeps the sharded engine's worker pool over a
	// large-topology bandwidth workload. Real speedup is bounded by
	// GOMAXPROCS (recorded above): on a single-core host every leg shares
	// one CPU and the sweep measures coordination overhead instead.
	ParallelScaling []ScalingResult `json:"parallel_scaling"`
	Baseline        BenchBaseline   `json:"baseline"`
}

// runBench executes every figure under wall-clock, event-count and
// allocation tracking and writes the report JSON.
func runBench(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "shrink sweeps for a fast smoke run")
	par := fs.Int("par", 0, "max concurrently simulated points (0 = one per CPU)")
	outPath := fs.String("o", "", "output path (default BENCH_<date>.json)")
	comparePath := fs.String("compare", "", "previous BENCH_*.json to diff against; exits non-zero on a >10% allocs/event regression")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gangsim bench [-quick] [-par N] [-o FILE] [-compare OLD.json] [-cpuprofile FILE] [-memprofile FILE]\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gangsim bench: %v\n", err)
		return 1
	}
	defer stop()

	p := experiments.Params{Quick: *quick, Parallel: *par}
	rep := BenchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Baseline:   benchBaseline,
	}
	rep.EngineNsPerEvent = engineNsPerEvent()
	fmt.Fprintf(out, "engine hot loop: %.2f ns/event\n", rep.EngineNsPerEvent)

	rep.SwitchCycles = switchCostCycles(false)
	rep.SwitchCyclesRecoveryClean = switchCostCycles(true)
	fmt.Fprintf(out, "switch cost: %.0f virtual cycles (recovery off), %.0f (recovery on, clean)\n",
		rep.SwitchCycles, rep.SwitchCyclesRecoveryClean)
	if rep.SwitchCycles != rep.SwitchCyclesRecoveryClean {
		fmt.Fprintf(out, "REGRESSION: recovery layer changed the clean-path switch cost\n")
		return 1
	}

	figures := []struct {
		name     string
		analytic bool
		run      func(experiments.Params)
	}{
		// credits evaluates the paper's closed-form credit formulas — no
		// simulation runs, so its event count is legitimately zero.
		{"credits", true, func(p experiments.Params) { experiments.Credits() }},
		{"fig5", false, func(p experiments.Params) { experiments.Fig5(p) }},
		{"fig6", false, func(p experiments.Params) { experiments.Fig6(p) }},
		{"fig7", false, func(p experiments.Params) { experiments.Fig7(p) }},
		{"fig9", false, func(p experiments.Params) { experiments.Fig9(p) }},
		{"overhead", false, func(p experiments.Params) { experiments.Overhead(p) }},
		{"schemes", false, func(p experiments.Params) { experiments.Schemes(p) }},
		{"dyncos", false, func(p experiments.Params) { experiments.Responsiveness(p) }},
		{"sched", false, func(p experiments.Params) { experiments.Sched(p) }},
		{"sched_churn", false, func(p experiments.Params) { experiments.Churn(p) }},
		{"sched_churn_crash", false, func(p experiments.Params) { experiments.ChurnCrash(p) }},
		{"sched_churn_repair", false, func(p experiments.Params) { experiments.ChurnRepair(p) }},
	}
	experiments.TakeFiredCount() // drain any prior count
	for _, f := range figures {
		r := measure(f.name, func() { f.run(p) })
		r.Analytic = f.analytic
		rep.Figures = append(rep.Figures, r)
		rep.Total.WallSeconds += r.WallSeconds
		rep.Total.Events += r.Events
		rep.Total.Allocs += r.Allocs
		if f.analytic {
			fmt.Fprintf(out, "%-10s %8.2fs  analytic (no simulated events)\n", r.Name, r.WallSeconds)
			continue
		}
		fmt.Fprintf(out, "%-10s %8.2fs  %12d events  %10.0f events/s  %6.2f allocs/event\n",
			r.Name, r.WallSeconds, r.Events, r.EventsPerS, r.AllocsPerEv)
	}
	rep.ParallelScaling = parallelScaling(*quick, out)

	rep.Total.Name = "total"
	if rep.Total.WallSeconds > 0 {
		rep.Total.EventsPerS = float64(rep.Total.Events) / rep.Total.WallSeconds
	}
	if rep.Total.Events > 0 {
		rep.Total.AllocsPerEv = float64(rep.Total.Allocs) / float64(rep.Total.Events)
	}
	fmt.Fprintf(out, "%-10s %8.2fs  %12d events  %10.0f events/s  %6.1f allocs/event\n",
		rep.Total.Name, rep.Total.WallSeconds, rep.Total.Events, rep.Total.EventsPerS, rep.Total.AllocsPerEv)

	path := *outPath
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gangsim bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "gangsim bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(out, "wrote %s\n", path)

	if *comparePath != "" {
		old, err := loadBenchReport(*comparePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim bench: -compare: %v\n", err)
			return 1
		}
		if compareReports(out, old, &rep) {
			fmt.Fprintf(out, "REGRESSION: allocs/event grew more than 10%% versus %s\n", *comparePath)
			return 1
		}
	}
	return 0
}

// loadBenchReport reads a previously written BENCH_*.json.
func loadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareReports prints per-figure deltas (wall time, event rate,
// allocations per event) between two reports and reports whether any
// shared figure's allocs/event regressed by more than 10%. Wall time and
// event rate are hardware- and load-dependent, so they are informational;
// allocs/event is deterministic for a deterministic simulation and gates.
func compareReports(out io.Writer, old, cur *BenchReport) bool {
	prev := make(map[string]BenchResult, len(old.Figures))
	for _, f := range old.Figures {
		prev[f.Name] = f
	}
	pct := func(oldV, newV float64) string {
		if oldV == 0 {
			return "   n/a"
		}
		return fmt.Sprintf("%+5.1f%%", (newV-oldV)/oldV*100)
	}
	fmt.Fprintf(out, "comparison vs %s (quick=%v):\n", old.Date, old.Quick)
	fmt.Fprintf(out, "  %-10s %10s %12s %26s\n", "figure", "wall", "events/s", "allocs/event (old -> new)")
	regressed := false
	for _, f := range cur.Figures {
		o, ok := prev[f.Name]
		if !ok {
			fmt.Fprintf(out, "  %-10s (new figure, no baseline)\n", f.Name)
			continue
		}
		if f.Analytic || (f.Events == 0 && o.Events == 0) {
			fmt.Fprintf(out, "  %-10s %10s %12s %26s\n", f.Name,
				pct(o.WallSeconds, f.WallSeconds), "analytic", "-")
			continue
		}
		verdict := ""
		// Over 10% worse — with an absolute floor so counting noise on an
		// already ~zero-alloc figure (e.g. 0.001 -> 0.0012) cannot gate.
		if f.AllocsPerEv > o.AllocsPerEv*1.10 && f.AllocsPerEv-o.AllocsPerEv > 0.005 {
			verdict = "  REGRESSED"
			regressed = true
		}
		fmt.Fprintf(out, "  %-10s %10s %12s %12.4f -> %-8.4f%s\n", f.Name,
			pct(o.WallSeconds, f.WallSeconds),
			pct(o.EventsPerS, f.EventsPerS),
			o.AllocsPerEv, f.AllocsPerEv, verdict)
	}
	return regressed
}

// measure runs fn, attributing its wall time, simulation event count and
// heap allocations to one BenchResult.
func measure(name string, fn func()) BenchResult {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	r := BenchResult{
		Name:        name,
		WallSeconds: wall,
		Events:      experiments.TakeFiredCount(),
		Allocs:      after.Mallocs - before.Mallocs,
	}
	// Both per-event rates are undefined when nothing fired (analytic
	// entries): report zero rather than dividing by the event count.
	if wall > 0 && r.Events > 0 {
		r.EventsPerS = float64(r.Events) / wall
	}
	if r.Events > 0 {
		r.AllocsPerEv = float64(r.Allocs) / float64(r.Events)
	}
	return r
}

// parallelScaling runs a fig6-style pairwise-bandwidth workload on a
// large machine — the regime sharding exists for — unsharded, then sharded
// at 1/2/4/8 workers, and reports wall time per leg. The simulated work is
// identical in every leg (the equivalence tests prove the results are
// too), so the wall-time ratios isolate the engine's parallel efficiency.
func parallelScaling(quick bool, out io.Writer) []ScalingResult {
	// 512 nodes is the largest machine the modeled FM can drive: switched
	// credits are C0 = Br/p = 668/512 = 1 (stop-and-wait, alive); at 1024
	// peers the formula hits zero and communication wedges by design.
	nodes, msgs := 512, 24
	if quick {
		nodes, msgs = 128, 30
	}
	const shards = 16
	run := func(nShards, workers int) ScalingResult {
		cfg := parpar.DefaultConfig(nodes)
		// One slot: every pair job runs on its own column with no
		// rotation, so the machine is uniformly busy end to end.
		cfg.Slots = 1
		cfg.Quantum = 100_000_000
		// A SAN this size is a multi-stage fabric with a longer switch
		// traversal; the higher latency also widens the conservative
		// lookahead window, cutting barrier frequency.
		ncfg := myrinet.DefaultConfig(nodes)
		ncfg.SwitchLatency = 2000
		cfg.NetConfig = &ncfg
		cfg.Shards = nShards
		cfg.Workers = workers
		c, err := parpar.New(cfg)
		if err != nil {
			panic(err)
		}
		for j := 0; j < nodes/2; j++ {
			if _, err := c.Submit(workload.Bandwidth(fmt.Sprintf("pair%d", j), msgs, 1536)); err != nil {
				panic(err)
			}
		}
		start := time.Now()
		c.Run()
		wall := time.Since(start).Seconds()
		r := ScalingResult{Shards: nShards, Workers: workers, WallSeconds: wall, Events: c.Fired()}
		if wall > 0 {
			r.EventsPerS = float64(r.Events) / wall
		}
		return r
	}
	legs := []ScalingResult{run(1, 1)}
	legs[0].Name = "unsharded"
	for _, w := range []int{1, 2, 4, 8} {
		r := run(shards, w)
		r.Name = fmt.Sprintf("shards=%d workers=%d", shards, w)
		legs = append(legs, r)
	}
	ref := legs[1].WallSeconds
	for i := 1; i < len(legs); i++ {
		if legs[i].WallSeconds > 0 {
			legs[i].Speedup = ref / legs[i].WallSeconds
		}
	}
	fmt.Fprintf(out, "parallel_scaling: %d nodes, %d pair jobs x %d msgs (GOMAXPROCS=%d)\n",
		nodes, nodes/2, msgs, runtime.GOMAXPROCS(0))
	for _, r := range legs {
		fmt.Fprintf(out, "  %-22s %8.2fs  %12d events  %10.0f events/s  speedup %.2fx\n",
			r.Name, r.WallSeconds, r.Events, r.EventsPerS, r.Speedup)
	}
	return legs
}

// switchCostCycles measures the mean steady-state switch cost (virtual
// cycles) of a fixed 16-node two-job all-to-all workload, optionally with
// the self-healing layer enabled. The simulation is deterministic, so the
// recovery-on-but-clean number must equal the recovery-off number exactly.
func switchCostCycles(recovery bool) float64 {
	cfg := parpar.DefaultConfig(16)
	cfg.Slots = 2
	cfg.Quantum = 4_000_000
	if recovery {
		r := parpar.DefaultRecovery(cfg.Quantum)
		cfg.Recovery = &r
	}
	c, err := parpar.New(cfg)
	if err != nil {
		panic(err)
	}
	if _, err := c.Submit(workload.AllToAll("a", 16, 40, 1536)); err != nil {
		panic(err)
	}
	if _, err := c.Submit(workload.AllToAll("b", 16, 40, 1536)); err != nil {
		panic(err)
	}
	c.Run()
	var sum sim.Time
	n := 0
	for _, hist := range c.SwitchHistory() {
		for _, s := range hist {
			if s.From >= 0 && s.To >= 0 { // steady-state switches only
				sum += s.Total()
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// engineNsPerEvent times the bare DES hot loop: a single self-rescheduling
// event, the same shape as BenchmarkEngineThroughput.
func engineNsPerEvent() float64 {
	const events = 2_000_000
	eng := sim.NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < events {
			eng.Schedule(1, step)
		}
	}
	eng.Schedule(1, step)
	start := time.Now()
	eng.Run()
	return float64(time.Since(start).Nanoseconds()) / events
}
