package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gangfm/internal/fm"
	"gangfm/internal/gang"
	"gangfm/internal/schedeval"
)

// runSched is the trace-driven scheduler-evaluation subcommand. Its
// output carries no timestamps or wall-clock figures, so the same seed
// (or trace file) always produces byte-identical tables.
func runSched(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("sched", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	seed := fs.Uint64("seed", 7, "trace-generator seed")
	jobs := fs.Int("jobs", 36, "number of generated arrivals")
	nodes := fs.Int("nodes", 8, "machine size")
	slots := fs.Int("slots", 8, "gang matrix depth (time slots)")
	comm := fs.Float64("comm", 0.7, "communication intensity in [0,1]")
	policy := fs.String("policy", "all", "packing policy: first-fit|buddy|best-fit|all")
	scheme := fs.String("scheme", "both", "credit scheme: partitioned|switched|both")
	traceFile := fs.String("trace", "", "replay this trace file instead of generating one")
	dumpTrace := fs.String("dump-trace", "", "also write the trace being evaluated to this file")
	perJob := fs.Bool("per-job", false, "print per-job metric tables after the summary")
	quick := fs.Bool("quick", false, "shrink the stream for a fast smoke run")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gangsim sched [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var packings []gang.Policy
	if *policy == "all" {
		packings = gang.Policies()
	} else {
		p, ok := gang.PolicyByName(*policy)
		if !ok {
			fmt.Fprintf(os.Stderr, "gangsim sched: unknown packing policy %q (want first-fit, buddy, best-fit, or all)\n", *policy)
			return 2
		}
		packings = []gang.Policy{p}
	}
	var schemes []fm.Policy
	switch *scheme {
	case "both":
		schemes = []fm.Policy{fm.Partitioned, fm.Switched}
	case "partitioned":
		schemes = []fm.Policy{fm.Partitioned}
	case "switched":
		schemes = []fm.Policy{fm.Switched}
	default:
		fmt.Fprintf(os.Stderr, "gangsim sched: unknown credit scheme %q (want partitioned, switched, or both)\n", *scheme)
		return 2
	}

	var trace []schedeval.TraceJob
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim sched: %v\n", err)
			return 1
		}
		trace, err = schedeval.ParseTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim sched: %v\n", err)
			return 1
		}
	} else {
		gen := schedeval.DefaultGenConfig(*nodes)
		gen.Seed = *seed
		gen.Jobs = *jobs
		gen.CommIntensity = *comm
		if *quick {
			gen.Jobs = 12
		}
		var err error
		trace, err = schedeval.Generate(gen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim sched: %v\n", err)
			return 1
		}
	}
	if *dumpTrace != "" {
		f, err := os.Create(*dumpTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim sched: %v\n", err)
			return 1
		}
		err = schedeval.FormatTrace(f, trace)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim sched: %v\n", err)
			return 1
		}
	}

	base := schedeval.DefaultConfig(*nodes)
	base.Slots = *slots
	base.Trace = trace
	results, err := schedeval.Compare(base, schemes, packings)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gangsim sched: %v\n", err)
		return 1
	}
	fmt.Fprintln(out, schedeval.SummaryTable(results))
	fmt.Fprintln(out, "(bsld = bounded slowdown; util counts finished jobs' nominal work over nodes x makespan)")
	if *perJob {
		for _, r := range results {
			fmt.Fprintln(out)
			fmt.Fprintln(out, schedeval.JobTable(r))
		}
	}
	for _, r := range results {
		if !r.AuditOK {
			fmt.Fprintf(os.Stderr, "gangsim sched: %s/%s run reported %d invariant violations\n",
				r.Packing, r.Scheme, r.Violations)
			return 1
		}
	}
	return 0
}
