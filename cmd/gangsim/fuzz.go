package main

import (
	"flag"
	"fmt"
	"io"

	"gangfm/internal/chaos/fuzzer"
)

// runFuzz is the `gangsim fuzz` subcommand: a seeded campaign of random
// cluster shapes, job mixes and fault plans, executed under the invariant
// auditor. Every run's verdict line carries its seed; re-running with
// `-seed S -runs 1` replays that scenario byte-for-byte (add -trace for
// the injection log). `-compare` instead runs the differential
// known-answer check: the same loss plan against FM (which wedges) and the
// go-back-N alternative (which recovers).
func runFuzz(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		seed    = fs.Uint64("seed", 1, "base seed; run i uses seed+i")
		runs    = fs.Int("runs", 25, "scenarios to sample and execute")
		shrink  = fs.Bool("shrink", true, "minimize failing fault plans")
		trace   = fs.Bool("trace", false, "print the injection trace of failing runs")
		compare  = fs.Bool("compare", false, "run the FM-vs-go-back-N loss comparison instead")
		prob     = fs.Float64("prob", 0.2, "loss probability for -compare")
		recovery = fs.Bool("recovery", false, "differential recovery campaign: each plan runs bare and with the self-healing switch layer; any recovery-enabled failure is a regression (exit 1)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *recovery {
		rep := fuzzer.FuzzRecovery(fuzzer.Config{Seed: *seed, Runs: *runs},
			func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) })
		fmt.Fprintf(out, "\nrecovery campaign: %d runs, %d wedged bare, %d recovered, %d UNRECOVERED\n",
			len(rep.Runs), rep.Wedged, rep.Recovered, rep.Unrecovered)
		if rep.Unrecovered > 0 {
			fmt.Fprintf(out, "recovery regression; replay with: gangsim fuzz -recovery -seed <S> -runs 1\n")
			return 1
		}
		return 0
	}

	if *compare {
		if *prob < 0 || *prob > 1 {
			fmt.Fprintf(out, "fuzz: -prob %v outside [0,1]\n", *prob)
			return 2
		}
		fmt.Fprintf(out, "differential loss check, seed %d, p=%.3f (paper §2.2):\n", *seed, *prob)
		fmt.Fprintln(out, fuzzer.CompareLoss(*seed, *prob))
		return 0
	}

	rep := fuzzer.Fuzz(fuzzer.Config{Seed: *seed, Runs: *runs, Shrink: *shrink},
		func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) })
	if *trace {
		for _, r := range rep.Runs {
			if r.Failed() && len(r.Trace) > 0 {
				fmt.Fprintf(out, "\ninjection trace for seed %d:\n", r.Scenario.Seed)
				for _, line := range r.Trace {
					fmt.Fprintln(out, "  "+line)
				}
			}
		}
	}
	fmt.Fprintf(out, "\n%d/%d runs found violations (%d crashes); replay any with: gangsim fuzz -seed <S> -runs 1 -trace\n",
		rep.Failures, len(rep.Runs), rep.Crashes)
	return 0
}
