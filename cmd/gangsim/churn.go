package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gangfm/internal/gang"
	"gangfm/internal/schedd"
	"gangfm/internal/schedeval"
	"gangfm/internal/sim"
)

// runChurn is the online-scheduling subcommand: one churn trace (arrivals
// plus kill=/resize=/deadline= directives) served by the schedd daemon in
// gang and batch mode and by the analytic fractional model. Output is a
// per-mode metrics grid plus decision-log statistics; like sched, it
// carries no wall-clock figures, so the same seed (or trace file) always
// produces byte-identical tables — at any -shards/-workers setting.
//
// With -crash (or crash node@T directives in the trace file) the run also
// fail-stops nodes mid-stream: the recovery layer evicts them, the daemons
// requeue their jobs under a retry budget, and an availability table is
// appended to the output.
func runChurn(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("churn", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	seed := fs.Uint64("seed", 11, "trace-generator seed")
	jobs := fs.Int("jobs", 28, "number of generated arrivals")
	nodes := fs.Int("nodes", 8, "machine size")
	slots := fs.Int("slots", 8, "gang matrix depth for the gang mode")
	comm := fs.Float64("comm", 0.7, "communication intensity in [0,1]")
	kill := fs.Float64("kill", 0.15, "fraction of jobs killed mid-run")
	resize := fs.Float64("resize", 0.15, "fraction of jobs resized mid-run")
	deadline := fs.Float64("deadline", 0.25, "fraction of jobs with deadlines")
	crash := fs.Float64("crash", 0, "per-node fail-stop probability in [0,1] (0 = no crashes)")
	crashSeed := fs.Uint64("crash-seed", 7, "crash-sampler seed (independent of the job trace)")
	repair := fs.Float64("repair", 0, "per-crash repair probability in [0,1] (0 = crashed nodes stay down)")
	repairSeed := fs.Uint64("repair-seed", 13, "repair-sampler seed (independent of crashes and the job trace)")
	mttr := fs.Int64("mttr", 0, "mean time to repair in cycles (0 = a quarter of the arrival span)")
	adaptive := fs.Bool("adaptive", false, "use the EWMA-stretch backfill estimator instead of the static slots-deep one")
	retries := fs.Int("retries", 0, "per-job requeue budget after crash-kills (0 = default of 3)")
	policy := fs.String("policy", "buddy", "packing policy: first-fit|buddy|best-fit")
	traceFile := fs.String("trace", "", "replay this trace file instead of generating one")
	dumpTrace := fs.String("dump-trace", "", "also write the trace being evaluated to this file")
	showLog := fs.Bool("log", false, "print the full decision log of every mode")
	quick := fs.Bool("quick", false, "shrink the stream for a fast smoke run")
	shards := fs.Int("shards", 0, "shard each cluster's engine into N event lanes (0 = unsharded)")
	workers := fs.Int("workers", 0, "worker goroutines per sharded engine group (<=1 = lockstep)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gangsim churn [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	packing, ok := gang.PolicyByName(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "gangsim churn: unknown packing policy %q (want first-fit, buddy, or best-fit)\n", *policy)
		return 2
	}
	// Flag-shape errors exit 2 like parse errors: they are usage mistakes,
	// not run failures.
	if *crash < 0 || *crash > 1 {
		fmt.Fprintf(os.Stderr, "gangsim churn: -crash %v outside [0,1]\n", *crash)
		return 2
	}
	if *repair < 0 || *repair > 1 {
		fmt.Fprintf(os.Stderr, "gangsim churn: -repair %v outside [0,1]\n", *repair)
		return 2
	}
	if *mttr < 0 {
		fmt.Fprintf(os.Stderr, "gangsim churn: -mttr %d must be non-negative\n", *mttr)
		return 2
	}
	if *repair > 0 && *crash == 0 && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "gangsim churn: -repair without -crash has nothing to repair")
		return 2
	}

	var trace []schedeval.TraceJob
	var crashes []schedeval.Crash
	var repairs []schedeval.Repair
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim churn: %v\n", err)
			return 1
		}
		trace, crashes, repairs, err = schedeval.ParseTraceFull(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim churn: %v\n", err)
			return 1
		}
	} else {
		gen := schedeval.DefaultGenConfig(*nodes)
		gen.Seed = *seed
		gen.Jobs = *jobs
		gen.CommIntensity = *comm
		gen.KillFraction = *kill
		gen.ResizeFraction = *resize
		gen.DeadlineFraction = *deadline
		if *quick {
			gen.Jobs = 12
		}
		var err error
		trace, err = schedeval.Generate(gen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim churn: %v\n", err)
			return 1
		}
	}
	if *crash > 0 {
		var lastArrive sim.Time
		for _, tj := range trace {
			if tj.Arrive > lastArrive {
				lastArrive = tj.Arrive
			}
		}
		sampled, err := schedeval.GenCrashes(*crashSeed, *nodes, *crash, lastArrive)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim churn: %v\n", err)
			return 1
		}
		crashes = append(crashes, sampled...)
		if *repair > 0 {
			window := *mttr
			if window == 0 {
				window = int64(lastArrive / 4)
			}
			sampledRep, err := schedeval.GenRepairs(*repairSeed, sampled, *repair, sim.Time(window))
			if err != nil {
				fmt.Fprintf(os.Stderr, "gangsim churn: %v\n", err)
				return 1
			}
			repairs = append(repairs, sampledRep...)
		}
	}
	if *dumpTrace != "" {
		f, err := os.Create(*dumpTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim churn: %v\n", err)
			return 1
		}
		err = schedeval.FormatTraceFull(f, trace, crashes, repairs)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "gangsim churn: %v\n", err)
			return 1
		}
	}

	cfg := schedd.DefaultConfig(*nodes)
	cfg.Slots = *slots
	cfg.Packing = packing
	cfg.Trace = trace
	cfg.Crashes = crashes
	cfg.Repairs = repairs
	cfg.AdaptiveEstimate = *adaptive
	cfg.RetryBudget = *retries
	cfg.Shards = *shards
	cfg.Workers = *workers
	results, err := schedd.Showdown(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gangsim churn: %v\n", err)
		return 1
	}
	fmt.Fprintln(out, schedd.GridTable(results))
	fmt.Fprintln(out, "(bsld = bounded slowdown over finished jobs; kill/evict/cens jobs are excluded from the means)")
	fmt.Fprintln(out)
	if len(crashes) > 0 {
		fmt.Fprintln(out, schedd.AvailabilityTable(results))
		fmt.Fprintln(out, "(goodput = useful work over surviving node-cycles; mean_ttr = crash-kill to re-placement)")
		if len(repairs) > 0 {
			fmt.Fprintln(out, "(cap_rep = fraction of lost node-cycles recovered by repair; post_gp = goodput after the first rejoin)")
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out, schedd.StatsTable(results))
	if *showLog {
		for _, r := range results {
			fmt.Fprintf(out, "\n--- %s decision log ---\n%s", r.Mode, r.Log)
		}
	}
	for _, r := range results {
		if n := r.Log.Count(schedd.VerbCacheBad); n != 0 {
			fmt.Fprintf(os.Stderr, "gangsim churn: %s run reported %d placement-cache violations\n", r.Mode, n)
			return 1
		}
	}
	return 0
}
