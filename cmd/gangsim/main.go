// Command gangsim regenerates the paper's evaluation: each subcommand
// reproduces one table or figure of "User-Level Communication in a System
// with Gang Scheduling" (Etsion & Feitelson, IPPS 2001) on the simulated
// ParPar/FM/Myrinet stack.
//
// Usage:
//
//	gangsim [-quick] [-par N] [-shards N] [-workers N] <fig5|fig6|fig7|fig8|fig9|overhead|credits|all>
//	gangsim fuzz [-seed S] [-runs N] [-shrink] [-trace] [-compare]
//	gangsim bench [-quick] [-par N] [-o FILE]
//	gangsim sched [-seed S] [-policy P] [-scheme S] [-trace FILE]
//	gangsim churn [-seed S] [-kill F] [-resize F] [-deadline F] [-trace FILE]
//
// All runs are deterministic; -quick shrinks the sweeps for smoke runs,
// and a fuzz failure replays exactly from its printed seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"gangfm/internal/experiments"
)

// subcommands is the single source of truth for the unknown-subcommand
// listing: every dispatchable name with a one-line description.
var subcommands = []struct{ name, desc string }{
	{"all", "every paper experiment in sequence"},
	{"bench", "run every figure under wall/event/alloc tracking (bench -h)"},
	{"churn", "online scheduling under churn: gang vs batch vs fractional with kills, resizes, backfill (churn -h)"},
	{"credits", "credit formulas C0 = Br/(n^2 p) vs Br/p (paper 2.2, 3.3)"},
	{"dyncos", "ablation: gang vs dynamic coscheduling responsiveness (5)"},
	{"fig5", "bandwidth vs msg size x #contexts, partitioned buffers"},
	{"fig6", "total bandwidth vs msg size x #jobs, buffer switching"},
	{"fig7", "switch stage times, full buffer copy, 2..16 nodes"},
	{"fig8", "valid packets in the buffers at switch time, 2..16 nodes"},
	{"fig9", "switch stage times, improved (valid-only) copy, 2..16 nodes"},
	{"fuzz", "seeded fault-injection fuzzer with exact seed replay (fuzz -h)"},
	{"overhead", "single-switch cost vs the paper's 85 ms / 12.5 ms bounds"},
	{"sched", "trace-driven scheduler evaluation: job streams, packing policies, per-job slowdown (sched -h)"},
	{"schemes", "ablation: paper scheme vs SHARE discard vs PM quiescence (5)"},
}

// printSubcommands writes the sorted subcommand listing to w.
func printSubcommands(w io.Writer) {
	sorted := append([]struct{ name, desc string }(nil), subcommands...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].name < sorted[b].name })
	fmt.Fprintln(w, "subcommands:")
	for _, s := range sorted {
		fmt.Fprintf(w, "  %-9s %s\n", s.name, s.desc)
	}
}

// unknownSubcommand reports an unrecognized name plus the full listing
// and returns the exit code for usage errors.
func unknownSubcommand(w io.Writer, name string) int {
	fmt.Fprintf(w, "gangsim: unknown subcommand %q\n\n", name)
	printSubcommands(w)
	return 2
}

func main() {
	// The fuzz and bench subcommands own their flags; dispatch before the
	// global parse.
	if len(os.Args) > 1 && os.Args[1] == "fuzz" {
		os.Exit(runFuzz(os.Args[2:], os.Stdout))
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		os.Exit(runBench(os.Args[2:], os.Stdout))
	}
	if len(os.Args) > 1 && os.Args[1] == "sched" {
		os.Exit(runSched(os.Args[2:], os.Stdout))
	}
	if len(os.Args) > 1 && os.Args[1] == "churn" {
		os.Exit(runChurn(os.Args[2:], os.Stdout))
	}
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "max concurrently simulated points")
	shards := flag.Int("shards", 0, "shard each cluster's engine into N event lanes (0 = unsharded)")
	workers := flag.Int("workers", 0, "worker goroutines per sharded engine group (<=1 = lockstep)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gangsim: %v\n", err)
		os.Exit(1)
	}
	defer stop()
	p := experiments.Params{Quick: *quick, Parallel: *par, Shards: *shards, Workers: *workers}

	cmds := map[string]func(experiments.Params){
		"fig5":     fig5,
		"fig6":     fig6,
		"fig7":     fig7,
		"fig8":     fig8,
		"fig9":     fig9,
		"overhead": overhead,
		"credits":  credits,
		"schemes":  schemes,
		"dyncos":   dyncos,
		"all": func(p experiments.Params) {
			credits(p)
			fig5(p)
			fig6(p)
			fig7(p)
			fig8(p)
			fig9(p)
			overhead(p)
			schemes(p)
			dyncos(p)
		},
	}
	cmd, ok := cmds[flag.Arg(0)]
	if !ok {
		os.Exit(unknownSubcommand(os.Stderr, flag.Arg(0)))
	}
	start := time.Now()
	cmd(p)
	fmt.Printf("\n[%s completed in %.1fs]\n", flag.Arg(0), time.Since(start).Seconds())
}

// startProfiles begins a CPU profile and/or arranges a heap profile, each
// written at stop time; empty paths disable the corresponding profile.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gangsim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "gangsim: %v\n", err)
			}
		}
	}, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `gangsim — regenerate the paper's evaluation

usage: gangsim [-quick] [-par N] [-shards N] [-workers N]
               [-cpuprofile F] [-memprofile F] <experiment>

-shards N splits every simulated cluster's engine into N event lanes; with
-workers > 1 the lanes run concurrently under conservative lookahead
windows, otherwise in bit-identical lockstep. Either way the tables must
come out identical to the unsharded run.

experiments:
  credits   credit formulas C0 = Br/(n^2 p) vs Br/p (paper 2.2, 3.3)
  fig5      bandwidth vs msg size x #contexts, partitioned buffers
  fig6      total bandwidth vs msg size x #jobs, buffer switching
  fig7      switch stage times, full buffer copy, 2..16 nodes
  fig8      valid packets in the buffers at switch time, 2..16 nodes
  fig9      switch stage times, improved (valid-only) copy, 2..16 nodes
  overhead  single-switch cost vs the paper's 85 ms / 12.5 ms bounds
  schemes   ablation: paper scheme vs SHARE discard vs PM quiescence (5)
  dyncos    ablation: gang vs dynamic coscheduling responsiveness (5)
  all       everything above

chaos:
  fuzz      seeded fault-injection fuzzer over random clusters, jobs and
            fault plans; failing seeds replay exactly (see fuzz -h)

performance:
  bench     run every figure under wall-clock/event/allocation tracking
            and write BENCH_<date>.json with baselines (see bench -h)

scheduling:
  sched     trace-driven scheduler evaluation: generated or file-based job
            streams under every packing policy x credit scheme (see sched -h)
  churn     online scheduling under churn: live kills, resizes, deadlines,
            conservative backfill; gang vs batch vs fractional (see churn -h)
`)
}

func fig5(p experiments.Params) {
	points := experiments.Fig5(p)
	fmt.Println(experiments.Fig5Table(points))
	fmt.Println("(zero rows are the credit cliff: C0 = Br/(n^2 p) hits 0 at 7-8 contexts)")
}

func fig6(p experiments.Params) {
	points := experiments.Fig6(p)
	fmt.Println(experiments.Fig6Table(points))
	fmt.Println("(aggregate = mean per-job bandwidth x #jobs; flat rows are the paper's claim)")
}

func fig7(p experiments.Params) {
	points := experiments.Fig7(p)
	fmt.Println(experiments.StageTable(
		"Figure 7: buffer switch stage times, full copy [cycles of a 200 MHz P6]", points))
}

func fig8(p experiments.Params) {
	points := experiments.Fig9(p)
	fmt.Println(experiments.Fig8FromSweep(points))
}

func fig9(p experiments.Params) {
	points := experiments.Fig9(p)
	fmt.Println(experiments.StageTable(
		"Figure 9: buffer switch stage times, improved (valid-only) copy [cycles]", points))
}

func overhead(p experiments.Params) {
	rep := experiments.Overhead(p)
	fmt.Println(experiments.OverheadTable(rep))
}

func credits(p experiments.Params) {
	fmt.Println(experiments.CreditsTable(experiments.Credits()))
}

func schemes(p experiments.Params) {
	fmt.Println(experiments.SchemesTable(experiments.Schemes(p)))
}

func dyncos(p experiments.Params) {
	fmt.Println(experiments.ResponsivenessTable(experiments.Responsiveness(p)))
}
