module gangfm

go 1.22
