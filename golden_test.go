package gangfm

// Golden-output determinism tests. Every figure table and chaos trace is a
// pure function of its seeds, so the rendered bytes are frozen in
// testdata/golden and any change to them — however small — fails loudly.
// This is the guard that lets the simulator internals (event queue, packet
// pooling, sweep scheduling) be rebuilt for speed: the observable results
// must stay byte-identical.
//
// Regenerate with:  go test -run TestGolden -update

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gangfm/internal/chaos"
	"gangfm/internal/experiments"
	"gangfm/internal/parpar"
	"gangfm/internal/workload"
)

var update = flag.Bool("update", false, "rewrite testdata/golden from current output")

func goldenCompare(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(want, []byte(got)) {
		t.Errorf("%s diverged from golden output\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// TestGoldenFigures freezes every table gangsim can print, in quick mode
// (the full sweeps render through the same code paths with more rows).
func TestGoldenFigures(t *testing.T) {
	p := experiments.Params{Quick: true, Parallel: 4}
	tables := []struct {
		name   string
		render func() string
	}{
		{"credits.txt", func() string { return fmt.Sprint(experiments.CreditsTable(experiments.Credits())) }},
		{"fig5.txt", func() string { return fmt.Sprint(experiments.Fig5Table(experiments.Fig5(p))) }},
		{"fig6.txt", func() string { return fmt.Sprint(experiments.Fig6Table(experiments.Fig6(p))) }},
		{"fig7.txt", func() string {
			return fmt.Sprint(experiments.StageTable("Figure 7: buffer switch stage times, full copy [cycles of a 200 MHz P6]",
				experiments.Fig7(p)))
		}},
		{"fig8.txt", func() string { return fmt.Sprint(experiments.Fig8FromSweep(experiments.Fig9(p))) }},
		{"fig9.txt", func() string {
			return fmt.Sprint(experiments.StageTable("Figure 9: buffer switch stage times, improved (valid-only) copy [cycles]",
				experiments.Fig9(p)))
		}},
		{"overhead.txt", func() string { return fmt.Sprint(experiments.OverheadTable(experiments.Overhead(p))) }},
		{"schemes.txt", func() string { return fmt.Sprint(experiments.SchemesTable(experiments.Schemes(p))) }},
		{"dyncos.txt", func() string { return fmt.Sprint(experiments.ResponsivenessTable(experiments.Responsiveness(p))) }},
		{"sched.txt", func() string { return fmt.Sprint(experiments.SchedTable(experiments.Sched(p))) }},
		{"churn.txt", func() string {
			rs := experiments.Churn(p)
			return fmt.Sprint(experiments.ChurnGrid(rs)) + "\n" + fmt.Sprint(experiments.ChurnStats(rs))
		}},
		{"churn_crash.txt", func() string {
			rs := experiments.ChurnCrash(p)
			return fmt.Sprint(experiments.ChurnGrid(rs)) + "\n" +
				fmt.Sprint(experiments.ChurnAvailability(rs)) + "\n" +
				fmt.Sprint(experiments.ChurnStats(rs))
		}},
		{"churn_repair.txt", func() string {
			rs := experiments.ChurnRepair(p)
			return fmt.Sprint(experiments.ChurnGrid(rs)) + "\n" +
				fmt.Sprint(experiments.ChurnAvailability(rs)) + "\n" +
				fmt.Sprint(experiments.ChurnStats(rs))
		}},
	}
	for _, tb := range tables {
		tb := tb
		t.Run(strings.TrimSuffix(tb.name, ".txt"), func(t *testing.T) {
			goldenCompare(t, tb.name, tb.render())
		})
	}
}

// TestGoldenChaosTrace freezes the injector's firing trace for a fixed
// seed and fault plan on a 4-node cluster: the trace records every
// RNG-driven decision at the instant it is made, so any reordering of
// packet sends — or any change to packet field contents — shows up here.
func TestGoldenChaosTrace(t *testing.T) {
	cfg := parpar.DefaultConfig(4)
	cfg.Slots = 2
	cfg.Quantum = 2_000_000
	cfg.Chaos = &chaos.Plan{
		Seed: 42,
		Faults: []chaos.Fault{
			{Kind: chaos.DataLoss, Prob: 0.02, Node: -1},
			{Kind: chaos.DataDup, Prob: 0.01, Node: -1},
			{Kind: chaos.RefillLoss, Prob: 0.05, Node: -1},
			{Kind: chaos.CtrlDelay, Prob: 0.1, Delay: 50_000},
		},
	}
	cluster, err := parpar.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Submit(workload.AllToAll("golden-a", 4, 30, 1536)); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Submit(workload.AllToAll("golden-b", 4, 30, 1536)); err != nil {
		t.Fatal(err)
	}
	cluster.RunUntil(60_000_000)
	trace := strings.Join(cluster.ChaosTrace(), "\n") + "\n"
	goldenCompare(t, "chaos_trace.txt", trace)
}
