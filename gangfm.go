// Package gangfm is a simulation-backed reproduction of "User-Level
// Communication in a System with Gang Scheduling" (Yoav Etsion and Dror G.
// Feitelson, IPPS 2001): the ParPar cluster, the Fast Messages (FM)
// user-level communication library on Myrinet, and the paper's
// contribution — swapping the NIC communication buffers as part of the
// gang-scheduling context switch so every running process gets the full
// buffer (and therefore the full credit window) instead of a 1/n² share.
//
// This root package is the public façade: it re-exports the pieces a user
// composes — cluster construction, job submission, the benchmark
// workloads, and the experiment harness that regenerates every figure of
// the paper. The implementation lives in the internal packages:
//
//	internal/sim         deterministic discrete-event kernel (cycles of a 200 MHz P6)
//	internal/memmodel    memory cost model (host copies, write-combining, DMA)
//	internal/myrinet     the Myrinet fabric: FIFO routes, serialized ports, injector seam
//	internal/lanai       the LANai card: contexts, send scanner, receive DMA, flush protocol
//	internal/fm          the FM library: fragmentation, credits, refills, host cost model
//	internal/core        glueFM (Table 1 API) and the buffer-switching context switch
//	internal/gang        the gang matrix with DHC buddy placement
//	internal/parpar      masterd/noded daemons, control network, job lifecycle (Fig 2)
//	internal/workload    the paper's benchmarks plus application kernels (BSP, stencil, master-worker)
//	internal/altsched    related-work alternatives (SHARE-style discard, PM-style flush)
//	internal/chaos       fault injection + invariant auditing (and chaos/fuzzer)
//	internal/schedeval   trace-driven scheduler evaluation (job streams, per-job slowdown)
//	internal/experiments the figure/table regenerators
//
// # Quick start
//
//	cfg := gangfm.DefaultClusterConfig(16)     // 16-node ParPar, switched buffers
//	cluster, err := gangfm.NewCluster(cfg)
//	if err != nil { ... }
//	job, err := cluster.Submit(gangfm.Bandwidth("bw", 10000, 16384))
//	if err != nil { ... }
//	cluster.Run()
//	res, _ := gangfm.ExtractBandwidth(job)
//	fmt.Printf("%.1f MB/s\n", res.MBs(gangfm.Clock()))
//
// Everything is simulated on a virtual clock, so runs are deterministic
// and take milliseconds of real time regardless of the virtual duration.
package gangfm

import (
	"gangfm/internal/chaos"
	"gangfm/internal/core"
	"gangfm/internal/fm"
	"gangfm/internal/gang"
	"gangfm/internal/metrics"
	"gangfm/internal/parpar"
	"gangfm/internal/schedeval"
	"gangfm/internal/sim"
	"gangfm/internal/workload"
)

// Cluster is a simulated ParPar machine: compute nodes with Myrinet NICs,
// the masterd gang scheduler, and the control network.
type Cluster = parpar.Cluster

// ClusterConfig parameterizes a cluster (node count, slot-table depth,
// buffer policy, copy algorithm, quantum, daemon latencies).
type ClusterConfig = parpar.Config

// Job is a submitted parallel application.
type Job = parpar.Job

// JobSpec describes a job: size and per-rank program factory.
type JobSpec = parpar.JobSpec

// Program is one process's application code.
type Program = parpar.Program

// ProgramFunc adapts a function to Program.
type ProgramFunc = parpar.ProgramFunc

// Proc is the harness handle a Program communicates through.
type Proc = parpar.Proc

// JobState tracks a job through its lifecycle.
type JobState = parpar.JobState

// Job lifecycle states.
const (
	// JobLoading: nodes are allocating contexts and forking (Fig 2).
	JobLoading = parpar.JobLoading
	// JobRunning: the all-up synchronization completed.
	JobRunning = parpar.JobRunning
	// JobDone: every rank reported completion.
	JobDone = parpar.JobDone
	// JobKilled: the job spanned an evicted node and was terminated by
	// the recovery layer (see Recovery).
	JobKilled = parpar.JobKilled
)

// Policy selects how NIC buffer space is shared among time-sliced
// processes.
type Policy = fm.Policy

// Buffer-sharing policies.
const (
	// Partitioned statically divides the buffers among the maximum
	// number of contexts (original FM 2.0; credits fall as 1/n²).
	Partitioned = fm.Partitioned
	// Switched gives the running process the whole buffer and swaps
	// contents at gang context switches (the paper's contribution).
	Switched = fm.Switched
)

// CopyMode selects the buffer-switch algorithm.
type CopyMode = core.CopyMode

// Buffer-switch algorithms.
const (
	// FullCopy copies the entire buffer regions (≤85 ms on the paper's
	// hardware).
	FullCopy = core.FullCopy
	// ValidOnly scans for and copies only valid packets (≤12.5 ms).
	ValidOnly = core.ValidOnly
)

// Time is a point or span on the virtual clock, in CPU cycles of the
// simulated 200 MHz Pentium Pro.
type Time = sim.Time

// BandwidthResult is the measurement reported by a bandwidth job.
type BandwidthResult = workload.BandwidthResult

// AllToAllResult is the per-rank measurement of an all-to-all job.
type AllToAllResult = workload.AllToAllResult

// PingPongResult is the measurement reported by a ping-pong job.
type PingPongResult = workload.PingPongResult

// FaultPlan is a seeded, schedulable fault plan for chaos runs; set it on
// ClusterConfig.Chaos to inject packet loss/duplication, control-network
// faults, CPU pauses/slowdowns, and backing-store corruption. The zero
// plan injects nothing.
type FaultPlan = chaos.Plan

// Fault is one schedulable fault event of a FaultPlan.
type Fault = chaos.Fault

// FaultKind enumerates the injectable fault classes.
type FaultKind = chaos.FaultKind

// Injectable fault classes.
const (
	// DataLoss drops data packets — the paper's §2.2 fragility.
	DataLoss = chaos.DataLoss
	// DataDup duplicates data packets.
	DataDup = chaos.DataDup
	// RefillLoss drops explicit credit-refill packets.
	RefillLoss = chaos.RefillLoss
	// HaltLoss drops flush-protocol halt packets (stage 1).
	HaltLoss = chaos.HaltLoss
	// ReadyLoss drops flush-protocol ready packets (stage 3).
	ReadyLoss = chaos.ReadyLoss
	// StoreCorrupt flips state in a parked job's backing store.
	StoreCorrupt = chaos.StoreCorrupt
	// CtrlLoss drops masterd/noded control messages.
	CtrlLoss = chaos.CtrlLoss
	// CtrlDelay delays masterd/noded control messages.
	CtrlDelay = chaos.CtrlDelay
	// NodePause blocks one node's host CPU for a window.
	NodePause = chaos.NodePause
	// NodeSlow steals a fraction of one node's host CPU for a window.
	NodeSlow = chaos.NodeSlow
	// NodeCrash permanently halts one node's host CPU from its From time
	// (fail-stop). With Recovery enabled the node is detected, evicted,
	// and the jobs spanning it are killed; without, the machine wedges.
	NodeCrash = chaos.NodeCrash
)

// Violation is one invariant breach recorded by the auditor.
type Violation = chaos.Violation

// Auditor is the cluster's invariant auditor; Cluster.Auditor() returns it
// after a run for inspection (Ok, Violations, Summary).
type Auditor = chaos.Auditor

// Loss returns the classic fault plan of paper §2.2: open-ended uniform
// data-packet loss on every link, driven by seed.
func Loss(seed uint64, prob float64) FaultPlan { return chaos.Loss(seed, prob) }

// Recovery parameterizes the opt-in self-healing switch layer: halt/ready
// retransmission on the NIC, reliable daemon messaging, and the masterd
// watchdog that evicts failed nodes. Set ClusterConfig.Recovery to enable;
// nil (the default) leaves the cluster byte-identical to the base
// protocol the paper describes.
type Recovery = parpar.Recovery

// DefaultRecovery returns recovery budgets scaled to a scheduling quantum.
func DefaultRecovery(quantum Time) Recovery { return parpar.DefaultRecovery(quantum) }

// NewCluster assembles a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return parpar.New(cfg) }

// DefaultClusterConfig returns the paper's setup for the given node count:
// switched buffers with the improved copy, 4 slots, 1 s quantum.
func DefaultClusterConfig(nodes int) ClusterConfig { return parpar.DefaultConfig(nodes) }

// Clock returns the simulated 200 MHz clock, for converting Time to wall
// durations and rates.
func Clock() sim.Clock { return sim.DefaultClock }

// Bandwidth returns the paper's point-to-point bandwidth benchmark (§4.1):
// msgs messages of size bytes from rank 0 to rank 1, finish-message timed.
func Bandwidth(name string, msgs, size int) JobSpec { return workload.Bandwidth(name, msgs, size) }

// AllToAll returns the paper's all-to-all stress benchmark (§4.2).
func AllToAll(name string, ranks, perPeer, size int) JobSpec {
	return workload.AllToAll(name, ranks, perPeer, size)
}

// PingPong returns a two-rank latency benchmark.
func PingPong(name string, rounds, size int) JobSpec { return workload.PingPong(name, rounds, size) }

// ExtractBandwidth pulls the BandwidthResult out of a finished job.
func ExtractBandwidth(job *Job) (BandwidthResult, error) { return workload.ExtractBandwidth(job) }

// ExtractAllToAll pulls the per-rank results out of a finished job.
func ExtractAllToAll(job *Job) ([]AllToAllResult, error) { return workload.ExtractAllToAll(job) }

// BSP returns a bulk-synchronous kernel: phases of compute followed by an
// exchange with every peer and a barrier (workload kernels, §scheduling).
func BSP(name string, ranks, phases, perPeer, size int, compute Time) JobSpec {
	return workload.BSP(name, ranks, phases, perPeer, size, compute)
}

// Stencil returns an iterative halo-exchange kernel on a ring.
func Stencil(name string, ranks, iters, halo int, compute Time) JobSpec {
	return workload.Stencil(name, ranks, iters, halo, compute)
}

// MasterWorker returns a task-bag kernel: rank 0 deals tasks, workers
// compute and return completions until the bag drains.
func MasterWorker(name string, ranks, tasks, taskBytes int, compute Time) JobSpec {
	return workload.MasterWorker(name, ranks, tasks, taskBytes, compute)
}

// PackingPolicy decides where the gang matrix places a job: which node
// columns and which time slot.
type PackingPolicy = gang.Policy

// Packing policies for ClusterConfig.Packing and SchedConfig.Packing.
var (
	// PackBuddy is the DHC buddy scheme (the matrix default).
	PackBuddy PackingPolicy = gang.Buddy{}
	// PackFirstFit takes the leftmost free run in the lowest row.
	PackFirstFit PackingPolicy = gang.FirstFit{}
	// PackBestFit takes the tightest free run and unifies slots on exit.
	PackBestFit PackingPolicy = gang.BestFit{}
)

// PackingPolicies returns every built-in packing policy.
func PackingPolicies() []PackingPolicy { return gang.Policies() }

// Table is the aligned text table the experiment and evaluation renderers
// produce.
type Table = metrics.Table

// SchedTraceJob is one arrival of a scheduler-evaluation trace.
type SchedTraceJob = schedeval.TraceJob

// SchedGenConfig parameterizes the seeded job-stream generator.
type SchedGenConfig = schedeval.GenConfig

// SchedConfig parameterizes one scheduler-evaluation run.
type SchedConfig = schedeval.Config

// SchedResult aggregates one run's per-job and whole-stream metrics.
type SchedResult = schedeval.Result

// SchedJobMetrics is one trace job's fate under a run.
type SchedJobMetrics = schedeval.JobMetrics

// DefaultSchedGenConfig returns the generator defaults for a machine size.
func DefaultSchedGenConfig(nodes int) SchedGenConfig { return schedeval.DefaultGenConfig(nodes) }

// GenerateSchedTrace produces a seeded, deterministic arrival stream.
func GenerateSchedTrace(cfg SchedGenConfig) ([]SchedTraceJob, error) { return schedeval.Generate(cfg) }

// DefaultSchedConfig returns the evaluation setup for a machine size (deep
// slot table, switched credits, improved copy).
func DefaultSchedConfig(nodes int) SchedConfig { return schedeval.DefaultConfig(nodes) }

// RunSched replays a trace under one (credit scheme, packing policy)
// combination and reports per-job response, bounded slowdown, utilization
// and switch counts.
func RunSched(cfg SchedConfig) (*SchedResult, error) { return schedeval.Run(cfg) }

// CompareSched replays the same trace across a grid of credit schemes and
// packing policies.
func CompareSched(base SchedConfig, schemes []Policy, packings []PackingPolicy) ([]*SchedResult, error) {
	return schedeval.Compare(base, schemes, packings)
}

// SchedSummaryTable renders one summary row per evaluation run.
func SchedSummaryTable(rs []*SchedResult) *Table { return schedeval.SummaryTable(rs) }

// SchedJobTable renders a run's per-job metrics.
func SchedJobTable(r *SchedResult) *Table { return schedeval.JobTable(r) }
