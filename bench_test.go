package gangfm

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, plus micro-benchmarks of the underlying machinery.
// Each figure benchmark runs its sweep in Quick mode (use cmd/gangsim for
// the full sweeps) and reports the headline quantity as a custom metric,
// so `go test -bench=. -benchmem` doubles as a regression check on the
// reproduced results.

import (
	"runtime"
	"testing"

	"gangfm/internal/core"
	"gangfm/internal/experiments"
	"gangfm/internal/fm"
	"gangfm/internal/parpar"
	"gangfm/internal/sim"
	"gangfm/internal/workload"
)

func benchParams() experiments.Params {
	return experiments.Params{Quick: true, Parallel: runtime.NumCPU()}
}

// BenchmarkFig5 regenerates the partitioned-buffer bandwidth surface and
// reports the single-context 64 KB peak (paper Figure 5).
func BenchmarkFig5(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		points := experiments.Fig5(benchParams())
		for _, pt := range points {
			if pt.Contexts == 1 && pt.MBs > peak {
				peak = pt.MBs
			}
		}
	}
	b.ReportMetric(peak, "peak-MB/s")
}

// BenchmarkFig6 regenerates the buffer-switching aggregate-bandwidth
// surface and reports the worst-case sag of the 8-job aggregate relative
// to the single-job baseline (paper Figure 6: ~flat).
func BenchmarkFig6(b *testing.B) {
	var sag float64 = 1
	for i := 0; i < b.N; i++ {
		points := experiments.Fig6(benchParams())
		base := map[int]float64{}
		for _, pt := range points {
			if pt.Jobs == 1 {
				base[pt.MsgSize] = pt.AggregateMBs
			}
		}
		for _, pt := range points {
			if pt.Jobs == 8 && base[pt.MsgSize] > 0 {
				if r := pt.AggregateMBs / base[pt.MsgSize]; r < sag {
					sag = r
				}
			}
		}
	}
	b.ReportMetric(sag, "8job/1job-ratio")
}

// BenchmarkFig7 regenerates the full-copy switch-stage sweep and reports
// the 16-node buffer-switch stage cost in cycles (paper Figure 7: ~14M,
// node-count independent).
func BenchmarkFig7(b *testing.B) {
	var copyCycles float64
	for i := 0; i < b.N; i++ {
		points := experiments.Fig7(benchParams())
		copyCycles = points[len(points)-1].CopyCycles
	}
	b.ReportMetric(copyCycles, "copy-cycles")
}

// BenchmarkFig8 regenerates the buffer-occupancy sweep and reports the
// 16-node mean receive-buffer occupancy at switch time (paper Figure 8:
// grows with node count).
func BenchmarkFig8(b *testing.B) {
	var occ float64
	for i := 0; i < b.N; i++ {
		points := experiments.Fig9(benchParams())
		occ = points[len(points)-1].ValidRecv
	}
	b.ReportMetric(occ, "recv-packets")
}

// BenchmarkFig9 regenerates the improved-copy switch-stage sweep and
// reports the 16-node buffer-switch stage cost (paper Figure 9: <2.5M
// cycles, linear in the valid packet count).
func BenchmarkFig9(b *testing.B) {
	var copyCycles float64
	for i := 0; i < b.N; i++ {
		points := experiments.Fig9(benchParams())
		copyCycles = points[len(points)-1].CopyCycles
	}
	b.ReportMetric(copyCycles, "copy-cycles")
}

// BenchmarkOverhead reproduces the §4.2 overhead summary and reports the
// improved buffer switch as a percentage of a 1-second quantum (paper:
// <1.25%).
func BenchmarkOverhead(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		rep := experiments.Overhead(benchParams())
		pct = experiments.PercentOfQuantum(rep.Improved.CopyCycles)
	}
	b.ReportMetric(pct, "%quantum")
}

// BenchmarkCreditsTable regenerates the §2.2/§3.3 credit comparison.
func BenchmarkCreditsTable(b *testing.B) {
	var c0 int
	for i := 0; i < b.N; i++ {
		rows := experiments.Credits()
		c0 = rows[0].SwitchedC0
	}
	b.ReportMetric(float64(c0), "C0-switched")
}

// --- micro-benchmarks of the machinery -------------------------------------

// BenchmarkBandwidthPoint measures the cost of simulating one bandwidth
// benchmark end to end (cluster build, Fig 2 launch, 500 x 16 KB, teardown)
// and reports the virtual bandwidth it produced.
func BenchmarkBandwidthPoint(b *testing.B) {
	b.ReportAllocs()
	var mbs float64
	for i := 0; i < b.N; i++ {
		cluster, err := NewCluster(DefaultClusterConfig(2))
		if err != nil {
			b.Fatal(err)
		}
		job, err := cluster.Submit(Bandwidth("bench", 500, 16384))
		if err != nil {
			b.Fatal(err)
		}
		cluster.Run()
		res, err := ExtractBandwidth(job)
		if err != nil {
			b.Fatal(err)
		}
		mbs = res.MBs(Clock())
	}
	b.ReportMetric(mbs, "virtual-MB/s")
}

// BenchmarkSwitchFullCopy measures one three-stage switch with the full
// buffer copy on a 16-node cluster (virtual cost ~16M cycles).
func BenchmarkSwitchFullCopy(b *testing.B) { benchSwitch(b, core.FullCopy) }

// BenchmarkSwitchValidOnly measures one three-stage switch with the
// improved copy.
func BenchmarkSwitchValidOnly(b *testing.B) { benchSwitch(b, core.ValidOnly) }

func benchSwitch(b *testing.B, mode core.CopyMode) {
	b.ReportAllocs()
	cfg := parpar.DefaultConfig(16)
	cfg.Mode = mode
	cfg.Slots = 2
	cfg.Quantum = 4_000_000
	var total sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cluster, err := parpar.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cluster.Submit(workload.AllToAll("a", 16, 40, 1536))
		cluster.Submit(workload.AllToAll("b", 16, 40, 1536))
		b.StartTimer()
		cluster.Run()
		b.StopTimer()
		var sum sim.Time
		n := 0
		for _, hist := range cluster.SwitchHistory() {
			for _, s := range hist {
				if s.From >= 0 && s.To >= 0 { // steady-state switches only
					sum += s.Total()
					n++
				}
			}
		}
		if n > 0 {
			total = sum / sim.Time(n)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(total), "virtual-cycles/switch")
}

// BenchmarkEngineThroughput measures raw simulator event throughput. The
// hot path is allocation-free (see internal/sim): allocs/op must stay 0.
func BenchmarkEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			eng.Schedule(1, step)
		}
	}
	b.ResetTimer()
	eng.Schedule(1, step)
	eng.Run()
}

// BenchmarkAllocate measures the credit-policy computation.
func BenchmarkAllocate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := fm.Allocate(fm.Partitioned, 252, 668, 1+i%8, 16); err != nil && i%8 < 6 {
			b.Fatal(err)
		}
	}
}

// BenchmarkPingPongLatency reports the simulated 64-byte round-trip time.
func BenchmarkPingPongLatency(b *testing.B) {
	var rtt sim.Time
	for i := 0; i < b.N; i++ {
		cluster, err := NewCluster(DefaultClusterConfig(2))
		if err != nil {
			b.Fatal(err)
		}
		job, err := cluster.Submit(PingPong("bench", 200, 64))
		if err != nil {
			b.Fatal(err)
		}
		cluster.Run()
		rtt = job.Results[0].(PingPongResult).RoundTrip()
	}
	b.ReportMetric(float64(rtt), "virtual-cycles/rt")
}
