#!/bin/sh
# ci.sh — the repository's CI gate, runnable locally or from a workflow.
# Equivalent to `make check`; kept as a script so CI needs only a shell.
set -eux

go vet ./...
go build ./...
go test -race ./...
# The concurrent components — the sharded parallel engine and the sweep
# harness — get an explicit -race pass even when the full matrix above is
# trimmed; the root package holds the sharded-vs-serial equivalence tests,
# whose windowed worker pools are the hottest synchronization in the tree.
go test -race ./internal/sim/... ./internal/experiments/...
go test -race -run 'TestParallel' .

# Chaos-fuzz smoke: a short fixed-seed campaign plus the paper-§2.2
# differential (FM wedges under loss, go-back-N recovers). Both are
# deterministic by construction, so they are safe to gate on.
go run ./cmd/gangsim fuzz -seed 1 -runs 5
go run ./cmd/gangsim fuzz -compare -seed 77

# Recovery differential: each sampled plan runs bare and with the
# self-healing switch layer; any recovery-enabled failure exits non-zero.
go run ./cmd/gangsim fuzz -recovery -seed 1 -runs 25

# Scheduler-evaluation smoke: the sched tables are a pure function of the
# seed, so run the quick grid twice and demand byte-identical output.
go run ./cmd/gangsim sched -quick > /tmp/sched-ci-a.txt
go run ./cmd/gangsim sched -quick > /tmp/sched-ci-b.txt
cmp /tmp/sched-ci-a.txt /tmp/sched-ci-b.txt

# Online-scheduling smoke: the churn grid and its full decision logs are
# also a pure function of the seed — run twice (the second time on the
# sharded engine with 4 workers) and demand byte-identical output.
go run ./cmd/gangsim churn -quick -log > /tmp/churn-ci-a.txt
go run ./cmd/gangsim churn -quick -log -shards 4 -workers 4 > /tmp/churn-ci-b.txt
cmp /tmp/churn-ci-a.txt /tmp/churn-ci-b.txt

# Failure-aware smoke: crashes armed on top of the churn stream. Crash
# plans force the sharded engine into lockstep, so the availability table
# and the full decision logs must also be byte-identical with the second
# leg sharded.
go run ./cmd/gangsim churn -quick -crash 0.35 -adaptive -log > /tmp/churn-crash-ci-a.txt
go run ./cmd/gangsim churn -quick -crash 0.35 -adaptive -log -shards 4 -workers 4 > /tmp/churn-crash-ci-b.txt
cmp /tmp/churn-crash-ci-a.txt /tmp/churn-crash-ci-b.txt

# Repair smoke: the closed failure loop — heartbeat detection plus node
# rejoin on top of the crash machinery. Same lockstep promise, so the
# second (sharded) leg must again be byte-identical.
go run ./cmd/gangsim churn -quick -crash 0.35 -repair 0.75 -adaptive -log > /tmp/churn-repair-ci-a.txt
go run ./cmd/gangsim churn -quick -crash 0.35 -repair 0.75 -adaptive -log -shards 4 -workers 4 > /tmp/churn-repair-ci-b.txt
cmp /tmp/churn-repair-ci-a.txt /tmp/churn-repair-ci-b.txt

# Benchmark pipeline smoke: the report must build and serialize, and the
# -compare path must parse it back and pass against itself re-measured
# (allocs/event is deterministic, so self-comparison never regresses).
go run ./cmd/gangsim bench -quick -o /tmp/bench-ci.json
go run ./cmd/gangsim bench -quick -o /tmp/bench-ci2.json -compare /tmp/bench-ci.json

# Hot-path closure lint: audited packages must stay closure-free at their
# Schedule/At call sites (allowlist in tools/hotpath_allow.txt).
make lint-hotpath
