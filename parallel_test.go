package gangfm

// Sharded-engine equivalence harness. The parallel DES (internal/sim.Group)
// promises that sharding a cluster across event lanes — at any worker
// count — leaves every observable result identical to the single-engine
// run. These tests hold it to that promise against the same golden files
// the serial simulator is frozen to: the figure tables and the chaos
// injector trace must come out byte-for-byte the same whether the engine
// runs unsharded, sharded in lockstep, or sharded across concurrent
// windows. Run them under -race (make race) to check the windowed path's
// synchronization as well as its semantics.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"gangfm/internal/chaos"
	"gangfm/internal/experiments"
	"gangfm/internal/parpar"
	"gangfm/internal/workload"
)

// workerCounts is the sweep of satellite worker pools: the serial-identical
// lockstep path (1), small pools (2, 4), and whatever this machine offers.
func workerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// TestParallelEquivalenceFigures re-renders the figure tables with the
// cluster sharded, at every worker count, and compares each against the
// golden bytes the unsharded runs are frozen to (golden_test.go). A
// lookahead bug, a mis-merged per-shard counter, or a reordered RNG draw
// all surface here as a table diff.
func TestParallelEquivalenceFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded equivalence sweep is not short")
	}
	tables := []struct {
		golden string
		shards int
		render func(p experiments.Params) string
	}{
		{"fig5.txt", 4, func(p experiments.Params) string {
			return fmt.Sprint(experiments.Fig5Table(experiments.Fig5(p)))
		}},
		{"fig6.txt", 2, func(p experiments.Params) string {
			return fmt.Sprint(experiments.Fig6Table(experiments.Fig6(p)))
		}},
		{"sched.txt", 4, func(p experiments.Params) string {
			return fmt.Sprint(experiments.SchedTable(experiments.Sched(p)))
		}},
		// The crash showdown arms chaos plans, which force every cluster
		// into lockstep regardless of the worker count — this row checks
		// that promise end to end: eviction order, requeue backoff, and
		// the availability table must be byte-identical at any setting.
		{"churn_crash.txt", 4, func(p experiments.Params) string {
			rs := experiments.ChurnCrash(p)
			return fmt.Sprint(experiments.ChurnGrid(rs)) + "\n" +
				fmt.Sprint(experiments.ChurnAvailability(rs)) + "\n" +
				fmt.Sprint(experiments.ChurnStats(rs))
		}},
		// The repair showdown adds the rejoin barrier, heartbeat probes, and
		// revived columns on top of the crash machinery; the same lockstep
		// promise must hold through all of it.
		{"churn_repair.txt", 4, func(p experiments.Params) string {
			rs := experiments.ChurnRepair(p)
			return fmt.Sprint(experiments.ChurnGrid(rs)) + "\n" +
				fmt.Sprint(experiments.ChurnAvailability(rs)) + "\n" +
				fmt.Sprint(experiments.ChurnStats(rs))
		}},
	}
	for _, tb := range tables {
		tb := tb
		for _, w := range workerCounts() {
			w := w
			name := fmt.Sprintf("%s/shards=%d/workers=%d",
				strings.TrimSuffix(tb.golden, ".txt"), tb.shards, w)
			t.Run(name, func(t *testing.T) {
				p := experiments.Params{Quick: true, Parallel: 2, Shards: tb.shards, Workers: w}
				goldenCompare(t, tb.golden, tb.render(p))
			})
		}
	}
}

// chaosCluster builds the TestGoldenChaosTrace cluster with the given
// shard/worker counts and runs the fixed two-job workload under the seeded
// fault plan.
func chaosCluster(t *testing.T, shards, workers int) *parpar.Cluster {
	t.Helper()
	cfg := parpar.DefaultConfig(4)
	cfg.Slots = 2
	cfg.Quantum = 2_000_000
	cfg.Shards = shards
	cfg.Workers = workers
	cfg.Chaos = &chaos.Plan{
		Seed: 42,
		Faults: []chaos.Fault{
			{Kind: chaos.DataLoss, Prob: 0.02, Node: -1},
			{Kind: chaos.DataDup, Prob: 0.01, Node: -1},
			{Kind: chaos.RefillLoss, Prob: 0.05, Node: -1},
			{Kind: chaos.CtrlDelay, Prob: 0.1, Delay: 50_000},
		},
	}
	cluster, err := parpar.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"golden-a", "golden-b"} {
		if _, err := cluster.Submit(workload.AllToAll(name, 4, 30, 1536)); err != nil {
			t.Fatal(err)
		}
	}
	cluster.RunUntil(60_000_000)
	return cluster
}

// TestParallelEquivalenceChaos replays the golden fault plan on a sharded
// cluster. An armed chaos plan forces the group into lockstep — the
// injector's RNG is a sequential machine whose draw order is part of the
// replay contract — so the injector trace must match the frozen golden
// trace exactly, and the auditor must reach the same verdict as the
// unsharded run.
func TestParallelEquivalenceChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded equivalence sweep is not short")
	}
	serial := chaosCluster(t, 1, 1)
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sharded := chaosCluster(t, shards, 4)
			trace := strings.Join(sharded.ChaosTrace(), "\n") + "\n"
			goldenCompare(t, "chaos_trace.txt", trace)
			if got, want := sharded.Auditor().Ok(), serial.Auditor().Ok(); got != want {
				t.Errorf("auditor verdict diverged: sharded Ok=%v, serial Ok=%v", got, want)
			}
			gotV := sharded.Auditor().Violations()
			wantV := serial.Auditor().Violations()
			if len(gotV) != len(wantV) {
				t.Fatalf("violation count diverged: sharded %d, serial %d", len(gotV), len(wantV))
			}
			for i := range gotV {
				if gotV[i] != wantV[i] {
					t.Errorf("violation %d diverged: sharded %v, serial %v", i, gotV[i], wantV[i])
				}
			}
		})
	}
}
