package gangfm

import (
	"testing"
)

// The façade tests exercise the public API end to end, the way the README
// quick start does.

func TestQuickstartFlow(t *testing.T) {
	cluster, err := NewCluster(DefaultClusterConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	job, err := cluster.Submit(Bandwidth("t", 200, 8192))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run()
	res, err := ExtractBandwidth(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.MBs(Clock()) < 30 {
		t.Fatalf("bandwidth %.1f MB/s implausibly low", res.MBs(Clock()))
	}
}

func TestPolicyConstantsRoundTrip(t *testing.T) {
	cfg := DefaultClusterConfig(2)
	cfg.Policy = Partitioned
	cfg.Mode = FullCopy
	if _, err := NewCluster(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Policy = Switched
	cfg.Mode = ValidOnly
	if _, err := NewCluster(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCustomProgramViaFacade(t *testing.T) {
	cluster, err := NewCluster(DefaultClusterConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// A user-written program: rank 0 sends one message, rank 1 reports
	// its payload size.
	spec := JobSpec{
		Name: "custom",
		Size: 2,
		NewProgram: func(rank int) Program {
			return ProgramFunc(func(p *Proc) {
				if rank == 0 {
					p.EP.Send(1, 999, nil)
					p.Done(nil)
				} else {
					p.EP.SetHandler(func(src, size int, _ []byte) {
						p.Done(size)
					})
				}
			})
		},
	}
	job, err := cluster.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run()
	if job.Results[1] != 999 {
		t.Fatalf("custom program result = %v", job.Results[1])
	}
}

func TestAllToAllFacade(t *testing.T) {
	cluster, err := NewCluster(DefaultClusterConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	job, err := cluster.Submit(AllToAll("t", 3, 10, 512))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run()
	results, err := ExtractAllToAll(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Sent != 20 || r.Received != 20 {
			t.Fatalf("rank %d: %d/%d", r.Rank, r.Sent, r.Received)
		}
	}
}

func TestClockFacade(t *testing.T) {
	if Clock().Hz != 200_000_000 {
		t.Fatalf("clock = %d Hz, want the paper's 200 MHz", Clock().Hz)
	}
}

// TestRecoveryFacade drives the self-healing layer end to end through the
// public API: a node crash under Recovery ends with the spanning job
// killed, a clean auditor, and the run still completing.
func TestRecoveryFacade(t *testing.T) {
	cfg := DefaultClusterConfig(2)
	cfg.Quantum = 400_000
	r := DefaultRecovery(cfg.Quantum)
	cfg.Recovery = &r
	cfg.Chaos = &FaultPlan{Seed: 7, Faults: []Fault{
		{Kind: NodeCrash, Node: 1, From: 10_000},
	}}
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := cluster.Submit(PingPong("doomed", 5, 64))
	if err != nil {
		t.Fatal(err)
	}
	cluster.RunUntil(50 * cfg.Quantum)
	if job.State() != JobKilled {
		t.Fatalf("job spanning the crashed node is %v, want killed", job.State())
	}
	if !cluster.Auditor().Ok() {
		t.Fatalf("recovery run reported violations: %s", cluster.Auditor().Summary())
	}
}
