package gangfm

import (
	"testing"
)

// The façade tests exercise the public API end to end, the way the README
// quick start does.

func TestQuickstartFlow(t *testing.T) {
	cluster, err := NewCluster(DefaultClusterConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	job, err := cluster.Submit(Bandwidth("t", 200, 8192))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run()
	res, err := ExtractBandwidth(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.MBs(Clock()) < 30 {
		t.Fatalf("bandwidth %.1f MB/s implausibly low", res.MBs(Clock()))
	}
}

func TestPolicyConstantsRoundTrip(t *testing.T) {
	cfg := DefaultClusterConfig(2)
	cfg.Policy = Partitioned
	cfg.Mode = FullCopy
	if _, err := NewCluster(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Policy = Switched
	cfg.Mode = ValidOnly
	if _, err := NewCluster(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCustomProgramViaFacade(t *testing.T) {
	cluster, err := NewCluster(DefaultClusterConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// A user-written program: rank 0 sends one message, rank 1 reports
	// its payload size.
	spec := JobSpec{
		Name: "custom",
		Size: 2,
		NewProgram: func(rank int) Program {
			return ProgramFunc(func(p *Proc) {
				if rank == 0 {
					p.EP.Send(1, 999, nil)
					p.Done(nil)
				} else {
					p.EP.SetHandler(func(src, size int, _ []byte) {
						p.Done(size)
					})
				}
			})
		},
	}
	job, err := cluster.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run()
	if job.Results[1] != 999 {
		t.Fatalf("custom program result = %v", job.Results[1])
	}
}

func TestAllToAllFacade(t *testing.T) {
	cluster, err := NewCluster(DefaultClusterConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	job, err := cluster.Submit(AllToAll("t", 3, 10, 512))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run()
	results, err := ExtractAllToAll(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Sent != 20 || r.Received != 20 {
			t.Fatalf("rank %d: %d/%d", r.Rank, r.Sent, r.Received)
		}
	}
}

func TestClockFacade(t *testing.T) {
	if Clock().Hz != 200_000_000 {
		t.Fatalf("clock = %d Hz, want the paper's 200 MHz", Clock().Hz)
	}
}
