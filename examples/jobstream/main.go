// Jobstream: the scheduler-evaluation subsystem end to end.
//
// A seeded generator produces a stream of parallel jobs — BSP phases,
// stencil halo exchanges, master-worker task bags, all-to-alls — that
// arrive over time on an 8-node machine with a deep 8-row gang matrix.
// The same stream is replayed under every packing policy with both credit
// schemes. At 8 slots the partitioned scheme's per-peer credits collapse
// to C0 = Br/(n²p) = 1, so communication-heavy jobs crawl; the paper's
// buffer switching keeps the whole window and wins on both mean bounded
// slowdown and machine utilization.
package main

import (
	"fmt"
	"log"

	"gangfm"
)

func main() {
	gen := gangfm.DefaultSchedGenConfig(8)
	gen.Seed = 7
	gen.Jobs = 12
	trace, err := gangfm.GenerateSchedTrace(gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d arrivals (seed %d); first three:\n", len(trace), gen.Seed)
	for _, j := range trace[:3] {
		fmt.Printf("  t=%dms %s size=%d msgs=%d x %dB\n",
			j.Arrive/200_000, j.Kernel, j.Size, j.Units*j.Msgs, j.MsgBytes)
	}
	fmt.Println()

	base := gangfm.DefaultSchedConfig(8)
	base.Trace = trace
	results, err := gangfm.CompareSched(base,
		[]gangfm.Policy{gangfm.Partitioned, gangfm.Switched},
		gangfm.PackingPolicies())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(gangfm.SchedSummaryTable(results))

	// The headline: per packing policy, how much of the partitioned
	// scheme's slowdown the buffer switch recovers.
	for i := 0; i < len(results); i += 2 {
		part, sw := results[i], results[i+1]
		fmt.Printf("%-9s  switched runs the stream with %.1fx lower mean bounded slowdown "+
			"(%.2f vs %.2f) at %.0f%% vs %.0f%% utilization\n",
			part.Packing, part.MeanSlowdown/sw.MeanSlowdown,
			sw.MeanSlowdown, part.MeanSlowdown,
			100*sw.Utilization, 100*part.Utilization)
	}
}
