// Switchstages: anatomy of the three-stage buffer switch (paper §3.2).
//
// Two all-to-all jobs alternate on an 8-node cluster while every context
// switch's stages are timed: halt the network (flush protocol of Figure
// 3), switch the buffers (Figure 4), and release the network. The run is
// repeated with the full-copy and the improved valid-packets-only
// algorithms, reproducing the contrast between Figures 7 and 9.
package main

import (
	"fmt"
	"log"

	"gangfm"
)

func main() {
	for _, mode := range []gangfm.CopyMode{gangfm.FullCopy, gangfm.ValidOnly} {
		halt, copy, release, validRecv, n := run(mode)
		fmt.Printf("%s: %d switches sampled\n", mode, n)
		fmt.Printf("  halt    %10.0f cycles (%.2f ms)\n", halt, ms(halt))
		fmt.Printf("  copy    %10.0f cycles (%.2f ms)  [%.1f valid recv packets]\n",
			copy, ms(copy), validRecv)
		fmt.Printf("  release %10.0f cycles (%.2f ms)\n", release, ms(release))
		fmt.Printf("  total   %10.0f cycles (%.2f ms) = %.2f%% of a 1 s quantum\n\n",
			halt+copy+release, ms(halt+copy+release), (halt+copy+release)/200_000_000*100)
	}
}

func ms(cycles float64) float64 { return cycles / 200_000_000 * 1000 }

func run(mode gangfm.CopyMode) (halt, copy, release, validRecv float64, n int) {
	cfg := gangfm.DefaultClusterConfig(8)
	cfg.Slots = 2
	cfg.Mode = mode
	cfg.Quantum = 10_000_000 // 50 ms
	cluster, err := gangfm.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cluster.Submit(gangfm.AllToAll("a2a", 8, 1200, 1536)); err != nil {
			log.Fatal(err)
		}
	}
	cluster.Run()

	for _, hist := range cluster.SwitchHistory() {
		for _, s := range hist {
			if s.From < 0 || s.To < 0 {
				continue // activation or idle switch: buffers empty
			}
			halt += float64(s.Halt)
			copy += float64(s.Copy)
			release += float64(s.Release)
			validRecv += float64(s.ValidRecv)
			n++
		}
	}
	if n > 0 {
		halt /= float64(n)
		copy /= float64(n)
		release /= float64(n)
		validRecv /= float64(n)
	}
	return halt, copy, release, validRecv, n
}
