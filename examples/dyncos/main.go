// Dyncos: gang scheduling vs dynamic coscheduling for interactive traffic
// (paper §5, Sobalvarro et al.).
//
// Gang scheduling co-schedules all of a job's processes, which is perfect
// for bulk synchronized communication — but a sparse request issued while
// the job is descheduled must wait for the job's next time slot. Dynamic
// coscheduling instead wakes the destination process when a message
// arrives, answering in ~dispatch time at the cost of sharing the CPU less
// predictably. This example measures both on the same request pattern.
package main

import (
	"fmt"

	"gangfm/internal/experiments"
)

func main() {
	rows := experiments.Responsiveness(experiments.Params{Parallel: 2})
	fmt.Println(experiments.ResponsivenessTable(rows))
	fmt.Println("Gang scheduling answers within the rotation; dynamic coscheduling")
	fmt.Println("answers within the dispatch latency. The paper's buffer switch exists")
	fmt.Println("so that gang scheduling — which wins for bulk parallel traffic — can")
	fmt.Println("multiprogram without dividing the NIC buffers.")
}
