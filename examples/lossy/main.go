// Lossy: why FM dares to have no retransmission — and what happens when
// the SAN assumption breaks.
//
// FM's credit-based flow control assumes an insignificant error rate: "a
// single packet loss can mess up the credit counters and the entire flow
// control algorithm" (paper §2.2). This example injects packet loss into
// the Myrinet fabric and shows the transfer wedging: lost data packets
// take their credits with them, the sender's window never refills, and
// progress stops permanently while a loss-free run completes instantly.
package main

import (
	"fmt"
	"log"

	"gangfm"
	"gangfm/internal/myrinet"
)

func main() {
	fmt.Println("loss prob | delivered | dropped | outcome")
	for _, loss := range []float64{0, 0.001, 0.01, 0.05} {
		delivered, dropped, done, verdict := run(loss)
		outcome := "completed"
		if !done {
			outcome = "WEDGED (credits lost, no retransmission)"
		}
		fmt.Printf("%9.3f | %9d | %7d | %s\n", loss, delivered, dropped, outcome)
		if verdict != "" {
			fmt.Printf("          | auditor: %s\n", verdict)
		}
	}
}

func run(loss float64) (delivered, dropped uint64, done bool, verdict string) {
	cfg := gangfm.DefaultClusterConfig(2)
	if loss > 0 {
		// A seeded fault plan replaces the old raw loss knob: the same
		// plan drives the injection trace and the auditor's replay seed.
		plan := gangfm.Loss(42, loss)
		cfg.Chaos = &plan
	}
	cluster, err := gangfm.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	job, err := cluster.Submit(gangfm.Bandwidth("lossy", 2000, 1536))
	if err != nil {
		log.Fatal(err)
	}
	cluster.RunUntil(10 * 200_000_000) // bounded: a wedged run never ends

	stats := cluster.Net.Stats()
	delivered = stats.Delivered[myrinet.Data]
	dropped = stats.Dropped[myrinet.Data]
	_, err = gangfm.ExtractBandwidth(job)
	// The invariant auditor reaches the same verdict mechanically: a
	// wedged run reports the stall, a clean one stays silent.
	if !cluster.Auditor().Ok() {
		vs := cluster.Auditor().Violations()
		verdict = fmt.Sprintf("%d violation(s), first: %s", len(vs), vs[0].Invariant)
	}
	return delivered, dropped, err == nil, verdict
}
