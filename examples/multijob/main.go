// Multijob: the paper's headline comparison in miniature.
//
// Part 1 (Figure 5's collapse): with the original partitioned FM buffers
// on a 16-node machine, deepening the slot table divides the buffers and
// the per-peer credit count C0 = Br/(n²p) collapses — at 7-8 slots it
// reaches zero and communication stops entirely, even for a machine
// running a single application.
//
// Part 2 (Figure 6's flatness): with the paper's buffer switching, k
// benchmark jobs time-sliced on the same nodes deliver a flat aggregate
// bandwidth — multiprogramming costs (almost) nothing.
package main

import (
	"fmt"
	"log"

	"gangfm"
)

const (
	msgs     = 3000
	msgSize  = 6144
	deadline = 20 * 200_000_000 // 20 virtual seconds
)

func main() {
	fmt.Println("Part 1 — partitioned buffers (original FM), single job on 16 nodes")
	fmt.Println("slots | C0 | bandwidth [MB/s]")
	for _, slots := range []int{1, 2, 4, 8} {
		bw, ok := partitioned(slots)
		c0 := 668 / slots / (slots * 16)
		if ok {
			fmt.Printf("%5d | %2d | %.1f\n", slots, c0, bw)
		} else {
			fmt.Printf("%5d | %2d | wedged: no communication possible\n", slots, c0)
		}
	}

	fmt.Println()
	fmt.Println("Part 2 — switched buffers, k jobs time-sliced on one node pair")
	fmt.Println("jobs | aggregate bandwidth [MB/s]")
	for _, k := range []int{1, 2, 4, 8} {
		fmt.Printf("%4d | %.1f\n", k, switched(k))
	}
}

// partitioned measures one benchmark job on a 16-node cluster whose
// buffers are statically divided among `slots` contexts.
func partitioned(slots int) (float64, bool) {
	cfg := gangfm.DefaultClusterConfig(16)
	cfg.Policy = gangfm.Partitioned
	cfg.Slots = slots
	cluster, err := gangfm.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	job, err := cluster.Submit(gangfm.Bandwidth("bw", msgs, msgSize))
	if err != nil {
		log.Fatal(err)
	}
	cluster.RunUntil(deadline) // bounded: zero credits never finish
	res, err := gangfm.ExtractBandwidth(job)
	if err != nil {
		return 0, false
	}
	return res.MBs(gangfm.Clock()), true
}

// switched stacks k benchmark jobs in k time slots of a 2-node cluster and
// returns the aggregate (sum over jobs) bandwidth.
func switched(k int) float64 {
	cfg := gangfm.DefaultClusterConfig(2)
	cfg.Slots = 8
	cfg.Quantum = 4_000_000 // 20 ms, scaled from the paper's 3 s
	cfg.CtrlJitter = 40_000
	cluster, err := gangfm.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	jobs := make([]*gangfm.Job, k)
	for i := range jobs {
		if jobs[i], err = cluster.Submit(gangfm.Bandwidth("bw", msgs, msgSize)); err != nil {
			log.Fatal(err)
		}
	}
	cluster.Run()
	sum := 0.0
	for _, job := range jobs {
		res, err := gangfm.ExtractBandwidth(job)
		if err != nil {
			log.Fatal(err)
		}
		sum += res.MBs(gangfm.Clock())
	}
	return sum
}
