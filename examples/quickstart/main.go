// Quickstart: assemble a simulated ParPar cluster, run the paper's
// point-to-point bandwidth benchmark as a single gang-scheduled job, and
// print the measured bandwidth and latency.
package main

import (
	"fmt"
	"log"
	"time"

	"gangfm"
)

func main() {
	// A 16-node ParPar with the paper's buffer-switching scheme.
	cluster, err := gangfm.NewCluster(gangfm.DefaultClusterConfig(16))
	if err != nil {
		log.Fatal(err)
	}

	// The FM bandwidth benchmark: 5000 messages of 16 KB, rank 0 -> 1.
	job, err := cluster.Submit(gangfm.Bandwidth("quickstart", 5000, 16384))
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	cluster.Run()
	real := time.Since(start)

	res, err := gangfm.ExtractBandwidth(job)
	if err != nil {
		log.Fatal(err)
	}
	clock := gangfm.Clock()
	fmt.Printf("transferred %d MB in %v (virtual): %.1f MB/s\n",
		res.Bytes/1_000_000, clock.ToDuration(res.Elapsed()), res.MBs(clock))
	fmt.Printf("simulator: %d events in %v real (%.2fM events/s)\n",
		cluster.Eng.Fired(), real.Round(time.Millisecond),
		float64(cluster.Eng.Fired())/real.Seconds()/1e6)

	// And a short-message latency probe.
	pp, err := cluster.Submit(gangfm.PingPong("latency", 1000, 64))
	if err != nil {
		log.Fatal(err)
	}
	cluster.Run()
	lat := pp.Results[0].(gangfm.PingPongResult)
	fmt.Printf("64-byte round trip: %v (%d cycles)\n",
		clock.ToDuration(lat.RoundTrip()), lat.RoundTrip())
}
