GO ?= go

.PHONY: check vet build test race fuzz-smoke sched-smoke churn-smoke churn-crash-smoke repair-smoke bench bench-smoke figures lint-hotpath

# The full CI gate: static checks, build, race-enabled tests, a short
# fixed-seed chaos-fuzz campaign, and scheduler-evaluation smoke runs
# (all deterministic, so safe to gate on).
check: vet build race fuzz-smoke sched-smoke churn-smoke churn-crash-smoke repair-smoke lint-hotpath

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The -race gate runs the full matrix, then the concurrent components —
# the sharded parallel engine, the sweep harness, and the root package's
# sharded-vs-serial equivalence tests — once more explicitly.
race:
	$(GO) test -race ./...
	$(GO) test -race ./internal/sim/... ./internal/experiments/...
	$(GO) test -race -run 'TestParallel' .

fuzz-smoke:
	$(GO) run ./cmd/gangsim fuzz -seed 1 -runs 5
	$(GO) run ./cmd/gangsim fuzz -compare -seed 77
	$(GO) run ./cmd/gangsim fuzz -recovery -seed 1 -runs 25

# Scheduler-evaluation smoke: a quick trace replay across every packing
# policy and both credit schemes.
sched-smoke:
	$(GO) run ./cmd/gangsim sched -quick

# Online-scheduling smoke: the gang-vs-batch-vs-fractional showdown under
# live kills, resizes, and conservative backfill.
churn-smoke:
	$(GO) run ./cmd/gangsim churn -quick

# Failure-aware smoke: the same showdown with fail-stop node crashes armed
# — recovery evicts the dead nodes, the daemons requeue the killed jobs,
# and the availability table is appended.
churn-crash-smoke:
	$(GO) run ./cmd/gangsim churn -quick -crash 0.35 -adaptive

# Repair smoke: the closed failure loop — crashes detected by heartbeat,
# repaired nodes rejoining at rotation boundaries, and the availability
# table growing its repaired-capacity and post-repair-goodput columns.
repair-smoke:
	$(GO) run ./cmd/gangsim churn -quick -crash 0.35 -repair 0.75 -adaptive

# Microbenchmarks with allocation reporting. BenchmarkEngineThroughput
# must stay at 0 allocs/op (see DESIGN.md §6).
bench:
	$(GO) test -run XXX -bench . -benchmem .

# Quick end-to-end performance report: every figure under event/alloc
# tracking, written to BENCH_<date>.json.
bench-smoke:
	$(GO) run ./cmd/gangsim bench -quick

figures:
	$(GO) run ./cmd/gangsim all

# Guard the zero-alloc hot paths: audited packages must not grow inline
# closure callbacks at Schedule/At/Use call sites (allowlist for cold
# sites in tools/hotpath_allow.txt; see DESIGN.md §6).
lint-hotpath:
	sh tools/lint_hotpath.sh
