GO ?= go

.PHONY: check vet build test race fuzz-smoke figures

# The full CI gate: static checks, build, race-enabled tests, and a short
# fixed-seed chaos-fuzz campaign (deterministic, so safe to gate on).
check: vet build race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-smoke:
	$(GO) run ./cmd/gangsim fuzz -seed 1 -runs 5
	$(GO) run ./cmd/gangsim fuzz -compare -seed 77

figures:
	$(GO) run ./cmd/gangsim all
