#!/bin/sh
# lint_hotpath.sh — guard the zero-alloc hot paths against closure creep.
#
# The audited packages schedule their steady-state events closure-free
# (prebuilt callback fields, ScheduleArg with pooled records; see
# DESIGN.md §6). This check greps those packages for call sites that pass
# an inline func literal to Schedule/ScheduleAt/CrossAt/Use and fails if
# any site is not listed in tools/hotpath_allow.txt — the registry of
# intentionally cold sites (recovery watchdogs, per-switch copies, job
# setup) where a per-call closure is fine.
#
# An allowlist entry is "<file>:<trimmed source line>", so moving a cold
# site is free but editing it forces the allowlist (and this reasoning)
# to be revisited. Run from anywhere; operates on the repo root.
set -eu
cd "$(dirname "$0")/.."

allow=tools/hotpath_allow.txt
pkgs="internal/sim internal/lanai internal/fm internal/myrinet internal/core internal/parpar internal/workload internal/altsched"
pattern='\.(Schedule|ScheduleAt|CrossAt|Use)\(.*func\('

hits=$(grep -rnE "$pattern" $pkgs --include='*.go' | grep -v _test.go || true)

bad=0
seen_keys=""
while IFS= read -r hit; do
	[ -z "$hit" ] && continue
	file=${hit%%:*}
	rest=${hit#*:}
	rest=${rest#*:} # strip the line number; content identifies the site
	key="$file:$(printf '%s' "$rest" | sed 's/^[[:space:]]*//;s/[[:space:]]*$//')"
	seen_keys="$seen_keys$key
"
	if ! grep -qxF "$key" "$allow"; then
		echo "hotpath lint: closure-capturing scheduling call not in allowlist:"
		echo "  $hit"
		bad=1
	fi
done <<EOF
$hits
EOF

# Stale allowlist entries are an error too: the site was fixed or moved,
# so the registry must shrink with it.
while IFS= read -r entry; do
	case $entry in '' | '#'*) continue ;; esac
	if ! printf '%s' "$seen_keys" | grep -qxF "$entry"; then
		echo "hotpath lint: stale allowlist entry (site no longer matches):"
		echo "  $entry"
		bad=1
	fi
done <"$allow"

if [ "$bad" -ne 0 ]; then
	echo "hotpath lint: FAILED — keep steady-state scheduling closure-free" \
		"(prebuilt callbacks / ScheduleArg with pooled records)," \
		"or add genuinely cold sites to $allow with a rationale."
	exit 1
fi
echo "hotpath lint: ok"
